package dyncc

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"dyncc/internal/ir"
)

// genRegionProgram builds a random MiniC function with a dynamic region
// over an annotated constant c, an array of constants, and a run-time
// variable x. It exercises derived constants, constant branches, unrolled
// loops, dynamic loads, and ordinary loops.
func genRegionProgram(r *rand.Rand) string {
	ops := []string{"+", "-", "*", "&", "|", "^"}
	cexpr := "c"
	for i := 0; i < r.Intn(4); i++ {
		cexpr = fmt.Sprintf("(%s %s %d)", cexpr, ops[r.Intn(len(ops))], r.Intn(50))
	}
	xexpr := "x"
	for i := 0; i < r.Intn(4); i++ {
		xexpr = fmt.Sprintf("(%s %s %s)", xexpr, ops[r.Intn(len(ops))], []string{
			"c", "x", fmt.Sprint(r.Intn(30)),
		}[r.Intn(3)])
	}
	condConst := fmt.Sprintf("c %s %d", []string{">", "<", "==", "!="}[r.Intn(4)], r.Intn(10))
	condVar := fmt.Sprintf("x %s %d", []string{">", "<"}[r.Intn(2)], r.Intn(20))
	unrollBody := []string{
		"acc = acc + a[i] * x;",
		"acc = acc + a dynamic[i] + i;",
		"acc = acc ^ (a[i] + x);",
	}[r.Intn(3)]
	// Sometimes nest a second unrolled loop inside the first.
	loop := fmt.Sprintf(`unrolled for (i = 0; i < n; i++) {
            %s
        }`, unrollBody)
	if r.Intn(3) == 0 {
		loop = fmt.Sprintf(`unrolled for (i = 0; i < n; i++) {
            int k;
            unrolled for (k = 0; k < i; k++) {
                acc = acc + a[k] - k;
            }
            %s
        }`, unrollBody)
	}
	// Sometimes key the region by c.
	header := "dynamicRegion (a, n, c)"
	if r.Intn(3) == 0 {
		header = "dynamicRegion key(c) (a, n)"
	}

	return fmt.Sprintf(`
int f(int *a, int n, int c, int x) {
    int acc = 0;
    %s {
        int d = %s;
        if (%s) { acc = acc + d; } else { acc = acc - d + x; }
        if (%s) { acc = acc + 1; }
        int i;
        %s
        int j;
        for (j = 0; j < 3; j++) { acc = acc + (%s); }
        return acc;
    }
    return 0;
}`, header, cexpr, condConst, condVar, loop, xexpr)
}

// TestDynamicMatchesStaticProperty is the system-level soundness property:
// for random programs, random constant configurations and random inputs,
// the dynamically compiled region computes exactly what the statically
// compiled program computes.
func TestDynamicMatchesStaticProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genRegionProgram(r)
		ps, err := CompileStatic(src)
		if err != nil {
			t.Fatalf("static compile failed:\n%s\n%v", src, err)
		}
		pd, err := CompileDynamic(src)
		if err != nil {
			t.Fatalf("dynamic compile failed:\n%s\n%v", src, err)
		}
		n := int64(1 + r.Intn(6))
		c := int64(r.Intn(40) - 20)
		contents := make([]int64, n)
		for i := range contents {
			contents[i] = int64(r.Int31n(100)) - 50
		}
		ms, md := ps.NewMachine(0), pd.NewMachine(0)
		var as, ad int64
		for _, m := range []*Machine{ms, md} {
			addr, err := m.Alloc(n)
			if err != nil {
				t.Fatal(err)
			}
			copy(m.Mem()[addr:addr+n], contents)
			if m == ms {
				as = addr
			} else {
				ad = addr
			}
		}
		for trial := 0; trial < 6; trial++ {
			x := int64(r.Int31n(2000)) - 1000
			vs, err1 := ms.Call("f", as, n, c, x)
			vd, err2 := md.Call("f", ad, n, c, x)
			if (err1 == nil) != (err2 == nil) {
				t.Logf("error mismatch on:\n%s\nstatic=%v dynamic=%v", src, err1, err2)
				return false
			}
			if err1 != nil {
				return true
			}
			if vs != vd {
				t.Logf("value mismatch on seed %d x=%d c=%d n=%d:\n%s\nstatic=%d dynamic=%d",
					seed, x, c, n, src, vs, vd)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// All stitcher option combinations must agree with each other.
func TestStitcherOptionsAgreeProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genRegionProgram(r)
		configs := []Config{
			{Dynamic: true, Optimize: true},
			{Dynamic: true, Optimize: true, NoStrengthReduction: true},
			{Dynamic: true, Optimize: true, RegisterActions: true},
			{Dynamic: true, Optimize: true, MergedStitch: true},
			{Dynamic: true, Optimize: false},
			{Dynamic: true, Optimize: false, MergedStitch: true},
		}
		n := int64(1 + r.Intn(5))
		c := int64(r.Intn(20))
		contents := make([]int64, n)
		for i := range contents {
			contents[i] = int64(r.Int31n(100)) - 50
		}
		var ref []int64
		for ci, cfg := range configs {
			p, err := Compile(src, cfg)
			if err != nil {
				t.Fatalf("compile (%+v):\n%s\n%v", cfg, src, err)
			}
			m := p.NewMachine(0)
			addr, _ := m.Alloc(n)
			copy(m.Mem()[addr:], contents)
			var outs []int64
			for trial := 0; trial < 4; trial++ {
				x := int64(trial*17 - 20)
				v, err := m.Call("f", addr, n, c, x)
				if err != nil {
					return true // traps must be consistent; skip
				}
				outs = append(outs, v)
			}
			if ci == 0 {
				ref = outs
			} else {
				for k := range outs {
					if outs[k] != ref[k] {
						t.Logf("config %d disagrees on:\n%s", ci, src)
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// fusionRun compiles src with cfg, executes fn(args) and returns the
// result plus every guest-visible counter fusion must not perturb.
type fusionObservation struct {
	vals    []int64
	output  string
	cycles  uint64
	insts   uint64
	regions []RegionStats
}

func observeFusion(t *testing.T, src string, cfg Config, fn string,
	calls [][]int64, heap []int64) (fusionObservation, bool) {
	t.Helper()
	p, err := Compile(src, cfg)
	if err != nil {
		t.Fatalf("compile (%+v): %v\n%s", cfg, err, src)
	}
	m := p.NewMachine(0)
	var out bytes.Buffer
	m.SetOutput(&out)
	var heapAddr int64
	if heap != nil {
		heapAddr, err = m.Alloc(int64(len(heap)))
		if err != nil {
			t.Fatal(err)
		}
		copy(m.Mem()[heapAddr:], heap)
	}
	ob := fusionObservation{}
	for _, args := range calls {
		a := append([]int64(nil), args...)
		for i, v := range a {
			if v == heapPlaceholder {
				a[i] = heapAddr
			}
		}
		v, err := m.Call(fn, a...)
		if err != nil {
			return ob, false // traps compared structurally elsewhere
		}
		ob.vals = append(ob.vals, v)
	}
	ob.output = out.String()
	ob.cycles = m.Cycles()
	ob.insts = m.Insts()
	for r := 0; r < p.NumRegions(); r++ {
		rs := m.Region(r)
		rs.StitchCycles = 0 // stitcher work is host-side policy, not guest
		rs.StitchedInsts = 0
		rs.Compiles = 0
		ob.regions = append(ob.regions, rs)
	}
	return ob, true
}

const heapPlaceholder = int64(-0x7eA9) // replaced by the test heap address

// TestFusionNeutralProperty is the superinstruction soundness property:
// with fusion on and off, every testdata program under every stitcher
// option combination must produce identical results, printed output,
// total Cycles and Insts, and identical per-region Invocations /
// ExecCycles / SetupCycles. Fusion is a host-side optimization; the
// modeled guest machine must not be able to tell.
func TestFusionNeutralProperty(t *testing.T) {
	programs := []struct {
		file  string
		fn    string
		calls [][]int64
		heap  []int64
	}{
		{"fib.mc", "fib", [][]int64{{12}, {15}}, nil},
		{"power.mc", "power", [][]int64{{3, 10}, {2, 7}, {5, 0}, {3, 10}}, nil},
		{"dotproduct.mc", "buildAndDot", [][]int64{{}, {}}, nil},
		{"dotproduct.mc", "dot", [][]int64{
			{heapPlaceholder, 3, heapPlaceholder}, {heapPlaceholder, 3, heapPlaceholder},
		}, []int64{4, -2, 9}},
	}
	combos := []Config{
		{Dynamic: false, Optimize: true},
		{Dynamic: true, Optimize: true},
		{Dynamic: true, Optimize: true, NoStrengthReduction: true},
		{Dynamic: true, Optimize: true, RegisterActions: true},
		{Dynamic: true, Optimize: true, MergedStitch: true},
		{Dynamic: true, Optimize: true, RegisterActions: true, MergedStitch: true},
	}
	for _, pr := range programs {
		src, err := os.ReadFile(filepath.Join("testdata", pr.file))
		if err != nil {
			t.Fatal(err)
		}
		for ci, combo := range combos {
			fused := combo
			unfused := combo
			unfused.NoFuse = true
			got, ok1 := observeFusion(t, string(src), fused, pr.fn, pr.calls, pr.heap)
			want, ok2 := observeFusion(t, string(src), unfused, pr.fn, pr.calls, pr.heap)
			if ok1 != ok2 {
				t.Errorf("%s/%s combo %d: trap behaviour differs (fused ok=%v unfused ok=%v)",
					pr.file, pr.fn, ci, ok1, ok2)
				continue
			}
			if !ok1 {
				continue
			}
			if !reflect.DeepEqual(got.vals, want.vals) || got.output != want.output {
				t.Errorf("%s/%s combo %d: results differ: fused %v %q, unfused %v %q",
					pr.file, pr.fn, ci, got.vals, got.output, want.vals, want.output)
			}
			if got.cycles != want.cycles || got.insts != want.insts {
				t.Errorf("%s/%s combo %d: counters differ: fused cycles=%d insts=%d, unfused cycles=%d insts=%d",
					pr.file, pr.fn, ci, got.cycles, got.insts, want.cycles, want.insts)
			}
			if !reflect.DeepEqual(got.regions, want.regions) {
				t.Errorf("%s/%s combo %d: region counters differ:\nfused   %+v\nunfused %+v",
					pr.file, pr.fn, ci, got.regions, want.regions)
			}
		}
	}
}

// TestFusionNeutralRandomProperty extends the fusion-neutrality check to
// random region programs: same value, Cycles, Insts and region counters
// with fusion on and off.
func TestFusionNeutralRandomProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genRegionProgram(r)
		n := int64(1 + r.Intn(5))
		c := int64(r.Intn(20))
		heap := make([]int64, n)
		for i := range heap {
			heap[i] = int64(r.Int31n(100)) - 50
		}
		calls := [][]int64{}
		for trial := 0; trial < 4; trial++ {
			calls = append(calls, []int64{heapPlaceholder, n, c, int64(trial*13 - 11)})
		}
		for _, combo := range []Config{
			{Dynamic: true, Optimize: true},
			{Dynamic: false, Optimize: true},
			{Dynamic: true, Optimize: true, MergedStitch: true},
		} {
			unfused := combo
			unfused.NoFuse = true
			got, ok1 := observeFusion(t, src, combo, "f", calls, heap)
			want, ok2 := observeFusion(t, src, unfused, "f", calls, heap)
			if ok1 != ok2 {
				t.Logf("trap behaviour differs on:\n%s", src)
				return false
			}
			if !ok1 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Logf("fused/unfused mismatch (%+v) on:\n%s\nfused   %+v\nunfused %+v",
					combo, src, got, want)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestVMMatchesIRInterpreter checks the whole backend (register allocation,
// instruction selection, peepholes, the VM itself) against the IR reference
// interpreter on random programs.
func TestVMMatchesIRInterpreter(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genRegionProgram(r)
		n := int64(1 + r.Intn(5))
		c := int64(r.Intn(20))
		contents := make([]int64, n)
		for i := range contents {
			contents[i] = int64(r.Int31n(100)) - 50
		}

		// Reference: interpret the optimized SSA IR directly.
		pi, err := CompileStatic(src) // builds + optimizes the IR module
		if err != nil {
			t.Fatalf("compile:\n%s\n%v", src, err)
		}
		env := ir.NewInterpEnv(pi.Module(), 0)
		ia := env.Alloc(n)
		copy(env.Mem[ia:], contents)

		// Subject: the same source executed on the VM.
		pv, err := CompileStatic(src)
		if err != nil {
			t.Fatal(err)
		}
		m := pv.NewMachine(0)
		va, _ := m.Alloc(n)
		copy(m.Mem()[va:], contents)

		for trial := 0; trial < 4; trial++ {
			x := int64(trial*29 - 31)
			wi, err1 := env.CallFunc("f", ia, n, c, x)
			wv, err2 := m.Call("f", va, n, c, x)
			if (err1 == nil) != (err2 == nil) {
				return true // both engines trap on the same inputs in practice;
				// tolerate differing OOB limits
			}
			if err1 == nil && wi != wv {
				t.Logf("seed %d x=%d: interp=%d vm=%d\n%s", seed, x, wi, wv, src)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}
