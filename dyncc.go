// Package dyncc is a dynamic-compilation system for MiniC, a C subset,
// reproducing Auslander, Philipose, Chambers, Eggers and Bershad,
// "Fast, Effective Dynamic Compilation" (PLDI 1996).
//
// Programs annotate dynamic regions and run-time-constant variables:
//
//	int cacheLookup(int addr, int cache) {
//	    dynamicRegion (cache) {
//	        ...
//	        unrolled for (set = 0; set < assoc; set++) { ... }
//	    }
//	}
//
// The static compiler identifies derived run-time constants with a pair of
// interleaved dataflow analyses (run-time constants + reachability
// conditions), splits each region into set-up code and machine-code
// templates with holes, and optimizes everything in the context of the
// enclosing procedure. At run time a tiny dynamic compiler (the stitcher)
// copies the templates, patches the holes from the run-time constants
// table, resolves constant branches, completely unrolls annotated loops,
// and peephole-optimizes with the actual constant values.
//
// Execution happens on a built-in virtual RISC machine with an Alpha-like
// cycle cost model, so speedups and breakeven points can be measured
// exactly (see EXPERIMENTS.md).
package dyncc

import (
	"io"
	"time"

	"dyncc/internal/core"
	"dyncc/internal/ir"
	"dyncc/internal/rtr"
	"dyncc/internal/segio"
	"dyncc/internal/stitcher"
	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// Config controls compilation.
type Config struct {
	// Dynamic enables dynamic compilation of annotated regions; when
	// false the same source is compiled fully statically (the baseline),
	// with regions instrumented for cycle accounting.
	Dynamic bool
	// Optimize runs the static global optimizer.
	Optimize bool
	// NoStrengthReduction disables the stitcher's value-based peephole
	// rewrites (ablation).
	NoStrengthReduction bool
	// NoFuse disables superinstruction fusion (stitch-time and static;
	// ablation). Fusion is host-side only: modeled guest cycles,
	// instruction counts and all results are identical either way.
	NoFuse bool
	// RegisterActions enables the paper's section 5 extension: the
	// stitcher promotes constant-offset stack words to reserved registers.
	RegisterActions bool
	// MergedStitch enables the paper's section 7 one-pass mode: set-up is
	// evaluated host-side during stitching, cutting dynamic-compile
	// overhead (the paper predicted this would "drastically reduce"
	// dynamic compilation costs).
	MergedStitch bool
	// AutoRegion enables profile-guided automatic region promotion:
	// eligible *unannotated* functions are rewritten into keyed dynamic
	// regions that the runtime profiles, stitching only once their key
	// operands prove hot and stable, with guard instructions in the
	// stitched code that deoptimize back to unspecialized execution when a
	// speculated operand changes. Annotated regions are unaffected.
	// Requires Dynamic; see DESIGN.md "Speculative promotion".
	AutoRegion bool
	// AutoPromoteThreshold is the invocation count before an automatic
	// region may promote (0 = default 8). Set it above the workload's call
	// count for a never-promoting baseline.
	AutoPromoteThreshold uint64
	// AutoStabilityWindow is how many consecutive identical key tuples the
	// profiler must observe before promoting (0 = default 4).
	AutoStabilityWindow int
	// AutoBackoffFactor multiplies the promotion threshold after each
	// deoptimization — hysteresis against promote/deopt livelock on
	// phase-changing operands (0 = default 4; capped at 2^20).
	AutoBackoffFactor uint64
	// Cache tunes the runtime's two-level stitch cache.
	Cache CacheOptions
	// InlineBudget caps the callee size (IR instructions) the demand-driven
	// inlining pass will graft through a call boundary: 0 selects the
	// default (32), negative disables inlining (equivalent to
	// `-disable-pass inline`). The pass inlines always inside dynamic
	// regions and their set-up slices, and elsewhere only when an argument
	// is provably constant; it only runs when Optimize is set. See
	// DESIGN.md "Demand-driven inlining".
	InlineBudget int
	// DisablePasses names compiler pipeline passes to skip, for ablation
	// and debugging: the "inline" pass, any optimizer sub-pass
	// ("const-fold", "simplify", "branch-fold", "copy-prop", "cse", "dce")
	// or the whole "optimize" group. Structural passes cannot be disabled;
	// unknown names are a compile error.
	DisablePasses []string
	// DumpIR, when non-nil, receives a textual IR snapshot of every
	// function after each module-mutating compiler pass (optimizer
	// sub-passes dump only on fixpoint rounds where they changed
	// something).
	DumpIR func(pass, fn, text string)
	// CompileWorkers sizes CompileBatch's worker pool (0 = GOMAXPROCS).
	// Ignored by Compile.
	CompileWorkers int
	// CollectErrors switches CompileBatch from first-error-wins semantics
	// to per-source error collection (BatchResult.Errs). Ignored by
	// Compile.
	CollectErrors bool
}

// CacheOptions tune the runtime stitch cache (see DESIGN.md, "Runtime
// concurrency model" and "Cache lifecycle"). The zero value is the
// historical configuration: cross-machine sharing on, 32 shards, no
// diagnostic retention, and — for compatibility — unbounded retention at
// both cache levels. Servers with high-cardinality keys (user ids, query
// shapes) should set MaxEntries and MachineMaxEntries: without caps every
// distinct key is retained forever.
type CacheOptions struct {
	// KeepStitched retains stitched segments in the runtime for
	// diagnostics (disassembly, golden tests). Off by default so
	// long-running servers don't hold every segment ever stitched.
	// KeepStitchedCap bounds the retention (0 = default 512 segments).
	KeepStitched    bool
	KeepStitchedCap int
	// Shards overrides the shared-cache shard count (0 = default 32,
	// rounded up to a power of two).
	Shards int
	// NoShare disables cross-machine sharing of stitched code: every
	// machine stitches its own segments, and concurrent stitches of the
	// same specialization are no longer deduplicated.
	NoShare bool
	// MaxEntries / MaxCodeBytes bound the shared cache (segments resident
	// across all machines; 0 = unbounded) with a sharded CLOCK policy.
	// In-flight stitches are pinned and never evicted.
	MaxEntries   int
	MaxCodeBytes int64
	// MaxEntriesPerRegion / MaxCodeBytesPerRegion bound any single
	// region's share of the cache (0 = unbounded).
	MaxEntriesPerRegion   int
	MaxCodeBytesPerRegion int64
	// MachineMaxEntries bounds each machine's private cache (segments
	// across regions, 0 = unbounded) with second-chance FIFO eviction.
	MachineMaxEntries int
	// ChurnStats enables the per-region churn histogram (CacheChurn).
	ChurnStats bool
	// AsyncStitch moves stitching of keyed shareable regions to a bounded
	// pool of background workers: a cold key's call runs the region on a
	// generic (unspecialized) fallback tier and returns immediately; the
	// stitched specialization is adopted on a later call once published.
	// Call WaitIdle to quiesce and Close to release the workers.
	AsyncStitch bool
	// StitchWorkers / StitchQueue size the background pool (0 = defaults:
	// 2 workers, a 64-deep queue). When the queue is full, cold keys are
	// not enqueued (QueueRejects) and simply run on the fallback tier —
	// backpressure never blocks a caller.
	StitchWorkers int
	StitchQueue   int
	// Store plugs in a persistent (level-0) code cache behind the shared
	// cache: on a keyed-shareable miss the runtime consults the store for a
	// previously persisted stitch of the same specialization before
	// stitching, and publishes new stitches back asynchronously — a warm
	// store turns process restarts into cache hits. See OpenDirStore for
	// the on-disk implementation and DESIGN.md "Persistent cache tier".
	Store CacheStore
	// StoreQueue bounds the asynchronous store-publish queue (0 = default
	// 256). When full, publishes are dropped (StoreErrors) — persistence
	// is best-effort and never blocks the stitch path.
	StoreQueue int
}

// CacheStore is the pluggable persistent-cache interface: a
// content-addressed blob store keyed by digest. Get returns (nil, nil) on
// a miss; Put must be atomic (concurrent readers see the old blob, the
// new blob, or a miss — never a torn write); Delete is a no-op on absent
// digests. Implementations must be safe for concurrent use.
type CacheStore = segio.Store

// DirStore is the on-disk CacheStore: one file per digest under a root
// directory, written atomically (temp file + rename).
type DirStore = segio.DirStore

// MemStore is an in-memory CacheStore for tests and single-process use.
type MemStore = segio.MemStore

// OpenDirStore opens (creating if needed) an on-disk persistent cache
// rooted at path.
func OpenDirStore(path string) (*DirStore, error) { return segio.OpenDir(path) }

// NewMemStore returns an empty in-memory CacheStore.
func NewMemStore() *MemStore { return segio.NewMemStore() }

// Program is a compiled MiniC program.
type Program struct {
	c *core.Compiled
}

// coreConfig lowers the public configuration to the internal one.
func (cfg Config) coreConfig() core.Config {
	return core.Config{
		Dynamic:        cfg.Dynamic,
		Optimize:       cfg.Optimize,
		MergedStitch:   cfg.MergedStitch,
		AutoRegion:     cfg.AutoRegion,
		InlineBudget:   cfg.InlineBudget,
		DisablePasses:  cfg.DisablePasses,
		DumpIR:         cfg.DumpIR,
		CompileWorkers: cfg.CompileWorkers,
		CollectErrors:  cfg.CollectErrors,
		Auto: rtr.AutoOptions{
			PromoteThreshold: cfg.AutoPromoteThreshold,
			StabilityWindow:  cfg.AutoStabilityWindow,
			BackoffFactor:    cfg.AutoBackoffFactor,
		},
		Stitcher: stitcher.Options{
			NoStrengthReduction: cfg.NoStrengthReduction,
			NoFuse:              cfg.NoFuse,
			RegisterActions:     cfg.RegisterActions,
		},
		Cache: rtr.CacheOptions{
			KeepStitched:          cfg.Cache.KeepStitched,
			KeepStitchedCap:       cfg.Cache.KeepStitchedCap,
			Shards:                cfg.Cache.Shards,
			NoShare:               cfg.Cache.NoShare,
			MaxEntries:            cfg.Cache.MaxEntries,
			MaxCodeBytes:          cfg.Cache.MaxCodeBytes,
			MaxEntriesPerRegion:   cfg.Cache.MaxEntriesPerRegion,
			MaxCodeBytesPerRegion: cfg.Cache.MaxCodeBytesPerRegion,
			MachineMaxEntries:     cfg.Cache.MachineMaxEntries,
			ChurnStats:            cfg.Cache.ChurnStats,
			AsyncStitch:           cfg.Cache.AsyncStitch,
			StitchWorkers:         cfg.Cache.StitchWorkers,
			StitchQueue:           cfg.Cache.StitchQueue,
			Store:                 cfg.Cache.Store,
			StoreQueue:            cfg.Cache.StoreQueue,
		},
	}
}

// Compile compiles MiniC source with the given configuration.
func Compile(src string, cfg Config) (*Program, error) {
	c, err := core.Compile(src, cfg.coreConfig())
	if err != nil {
		return nil, err
	}
	return &Program{c: c}, nil
}

// BatchStats summarizes one CompileBatch run: how many sources compiled
// (and failed), the worker-pool size, batch wall clock and throughput, and
// the pipeline's per-pass stats merged across every program and worker (so
// a batch profiles exactly like one compile, scaled).
type BatchStats struct {
	Programs       int
	Failed         int
	Workers        int
	Elapsed        time.Duration
	ProgramsPerSec float64
	PassTotals     []PassStat
}

// BatchResult is a deterministic batch compilation result: slot i always
// corresponds to source i, regardless of worker scheduling.
type BatchResult struct {
	// Programs is index-aligned with the sources; a slot is nil exactly
	// when that source failed.
	Programs []*Program
	// Errs is index-aligned with the sources and populated only in
	// Config.CollectErrors mode; a slot is nil exactly when that source
	// compiled.
	Errs  []error
	Stats BatchStats
}

// CompileBatch compiles many MiniC sources concurrently on a bounded pool
// of Config.CompileWorkers goroutines (0 = GOMAXPROCS), one independent
// pass pipeline per program over the shared immutable front-end tables.
// Every program is byte-identical to a serial Compile of the same source.
// By default the lowest-indexed failing source aborts the batch
// (first-error-wins, deterministic even when a later source fails first in
// wall-clock time); with Config.CollectErrors the batch always returns and
// reports every failure in BatchResult.Errs.
func CompileBatch(srcs []string, cfg Config) (*BatchResult, error) {
	br, err := core.CompileBatch(srcs, cfg.coreConfig())
	if err != nil {
		return nil, err
	}
	out := &BatchResult{
		Programs: make([]*Program, len(br.Programs)),
		Stats: BatchStats{
			Programs:       br.Stats.Programs,
			Failed:         br.Stats.Failed,
			Workers:        br.Stats.Workers,
			Elapsed:        br.Stats.Elapsed,
			ProgramsPerSec: br.Stats.ProgramsPerSec,
		},
	}
	for i, c := range br.Programs {
		if c != nil {
			out.Programs[i] = &Program{c: c}
		}
	}
	if br.Errs != nil {
		out.Errs = append([]error(nil), br.Errs...)
	}
	for _, st := range br.Stats.PassTotals {
		out.Stats.PassTotals = append(out.Stats.PassTotals, PassStat{
			Name:     st.Pass,
			Duration: st.Duration,
			Runs:     st.Runs,
			Changes:  st.Changes,
		})
	}
	return out, nil
}

// CompileDynamic compiles with dynamic regions and optimization enabled.
func CompileDynamic(src string) (*Program, error) {
	return Compile(src, Config{Dynamic: true, Optimize: true})
}

// CompileStatic compiles the same source fully statically (the baseline).
func CompileStatic(src string) (*Program, error) {
	return Compile(src, Config{Dynamic: false, Optimize: true})
}

// Machine is an execution instance of a compiled program.
type Machine struct {
	m *vm.Machine
	p *Program
}

// NewMachine creates a fresh machine. memWords <= 0 selects the default
// memory size (4M words).
func (p *Program) NewMachine(memWords int) *Machine {
	return &Machine{m: p.c.NewMachine(memWords), p: p}
}

// SetOutput directs the program's print builtins to w.
func (ma *Machine) SetOutput(w io.Writer) { ma.m.Output = w }

// Call invokes a MiniC function with integer/pointer arguments and returns
// its result.
func (ma *Machine) Call(name string, args ...int64) (int64, error) {
	return ma.m.Call(name, args...)
}

// CallF invokes a MiniC function with float arguments.
func (ma *Machine) CallF(name string, args ...float64) (float64, error) {
	return ma.m.CallF(name, args...)
}

// Alloc reserves n zeroed words of VM heap (for harness-built inputs).
func (ma *Machine) Alloc(n int64) (int64, error) { return ma.m.Alloc(n) }

// Mem exposes the machine's word memory.
func (ma *Machine) Mem() []int64 { return ma.m.Mem }

// Cycles returns total executed cycles.
func (ma *Machine) Cycles() uint64 { return ma.m.Cycles }

// Insts returns total executed guest instructions (fused superinstructions
// count as the instructions they replaced).
func (ma *Machine) Insts() uint64 { return ma.m.Insts }

// ResetCounters clears cycle counters and region statistics.
func (ma *Machine) ResetCounters() { ma.m.ResetCounters() }

// RegionStats are the per-region counters (paper Table 2 raw material).
type RegionStats struct {
	Invocations   uint64
	ExecCycles    uint64 // cycles executing region code (stitched or static)
	SetupCycles   uint64 // set-up code cycles (dynamic-compile overhead)
	StitchCycles  uint64 // modeled stitcher cycles
	StitchedInsts uint64
	Compiles      uint64
}

// Overhead is the total dynamic compilation overhead in cycles.
func (rs RegionStats) Overhead() uint64 { return rs.SetupCycles + rs.StitchCycles }

// Region returns the counters for global region index r.
func (ma *Machine) Region(r int) RegionStats {
	rc := ma.m.Region(r)
	return RegionStats{
		Invocations:   rc.Invocations,
		ExecCycles:    rc.ExecCycles,
		SetupCycles:   rc.SetupCycles,
		StitchCycles:  rc.StitchCycles,
		StitchedInsts: rc.StitchedInsts,
		Compiles:      rc.Compiles,
	}
}

// StitchStats summarizes what the stitcher did for one region across all
// machines of this program (paper Table 3 raw material).
type StitchStats struct {
	InstsStitched      int
	HolesPatched       int
	BranchesResolved   int
	LoopIterations     int
	StrengthReductions int
	LargeConsts        int
	LoadsPromoted      int
	StoresPromoted     int
}

// StitchStats returns runtime stitcher statistics for region r.
func (p *Program) StitchStats(r int) StitchStats {
	s := p.c.Runtime.Stats(r)
	return StitchStats{
		InstsStitched:      s.InstsStitched,
		HolesPatched:       s.HolesPatched,
		BranchesResolved:   s.BranchesResolved,
		LoopIterations:     s.LoopIterations,
		StrengthReductions: s.StrengthReductions,
		LargeConsts:        s.LargeConsts,
		LoadsPromoted:      s.LoadsPromoted,
		StoresPromoted:     s.StoresPromoted,
	}
}

// PassStat is one row of the static compiler's pipeline report: how long
// a pass ran (wall clock, summed over executions), how many times it ran
// (optimizer sub-passes run once per fixpoint round), and how many IR
// changes it made. The synthetic "verify" row accumulates the ir.Verify
// runs the pipeline interposes after every module-mutating pass.
type PassStat struct {
	Name     string
	Duration time.Duration
	Runs     int
	Changes  int
}

// CompileStats reports the compiler pipeline's per-pass timings and
// change counts in execution order: parse, lower, ssa, the optimizer
// sub-passes (const-fold, simplify, branch-fold, copy-prop, cse, dce),
// the optimize group total, split, codegen, and verify. Disabled passes
// are absent.
func (p *Program) CompileStats() []PassStat {
	stats := make([]PassStat, len(p.c.Stats))
	for i, st := range p.c.Stats {
		stats[i] = PassStat{
			Name:     st.Pass,
			Duration: st.Duration,
			Runs:     st.Runs,
			Changes:  st.Changes,
		}
	}
	return stats
}

// RuntimeCacheStats summarizes the stitch-cache lifecycle across every
// machine of a program: stitch counts, lookup outcomes, eviction churn and
// resident footprint. All counters are monotonic except the Resident
// gauges, and lookups obey
//
//	Lookups == SharedHits + Waits + FailedHits + Misses
type RuntimeCacheStats struct {
	Lookups    uint64
	SharedHits uint64
	Waits      uint64
	FailedHits uint64
	Misses     uint64

	Stitches       uint64
	FailedStitches uint64
	// StencilStitches counts successful stitches that ran on the
	// precompiled copy-and-patch fast path; the rest took the interpretive
	// fallback (nonzero under `-disable-pass stencil`).
	StencilStitches uint64

	Evictions     uint64
	Restitches    uint64
	Invalidations uint64
	L2Evictions   uint64

	EntriesResident uint64
	BytesResident   uint64
	PeakEntries     uint64

	// Tiered execution (Config.Cache.AsyncStitch; all zero without it).
	AsyncStitches uint64 // stitches completed by background workers
	FallbackRuns  uint64 // region executions on the generic fallback tier
	QueueRejects  uint64 // cold keys dropped because the stitch queue was full
	AsyncDiscards uint64 // background stitches discarded by invalidation

	// PromoteLatency histograms background schedule-to-publish latency:
	// bucket i counts publishes in [2^(i-1), 2^i) nanoseconds.
	PromoteLatency [rtr.PromoteBuckets]uint64

	// Persistent (level-0) store tier (Config.Cache.Store; all zero
	// without it). Store consults happen after the level-1 lookup was
	// classified, so the lookup invariant above is untouched; each consult
	// increments exactly one of StoreHits / StoreMisses / StoreErrors.
	StoreHits   uint64 // stitch sites served by a persisted segment
	StoreMisses uint64 // store consults that found nothing
	StorePuts   uint64 // segments successfully published to the store
	StoreErrors uint64 // store I/O or decode failures, plus dropped queue ops

	// Speculative promotion (Config.AutoRegion; all zero without it).
	// Each Deopt also counts an Invalidation: demotion orphans the
	// region's stale stitches through the regular invalidation path.
	Promotions uint64 // automatic regions promoted from profiling to stitching
	Deopts     uint64 // guard-failure demotions back to profiling
}

// PromoteQuantile returns an upper bound on the q-quantile (0 < q <= 1) of
// the background publish latency in nanoseconds, or zero if nothing was
// published by background workers.
func (rs RuntimeCacheStats) PromoteQuantile(q float64) uint64 {
	cs := rtr.CacheStats{PromoteLatency: rs.PromoteLatency}
	return cs.PromoteQuantile(q)
}

// CacheStats reports shared stitch-cache behaviour for this program.
func (p *Program) CacheStats() RuntimeCacheStats {
	cs := p.c.Runtime.CacheStats()
	return RuntimeCacheStats{
		Lookups:         cs.Lookups,
		SharedHits:      cs.SharedHits,
		Waits:           cs.Waits,
		FailedHits:      cs.FailedHits,
		Misses:          cs.Misses,
		Stitches:        cs.Stitches,
		FailedStitches:  cs.FailedStitches,
		StencilStitches: cs.StencilStitches,
		Evictions:       cs.Evictions,
		Restitches:      cs.Restitches,
		Invalidations:   cs.Invalidations,
		L2Evictions:     cs.L2Evictions,
		EntriesResident: cs.EntriesResident,
		BytesResident:   cs.BytesResident,
		PeakEntries:     cs.PeakEntries,
		AsyncStitches:   cs.AsyncStitches,
		FallbackRuns:    cs.FallbackRuns,
		QueueRejects:    cs.QueueRejects,
		AsyncDiscards:   cs.AsyncDiscards,
		PromoteLatency:  cs.PromoteLatency,
		StoreHits:       cs.StoreHits,
		StoreMisses:     cs.StoreMisses,
		StorePuts:       cs.StorePuts,
		StoreErrors:     cs.StoreErrors,
		Promotions:      cs.Promotions,
		Deopts:          cs.Deopts,
	}
}

// WaitIdle blocks until every scheduled background stitch has been
// published or discarded and every queued store publish has drained. A
// no-op unless AsyncStitch or Cache.Store is set.
func (p *Program) WaitIdle() { p.c.Runtime.WaitIdle() }

// Close stops the background stitch workers, failing any still-queued
// stitches (their keys re-schedule if called again — machines keep
// working), and drains then stops the persistent-store publisher, so
// every stitch published before Close is durably in the store. Idempotent;
// a no-op unless AsyncStitch or Cache.Store is set.
func (p *Program) Close() { p.c.Runtime.Close() }

// RegionCacheChurn is one row of the per-region churn histogram (enable
// with CacheOptions.ChurnStats): how many stitches, capacity evictions and
// post-eviction re-stitches a region has seen. Rising Evictions plus
// Restitches means the region's specialization working set exceeds the
// configured caps.
type RegionCacheChurn struct {
	Region     int
	Stitches   uint64
	Evictions  uint64
	Restitches uint64
}

// CacheChurn returns the per-region churn histogram, or nil unless
// Config.Cache.ChurnStats was set.
func (p *Program) CacheChurn() []RegionCacheChurn {
	rows := p.c.Runtime.Churn()
	if rows == nil {
		return nil
	}
	out := make([]RegionCacheChurn, len(rows))
	for i, r := range rows {
		out[i] = RegionCacheChurn{Region: r.Region, Stitches: r.Stitches,
			Evictions: r.Evictions, Restitches: r.Restitches}
	}
	return out
}

// Invalidate flushes every cached specialization of region r, across the
// shared cache and every machine's private cache (detected by a
// generation check on the machine's next entry into the region). Use it
// when data a region specialized on has changed.
func (p *Program) Invalidate(r int) { p.c.Runtime.Invalidate(r) }

// InvalidateKey flushes one specialization of region r, identified by the
// values its key variables had when it was stitched. Machines drop their
// private copies of the region's specializations, but only the
// invalidated key pays a re-stitch — the rest re-adopt from the shared
// cache.
func (p *Program) InvalidateKey(r int, keyVals ...int64) {
	p.c.Runtime.InvalidateKey(r, keyVals...)
}

// PlanStats reports the optimizations the static compiler planned for
// region r (constant folding, load elimination, branch elimination,
// complete unrolling — paper Table 3).
type PlanStats struct {
	ConstOpsFolded  int
	LoadsEliminated int
	ConstBranches   int
	LoopsUnrolled   int
	Holes           int
}

// PlanStats returns the splitter's plan for global region index r.
func (p *Program) PlanStats(r int) PlanStats {
	t := p.c.Output.Regions[r]
	return PlanStats{
		ConstOpsFolded:  t.Stats.ConstOpsFolded,
		LoadsEliminated: t.Stats.LoadsEliminated,
		ConstBranches:   t.Stats.ConstBranches,
		LoopsUnrolled:   t.Stats.LoopsUnrolled,
		Holes:           t.Stats.Holes,
	}
}

// NumRegions returns the number of dynamic regions in the program.
func (p *Program) NumRegions() int { return len(p.c.Output.Regions) }

// RegionTemplates exposes the template metadata for region r (for dumps
// and the Figure 1 walk-through).
func (p *Program) RegionTemplates(r int) *tmpl.Region { return p.c.Output.Regions[r] }

// IR returns the compiled IR of a function (diagnostics/dumps).
func (p *Program) IR(fn string) *ir.Func { return p.c.Module.FuncIndex[fn] }

// Module exposes the compiled IR module (diagnostics and differential
// testing against the reference interpreter).
func (p *Program) Module() *ir.Module { return p.c.Module }

// Disasm disassembles a compiled function.
func (p *Program) Disasm(fn string) string {
	id := p.c.Output.Prog.FuncID(fn)
	if id < 0 {
		return ""
	}
	return p.c.Output.Prog.Segs[id].Disasm()
}
