package dyncc

import (
	"testing"

	"dyncc/internal/bench"
)

// Host-side benchmarks: nanoseconds of host time per modeled guest
// instruction, for the five Table 2 kernels plus the warm dispatch path.
// These measure the interpreter loop itself (the paper's tables measure
// the modeled guest machine; these measure the machine running the model).
//
// Run with `make bench-host` (or `go test -bench HostPerf -run ^$ -count 5`)
// and compare runs with benchstat; b.ReportMetric publishes ns/guest-inst
// as the benchmark's primary custom metric.

func benchHostKernel(b *testing.B, k bench.HostKernel, cfg bench.Config) {
	m, step, err := k.Setup(cfg)
	if err != nil {
		b.Fatal(err)
	}
	m.MaxCycles = 1 << 62
	// Warm: stitch every specialization the use pattern touches so the
	// timed loop measures warm dispatch, not compilation.
	for i := 0; i < 100; i++ {
		if err := step(i); err != nil {
			b.Fatal(err)
		}
	}
	insts0 := m.Insts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := step(i); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if insts := m.Insts - insts0; insts > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/guest-inst")
		b.ReportMetric(float64(insts)/float64(b.N), "guest-insts/op")
	}
}

// BenchmarkHostPerf times every host kernel with the production
// configuration (fusion on).
func BenchmarkHostPerf(b *testing.B) {
	for _, k := range bench.HostKernels() {
		b.Run(k.Name, func(b *testing.B) {
			benchHostKernel(b, k, bench.Config{})
		})
	}
}

// BenchmarkHostPerfNoFuse is the ablation: the same kernels with
// superinstruction fusion disabled, isolating the dispatch-loop win from
// the fusion win.
func BenchmarkHostPerfNoFuse(b *testing.B) {
	for _, k := range bench.HostKernels() {
		b.Run(k.Name, func(b *testing.B) {
			benchHostKernel(b, k, bench.Config{NoFuse: true})
		})
	}
}
