package dyncc

import "testing"

func TestZeroIterationUnrolledLoop(t *testing.T) {
	src := `
int f(int *a, int n, int x) {
    int s = 1000;
    dynamicRegion (a, n) {
        int i;
        unrolled for (i = 0; i < n; i++) {
            s = s + a dynamic[i];
        }
    }
    return s + x;
}`
	p, err := CompileDynamic(src)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(0)
	addr, _ := m.Alloc(1)
	got, err := m.Call("f", addr, 0, 5) // n = 0: loop body never stitched
	if err != nil {
		t.Fatal(err)
	}
	if got != 1005 {
		t.Errorf("got %d", got)
	}
	if ss := p.StitchStats(0); ss.LoopIterations != 0 {
		t.Errorf("iterations stitched for an empty loop: %d", ss.LoopIterations)
	}
}

func TestTwoRegionsInOneFunction(t *testing.T) {
	src := `
int f(int c, int d, int x) {
    int r1;
    dynamicRegion (c) {
        r1 = x * c;
    }
    int r2;
    dynamicRegion (d) {
        r2 = r1 + d * 3;
    }
    return r2;
}`
	for _, cfg := range []Config{
		{Dynamic: false, Optimize: true},
		{Dynamic: true, Optimize: true},
		{Dynamic: true, Optimize: true, MergedStitch: true},
	} {
		p, err := Compile(src, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		m := p.NewMachine(0)
		got, err := m.Call("f", 5, 7, 10)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if want := int64(10*5 + 7*3); got != want {
			t.Errorf("%+v: got %d want %d", cfg, got, want)
		}
		if cfg.Dynamic {
			if p.NumRegions() != 2 {
				t.Fatalf("regions: %d", p.NumRegions())
			}
			if m.Region(0).Compiles != 1 || m.Region(1).Compiles != 1 {
				t.Error("both regions should compile")
			}
		}
	}
}

func TestDeepUnroll(t *testing.T) {
	src := `
int f(int *a, int n, int x) {
    int s = 0;
    dynamicRegion (a, n) {
        int i;
        unrolled for (i = 0; i < n; i++) {
            s = s + a[i] * x + i;
        }
    }
    return s;
}`
	p, err := CompileDynamic(src)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(0)
	const n = 500
	addr, _ := m.Alloc(n)
	var want int64
	x := int64(3)
	for i := int64(0); i < n; i++ {
		m.Mem()[addr+i] = i % 23
		want += (i%23)*x + i
	}
	got, err := m.Call("f", addr, n, x)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("got %d want %d", got, want)
	}
	if ss := p.StitchStats(0); ss.LoopIterations != n {
		t.Errorf("iterations: %d", ss.LoopIterations)
	}
}

func TestNestedUnrolledLoops(t *testing.T) {
	src := `
int f(int *a, int rows, int cols, int x) {
    int s = 0;
    dynamicRegion (a, rows, cols) {
        int i, j;
        unrolled for (i = 0; i < rows; i++) {
            unrolled for (j = 0; j < cols; j++) {
                s = s + a[i*cols + j] * x;
            }
        }
    }
    return s;
}`
	for _, cfg := range []Config{
		{Dynamic: true, Optimize: true},
		{Dynamic: true, Optimize: true, MergedStitch: true},
	} {
		p, err := Compile(src, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		m := p.NewMachine(0)
		rows, cols := int64(4), int64(6)
		addr, _ := m.Alloc(rows * cols)
		var sum int64
		for i := int64(0); i < rows*cols; i++ {
			m.Mem()[addr+i] = i * 3
			sum += i * 3
		}
		x := int64(7)
		got, err := m.Call("f", addr, rows, cols, x)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if got != sum*x {
			t.Errorf("%+v: got %d want %d", cfg, got, sum*x)
		}
		if ss := p.StitchStats(0); ss.LoopIterations != int(rows+rows*cols) {
			t.Errorf("%+v: iterations %d, want %d", cfg, ss.LoopIterations, rows+rows*cols)
		}
	}
}

// A keyed region whose key is also used in arithmetic (key values double
// as constants).
func TestKeyUsedAsConstant(t *testing.T) {
	src := `
int f(int k, int x) {
    int r;
    dynamicRegion key(k) () {
        int sq = k * k;    /* derived from the key */
        r = sq + x / 1;
    }
    return r;
}`
	p, err := CompileDynamic(src)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(0)
	for _, k := range []int64{2, 5, 2, 5} {
		got, err := m.Call("f", k, 100)
		if err != nil {
			t.Fatal(err)
		}
		if got != k*k+100 {
			t.Errorf("f(%d) = %d", k, got)
		}
	}
	if m.Region(0).Compiles != 2 {
		t.Errorf("compiles: %d", m.Region(0).Compiles)
	}
}
