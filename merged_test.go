package dyncc

import "testing"

// The section 7 merged set-up + stitch mode must produce identical code
// behaviour with lower dynamic-compilation overhead.
func TestMergedStitchCorrectAndCheaper(t *testing.T) {
	run := func(cfg Config) ([]int64, RegionStats) {
		p, err := Compile(cacheLookupSrc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := p.NewMachine(0)
		cache := buildCache(t, m, 32, 512, 4)
		plantTag(m, cache, 0x12345, 2)
		var out []int64
		for _, addr := range []int64{0x12345, 0x400, 0x99999, 0} {
			v, err := m.Call("cacheLookup", addr, cache)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, v)
		}
		return out, m.Region(0)
	}
	base, bst := run(Config{Dynamic: true, Optimize: true})
	merged, mst := run(Config{Dynamic: true, Optimize: true, MergedStitch: true})
	for i := range base {
		if base[i] != merged[i] {
			t.Fatalf("lookup %d: two-pass %d vs merged %d", i, base[i], merged[i])
		}
	}
	if mst.Overhead() >= bst.Overhead() {
		t.Errorf("merged overhead %d should beat two-pass %d", mst.Overhead(), bst.Overhead())
	}
	if mst.Compiles != 1 || mst.StitchedInsts == 0 {
		t.Errorf("merged counters: %+v", mst)
	}
	t.Logf("overhead: two-pass %d cycles (setup %d + stitch %d), merged %d (setup %d + stitch %d)",
		bst.Overhead(), bst.SetupCycles, bst.StitchCycles,
		mst.Overhead(), mst.SetupCycles, mst.StitchCycles)
}

// Merged mode with keyed regions: each key still gets its own version.
func TestMergedStitchKeyed(t *testing.T) {
	src := `
int scale(int s, int x) {
    int r;
    dynamicRegion key(s) () {
        r = x * s;
    }
    return r;
}`
	p, err := Compile(src, Config{Dynamic: true, Optimize: true, MergedStitch: true})
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(0)
	for _, s := range []int64{3, 7} {
		for _, x := range []int64{2, -9} {
			got, err := m.Call("scale", s, x)
			if err != nil {
				t.Fatal(err)
			}
			if got != s*x {
				t.Fatalf("scale(%d,%d) = %d", s, x, got)
			}
		}
	}
	if m.Region(0).Compiles != 2 {
		t.Errorf("compiles: %d", m.Region(0).Compiles)
	}
}
