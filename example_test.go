package dyncc_test

import (
	"fmt"

	"dyncc"
)

// Compile a keyed region: each distinct key value gets its own stitched,
// strength-reduced version, cached and reused.
func ExampleCompileDynamic() {
	const src = `
int scale(int s, int x) {
    int r;
    dynamicRegion key(s) () {
        r = x * s;
    }
    return r;
}`
	p, err := dyncc.CompileDynamic(src)
	if err != nil {
		panic(err)
	}
	m := p.NewMachine(0)
	for _, c := range [][2]int64{{7, 100}, {7, 200}, {12, 100}} {
		v, err := m.Call("scale", c[0], c[1])
		if err != nil {
			panic(err)
		}
		fmt.Printf("scale(%d, %d) = %d\n", c[0], c[1], v)
	}
	fmt.Printf("compiled versions: %d\n", m.Region(0).Compiles)
	// Output:
	// scale(7, 100) = 700
	// scale(7, 200) = 1400
	// scale(12, 100) = 1200
	// compiled versions: 2
}

// Measure the asymptotic speedup of dynamic compilation against the static
// baseline: both run on the same cycle-accurate VM.
func ExampleCompileStatic() {
	const src = `
int poly(int c, int x) {
    int r;
    dynamicRegion (c) {
        r = x * c + x / 16 + (x % 16) * 3;
    }
    return r;
}`
	run := func(p *dyncc.Program) uint64 {
		m := p.NewMachine(0)
		for i := int64(0); i < 1000; i++ {
			if _, err := m.Call("poly", 10, i); err != nil {
				panic(err)
			}
		}
		return m.Region(0).ExecCycles
	}
	ps, _ := dyncc.CompileStatic(src)
	pd, _ := dyncc.CompileDynamic(src)
	static, dynamic := run(ps), run(pd)
	fmt.Printf("dynamic compilation wins: %v\n", dynamic < static)
	// Output:
	// dynamic compilation wins: true
}

// The stitcher reports what it did: branches resolved, loops unrolled,
// strength reductions applied (the paper's Table 3 raw material).
func ExampleProgram_StitchStats() {
	const src = `
int sum(int *w, int n, int *x) {
    int s = 0;
    dynamicRegion (w, n) {
        int i;
        unrolled for (i = 0; i < n; i++) {
            s = s + w[i] * x dynamic[i];
        }
    }
    return s;
}`
	p, _ := dyncc.CompileDynamic(src)
	m := p.NewMachine(0)
	w, _ := m.Alloc(3)
	x, _ := m.Alloc(3)
	for i := int64(0); i < 3; i++ {
		m.Mem()[w+i] = 1 << i // 1, 2, 4: multiplies reduce to shifts
		m.Mem()[x+i] = 10
	}
	v, _ := m.Call("sum", w, 3, x)
	st := p.StitchStats(0)
	fmt.Printf("sum = %d\n", v)
	fmt.Printf("iterations unrolled: %d\n", st.LoopIterations)
	fmt.Printf("strength reductions: %v\n", st.StrengthReductions >= 2)
	// Output:
	// sum = 70
	// iterations unrolled: 3
	// strength reductions: true
}
