package dyncc

// Go benchmarks regenerating the paper's evaluation (section 5): one
// benchmark per Table 2 row plus the section 5 register-actions result.
// Each reports the paper's metrics as custom units:
//
//	speedup          asymptotic speedup (static cycles / dynamic cycles)
//	breakeven-uses   uses at which dynamic compilation pays off
//	overhead-cycles  set-up + stitcher cycles
//	cyc/stitched     overhead per stitched instruction (Table 2's last column)
//
// Run: go test -bench=. -benchmem
import (
	"testing"

	"dyncc/internal/bench"
)

func reportRow(b *testing.B, f func(bench.Config) (*bench.Measurement, error), cfg bench.Config) {
	b.Helper()
	var m *bench.Measurement
	var err error
	for i := 0; i < b.N; i++ {
		m, err = f(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.Speedup, "speedup")
	b.ReportMetric(float64(m.Breakeven), "breakeven-uses")
	b.ReportMetric(float64(m.Overhead), "overhead-cycles")
	b.ReportMetric(m.CyclesPerStitched, "cyc/stitched")
}

func BenchmarkTable2Calculator(b *testing.B) {
	reportRow(b, bench.Calculator, bench.Config{Uses: 500})
}

func BenchmarkTable2ScalarMatrix(b *testing.B) {
	reportRow(b, bench.ScalarMatrix, bench.Config{Uses: 30})
}

func BenchmarkTable2SparseLarge(b *testing.B) {
	reportRow(b, bench.SparseLarge, bench.Config{Uses: 10})
}

func BenchmarkTable2SparseSmall(b *testing.B) {
	reportRow(b, bench.SparseSmall, bench.Config{Uses: 20})
}

func BenchmarkTable2Dispatcher(b *testing.B) {
	reportRow(b, bench.Dispatcher, bench.Config{Uses: 800})
}

func BenchmarkTable2Sorter4(b *testing.B) {
	reportRow(b, bench.Sorter4, bench.Config{Uses: 3})
}

func BenchmarkTable2Sorter32(b *testing.B) {
	reportRow(b, bench.Sorter32, bench.Config{Uses: 2})
}

// Section 5: the register-actions extension on the calculator.
func BenchmarkRegisterActions(b *testing.B) {
	reportRow(b, bench.Calculator, bench.Config{Uses: 500, RegisterActions: true})
}

// Ablation: the stitcher's value-based peephole disabled (Table 3's
// strength-reduction column contribution).
func BenchmarkAblationNoStrengthReduction(b *testing.B) {
	reportRow(b, bench.ScalarMatrix, bench.Config{Uses: 30, NoStrengthReduction: true})
}

// Compilation-speed benchmarks: the static compile and the dynamic compile
// (stitch) of the cache-lookup region.
func BenchmarkStaticCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CompileDynamic(cacheLookupSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStitch(b *testing.B) {
	p, err := CompileDynamic(cacheLookupSrc)
	if err != nil {
		b.Fatal(err)
	}
	m := p.NewMachine(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m.ResetCounters()
		m.m.Reset() // drops the cached specialization; next call re-stitches
		cache := buildCacheB(b, m, 32, 512, 4)
		b.StartTimer()
		if _, err := m.Call("cacheLookup", 0x12345, cache); err != nil {
			b.Fatal(err)
		}
	}
}

// buildCacheB is buildCache for benchmarks.
func buildCacheB(b *testing.B, m *Machine, blockSize, numLines, assoc int64) int64 {
	b.Helper()
	alloc := func(n int64) int64 {
		a, err := m.Alloc(n)
		if err != nil {
			b.Fatal(err)
		}
		return a
	}
	mem := m.Mem()
	cache := alloc(4)
	lines := alloc(numLines)
	mem[cache+0], mem[cache+1], mem[cache+2], mem[cache+3] = blockSize, numLines, assoc, lines
	for l := int64(0); l < numLines; l++ {
		lineS := alloc(1)
		mem[lines+l] = lineS
		sets := alloc(assoc)
		mem[lineS] = sets
		for w := int64(0); w < assoc; w++ {
			set := alloc(2)
			mem[sets+w] = set
			mem[set] = -1
		}
	}
	return cache
}

// Extra: the paper's Figure 1 cache-lookup example, quantified.
func BenchmarkCacheSimExample(b *testing.B) {
	reportRow(b, bench.CacheSim, bench.Config{Uses: 2000})
}

// Extension (paper section 7): merged one-pass set-up + stitching.
func BenchmarkMergedStitch(b *testing.B) {
	reportRow(b, bench.SparseSmall, bench.Config{Uses: 20, MergedStitch: true})
}
