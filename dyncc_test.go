package dyncc

import "testing"

// mustStatic compiles statically or fails the test.
func mustStatic(t *testing.T, src string) *Program {
	t.Helper()
	p, err := CompileStatic(src)
	if err != nil {
		t.Fatalf("static compile: %v", err)
	}
	return p
}

func mustDynamic(t *testing.T, src string) *Program {
	t.Helper()
	// KeepStitched: several golden tests inspect the stitched segments,
	// which are not retained by default.
	p, err := Compile(src, Config{Dynamic: true, Optimize: true,
		Cache: CacheOptions{KeepStitched: true}})
	if err != nil {
		t.Fatalf("dynamic compile: %v", err)
	}
	return p
}

func runI(t *testing.T, p *Program, fn string, args ...int64) int64 {
	t.Helper()
	m := p.NewMachine(0)
	v, err := m.Call(fn, args...)
	if err != nil {
		t.Fatalf("run %s: %v", fn, err)
	}
	return v
}

func TestStaticArith(t *testing.T) {
	p := mustStatic(t, `
int f(int x, int y) {
    return (x + y) * 3 - x / 2 + (x % 5) - (y << 1) + (x & y) ;
}`)
	got := runI(t, p, "f", 17, 5)
	x, y := int64(17), int64(5)
	want := (x+y)*3 - x/2 + (x % 5) - (y << 1) + (x & y)
	if got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestStaticControlFlow(t *testing.T) {
	p := mustStatic(t, `
int collatzSteps(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3*n + 1; }
        steps++;
    }
    return steps;
}
int fib(int n) {
    if (n < 2) return n;
    return fib(n-1) + fib(n-2);
}
int gotoLoop(int n) {
    int i = 0, acc = 0;
top:
    if (i >= n) goto done;
    acc += i;
    i++;
    goto top;
done:
    return acc;
}
int sw(int x) {
    int r = 0;
    switch (x) {
    case 1: r += 10; /* fall through */
    case 2: r += 20; break;
    case 3: r = 99; break;
    default: r = -1;
    }
    return r;
}`)
	if got := runI(t, p, "collatzSteps", 27); got != 111 {
		t.Errorf("collatz(27) = %d, want 111", got)
	}
	if got := runI(t, p, "fib", 12); got != 144 {
		t.Errorf("fib(12) = %d, want 144", got)
	}
	if got := runI(t, p, "gotoLoop", 10); got != 45 {
		t.Errorf("gotoLoop(10) = %d, want 45", got)
	}
	for x, want := range map[int64]int64{1: 30, 2: 20, 3: 99, 7: -1} {
		if got := runI(t, p, "sw", x); got != want {
			t.Errorf("sw(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestStaticArraysStructs(t *testing.T) {
	p := mustStatic(t, `
struct Point { int x; int y; };
int sumArray(int n) {
    int a[16];
    int i;
    for (i = 0; i < n; i++) a[i] = i * i;
    int s = 0;
    for (i = 0; i < n; i++) s += a[i];
    return s;
}
int structs(int v) {
    struct Point p;
    p.x = v;
    p.y = v * 2;
    struct Point *q = &p;
    q->x += 5;
    return p.x + q->y;
}
int heap(int n) {
    int *a = alloc(n);
    int i;
    for (i = 0; i < n; i++) a[i] = i + 1;
    int s = 0;
    for (i = 0; i < n; i++) s += a[i];
    return s;
}`)
	if got := runI(t, p, "sumArray", 10); got != 285 {
		t.Errorf("sumArray(10) = %d, want 285", got)
	}
	if got := runI(t, p, "structs", 7); got != 12+14 {
		t.Errorf("structs(7) = %d, want 26", got)
	}
	if got := runI(t, p, "heap", 100); got != 5050 {
		t.Errorf("heap(100) = %d, want 5050", got)
	}
}

func TestStaticFloat(t *testing.T) {
	p := mustStatic(t, `
float poly(float x) {
    return 3.0 * x * x - 2.5 * x + 1.0;
}`)
	m := p.NewMachine(0)
	got, err := m.CallF("poly", 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.0*4.0-2.5*2.0+1.0 {
		t.Fatalf("poly(2) = %g", got)
	}
}

const trivialRegion = `
int f(int c, int x) {
    int r;
    dynamicRegion (c) {
        r = c * 10 + x;
    }
    return r;
}`

func TestDynamicTrivialRegion(t *testing.T) {
	ps := mustStatic(t, trivialRegion)
	pd := mustDynamic(t, trivialRegion)
	for _, x := range []int64{0, 1, -3, 100} {
		want := runI(t, ps, "f", 7, x)
		got := runI(t, pd, "f", 7, x)
		if got != want {
			t.Fatalf("f(7,%d): dynamic %d != static %d", x, got, want)
		}
	}
}

// The paper's running example (section 2 / Figure 1): cache lookup in a
// cache simulator. Layout (one word per field):
//
//	Cache:   blockSize, numLines, associativity, lines(ptr)
//	Line:    sets(ptr)
//	Set:     tag, data
const cacheLookupSrc = `
struct SetStructure { int tag; int data; };
struct CacheLine { struct SetStructure **sets; };
struct Cache {
    unsigned blockSize;
    unsigned numLines;
    int associativity;
    struct CacheLine **lines;
};

int cacheLookup(unsigned addr, struct Cache *cache) {
    dynamicRegion (cache) {
        unsigned blockSize = cache->blockSize;
        unsigned numLines = cache->numLines;
        unsigned tag = addr / (blockSize * numLines);
        unsigned line = (addr / blockSize) % numLines;
        struct SetStructure **setArray = cache->lines[line]->sets;
        int assoc = cache->associativity;
        int set;
        unrolled for (set = 0; set < assoc; set++) {
            if (setArray[set] dynamic-> tag == tag)
                return 1; /* CacheHit */
        }
        return 0; /* CacheMiss */
    }
    return -1;
}`

// buildCache constructs the cache data structure in VM memory and returns
// its address. tags[line][way] provides initial tag contents.
func buildCache(t *testing.T, m *Machine, blockSize, numLines, assoc int64) int64 {
	t.Helper()
	alloc := func(n int64) int64 {
		a, err := m.Alloc(n)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	mem := m.Mem()
	cache := alloc(4)
	lines := alloc(numLines)
	mem[cache+0] = blockSize
	mem[cache+1] = numLines
	mem[cache+2] = assoc
	mem[cache+3] = lines
	for l := int64(0); l < numLines; l++ {
		lineS := alloc(1)
		mem[lines+l] = lineS
		sets := alloc(assoc)
		mem[lineS] = sets
		for w := int64(0); w < assoc; w++ {
			set := alloc(2)
			mem[sets+w] = set
			mem[set] = -1 // empty tag
		}
	}
	return cache
}

// plantTag installs a tag so that addr hits in the cache.
func plantTag(m *Machine, cache, addr int64, way int64) {
	mem := m.Mem()
	blockSize := mem[cache+0]
	numLines := mem[cache+1]
	tag := addr / (blockSize * numLines)
	line := (addr / blockSize) % numLines
	lineS := mem[mem[cache+3]+line]
	set := mem[mem[lineS]+way]
	mem[set] = tag
}

func TestCacheLookupDynamicMatchesStatic(t *testing.T) {
	ps := mustStatic(t, cacheLookupSrc)
	pd := mustDynamic(t, cacheLookupSrc)

	run := func(p *Program) []int64 {
		m := p.NewMachine(0)
		cache := buildCache(t, m, 32, 512, 4)
		plantTag(m, cache, 0x12345, 2)
		plantTag(m, cache, 0x400, 0)
		var out []int64
		for _, addr := range []int64{0x12345, 0x400, 0x99999, 0, 0x12340} {
			v, err := m.Call("cacheLookup", addr, cache)
			if err != nil {
				t.Fatalf("cacheLookup(%#x): %v", addr, err)
			}
			out = append(out, v)
		}
		return out
	}
	sres := run(ps)
	dres := run(pd)
	for i := range sres {
		if sres[i] != dres[i] {
			t.Fatalf("lookup %d: static %d, dynamic %d", i, sres[i], dres[i])
		}
	}
	// 0x12345 and 0x400 planted as hits; 0x12340 shares the block of 0x12345.
	want := []int64{1, 1, 0, 0, 1}
	for i := range want {
		if sres[i] != want[i] {
			t.Fatalf("lookup %d = %d, want %d", i, sres[i], want[i])
		}
	}
}

// TestBoundedCacheAPI exercises the public cache-lifecycle surface: caps,
// the statistics invariant, churn reporting, and key invalidation.
func TestBoundedCacheAPI(t *testing.T) {
	const src = `
int scale(int s, int x) {
    int r;
    dynamicRegion key(s) () {
        r = x * s;
    }
    return r;
}`
	p, err := Compile(src, Config{Dynamic: true, Optimize: true,
		Cache: CacheOptions{
			MaxEntries:        4,
			MachineMaxEntries: 4,
			Shards:            1,
			ChurnStats:        true,
		}})
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(0)
	for s := int64(1); s <= 16; s++ {
		if got, err := m.Call("scale", s, 3); err != nil || got != 3*s {
			t.Fatalf("scale(%d,3) = %d, %v", s, got, err)
		}
	}
	cs := p.CacheStats()
	if cs.PeakEntries > 4 || cs.EntriesResident > 4 {
		t.Errorf("cap not enforced: %+v", cs)
	}
	if cs.Evictions == 0 || cs.BytesResident == 0 {
		t.Errorf("eviction stats missing: %+v", cs)
	}
	if cs.Lookups != cs.SharedHits+cs.Waits+cs.FailedHits+cs.Misses {
		t.Errorf("lookup invariant violated: %+v", cs)
	}
	churn := p.CacheChurn()
	if len(churn) != 1 || churn[0].Stitches != cs.Stitches {
		t.Errorf("churn report: %+v (stats %+v)", churn, cs)
	}

	p.InvalidateKey(0, 16)
	if got, err := m.Call("scale", 16, 5); err != nil || got != 80 {
		t.Fatalf("after InvalidateKey: %d, %v", got, err)
	}
	if got := p.CacheStats().Invalidations; got != 1 {
		t.Errorf("invalidations: %d, want 1", got)
	}
}
