module dyncc

go 1.22
