package dyncc

import (
	"strings"
	"testing"

	"dyncc/internal/bench"
	"dyncc/internal/rtr"
	"dyncc/internal/vm"
)

// TestCacheLookupGolden reproduces the paper's section 4 walk-through: for
// a cache of 512 lines, 32-byte blocks and 4-way associativity, the final
// stitched code must have the shape
//
//	unsigned tag  = addr >> 14;
//	unsigned line = (addr >> 5) & 511;
//	setArray = cacheLines[line]->sets;
//	if (setArray[0]->tag == tag) goto L1;   (x4, fully unrolled)
//	return CacheMiss;  L1: return CacheHit;
//
// i.e. both divides strength-reduced to shifts, the modulus to a mask, the
// set loop fully unrolled into four compares, no multiplies, no divides,
// and no loop branches left.
func TestCacheLookupGolden(t *testing.T) {
	pd := mustDynamic(t, cacheLookupSrc)
	m := pd.NewMachine(0)
	cache := buildCache(t, m, 32, 512, 4)
	if _, err := m.Call("cacheLookup", 0x12345, cache); err != nil {
		t.Fatal(err)
	}

	segs := pd.c.Runtime.Stitched[0]
	if len(segs) != 1 {
		t.Fatalf("stitched segments: %d", len(segs))
	}
	code := segs[0].Code

	count := map[vm.Op]int{}
	shiftAmounts := map[int64]int{}
	for _, in := range code {
		count[in.Op]++
		if in.Op == vm.SHRUI {
			shiftAmounts[in.Imm]++
		}
	}

	// Divides became shifts: addr/(32*512) -> >>14, addr/32 -> >>5.
	if count[vm.DIV]+count[vm.DIVI]+count[vm.UDIV]+count[vm.UDIVI] != 0 {
		t.Error("divide survived strength reduction")
	}
	if shiftAmounts[14] != 1 || shiftAmounts[5] != 1 {
		t.Errorf("expected shifts by 14 and 5, got %v", shiftAmounts)
	}
	// Modulus became a mask by 511.
	maskOK := false
	for _, in := range code {
		if in.Op == vm.ANDI && in.Imm == 511 {
			maskOK = true
		}
	}
	if !maskOK {
		t.Error("expected ANDI 511 for the line modulus")
	}
	if count[vm.MOD]+count[vm.MODI]+count[vm.UMOD]+count[vm.UMODI] != 0 {
		t.Error("modulus survived strength reduction")
	}
	if count[vm.MUL]+count[vm.MULI] != 0 {
		t.Error("multiply survived (blockSize*numLines folds into set-up)")
	}
	// The 4-way probe loop is fully unrolled: four tag compares (fused
	// into load-compare or compare-and-branch superinstructions), no
	// backward branches.
	tagCmps := count[vm.SEQ] + count[vm.SEQI]
	for _, in := range code {
		switch in.Op {
		case vm.CMPBR, vm.CMPBRI, vm.LDOP, vm.LDOPR:
			if in.Sub == vm.SEQ {
				tagCmps++
			}
		}
	}
	if tagCmps != 4 {
		t.Errorf("expected 4 unrolled tag compares, got %d", tagCmps)
	}
	for pc, in := range code {
		switch in.Op {
		case vm.BR, vm.BEQZ, vm.BNEZ, vm.BEQI, vm.CMPBR, vm.CMPBRI:
			if in.Target <= pc {
				t.Errorf("backward branch at %d — loop not fully unrolled", pc)
			}
		}
	}
	// The cache lines base pointer comes from the linearized large-constant
	// table (paper: pointers don't fit immediates).
	if count[vm.LDC] == 0 {
		t.Error("expected an LDC for the cache-lines pointer")
	}

	// Plan statistics match the paper's walk-through: 4 loads eliminated
	// (blockSize, numLines, lines, associativity), loop unrolled, branch
	// resolution per iteration.
	ps := pd.PlanStats(0)
	if ps.LoadsEliminated != 4 {
		t.Errorf("loads eliminated: %d, want 4", ps.LoadsEliminated)
	}
	if ps.LoopsUnrolled != 1 {
		t.Errorf("loops unrolled: %d", ps.LoopsUnrolled)
	}
	ss := pd.StitchStats(0)
	if ss.LoopIterations != 4 {
		t.Errorf("unrolled iterations: %d, want 4", ss.LoopIterations)
	}
	if ss.BranchesResolved < 5 { // 4 loop-continue tests + final exit test
		t.Errorf("branches resolved: %d", ss.BranchesResolved)
	}
}

// TestTable2FusionGolden pins the fusion layer's cost neutrality to the
// paper artifact itself: every Table 2 column derives from modeled guest
// cycles, so turning superinstruction fusion off must not move a single
// byte of the rendered rows.
func TestTable2FusionGolden(t *testing.T) {
	kernels := []func(bench.Config) (*bench.Measurement, error){
		bench.Calculator,
		bench.Dispatcher,
	}
	if !testing.Short() {
		kernels = append(kernels, bench.ScalarMatrix, bench.CacheSim)
	}
	for _, mk := range kernels {
		fused, err := mk(bench.Config{})
		if err != nil {
			t.Fatal(err)
		}
		unfused, err := mk(bench.Config{NoFuse: true})
		if err != nil {
			t.Fatal(err)
		}
		if fused.String() != unfused.String() {
			t.Errorf("%s: Table 2 row changed by fusion:\nfused   %s\nunfused %s",
				fused.Name, fused, unfused)
		}
	}
}

// TestTable3AsyncGolden pins tiered execution to the paper artifact: the
// Table 3 optimization matrix is derived from splitter plans and folded
// stitcher statistics, and after the harness quiesces the background pool
// every distinct key has been stitched exactly once — so turning
// AsyncStitch on must not move a single byte of the rendered table.
func TestTable3AsyncGolden(t *testing.T) {
	kernels := []func(bench.Config) (*bench.Measurement, error){
		bench.Calculator,
	}
	if !testing.Short() {
		kernels = append(kernels, bench.ScalarMatrix, bench.CacheSim)
	}
	render := func(cfg bench.Config) string {
		var rows []*bench.Measurement
		for _, mk := range kernels {
			m, err := mk(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rows = append(rows, m)
		}
		var sb strings.Builder
		bench.PrintTable3(&sb, bench.Table3(rows))
		return sb.String()
	}
	inline := render(bench.Config{})
	async := render(bench.Config{Cache: rtr.CacheOptions{AsyncStitch: true}})
	if inline != async {
		t.Errorf("Table 3 changed under AsyncStitch:\n--- inline ---\n%s--- async ---\n%s",
			inline, async)
	}
}

// The directives listing must use the paper's Table 1 vocabulary.
func TestDirectiveListing(t *testing.T) {
	pd := mustDynamic(t, cacheLookupSrc)
	ds := pd.RegionTemplates(0).Directives()
	vocab := map[string]bool{}
	for _, d := range ds {
		for _, kw := range []string{"START", "END", "HOLE", "CONST_BRANCH",
			"ENTER_LOOP", "EXIT", "RESTART_LOOP", "BRANCH", "LABEL"} {
			if len(d) >= len(kw) && d[:len(kw)] == kw {
				vocab[kw] = true
			}
		}
	}
	for _, kw := range []string{"START", "END", "HOLE", "CONST_BRANCH",
		"ENTER_LOOP", "RESTART_LOOP", "LABEL"} {
		if !vocab[kw] {
			t.Errorf("directive %s missing from listing", kw)
		}
	}
}
