package lexer

import (
	"testing"

	"dyncc/internal/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	lx := New(src)
	var ks []token.Kind
	for {
		tok := lx.Next()
		if tok.Kind == token.EOF {
			break
		}
		ks = append(ks, tok.Kind)
	}
	if errs := lx.Errors(); len(errs) > 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	return ks
}

func TestOperators(t *testing.T) {
	src := `+ - * / % & | ^ ~ ! << >> < > <= >= == != && || = += -= *= /= %= &= |= ^= <<= >>= ++ -- -> . ? : , ; ( ) { } [ ]`
	want := []token.Kind{
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.AMP, token.PIPE, token.CARET, token.TILDE, token.BANG,
		token.SHL, token.SHR, token.LT, token.GT, token.LE, token.GE,
		token.EQ, token.NE, token.ANDAND, token.OROR,
		token.ASSIGN, token.ADDA, token.SUBA, token.MULA, token.DIVA, token.MODA,
		token.ANDA, token.ORA, token.XORA, token.SHLA, token.SHRA,
		token.INC, token.DEC, token.ARROW, token.DOT, token.QUESTION, token.COLON,
		token.COMMA, token.SEMI, token.LPAREN, token.RPAREN,
		token.LBRACE, token.RBRACE, token.LBRACK, token.RBRACK,
	}
	got := kinds(t, src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s want %s", i, got[i], want[i])
		}
	}
}

func TestKeywordsAndAnnotations(t *testing.T) {
	got := kinds(t, `int unsigned float void struct if else while for switch case
		default break continue goto return dynamicRegion key unrolled dynamic`)
	want := []token.Kind{
		token.KwInt, token.KwUnsigned, token.KwFloat, token.KwVoid, token.KwStruct,
		token.KwIf, token.KwElse, token.KwWhile, token.KwFor, token.KwSwitch,
		token.KwCase, token.KwDefault, token.KwBreak, token.KwContinue,
		token.KwGoto, token.KwReturn,
		token.KwDynamicRegion, token.KwKey, token.KwUnrolled, token.KwDynamic,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s want %s", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	lx := New("0 42 0x1F 3.5 2e3 1e-2 7u 9L")
	var vals []token.Token
	for {
		tok := lx.Next()
		if tok.Kind == token.EOF {
			break
		}
		vals = append(vals, tok)
	}
	if len(lx.Errors()) > 0 {
		t.Fatalf("errors: %v", lx.Errors())
	}
	checkInt := func(i int, want int64) {
		t.Helper()
		if vals[i].Kind != token.INT || vals[i].IntVal != want {
			t.Errorf("token %d: got %v, want INT %d", i, vals[i], want)
		}
	}
	checkFloat := func(i int, want float64) {
		t.Helper()
		if vals[i].Kind != token.FLOAT || vals[i].FloatVal != want {
			t.Errorf("token %d: got %v, want FLOAT %g", i, vals[i], want)
		}
	}
	checkInt(0, 0)
	checkInt(1, 42)
	checkInt(2, 0x1F)
	checkFloat(3, 3.5)
	checkFloat(4, 2000)
	checkFloat(5, 0.01)
	checkInt(6, 7)
	checkInt(7, 9)
}

func TestCommentsAndStrings(t *testing.T) {
	lx := New(`a /* block
	   comment */ b // line comment
	c "hi\n" 'x' '\n'`)
	var toks []token.Token
	for {
		tok := lx.Next()
		if tok.Kind == token.EOF {
			break
		}
		toks = append(toks, tok)
	}
	if len(lx.Errors()) > 0 {
		t.Fatalf("errors: %v", lx.Errors())
	}
	if len(toks) != 6 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[3].Kind != token.STRING || toks[3].StrVal != "hi\n" {
		t.Errorf("string: %v", toks[3])
	}
	if toks[4].Kind != token.CHAR || toks[4].IntVal != 'x' {
		t.Errorf("char: %v", toks[4])
	}
	if toks[5].IntVal != '\n' {
		t.Errorf("escaped char: %v", toks[5])
	}
}

func TestPositions(t *testing.T) {
	lx := New("a\n  bb\n")
	t1 := lx.Next()
	t2 := lx.Next()
	if t1.Pos.Line != 1 || t1.Pos.Col != 1 {
		t.Errorf("a at %v", t1.Pos)
	}
	if t2.Pos.Line != 2 || t2.Pos.Col != 3 {
		t.Errorf("bb at %v", t2.Pos)
	}
}

func TestErrors(t *testing.T) {
	for _, src := range []string{"@", `"unterminated`, "'a", "/* open"} {
		lx := New(src)
		lx.All()
		if len(lx.Errors()) == 0 {
			t.Errorf("%q: expected a lex error", src)
		}
	}
}
