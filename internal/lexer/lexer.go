// Package lexer implements the MiniC scanner.
package lexer

import (
	"fmt"
	"strconv"
	"strings"

	"dyncc/internal/token"
)

// Lexer scans MiniC source text into tokens.
type Lexer struct {
	src  string
	off  int // byte offset of next rune
	line int
	col  int
	errs []error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the scan errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(p token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdent(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			p := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(p, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	p := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: p}
	}
	c := l.advance()
	switch {
	case isIdentStart(c):
		start := l.off - 1
		for l.off < len(l.src) && isIdent(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		return token.Token{Kind: token.LookupIdent(text), Text: text, Pos: p}
	case isDigit(c):
		return l.number(p, c)
	case c == '\'':
		return l.charLit(p)
	case c == '"':
		return l.stringLit(p)
	}

	two := func(next byte, k2, k1 token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: k2, Pos: p}
		}
		return token.Token{Kind: k1, Pos: p}
	}

	switch c {
	case '+':
		if l.peek() == '+' {
			l.advance()
			return token.Token{Kind: token.INC, Pos: p}
		}
		return two('=', token.ADDA, token.PLUS)
	case '-':
		switch l.peek() {
		case '-':
			l.advance()
			return token.Token{Kind: token.DEC, Pos: p}
		case '>':
			l.advance()
			return token.Token{Kind: token.ARROW, Pos: p}
		}
		return two('=', token.SUBA, token.MINUS)
	case '*':
		return two('=', token.MULA, token.STAR)
	case '/':
		return two('=', token.DIVA, token.SLASH)
	case '%':
		return two('=', token.MODA, token.PERCENT)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return token.Token{Kind: token.ANDAND, Pos: p}
		}
		return two('=', token.ANDA, token.AMP)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.OROR, Pos: p}
		}
		return two('=', token.ORA, token.PIPE)
	case '^':
		return two('=', token.XORA, token.CARET)
	case '~':
		return token.Token{Kind: token.TILDE, Pos: p}
	case '!':
		return two('=', token.NE, token.BANG)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return two('=', token.SHLA, token.SHL)
		}
		return two('=', token.LE, token.LT)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return two('=', token.SHRA, token.SHR)
		}
		return two('=', token.GE, token.GT)
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '.':
		return token.Token{Kind: token.DOT, Pos: p}
	case '?':
		return token.Token{Kind: token.QUESTION, Pos: p}
	case ':':
		return token.Token{Kind: token.COLON, Pos: p}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: p}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: p}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: p}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: p}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: p}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: p}
	case '[':
		return token.Token{Kind: token.LBRACK, Pos: p}
	case ']':
		return token.Token{Kind: token.RBRACK, Pos: p}
	}
	l.errorf(p, "illegal character %q", c)
	return token.Token{Kind: token.ILLEGAL, Text: string(c), Pos: p}
}

func (l *Lexer) number(p token.Pos, first byte) token.Token {
	start := l.off - 1
	if first == '0' && (l.peek() == 'x' || l.peek() == 'X') {
		l.advance()
		for l.off < len(l.src) && isHex(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		v, err := strconv.ParseUint(text[2:], 16, 64)
		if err != nil {
			l.errorf(p, "bad hex literal %q: %v", text, err)
		}
		l.suffix()
		return token.Token{Kind: token.INT, Text: text, Pos: p, IntVal: int64(v)}
	}
	isFloat := false
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.off = save
		}
	}
	text := l.src[start:l.off]
	l.suffix()
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			l.errorf(p, "bad float literal %q: %v", text, err)
		}
		return token.Token{Kind: token.FLOAT, Text: text, Pos: p, FloatVal: f}
	}
	v, err := strconv.ParseUint(text, 10, 64)
	if err != nil {
		l.errorf(p, "bad int literal %q: %v", text, err)
	}
	return token.Token{Kind: token.INT, Text: text, Pos: p, IntVal: int64(v)}
}

// suffix consumes and ignores C integer/float suffixes (u, U, l, L, f, F).
func (l *Lexer) suffix() {
	for l.off < len(l.src) && strings.IndexByte("uUlLfF", l.peek()) >= 0 {
		l.advance()
	}
}

func (l *Lexer) escape(p token.Pos) byte {
	if l.off >= len(l.src) {
		l.errorf(p, "unterminated escape")
		return 0
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\', '\'', '"':
		return c
	}
	l.errorf(p, "unknown escape \\%c", c)
	return c
}

func (l *Lexer) charLit(p token.Pos) token.Token {
	var v byte
	if l.off >= len(l.src) {
		l.errorf(p, "unterminated char literal")
		return token.Token{Kind: token.ILLEGAL, Pos: p}
	}
	c := l.advance()
	if c == '\\' {
		v = l.escape(p)
	} else {
		v = c
	}
	if l.peek() == '\'' {
		l.advance()
	} else {
		l.errorf(p, "unterminated char literal")
	}
	return token.Token{Kind: token.CHAR, Text: string(v), Pos: p, IntVal: int64(v)}
}

func (l *Lexer) stringLit(p token.Pos) token.Token {
	var sb strings.Builder
	for l.off < len(l.src) {
		c := l.advance()
		if c == '"' {
			return token.Token{Kind: token.STRING, Text: sb.String(), Pos: p, StrVal: sb.String()}
		}
		if c == '\\' {
			sb.WriteByte(l.escape(p))
			continue
		}
		if c == '\n' {
			break
		}
		sb.WriteByte(c)
	}
	l.errorf(p, "unterminated string literal")
	return token.Token{Kind: token.ILLEGAL, Pos: p}
}

// All scans the entire input and returns all tokens up to and including EOF.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}
