package token

import "testing"

func TestBinOpFor(t *testing.T) {
	cases := map[Kind]Kind{
		ADDA: PLUS, SUBA: MINUS, MULA: STAR, DIVA: SLASH, MODA: PERCENT,
		ANDA: AMP, ORA: PIPE, XORA: CARET, SHLA: SHL, SHRA: SHR,
	}
	for in, want := range cases {
		if got := BinOpFor(in); got != want {
			t.Errorf("BinOpFor(%s) = %s, want %s", in, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("BinOpFor(PLUS) should panic")
		}
	}()
	BinOpFor(PLUS)
}

func TestIsAssign(t *testing.T) {
	for k := ASSIGN; k <= SHRA; k++ {
		if !k.IsAssign() {
			t.Errorf("%s should be an assignment op", k)
		}
	}
	for _, k := range []Kind{PLUS, EQ, INC, LBRACE} {
		if k.IsAssign() {
			t.Errorf("%s should not be an assignment op", k)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if KwDynamicRegion.String() != "dynamicRegion" {
		t.Error("keyword name")
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kinds must still render")
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: IDENT, Text: "foo"}
	if tok.String() != `IDENT("foo")` {
		t.Errorf("got %s", tok)
	}
	if (Token{Kind: ARROW}).String() != "->" {
		t.Error("operator token rendering")
	}
}

func TestPosString(t *testing.T) {
	if (Pos{Line: 3, Col: 7}).String() != "3:7" {
		t.Error("pos rendering")
	}
}
