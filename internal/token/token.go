// Package token defines the lexical tokens of MiniC, the C subset accepted
// by the dynamic-compilation system, including the annotation keywords from
// the paper (dynamicRegion, key, unrolled, dynamic).
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	ILLEGAL

	// Literals and identifiers.
	IDENT  // foo
	INT    // 123, 0x1f
	FLOAT  // 1.5, 2e10
	CHAR   // 'a'
	STRING // "abc"

	// Operators and punctuation.
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	AMP      // &
	PIPE     // |
	CARET    // ^
	TILDE    // ~
	BANG     // !
	SHL      // <<
	SHR      // >>
	LT       // <
	GT       // >
	LE       // <=
	GE       // >=
	EQ       // ==
	NE       // !=
	ANDAND   // &&
	OROR     // ||
	ASSIGN   // =
	ADDA     // +=
	SUBA     // -=
	MULA     // *=
	DIVA     // /=
	MODA     // %=
	ANDA     // &=
	ORA      // |=
	XORA     // ^=
	SHLA     // <<=
	SHRA     // >>=
	INC      // ++
	DEC      // --
	ARROW    // ->
	DOT      // .
	QUESTION // ?
	COLON    // :
	COMMA    // ,
	SEMI     // ;
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]

	// Keywords.
	KwInt
	KwUnsigned
	KwFloat
	KwDouble
	KwChar
	KwVoid
	KwStruct
	KwIf
	KwElse
	KwWhile
	KwDo
	KwFor
	KwSwitch
	KwCase
	KwDefault
	KwBreak
	KwContinue
	KwGoto
	KwReturn
	KwSizeof
	KwTypedef
	KwExtern
	KwStatic
	KwConst

	// Annotation keywords (paper section 2).
	KwDynamicRegion // dynamicRegion
	KwKey           // key
	KwUnrolled      // unrolled
	KwDynamic       // dynamic (annotation on *, ->, [])

	numKinds // sentinel: length of the interned name table
)

// The interned token tables below are package-level and immutable: they
// are fully populated at init and only ever read afterwards, so any
// number of lexers (and so any number of concurrent compilations —
// core.CompileBatch) may share them without synchronization. Nothing may
// write to them after init; the batch -race tests enforce this contract.

// kindNames is the interned Kind→spelling table, indexed by Kind.
var kindNames = [numKinds]string{
	EOF: "EOF", ILLEGAL: "ILLEGAL",
	IDENT: "IDENT", INT: "INT", FLOAT: "FLOAT", CHAR: "CHAR", STRING: "STRING",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	AMP: "&", PIPE: "|", CARET: "^", TILDE: "~", BANG: "!",
	SHL: "<<", SHR: ">>", LT: "<", GT: ">", LE: "<=", GE: ">=",
	EQ: "==", NE: "!=", ANDAND: "&&", OROR: "||",
	ASSIGN: "=", ADDA: "+=", SUBA: "-=", MULA: "*=", DIVA: "/=", MODA: "%=",
	ANDA: "&=", ORA: "|=", XORA: "^=", SHLA: "<<=", SHRA: ">>=",
	INC: "++", DEC: "--", ARROW: "->", DOT: ".", QUESTION: "?", COLON: ":",
	COMMA: ",", SEMI: ";", LPAREN: "(", RPAREN: ")",
	LBRACE: "{", RBRACE: "}", LBRACK: "[", RBRACK: "]",
	KwInt: "int", KwUnsigned: "unsigned", KwFloat: "float", KwDouble: "double",
	KwChar: "char", KwVoid: "void", KwStruct: "struct",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwDo: "do", KwFor: "for",
	KwSwitch: "switch", KwCase: "case", KwDefault: "default",
	KwBreak: "break", KwContinue: "continue", KwGoto: "goto", KwReturn: "return",
	KwSizeof: "sizeof", KwTypedef: "typedef", KwExtern: "extern",
	KwStatic: "static", KwConst: "const",
	KwDynamicRegion: "dynamicRegion", KwKey: "key",
	KwUnrolled: "unrolled", KwDynamic: "dynamic",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if k >= 0 && k < numKinds && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// keywords is the interned spelling→keyword table, derived from kindNames
// at init (every kind from KwInt on is a keyword). Immutable after init;
// look up through LookupIdent.
var keywords = func() map[string]Kind {
	m := make(map[string]Kind, numKinds-KwInt)
	for k := KwInt; k < numKinds; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// LookupIdent resolves an identifier spelling against the interned keyword
// table: the keyword's kind for reserved words, IDENT otherwise. Safe for
// unsynchronized concurrent use.
func LookupIdent(name string) Kind {
	if k, ok := keywords[name]; ok {
		return k
	}
	return IDENT
}

// IsKeyword reports whether name is a reserved word of MiniC.
func IsKeyword(name string) bool {
	_, ok := keywords[name]
	return ok
}

// Pos is a source position.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based, in bytes
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Text string // raw text for IDENT/INT/FLOAT/CHAR/STRING
	Pos  Pos

	IntVal   int64   // value for INT and CHAR
	FloatVal float64 // value for FLOAT
	StrVal   string  // decoded value for STRING
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, FLOAT, CHAR, STRING:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// IsAssign reports whether k is an assignment operator (=, +=, ...).
func (k Kind) IsAssign() bool { return k >= ASSIGN && k <= SHRA }

// BinOpFor maps a compound-assignment operator to its underlying binary
// operator kind (e.g. += to +). It panics on non-compound kinds.
func BinOpFor(k Kind) Kind {
	switch k {
	case ADDA:
		return PLUS
	case SUBA:
		return MINUS
	case MULA:
		return STAR
	case DIVA:
		return SLASH
	case MODA:
		return PERCENT
	case ANDA:
		return AMP
	case ORA:
		return PIPE
	case XORA:
		return CARET
	case SHLA:
		return SHL
	case SHRA:
		return SHR
	}
	panic("token: BinOpFor on non-compound assignment " + k.String())
}
