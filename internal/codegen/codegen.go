package codegen

import (
	"fmt"
	"math"

	"dyncc/internal/ir"
	"dyncc/internal/regalloc"
	"dyncc/internal/split"
	"dyncc/internal/tmpl"
	"dyncc/internal/types"
	"dyncc/internal/vm"
)

// Output is the result of module code generation.
type Output struct {
	Prog    *vm.Program
	Regions []*tmpl.Region // indexed by global region id

	// FuncAlloc exposes each function's register allocation (used by the
	// merged set-up mode to read set-up inputs out of a live machine).
	FuncAlloc map[string]*regalloc.Allocation
}

// Options configures code generation.
type Options struct {
	// NoFuse disables static-code superinstruction fusion (ablation
	// switch; fusion is host-side only and modeled-cost neutral).
	NoFuse bool
}

// Compile translates a lowered (and, in dynamic mode, split) module into a
// VM program plus region templates. splits maps each region to its split
// result; a nil map (or missing entries) means the region is compiled
// statically and only instrumented.
func Compile(mod *ir.Module, splits map[*ir.Region]*split.Result, opts Options) (*Output, error) {
	prog := &vm.Program{
		FuncIndex:   map[string]int{},
		GlobalWords: mod.GlobalWords,
		GlobalInit:  make([]int64, mod.GlobalWords),
	}
	for _, g := range mod.Globals {
		copy(prog.GlobalInit[g.Addr:], g.Init)
	}
	for i, f := range mod.Funcs {
		prog.FuncIndex[f.Name] = i
	}

	out := &Output{Prog: prog, FuncAlloc: map[string]*regalloc.Allocation{}}
	// Assign global region indices.
	regionIdx := map[*ir.Region]int{}
	for _, f := range mod.Funcs {
		for _, r := range f.Regions {
			regionIdx[r] = len(out.Regions)
			out.Regions = append(out.Regions, nil) // placeholder
		}
	}
	prog.NumRegions = len(out.Regions)

	for fi, f := range mod.Funcs {
		fg := &funcGen{
			mod: mod, f: f, fid: fi,
			splits:    splits,
			regionIdx: regionIdx,
			labels:    map[*ir.Block]int{},
			holes:     map[ir.Value]split.SlotRef{},
			noFuse:    opts.NoFuse,
		}
		seg, regions, err := fg.gen()
		if err != nil {
			return nil, fmt.Errorf("codegen %s: %w", f.Name, err)
		}
		prog.Segs = append(prog.Segs, seg)
		out.FuncAlloc[f.Name] = fg.alloc
		for _, tr := range regions {
			out.Regions[tr.Index] = tr
		}
	}
	// Fill placeholders for regions compiled statically (no templates).
	for i, r := range out.Regions {
		if r == nil {
			out.Regions[i] = &tmpl.Region{Index: i}
		}
	}
	return out, nil
}

type exitFixup struct {
	region *tmpl.Region
	blk    int
	succ   int
	target *ir.Block
}

type funcGen struct {
	mod       *ir.Module
	f         *ir.Func
	fid       int
	splits    map[*ir.Region]*split.Result
	regionIdx map[*ir.Region]int

	alloc  *regalloc.Allocation
	code   []vm.Inst
	labels map[*ir.Block]int
	fixups []struct {
		pc  int
		blk *ir.Block
	}
	regionOf []int16
	setupOf  []bool
	holes    map[ir.Value]split.SlotRef

	exitFixups []exitFixup
	static     bool // this function's regions are compiled statically
	noFuse     bool // disable superinstruction fusion

	// tables collects jump-table targets (as blocks) until labels are final.
	tables [][]*ir.Block
}

// gen runs the per-function backend pipeline and emits the segment.
func (fg *funcGen) gen() (*vm.Segment, []*tmpl.Region, error) {
	f := fg.f

	keepSwitch := map[*ir.Instr]bool{}
	for _, r := range f.Regions {
		sr := fg.splits[r]
		if sr == nil {
			fg.static = true
			continue
		}
		for v, slot := range sr.Holes {
			fg.holes[v] = slot
		}
		for br := range sr.BranchSlot {
			if br.Op == ir.OpSwitch {
				keepSwitch[br] = true
			}
		}
	}
	// Ordinary-code switches are emitted directly (jump table or
	// compare-and-branch chain); only run-time switches inside templates
	// must be lowered to two-way branches the stitcher can copy.
	for _, b := range f.Blocks {
		if t := b.Term(); t != nil && t.Op == ir.OpSwitch && !b.Template {
			keepSwitch[t] = true
		}
	}

	LowerSwitches(f, keepSwitch)
	f.SplitCriticalEdges()
	ir.DestroySSA(f)
	// Only hole values whose definitions were stripped into set-up code
	// lack registers. Annotated constants defined in ordinary code (the
	// seeds) are holes in templates *and* live register values elsewhere
	// (set-up stores them into the table; keyed dispatch reads them).
	holeSet := map[ir.Value]bool{}
	for v := range fg.holes {
		if def := f.DefOf(v); def != nil && def.Blk != nil && def.Blk.Template {
			holeSet[v] = true
		}
	}
	Legalize(f, fg.holes)
	fg.alloc = regalloc.Allocate(f, holeSet)

	// Emission order: DFS preorder over the CFG; template blocks are
	// traversed (their successors may be ordinary continuation code) but
	// not emitted. A region's set-up entry immediately follows its
	// OpDynEnter block, which falls through into it.
	var order []*ir.Block
	seen := map[*ir.Block]bool{}
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		if !b.Template {
			order = append(order, b)
		}
		for _, s := range b.Succs() {
			dfs(s)
		}
	}
	dfs(f.Entry())

	// Prologue.
	frame := int64(fg.alloc.FrameSize)
	if frame > 0 {
		fg.add(vm.Inst{Op: vm.SUBI, Rd: vm.RSP, Rs: vm.RSP, Imm: frame})
	}
	for i, p := range f.Params {
		loc := fg.alloc.Loc[p]
		src := vm.RA0 + vm.Reg(i)
		if loc.Spilled {
			fg.add(vm.Inst{Op: vm.ST, Rs: vm.RSP, Imm: int64(loc.Slot), Rt: src})
		} else if loc.Reg != 0 {
			fg.add(vm.Inst{Op: vm.MOV, Rd: loc.Reg, Rs: src})
		}
	}

	for _, b := range order {
		fg.labels[b] = len(fg.code)
		rid, setup := fg.blockAttribution(b)
		for _, in := range b.Instrs {
			if err := fg.emitInstr(in, b, rid, setup); err != nil {
				return nil, nil, err
			}
		}
	}
	fg.resolveFixups()
	fg.peephole()
	fg.fuse()

	// Templates.
	var regions []*tmpl.Region
	for _, r := range f.Regions {
		sr := fg.splits[r]
		if sr == nil {
			continue
		}
		tr, err := fg.emitTemplates(r, sr)
		if err != nil {
			return nil, nil, err
		}
		regions = append(regions, tr)
	}
	// Resolve region exit arcs now that function pcs are final.
	for _, fx := range fg.exitFixups {
		pc, ok := fg.labels[fx.target]
		if !ok {
			return nil, nil, fmt.Errorf("region exit to unemitted block b%d", fx.target.ID)
		}
		fx.region.Blocks[fx.blk].Term.Succs[fx.succ].ExitPC = pc
	}

	seg := &vm.Segment{
		Name:      f.Name,
		Code:      fg.code,
		FrameSize: fg.alloc.FrameSize,
		NumParams: len(f.Params),
		Region:    -1,
		RegionOf:  fg.regionOf,
		SetupOf:   fg.setupOf,
	}
	for _, entries := range fg.tables {
		tbl := make([]int, len(entries))
		for i, blk := range entries {
			pc, ok := fg.labels[blk]
			if !ok {
				return nil, nil, fmt.Errorf("jump table entry to unemitted block b%d", blk.ID)
			}
			tbl[i] = pc
		}
		seg.JumpTables = append(seg.JumpTables, tbl)
	}
	if fg.static {
		entry := make([]int32, len(fg.code))
		for i := range entry {
			entry[i] = -1
		}
		any := false
		for _, r := range f.Regions {
			if fg.splits[r] == nil {
				if pc, ok := fg.labels[r.Entry]; ok {
					entry[pc] = int32(fg.regionIdx[r])
					any = true
				}
			}
		}
		if any {
			seg.RegionEntry = entry
		}
	}
	seg.Prepare()
	return seg, regions, nil
}

// blockAttribution returns the region index (or -1) and set-up flag for
// cycle accounting of block b.
func (fg *funcGen) blockAttribution(b *ir.Block) (int16, bool) {
	if b.Region == nil {
		return -1, false
	}
	return int16(fg.regionIdx[b.Region]), b.Setup
}

// add appends an instruction to the function segment.
func (fg *funcGen) add(in vm.Inst) int {
	fg.code = append(fg.code, in)
	return len(fg.code) - 1
}

func (fg *funcGen) attribute(rid int16, setup bool, from int) {
	for len(fg.regionOf) < len(fg.code) {
		fg.regionOf = append(fg.regionOf, -1)
		fg.setupOf = append(fg.setupOf, false)
	}
	for i := from; i < len(fg.code); i++ {
		fg.regionOf[i] = rid
		fg.setupOf[i] = setup
	}
}

// ---------------------------------------------------------------- registers

type sink struct {
	code  *[]vm.Inst
	holes *[]tmpl.Hole
}

func (s sink) add(in vm.Inst) int {
	*s.code = append(*s.code, in)
	return len(*s.code) - 1
}

func (fg *funcGen) srcReg(v ir.Value, temp vm.Reg, s sink) vm.Reg {
	loc := fg.alloc.Loc[v]
	if !loc.Spilled {
		if loc.Reg == 0 {
			return vm.RZero // undefined value: reads as 0
		}
		return loc.Reg
	}
	s.add(vm.Inst{Op: vm.LD, Rd: temp, Rs: vm.RSP, Imm: int64(loc.Slot)})
	return temp
}

// dstReg returns the register to write v into and, when spilled, a store
// to flush afterwards.
func (fg *funcGen) dstReg(v ir.Value) (vm.Reg, *vm.Inst) {
	loc := fg.alloc.Loc[v]
	if !loc.Spilled {
		if loc.Reg == 0 {
			return regalloc.TempC, nil // dead value: scratch
		}
		return loc.Reg, nil
	}
	st := vm.Inst{Op: vm.ST, Rs: vm.RSP, Imm: int64(loc.Slot), Rt: regalloc.TempC}
	return regalloc.TempC, &st
}

func (fg *funcGen) isHole(v ir.Value) (split.SlotRef, bool) {
	s, ok := fg.holes[v]
	return s, ok
}

func (fg *funcGen) slotRef(s split.SlotRef) tmpl.SlotRef {
	if s.Loop == nil {
		return tmpl.SlotRef{LoopID: -1, Slot: s.Slot}
	}
	return tmpl.SlotRef{LoopID: s.Loop.ID, Slot: s.Slot}
}

var opMap = map[ir.Op]vm.Op{
	ir.OpAdd: vm.ADD, ir.OpSub: vm.SUB, ir.OpMul: vm.MUL,
	ir.OpDiv: vm.DIV, ir.OpUDiv: vm.UDIV, ir.OpMod: vm.MOD, ir.OpUMod: vm.UMOD,
	ir.OpAnd: vm.AND, ir.OpOr: vm.OR, ir.OpXor: vm.XOR,
	ir.OpShl: vm.SHL, ir.OpAShr: vm.SHR, ir.OpLShr: vm.SHRU,
	ir.OpEq: vm.SEQ, ir.OpNe: vm.SNE, ir.OpLt: vm.SLT, ir.OpLe: vm.SLE,
	ir.OpULt: vm.SLTU, ir.OpULe: vm.SLEU,
	ir.OpFAdd: vm.FADD, ir.OpFSub: vm.FSUB, ir.OpFMul: vm.FMUL, ir.OpFDiv: vm.FDIV,
	ir.OpFEq: vm.FEQ, ir.OpFNe: vm.FNE, ir.OpFLt: vm.FLT, ir.OpFLe: vm.FLE,
}

// emitBody lowers a non-terminator instruction into s. Used for both
// ordinary code and template code; hole operands are only legal when
// s.holes is non-nil.
func (fg *funcGen) emitBody(in *ir.Instr, s sink) error {
	f := fg.f
	floatHole := func(v ir.Value) bool {
		t := f.TypeOf(v)
		return t != nil && (t.IsFloat() || t.Kind == types.Pointer)
	}
	addHole := func(pc int, v ir.Value, slot split.SlotRef) error {
		if s.holes == nil {
			return fmt.Errorf("hole value v%d outside template", v)
		}
		*s.holes = append(*s.holes, tmpl.Hole{Pc: pc, Slot: fg.slotRef(slot), Float: floatHole(v)})
		return nil
	}

	switch in.Op {
	case ir.OpConst:
		rd, post := fg.dstReg(in.Dst)
		s.add(vm.Inst{Op: vm.LI, Rd: rd, Imm: in.Const})
		flush(s, post)
	case ir.OpFConst:
		rd, post := fg.dstReg(in.Dst)
		s.add(vm.Inst{Op: vm.LI, Rd: rd, Imm: floatBits(in.F)})
		flush(s, post)
	case ir.OpGlobalAddr:
		g := fg.mod.GlobalIndex[in.Sym]
		if g == nil {
			return fmt.Errorf("unknown global %s", in.Sym)
		}
		rd, post := fg.dstReg(in.Dst)
		s.add(vm.Inst{Op: vm.LI, Rd: rd, Imm: int64(g.Addr)})
		flush(s, post)
	case ir.OpStackAddr:
		rd, post := fg.dstReg(in.Dst)
		s.add(vm.Inst{Op: vm.ADDI, Rd: rd, Rs: vm.RSP, Imm: int64(in.Slot)})
		flush(s, post)
	case ir.OpCopy:
		rd, post := fg.dstReg(in.Dst)
		if slot, ok := fg.isHole(in.Args[0]); ok && s.holes != nil {
			var pc int
			if floatHole(in.Args[0]) {
				pc = s.add(vm.Inst{Op: vm.LDC, Rd: rd})
			} else {
				pc = s.add(vm.Inst{Op: vm.LI, Rd: rd})
			}
			if err := addHole(pc, in.Args[0], slot); err != nil {
				return err
			}
		} else {
			rs := fg.srcReg(in.Args[0], regalloc.TempA, s)
			s.add(vm.Inst{Op: vm.MOV, Rd: rd, Rs: rs})
		}
		flush(s, post)
	case ir.OpNeg, ir.OpNot, ir.OpFNeg, ir.OpIntToFloat, ir.OpFloatToInt:
		op := map[ir.Op]vm.Op{
			ir.OpNeg: vm.NEG, ir.OpNot: vm.NOT, ir.OpFNeg: vm.FNEG,
			ir.OpIntToFloat: vm.ITOF, ir.OpFloatToInt: vm.FTOI,
		}[in.Op]
		rs := fg.srcReg(in.Args[0], regalloc.TempA, s)
		rd, post := fg.dstReg(in.Dst)
		s.add(vm.Inst{Op: op, Rd: rd, Rs: rs})
		flush(s, post)
	case ir.OpLoad:
		rs := fg.srcReg(in.Args[0], regalloc.TempA, s)
		rd, post := fg.dstReg(in.Dst)
		s.add(vm.Inst{Op: vm.LD, Rd: rd, Rs: rs, Imm: in.Const})
		flush(s, post)
	case ir.OpStore:
		base := fg.srcReg(in.Args[0], regalloc.TempA, s)
		val := fg.srcReg(in.Args[1], regalloc.TempB, s)
		s.add(vm.Inst{Op: vm.ST, Rs: base, Imm: in.Const, Rt: val})
	case ir.OpCall:
		for i, a := range in.Args {
			r := fg.srcReg(a, regalloc.TempA, s)
			s.add(vm.Inst{Op: vm.MOV, Rd: vm.RA0 + vm.Reg(i), Rs: r})
		}
		var idx int64
		if bid, ok := vm.BuiltinIndex[in.Sym]; ok {
			idx = int64(-(bid + 1))
		} else if _, ok := fg.mod.FuncIndex[in.Sym]; ok {
			idx = int64(fg.funcID(in.Sym))
		} else {
			return fmt.Errorf("unknown callee %s", in.Sym)
		}
		s.add(vm.Inst{Op: vm.CALL, Imm: idx})
		if in.Dst != 0 {
			rd, post := fg.dstReg(in.Dst)
			s.add(vm.Inst{Op: vm.MOV, Rd: rd, Rs: vm.RRV})
			flush(s, post)
		}
	default:
		op, ok := opMap[in.Op]
		if !ok {
			return fmt.Errorf("cannot emit %s", in.Op)
		}
		// Fold a literal second operand into the immediate form (commuting
		// first when necessary); the materializing LI becomes dead and the
		// peephole removes it.
		args := in.Args
		// Hole operands take priority: a hole sits in position 1 (Legalize
		// put it there) and must never be displaced by the literal swap.
		holeInPlay := false
		if s.holes != nil {
			_, h0 := fg.isHole(args[0])
			_, h1 := fg.isHole(args[1])
			holeInPlay = h0 || h1
		}
		if _, lit1 := fg.literalOf(args[1]); !lit1 && !holeInPlay && in.Op.IsCommutative() {
			if _, lit0 := fg.literalOf(args[0]); lit0 {
				args = []ir.Value{args[1], args[0]}
			}
		}
		rs := fg.srcReg(args[0], regalloc.TempA, s)
		rd, post := fg.dstReg(in.Dst)
		if slot, hok := fg.isHole(args[1]); hok && s.holes != nil {
			immOp := vm.RegToImmForm(op)
			if immOp == vm.NOP {
				return fmt.Errorf("no immediate form for %s with hole operand", op)
			}
			pc := s.add(vm.Inst{Op: immOp, Rd: rd, Rs: rs})
			if err := addHole(pc, args[1], slot); err != nil {
				return err
			}
		} else if lv, lok := fg.literalOf(args[1]); lok && vm.FitsImm(lv) &&
			vm.RegToImmForm(op) != vm.NOP {
			s.add(vm.Inst{Op: vm.RegToImmForm(op), Rd: rd, Rs: rs, Imm: lv})
		} else {
			rt := fg.srcReg(args[1], regalloc.TempB, s)
			s.add(vm.Inst{Op: op, Rd: rd, Rs: rs, Rt: rt})
		}
		flush(s, post)
	}
	return nil
}

// literalOf reports the integer literal value of v, chasing copies.
func (fg *funcGen) literalOf(v ir.Value) (int64, bool) {
	for i := 0; i < 64; i++ {
		def := fg.f.DefOf(v)
		if def == nil {
			return 0, false
		}
		switch def.Op {
		case ir.OpConst:
			return def.Const, true
		case ir.OpCopy:
			v = def.Args[0]
		default:
			return 0, false
		}
	}
	return 0, false
}

func flush(s sink, post *vm.Inst) {
	if post != nil {
		s.add(*post)
	}
}

func floatBits(f float64) int64 {
	return int64(math.Float64bits(f))
}

// funcID maps a function name to its call index.
func (fg *funcGen) funcID(name string) int {
	for i, f := range fg.mod.Funcs {
		if f.Name == name {
			return i
		}
	}
	return -1
}
