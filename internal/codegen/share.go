package codegen

import "dyncc/internal/ir"

// regionShareable decides whether region r's stitched code is a pure
// function of its key-register values, which is the soundness condition for
// the runtime's cross-machine shared stitch cache (see tmpl.Region.Shareable
// and DESIGN.md "Runtime concurrency model").
//
// The rule: walk the set-up subgraph the splitter synthesized for r and
// require that
//
//  1. it performs no loads — every table value is computed, not read out of
//     machine memory, so the table contents cannot alias per-machine data;
//  2. its only calls are the builder's own "alloc" calls that create the
//     table and the unrolled-loop iteration records — their results are
//     consumed by the stitcher for record chasing and never emitted into
//     stitched code;
//  3. it takes no frame addresses (stack slot addresses differ per call
//     depth even on one machine); and
//  4. every value it consumes but does not define is either a region key
//     or a machine-independent constant (integer/float literal or a global
//     address, which is identical across machines of one Program).
//
// Under these conditions two machines presenting the same key bytes at
// DYNENTER would stitch bit-identical segments, so handing one machine's
// segment to the other is indistinguishable from re-stitching.
func regionShareable(f *ir.Func, r *ir.Region) bool {
	key := map[ir.Value]bool{}
	for _, k := range r.Keys {
		key[k] = true
	}

	// Values defined inside the set-up subgraph.
	defined := map[ir.Value]bool{}
	var setup []*ir.Instr
	for _, b := range f.Blocks {
		if !b.Setup || b.Region != r {
			continue
		}
		for _, in := range b.Instrs {
			if in.Dst != 0 {
				defined[in.Dst] = true
			}
			setup = append(setup, in)
		}
	}
	if len(setup) == 0 {
		// No set-up at all: the templates have no holes to fill, so the
		// stitched code is trivially key-independent and shareable.
		return true
	}

	for _, in := range setup {
		switch in.Op {
		case ir.OpLoad:
			return false // table contents would alias machine memory
		case ir.OpStackAddr:
			return false // frame addresses are not machine-independent
		case ir.OpCall:
			if in.Sym != "alloc" {
				return false
			}
		}
		for _, a := range in.Args {
			if a == 0 || defined[a] || key[a] {
				continue
			}
			def := f.DefOf(a)
			if def == nil {
				return false // parameter or unknown: not covered by the key
			}
			switch def.Op {
			case ir.OpConst, ir.OpFConst, ir.OpGlobalAddr:
				// Machine-independent by construction.
			default:
				return false
			}
		}
	}
	return true
}
