// Package codegen translates split, optimized IR into virtual-machine code:
// ordinary code for the function segment, and machine-code templates with
// holes plus directive metadata for each dynamic region (paper section 3.4).
package codegen

import (
	"dyncc/internal/ir"
	"dyncc/internal/split"
	"dyncc/internal/types"
)

// LowerSwitches rewrites every OpSwitch not in keep into a chain of
// compare-and-branch blocks, preserving φ argument alignment. Constant
// switches inside templates are kept: the stitcher resolves them from the
// table (CONST_BRANCH on an n-way branch).
func LowerSwitches(f *ir.Func, keep map[*ir.Instr]bool) {
	blocks := append([]*ir.Block(nil), f.Blocks...)
	for _, b := range blocks {
		term := b.Term()
		if term == nil || term.Op != ir.OpSwitch || keep[term] {
			continue
		}
		tag := term.Args[0]
		cases := term.Cases
		targets := term.Targets
		def := targets[len(cases)]

		// Track per-successor occurrence so duplicate edges update the
		// right predecessor slot.
		occ := map[*ir.Block]int{}
		replacePred := func(s *ir.Block, old, new *ir.Block) {
			k := occ[s]
			occ[s]++
			n := 0
			for i, p := range s.Preds {
				if p == old {
					if n == k {
						s.Preds[i] = new
						return
					}
					n++
				}
			}
		}

		// Build chain blocks c1..c(n-1); the first compare lives in b.
		cur := b
		b.Instrs = b.Instrs[:len(b.Instrs)-1] // drop the switch
		for i := range cases {
			cv := f.NewValue("", types.IntType)
			ci := &ir.Instr{Op: ir.OpConst, Const: cases[i], Dst: cv, Typ: types.IntType}
			ci.Blk = cur
			cur.Instrs = append(cur.Instrs, ci)
			f.ValueInfo(cv).Def = ci
			eq := f.NewValue("", types.IntType)
			ei := &ir.Instr{Op: ir.OpEq, Args: []ir.Value{tag, cv}, Dst: eq, Typ: types.IntType}
			ei.Blk = cur
			cur.Instrs = append(cur.Instrs, ei)
			f.ValueInfo(eq).Def = ei

			var next *ir.Block
			if i == len(cases)-1 {
				next = def
			} else {
				next = f.NewBlock()
				next.Region = b.Region
				next.Template = b.Template
				next.Setup = b.Setup
				next.Loops = append([]*ir.Loop(nil), b.Loops...)
			}
			br := &ir.Instr{Op: ir.OpBr, Args: []ir.Value{eq}, Targets: []*ir.Block{targets[i], next}}
			br.Blk = cur
			cur.Instrs = append(cur.Instrs, br)

			replacePred(targets[i], b, cur)
			if i == len(cases)-1 {
				replacePred(def, b, cur)
			} else {
				next.Preds = []*ir.Block{cur}
				cur = next
			}
		}
		if len(cases) == 0 {
			// Degenerate switch: jump to default.
			j := &ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{def}}
			j.Blk = cur
			cur.Instrs = append(cur.Instrs, j)
		}
	}
}

// Legalize rewrites template instructions so that every hole operand sits
// where the instruction encoding can hold it: the second operand of an
// integer ALU immediate form, or the immediate of a materializing copy
// (LI / large-constant-table load). Must run after SSA destruction.
func Legalize(f *ir.Func, holes map[ir.Value]split.SlotRef) {
	isHole := func(v ir.Value) bool {
		_, ok := holes[v]
		return ok
	}
	for _, b := range f.Blocks {
		if !b.Template {
			continue
		}
		var out []*ir.Instr
		materialize := func(v ir.Value) ir.Value {
			t := f.TypeOf(v)
			nv := f.NewValue("", t)
			cp := &ir.Instr{Op: ir.OpCopy, Args: []ir.Value{v}, Dst: nv, Typ: t, Blk: b}
			f.ValueInfo(nv).Def = cp
			out = append(out, cp)
			return nv
		}
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpCopy:
				// Handled directly at emission (LI/LDC).
			case ir.OpBr, ir.OpSwitch:
				// Constant predicates become CONST_BRANCH; nothing to do.
				// (A non-constant branch cannot have a hole predicate.)
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpUDiv, ir.OpMod,
				ir.OpUMod, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpAShr,
				ir.OpLShr, ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpULt, ir.OpULe:
				h0, h1 := isHole(in.Args[0]), isHole(in.Args[1])
				intHole := func(v ir.Value) bool {
					t := f.TypeOf(v)
					return t == nil || t.IsInteger()
				}
				if h0 && !h1 {
					if in.Op.IsCommutative() && intHole(in.Args[0]) {
						in.Args[0], in.Args[1] = in.Args[1], in.Args[0]
					} else {
						in.Args[0] = materialize(in.Args[0])
					}
				} else if h0 && h1 {
					in.Args[0] = materialize(in.Args[0])
				}
				if isHole(in.Args[1]) && !intHole(in.Args[1]) {
					in.Args[1] = materialize(in.Args[1])
				}
			default:
				// All other ops need register operands.
				for i, a := range in.Args {
					if isHole(a) {
						in.Args[i] = materialize(a)
					}
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
}
