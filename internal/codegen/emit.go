package codegen

import (
	"fmt"

	"dyncc/internal/ir"
	"dyncc/internal/regalloc"
	"dyncc/internal/split"
	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// emitInstr emits one IR instruction of ordinary (non-template) code into
// the function segment, with region/set-up cycle attribution.
func (fg *funcGen) emitInstr(in *ir.Instr, b *ir.Block, rid int16, setup bool) error {
	start := len(fg.code)
	s := sink{code: &fg.code}
	defer fg.attribute(rid, setup, start)

	switch in.Op {
	case ir.OpBr:
		cond := fg.srcReg(in.Args[0], regalloc.TempA, s)
		fg.branchTo(vm.Inst{Op: vm.BNEZ, Rs: cond}, in.Targets[0])
		fg.branchTo(vm.Inst{Op: vm.BR}, in.Targets[1])
	case ir.OpJump:
		fg.branchTo(vm.Inst{Op: vm.BR}, in.Targets[0])
	case ir.OpSwitch:
		fg.emitSwitch(in, s)
	case ir.OpRet:
		if len(in.Args) > 0 {
			r := fg.srcReg(in.Args[0], regalloc.TempA, s)
			s.add(vm.Inst{Op: vm.MOV, Rd: vm.RRV, Rs: r})
		}
		s.add(vm.Inst{Op: vm.RET})
	case ir.OpDynEnter:
		r := b.Region
		// Stage key values in the shuttle registers for the dispatcher.
		for i, k := range r.Keys {
			if i >= 3 {
				return fmt.Errorf("region %d: more than 3 key variables", r.ID)
			}
			kr := fg.srcReg(k, regalloc.TempA+vm.Reg(i), s)
			if kr != regalloc.TempA+vm.Reg(i) {
				s.add(vm.Inst{Op: vm.MOV, Rd: regalloc.TempA + vm.Reg(i), Rs: kr})
			}
		}
		s.add(vm.Inst{Op: vm.DYNENTER, Imm: int64(fg.regionIdx[r])})
		// Falls through into the set-up entry, which the layout places next.
	case ir.OpDynStitch:
		tblr := fg.srcReg(in.Args[0], regalloc.TempA, s)
		s.add(vm.Inst{Op: vm.MOV, Rd: vm.RScratch, Rs: tblr})
		s.add(vm.Inst{Op: vm.DYNSTITCH, Imm: int64(fg.regionIdx[b.Region])})
	default:
		return fg.emitBody(in, s)
	}
	return nil
}

// emitSwitch lowers an n-way switch in ordinary code: a bounds-checked jump
// table when the case values are dense (what a C compiler emits), otherwise
// a compare-and-branch chain.
func (fg *funcGen) emitSwitch(in *ir.Instr, s sink) {
	tag := fg.srcReg(in.Args[0], regalloc.TempA, s)
	cases := in.Cases
	def := in.Targets[len(cases)]

	dense := false
	var lo, hi int64
	if len(cases) >= 4 {
		lo, hi = cases[0], cases[0]
		for _, c := range cases {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		span := hi - lo + 1
		if span <= 2*int64(len(cases))+8 && span <= 1024 {
			dense = true
		}
	}
	if dense {
		idx := tag
		if lo != 0 {
			s.add(vm.Inst{Op: vm.SUBI, Rd: regalloc.TempB, Rs: tag, Imm: lo})
			idx = regalloc.TempB
		}
		span := hi - lo + 1
		s.add(vm.Inst{Op: vm.SLTUI, Rd: regalloc.TempC, Rs: idx, Imm: span})
		fg.branchTo(vm.Inst{Op: vm.BEQZ, Rs: regalloc.TempC}, def)
		// Build the table: entry i -> target of case value lo+i.
		entries := make([]*ir.Block, span)
		for i := range entries {
			entries[i] = def
		}
		for i, c := range cases {
			entries[c-lo] = in.Targets[i]
		}
		s.add(vm.Inst{Op: vm.JTBL, Rs: idx, Imm: int64(len(fg.tables))})
		fg.tables = append(fg.tables, entries)
		return
	}
	for i, c := range cases {
		if vm.FitsImm(c) {
			fg.branchTo(vm.Inst{Op: vm.BEQI, Rs: tag, Imm: c}, in.Targets[i])
			continue
		}
		s.add(vm.Inst{Op: vm.LI, Rd: regalloc.TempB, Imm: c})
		s.add(vm.Inst{Op: vm.SEQ, Rd: regalloc.TempC, Rs: tag, Rt: regalloc.TempB})
		fg.branchTo(vm.Inst{Op: vm.BNEZ, Rs: regalloc.TempC}, in.Targets[i])
	}
	fg.branchTo(vm.Inst{Op: vm.BR}, def)
}

// branchTo emits a branch whose target is fixed up once labels are known.
func (fg *funcGen) branchTo(in vm.Inst, target *ir.Block) {
	pc := len(fg.code)
	fg.code = append(fg.code, in)
	fg.fixups = append(fg.fixups, struct {
		pc  int
		blk *ir.Block
	}{pc, target})
}

func (fg *funcGen) resolveFixups() {
	for _, fx := range fg.fixups {
		t, ok := fg.labels[fx.blk]
		if !ok {
			// Branch into a template block: never executed directly (the
			// runtime transfers control); park it on itself.
			t = fx.pc
		}
		fg.code[fx.pc].Target = t
	}
}

// peephole simplifies branch shapes: an inverted conditional jump over an
// unconditional branch, and branches to the next instruction. All pcs
// (targets, labels, attribution arrays, region entry markers) are remapped.
func (fg *funcGen) peephole() {
	// Pass 1: [BNEZ/BEQZ x -> pc+2][BR t] becomes [inverted-cond -> t].
	for i := 0; i+1 < len(fg.code); i++ {
		c := fg.code[i]
		n := fg.code[i+1]
		if (c.Op == vm.BNEZ || c.Op == vm.BEQZ) && n.Op == vm.BR && c.Target == i+2 {
			inv := vm.BEQZ
			if c.Op == vm.BEQZ {
				inv = vm.BNEZ
			}
			fg.code[i] = vm.Inst{Op: inv, Rs: c.Rs, Target: n.Target}
			fg.code[i+1] = vm.Inst{Op: vm.NOP}
		}
	}
	// Pass 2: drop dead constant/copy materializations.
	for i := 0; i < 4; i++ {
		if vm.DeadWriteNops(fg.code) == 0 {
			break
		}
	}
	// Pass 3: delete NOPs and branches to next pc.
	keep := make([]bool, len(fg.code))
	for i, in := range fg.code {
		keep[i] = true
		if in.Op == vm.NOP {
			keep[i] = false
		}
		if in.Op == vm.BR && in.Target == i+1 {
			keep[i] = false
		}
	}
	newpc := make([]int, len(fg.code)+1)
	n := 0
	for i := range fg.code {
		newpc[i] = n
		if keep[i] {
			n++
		}
	}
	newpc[len(fg.code)] = n

	var code []vm.Inst
	var regionOf []int16
	var setupOf []bool
	for i, in := range fg.code {
		if !keep[i] {
			continue
		}
		switch in.Op {
		case vm.BEQZ, vm.BNEZ, vm.BEQI, vm.BR, vm.XFER:
			in.Target = newpc[in.Target]
		}
		code = append(code, in)
		if i < len(fg.regionOf) {
			regionOf = append(regionOf, fg.regionOf[i])
			setupOf = append(setupOf, fg.setupOf[i])
		} else {
			regionOf = append(regionOf, -1)
			setupOf = append(setupOf, false)
		}
	}
	fg.code, fg.regionOf, fg.setupOf = code, regionOf, setupOf
	for b, pc := range fg.labels {
		fg.labels[b] = newpc[pc]
	}
}

// fuse runs the superinstruction pipeline over the finished function body.
// Every label (branch, jump-table and region-exit anchor) is declared a
// leader so no external reference crosses a fused pair, and static region
// entries keep their invocation markers. Runs before emitTemplates and the
// final label consumers, which all see the remapped pcs.
func (fg *funcGen) fuse() {
	if fg.noFuse {
		return
	}
	leaders := make([]int, 0, len(fg.labels))
	for _, pc := range fg.labels {
		leaders = append(leaders, pc)
	}
	var entries []int
	if fg.static {
		for _, r := range fg.f.Regions {
			if fg.splits[r] == nil {
				if pc, ok := fg.labels[r.Entry]; ok {
					entries = append(entries, pc)
				}
			}
		}
	}
	fr := vm.Fuse(fg.code, vm.FuseOptions{
		RegionOf: fg.regionOf,
		SetupOf:  fg.setupOf,
		Leaders:  leaders,
		EntryPCs: entries,
	})
	fg.code, fg.regionOf, fg.setupOf = fr.Code, fr.RegionOf, fr.SetupOf
	for b, pc := range fg.labels {
		fg.labels[b] = fr.PCMap[pc]
	}
}

// ---------------------------------------------------------------- templates

// emitTemplates produces the template blocks, holes, terminator metadata
// and loop linkage for one region.
func (fg *funcGen) emitTemplates(r *ir.Region, sr *split.Result) (*tmpl.Region, error) {
	tr := &tmpl.Region{
		Index:     fg.regionIdx[r],
		Name:      fmt.Sprintf("%s:r%d", fg.f.Name, r.ID),
		FuncID:    fg.fid,
		TableSize: r.TableSize,
		Stats: tmpl.Stats{
			ConstOpsFolded:  sr.Stats.ConstOpsFolded,
			LoadsEliminated: sr.Stats.LoadsEliminated,
			ConstBranches:   sr.Stats.ConstBranches,
			LoopsUnrolled:   sr.Stats.LoopsUnrolled,
			Holes:           sr.Stats.Holes,
		},
	}
	for i := range r.Keys {
		tr.KeyRegs = append(tr.KeyRegs, regalloc.TempA+vm.Reg(i))
	}
	tr.Shareable = regionShareable(fg.f, r)
	tr.Auto = r.Auto
	if r.Auto {
		// Deopt target: the region's set-up entry in the function segment.
		// emitTemplates runs after fuse(), so labels are final. A failed
		// guard re-runs set-up with the live key values and reaches
		// DYNSTITCH, which routes to the generic tier for that call.
		pc, ok := fg.labels[sr.SetupEntry]
		if !ok {
			return nil, fmt.Errorf("auto region %s: set-up entry not emitted", tr.Name)
		}
		tr.DeoptPC = pc
	}

	// Collect template blocks reachable from the template entry.
	var blocks []*ir.Block
	index := map[*ir.Block]int{}
	var collect func(b *ir.Block)
	collect = func(b *ir.Block) {
		if _, ok := index[b]; ok || !b.Template {
			return
		}
		index[b] = len(blocks)
		blocks = append(blocks, b)
		for _, s := range b.Succs() {
			collect(s)
		}
	}
	collect(sr.TemplateEntry)
	tr.Entry = index[sr.TemplateEntry]

	loopIdx := map[*ir.Loop]int{}
	for _, l := range r.Loops {
		loopIdx[l] = l.ID
	}

	for _, b := range blocks {
		tb := &tmpl.Block{IRID: b.ID, LoopID: -1}
		if n := len(b.Loops); n > 0 {
			tb.LoopID = b.Loops[n-1].ID
		}
		s := sink{code: &tb.Code, holes: &tb.Holes}
		for _, in := range b.Instrs[:len(b.Instrs)-1] {
			if err := fg.emitBody(in, s); err != nil {
				return nil, fmt.Errorf("template block b%d: %w", b.ID, err)
			}
		}
		term := b.Term()
		if term == nil {
			return nil, fmt.Errorf("template block b%d lacks terminator", b.ID)
		}
		edge := func(t *ir.Block, si int) tmpl.Edge {
			if ti, ok := index[t]; ok {
				return tmpl.Edge{Block: ti}
			}
			fg.exitFixups = append(fg.exitFixups, exitFixup{
				region: tr, blk: index[b], succ: si, target: t,
			})
			return tmpl.Edge{Block: -1}
		}
		switch term.Op {
		case ir.OpJump:
			tb.Term = tmpl.Term{Kind: tmpl.TermJump, Succs: []tmpl.Edge{edge(term.Targets[0], 0)}}
		case ir.OpBr:
			t := tmpl.Term{Kind: tmpl.TermBr,
				Succs: []tmpl.Edge{edge(term.Targets[0], 0), edge(term.Targets[1], 1)}}
			if slot, ok := sr.BranchSlot[term]; ok {
				ref := fg.slotRef(slot)
				t.ConstSlot = &ref
			} else {
				t.CondReg = fg.srcReg(term.Args[0], regalloc.TempA, s)
			}
			tb.Term = t
		case ir.OpSwitch:
			slot, ok := sr.BranchSlot[term]
			if !ok {
				return nil, fmt.Errorf("non-constant switch survived in template b%d", b.ID)
			}
			ref := fg.slotRef(slot)
			t := tmpl.Term{Kind: tmpl.TermSwitch, ConstSlot: &ref,
				Cases: append([]int64(nil), term.Cases...)}
			for si, tg := range term.Targets {
				t.Succs = append(t.Succs, edge(tg, si))
			}
			tb.Term = t
		case ir.OpRet:
			if len(term.Args) > 0 {
				rv := fg.srcReg(term.Args[0], regalloc.TempA, s)
				s.add(vm.Inst{Op: vm.MOV, Rd: vm.RRV, Rs: rv})
			}
			tb.Term = tmpl.Term{Kind: tmpl.TermRet}
		default:
			return nil, fmt.Errorf("unexpected terminator %s in template", term.Op)
		}
		tr.Blocks = append(tr.Blocks, tb)
	}

	for _, l := range r.Loops {
		tl := &tmpl.Loop{
			ID:         l.ID,
			ParentID:   -1,
			NextSlot:   sr.NextSlot[l],
			RecordSize: l.RecordSize,
			HeadBlock:  index[l.Head],
			LatchBlock: index[l.Latch],
		}
		if l.Parent != nil {
			tl.ParentID = l.Parent.ID
			tl.HeaderSlot = tmpl.SlotRef{LoopID: l.Parent.ID, Slot: l.HeaderSlot}
		} else {
			tl.HeaderSlot = tmpl.SlotRef{LoopID: -1, Slot: l.HeaderSlot}
		}
		tr.Loops = append(tr.Loops, tl)
	}
	_ = loopIdx
	return tr, nil
}
