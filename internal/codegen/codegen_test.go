package codegen_test

import (
	"testing"

	"dyncc/internal/codegen"
	"dyncc/internal/ir"
	"dyncc/internal/lower"
	"dyncc/internal/parser"
	"dyncc/internal/split"
	"dyncc/internal/vm"
)

func compileProg(t *testing.T, src string, dynamic bool) (*codegen.Output, *ir.Module) {
	t.Helper()
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := lower.Lower(file)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	splits := map[*ir.Region]*split.Result{}
	for _, f := range mod.Funcs {
		ir.BuildSSA(f)
		if dynamic {
			for _, r := range f.Regions {
				sr, err := split.Split(f, r)
				if err != nil {
					t.Fatalf("split: %v", err)
				}
				splits[r] = sr
			}
		}
	}
	out, err := codegen.Compile(mod, splits, codegen.Options{})
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	return out, mod
}

func runFunc(t *testing.T, out *codegen.Output, fn string, args ...int64) int64 {
	t.Helper()
	m := vm.NewMachine(out.Prog, 1<<16)
	v, err := m.Call(fn, args...)
	if err != nil {
		t.Fatalf("run %s: %v", fn, err)
	}
	return v
}

func TestDenseSwitchUsesJumpTable(t *testing.T) {
	out, _ := compileProg(t, `
int f(int x) {
    switch (x) {
    case 0: return 10;
    case 1: return 11;
    case 2: return 12;
    case 3: return 13;
    case 4: return 14;
    }
    return -1;
}`, false)
	seg := out.Prog.Segs[out.Prog.FuncID("f")]
	if len(seg.JumpTables) != 1 {
		t.Fatalf("jump tables: %d", len(seg.JumpTables))
	}
	if len(seg.JumpTables[0]) != 5 {
		t.Errorf("table size: %d", len(seg.JumpTables[0]))
	}
	hasJTBL := false
	for _, in := range seg.Code {
		if in.Op == vm.JTBL {
			hasJTBL = true
		}
	}
	if !hasJTBL {
		t.Error("no JTBL emitted for a dense switch")
	}
	for x, want := range map[int64]int64{0: 10, 4: 14, 5: -1, -1: -1} {
		if got := runFunc(t, out, "f", x); got != want {
			t.Errorf("f(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestSparseSwitchUsesCompareChain(t *testing.T) {
	out, _ := compileProg(t, `
int f(int x) {
    switch (x) {
    case 5: return 1;
    case 5000: return 2;
    }
    return 0;
}`, false)
	seg := out.Prog.Segs[out.Prog.FuncID("f")]
	if len(seg.JumpTables) != 0 {
		t.Error("sparse switch should not build a jump table")
	}
	for x, want := range map[int64]int64{5: 1, 5000: 2, 6: 0} {
		if got := runFunc(t, out, "f", x); got != want {
			t.Errorf("f(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestLiteralOperandsFoldToImmediates(t *testing.T) {
	out, _ := compileProg(t, `int f(int x) { return (x + 5) * 3 - (x & 7); }`, false)
	seg := out.Prog.Segs[out.Prog.FuncID("f")]
	// After literal folding + dead-write elimination: ADDI/ANDI forms and
	// no LIs left for the small constants.
	var addi, andi, li int
	for _, in := range seg.Code {
		switch in.Op {
		case vm.ADDI:
			addi++
		case vm.ANDI:
			andi++
		case vm.LI:
			li++
		}
	}
	if addi == 0 || andi == 0 {
		t.Errorf("immediate forms not used: %s", seg.Disasm())
	}
	if li != 0 {
		t.Errorf("%d dead LIs survive:\n%s", li, seg.Disasm())
	}
	if got := runFunc(t, out, "f", 10); got != (10+5)*3-(10&7) {
		t.Errorf("f(10) = %d", got)
	}
}

func TestPrologueAndFrame(t *testing.T) {
	out, _ := compileProg(t, `
int f(int a, int b) {
    int arr[6];
    arr[0] = a;
    arr[5] = b;
    return arr[0] + arr[5];
}`, false)
	seg := out.Prog.Segs[out.Prog.FuncID("f")]
	if seg.FrameSize < 6 {
		t.Errorf("frame size %d < 6", seg.FrameSize)
	}
	if seg.Code[0].Op != vm.SUBI || seg.Code[0].Rd != vm.RSP {
		t.Errorf("missing stack prologue: %s", seg.Code[0])
	}
	if got := runFunc(t, out, "f", 3, 4); got != 7 {
		t.Errorf("f = %d", got)
	}
}

func TestRegionAttributionArrays(t *testing.T) {
	out, _ := compileProg(t, `
int f(int c, int x) {
    int r;
    dynamicRegion (c) { r = c + x; }
    return r;
}`, true)
	seg := out.Prog.Segs[out.Prog.FuncID("f")]
	if len(seg.RegionOf) != len(seg.Code) {
		t.Fatalf("RegionOf length %d != code %d", len(seg.RegionOf), len(seg.Code))
	}
	var regionPCs, setupPCs int
	for i := range seg.Code {
		if seg.RegionOf[i] >= 0 {
			regionPCs++
			if seg.SetupOf[i] {
				setupPCs++
			}
		}
	}
	if regionPCs == 0 || setupPCs == 0 {
		t.Errorf("attribution: region=%d setup=%d", regionPCs, setupPCs)
	}
}

func TestTemplateMetadata(t *testing.T) {
	out, _ := compileProg(t, `
int f(int c, int n, int *a, int x) {
    int r = 0;
    dynamicRegion (c, n, a) {
        int i;
        unrolled for (i = 0; i < n; i++) {
            r = r + a dynamic[i] * c;
        }
    }
    return r;
}`, true)
	tr := out.Regions[0]
	if tr.TemplateInsts() == 0 {
		t.Fatal("no template instructions")
	}
	if len(tr.Loops) != 1 {
		t.Fatalf("loops: %d", len(tr.Loops))
	}
	l := tr.Loops[0]
	if l.HeadBlock < 0 || l.HeadBlock >= len(tr.Blocks) {
		t.Errorf("head block index: %d", l.HeadBlock)
	}
	if l.RecordSize < 2 {
		t.Errorf("record size: %d", l.RecordSize)
	}
	holeCount := 0
	for _, b := range tr.Blocks {
		holeCount += len(b.Holes)
	}
	if holeCount == 0 {
		t.Error("no holes in templates")
	}
	// Directives listing exercises every block.
	if ds := tr.Directives(); len(ds) < len(tr.Blocks) {
		t.Errorf("directive listing too short: %d", len(ds))
	}
}

func TestStaticModeRegionEntryMarkers(t *testing.T) {
	out, _ := compileProg(t, `
int f(int c, int x) {
    int r;
    dynamicRegion (c) { r = c + x; }
    return r;
}`, false)
	seg := out.Prog.Segs[out.Prog.FuncID("f")]
	n := 0
	for _, r := range seg.RegionEntry {
		if r >= 0 {
			n++
		}
	}
	if n != 1 {
		t.Errorf("static region entry markers: %d", n)
	}
}
