package ir

import (
	"math"
	"testing"

	"dyncc/internal/types"
)

// buildModule wraps a function in a module with interp environment.
func interpOne(t *testing.T, f *Func, args ...int64) int64 {
	t.Helper()
	mod := NewModule()
	mod.AddFunc(f)
	env := NewInterpEnv(mod, 0)
	v, err := env.CallFunc(f.Name, args...)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	return v
}

func TestInterpArithAndMemory(t *testing.T) {
	f := NewFunc("m", types.FuncType(types.IntType, []*types.Type{types.IntType}))
	p := f.NewValue("p", types.IntType)
	f.Params = append(f.Params, p)
	b := f.NewBlock()
	v := func() Value { return f.NewValue("", types.IntType) }
	sz := v()
	b.Append(&Instr{Op: OpConst, Const: 4, Dst: sz, Typ: types.IntType})
	addr := v()
	b.Append(&Instr{Op: OpCall, Sym: "alloc", Args: []Value{sz}, Dst: addr,
		Typ: types.PointerTo(types.IntType)})
	b.Append(&Instr{Op: OpStore, Args: []Value{addr, p}, Const: 2, Typ: types.IntType})
	ld := v()
	b.Append(&Instr{Op: OpLoad, Args: []Value{addr}, Const: 2, Dst: ld, Typ: types.IntType})
	dbl := v()
	b.Append(&Instr{Op: OpAdd, Args: []Value{ld, ld}, Dst: dbl, Typ: types.IntType})
	b.Append(&Instr{Op: OpRet, Args: []Value{dbl}})
	f.ComputePreds()
	if got := interpOne(t, f, 21); got != 42 {
		t.Errorf("got %d", got)
	}
}

func TestInterpFloat(t *testing.T) {
	f := NewFunc("fl", types.FuncType(types.FloatType, []*types.Type{types.FloatType}))
	p := f.NewValue("p", types.FloatType)
	f.Params = append(f.Params, p)
	b := f.NewBlock()
	c := f.NewValue("", types.FloatType)
	b.Append(&Instr{Op: OpFConst, F: 2.5, Dst: c, Typ: types.FloatType})
	r := f.NewValue("", types.FloatType)
	b.Append(&Instr{Op: OpFMul, Args: []Value{p, c}, Dst: r, Typ: types.FloatType})
	b.Append(&Instr{Op: OpRet, Args: []Value{r}})
	f.ComputePreds()
	got := interpOne(t, f, int64(math.Float64bits(4.0)))
	if math.Float64frombits(uint64(got)) != 10.0 {
		t.Errorf("got %g", math.Float64frombits(uint64(got)))
	}
}

func TestInterpTrapsAndLimits(t *testing.T) {
	// Divide by zero.
	f := NewFunc("dz", types.FuncType(types.IntType, []*types.Type{types.IntType}))
	p := f.NewValue("p", types.IntType)
	f.Params = append(f.Params, p)
	b := f.NewBlock()
	z := f.NewValue("", types.IntType)
	b.Append(&Instr{Op: OpConst, Const: 0, Dst: z, Typ: types.IntType})
	q := f.NewValue("", types.IntType)
	b.Append(&Instr{Op: OpDiv, Args: []Value{p, z}, Dst: q, Typ: types.IntType})
	b.Append(&Instr{Op: OpRet, Args: []Value{q}})
	f.ComputePreds()
	mod := NewModule()
	mod.AddFunc(f)
	if _, err := NewInterpEnv(mod, 0).CallFunc("dz", 5); err == nil {
		t.Error("expected divide-by-zero error")
	}

	// Infinite loop hits the step limit.
	g := NewFunc("spin", types.FuncType(types.IntType, nil))
	b0 := g.NewBlock()
	b0.Append(&Instr{Op: OpJump, Targets: []*Block{b0}})
	b0.Preds = []*Block{b0}
	mod2 := NewModule()
	mod2.AddFunc(g)
	if _, err := NewInterpEnv(mod2, 0).CallFunc("spin"); err == nil {
		t.Error("expected step-limit error")
	}
}

func TestInterpPhiSelection(t *testing.T) {
	// Merge selects by incoming edge.
	f := NewFunc("sel", types.FuncType(types.IntType, []*types.Type{types.IntType}))
	p := f.NewValue("p", types.IntType)
	f.Params = append(f.Params, p)
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	b0.Append(&Instr{Op: OpBr, Args: []Value{p}, Targets: []*Block{b1, b2}})
	x1 := f.NewValue("", types.IntType)
	b1.Append(&Instr{Op: OpConst, Const: 100, Dst: x1, Typ: types.IntType})
	b1.Append(&Instr{Op: OpJump, Targets: []*Block{b3}})
	x2 := f.NewValue("", types.IntType)
	b2.Append(&Instr{Op: OpConst, Const: 200, Dst: x2, Typ: types.IntType})
	b2.Append(&Instr{Op: OpJump, Targets: []*Block{b3}})
	phi := f.NewValue("", types.IntType)
	b3.Append(&Instr{Op: OpPhi, Args: []Value{x1, x2}, Dst: phi, Typ: types.IntType})
	b3.Append(&Instr{Op: OpRet, Args: []Value{phi}})
	f.ComputePreds()
	f.SSA = true
	if got := interpOne(t, f, 1); got != 100 {
		t.Errorf("then: %d", got)
	}
	if got := interpOne(t, f, 0); got != 200 {
		t.Errorf("else: %d", got)
	}
}
