package ir

import "dyncc/internal/types"

// Global is a module-level variable with its word address in the VM's
// global data segment.
type Global struct {
	Name string
	Typ  *types.Type
	Addr int     // word address in the globals segment
	Init []int64 // initial words (len <= Typ.Size()); rest zero
}

// Module is a lowered translation unit.
type Module struct {
	Funcs       []*Func
	FuncIndex   map[string]*Func
	Globals     []*Global
	GlobalIndex map[string]*Global
	GlobalWords int // total size of the globals segment
}

// NewModule returns an empty module.
func NewModule() *Module {
	return &Module{
		FuncIndex:   map[string]*Func{},
		GlobalIndex: map[string]*Global{},
	}
}

// AddGlobal appends a global, assigning its address.
func (m *Module) AddGlobal(name string, typ *types.Type) *Global {
	g := &Global{Name: name, Typ: typ, Addr: m.GlobalWords}
	m.GlobalWords += typ.Size()
	m.Globals = append(m.Globals, g)
	m.GlobalIndex[name] = g
	return g
}

// AddFunc appends a function.
func (m *Module) AddFunc(f *Func) {
	m.Funcs = append(m.Funcs, f)
	m.FuncIndex[f.Name] = f
}

// Builtin describes a host-implemented intrinsic function.
type Builtin struct {
	Name   string
	Params []*types.Type
	Ret    *types.Type
	Pure   bool // idempotent, side-effect-free, non-trapping (usable in
	// run-time-constant derivation, paper section 3.1: "such as max or cos")
}

// Builtins is the table of host intrinsics available to MiniC programs.
var Builtins = map[string]*Builtin{
	"print_int":   {Name: "print_int", Params: []*types.Type{types.IntType}, Ret: types.VoidType},
	"print_float": {Name: "print_float", Params: []*types.Type{types.FloatType}, Ret: types.VoidType},
	"print_str":   {Name: "print_str", Params: []*types.Type{types.PointerTo(types.IntType)}, Ret: types.VoidType},
	"alloc":       {Name: "alloc", Params: []*types.Type{types.IntType}, Ret: types.PointerTo(types.IntType)},
	"abs":         {Name: "abs", Params: []*types.Type{types.IntType}, Ret: types.IntType, Pure: true},
	"min":         {Name: "min", Params: []*types.Type{types.IntType, types.IntType}, Ret: types.IntType, Pure: true},
	"max":         {Name: "max", Params: []*types.Type{types.IntType, types.IntType}, Ret: types.IntType, Pure: true},
	"cos":         {Name: "cos", Params: []*types.Type{types.FloatType}, Ret: types.FloatType, Pure: true},
	"sin":         {Name: "sin", Params: []*types.Type{types.FloatType}, Ret: types.FloatType, Pure: true},
	"sqrt":        {Name: "sqrt", Params: []*types.Type{types.FloatType}, Ret: types.FloatType, Pure: true},
}
