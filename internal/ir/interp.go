package ir

// A reference interpreter for the IR, used for differential testing of the
// backend pipeline: any IR transformation must preserve the behaviour of a
// function under this interpreter. It executes both SSA form (φs select by
// incoming edge) and post-SSA multiple-assignment form.

import (
	"fmt"
	"math"

	"dyncc/internal/types"
)

// InterpEnv provides the module context for IR interpretation.
type InterpEnv struct {
	Mod *Module
	Mem []int64 // word memory; globals at their addresses
	hp  int64

	// Calls counts function calls (recursion guard).
	Calls int
	Limit int

	// AllocFn, when set, replaces the built-in bump allocator (used to
	// allocate from a live VM's heap in merged set-up mode).
	AllocFn func(int64) (int64, error)

	// FrameBase, when UseFrameBase is set, is the address StackAddr slots
	// resolve against (a live VM frame) instead of a fresh allocation.
	FrameBase    int64
	UseFrameBase bool

	// Steps counts executed instructions (cost accounting).
	Steps int
}

// NewInterpEnv builds an interpreter environment with the module's globals
// initialized.
func NewInterpEnv(mod *Module, memWords int) *InterpEnv {
	if memWords <= 0 {
		memWords = 1 << 20
	}
	env := &InterpEnv{Mod: mod, Mem: make([]int64, memWords), Limit: 4 << 20}
	for _, g := range mod.Globals {
		copy(env.Mem[g.Addr:], g.Init)
	}
	env.hp = int64(mod.GlobalWords)
	return env
}

// Alloc reserves n zeroed heap words.
func (env *InterpEnv) Alloc(n int64) int64 {
	if env.AllocFn != nil {
		a, err := env.AllocFn(n)
		if err != nil {
			return -1
		}
		return a
	}
	a := env.hp
	env.hp += n
	return a
}

// CallFunc interprets fn with the given arguments.
func (env *InterpEnv) CallFunc(name string, args ...int64) (int64, error) {
	f := env.Mod.FuncIndex[name]
	if f == nil {
		return 0, fmt.Errorf("interp: no function %s", name)
	}
	return env.call(f, args)
}

func (env *InterpEnv) call(f *Func, args []int64) (int64, error) {
	env.Calls++
	if env.Calls > env.Limit {
		return 0, fmt.Errorf("interp: call limit exceeded")
	}
	// Stack frame for StackAddr: allocate from the heap end (no reuse;
	// simple and adequate for testing).
	var frame int64
	if env.UseFrameBase {
		frame = env.FrameBase
	} else {
		frame = env.Alloc(int64(f.StackSize) + 1)
	}
	vals := map[Value]int64{}
	for i, p := range f.Params {
		if i < len(args) {
			vals[p] = args[i]
		}
	}
	return env.exec(f, f.Entry(), vals, frame)
}

// RunSetup interprets a region's set-up subgraph host-side (the paper's
// section 7 "merge set-up code with stitching"): execution starts at the
// set-up entry with the given bindings for values defined outside the
// subgraph, and finishes at OpDynStitch, whose operand — the run-time
// constants table base — is returned.
func (env *InterpEnv) RunSetup(f *Func, entry *Block, init map[Value]int64) (int64, error) {
	frame := env.FrameBase
	return env.exec(f, entry, init, frame)
}

func (env *InterpEnv) exec(f *Func, entry *Block, vals map[Value]int64, frame int64) (int64, error) {
	get := func(v Value) int64 { return vals[v] }

	b := entry
	var prev *Block
	steps := 0
	for {
		steps++
		env.Steps++
		if steps > 50_000_000 {
			return 0, fmt.Errorf("interp: step limit in %s", f.Name)
		}
		// φs evaluate in parallel at block entry.
		phis := b.Phis()
		if len(phis) > 0 {
			pi := -1
			for i, p := range b.Preds {
				if p == prev {
					pi = i
					break
				}
			}
			if pi < 0 {
				return 0, fmt.Errorf("interp: %s b%d entered from non-pred b%d", f.Name, b.ID, prev.ID)
			}
			tmp := make([]int64, len(phis))
			for i, phi := range phis {
				tmp[i] = get(phi.Args[pi])
			}
			for i, phi := range phis {
				vals[phi.Dst] = tmp[i]
			}
		}
		for _, in := range b.Instrs[len(phis):] {
			switch in.Op {
			case OpPhi:
				return 0, fmt.Errorf("interp: φ not at block head")
			case OpConst:
				vals[in.Dst] = in.Const
			case OpFConst:
				vals[in.Dst] = int64(math.Float64bits(in.F))
			case OpGlobalAddr:
				g := env.Mod.GlobalIndex[in.Sym]
				if g == nil {
					return 0, fmt.Errorf("interp: unknown global %s", in.Sym)
				}
				vals[in.Dst] = int64(g.Addr)
			case OpStackAddr:
				vals[in.Dst] = frame + int64(in.Slot)
			case OpCopy:
				vals[in.Dst] = get(in.Args[0])
			case OpLoad:
				a := get(in.Args[0]) + in.Const
				if a < 0 || a >= int64(len(env.Mem)) {
					return 0, fmt.Errorf("interp: load OOB %d", a)
				}
				vals[in.Dst] = env.Mem[a]
			case OpStore:
				a := get(in.Args[0]) + in.Const
				if a < 0 || a >= int64(len(env.Mem)) {
					return 0, fmt.Errorf("interp: store OOB %d", a)
				}
				env.Mem[a] = get(in.Args[1])
			case OpCall:
				r, err := env.interpCall(in, get)
				if err != nil {
					return 0, err
				}
				if in.Dst != 0 {
					vals[in.Dst] = r
				}
			case OpBr:
				if get(in.Args[0]) != 0 {
					prev, b = b, in.Targets[0]
				} else {
					prev, b = b, in.Targets[1]
				}
				goto next
			case OpJump:
				prev, b = b, in.Targets[0]
				goto next
			case OpSwitch:
				v := get(in.Args[0])
				t := in.Targets[len(in.Cases)]
				for i, c := range in.Cases {
					if c == v {
						t = in.Targets[i]
						break
					}
				}
				prev, b = b, t
				goto next
			case OpRet:
				if len(in.Args) > 0 {
					return get(in.Args[0]), nil
				}
				return 0, nil
			case OpDynEnter:
				return 0, fmt.Errorf("interp: cannot interpret a region entry")
			case OpDynStitch:
				// Merged set-up mode terminates here with the table base.
				return get(in.Args[0]), nil
			default:
				r, err := evalOp(in.Op, in.Args, get)
				if err != nil {
					return 0, fmt.Errorf("interp: %s b%d: %w", f.Name, b.ID, err)
				}
				vals[in.Dst] = r
			}
		}
		return 0, fmt.Errorf("interp: %s b%d fell off block end", f.Name, b.ID)
	next:
	}
}

func (env *InterpEnv) interpCall(in *Instr, get func(Value) int64) (int64, error) {
	args := make([]int64, len(in.Args))
	for i, a := range in.Args {
		args[i] = get(a)
	}
	if callee := env.Mod.FuncIndex[in.Sym]; callee != nil {
		return env.call(callee, args)
	}
	f2 := func(v int64) float64 { return math.Float64frombits(uint64(v)) }
	fb := func(x float64) int64 { return int64(math.Float64bits(x)) }
	switch in.Sym {
	case "alloc":
		return env.Alloc(args[0]), nil
	case "abs":
		if args[0] < 0 {
			return -args[0], nil
		}
		return args[0], nil
	case "min":
		if args[1] < args[0] {
			return args[1], nil
		}
		return args[0], nil
	case "max":
		if args[1] > args[0] {
			return args[1], nil
		}
		return args[0], nil
	case "cos":
		return fb(math.Cos(f2(args[0]))), nil
	case "sin":
		return fb(math.Sin(f2(args[0]))), nil
	case "sqrt":
		return fb(math.Sqrt(f2(args[0]))), nil
	case "print_int", "print_float", "print_str":
		return 0, nil
	}
	return 0, fmt.Errorf("interp: unknown callee %s", in.Sym)
}

// evalOp computes a pure operator.
func evalOp(op Op, argv []Value, get func(Value) int64) (int64, error) {
	var a, b int64
	if len(argv) > 0 {
		a = get(argv[0])
	}
	if len(argv) > 1 {
		b = get(argv[1])
	}
	fa, fb := math.Float64frombits(uint64(a)), math.Float64frombits(uint64(b))
	fbits := func(x float64) int64 { return int64(math.Float64bits(x)) }
	bi := func(c bool) int64 {
		if c {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return a + b, nil
	case OpSub:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpDiv:
		if b == 0 {
			return 0, fmt.Errorf("divide by zero")
		}
		return a / b, nil
	case OpUDiv:
		if b == 0 {
			return 0, fmt.Errorf("divide by zero")
		}
		return int64(uint64(a) / uint64(b)), nil
	case OpMod:
		if b == 0 {
			return 0, fmt.Errorf("mod by zero")
		}
		return a % b, nil
	case OpUMod:
		if b == 0 {
			return 0, fmt.Errorf("mod by zero")
		}
		return int64(uint64(a) % uint64(b)), nil
	case OpAnd:
		return a & b, nil
	case OpOr:
		return a | b, nil
	case OpXor:
		return a ^ b, nil
	case OpShl:
		return a << uint64(b&63), nil
	case OpAShr:
		return a >> uint64(b&63), nil
	case OpLShr:
		return int64(uint64(a) >> uint64(b&63)), nil
	case OpEq:
		return bi(a == b), nil
	case OpNe:
		return bi(a != b), nil
	case OpLt:
		return bi(a < b), nil
	case OpLe:
		return bi(a <= b), nil
	case OpULt:
		return bi(uint64(a) < uint64(b)), nil
	case OpULe:
		return bi(uint64(a) <= uint64(b)), nil
	case OpNeg:
		return -a, nil
	case OpNot:
		return ^a, nil
	case OpFAdd:
		return fbits(fa + fb), nil
	case OpFSub:
		return fbits(fa - fb), nil
	case OpFMul:
		return fbits(fa * fb), nil
	case OpFDiv:
		return fbits(fa / fb), nil
	case OpFNeg:
		return fbits(-fa), nil
	case OpFEq:
		return bi(fa == fb), nil
	case OpFNe:
		return bi(fa != fb), nil
	case OpFLt:
		return bi(fa < fb), nil
	case OpFLe:
		return bi(fa <= fb), nil
	case OpIntToFloat:
		return fbits(float64(a)), nil
	case OpFloatToInt:
		return int64(fa), nil
	}
	return 0, fmt.Errorf("unhandled op %s", op)
}

var _ = types.IntType // keep import symmetry with sibling files
