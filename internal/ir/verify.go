package ir

import "fmt"

// Verify checks structural invariants of the function and returns the first
// violation found, or nil. In SSA form it additionally checks single
// assignment and that φ argument counts match predecessor counts.
func Verify(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: no blocks", f.Name)
	}
	blockSet := map[*Block]bool{}
	for _, b := range f.Blocks {
		blockSet[b] = true
	}
	defs := map[Value]*Instr{}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("%s b%d: empty block", f.Name, b.ID)
		}
		t := b.Term()
		if t == nil {
			return fmt.Errorf("%s b%d: missing terminator", f.Name, b.ID)
		}
		for i, in := range b.Instrs {
			if in.Blk != b {
				return fmt.Errorf("%s b%d: instr %d has wrong owner", f.Name, b.ID, i)
			}
			if in.Op.IsTerminator() && i != len(b.Instrs)-1 {
				return fmt.Errorf("%s b%d: terminator %s not last", f.Name, b.ID, in.Op)
			}
			if in.Op == OpPhi {
				if len(in.Args) != len(b.Preds) {
					return fmt.Errorf("%s b%d: phi has %d args, %d preds",
						f.Name, b.ID, len(in.Args), len(b.Preds))
				}
				// φs must be at the block head.
				if i > 0 && b.Instrs[i-1].Op != OpPhi {
					return fmt.Errorf("%s b%d: phi not at block head", f.Name, b.ID)
				}
			}
			for _, tg := range in.Targets {
				if !blockSet[tg] {
					return fmt.Errorf("%s b%d: branch to removed block b%d", f.Name, b.ID, tg.ID)
				}
				found := false
				for _, p := range tg.Preds {
					if p == b {
						found = true
					}
				}
				if !found {
					return fmt.Errorf("%s b%d: successor b%d lacks pred edge", f.Name, b.ID, tg.ID)
				}
			}
			if in.Dst != 0 {
				if int(in.Dst) >= f.NumValues() {
					return fmt.Errorf("%s b%d: dst v%d out of range", f.Name, b.ID, in.Dst)
				}
				if f.SSA {
					if prev, ok := defs[in.Dst]; ok {
						return fmt.Errorf("%s b%d: v%d redefined (first at %s)",
							f.Name, b.ID, in.Dst, prev)
					}
					defs[in.Dst] = in
				}
			}
			for _, a := range in.Args {
				if a == 0 || int(a) >= f.NumValues() {
					return fmt.Errorf("%s b%d: bad arg v%d in %s", f.Name, b.ID, a, in)
				}
			}
		}
		for _, p := range b.Preds {
			if !blockSet[p] {
				return fmt.Errorf("%s b%d: stale pred b%d", f.Name, b.ID, p.ID)
			}
			ok := false
			for _, s := range p.Succs() {
				if s == b {
					ok = true
				}
			}
			if !ok {
				return fmt.Errorf("%s b%d: pred b%d has no edge here", f.Name, b.ID, p.ID)
			}
		}
	}
	return nil
}
