package ir_test

import (
	"strings"
	"testing"

	"dyncc/internal/ir"
	"dyncc/internal/lower"
	"dyncc/internal/parser"
)

// buildSSA parses and lowers src and puts every function in SSA form.
func buildSSA(t *testing.T, src string) *ir.Module {
	t.Helper()
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := lower.Lower(file)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	for _, f := range mod.Funcs {
		ir.BuildSSA(f)
	}
	return mod
}

// findCall returns the first call of sym in f.
func findCall(f *ir.Func, sym string) *ir.Instr {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Sym == sym {
				return in
			}
		}
	}
	return nil
}

// inlineAndVerify grafts the first call of callee into caller and requires
// the result to pass ir.Verify.
func inlineAndVerify(t *testing.T, mod *ir.Module, caller, callee string) *ir.Func {
	t.Helper()
	cr, ce := mod.FuncIndex[caller], mod.FuncIndex[callee]
	call := findCall(cr, callee)
	if call == nil {
		t.Fatalf("no call of %s in %s", callee, caller)
	}
	if err := ir.InlineCall(cr, call, ce); err != nil {
		t.Fatalf("InlineCall: %v", err)
	}
	if err := ir.Verify(cr); err != nil {
		t.Fatalf("post-inline verify: %v\n%s", err, cr)
	}
	for _, b := range cr.Blocks {
		for _, in := range b.Instrs {
			if in == call {
				t.Fatalf("grafted call site still present:\n%s", cr)
			}
		}
	}
	return cr
}

// diffInterp interprets fn in both modules over the inputs and requires
// identical outputs — the grafted body must be semantically invisible.
func diffInterp(t *testing.T, got, want *ir.Module, fn string, inputs [][]int64) {
	t.Helper()
	for _, args := range inputs {
		ge := ir.NewInterpEnv(got, 0)
		we := ir.NewInterpEnv(want, 0)
		g, err := ge.CallFunc(fn, args...)
		if err != nil {
			t.Fatalf("inlined interp %s%v: %v", fn, args, err)
		}
		w, err := we.CallFunc(fn, args...)
		if err != nil {
			t.Fatalf("reference interp %s%v: %v", fn, args, err)
		}
		if g != w {
			t.Fatalf("%s%v: inlined %d, reference %d", fn, args, g, w)
		}
	}
}

// TestInlineStraightLine: single-return callee, value used downstream; the
// return materializes as a copy at the continuation head.
func TestInlineStraightLine(t *testing.T) {
	const src = `
int helper(int a, int b) {
    return a * b + (a >> 1);
}
int f(int x, int y) {
    int t;
    t = helper(x + 1, y);
    return t ^ helper(y, x);
}`
	mod := buildSSA(t, src)
	f := inlineAndVerify(t, mod, "f", "helper")
	f = inlineAndVerify(t, mod, "f", "helper") // second call site
	_ = f
	diffInterp(t, mod, buildSSA(t, src), "f",
		[][]int64{{0, 0}, {3, 5}, {-7, 11}, {1 << 30, -9}})
}

// TestInlineMultiReturn: a callee with two rets must produce a φ at the
// continuation merging both returning paths.
func TestInlineMultiReturn(t *testing.T) {
	const src = `
int clamp(int v, int hi) {
    if (v > hi) {
        return hi;
    }
    return v;
}
int f(int x, int y) {
    return clamp(x, y) + clamp(y, 100);
}`
	mod := buildSSA(t, src)
	inlineAndVerify(t, mod, "f", "clamp")
	f := inlineAndVerify(t, mod, "f", "clamp")
	if !strings.Contains(f.String(), "phi") {
		t.Fatalf("multi-return inline produced no phi:\n%s", f)
	}
	diffInterp(t, mod, buildSSA(t, src), "f",
		[][]int64{{0, 0}, {5, 3}, {3, 5}, {-1, 200}, {101, 99}})
}

// TestInlineInsideLoop: a call inside a rolled loop — the grafted blocks
// join the loop body, the block split moves the back edge, and loop φs in
// the header must stay aligned.
func TestInlineInsideLoop(t *testing.T) {
	const src = `
int step(int s, int i) {
    if (i & 1) {
        return s + i * 3;
    }
    return s ^ i;
}
int f(int n) {
    int s;
    int i;
    s = 0;
    for (i = 0; i < n; i++) {
        s = step(s, i);
    }
    return s;
}`
	mod := buildSSA(t, src)
	inlineAndVerify(t, mod, "f", "step")
	diffInterp(t, mod, buildSSA(t, src), "f",
		[][]int64{{0}, {1}, {2}, {7}, {31}})
}

// TestInlineVoidAndSideEffects: a void callee mutating a global; the call
// has no destination, so no φ is materialized, and the store must land.
func TestInlineVoidAndSideEffects(t *testing.T) {
	const src = `
int g;
void bump(int d) {
    g = g + d;
}
int f(int x) {
    bump(x);
    bump(x * 2);
    return g;
}`
	mod := buildSSA(t, src)
	inlineAndVerify(t, mod, "f", "bump")
	inlineAndVerify(t, mod, "f", "bump")
	diffInterp(t, mod, buildSSA(t, src), "f",
		[][]int64{{0}, {1}, {-4}, {1000}})
}

// TestInlineRejects: the structural screens must refuse bad grafts rather
// than corrupt the IR.
func TestInlineRejects(t *testing.T) {
	const src = `
int rec(int n) {
    if (n < 1) {
        return 0;
    }
    return n + rec(n - 1);
}
int addr(int x) {
    int a[4];
    a[0] = x;
    return a[0];
}
int region(int k, int x) {
    int s;
    s = 0;
    dynamicRegion key(k) () {
        s = k * x;
    }
    return s;
}
int f(int x) {
    return rec(x) + addr(x) + region(x, 2);
}`
	mod := buildSSA(t, src)
	f := mod.FuncIndex["f"]
	// Direct self-inline.
	rec := mod.FuncIndex["rec"]
	if err := ir.InlineCall(rec, findCall(rec, "rec"), rec); err == nil {
		t.Fatal("self-inline accepted")
	}
	// Stack frame.
	if err := ir.InlineCall(f, findCall(f, "addr"), mod.FuncIndex["addr"]); err == nil {
		t.Fatal("stack-frame callee accepted")
	}
	// Dynamic region.
	if err := ir.InlineCall(f, findCall(f, "region"), mod.FuncIndex["region"]); err == nil {
		t.Fatal("region-bearing callee accepted")
	}
	// Everything still verifies after the refusals.
	for _, fn := range mod.Funcs {
		if err := ir.Verify(fn); err != nil {
			t.Fatalf("verify after refusals: %v", err)
		}
	}
}
