package ir

import (
	"testing"

	"dyncc/internal/types"
)

// buildDiamond constructs:
//
//	b0 -> b1, b2; b1 -> b3; b2 -> b3; b3: ret
func buildDiamond() (*Func, []*Block) {
	f := NewFunc("d", types.FuncType(types.IntType, []*types.Type{types.IntType}))
	p := f.NewValue("p", types.IntType)
	f.Params = append(f.Params, p)
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	x := f.NewValue("x", types.IntType)

	b0.Append(&Instr{Op: OpBr, Args: []Value{p}, Targets: []*Block{b1, b2}})
	c1 := &Instr{Op: OpConst, Const: 1, Dst: x, Typ: types.IntType}
	b1.Append(c1)
	b1.Append(&Instr{Op: OpJump, Targets: []*Block{b3}})
	c2 := &Instr{Op: OpConst, Const: 2, Dst: x, Typ: types.IntType}
	b2.Append(c2)
	b2.Append(&Instr{Op: OpJump, Targets: []*Block{b3}})
	b3.Append(&Instr{Op: OpRet, Args: []Value{x}})
	f.ComputePreds()
	return f, []*Block{b0, b1, b2, b3}
}

func TestDominators(t *testing.T) {
	f, bs := buildDiamond()
	dt := BuildDomTree(f)
	if dt.Idom[bs[0]] != nil {
		t.Error("entry should have no idom")
	}
	for _, b := range bs[1:] {
		if dt.Idom[b] != bs[0] {
			t.Errorf("idom(b%d) = %v, want b0", b.ID, dt.Idom[b])
		}
	}
	if !dt.Dominates(bs[0], bs[3]) {
		t.Error("b0 should dominate b3")
	}
	if dt.Dominates(bs[1], bs[3]) {
		t.Error("b1 should not dominate b3")
	}
	// Dominance frontier of b1 and b2 is {b3}.
	for _, b := range bs[1:3] {
		df := dt.Frontier[b]
		if len(df) != 1 || df[0] != bs[3] {
			t.Errorf("DF(b%d) = %v", b.ID, df)
		}
	}
}

func TestSSADiamondPhi(t *testing.T) {
	f, bs := buildDiamond()
	BuildSSA(f)
	if err := Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	phis := bs[3].Phis()
	if len(phis) != 1 {
		t.Fatalf("expected 1 φ at the merge, got %d", len(phis))
	}
	if len(phis[0].Args) != 2 {
		t.Fatalf("φ args: %d", len(phis[0].Args))
	}
}

func TestPrunedSSAOmitsDeadPhi(t *testing.T) {
	// Same diamond, but x is never used after the merge: pruned SSA must
	// not create a φ for it.
	f := NewFunc("d", types.FuncType(types.IntType, []*types.Type{types.IntType}))
	p := f.NewValue("p", types.IntType)
	f.Params = append(f.Params, p)
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	x := f.NewValue("x", types.IntType)
	b0.Append(&Instr{Op: OpBr, Args: []Value{p}, Targets: []*Block{b1, b2}})
	b1.Append(&Instr{Op: OpConst, Const: 1, Dst: x, Typ: types.IntType})
	b1.Append(&Instr{Op: OpJump, Targets: []*Block{b3}})
	b2.Append(&Instr{Op: OpConst, Const: 2, Dst: x, Typ: types.IntType})
	b2.Append(&Instr{Op: OpJump, Targets: []*Block{b3}})
	b3.Append(&Instr{Op: OpRet, Args: []Value{p}})
	f.ComputePreds()
	BuildSSA(f)
	if n := len(b3.Phis()); n != 0 {
		t.Errorf("pruned SSA inserted %d dead φs", n)
	}
}

func TestSSALoop(t *testing.T) {
	// i = 0; while (i < p) i = i + 1; return i
	f := NewFunc("loop", types.FuncType(types.IntType, []*types.Type{types.IntType}))
	p := f.NewValue("p", types.IntType)
	f.Params = append(f.Params, p)
	entry, head, body, exit := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	i := f.NewValue("i", types.IntType)
	cond := f.NewValue("", types.IntType)
	one := f.NewValue("", types.IntType)

	entry.Append(&Instr{Op: OpConst, Const: 0, Dst: i, Typ: types.IntType})
	entry.Append(&Instr{Op: OpJump, Targets: []*Block{head}})
	head.Append(&Instr{Op: OpLt, Args: []Value{i, p}, Dst: cond, Typ: types.IntType})
	head.Append(&Instr{Op: OpBr, Args: []Value{cond}, Targets: []*Block{body, exit}})
	body.Append(&Instr{Op: OpConst, Const: 1, Dst: one, Typ: types.IntType})
	body.Append(&Instr{Op: OpAdd, Args: []Value{i, one}, Dst: i, Typ: types.IntType})
	body.Append(&Instr{Op: OpJump, Targets: []*Block{head}})
	exit.Append(&Instr{Op: OpRet, Args: []Value{i}})
	f.ComputePreds()

	BuildSSA(f)
	if err := Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(head.Phis()) != 1 {
		t.Fatalf("loop head φs: %d", len(head.Phis()))
	}
	// Execute via the interpreter: result must equal p.
	mod := NewModule()
	mod.AddFunc(f)
	env := NewInterpEnv(mod, 0)
	got, err := env.CallFunc("loop", 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("loop(7) = %d", got)
	}

	// Destroying SSA must preserve behaviour.
	f.SplitCriticalEdges()
	DestroySSA(f)
	if f.SSA {
		t.Error("SSA flag still set")
	}
	env2 := NewInterpEnv(mod, 0)
	got2, err := env2.CallFunc("loop", 7)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != 7 {
		t.Errorf("post-DestroySSA loop(7) = %d", got2)
	}
}

func TestVerifyCatchesBadIR(t *testing.T) {
	f := NewFunc("bad", types.FuncType(types.VoidType, nil))
	b := f.NewBlock()
	// Missing terminator.
	b.Append(&Instr{Op: OpConst, Const: 1, Dst: f.NewValue("", types.IntType), Typ: types.IntType})
	if err := Verify(f); err == nil {
		t.Error("expected missing-terminator error")
	}
	b.Append(&Instr{Op: OpRet})
	if err := Verify(f); err != nil {
		t.Errorf("now valid: %v", err)
	}
	// Double definition in SSA form.
	f.SSA = true
	v := f.NewValue("", types.IntType)
	b.InsertBefore(0, &Instr{Op: OpConst, Const: 1, Dst: v, Typ: types.IntType})
	b.InsertBefore(1, &Instr{Op: OpConst, Const: 2, Dst: v, Typ: types.IntType})
	if err := Verify(f); err == nil {
		t.Error("expected SSA redefinition error")
	}
}

func TestRemoveUnreachable(t *testing.T) {
	f := NewFunc("u", types.FuncType(types.VoidType, nil))
	b0 := f.NewBlock()
	dead := f.NewBlock()
	b0.Append(&Instr{Op: OpRet})
	dead.Append(&Instr{Op: OpRet})
	f.ComputePreds()
	f.RemoveUnreachable()
	if len(f.Blocks) != 1 {
		t.Errorf("blocks after removal: %d", len(f.Blocks))
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	f, bs := buildDiamond()
	// Add an extra edge b0 -> b3 making the b0->b3 edge critical.
	term := bs[0].Term()
	term.Targets[1] = bs[3]
	bs[2].Preds = nil
	f.ComputePreds()
	f.RemoveUnreachable()
	before := len(f.Blocks)
	f.SplitCriticalEdges()
	if len(f.Blocks) != before+1 {
		t.Errorf("expected one split block, got %d new", len(f.Blocks)-before)
	}
	if err := Verify(f); err != nil {
		t.Errorf("verify after split: %v", err)
	}
}
