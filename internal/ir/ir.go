// Package ir defines the three-address-code control-flow-graph intermediate
// representation used by the static compiler, together with SSA construction,
// dominance, and verification utilities.
//
// The paper's analyses (run-time constants and reachability) and all
// optimizations operate on this IR "at the lower but more general level of
// control flow graphs connecting three-address code" (paper section 3),
// which is what lets the system handle unstructured C control flow.
package ir

import (
	"fmt"
	"sort"
	"strings"

	"dyncc/internal/token"
	"dyncc/internal/types"
)

// Value names an SSA value (or, before SSA construction, a virtual
// register). Value 0 is "no value".
type Value int

// Op enumerates IR operations.
type Op int

// IR operations.
const (
	OpInvalid Op = iota

	// Constants and addresses.
	OpConst      // Dst = Const (integer)
	OpFConst     // Dst = F (float)
	OpGlobalAddr // Dst = &global(Sym)
	OpStackAddr  // Dst = &stackslot(Slot)

	// Moves.
	OpCopy // Dst = Args[0]

	// Integer arithmetic (64-bit two's complement).
	OpAdd
	OpSub
	OpMul
	OpDiv  // signed; traps on zero
	OpUDiv // unsigned; traps on zero
	OpMod  // signed
	OpUMod // unsigned
	OpAnd
	OpOr
	OpXor
	OpShl
	OpAShr // arithmetic shift right
	OpLShr // logical shift right

	// Integer comparisons (produce 0/1).
	OpEq
	OpNe
	OpLt // signed <
	OpLe // signed <=
	OpULt
	OpULe

	// Unary.
	OpNeg // -x
	OpNot // ~x

	// Floating point.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg
	OpFEq
	OpFNe
	OpFLt
	OpFLe

	// Conversions.
	OpIntToFloat
	OpFloatToInt

	// Memory. Load: Dst = *(Args[0] + Const). Store: *(Args[0]+Const) = Args[1].
	OpLoad
	OpStore

	// Calls: Dst = Sym(Args...). Dst may be 0 for void.
	OpCall

	// SSA φ. Args parallel to Blk.Preds.
	OpPhi

	// Terminators.
	OpBr     // if Args[0] != 0 goto Targets[0] else Targets[1]
	OpJump   // goto Targets[0]
	OpSwitch // switch Args[0]: Cases[i] -> Targets[i]; default -> Targets[len(Cases)]
	OpRet    // return Args[0] (optional)

	// Dynamic-region pseudo-instructions, inserted by the splitter.
	OpDynEnter  // terminator: Targets[0]=set-up entry, Targets[1]=template entry
	OpDynStitch // terminator: Targets[0]=template entry (control continues in stitched code)

	// Run-time constants table stores, emitted in set-up code.
	// OpTblStore: table[Slot (region) or current record slot] = Args[0].
	// Args[1] (optional) is the table/record base pointer value.
	OpTblStore

	numOps
)

var opNames = [numOps]string{
	OpInvalid: "invalid",
	OpConst:   "const", OpFConst: "fconst",
	OpGlobalAddr: "globaladdr", OpStackAddr: "stackaddr",
	OpCopy: "copy",
	OpAdd:  "add", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpUDiv: "udiv", OpMod: "mod", OpUMod: "umod",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpAShr: "ashr", OpLShr: "lshr",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpULt: "ult", OpULe: "ule",
	OpNeg: "neg", OpNot: "not",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv", OpFNeg: "fneg",
	OpFEq: "feq", OpFNe: "fne", OpFLt: "flt", OpFLe: "fle",
	OpIntToFloat: "itof", OpFloatToInt: "ftoi",
	OpLoad: "load", OpStore: "store",
	OpCall: "call", OpPhi: "phi",
	OpBr: "br", OpJump: "jump", OpSwitch: "switch", OpRet: "ret",
	OpDynEnter: "dynenter", OpDynStitch: "dynstitch",
	OpTblStore: "tblstore",
}

// String returns the mnemonic of the op.
func (o Op) String() string {
	if o > 0 && int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case OpBr, OpJump, OpSwitch, OpRet, OpDynEnter, OpDynStitch:
		return true
	}
	return false
}

// IsPureNonTrapping reports whether the op is idempotent, side-effect-free
// and non-trapping — the condition under which its result may be treated as
// a derived run-time constant (paper section 3.1). Division and modulus are
// excluded because they might trap.
func (o Op) IsPureNonTrapping() bool {
	switch o {
	case OpConst, OpFConst, OpGlobalAddr, OpCopy,
		OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpAShr, OpLShr,
		OpEq, OpNe, OpLt, OpLe, OpULt, OpULe,
		OpNeg, OpNot,
		OpFAdd, OpFSub, OpFMul, OpFNeg, OpFEq, OpFNe, OpFLt, OpFLe,
		OpIntToFloat, OpFloatToInt:
		return true
	}
	return false
}

// IsCommutative reports whether Args[0] and Args[1] may be swapped.
func (o Op) IsCommutative() bool {
	switch o {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe, OpFAdd, OpFMul, OpFEq, OpFNe:
		return true
	}
	return false
}

// Instr is a single three-address instruction.
type Instr struct {
	Op   Op
	Dst  Value
	Args []Value
	Blk  *Block

	Const   int64       // OpConst value; Load/Store word offset
	F       float64     // OpFConst value
	Sym     string      // global name or callee
	Slot    int         // OpStackAddr slot; OpTblStore slot
	Loop    *Loop       // OpTblStore: owning unrolled loop (nil = region scope)
	Typ     *types.Type // result type; element type for Load/Store
	Dynamic bool        // Load through a `dynamic*` dereference
	Cases   []int64     // OpSwitch case values
	Targets []*Block    // branch targets
	Pos     token.Pos
}

// Block is a basic block.
type Block struct {
	ID     int
	Fn     *Func
	Instrs []*Instr
	Preds  []*Block

	// Region/loop membership, filled in during lowering.
	Region *Region // innermost dynamic region containing this block, or nil
	Loops  []*Loop // innermost-last chain of enclosing unrolled loops

	// Template marks blocks moved to the template subgraph by the splitter;
	// Setup marks blocks synthesized for the region's set-up code.
	Template bool
	Setup    bool
}

// Term returns the block terminator (last instruction).
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the successor blocks (terminator targets).
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	return t.Targets
}

// predIndex returns the index of p within b.Preds, or -1.
func (b *Block) predIndex(p *Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	return -1
}

// RemovePred removes predecessor p, dropping the corresponding φ arguments.
func (b *Block) RemovePred(p *Block) {
	i := b.predIndex(p)
	if i < 0 {
		return
	}
	b.Preds = append(b.Preds[:i], b.Preds[i+1:]...)
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		in.Args = append(in.Args[:i], in.Args[i+1:]...)
	}
}

// Phis returns the leading φ instructions of the block.
func (b *Block) Phis() []*Instr {
	var ps []*Instr
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		ps = append(ps, in)
	}
	return ps
}

// InLoop reports whether b is inside unrolled loop l.
func (b *Block) InLoop(l *Loop) bool {
	for _, x := range b.Loops {
		if x == l {
			return true
		}
	}
	return false
}

// Loop describes an `unrolled for` loop recorded at lowering time.
type Loop struct {
	ID     int
	Head   *Block  // loop-head merge block (φs for induction variables)
	Latch  *Block  // block holding the back edge to Head
	Parent *Loop   // enclosing unrolled loop, if any
	Region *Region // owning dynamic region

	// Filled by the splitter: table layout for per-iteration constants.
	HeaderSlot int // slot (in parent scope) holding pointer to first record
	RecordSize int // words per iteration record, incl. cond and next-link
	CondSlot   int // always 0: per-iteration continue condition
}

// Region describes a dynamicRegion annotation.
type Region struct {
	ID     int
	Fn     *Func
	Entry  *Block // dedicated, empty entry block
	Exit   *Block // dedicated continuation block after the region
	Keys   []Value
	Consts []Value // annotated run-time constants at entry (SSA values)
	Loops  []*Loop

	// KeyNames/ConstNames keep the source spelling for diagnostics.
	KeyNames   []string
	ConstNames []string

	// Pre-SSA bookkeeping: variable ids of annotated names; resolved to
	// SSA values (Keys/Consts above) during SSA renaming.
	KeyVars   []Value
	ConstVars []Value

	// Filled by the splitter.
	TableSize int // region-level table slots (incl. loop header slots)

	// Auto marks regions synthesized by the autoregion pass (speculative
	// promotion) rather than annotated in the source.
	Auto bool
}

// Blocks returns all blocks belonging to the region (by membership mark).
func (r *Region) Blocks() []*Block {
	var bs []*Block
	for _, b := range r.Fn.Blocks {
		if b.Region == r {
			bs = append(bs, b)
		}
	}
	return bs
}

// ValueInfo carries per-value metadata.
type ValueInfo struct {
	Name string // source-level name, if any
	Typ  *types.Type
	Def  *Instr // defining instruction (valid once in SSA form)
}

// Func is a function in IR form.
type Func struct {
	Name    string
	Typ     *types.Type // Func type
	Params  []Value     // parameter values, in order
	Blocks  []*Block    // Blocks[0] is entry
	Regions []*Region

	vals      []ValueInfo // index 0 unused
	numBlocks int
	StackSize int // stack slots (words) for address-taken locals/aggregates
	SSA       bool
}

// NewFunc creates an empty function.
func NewFunc(name string, typ *types.Type) *Func {
	return &Func{Name: name, Typ: typ, vals: make([]ValueInfo, 1)}
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewValue allocates a fresh value with the given name and type.
func (f *Func) NewValue(name string, typ *types.Type) Value {
	f.vals = append(f.vals, ValueInfo{Name: name, Typ: typ})
	return Value(len(f.vals) - 1)
}

// NumValues returns the number of allocated values plus one (ids are
// 1..NumValues-1).
func (f *Func) NumValues() int { return len(f.vals) }

// ValueInfo returns metadata for v.
func (f *Func) ValueInfo(v Value) *ValueInfo { return &f.vals[v] }

// TypeOf returns the type of v.
func (f *Func) TypeOf(v Value) *types.Type { return f.vals[v].Typ }

// DefOf returns the defining instruction of v (SSA form only).
func (f *Func) DefOf(v Value) *Instr { return f.vals[v].Def }

// NewBlock appends a new empty block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.numBlocks, Fn: f}
	f.numBlocks++
	f.Blocks = append(f.Blocks, b)
	return b
}

// Append adds instr to the end of block b and returns it.
func (b *Block) Append(in *Instr) *Instr {
	in.Blk = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// InsertBefore inserts in before position i in the block.
func (b *Block) InsertBefore(i int, in *Instr) {
	in.Blk = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
}

// ComputePreds recomputes predecessor lists from terminators.
// It must not be called once φ instructions exist (their argument order
// depends on the existing Preds order); use the incremental CFG-edit
// helpers instead.
func (f *Func) ComputePreds() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			s.Preds = append(s.Preds, b)
		}
	}
}

// ReversePostorder returns blocks reachable from entry in reverse postorder.
func (f *Func) ReversePostorder() []*Block {
	seen := make([]bool, f.numBlocks)
	var order []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.ID] = true
		for _, s := range b.Succs() {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(f.Entry())
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// RemoveUnreachable deletes blocks not reachable from entry, fixing Preds
// and φ arguments of surviving blocks.
func (f *Func) RemoveUnreachable() {
	reach := map[*Block]bool{}
	for _, b := range f.ReversePostorder() {
		reach[b] = true
	}
	for _, b := range f.Blocks {
		if !reach[b] {
			for _, s := range b.Succs() {
				if reach[s] {
					s.RemovePred(b)
				}
			}
		}
	}
	var keep []*Block
	for _, b := range f.Blocks {
		if reach[b] {
			keep = append(keep, b)
		}
	}
	f.Blocks = keep
}

// ---------------------------------------------------------------- printing

// String renders the function in a stable textual form.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s {\n", f.Name)
	for _, b := range f.Blocks {
		sb.WriteString(b.String())
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String renders one block.
func (b *Block) String() string {
	var sb strings.Builder
	var tags []string
	if b.Region != nil {
		tags = append(tags, fmt.Sprintf("region%d", b.Region.ID))
	}
	if b.Template {
		tags = append(tags, "template")
	}
	for _, l := range b.Loops {
		tags = append(tags, fmt.Sprintf("loop%d", l.ID))
	}
	var preds []string
	for _, p := range b.Preds {
		preds = append(preds, fmt.Sprintf("b%d", p.ID))
	}
	fmt.Fprintf(&sb, "b%d:", b.ID)
	if len(preds) > 0 {
		fmt.Fprintf(&sb, " ; preds=%s", strings.Join(preds, ","))
	}
	if len(tags) > 0 {
		fmt.Fprintf(&sb, " [%s]", strings.Join(tags, " "))
	}
	sb.WriteByte('\n')
	for _, in := range b.Instrs {
		fmt.Fprintf(&sb, "\t%s\n", in)
	}
	return sb.String()
}

// String renders an instruction.
func (in *Instr) String() string {
	v := func(x Value) string { return fmt.Sprintf("v%d", x) }
	var rhs string
	switch in.Op {
	case OpConst:
		rhs = fmt.Sprintf("const %d", in.Const)
	case OpFConst:
		rhs = fmt.Sprintf("fconst %g", in.F)
	case OpGlobalAddr:
		rhs = fmt.Sprintf("globaladdr %s", in.Sym)
	case OpStackAddr:
		rhs = fmt.Sprintf("stackaddr #%d", in.Slot)
	case OpLoad:
		d := ""
		if in.Dynamic {
			d = " dynamic"
		}
		rhs = fmt.Sprintf("load%s [%s+%d]", d, v(in.Args[0]), in.Const)
	case OpStore:
		return fmt.Sprintf("store [%s+%d] = %s", v(in.Args[0]), in.Const, v(in.Args[1]))
	case OpCall:
		var as []string
		for _, a := range in.Args {
			as = append(as, v(a))
		}
		rhs = fmt.Sprintf("call %s(%s)", in.Sym, strings.Join(as, ", "))
		if in.Dst == 0 {
			return rhs
		}
	case OpPhi:
		var as []string
		for i, a := range in.Args {
			p := "?"
			if i < len(in.Blk.Preds) {
				p = fmt.Sprintf("b%d", in.Blk.Preds[i].ID)
			}
			as = append(as, fmt.Sprintf("%s:%s", p, v(a)))
		}
		rhs = fmt.Sprintf("phi [%s]", strings.Join(as, ", "))
	case OpBr:
		return fmt.Sprintf("br %s, b%d, b%d", v(in.Args[0]), in.Targets[0].ID, in.Targets[1].ID)
	case OpJump:
		return fmt.Sprintf("jump b%d", in.Targets[0].ID)
	case OpSwitch:
		var cs []string
		for i, c := range in.Cases {
			cs = append(cs, fmt.Sprintf("%d:b%d", c, in.Targets[i].ID))
		}
		cs = append(cs, fmt.Sprintf("default:b%d", in.Targets[len(in.Cases)].ID))
		return fmt.Sprintf("switch %s [%s]", v(in.Args[0]), strings.Join(cs, ", "))
	case OpRet:
		if len(in.Args) == 0 {
			return "ret"
		}
		return fmt.Sprintf("ret %s", v(in.Args[0]))
	case OpDynEnter:
		return fmt.Sprintf("dynenter region -> setup b%d, template b%d", in.Targets[0].ID, in.Targets[1].ID)
	case OpDynStitch:
		return fmt.Sprintf("dynstitch -> b%d", in.Targets[0].ID)
	case OpTblStore:
		scope := "region"
		if in.Loop != nil {
			scope = fmt.Sprintf("loop%d", in.Loop.ID)
		}
		return fmt.Sprintf("tblstore %s[%d] = %s", scope, in.Slot, v(in.Args[0]))
	default:
		var as []string
		for _, a := range in.Args {
			as = append(as, v(a))
		}
		rhs = fmt.Sprintf("%s %s", in.Op, strings.Join(as, ", "))
	}
	if in.Dst == 0 {
		return rhs
	}
	return fmt.Sprintf("%s = %s", v(in.Dst), rhs)
}

// SortedValues returns values in ascending order (helper for deterministic
// iteration over value sets in maps).
func SortedValues(m map[Value]bool) []Value {
	vs := make([]Value, 0, len(m))
	for v := range m {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}
