package ir

import (
	"strings"
	"testing"

	"dyncc/internal/types"
)

func TestPrinting(t *testing.T) {
	f, bs := buildDiamond()
	BuildSSA(f)
	s := f.String()
	for _, want := range []string{"func d {", "b0:", "phi [", "br v", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	_ = bs
}

func TestInstrStringForms(t *testing.T) {
	f := NewFunc("p", types.FuncType(types.VoidType, nil))
	b := f.NewBlock()
	v1 := f.NewValue("", types.IntType)
	v2 := f.NewValue("", types.IntType)
	cases := []struct {
		in   *Instr
		want string
	}{
		{&Instr{Op: OpConst, Dst: v1, Const: 7}, "const 7"},
		{&Instr{Op: OpFConst, Dst: v1, F: 2.5}, "fconst 2.5"},
		{&Instr{Op: OpGlobalAddr, Dst: v1, Sym: "g"}, "globaladdr g"},
		{&Instr{Op: OpStackAddr, Dst: v1, Slot: 3}, "stackaddr #3"},
		{&Instr{Op: OpLoad, Dst: v1, Args: []Value{v2}, Const: 2}, "load [v"},
		{&Instr{Op: OpLoad, Dst: v1, Args: []Value{v2}, Dynamic: true}, "load dynamic"},
		{&Instr{Op: OpStore, Args: []Value{v1, v2}, Const: 1}, "store ["},
		{&Instr{Op: OpCall, Sym: "f", Args: []Value{v1}}, "call f(v"},
		{&Instr{Op: OpRet}, "ret"},
		{&Instr{Op: OpJump, Targets: []*Block{b}}, "jump b0"},
		{&Instr{Op: OpSwitch, Args: []Value{v1}, Cases: []int64{1},
			Targets: []*Block{b, b}}, "switch v"},
		{&Instr{Op: OpTblStore, Args: []Value{v1}, Slot: 2}, "tblstore region[2]"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); !strings.Contains(got, tc.want) {
			t.Errorf("got %q, want substring %q", got, tc.want)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpBr.IsTerminator() || OpAdd.IsTerminator() {
		t.Error("IsTerminator")
	}
	if !OpAdd.IsPureNonTrapping() || OpDiv.IsPureNonTrapping() ||
		OpLoad.IsPureNonTrapping() || OpCall.IsPureNonTrapping() {
		t.Error("IsPureNonTrapping (div/load/call must be excluded)")
	}
	if !OpMul.IsCommutative() || OpSub.IsCommutative() {
		t.Error("IsCommutative")
	}
}
