package ir

import "fmt"

// InlineCall grafts callee's body into caller at the given call site,
// SSA-correctly: parameters substitute to the call's arguments, every
// callee value and block is renumbered fresh in the caller, the call's
// block is split at the call and every callee `ret` becomes a jump to the
// continuation, where the return value materializes as a φ (one arg per
// returning path). Positions are preserved for diagnostics. Both functions
// must be in SSA form; the caller remains in valid SSA form afterwards
// (Verify-clean) — φ argument order is maintained incrementally, never via
// ComputePreds.
//
// Structural requirements (the caller should have screened these via
// analysis.FuncSummary; they are re-checked here because violating them
// silently would corrupt the IR):
//   - callee is not caller (no direct self-inlining),
//   - callee contains no dynamic regions and no stack frame
//     (address-taken locals cannot be dissolved into the caller's frame),
//   - callee has at least one `ret`, with a value iff the call expects one,
//   - argument and parameter counts match.
func InlineCall(caller *Func, call *Instr, callee *Func) error {
	if call.Op != OpCall || call.Sym != callee.Name {
		return fmt.Errorf("inline: instr is not a call of %s", callee.Name)
	}
	if !caller.SSA || !callee.SSA {
		return fmt.Errorf("inline: %s into %s: both must be in SSA form",
			callee.Name, caller.Name)
	}
	if caller == callee {
		return fmt.Errorf("inline: %s: direct self-inline", caller.Name)
	}
	if len(callee.Regions) > 0 {
		return fmt.Errorf("inline: %s contains dynamic regions", callee.Name)
	}
	if callee.StackSize > 0 {
		return fmt.Errorf("inline: %s has a stack frame", callee.Name)
	}
	if len(call.Args) != len(callee.Params) {
		return fmt.Errorf("inline: %s: %d args, %d params",
			callee.Name, len(call.Args), len(callee.Params))
	}
	b := call.Blk
	if b == nil || b.Fn != caller {
		return fmt.Errorf("inline: call site not in %s", caller.Name)
	}
	ci := -1
	for i, in := range b.Instrs {
		if in == call {
			ci = i
			break
		}
	}
	if ci < 0 {
		return fmt.Errorf("inline: call site detached from its block")
	}

	// Only the reachable subgraph of the callee is grafted.
	reach := callee.ReversePostorder()
	reachable := map[*Block]bool{}
	for _, cb := range reach {
		reachable[cb] = true
	}
	if len(callee.Entry().Preds) != 0 {
		return fmt.Errorf("inline: %s entry has predecessors", callee.Name)
	}
	retCount := 0
	for _, cb := range reach {
		for _, in := range cb.Instrs {
			switch in.Op {
			case OpStackAddr:
				return fmt.Errorf("inline: %s takes a stack address", callee.Name)
			case OpDynEnter, OpDynStitch, OpTblStore:
				return fmt.Errorf("inline: %s contains region machinery", callee.Name)
			case OpRet:
				retCount++
				if call.Dst != 0 && len(in.Args) == 0 {
					return fmt.Errorf("inline: %s: value call of void return", callee.Name)
				}
			}
		}
	}
	if retCount == 0 {
		return fmt.Errorf("inline: %s never returns", callee.Name)
	}

	// Value map: parameters bind to the call's arguments; every value the
	// callee defines gets a fresh caller value up front, so forward
	// references (φs naming values defined later) resolve in one pass.
	vmap := make([]Value, callee.NumValues())
	for i, p := range callee.Params {
		vmap[p] = call.Args[i]
	}
	for _, cb := range reach {
		for _, in := range cb.Instrs {
			if in.Dst != 0 && vmap[in.Dst] == 0 {
				vi := callee.ValueInfo(in.Dst)
				vmap[in.Dst] = caller.NewValue(vi.Name, vi.Typ)
			}
		}
	}
	mapVal := func(v Value) Value {
		if v <= 0 || int(v) >= len(vmap) {
			return v
		}
		if vmap[v] == 0 {
			// Used but never defined on a reachable path (verifier allows
			// it pre-DCE); keep SSA sane with a fresh undefined value.
			vi := callee.ValueInfo(v)
			vmap[v] = caller.NewValue(vi.Name, vi.Typ)
		}
		return vmap[v]
	}

	// Fresh caller blocks for the grafted body, inheriting the call site's
	// region and unrolled-loop membership (the graft executes exactly where
	// the call did).
	loops := append([]*Loop(nil), b.Loops...)
	bmap := map[*Block]*Block{}
	for _, cb := range reach {
		nb := caller.NewBlock()
		nb.Region = b.Region
		nb.Loops = loops
		bmap[cb] = nb
	}

	// The continuation: everything after the call moves here, including the
	// terminator; b ends with a jump into the grafted entry.
	cont := caller.NewBlock()
	cont.Region = b.Region
	cont.Loops = loops

	// Clone instructions. Rets become jumps to the continuation; their
	// (mapped) return values line up with cont.Preds for the return φ.
	var retPreds []*Block
	var retVals []Value
	for _, cb := range reach {
		nb := bmap[cb]
		// Predecessors first (φ argument slots align with them). Preds from
		// unreachable blocks are dropped along with their φ args.
		keep := make([]int, 0, len(cb.Preds))
		for pi, p := range cb.Preds {
			if reachable[p] {
				keep = append(keep, pi)
				nb.Preds = append(nb.Preds, bmap[p])
			}
		}
		for _, in := range cb.Instrs {
			if in.Op == OpRet {
				retPreds = append(retPreds, nb)
				if len(in.Args) > 0 {
					retVals = append(retVals, mapVal(in.Args[0]))
				} else {
					retVals = append(retVals, 0)
				}
				nb.Append(&Instr{Op: OpJump, Targets: []*Block{cont}, Pos: in.Pos})
				continue
			}
			ni := &Instr{
				Op:      in.Op,
				Dst:     mapVal(in.Dst),
				Const:   in.Const,
				F:       in.F,
				Sym:     in.Sym,
				Slot:    in.Slot,
				Typ:     in.Typ,
				Dynamic: in.Dynamic,
				Pos:     in.Pos,
			}
			if in.Op == OpPhi {
				ni.Args = make([]Value, 0, len(keep))
				for _, pi := range keep {
					ni.Args = append(ni.Args, mapVal(in.Args[pi]))
				}
			} else if len(in.Args) > 0 {
				ni.Args = make([]Value, len(in.Args))
				for i, a := range in.Args {
					ni.Args[i] = mapVal(a)
				}
			}
			if len(in.Cases) > 0 {
				ni.Cases = append([]int64(nil), in.Cases...)
			}
			if len(in.Targets) > 0 {
				ni.Targets = make([]*Block, len(in.Targets))
				for i, t := range in.Targets {
					ni.Targets[i] = bmap[t]
				}
			}
			nb.Append(ni)
			if ni.Dst != 0 {
				caller.vals[ni.Dst].Def = ni
			}
		}
	}

	// Split b: move the post-call tail (there are no φs past the call) into
	// the continuation and retarget successor pred-edges from b to cont,
	// preserving slot order so successor φs stay aligned.
	tail := b.Instrs[ci+1:]
	b.Instrs = b.Instrs[:ci]
	for _, in := range tail {
		in.Blk = cont
	}
	cont.Instrs = append(cont.Instrs, tail...)
	if t := cont.Term(); t != nil {
		seen := map[*Block]bool{}
		for _, s := range t.Targets {
			if seen[s] {
				continue
			}
			seen[s] = true
			for i, p := range s.Preds {
				if p == b {
					s.Preds[i] = cont
				}
			}
		}
	}
	// The call block's role as an unrolled-loop latch (back edge source)
	// follows its terminator into the continuation.
	for _, r := range caller.Regions {
		for _, l := range r.Loops {
			if l.Latch == b {
				l.Latch = cont
			}
		}
	}
	b.Append(&Instr{Op: OpJump, Targets: []*Block{bmap[callee.Entry()]}, Pos: call.Pos})
	bmap[callee.Entry()].Preds = []*Block{b}
	cont.Preds = retPreds

	// Materialize the return value at the continuation head. Every former
	// use of call.Dst is dominated by cont: the only way past the call site
	// now leads through it.
	if call.Dst != 0 {
		var ret *Instr
		if len(retPreds) == 1 {
			ret = &Instr{Op: OpCopy, Dst: call.Dst, Args: []Value{retVals[0]},
				Typ: call.Typ, Pos: call.Pos}
		} else {
			ret = &Instr{Op: OpPhi, Dst: call.Dst, Args: retVals,
				Typ: call.Typ, Pos: call.Pos}
		}
		cont.InsertBefore(0, ret)
		caller.vals[call.Dst].Def = ret
	}
	return nil
}
