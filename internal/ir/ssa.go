package ir

// SSA construction (Cytron et al.: φ insertion at iterated dominance
// frontiers, then renaming along the dominator tree) and destruction
// (two-stage copy insertion, swap- and lost-copy-safe).

// BuildSSA converts f from multiply-assigned virtual registers into SSA
// form (pruned: φs are only inserted where the variable is live). It also
// resolves each region's annotated constant/key variables to the SSA values
// reaching the region entry.
func BuildSSA(f *Func) {
	if f.SSA {
		return
	}
	f.RemoveUnreachable()
	dt := BuildDomTree(f)
	liveIn := blockLiveIn(f)

	// Collect definition sites per variable.
	defSites := map[Value][]*Block{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Dst != 0 {
				defSites[in.Dst] = append(defSites[in.Dst], b)
			}
		}
	}

	// Insert φ nodes at iterated dominance frontiers (pruned by liveness:
	// without pruning, every switch-arm temporary grows a dead φ web
	// around enclosing loop heads).
	// phiVar records which original variable each φ merges.
	phiVar := map[*Instr]Value{}
	for _, v := range SortedValues(boolKeys(defSites)) {
		sites := defSites[v]
		hasPhi := map[*Block]bool{}
		work := append([]*Block(nil), sites...)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, df := range dt.Frontier[b] {
				if hasPhi[df] {
					continue
				}
				hasPhi[df] = true
				if !liveIn[df][v] {
					// The variable is dead here; a φ would only feed
					// further dead φs. Still propagate the def site so
					// deeper frontiers are considered.
					work = append(work, df)
					continue
				}
				phi := &Instr{
					Op:   OpPhi,
					Dst:  v,
					Args: make([]Value, len(df.Preds)),
					Typ:  f.TypeOf(v),
				}
				for i := range phi.Args {
					phi.Args[i] = v
				}
				df.InsertBefore(0, phi)
				phiVar[phi] = v
				work = append(work, df)
			}
		}
	}

	// Rename.
	stacks := map[Value][]Value{}
	top := func(v Value) Value {
		s := stacks[v]
		if len(s) == 0 {
			// Use of a variable with no dominating definition (e.g. a
			// parameter, or uninitialized along some path): parameters are
			// pre-pushed below; otherwise keep the original id, which acts
			// as an implicit entry definition of an undefined value.
			return v
		}
		return s[len(s)-1]
	}
	for _, p := range f.Params {
		stacks[p] = []Value{p}
		f.vals[p].Def = nil
	}

	var rename func(b *Block)
	rename = func(b *Block) {
		var pushed []Value
		for _, in := range b.Instrs {
			if in.Op != OpPhi {
				for i, a := range in.Args {
					in.Args[i] = top(a)
				}
			}
			if in.Dst != 0 {
				orig := in.Dst
				info := f.vals[orig]
				nv := f.NewValue(info.Name, info.Typ)
				in.Dst = nv
				f.vals[nv].Def = in
				stacks[orig] = append(stacks[orig], nv)
				pushed = append(pushed, orig)
				if in.Op == OpPhi {
					phiVar[in] = orig
				}
			}
		}
		// Resolve region annotations at region entries: the SSA values of
		// the annotated variables reaching this point.
		for _, r := range f.Regions {
			if r.Entry == b {
				r.Consts = r.Consts[:0]
				for _, cv := range r.ConstVars {
					r.Consts = append(r.Consts, top(cv))
				}
				r.Keys = r.Keys[:0]
				for _, kv := range r.KeyVars {
					r.Keys = append(r.Keys, top(kv))
				}
			}
		}
		// Fill φ args of successors.
		for _, s := range b.Succs() {
			pi := s.predIndex(b)
			if pi < 0 {
				continue
			}
			for _, phi := range s.Phis() {
				v := phiVar[phi]
				if v == 0 {
					v = phi.Args[pi] // already-renamed variable id
				}
				phi.Args[pi] = top(v)
			}
		}
		for _, c := range dt.Children[b] {
			rename(c)
		}
		for _, v := range pushed {
			stacks[v] = stacks[v][:len(stacks[v])-1]
		}
	}
	rename(f.Entry())
	f.SSA = true
}

// blockLiveIn computes, pre-SSA, which variables are live at each block
// entry (classic backward union dataflow over variables).
func blockLiveIn(f *Func) map[*Block]map[Value]bool {
	use := map[*Block]map[Value]bool{}
	def := map[*Block]map[Value]bool{}
	for _, b := range f.Blocks {
		u, d := map[Value]bool{}, map[Value]bool{}
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a != 0 && !d[a] {
					u[a] = true
				}
			}
			if in.Dst != 0 {
				d[in.Dst] = true
			}
		}
		use[b], def[b] = u, d
	}
	liveIn := map[*Block]map[Value]bool{}
	for _, b := range f.Blocks {
		liveIn[b] = map[Value]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			in := liveIn[b]
			for _, s := range b.Succs() {
				for v := range liveIn[s] {
					if !def[b][v] && !in[v] {
						in[v] = true
						changed = true
					}
				}
			}
			for v := range use[b] {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}
	return liveIn
}

func boolKeys(m map[Value][]*Block) map[Value]bool {
	r := make(map[Value]bool, len(m))
	for k := range m {
		r[k] = true
	}
	return r
}

// DestroySSA eliminates φ instructions by inserting copies. Critical edges
// must already be split. The two-stage scheme (copy into a fresh temporary
// in each predecessor, then copy to the φ destination at the block head)
// is immune to the swap and lost-copy problems.
func DestroySSA(f *Func) {
	if !f.SSA {
		return
	}
	for _, b := range f.Blocks {
		phis := b.Phis()
		if len(phis) == 0 {
			continue
		}
		temps := make([]Value, len(phis))
		for i, phi := range phis {
			temps[i] = f.NewValue(f.vals[phi.Dst].Name+".t", phi.Typ)
		}
		for pi, p := range b.Preds {
			insertAt := len(p.Instrs)
			if p.Term() != nil {
				insertAt--
			}
			for i, phi := range phis {
				cp := &Instr{Op: OpCopy, Dst: temps[i], Args: []Value{phi.Args[pi]}, Typ: phi.Typ}
				p.InsertBefore(insertAt, cp)
				insertAt++
			}
		}
		// Replace φs with copies from the temporaries.
		for i, phi := range phis {
			phi.Op = OpCopy
			phi.Args = []Value{temps[i]}
			_ = i
		}
	}
	f.SSA = false
}
