package ir

// Dominance computation (Cooper/Harvey/Kennedy iterative algorithm) and
// CFG-editing helpers.

// DomTree holds immediate dominators and dominance frontiers.
type DomTree struct {
	Idom     map[*Block]*Block   // immediate dominator (nil for entry)
	Children map[*Block][]*Block // dominator-tree children
	Frontier map[*Block][]*Block // dominance frontier
	rpoIndex map[*Block]int
}

// BuildDomTree computes the dominator tree and dominance frontiers for the
// blocks reachable from f's entry.
func BuildDomTree(f *Func) *DomTree {
	rpo := f.ReversePostorder()
	idx := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		idx[b] = i
	}
	idom := make(map[*Block]*Block, len(rpo))
	entry := f.Entry()
	idom[entry] = entry

	intersect := func(a, b *Block) *Block {
		for a != b {
			for idx[a] > idx[b] {
				a = idom[a]
			}
			for idx[b] > idx[a] {
				b = idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[entry] = nil

	t := &DomTree{
		Idom:     idom,
		Children: map[*Block][]*Block{},
		Frontier: map[*Block][]*Block{},
		rpoIndex: idx,
	}
	for _, b := range rpo {
		if d := idom[b]; d != nil {
			t.Children[d] = append(t.Children[d], b)
		}
	}
	// Dominance frontiers.
	for _, b := range rpo {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if _, ok := idx[p]; !ok {
				continue
			}
			runner := p
			for runner != nil && runner != idom[b] {
				t.addFrontier(runner, b)
				runner = idom[runner]
			}
		}
	}
	return t
}

func (t *DomTree) addFrontier(b, f *Block) {
	for _, x := range t.Frontier[b] {
		if x == f {
			return
		}
	}
	t.Frontier[b] = append(t.Frontier[b], f)
}

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *Block) bool {
	for b != nil {
		if a == b {
			return true
		}
		b = t.Idom[b]
	}
	return false
}

// SplitCriticalEdges inserts an empty block on every edge whose source has
// multiple successors and whose destination has multiple predecessors.
// Inserted blocks inherit the region/template/loop marks of the edge source
// so that splitter invariants (template vs. set-up membership) survive.
// Back edges of unrolled loops are preserved: the new block becomes the
// latch if the split edge was latch->head.
func (f *Func) SplitCriticalEdges() {
	blocks := append([]*Block(nil), f.Blocks...)
	for _, b := range blocks {
		term := b.Term()
		if term == nil || len(term.Targets) < 2 {
			continue
		}
		// Dynamic-region boundary edges are virtual (the runtime transfers
		// control); they must not be split.
		if term.Op == OpDynEnter || term.Op == OpDynStitch {
			continue
		}
		for ti, s := range term.Targets {
			if len(s.Preds) < 2 {
				continue
			}
			nb := f.NewBlock()
			nb.Region = b.Region
			nb.Template = b.Template
			nb.Setup = b.Setup
			nb.Loops = append([]*Loop(nil), b.Loops...)
			nb.Append(&Instr{Op: OpJump, Targets: []*Block{s}})
			term.Targets[ti] = s
			// Rewire: b -> nb -> s.
			term.Targets[ti] = nb
			nb.Preds = []*Block{b}
			if i := s.predIndex(b); i >= 0 {
				s.Preds[i] = nb
			}
			// Preserve unrolled-loop latch identity.
			for _, r := range f.Regions {
				for _, l := range r.Loops {
					if l.Latch == b && l.Head == s {
						l.Latch = nb
						nb.Loops = append([]*Loop(nil), b.Loops...)
					}
				}
			}
		}
	}
}
