package parser

import (
	"strings"
	"testing"

	"dyncc/internal/ast"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestFunctionsAndGlobals(t *testing.T) {
	f := parse(t, `
int g = 42;
float fx;
int add(int a, int b) { return a + b; }
void nothing(void) { }
extern int ignored;
`)
	if len(f.Globals) != 2 {
		t.Errorf("globals: %d", len(f.Globals))
	}
	if len(f.Funcs) != 2 {
		t.Fatalf("funcs: %d", len(f.Funcs))
	}
	if f.Funcs[0].Name != "add" || len(f.Funcs[0].Params) != 2 {
		t.Errorf("add: %+v", f.Funcs[0])
	}
	if init, ok := f.Globals[0].Init.(*ast.IntLit); !ok || init.Val != 42 {
		t.Errorf("g init: %#v", f.Globals[0].Init)
	}
}

func TestStructs(t *testing.T) {
	f := parse(t, `
struct Node { int val; struct Node *next; };
struct Node *head;
`)
	if len(f.Structs) != 1 || f.Structs[0].Name != "Node" {
		t.Fatalf("structs: %+v", f.Structs)
	}
	if len(f.Structs[0].Fields) != 2 {
		t.Errorf("fields: %d", len(f.Structs[0].Fields))
	}
	if f.Structs[0].Fields[1].Type.Ptr != 1 {
		t.Errorf("next should be a pointer")
	}
}

func TestDynamicRegionAnnotation(t *testing.T) {
	f := parse(t, `
int f(int c, int k) {
    dynamicRegion key(k) (c) {
        return c + k;
    }
    return 0;
}`)
	var dr *ast.DynamicRegion
	for _, s := range f.Funcs[0].Body.Stmts {
		if d, ok := s.(*ast.DynamicRegion); ok {
			dr = d
		}
	}
	if dr == nil {
		t.Fatal("no dynamicRegion parsed")
	}
	if len(dr.Keys) != 1 || dr.Keys[0] != "k" {
		t.Errorf("keys: %v", dr.Keys)
	}
	if len(dr.Consts) != 1 || dr.Consts[0] != "c" {
		t.Errorf("consts: %v", dr.Consts)
	}
}

func TestUnrolledAndDynamicAnnotations(t *testing.T) {
	f := parse(t, `
int f(int *a, int n, int *p) {
    dynamicRegion (a, n) {
        int i;
        int x = dynamic* p;
        unrolled for (i = 0; i < n; i++) {
            x += a dynamic[i];
        }
        return x;
    }
    return 0;
}`)
	src := f.Funcs[0]
	dr := src.Body.Stmts[0].(*ast.DynamicRegion)
	var sawUnrolled, sawDynIdx, sawDynDeref bool
	var walkStmt func(s ast.Stmt)
	var walkExpr func(e ast.Expr)
	walkExpr = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.Unary:
			if x.Op.String() == "*" && x.Dynamic {
				sawDynDeref = true
			}
			walkExpr(x.X)
		case *ast.Index:
			if x.Dynamic {
				sawDynIdx = true
			}
			walkExpr(x.X)
			walkExpr(x.I)
		case *ast.Assign:
			walkExpr(x.L)
			walkExpr(x.R)
		case *ast.Binary:
			walkExpr(x.L)
			walkExpr(x.R)
		}
	}
	walkStmt = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.Block:
			for _, s2 := range x.Stmts {
				walkStmt(s2)
			}
		case *ast.DeclStmt:
			for _, d := range x.Decls {
				if d.Init != nil {
					walkExpr(d.Init)
				}
			}
		case *ast.For:
			if x.Unrolled {
				sawUnrolled = true
			}
			walkStmt(x.Body)
		case *ast.ExprStmt:
			walkExpr(x.X)
		case *ast.Return:
			if x.X != nil {
				walkExpr(x.X)
			}
		}
	}
	walkStmt(dr.Body)
	if !sawUnrolled {
		t.Error("unrolled for not parsed")
	}
	if !sawDynIdx {
		t.Error("dynamic[] not parsed")
	}
	if !sawDynDeref {
		t.Error("dynamic* not parsed")
	}
}

func TestDynamicArrow(t *testing.T) {
	f := parse(t, `
struct S { int tag; };
int f(struct S *p) { return p dynamic-> tag; }
`)
	ret := f.Funcs[0].Body.Stmts[0].(*ast.Return)
	fld, ok := ret.X.(*ast.Field)
	if !ok || !fld.Dynamic || !fld.Arrow || fld.Name != "tag" {
		t.Fatalf("dynamic-> parse: %#v", ret.X)
	}
}

func TestPrecedence(t *testing.T) {
	f := parse(t, `int f(int a, int b, int c) { return a + b * c; }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ast.Return)
	add, ok := ret.X.(*ast.Binary)
	if !ok || add.Op.String() != "+" {
		t.Fatalf("top is %#v", ret.X)
	}
	if mul, ok := add.R.(*ast.Binary); !ok || mul.Op.String() != "*" {
		t.Fatalf("rhs is %#v", add.R)
	}
}

func TestTernaryAndCast(t *testing.T) {
	f := parse(t, `unsigned f(int a) { return (unsigned)(a > 0 ? a : -a); }`)
	ret := f.Funcs[0].Body.Stmts[0].(*ast.Return)
	c, ok := ret.X.(*ast.Cast)
	if !ok {
		t.Fatalf("no cast: %#v", ret.X)
	}
	if _, ok := c.X.(*ast.Cond); !ok {
		t.Fatalf("no ternary under cast: %#v", c.X)
	}
}

func TestControlFlowForms(t *testing.T) {
	parse(t, `
int f(int n) {
    int i = 0, acc = 0;
    while (i < n) { i++; }
    do { acc += i; } while (acc < 10);
    for (;;) { break; }
    switch (n) { case 1: acc = 1; case 2: acc = 2; break; default: acc = 3; }
top:
    if (acc > 100) goto done;
    acc *= 2;
    goto top;
done:
    return acc;
}`)
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`int f( { }`,
		`int f() { return ; ; `,
		`int f() { unrolled while (1) {} }`,
		`int f() { dynamic + 1; }`,
		`struct S { int x };`, // missing field semicolon forgiven? no: missing ; after }
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestCommaOperator(t *testing.T) {
	f := parse(t, `int f(int a) { int b; b = (a++, a + 1); return b; }`)
	if !strings.Contains(f.Funcs[0].Name, "f") {
		t.Fatal("sanity")
	}
}
