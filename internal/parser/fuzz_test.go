package parser

import (
	"math/rand"
	"testing"
)

// The parser must terminate with an error (never panic or hang) on
// arbitrary garbage: random token soup assembled from valid lexemes.
func TestParserRobustness(t *testing.T) {
	atoms := []string{
		"int", "unsigned", "float", "struct", "if", "else", "while", "for",
		"switch", "case", "default", "break", "continue", "goto", "return",
		"dynamicRegion", "key", "unrolled", "dynamic",
		"x", "y", "foo", "42", "3.5", "(", ")", "{", "}", "[", "]",
		"+", "-", "*", "/", "%", "=", "==", "!=", "<", ">", "<<", ">>",
		"&&", "||", "->", ".", ",", ";", ":", "?", "&", "|", "^", "~", "!",
		"++", "--", "+=", "\"str\"", "'c'",
	}
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		src := ""
		for i := 0; i < n; i++ {
			src += atoms[r.Intn(len(atoms))] + " "
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("seed %d: parser panicked on %q: %v", seed, src, p)
				}
			}()
			Parse(src) // error or success both fine; panic/hang is not
		}()
	}
}

// Deeply nested expressions must not blow the stack unreasonably.
func TestDeepNesting(t *testing.T) {
	expr := "x"
	for i := 0; i < 2000; i++ {
		expr = "(" + expr + "+1)"
	}
	if _, err := Parse("int f(int x) { return " + expr + "; }"); err != nil {
		t.Fatalf("deep nesting: %v", err)
	}
}
