// Package parser implements a recursive-descent parser for MiniC,
// including the paper's annotations:
//
//	dynamicRegion (v1, v2) { ... }
//	dynamicRegion key(k) (v1) { ... }
//	unrolled for (...) ...
//	x = dynamic* p;   p dynamic-> f;   a dynamic[i]
package parser

import (
	"fmt"

	"dyncc/internal/ast"
	"dyncc/internal/lexer"
	"dyncc/internal/token"
)

// Parser holds parse state.
type Parser struct {
	toks []token.Token
	pos  int
	errs []error

	structNames map[string]bool
}

// Parse parses a MiniC translation unit.
func Parse(src string) (*ast.File, error) {
	lx := lexer.New(src)
	toks := lx.All()
	if errs := lx.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("lex: %w", errs[0])
	}
	p := &Parser{toks: toks, structNames: map[string]bool{}}
	f := p.file()
	if len(p.errs) > 0 {
		return nil, p.errs[0]
	}
	return f, nil
}

func (p *Parser) cur() token.Token { return p.toks[p.pos] }
func (p *Parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos+1 < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return p.cur()
}

func (p *Parser) errorf(format string, args ...any) {
	err := fmt.Errorf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...))
	p.errs = append(p.errs, err)
	// Panic-free error recovery: skip one token so we make progress.
	if !p.at(token.EOF) {
		p.pos++
	}
}

// ------------------------------------------------------------ top level

func (p *Parser) file() *ast.File {
	f := &ast.File{}
	for !p.at(token.EOF) && len(p.errs) == 0 {
		switch {
		case p.at(token.KwStruct) && p.peek().Kind == token.IDENT && p.peekAfterStructIsBrace():
			f.Structs = append(f.Structs, p.structDecl())
		case p.at(token.KwExtern):
			p.next()
			p.topDecl(f, true)
		default:
			p.topDecl(f, false)
		}
	}
	return f
}

// peekAfterStructIsBrace reports whether `struct Name {` follows (a struct
// definition rather than a struct-typed declaration).
func (p *Parser) peekAfterStructIsBrace() bool {
	return p.pos+2 < len(p.toks) && p.toks[p.pos+2].Kind == token.LBRACE
}

func (p *Parser) structDecl() *ast.StructDecl {
	pos := p.expect(token.KwStruct).Pos
	name := p.expect(token.IDENT).Text
	p.structNames[name] = true
	p.expect(token.LBRACE)
	d := &ast.StructDecl{P: pos, Name: name}
	for !p.at(token.RBRACE) && !p.at(token.EOF) && len(p.errs) == 0 {
		base := p.typeBase()
		for {
			fld := p.declarator(base)
			d.Fields = append(d.Fields, &ast.Param{P: fld.P, Name: fld.Name, Type: fld.Type})
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.SEMI)
	}
	p.expect(token.RBRACE)
	p.expect(token.SEMI)
	return d
}

// topDecl parses a global variable or function definition.
func (p *Parser) topDecl(f *ast.File, isExtern bool) {
	base := p.typeBase()
	d := p.declarator(base)
	if p.at(token.LPAREN) {
		fn := &ast.FuncDecl{P: d.P, Name: d.Name, Ret: d.Type}
		p.expect(token.LPAREN)
		if !p.at(token.RPAREN) {
			if p.at(token.KwVoid) && p.peek().Kind == token.RPAREN {
				p.next()
			} else {
				for {
					pb := p.typeBase()
					pd := p.declarator(pb)
					fn.Params = append(fn.Params, &ast.Param{P: pd.P, Name: pd.Name, Type: pd.Type})
					if !p.accept(token.COMMA) {
						break
					}
				}
			}
		}
		p.expect(token.RPAREN)
		if p.accept(token.SEMI) {
			fn.Body = nil // prototype / extern
		} else {
			fn.Body = p.block()
		}
		f.Funcs = append(f.Funcs, fn)
		return
	}
	// Global variable(s).
	for {
		var init ast.Expr
		if p.accept(token.ASSIGN) {
			init = p.assignExpr()
		}
		if !isExtern {
			f.Globals = append(f.Globals, &ast.VarDecl{P: d.P, Name: d.Name, Type: d.Type, Init: init})
		}
		if !p.accept(token.COMMA) {
			break
		}
		d = p.declarator(base)
	}
	p.expect(token.SEMI)
}

// ------------------------------------------------------------ types

type baseType struct {
	pos        token.Pos
	kind       token.Kind
	structName string
}

func (p *Parser) atTypeStart() bool {
	switch p.cur().Kind {
	case token.KwInt, token.KwUnsigned, token.KwFloat, token.KwDouble,
		token.KwChar, token.KwVoid, token.KwStruct, token.KwConst, token.KwStatic:
		return true
	}
	return false
}

func (p *Parser) typeBase() baseType {
	for p.at(token.KwConst) || p.at(token.KwStatic) {
		p.next()
	}
	t := p.cur()
	switch t.Kind {
	case token.KwInt, token.KwFloat, token.KwDouble, token.KwChar, token.KwVoid:
		p.next()
		return baseType{pos: t.Pos, kind: t.Kind}
	case token.KwUnsigned:
		p.next()
		p.accept(token.KwInt) // "unsigned int"
		p.accept(token.KwChar)
		return baseType{pos: t.Pos, kind: token.KwUnsigned}
	case token.KwStruct:
		p.next()
		name := p.expect(token.IDENT).Text
		return baseType{pos: t.Pos, kind: token.KwStruct, structName: name}
	}
	p.errorf("expected type, found %s", t)
	return baseType{pos: t.Pos, kind: token.KwInt}
}

type declared struct {
	P    token.Pos
	Name string
	Type *ast.TypeExpr
}

// declarator parses `*...* name [len]...` after a base type.
func (p *Parser) declarator(b baseType) declared {
	te := &ast.TypeExpr{P: b.pos, Base: b.kind, StructName: b.structName}
	for p.accept(token.STAR) {
		te.Ptr++
	}
	nameTok := p.expect(token.IDENT)
	for p.accept(token.LBRACK) {
		if p.at(token.RBRACK) {
			te.ArrayLens = append(te.ArrayLens, -1)
		} else {
			n := p.expect(token.INT)
			te.ArrayLens = append(te.ArrayLens, int(n.IntVal))
		}
		p.expect(token.RBRACK)
	}
	return declared{P: nameTok.Pos, Name: nameTok.Text, Type: te}
}

// typeName parses a type inside a cast or sizeof: base *...*.
func (p *Parser) typeName() *ast.TypeExpr {
	b := p.typeBase()
	te := &ast.TypeExpr{P: b.pos, Base: b.kind, StructName: b.structName}
	for p.accept(token.STAR) {
		te.Ptr++
	}
	return te
}

// ------------------------------------------------------------ statements

func (p *Parser) block() *ast.Block {
	pos := p.expect(token.LBRACE).Pos
	b := &ast.Block{P: pos}
	for !p.at(token.RBRACE) && !p.at(token.EOF) && len(p.errs) == 0 {
		b.Stmts = append(b.Stmts, p.stmt())
	}
	p.expect(token.RBRACE)
	return b
}

func (p *Parser) stmt() ast.Stmt {
	t := p.cur()
	switch t.Kind {
	case token.LBRACE:
		return p.block()
	case token.SEMI:
		p.next()
		return &ast.EmptyStmt{P: t.Pos}
	case token.KwIf:
		return p.ifStmt()
	case token.KwWhile:
		return p.whileStmt()
	case token.KwDo:
		return p.doWhileStmt()
	case token.KwFor:
		return p.forStmt(false)
	case token.KwUnrolled:
		p.next()
		if !p.at(token.KwFor) {
			p.errorf("expected 'for' after 'unrolled'")
		}
		return p.forStmt(true)
	case token.KwSwitch:
		return p.switchStmt()
	case token.KwCase:
		p.next()
		v := p.condExpr()
		p.expect(token.COLON)
		return &ast.Case{P: t.Pos, Value: v}
	case token.KwDefault:
		p.next()
		p.expect(token.COLON)
		return &ast.Case{P: t.Pos, IsDefault: true}
	case token.KwBreak:
		p.next()
		p.expect(token.SEMI)
		return &ast.Break{P: t.Pos}
	case token.KwContinue:
		p.next()
		p.expect(token.SEMI)
		return &ast.Continue{P: t.Pos}
	case token.KwGoto:
		p.next()
		lbl := p.expect(token.IDENT).Text
		p.expect(token.SEMI)
		return &ast.Goto{P: t.Pos, Label: lbl}
	case token.KwReturn:
		p.next()
		var x ast.Expr
		if !p.at(token.SEMI) {
			x = p.expr()
		}
		p.expect(token.SEMI)
		return &ast.Return{P: t.Pos, X: x}
	case token.KwDynamicRegion:
		return p.dynamicRegion()
	case token.IDENT:
		// Label?
		if p.peek().Kind == token.COLON {
			p.next()
			p.next()
			return &ast.LabeledStmt{P: t.Pos, Label: t.Text, Stmt: p.stmt()}
		}
	}
	if p.atTypeStart() {
		return p.declStmt()
	}
	x := p.expr()
	p.expect(token.SEMI)
	return &ast.ExprStmt{P: t.Pos, X: x}
}

func (p *Parser) declStmt() ast.Stmt {
	pos := p.cur().Pos
	base := p.typeBase()
	ds := &ast.DeclStmt{P: pos}
	for {
		d := p.declarator(base)
		var init ast.Expr
		if p.accept(token.ASSIGN) {
			init = p.assignExpr()
		}
		ds.Decls = append(ds.Decls, &ast.VarDecl{P: d.P, Name: d.Name, Type: d.Type, Init: init})
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.SEMI)
	return ds
}

func (p *Parser) ifStmt() ast.Stmt {
	pos := p.expect(token.KwIf).Pos
	p.expect(token.LPAREN)
	cond := p.expr()
	p.expect(token.RPAREN)
	thenS := p.stmt()
	var elseS ast.Stmt
	if p.accept(token.KwElse) {
		elseS = p.stmt()
	}
	return &ast.If{P: pos, Cond: cond, Then: thenS, Else: elseS}
}

func (p *Parser) whileStmt() ast.Stmt {
	pos := p.expect(token.KwWhile).Pos
	p.expect(token.LPAREN)
	cond := p.expr()
	p.expect(token.RPAREN)
	return &ast.While{P: pos, Cond: cond, Body: p.stmt()}
}

func (p *Parser) doWhileStmt() ast.Stmt {
	pos := p.expect(token.KwDo).Pos
	body := p.stmt()
	p.expect(token.KwWhile)
	p.expect(token.LPAREN)
	cond := p.expr()
	p.expect(token.RPAREN)
	p.expect(token.SEMI)
	return &ast.DoWhile{P: pos, Body: body, Cond: cond}
}

func (p *Parser) forStmt(unrolled bool) ast.Stmt {
	pos := p.expect(token.KwFor).Pos
	p.expect(token.LPAREN)
	var initS ast.Stmt
	if !p.at(token.SEMI) {
		if p.atTypeStart() {
			initS = p.declStmt() // consumes ';'
		} else {
			x := p.expr()
			initS = &ast.ExprStmt{P: x.Pos(), X: x}
			p.expect(token.SEMI)
		}
	} else {
		p.expect(token.SEMI)
	}
	var cond ast.Expr
	if !p.at(token.SEMI) {
		cond = p.expr()
	}
	p.expect(token.SEMI)
	var post ast.Expr
	if !p.at(token.RPAREN) {
		post = p.expr()
	}
	p.expect(token.RPAREN)
	return &ast.For{P: pos, Init: initS, Cond: cond, Post: post, Body: p.stmt(), Unrolled: unrolled}
}

func (p *Parser) switchStmt() ast.Stmt {
	pos := p.expect(token.KwSwitch).Pos
	p.expect(token.LPAREN)
	tag := p.expr()
	p.expect(token.RPAREN)
	return &ast.Switch{P: pos, Tag: tag, Body: p.block()}
}

func (p *Parser) dynamicRegion() ast.Stmt {
	pos := p.expect(token.KwDynamicRegion).Pos
	dr := &ast.DynamicRegion{P: pos}
	if p.accept(token.KwKey) {
		p.expect(token.LPAREN)
		for !p.at(token.RPAREN) {
			dr.Keys = append(dr.Keys, p.expect(token.IDENT).Text)
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
	}
	p.expect(token.LPAREN)
	for !p.at(token.RPAREN) {
		dr.Consts = append(dr.Consts, p.expect(token.IDENT).Text)
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	dr.Body = p.block()
	return dr
}

// ------------------------------------------------------------ expressions

func (p *Parser) expr() ast.Expr {
	x := p.assignExpr()
	for p.at(token.COMMA) {
		// Comma operator: evaluate left, result is right.
		pos := p.next().Pos
		y := p.assignExpr()
		x = &ast.Binary{P: pos, Op: token.COMMA, L: x, R: y}
	}
	return x
}

func (p *Parser) assignExpr() ast.Expr {
	x := p.condExpr()
	if p.cur().Kind.IsAssign() {
		op := p.next()
		y := p.assignExpr()
		return &ast.Assign{P: op.Pos, Op: op.Kind, L: x, R: y}
	}
	return x
}

func (p *Parser) condExpr() ast.Expr {
	c := p.binExpr(0)
	if p.accept(token.QUESTION) {
		t := p.assignExpr()
		p.expect(token.COLON)
		f := p.condExpr()
		return &ast.Cond{P: c.Pos(), C: c, T: t, F: f}
	}
	return c
}

// Binary operator precedence (C-like). Higher binds tighter.
func prec(k token.Kind) int {
	switch k {
	case token.OROR:
		return 1
	case token.ANDAND:
		return 2
	case token.PIPE:
		return 3
	case token.CARET:
		return 4
	case token.AMP:
		return 5
	case token.EQ, token.NE:
		return 6
	case token.LT, token.GT, token.LE, token.GE:
		return 7
	case token.SHL, token.SHR:
		return 8
	case token.PLUS, token.MINUS:
		return 9
	case token.STAR, token.SLASH, token.PERCENT:
		return 10
	}
	return 0
}

func (p *Parser) binExpr(minPrec int) ast.Expr {
	x := p.unaryExpr()
	for {
		pr := prec(p.cur().Kind)
		if pr == 0 || pr < minPrec {
			return x
		}
		op := p.next()
		y := p.binExpr(pr + 1)
		x = &ast.Binary{P: op.Pos, Op: op.Kind, L: x, R: y}
	}
}

func (p *Parser) unaryExpr() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.MINUS, token.TILDE, token.BANG, token.AMP:
		p.next()
		return &ast.Unary{P: t.Pos, Op: t.Kind, X: p.unaryExpr()}
	case token.PLUS:
		p.next()
		return p.unaryExpr()
	case token.STAR:
		p.next()
		return &ast.Unary{P: t.Pos, Op: token.STAR, X: p.unaryExpr()}
	case token.KwDynamic:
		// dynamic* p  (prefix form)
		p.next()
		if p.accept(token.STAR) {
			return &ast.Unary{P: t.Pos, Op: token.STAR, X: p.unaryExpr(), Dynamic: true}
		}
		p.errorf("expected '*' after prefix 'dynamic'")
		return &ast.IntLit{P: t.Pos}
	case token.INC, token.DEC:
		p.next()
		x := p.unaryExpr()
		// ++x lowered as x += 1 at parse level.
		op := token.ADDA
		if t.Kind == token.DEC {
			op = token.SUBA
		}
		return &ast.Assign{P: t.Pos, Op: op, L: x, R: &ast.IntLit{P: t.Pos, Val: 1}}
	case token.KwSizeof:
		p.next()
		p.expect(token.LPAREN)
		te := p.typeName()
		p.expect(token.RPAREN)
		return &ast.SizeofType{P: t.Pos, Type: te}
	case token.LPAREN:
		// Cast or parenthesized expression.
		if p.isCastStart() {
			p.next()
			te := p.typeName()
			p.expect(token.RPAREN)
			return &ast.Cast{P: t.Pos, Type: te, X: p.unaryExpr()}
		}
	}
	return p.postfixExpr()
}

// isCastStart reports whether the current '(' begins a cast.
func (p *Parser) isCastStart() bool {
	if !p.at(token.LPAREN) {
		return false
	}
	switch p.peek().Kind {
	case token.KwInt, token.KwUnsigned, token.KwFloat, token.KwDouble,
		token.KwChar, token.KwVoid, token.KwStruct:
		return true
	}
	return false
}

func (p *Parser) postfixExpr() ast.Expr {
	x := p.primaryExpr()
	for {
		t := p.cur()
		switch t.Kind {
		case token.LBRACK:
			p.next()
			i := p.expr()
			p.expect(token.RBRACK)
			x = &ast.Index{P: t.Pos, X: x, I: i}
		case token.DOT:
			p.next()
			name := p.expect(token.IDENT).Text
			x = &ast.Field{P: t.Pos, X: x, Name: name}
		case token.ARROW:
			p.next()
			name := p.expect(token.IDENT).Text
			x = &ast.Field{P: t.Pos, X: x, Name: name, Arrow: true}
		case token.KwDynamic:
			// p dynamic-> f   or   a dynamic[ i ]
			switch p.peek().Kind {
			case token.ARROW:
				p.next()
				p.next()
				name := p.expect(token.IDENT).Text
				x = &ast.Field{P: t.Pos, X: x, Name: name, Arrow: true, Dynamic: true}
			case token.LBRACK:
				p.next()
				p.next()
				i := p.expr()
				p.expect(token.RBRACK)
				x = &ast.Index{P: t.Pos, X: x, I: i, Dynamic: true}
			default:
				p.errorf("expected '->' or '[' after postfix 'dynamic'")
				return x
			}
		case token.INC, token.DEC:
			p.next()
			x = &ast.PostIncDec{P: t.Pos, Op: t.Kind, X: x}
		default:
			return x
		}
	}
}

func (p *Parser) primaryExpr() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.IDENT:
		p.next()
		if p.at(token.LPAREN) {
			p.next()
			c := &ast.Call{P: t.Pos, Fun: t.Text}
			for !p.at(token.RPAREN) && !p.at(token.EOF) {
				c.Args = append(c.Args, p.assignExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
			return c
		}
		return &ast.Ident{P: t.Pos, Name: t.Text}
	case token.INT, token.CHAR:
		p.next()
		return &ast.IntLit{P: t.Pos, Val: t.IntVal}
	case token.FLOAT:
		p.next()
		return &ast.FloatLit{P: t.Pos, Val: t.FloatVal}
	case token.STRING:
		p.next()
		return &ast.StringLit{P: t.Pos, Val: t.StrVal}
	case token.LPAREN:
		p.next()
		x := p.expr()
		p.expect(token.RPAREN)
		return x
	}
	p.errorf("expected expression, found %s", t)
	return &ast.IntLit{P: t.Pos}
}
