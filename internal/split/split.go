// Package split implements the paper's section 3.2: dividing each dynamic
// region into set-up code (which computes every needed derived run-time
// constant into the run-time constants table) and template code (the
// residual instructions, whose run-time-constant operands become holes).
//
// The set-up subgraph keeps the constant-controlled structure of the
// region: unrolled loops become real loops that allocate one linked table
// record per iteration, while non-constant control flow is flattened —
// sound, because run-time-constant computations are pure and non-trapping
// by construction, so executing both arms of a dynamic branch during set-up
// cannot change their values or fault. φs at constant merges are resolved
// with branch-free selects over their predecessors' reachability conditions.
package split

import (
	"fmt"

	"dyncc/internal/analysis"
	"dyncc/internal/ir"
)

// SlotRef names a run-time constants table slot: Loop == nil is the
// region-level table; otherwise the current iteration record of that loop.
type SlotRef struct {
	Loop *ir.Loop
	Slot int
}

// String renders the slot in the paper's "4:1"-like notation.
func (s SlotRef) String() string {
	if s.Loop == nil {
		return fmt.Sprintf("%d", s.Slot)
	}
	return fmt.Sprintf("L%d:%d", s.Loop.ID, s.Slot)
}

// Stats counts the optimizations planned for the stitcher (Table 3 input).
type Stats struct {
	ConstOpsFolded  int // arithmetic moved to set-up (dynamic constant folding)
	LoadsEliminated int // loads through constant pointers moved to set-up
	ConstBranches   int // branches the stitcher will resolve (static branch elim + DCE)
	LoopsUnrolled   int // loops the stitcher will completely unroll
	Holes           int // hole operands in templates
}

// Result is the outcome of splitting one dynamic region.
type Result struct {
	Region        *ir.Region
	Analysis      *analysis.Result
	SetupEntry    *ir.Block
	TemplateEntry *ir.Block
	TableValue    ir.Value // set-up value holding the region table base

	// Holes maps run-time-constant values referenced by template code to
	// their table slots.
	Holes map[ir.Value]SlotRef

	// BranchSlot maps retained constant branches (CONST_BRANCH directives)
	// to the slot holding their predicate.
	BranchSlot map[*ir.Instr]SlotRef

	// NextSlot is the index of the next-record link within each unrolled
	// loop's iteration record.
	NextSlot map[*ir.Loop]int

	Stats Stats
}

// Split analyzes and splits region r of f (SSA form required), mutating f:
// region blocks become template blocks stripped of constant computations,
// and new set-up blocks are linked in behind an OpDynEnter entry.
func Split(f *ir.Func, r *ir.Region) (*Result, error) {
	forced := map[ir.Value]bool{}
	for attempt := 0; ; attempt++ {
		res, err := analysis.Analyze(f, r, forced)
		if err != nil {
			return nil, err
		}
		if err := checkUnrollLegality(f, r, res); err != nil {
			return nil, err
		}
		demote := plan(f, r, res)
		if len(demote) == 0 {
			return build(f, r, res)
		}
		if attempt > 64 {
			return nil, fmt.Errorf("split: demotion did not converge in %s region %d", f.Name, r.ID)
		}
		for _, v := range demote {
			forced[v] = true
		}
	}
}

// checkUnrollLegality verifies each annotated loop can be unrolled: the
// head must be a two-predecessor merge (entry + latch) terminated by a
// branch on a run-time constant (paper section 2: "The loop termination
// condition must be governed by a run-time constant").
func checkUnrollLegality(f *ir.Func, r *ir.Region, res *analysis.Result) error {
	for _, l := range r.Loops {
		term := l.Head.Term()
		if term == nil || term.Op != ir.OpBr {
			return fmt.Errorf("%s: unrolled loop %d head does not end in a conditional branch", f.Name, l.ID)
		}
		if !res.ConstBranch[term] {
			return fmt.Errorf("%s: unrolled loop %d condition is not governed by a run-time constant", f.Name, l.ID)
		}
		if len(l.Head.Preds) != 2 {
			return fmt.Errorf("%s: unrolled loop %d head has %d predecessors (need entry + back edge)",
				f.Name, l.ID, len(l.Head.Preds))
		}
		if l.Head.Preds[0] != l.Latch && l.Head.Preds[1] != l.Latch {
			return fmt.Errorf("%s: unrolled loop %d head is not reached from its latch", f.Name, l.ID)
		}
	}
	return nil
}

// isLiteral reports whether v is a compile-time literal constant, chasing
// copy chains (the optimizer usually removes them, but splitting must not
// depend on that).
func isLiteral(f *ir.Func, v ir.Value) bool {
	for depth := 0; depth < 64; depth++ {
		def := f.DefOf(v)
		if def == nil {
			return false
		}
		switch def.Op {
		case ir.OpConst, ir.OpFConst:
			return true
		case ir.OpCopy:
			v = def.Args[0]
		default:
			return false
		}
	}
	return false
}

// loopOf returns the innermost unrolled loop containing the definition of
// v, or nil for region scope (including values defined outside the region).
func loopOf(f *ir.Func, r *ir.Region, v ir.Value) *ir.Loop {
	def := f.DefOf(v)
	if def == nil || def.Blk == nil || def.Blk.Region != r {
		return nil
	}
	if n := len(def.Blk.Loops); n > 0 {
		return def.Blk.Loops[n-1]
	}
	return nil
}

// plan dry-runs the set-up schedule and returns values that must be demoted
// to non-constant for the split to be expressible:
//
//  1. per-iteration constants used by template code outside their loop
//     (the record holding them is no longer current there), and
//  2. constant-merge φs whose reachability atoms reference branches that
//     appear later in reverse postorder (their predicates would not yet be
//     materialized when the select chain runs).
func plan(f *ir.Func, r *ir.Region, res *analysis.Result) []ir.Value {
	rpo := map[*ir.Block]int{}
	for i, b := range f.ReversePostorder() {
		rpo[b] = i
	}
	var demote []ir.Value
	seen := map[ir.Value]bool{}
	add := func(v ir.Value) {
		if !seen[v] {
			seen[v] = true
			demote = append(demote, v)
		}
	}

	// Rule 3: a region-defined constant used by code outside the region
	// would lose its definition when the splitter strips it from the
	// template (the set-up value lives only in the table). Demote such
	// values so they stay ordinary computations.
	definedIn := map[ir.Value]bool{}
	for _, b := range f.Blocks {
		if b.Region == r && !b.Setup {
			for _, in := range b.Instrs {
				if in.Dst != 0 {
					definedIn[in.Dst] = true
				}
			}
		}
	}
	for _, b := range f.Blocks {
		if b.Region == r {
			continue
		}
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				// Literals keep their (dominating) template definition, so
				// outside uses still see the value in its register.
				if definedIn[a] && res.Const[a] && !isLiteral(f, a) {
					add(a)
				}
			}
		}
	}

	for _, b := range f.Blocks {
		if b.Region != r {
			continue
		}
		for _, in := range b.Instrs {
			if in.Dst != 0 && res.Const[in.Dst] {
				// This instruction moves to set-up; check φ schedulability.
				if in.Op == ir.OpPhi && !isUnrolledHead(r, b) {
					for pi := range b.Preds {
						ec := res.EdgeReach[analysis.EdgeKey{To: b, PredIdx: pi}]
						for _, cj := range ec.Disj {
							for _, a := range cj {
								if rpo[a.Block] >= rpo[b] {
									add(in.Dst)
								}
							}
						}
					}
				}
				continue
			}
			// Remains in template: constant args become holes; a hole whose
			// record is out of scope here must be demoted. (Literals are
			// immediates, not holes.) For φs the use-site is the
			// predecessor block — out-of-SSA places the copy there — so a
			// per-iteration constant reaching an exit merge through an
			// in-loop predecessor is fine.
			for ai, a := range in.Args {
				if !res.Const[a] || isLiteral(f, a) {
					continue
				}
				useBlk := b
				if in.Op == ir.OpPhi && ai < len(b.Preds) {
					useBlk = b.Preds[ai]
				}
				if dl := loopOf(f, r, a); dl != nil && !useBlk.InLoop(dl) {
					add(a)
				}
			}
		}
	}
	return demote
}

func isUnrolledHead(r *ir.Region, b *ir.Block) bool {
	for _, l := range r.Loops {
		if l.Head == b {
			return true
		}
	}
	return false
}
