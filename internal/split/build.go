package split

import (
	"fmt"
	"sort"

	"dyncc/internal/analysis"
	"dyncc/internal/ir"
	"dyncc/internal/types"
)

// build performs the actual split once the analysis solution is final.
func build(f *ir.Func, r *ir.Region, res *analysis.Result) (*Result, error) {
	out := &Result{
		Region:     r,
		Analysis:   res,
		Holes:      map[ir.Value]SlotRef{},
		BranchSlot: map[*ir.Instr]SlotRef{},
		NextSlot:   map[*ir.Loop]int{},
	}

	// Region blocks in RPO, captured before we add set-up blocks.
	var regionRPO []*ir.Block
	for _, b := range f.ReversePostorder() {
		if b.Region == r && !b.Setup {
			regionRPO = append(regionRPO, b)
		}
	}

	// ---- 1. Assign table slots to hole values. Compile-time literal
	// constants are a special case of run-time constants (paper footnote in
	// section 3.1) but never need table slots: they stay in the templates
	// as ordinary immediates.
	counter := map[*ir.Loop]int{}
	assign := func(v ir.Value) {
		if _, ok := out.Holes[v]; ok {
			return
		}
		if isLiteral(f, v) {
			return
		}
		scope := loopOf(f, r, v)
		out.Holes[v] = SlotRef{Loop: scope, Slot: counter[scope]}
		counter[scope]++
	}
	for _, b := range regionRPO {
		for _, in := range b.Instrs {
			if in.Dst != 0 && res.Const[in.Dst] && !isLiteral(f, in.Dst) {
				continue // moves to set-up
			}
			for _, a := range in.Args {
				if res.Const[a] {
					assign(a)
				}
			}
			if res.ConstBranch[in] {
				if s, ok := out.Holes[in.Args[0]]; ok {
					out.BranchSlot[in] = s
				}
			}
		}
	}
	// Loop header slots live in the parent scope; the next-record link is
	// the last slot of each record.
	for _, l := range r.Loops {
		var parent *ir.Loop
		if l.Parent != nil {
			parent = l.Parent
		}
		l.HeaderSlot = counter[parent]
		counter[parent]++
	}
	for _, l := range r.Loops {
		out.NextSlot[l] = counter[l]
		l.RecordSize = counter[l] + 1
	}
	r.TableSize = counter[nil]

	// ---- 2. Compute the needed set (what set-up must materialize).
	needed := neededValues(f, r, res, out)

	// ---- 3. Emit set-up code.
	bd := &builder{
		f: f, r: r, res: res, out: out,
		vmap:   map[ir.Value]ir.Value{},
		rec:    map[*ir.Loop]ir.Value{},
		needed: needed,
		rpo:    regionRPO,
	}
	if err := bd.emitSetup(); err != nil {
		return nil, err
	}

	// ---- 4. Strip constant computations from template blocks; stats.
	// Pass A: find the values used by instructions that survive in the
	// templates, so literal constants they reference stay materialized.
	usedInTemplate := map[ir.Value]bool{}
	for _, b := range regionRPO {
		for _, in := range b.Instrs {
			if in.Dst != 0 && res.Const[in.Dst] && !isLiteral(f, in.Dst) {
				continue // will be stripped
			}
			for _, a := range in.Args {
				usedInTemplate[a] = true
			}
		}
	}
	for _, b := range regionRPO {
		if b == r.Entry {
			continue
		}
		b.Template = true
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Dst != 0 && res.Const[in.Dst] {
				if isLiteral(f, in.Dst) {
					if usedInTemplate[in.Dst] {
						kept = append(kept, in)
					}
					continue
				}
				switch in.Op {
				case ir.OpLoad:
					out.Stats.LoadsEliminated++
				case ir.OpPhi, ir.OpCopy, ir.OpGlobalAddr, ir.OpStackAddr:
					// bookkeeping, not a folded computation
				default:
					out.Stats.ConstOpsFolded++
				}
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
		if t := b.Term(); t != nil && res.ConstBranch[t] {
			out.Stats.ConstBranches++
		}
	}
	out.Stats.LoopsUnrolled = len(r.Loops)
	out.Stats.Holes = len(out.Holes)

	// ---- 5. Rewire the region entry: first-time check via OpDynEnter.
	entryTerm := r.Entry.Term()
	if entryTerm == nil || entryTerm.Op != ir.OpJump {
		return nil, fmt.Errorf("split: region %d entry has unexpected terminator", r.ID)
	}
	body := entryTerm.Targets[0]
	if len(body.Phis()) > 0 {
		return nil, fmt.Errorf("split: region %d body entry unexpectedly has φs", r.ID)
	}
	entryTerm.Op = ir.OpDynEnter
	entryTerm.Args = append([]ir.Value(nil), r.Keys...)
	entryTerm.Targets = []*ir.Block{bd.setupEntry, body}
	bd.setupEntry.Preds = []*ir.Block{r.Entry}
	// The set-up tail's DynStitch edge into the template entry.
	body.Preds = append(body.Preds, bd.stitchBlock)

	out.SetupEntry = bd.setupEntry
	out.TemplateEntry = body
	out.TableValue = bd.tbl
	return out, nil
}

// neededValues returns the transitive closure of run-time-constant values
// that set-up code must compute: hole values, constant-branch predicates,
// their constant arguments, and the predicates referenced by the
// reachability conditions of constant-merge φs.
func neededValues(f *ir.Func, r *ir.Region, res *analysis.Result, out *Result) map[ir.Value]bool {
	needed := map[ir.Value]bool{}
	var work []ir.Value
	add := func(v ir.Value) {
		if v != 0 && res.Const[v] && !needed[v] {
			needed[v] = true
			work = append(work, v)
		}
	}
	for _, v := range sortedHoleKeys(out.Holes) {
		add(v)
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		def := f.DefOf(v)
		if def == nil || def.Blk == nil || def.Blk.Region != r || def.Blk.Setup {
			continue // seed or pre-region value: available directly
		}
		for _, a := range def.Args {
			add(a)
		}
		if def.Op == ir.OpPhi && !isUnrolledHead(r, def.Blk) {
			for pi := range def.Blk.Preds {
				ec := res.EdgeReach[analysis.EdgeKey{To: def.Blk, PredIdx: pi}]
				for _, cj := range ec.Disj {
					for _, a := range cj {
						add(a.Block.Term().Args[0])
					}
				}
			}
		}
	}
	return needed
}

func sortedHoleKeys(m map[ir.Value]SlotRef) []ir.Value {
	ks := make([]ir.Value, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// ---------------------------------------------------------------- builder

type builder struct {
	f      *ir.Func
	r      *ir.Region
	res    *analysis.Result
	out    *Result
	vmap   map[ir.Value]ir.Value
	rec    map[*ir.Loop]ir.Value // current record base per active loop
	needed map[ir.Value]bool
	rpo    []*ir.Block

	cur         *ir.Block
	tbl         ir.Value
	setupEntry  *ir.Block
	stitchBlock *ir.Block
}

func (bd *builder) newBlock() *ir.Block {
	b := bd.f.NewBlock()
	b.Region = bd.r
	b.Setup = true
	return b
}

func (bd *builder) emit(in *ir.Instr) *ir.Instr {
	in.Blk = bd.cur
	bd.cur.Instrs = append(bd.cur.Instrs, in)
	return in
}

func (bd *builder) emitV(in *ir.Instr) ir.Value {
	in.Dst = bd.f.NewValue("", in.Typ)
	bd.emit(in)
	bd.f.ValueInfo(in.Dst).Def = in
	return in.Dst
}

func (bd *builder) constInt(v int64) ir.Value {
	return bd.emitV(&ir.Instr{Op: ir.OpConst, Const: v, Typ: types.IntType})
}

// resolve maps a region constant to its set-up incarnation; values defined
// before the region are used directly.
func (bd *builder) resolve(v ir.Value) (ir.Value, error) {
	if nv, ok := bd.vmap[v]; ok {
		return nv, nil
	}
	def := bd.f.DefOf(v)
	if def != nil && def.Blk != nil && def.Blk.Region == bd.r && !def.Blk.Setup {
		return 0, fmt.Errorf("split: internal: v%d needed before it is scheduled in set-up", v)
	}
	return v, nil
}

func (bd *builder) scopeBase(l *ir.Loop) ir.Value {
	if l == nil {
		return bd.tbl
	}
	return bd.rec[l]
}

func (bd *builder) emitSlotStore(slot SlotRef, val ir.Value) {
	bd.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{bd.scopeBase(slot.Loop), val},
		Const: int64(slot.Slot), Typ: types.IntType})
}

// emitSetup builds the whole set-up subgraph.
func (bd *builder) emitSetup() error {
	bd.setupEntry = bd.newBlock()
	bd.cur = bd.setupEntry
	size := bd.constInt(int64(bd.r.TableSize))
	bd.tbl = bd.emitV(&ir.Instr{Op: ir.OpCall, Sym: "alloc", Args: []ir.Value{size},
		Typ: types.PointerTo(types.IntType)})

	// Store holes whose values are defined before the region (the annotated
	// constants themselves and anything computed upstream).
	for _, v := range sortedHoleKeys(bd.out.Holes) {
		def := bd.f.DefOf(v)
		if def == nil || def.Blk == nil || def.Blk.Region != bd.r {
			bd.emitSlotStore(bd.out.Holes[v], v)
		}
	}

	if err := bd.emitUnit(nil); err != nil {
		return err
	}

	bd.stitchBlock = bd.cur
	bd.emit(&ir.Instr{Op: ir.OpDynStitch, Args: []ir.Value{bd.tbl},
		Targets: []*ir.Block{nil}}) // target patched by caller
	// Patch: the caller sets Targets[0] = template entry; do it here since
	// we know it from the region entry's terminator.
	bd.stitchBlock.Term().Targets[0] = bd.r.Entry.Term().Targets[0]
	return nil
}

// unitItems returns, in region RPO, the blocks whose innermost unrolled
// loop is parent, interleaved with directly nested loops at their head
// positions.
type unitItem struct {
	block *ir.Block
	loop  *ir.Loop
}

func (bd *builder) unitItems(parent *ir.Loop) []unitItem {
	var items []unitItem
	for _, b := range bd.rpo {
		var inner *ir.Loop
		if n := len(b.Loops); n > 0 {
			inner = b.Loops[n-1]
		}
		if inner == parent {
			items = append(items, unitItem{block: b})
			continue
		}
		for _, l := range bd.r.Loops {
			if l.Head == b && l.Parent == parent {
				items = append(items, unitItem{loop: l})
			}
		}
	}
	return items
}

func (bd *builder) emitUnit(parent *ir.Loop) error {
	for _, it := range bd.unitItems(parent) {
		if it.loop != nil {
			if err := bd.emitLoop(it.loop); err != nil {
				return err
			}
			continue
		}
		if parent != nil && it.block == parent.Head {
			continue // the head is emitted by emitLoop itself
		}
		if err := bd.emitBlockConsts(it.block, false); err != nil {
			return err
		}
	}
	return nil
}

// emitBlockConsts re-emits the needed constant computations of template
// block b into the current set-up block. skipPhis is set for unrolled loop
// heads, whose φs are materialized as real loop φs by emitLoop.
func (bd *builder) emitBlockConsts(b *ir.Block, skipPhis bool) error {
	for _, in := range b.Instrs {
		if in.Dst == 0 || !bd.res.Const[in.Dst] || !bd.needed[in.Dst] {
			continue
		}
		if in.Op == ir.OpPhi {
			if skipPhis {
				continue
			}
			if err := bd.emitSelect(in, b); err != nil {
				return err
			}
		} else {
			clone := &ir.Instr{Op: in.Op, Const: in.Const, F: in.F, Sym: in.Sym,
				Slot: in.Slot, Typ: in.Typ, Dynamic: in.Dynamic, Pos: in.Pos}
			for _, a := range in.Args {
				na, err := bd.resolve(a)
				if err != nil {
					return err
				}
				clone.Args = append(clone.Args, na)
			}
			dst := bd.f.NewValue(bd.f.ValueInfo(in.Dst).Name, in.Typ)
			clone.Dst = dst
			bd.emit(clone)
			bd.f.ValueInfo(dst).Def = clone
			bd.vmap[in.Dst] = dst
		}
		if slot, ok := bd.out.Holes[in.Dst]; ok {
			bd.emitSlotStore(slot, bd.vmap[in.Dst])
		}
	}
	return nil
}

// emitSelect resolves a constant-merge φ with branch-free selects over the
// predecessors' reachability conditions.
func (bd *builder) emitSelect(phi *ir.Instr, b *ir.Block) error {
	u := types.UnsignedType
	cur, err := bd.resolve(phi.Args[0])
	if err != nil {
		return err
	}
	for pi := 1; pi < len(phi.Args); pi++ {
		condV, err := bd.emitCond(bd.res.EdgeReach[analysis.EdgeKey{To: b, PredIdx: pi}])
		if err != nil {
			return err
		}
		argV, err := bd.resolve(phi.Args[pi])
		if err != nil {
			return err
		}
		// cur = cond ? arg : cur, as bit arithmetic: mask = -cond.
		mask := bd.emitV(&ir.Instr{Op: ir.OpNeg, Args: []ir.Value{condV}, Typ: u})
		t1 := bd.emitV(&ir.Instr{Op: ir.OpAnd, Args: []ir.Value{argV, mask}, Typ: u})
		nm := bd.emitV(&ir.Instr{Op: ir.OpNot, Args: []ir.Value{mask}, Typ: u})
		t2 := bd.emitV(&ir.Instr{Op: ir.OpAnd, Args: []ir.Value{cur, nm}, Typ: u})
		cur = bd.emitV(&ir.Instr{Op: ir.OpOr, Args: []ir.Value{t1, t2}, Typ: phi.Typ})
	}
	bd.vmap[phi.Dst] = cur
	return nil
}

// emitCond materializes a reachability condition as a 0/1 value.
func (bd *builder) emitCond(c analysis.Cond) (ir.Value, error) {
	if c.IsTrue() {
		return bd.constInt(1), nil
	}
	if c.IsFalse() {
		return bd.constInt(0), nil
	}
	var disj ir.Value
	for _, cj := range c.Disj {
		var conj ir.Value
		for _, a := range cj {
			av, err := bd.emitAtom(a)
			if err != nil {
				return 0, err
			}
			if conj == 0 {
				conj = av
			} else {
				conj = bd.emitV(&ir.Instr{Op: ir.OpAnd, Args: []ir.Value{conj, av}, Typ: types.IntType})
			}
		}
		if conj == 0 {
			conj = bd.constInt(1)
		}
		if disj == 0 {
			disj = conj
		} else {
			disj = bd.emitV(&ir.Instr{Op: ir.OpOr, Args: []ir.Value{disj, conj}, Typ: types.IntType})
		}
	}
	return disj, nil
}

// emitAtom materializes branch-outcome atom B→S as a 0/1 value.
func (bd *builder) emitAtom(a analysis.Atom) (ir.Value, error) {
	term := a.Block.Term()
	p, err := bd.resolve(term.Args[0])
	if err != nil {
		return 0, err
	}
	switch term.Op {
	case ir.OpBr:
		z := bd.constInt(0)
		op := ir.OpNe // successor 0: predicate != 0
		if a.Succ == 1 {
			op = ir.OpEq
		}
		return bd.emitV(&ir.Instr{Op: op, Args: []ir.Value{p, z}, Typ: types.IntType}), nil
	case ir.OpSwitch:
		if a.Succ < len(term.Cases) {
			cv := bd.constInt(term.Cases[a.Succ])
			return bd.emitV(&ir.Instr{Op: ir.OpEq, Args: []ir.Value{p, cv}, Typ: types.IntType}), nil
		}
		// Default: none of the cases matched.
		var acc ir.Value
		for _, cval := range term.Cases {
			cv := bd.constInt(cval)
			ne := bd.emitV(&ir.Instr{Op: ir.OpNe, Args: []ir.Value{p, cv}, Typ: types.IntType})
			if acc == 0 {
				acc = ne
			} else {
				acc = bd.emitV(&ir.Instr{Op: ir.OpAnd, Args: []ir.Value{acc, ne}, Typ: types.IntType})
			}
		}
		if acc == 0 {
			acc = bd.constInt(1)
		}
		return acc, nil
	}
	return 0, fmt.Errorf("split: atom on non-branch terminator %s", term.Op)
}

// emitLoop builds the set-up loop for unrolled loop l: one table record is
// allocated and linked per iteration (including the final one, whose
// continue-condition is false), exactly as in the paper's Figure 1.
func (bd *builder) emitLoop(l *ir.Loop) error {
	recSize := bd.constInt(int64(l.RecordSize))
	rec0 := bd.emitV(&ir.Instr{Op: ir.OpCall, Sym: "alloc", Args: []ir.Value{recSize},
		Typ: types.PointerTo(types.IntType)})
	bd.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{bd.scopeBase(l.Parent), rec0},
		Const: int64(l.HeaderSlot), Typ: types.IntType})

	head := bd.newBlock()
	prev := bd.cur
	bd.emit(&ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{head}})
	head.Preds = []*ir.Block{prev} // back edge appended below
	bd.cur = head

	// Record pointer φ; the back-edge argument is patched after the body.
	recPhi := &ir.Instr{Op: ir.OpPhi, Args: []ir.Value{rec0, rec0},
		Typ: types.PointerTo(types.IntType)}
	recV := bd.emitV(recPhi)
	bd.rec[l] = recV

	// Head value φs (induction variables).
	latchIdx := 0
	if l.Head.Preds[0] != l.Latch {
		latchIdx = 1
	}
	entryIdx := 1 - latchIdx
	type fixup struct {
		phi     *ir.Instr
		origArg ir.Value
	}
	var fixups []fixup
	var phiStores []struct {
		slot SlotRef
		val  ir.Value
	}
	// All φs are emitted before any straight-line code (block-head invariant).
	for _, op := range l.Head.Phis() {
		if !bd.res.Const[op.Dst] || !bd.needed[op.Dst] {
			continue
		}
		ea, err := bd.resolve(op.Args[entryIdx])
		if err != nil {
			return err
		}
		np := &ir.Instr{Op: ir.OpPhi, Args: []ir.Value{ea, ea}, Typ: op.Typ}
		nv := bd.emitV(np)
		bd.vmap[op.Dst] = nv
		fixups = append(fixups, fixup{phi: np, origArg: op.Args[latchIdx]})
		if slot, ok := bd.out.Holes[op.Dst]; ok {
			phiStores = append(phiStores, struct {
				slot SlotRef
				val  ir.Value
			}{slot, nv})
		}
	}
	for _, ps := range phiStores {
		bd.emitSlotStore(ps.slot, ps.val)
	}

	// Remaining head-block constants (the loop condition among them) are
	// computed and stored before the continue test, so the final record
	// carries everything the stitcher reads before exiting the loop.
	if err := bd.emitBlockConsts(l.Head, true); err != nil {
		return err
	}
	condV, err := bd.resolve(l.Head.Term().Args[0])
	if err != nil {
		return err
	}

	body := bd.newBlock()
	exit := bd.newBlock()
	bd.emit(&ir.Instr{Op: ir.OpBr, Args: []ir.Value{condV}, Targets: []*ir.Block{body, exit}})
	body.Preds = []*ir.Block{bd.cur}
	exit.Preds = []*ir.Block{bd.cur}
	bd.cur = body

	if err := bd.emitUnit(l); err != nil {
		return err
	}

	// Allocate and link the next iteration's record.
	recNext := bd.emitV(&ir.Instr{Op: ir.OpCall, Sym: "alloc", Args: []ir.Value{recSize},
		Typ: types.PointerTo(types.IntType)})
	bd.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{recV, recNext},
		Const: int64(bd.out.NextSlot[l]), Typ: types.IntType})

	// Patch φ back-edge arguments.
	recPhi.Args[1] = recNext
	for _, fx := range fixups {
		na, err := bd.resolve(fx.origArg)
		if err != nil {
			return err
		}
		fx.phi.Args[1] = na
	}
	back := bd.cur
	bd.emit(&ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{head}})
	head.Preds = append(head.Preds, back)

	bd.cur = exit
	delete(bd.rec, l)
	return nil
}
