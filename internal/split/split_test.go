package split

import (
	"testing"

	"dyncc/internal/ir"
	"dyncc/internal/lower"
	"dyncc/internal/parser"
)

func splitFirst(t *testing.T, src, fn string) (*ir.Func, *Result) {
	t.Helper()
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := lower.Lower(file)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	f := mod.FuncIndex[fn]
	ir.BuildSSA(f)
	res, err := Split(f, f.Regions[0])
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	return f, res
}

func TestSplitBasicStructure(t *testing.T) {
	f, res := splitFirst(t, `
int use(int v) { return v; }
int f(int c, int x) {
    int r;
    dynamicRegion (c) {
        int a = c * 3;
        r = use(a + x);
    }
    return r;
}`, "f")

	if res.SetupEntry == nil || !res.SetupEntry.Setup {
		t.Fatal("no set-up entry")
	}
	if res.TemplateEntry == nil || !res.TemplateEntry.Template {
		t.Fatal("no template entry")
	}
	// Region entry now ends in DynEnter pointing at both subgraphs.
	term := res.Region.Entry.Term()
	if term.Op != ir.OpDynEnter {
		t.Fatalf("region entry terminator: %s", term.Op)
	}
	if term.Targets[0] != res.SetupEntry || term.Targets[1] != res.TemplateEntry {
		t.Error("DynEnter targets wrong")
	}
	// The derived constant a = c*3 must have a table slot, and the multiply
	// must be gone from the templates.
	if len(res.Holes) == 0 {
		t.Fatal("no holes assigned")
	}
	for _, b := range f.Blocks {
		if !b.Template {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op == ir.OpMul {
				t.Error("constant multiply left in template")
			}
		}
	}
	if res.Stats.ConstOpsFolded == 0 {
		t.Error("no constant folding recorded")
	}
	// Set-up ends with DynStitch into the template entry.
	foundStitch := false
	for _, b := range f.Blocks {
		if !b.Setup {
			continue
		}
		if tm := b.Term(); tm != nil && tm.Op == ir.OpDynStitch {
			foundStitch = true
			if tm.Targets[0] != res.TemplateEntry {
				t.Error("DynStitch target wrong")
			}
		}
	}
	if !foundStitch {
		t.Error("no DynStitch emitted")
	}
}

func TestSlotScopes(t *testing.T) {
	_, res := splitFirst(t, `
int use(int v) { return v; }
int f(int *a, int n, int x) {
    int r = 0;
    dynamicRegion (a, n) {
        int i;
        unrolled for (i = 0; i < n; i++) {
            r = r + a[i] * x;
        }
    }
    return r;
}`, "f")
	if res.Stats.LoopsUnrolled != 1 {
		t.Fatalf("loops unrolled: %d", res.Stats.LoopsUnrolled)
	}
	region, loop := 0, 0
	for _, s := range res.Holes {
		if s.Loop == nil {
			region++
		} else {
			loop++
		}
	}
	if loop == 0 {
		t.Error("expected per-iteration slots (a[i] value, loop condition)")
	}
	l := res.Region.Loops[0]
	if l.RecordSize < 2 {
		t.Errorf("record size: %d", l.RecordSize)
	}
	if res.NextSlot[l] != l.RecordSize-1 {
		t.Errorf("next slot %d, record size %d", res.NextSlot[l], l.RecordSize)
	}
	_ = region
}

func TestLoadEliminationCounted(t *testing.T) {
	_, res := splitFirst(t, `
int use(int v) { return v; }
int f(int *p, int x) {
    int r;
    dynamicRegion (p) {
        r = use(p[0] + p[1] + x);
    }
    return r;
}`, "f")
	if res.Stats.LoadsEliminated < 2 {
		t.Errorf("loads eliminated: %d", res.Stats.LoadsEliminated)
	}
}

func TestConstBranchPlanned(t *testing.T) {
	f, res := splitFirst(t, `
int use(int v) { return v; }
int f(int c, int x) {
    int r = 0;
    dynamicRegion (c) {
        if (c > 10) { r = use(x); } else { r = use(x + 1); }
    }
    return r;
}`, "f")
	if res.Stats.ConstBranches != 1 {
		t.Fatalf("const branches: %d", res.Stats.ConstBranches)
	}
	if len(res.BranchSlot) != 1 {
		t.Fatalf("branch slots: %d", len(res.BranchSlot))
	}
	for br := range res.BranchSlot {
		if br.Op != ir.OpBr {
			t.Errorf("branch op: %s", br.Op)
		}
	}
	_ = f
}

// A constant used outside the region must be demoted (its template
// definition would be stripped otherwise).
func TestDemoteConstUsedOutsideRegion(t *testing.T) {
	f, res := splitFirst(t, `
int use(int v) { return v; }
int f(int c, int x) {
    int a;
    dynamicRegion (c) {
        a = c * 3;
        x = use(a + x);
    }
    return a + x;
}`, "f")
	// a is used by `return a + x` outside the region: the value reaching
	// that use must still be *defined* by an instruction that survives in
	// the template (so the stitched code leaves it in a register), rather
	// than stripped wholesale into set-up.
	usedOutside := map[ir.Value]bool{}
	for _, b := range f.Blocks {
		if b.Region != nil {
			continue
		}
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				usedOutside[a] = true
			}
		}
	}
	ok := false
	for _, b := range f.Blocks {
		if !b.Template {
			continue
		}
		for _, in := range b.Instrs {
			if in.Dst != 0 && usedOutside[in.Dst] {
				ok = true
			}
		}
	}
	if !ok {
		t.Error("outside-used value has no surviving template definition")
	}
	_ = res
}

func TestUnrollRequiresConstantBound(t *testing.T) {
	file, err := parser.Parse(`
int f(int *a, int n, int m) {
    int r = 0;
    dynamicRegion (a) {
        int i;
        unrolled for (i = 0; i < m; i++) { /* m is NOT constant */
            r = r + a[i];
        }
    }
    return r;
}`)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := lower.Lower(file)
	if err != nil {
		t.Fatal(err)
	}
	f := mod.FuncIndex["f"]
	ir.BuildSSA(f)
	if _, err := Split(f, f.Regions[0]); err == nil {
		t.Error("expected illegal-unroll error for non-constant bound")
	}
}

func TestLiteralsStayImmediates(t *testing.T) {
	_, res := splitFirst(t, `
int use(int v) { return v; }
int f(int c, int x) {
    int r;
    dynamicRegion (c) {
        r = use(x + 1000);
    }
    return r;
}`, "f")
	for v, s := range res.Holes {
		def := res.Region.Fn.DefOf(v)
		if def != nil && def.Op == ir.OpConst {
			t.Errorf("literal v%d got table slot %v", v, s)
		}
	}
}
