// Package analysis implements the paper's pair of interconnected dataflow
// analyses (section 3.1, Appendix A): run-time constants identification and
// reachability conditions. Reachability conditions are disjunctions of
// conjunctions of constant-branch outcomes, represented as sets of sets,
// and are what lets the run-time constants analysis identify constant
// merges even in unstructured control flow.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"dyncc/internal/ir"
)

// Atom is a single branch-outcome condition B→S: constant branch B (a Br or
// Switch terminator, identified by its block) takes successor index S.
type Atom struct {
	Block *ir.Block // block whose terminator is the constant branch
	Succ  int       // index into the terminator's Targets
}

func (a Atom) String() string { return fmt.Sprintf("b%d→%d", a.Block.ID, a.Succ) }

// Conj is a conjunction of atoms, kept sorted and duplicate-free.
type Conj []Atom

// Cond is a reachability condition: a disjunction of conjunctions.
//
//	False (unreachable):  empty disjunction
//	True  (always):       the disjunction containing the empty conjunction
type Cond struct {
	Disj []Conj
}

// False is the unreachable condition.
func False() Cond { return Cond{} }

// True is the always-reachable condition.
func True() Cond { return Cond{Disj: []Conj{{}}} }

// IsFalse reports whether c is unreachable.
func (c Cond) IsFalse() bool { return len(c.Disj) == 0 }

// IsTrue reports whether c is the unconstrained condition.
func (c Cond) IsTrue() bool {
	for _, cj := range c.Disj {
		if len(cj) == 0 {
			return true
		}
	}
	return false
}

func atomLess(a, b Atom) bool {
	if a.Block.ID != b.Block.ID {
		return a.Block.ID < b.Block.ID
	}
	return a.Succ < b.Succ
}

func (cj Conj) clone() Conj { return append(Conj(nil), cj...) }

func (cj Conj) sortDedup() Conj {
	sort.Slice(cj, func(i, j int) bool { return atomLess(cj[i], cj[j]) })
	out := cj[:0]
	for i, a := range cj {
		if i > 0 && a == cj[i-1] {
			continue
		}
		out = append(out, a)
	}
	return out
}

// contradicts reports whether the conjunction contains two atoms for the
// same branch with different successors (and is therefore false).
func (cj Conj) contradicts() bool {
	for i := 1; i < len(cj); i++ {
		if cj[i].Block == cj[i-1].Block && cj[i].Succ != cj[i-1].Succ {
			return true
		}
	}
	return false
}

// subsumes reports whether cj1 ⊆ cj2 (cj1 is weaker, so cj2 is redundant in
// a disjunction containing cj1).
func (cj1 Conj) subsumes(cj2 Conj) bool {
	i := 0
	for _, a := range cj1 {
		for i < len(cj2) && atomLess(cj2[i], a) {
			i++
		}
		if i >= len(cj2) || cj2[i] != a {
			return false
		}
	}
	return true
}

func (cj Conj) key() string {
	var sb strings.Builder
	for _, a := range cj {
		fmt.Fprintf(&sb, "%d:%d;", a.Block.ID, a.Succ)
	}
	return sb.String()
}

// MaxConjs bounds the size of a condition: the paper notes worst-case
// exponential growth; in practice conditions stay small. On overflow the
// condition degrades to True (no information, merges treated
// conservatively).
const MaxConjs = 64

// And conjoins atom a onto every conjunction of c (the transfer function
// across a constant branch edge).
func (c Cond) And(a Atom) Cond {
	var out []Conj
	for _, cj := range c.Disj {
		n := append(cj.clone(), a).sortDedup()
		if n.contradicts() {
			continue
		}
		out = append(out, n)
	}
	return Cond{Disj: out}.normalize()
}

// Or disjoins two conditions (the meet at merges), applying the paper's
// simplification {{A→T,cs},{A→F,cs},ds} → {{cs},ds}.
func (c Cond) Or(d Cond) Cond {
	out := append(append([]Conj(nil), c.Disj...), d.Disj...)
	return Cond{Disj: out}.normalize()
}

// normalize dedups, absorbs subsumed conjunctions, merges complementary
// pairs, and applies the size cap.
func (c Cond) normalize() Cond {
	// Dedup.
	seen := map[string]bool{}
	var conjs []Conj
	for _, cj := range c.Disj {
		cj = cj.clone().sortDedup()
		if cj.contradicts() {
			continue
		}
		k := cj.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		conjs = append(conjs, cj)
	}

	// Iterate complementary-merge + absorption to a fixpoint.
	for {
		changed := false
		// Complementary merge: two conjunctions identical except for one
		// atom on the same two-way branch with different successors reduce
		// to the common part. (For n-way switches, all n outcomes must be
		// present; handled by grouping.)
	merge:
		for i := 0; i < len(conjs); i++ {
			for j := i + 1; j < len(conjs); j++ {
				if m, ok := complementMerge(conjs[i], conjs[j]); ok {
					conjs[i] = m
					conjs = append(conjs[:j], conjs[j+1:]...)
					changed = true
					break merge
				}
			}
		}
		// Absorption: drop conjunctions subsumed by weaker ones.
		var kept []Conj
		for i, cj := range conjs {
			sub := false
			for k, other := range conjs {
				if k == i {
					continue
				}
				if len(other) < len(cj) || (len(other) == len(cj) && k < i) {
					if other.subsumes(cj) {
						sub = true
						break
					}
				}
			}
			if !sub {
				kept = append(kept, cj)
			}
		}
		if len(kept) != len(conjs) {
			changed = true
		}
		conjs = kept
		if !changed {
			break
		}
	}
	if len(conjs) > MaxConjs {
		return True()
	}
	sort.Slice(conjs, func(i, j int) bool { return conjs[i].key() < conjs[j].key() })
	return Cond{Disj: conjs}
}

// complementMerge merges c1 and c2 when they differ in exactly one atom on
// the same *two-way* branch with complementary successors.
func complementMerge(c1, c2 Conj) (Conj, bool) {
	if len(c1) != len(c2) {
		return nil, false
	}
	diff := -1
	for i := range c1 {
		if c1[i] != c2[i] {
			if diff >= 0 {
				return nil, false
			}
			diff = i
		}
	}
	if diff < 0 {
		return c1, true // identical
	}
	a, b := c1[diff], c2[diff]
	if a.Block != b.Block || a.Succ == b.Succ {
		return nil, false
	}
	term := a.Block.Term()
	if term == nil || len(term.Targets) != 2 {
		return nil, false // n-way: would need all n outcomes
	}
	out := append(append(Conj(nil), c1[:diff]...), c1[diff+1:]...)
	return out, true
}

// Exclusive reports whether c and d cannot both hold: every pair of
// conjunctions contains contradictory atoms (paper Appendix A.2:
// exclusive(cn1, cn2) iff cn1 implies ¬cn2).
func Exclusive(c, d Cond) bool {
	if c.IsFalse() || d.IsFalse() {
		return true
	}
	for _, cj1 := range c.Disj {
		for _, cj2 := range d.Disj {
			if !conjExclusive(cj1, cj2) {
				return false
			}
		}
	}
	return true
}

func conjExclusive(c1, c2 Conj) bool {
	for _, a := range c1 {
		for _, b := range c2 {
			if a.Block == b.Block && a.Succ != b.Succ {
				return true
			}
		}
	}
	return false
}

// Equal reports condition equality (canonical forms compared).
func Equal(c, d Cond) bool {
	if len(c.Disj) != len(d.Disj) {
		return false
	}
	for i := range c.Disj {
		if c.Disj[i].key() != d.Disj[i].key() {
			return false
		}
	}
	return true
}

// String renders the condition as the paper's set-of-sets notation.
func (c Cond) String() string {
	if c.IsFalse() {
		return "{}"
	}
	var parts []string
	for _, cj := range c.Disj {
		var as []string
		for _, a := range cj {
			as = append(as, a.String())
		}
		parts = append(parts, "{"+strings.Join(as, ",")+"}")
	}
	return "{" + strings.Join(parts, ",") + "}"
}
