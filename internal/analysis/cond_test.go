package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dyncc/internal/ir"
	"dyncc/internal/types"
)

// testBranches builds n two-way branch blocks usable as condition atoms.
func testBranches(n int) []*ir.Block {
	f := ir.NewFunc("conds", types.FuncType(types.VoidType, nil))
	var bs []*ir.Block
	end := f.NewBlock()
	end.Append(&ir.Instr{Op: ir.OpRet})
	for i := 0; i < n; i++ {
		b := f.NewBlock()
		v := f.NewValue("", types.IntType)
		b.Append(&ir.Instr{Op: ir.OpConst, Dst: v, Typ: types.IntType})
		b.Append(&ir.Instr{Op: ir.OpBr, Args: []ir.Value{v}, Targets: []*ir.Block{end, end}})
		bs = append(bs, b)
	}
	return bs
}

func TestTrueFalse(t *testing.T) {
	if !True().IsTrue() || True().IsFalse() {
		t.Error("True misbehaves")
	}
	if !False().IsFalse() || False().IsTrue() {
		t.Error("False misbehaves")
	}
}

func TestAndContradiction(t *testing.T) {
	bs := testBranches(1)
	c := True().And(Atom{Block: bs[0], Succ: 0})
	if c.IsFalse() || c.IsTrue() {
		t.Fatalf("single atom: %s", c)
	}
	// B→0 ∧ B→1 is unsatisfiable.
	c2 := c.And(Atom{Block: bs[0], Succ: 1})
	if !c2.IsFalse() {
		t.Errorf("contradictory conjunction should be false, got %s", c2)
	}
	// Re-adding the same atom is idempotent.
	c3 := c.And(Atom{Block: bs[0], Succ: 0})
	if !Equal(c, c3) {
		t.Errorf("idempotent and: %s vs %s", c, c3)
	}
}

// The paper's simplification: {{A→T,cs},{A→F,cs},ds} reduces to {{cs},ds}.
func TestComplementaryMerge(t *testing.T) {
	bs := testBranches(2)
	a0 := Atom{Block: bs[0], Succ: 0}
	a1 := Atom{Block: bs[0], Succ: 1}
	b0 := Atom{Block: bs[1], Succ: 0}

	left := True().And(a0).And(b0)  // {A→T, B→T}
	right := True().And(a1).And(b0) // {A→F, B→T}
	merged := left.Or(right)
	want := True().And(b0)
	if !Equal(merged, want) {
		t.Errorf("complementary merge: got %s, want %s", merged, want)
	}
}

func TestAbsorption(t *testing.T) {
	bs := testBranches(2)
	a0 := Atom{Block: bs[0], Succ: 0}
	b0 := Atom{Block: bs[1], Succ: 0}
	weak := True().And(a0)
	strong := True().And(a0).And(b0)
	// weak ∨ strong = weak (the stronger conjunction is absorbed).
	if got := weak.Or(strong); !Equal(got, weak) {
		t.Errorf("absorption: got %s, want %s", got, weak)
	}
}

func TestExclusive(t *testing.T) {
	bs := testBranches(2)
	a0 := Atom{Block: bs[0], Succ: 0}
	a1 := Atom{Block: bs[0], Succ: 1}
	b0 := Atom{Block: bs[1], Succ: 0}
	b1 := Atom{Block: bs[1], Succ: 1}

	if !Exclusive(True().And(a0), True().And(a1)) {
		t.Error("A→T and A→F must be exclusive")
	}
	if Exclusive(True().And(a0), True().And(b0)) {
		t.Error("independent branches are not exclusive")
	}
	// (A→T∧B→T) vs (A→F ∨ B→F): pairwise contradictions on both sides.
	c1 := True().And(a0).And(b0)
	c2 := True().And(a1).Or(True().And(b1))
	if !Exclusive(c1, c2) {
		t.Errorf("%s and %s should be exclusive", c1, c2)
	}
	// Anything is exclusive with False, nothing with True.
	if !Exclusive(True(), False()) {
		t.Error("False is exclusive with everything")
	}
	if Exclusive(True(), True()) {
		t.Error("True is not exclusive with itself")
	}
}

func TestCapDegradesToTrue(t *testing.T) {
	bs := testBranches(MaxConjs + 4)
	c := False()
	// Build a disjunction of many distinct conjunctions.
	for i := 0; i < MaxConjs+2; i++ {
		cj := True().And(Atom{Block: bs[i], Succ: 0})
		if i+1 < len(bs) {
			cj = cj.And(Atom{Block: bs[i+1], Succ: 1})
		}
		c = c.Or(cj)
	}
	if !c.IsTrue() {
		t.Errorf("oversized condition should degrade to True, has %d conjs", len(c.Disj))
	}
}

// randCond builds a random condition over the given branch blocks.
func randCond(r *rand.Rand, bs []*ir.Block) Cond {
	c := False()
	nconj := 1 + r.Intn(3)
	for i := 0; i < nconj; i++ {
		cj := True()
		for k := 0; k < 1+r.Intn(3); k++ {
			cj = cj.And(Atom{Block: bs[r.Intn(len(bs))], Succ: r.Intn(2)})
		}
		c = c.Or(cj)
	}
	return c
}

// eval evaluates a condition under a truth assignment of branch outcomes.
func evalCond(c Cond, outcome map[*ir.Block]int) bool {
	for _, cj := range c.Disj {
		all := true
		for _, a := range cj {
			if outcome[a.Block] != a.Succ {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// Property: Exclusive(c1, c2) implies no outcome satisfies both; and the
// Or/And operators agree with boolean evaluation.
func TestCondProperties(t *testing.T) {
	bs := testBranches(4)
	r := rand.New(rand.NewSource(12345))
	check := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		c1 := randCond(rr, bs)
		c2 := randCond(rr, bs)
		or := c1.Or(c2)
		excl := Exclusive(c1, c2)
		// Enumerate all 2^4 outcomes.
		for m := 0; m < 16; m++ {
			outcome := map[*ir.Block]int{}
			for i, b := range bs {
				outcome[b] = (m >> i) & 1
			}
			e1, e2 := evalCond(c1, outcome), evalCond(c2, outcome)
			if evalCond(or, outcome) != (e1 || e2) {
				return false
			}
			if excl && e1 && e2 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: r}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// Property: And distributes over the disjunction.
func TestAndProperty(t *testing.T) {
	bs := testBranches(4)
	check := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		c := randCond(rr, bs)
		a := Atom{Block: bs[rr.Intn(len(bs))], Succ: rr.Intn(2)}
		anded := c.And(a)
		for m := 0; m < 16; m++ {
			outcome := map[*ir.Block]int{}
			for i, b := range bs {
				outcome[b] = (m >> i) & 1
			}
			want := evalCond(c, outcome) && outcome[a.Block] == a.Succ
			if evalCond(anded, outcome) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
