package analysis

import "dyncc/internal/ir"

// FuncSummary is the per-function summary the demand-driven inlining pass
// consumes (and any other interprocedural consumer may reuse): enough to
// decide, without re-walking the callee at every call site, whether a
// body can be grafted into a caller and what that would cost.
type FuncSummary struct {
	// Size is the instruction count over all blocks (terminators and φs
	// included) — the quantity Config.InlineBudget caps.
	Size int
	// Pure reports the body is side-effect-free: no stores and no calls
	// other than pure builtins. (Loads are allowed; purity here means
	// "cannot change observable state", not "value is stable".)
	Pure bool
	// Recursive reports the function can reach itself through the static
	// call graph (including directly). Filled by Summaries; Summarize
	// alone only detects direct self-calls.
	Recursive bool
	// HasAddressOfLocal reports the function materializes a stack address
	// (address-taken local or aggregate): its frame cannot be dissolved
	// into a caller.
	HasAddressOfLocal bool
	// HasRegion reports the body contains a dynamic region; regions are
	// never grafted (no nesting).
	HasRegion bool
	// Returns reports at least one reachable `ret`; a function that can
	// only diverge has no continuation to graft a return φ into.
	Returns bool
	// ReturnsValue reports every reachable `ret` carries a value (lower
	// guarantees this for non-void functions via implicit returns).
	ReturnsValue bool
	// Calls lists callee names (user functions only, builtins excluded),
	// in first-occurrence order — the call-graph edges Summaries walks.
	Calls []string
}

// Summarize computes the summary of one function. f may be in either SSA
// or pre-SSA form; reachability is taken from the entry block.
func Summarize(f *ir.Func) *FuncSummary {
	s := &FuncSummary{Pure: true, ReturnsValue: true}
	if f.StackSize > 0 {
		s.HasAddressOfLocal = true
	}
	if len(f.Regions) > 0 {
		s.HasRegion = true
	}
	seenCallee := map[string]bool{}
	for _, b := range f.ReversePostorder() {
		for _, in := range b.Instrs {
			s.Size++
			switch in.Op {
			case ir.OpStackAddr:
				s.HasAddressOfLocal = true
			case ir.OpStore:
				s.Pure = false
			case ir.OpDynEnter, ir.OpDynStitch, ir.OpTblStore:
				s.HasRegion = true
			case ir.OpRet:
				s.Returns = true
				if len(in.Args) == 0 {
					s.ReturnsValue = false
				}
			case ir.OpCall:
				if bi := ir.Builtins[in.Sym]; bi != nil {
					if !bi.Pure {
						s.Pure = false
					}
					continue
				}
				s.Pure = false
				if in.Sym == f.Name {
					s.Recursive = true
				}
				if !seenCallee[in.Sym] {
					seenCallee[in.Sym] = true
					s.Calls = append(s.Calls, in.Sym)
				}
			}
		}
	}
	return s
}

// Summaries summarizes every function in the module and closes the
// Recursive bit over the static call graph: a function is Recursive iff it
// lies on a call-graph cycle (including a direct self-call). Purity needs
// no closure — Summarize already treats any user call as impure.
func Summaries(mod *ir.Module) map[string]*FuncSummary {
	sums := make(map[string]*FuncSummary, len(mod.Funcs))
	for _, f := range mod.Funcs {
		sums[f.Name] = Summarize(f)
	}
	// Cycle detection by DFS with colors; every function on a cycle (or
	// whose call chain re-enters a function already on the current stack)
	// is marked Recursive.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	onCycle := map[string]bool{}
	var dfs func(name string, stack []string)
	dfs = func(name string, stack []string) {
		color[name] = gray
		stack = append(stack, name)
		for _, callee := range sums[name].Calls {
			if sums[callee] == nil {
				continue // unknown callee (compile error elsewhere)
			}
			switch color[callee] {
			case white:
				dfs(callee, stack)
			case gray:
				// Back edge: everything from callee to the stack top cycles.
				mark := false
				for _, fn := range stack {
					if fn == callee {
						mark = true
					}
					if mark {
						onCycle[fn] = true
					}
				}
			}
		}
		color[name] = black
	}
	for _, f := range mod.Funcs {
		if color[f.Name] == white {
			dfs(f.Name, nil)
		}
	}
	// Recursive closes upward: calling into a cycle is only Recursive for
	// members of the cycle itself, so mark exactly the cycle members.
	for name := range onCycle {
		sums[name].Recursive = true
	}
	return sums
}
