package analysis

import (
	"fmt"

	"dyncc/internal/ir"
)

// Result holds the combined solution of the run-time constants and
// reachability analyses over one dynamic region.
type Result struct {
	Region *ir.Region

	// Const reports which SSA values are run-time constants.
	Const map[ir.Value]bool

	// BlockReach is the reachability condition at each block entry.
	BlockReach map[*ir.Block]Cond

	// EdgeReach is the reachability condition on each CFG edge into a
	// region block, keyed by (successor, predecessor index).
	EdgeReach map[EdgeKey]Cond

	// ConstMerge marks merge blocks whose predecessors' reachability
	// conditions are pairwise mutually exclusive (or which are unrolled
	// loop heads), enabling the idempotent-φ rule.
	ConstMerge map[*ir.Block]bool

	// ConstBranch marks Br/Switch terminators whose predicate is a
	// run-time constant.
	ConstBranch map[*ir.Instr]bool
}

// EdgeKey identifies a CFG edge by its destination and the predecessor slot
// (aligned with φ argument order).
type EdgeKey struct {
	To      *ir.Block
	PredIdx int
}

// Analyze runs the paper's interleaved optimistic fixpoint over region r of
// function f. f must be in SSA form. forcedNonConst lists values the caller
// requires to be treated as non-constant (used by the splitter to demote
// values whose set-up computation cannot be scheduled).
func Analyze(f *ir.Func, r *ir.Region, forcedNonConst map[ir.Value]bool) (*Result, error) {
	if !f.SSA {
		return nil, fmt.Errorf("analysis: %s is not in SSA form", f.Name)
	}
	res := &Result{
		Region:      r,
		Const:       map[ir.Value]bool{},
		BlockReach:  map[*ir.Block]Cond{},
		EdgeReach:   map[EdgeKey]Cond{},
		ConstMerge:  map[*ir.Block]bool{},
		ConstBranch: map[*ir.Instr]bool{},
	}

	inRegion := func(b *ir.Block) bool { return b != nil && b.Region == r }

	// Region blocks in reverse postorder (within the whole function's RPO).
	var blocks []*ir.Block
	for _, b := range f.ReversePostorder() {
		if inRegion(b) {
			blocks = append(blocks, b)
		}
	}

	// Seed values: annotated constants (incl. keys).
	seeds := map[ir.Value]bool{}
	for _, v := range r.Consts {
		seeds[v] = true
	}

	// Unrolled loop heads are constant merges by decree (exactly one
	// predecessor arc is ever taken per unrolled copy, paper section 3.1).
	loopHead := map[*ir.Block]bool{}
	for _, l := range r.Loops {
		loopHead[l.Head] = true
	}

	// Heads of loops that are *not* unrolled must be non-constant merges
	// (paper: "the reachability conditions of the loop entry arc and the
	// loop back edge arc will not normally be mutually exclusive" — we make
	// the safe choice unconditionally). Detect back-edge targets with a DFS
	// over the region subgraph.
	ordinaryLoopHead := map[*ir.Block]bool{}
	{
		state := map[*ir.Block]int{} // 0 unvisited, 1 on stack, 2 done
		var dfs func(b *ir.Block)
		dfs = func(b *ir.Block) {
			state[b] = 1
			for _, s := range b.Succs() {
				if !inRegion(s) {
					continue
				}
				switch state[s] {
				case 0:
					dfs(s)
				case 1:
					if !loopHead[s] {
						ordinaryLoopHead[s] = true
					}
				}
			}
			state[b] = 2
		}
		dfs(r.Entry)
	}

	// Optimistic initialization: every value defined inside the region is
	// assumed constant; values defined outside are constant iff seeded.
	definedIn := map[ir.Value]bool{}
	for _, b := range blocks {
		for _, in := range b.Instrs {
			if in.Dst != 0 {
				definedIn[in.Dst] = true
				res.Const[in.Dst] = true
			}
		}
	}
	for v := range seeds {
		res.Const[v] = true
	}
	// Compile-time literal constants are a special case of run-time
	// constants (paper section 3.1 footnote): a literal defined before the
	// region flowing in is constant without annotation.
	for _, b := range blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if definedIn[a] || res.Const[a] {
					continue
				}
				if def := f.DefOf(a); def != nil &&
					(def.Op == ir.OpConst || def.Op == ir.OpFConst) {
					res.Const[a] = true
				}
			}
		}
	}
	for v := range forcedNonConst {
		res.Const[v] = false
		delete(seeds, v)
	}

	isConst := func(v ir.Value) bool { return res.Const[v] }
	allConst := func(vs []ir.Value) bool {
		for _, v := range vs {
			if !isConst(v) {
				return false
			}
		}
		return true
	}

	// Interleaved fixpoint: facts only move downward (const→nonconst,
	// conditions toward weaker), so iteration terminates.
	maxRounds := 4*len(blocks) + f.NumValues() + 16
	for round := 0; ; round++ {
		if round > maxRounds {
			return nil, fmt.Errorf("analysis: fixpoint did not converge in region %d of %s", r.ID, f.Name)
		}
		changed := false

		// --- Reachability pass (forward, least fixpoint over the region).
		reach := map[*ir.Block]Cond{}
		for _, b := range blocks {
			reach[b] = False()
		}
		edge := map[EdgeKey]Cond{}
		reach[r.Entry] = True()
		for iter := 0; ; iter++ {
			rchanged := false
			for _, b := range blocks {
				term := b.Term()
				if term == nil {
					continue
				}
				// Per-successor occurrence counters align duplicate edges
				// with predecessor slots.
				occ := map[*ir.Block]int{}
				for ti, s := range term.Targets {
					if !inRegion(s) {
						occ[s]++
						continue
					}
					ec := reach[b]
					if res.constPredicate(term, isConst) && !reach[b].IsFalse() {
						ec = ec.And(Atom{Block: b, Succ: ti})
					}
					// Atoms of branches inside an unrolled loop describe a
					// *per-iteration* outcome; once control leaves the loop
					// they no longer denote a single fixed value, so strip
					// them (weakening the condition, which is conservative).
					ec = stripLeftLoopAtoms(ec, b, s)
					// Find the predecessor slot for this edge occurrence.
					slot := nthPredIndex(s, b, occ[s])
					occ[s]++
					k := EdgeKey{To: s, PredIdx: slot}
					if !Equal(edge[k], ec) {
						edge[k] = ec
						rchanged = true
					}
				}
			}
			for _, b := range blocks {
				if b == r.Entry {
					continue
				}
				nc := False()
				for pi, p := range b.Preds {
					if !inRegion(p) {
						// Control entering the region other than at the
						// entry is rejected by lowering; defensively treat
						// as always-reachable.
						nc = nc.Or(True())
						continue
					}
					nc = nc.Or(edge[EdgeKey{To: b, PredIdx: pi}])
				}
				if !Equal(reach[b], nc) {
					reach[b] = nc
					rchanged = true
				}
			}
			if !rchanged {
				break
			}
			if iter > (len(blocks)+2)*(MaxConjs+2)*4 {
				return nil, fmt.Errorf("analysis: reachability did not converge")
			}
		}
		res.BlockReach = reach
		res.EdgeReach = edge

		// --- Constant merges.
		for _, b := range blocks {
			cm := true
			if loopHead[b] {
				res.ConstMerge[b] = true
				continue
			}
			if ordinaryLoopHead[b] {
				res.ConstMerge[b] = false
				continue
			}
			for i := 0; i < len(b.Preds) && cm; i++ {
				for j := i + 1; j < len(b.Preds) && cm; j++ {
					ci := edge[EdgeKey{To: b, PredIdx: i}]
					cj := edge[EdgeKey{To: b, PredIdx: j}]
					if !inRegion(b.Preds[i]) || !inRegion(b.Preds[j]) {
						cm = false
						break
					}
					if !Exclusive(ci, cj) {
						cm = false
					}
				}
			}
			if res.ConstMerge[b] != cm {
				res.ConstMerge[b] = cm
				changed = true
			}
		}

		// --- Run-time constants pass (lower values per the flow rules).
		for _, b := range blocks {
			for _, in := range b.Instrs {
				if in.Dst == 0 || !res.Const[in.Dst] {
					continue
				}
				if seeds[in.Dst] {
					continue
				}
				ok := false
				switch in.Op {
				case ir.OpPhi:
					ok = allConst(in.Args) && res.ConstMerge[b]
				case ir.OpLoad:
					// Loads through run-time-constant pointers are constant
					// (paper section 3.1) — but global variables cannot be
					// annotated, so their contents must be assumed mutable:
					// a load whose address is rooted at a global is never a
					// run-time constant. Constant global data is shared by
					// passing an annotated pointer instead.
					ok = !in.Dynamic && isConst(in.Args[0]) &&
						!rootedAtGlobal(f, in.Args[0])
				case ir.OpCall:
					bi := ir.Builtins[in.Sym]
					ok = bi != nil && bi.Pure && allConst(in.Args)
				case ir.OpStackAddr:
					// The stitched code is cached across invocations of the
					// enclosing function, whose frame address differs per
					// call — stack addresses are never run-time constants.
					ok = false
				default:
					ok = in.Op.IsPureNonTrapping() && allConst(in.Args)
				}
				if !ok {
					res.Const[in.Dst] = false
					changed = true
				}
			}
		}

		// --- Constant branches.
		for _, b := range blocks {
			term := b.Term()
			if term == nil {
				continue
			}
			c := res.constPredicate(term, isConst)
			if res.ConstBranch[term] != c {
				res.ConstBranch[term] = c
				changed = true
			}
		}

		if !changed {
			break
		}
	}
	return res, nil
}

// constPredicate reports whether term is a branch whose predicate is a
// run-time constant.
func (res *Result) constPredicate(term *ir.Instr, isConst func(ir.Value) bool) bool {
	switch term.Op {
	case ir.OpBr, ir.OpSwitch:
		return isConst(term.Args[0])
	}
	return false
}

// rootedAtGlobal reports whether the address computation of v involves a
// global's address (bounded def-chain walk over pure address arithmetic).
func rootedAtGlobal(f *ir.Func, v ir.Value) bool {
	seen := map[ir.Value]bool{}
	var walk func(v ir.Value, depth int) bool
	walk = func(v ir.Value, depth int) bool {
		if depth > 64 || seen[v] {
			return false
		}
		seen[v] = true
		def := f.DefOf(v)
		if def == nil {
			return false
		}
		switch def.Op {
		case ir.OpGlobalAddr:
			return true
		case ir.OpCopy, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpShl, ir.OpPhi:
			for _, a := range def.Args {
				if walk(a, depth+1) {
					return true
				}
			}
		}
		return false
	}
	return walk(v, 0)
}

// stripLeftLoopAtoms removes, from cond, atoms whose branch lives in an
// unrolled loop that the edge from -> to leaves.
func stripLeftLoopAtoms(cond Cond, from, to *ir.Block) Cond {
	var left []*ir.Loop
	for _, l := range from.Loops {
		if !to.InLoop(l) {
			left = append(left, l)
		}
	}
	if len(left) == 0 {
		return cond
	}
	inLeft := func(b *ir.Block) bool {
		for _, l := range left {
			if b.InLoop(l) {
				return true
			}
		}
		return false
	}
	var out []Conj
	for _, cj := range cond.Disj {
		var n Conj
		for _, a := range cj {
			if !inLeft(a.Block) {
				n = append(n, a)
			}
		}
		out = append(out, n)
	}
	return Cond{Disj: out}.normalize()
}

// nthPredIndex returns the predecessor slot of the n-th occurrence of p in
// s.Preds (duplicate edges from multi-target terminators).
func nthPredIndex(s, p *ir.Block, n int) int {
	for i, q := range s.Preds {
		if q == p {
			if n == 0 {
				return i
			}
			n--
		}
	}
	return -1
}
