package analysis

import "testing"

func TestStabilityWindow(t *testing.T) {
	s := NewStability(3)
	if s.Stable() {
		t.Fatal("empty tracker must not be stable")
	}
	s.Observe("a")
	s.Observe("a")
	if s.Stable() {
		t.Fatal("unfilled window must not be stable")
	}
	s.Observe("a")
	if !s.Stable() {
		t.Fatal("three identical observations should be stable")
	}
	s.Observe("b")
	if s.Stable() {
		t.Fatal("a differing observation must break stability")
	}
	s.Observe("b")
	s.Observe("b")
	if !s.Stable() {
		t.Fatal("the window should re-stabilize on the new tuple")
	}
}

func TestStabilityReset(t *testing.T) {
	s := NewStability(2)
	s.Observe("a")
	s.Observe("a")
	if !s.Stable() {
		t.Fatal("precondition: stable")
	}
	s.Reset()
	if s.Stable() {
		t.Fatal("reset must clear stability")
	}
	s.Observe("a")
	if s.Stable() {
		t.Fatal("stability must be re-earned over a full window after reset")
	}
	s.Observe("a")
	if !s.Stable() {
		t.Fatal("full window after reset should be stable again")
	}
}

func TestStabilityDefaultWindow(t *testing.T) {
	s := NewStability(0)
	for i := 0; i < DefaultStabilityWindow-1; i++ {
		s.Observe("k")
		if s.Stable() {
			t.Fatalf("stable after %d observations, want %d", i+1, DefaultStabilityWindow)
		}
	}
	s.Observe("k")
	if !s.Stable() {
		t.Fatal("default window of identical observations should be stable")
	}
}
