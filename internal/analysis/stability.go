// Run-time operand-stability inference for speculative region promotion:
// the profiling tier observes the candidate key tuple of an Auto region on
// every invocation and promotes only once the recent window of
// observations agrees. This is the dynamic half of the run-time-constants
// analysis — the static half (this package's Analyze) proves which values
// *would* be constant if the keys held still; Stability decides whether
// they actually do.
package analysis

// Stability tracks the last `window` operand-tuple observations of one
// region. Not safe for concurrent use; callers serialize (the runtime
// holds its per-region promotion lock around Observe/Stable).
type Stability struct {
	window int
	ring   []string
	next   int
	filled bool
}

// DefaultStabilityWindow is the observation window used when none is
// configured: four consecutive identical key tuples before promotion.
const DefaultStabilityWindow = 4

// NewStability creates a tracker over the last `window` observations
// (values < 1 use DefaultStabilityWindow).
func NewStability(window int) *Stability {
	if window < 1 {
		window = DefaultStabilityWindow
	}
	return &Stability{window: window, ring: make([]string, window)}
}

// Observe records one operand tuple (any stable encoding; the runtime uses
// the region's varint key bytes).
func (s *Stability) Observe(tuple string) {
	s.ring[s.next] = tuple
	s.next++
	if s.next == s.window {
		s.next = 0
		s.filled = true
	}
}

// Stable reports whether the window is full and every observation in it is
// identical — the promotion criterion: the speculated operands held still
// across the recent past.
func (s *Stability) Stable() bool {
	if !s.filled {
		return false
	}
	for i := 1; i < s.window; i++ {
		if s.ring[i] != s.ring[0] {
			return false
		}
	}
	return true
}

// Reset clears the window (demotion after a deoptimization: the region
// must re-earn stability before promoting again).
func (s *Stability) Reset() {
	s.next = 0
	s.filled = false
	for i := range s.ring {
		s.ring[i] = ""
	}
}
