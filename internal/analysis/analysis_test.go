package analysis

import (
	"testing"

	"dyncc/internal/ir"
	"dyncc/internal/lower"
	"dyncc/internal/parser"
)

// analyzeRegion compiles src, builds SSA, and analyzes the first region of
// function fn.
func analyzeRegion(t *testing.T, src, fn string) (*ir.Func, *Result) {
	t.Helper()
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := lower.Lower(file)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	f := mod.FuncIndex[fn]
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	ir.BuildSSA(f)
	if len(f.Regions) == 0 {
		t.Fatalf("no regions in %s", fn)
	}
	res, err := Analyze(f, f.Regions[0], nil)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return f, res
}

// phiOf finds the φ merging source variable name within the region.
func phiOf(t *testing.T, f *ir.Func, res *Result, name string) *ir.Instr {
	t.Helper()
	for _, b := range f.Blocks {
		if b.Region == nil {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi && f.ValueInfo(in.Dst).Name == name {
				return in
			}
		}
	}
	t.Fatalf("no φ for %s", name)
	return nil
}

// The paper's first example (section 3.1): if test is constant, the merge
// is a constant merge and x is constant after it.
func TestConstantMergeDiamond(t *testing.T) {
	src := `
int use(int v) { return v; }
int f(int test, int other) {
    int r;
    dynamicRegion (test) {
        int x;
        if (test) { x = 1; } else { x = 2; }
        r = use(x);
    }
    return r;
}`
	f, res := analyzeRegion(t, src, "f")
	phi := phiOf(t, f, res, "x")
	if !res.Const[phi.Dst] {
		t.Error("x should be constant after a constant merge")
	}
	if !res.ConstMerge[phi.Blk] {
		t.Error("the merge should be a constant merge")
	}
}

// With a non-constant test, x cannot be a run-time constant after the merge
// even though 1 and 2 are constants (the non-idempotent-φ rule).
func TestNonConstantMergeDiamond(t *testing.T) {
	src := `
int use(int v) { return v; }
int f(int test, int c) {
    int r;
    dynamicRegion (c) {
        int x;
        if (test) { x = 1; } else { x = 2; }
        r = use(x + c);
    }
    return r;
}`
	f, res := analyzeRegion(t, src, "f")
	phi := phiOf(t, f, res, "x")
	if res.Const[phi.Dst] {
		t.Error("x must not be constant after a non-constant merge")
	}
	if res.ConstMerge[phi.Blk] {
		t.Error("merge of a non-constant branch must not be constant")
	}
}

// The paper's unstructured example (section 3.1): an if/else whose else arm
// is a switch with fall-through and a goto past the join. When both a and b
// are constants, reachability analysis proves all merges constant, so a
// value assigned differently along the arms is still a run-time constant.
func TestUnstructuredReachability(t *testing.T) {
	src := `
int use(int v) { return v; }
int f(int a, int b, int other) {
    int r;
    dynamicRegion (a, b) {
        int x = 0;
        if (a) {
            x = 10; /* M */
        } else {
            switch (b) {
            case 1: x = x + 20; /* N, falls through */
            case 2: x = x + 30; break; /* O */
            case 3: x = 40; goto L; /* P */
            }
            x = x + 50; /* Q */
        }
        x = x + 60; /* R */
L:
        r = use(x);
    }
    return r;
}`
	f, res := analyzeRegion(t, src, "f")
	// Every φ of x within the region must be constant.
	count := 0
	for _, b := range f.Blocks {
		if b.Region == nil {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi && f.ValueInfo(in.Dst).Name == "x" {
				count++
				if !res.Const[in.Dst] {
					t.Errorf("φ of x in b%d should be constant (unstructured reachability)", b.ID)
				}
			}
		}
	}
	if count == 0 {
		t.Fatal("expected φs for x")
	}
}

// Same shape, but only a is constant: the merges fed by the switch are not
// constant merges, so x is not constant at the final use.
func TestUnstructuredPartialConstancy(t *testing.T) {
	src := `
int use(int v) { return v; }
int f(int a, int b, int other) {
    int r;
    dynamicRegion (a) {
        int x = 0;
        if (a) {
            x = 10;
        } else {
            switch (b) {
            case 1: x = x + 20;
            case 2: x = x + 30; break;
            case 3: x = 40; goto L;
            }
            x = x + 50;
        }
        x = x + 60;
L:
        r = use(x);
    }
    return r;
}`
	f, res := analyzeRegion(t, src, "f")
	anyNonConst := false
	for _, b := range f.Blocks {
		if b.Region == nil {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi && f.ValueInfo(in.Dst).Name == "x" && !res.Const[in.Dst] {
				anyNonConst = true
			}
		}
	}
	if !anyNonConst {
		t.Error("with b non-constant, some φ of x must be non-constant")
	}
}

// The paper's unrolled-loop example: the induction pointer of an unrolled
// list walk is constant inside the loop because the loop head is a constant
// merge by decree.
func TestUnrolledLoopInductionConstant(t *testing.T) {
	src := `
struct Node { int val; struct Node *next; };
int f(struct Node *lst, int n) {
    int acc = 0;
    dynamicRegion (lst, n) {
        struct Node *p;
        int i;
        unrolled for (i = 0; i < n; i++) {
            acc = acc + p dynamic-> val;
            p = lst;
        }
        return acc;
    }
    return 0;
}`
	// A simpler canonical form: the classic i-induction variable.
	f, res := analyzeRegion(t, src, "f")
	phi := phiOf(t, f, res, "i")
	if !res.Const[phi.Dst] {
		t.Error("unrolled loop induction variable must be constant")
	}
	if !res.ConstMerge[phi.Blk] {
		t.Error("unrolled loop head must be a constant merge")
	}
}

// Ordinary (non-unrolled) loop heads are never constant merges, so the
// induction variable is not a run-time constant.
func TestOrdinaryLoopHeadNotConstant(t *testing.T) {
	src := `
int f(int c, int n) {
    int acc = 0;
    dynamicRegion (c, n) {
        int i;
        for (i = 0; i < n; i++) {
            acc = acc + i * c;
        }
        return acc;
    }
    return 0;
}`
	f, res := analyzeRegion(t, src, "f")
	phi := phiOf(t, f, res, "i")
	if res.Const[phi.Dst] {
		t.Error("non-unrolled loop induction variable must not be constant")
	}
}

// Derived constants: loads through constant pointers are constant; dynamic
// loads are not; division never produces a run-time constant (it may trap).
func TestDerivationRules(t *testing.T) {
	src := `
int use(int v) { return v; }
int f(int *p, int d) {
    int r;
    dynamicRegion (p) {
        int a = *p;              /* const: load through const pointer */
        int b = dynamic* p;      /* not const: annotated dynamic */
        int c = a * 3 + 1;       /* const: derived */
        int e = a / 3;           /* not const: division may trap */
        r = use(a + b + c + e + d);
    }
    return r;
}`
	f, res := analyzeRegion(t, src, "f")
	get := func(name string) ir.Value {
		for _, b := range f.Blocks {
			if b.Region == nil {
				continue
			}
			for _, in := range b.Instrs {
				if in.Dst != 0 && f.ValueInfo(in.Dst).Name == name {
					return in.Dst
				}
			}
		}
		t.Fatalf("no value named %s", name)
		return 0
	}
	if !res.Const[get("a")] {
		t.Error("a (load via const ptr) should be constant")
	}
	if res.Const[get("b")] {
		t.Error("b (dynamic load) must not be constant")
	}
	if !res.Const[get("c")] {
		t.Error("c (derived arithmetic) should be constant")
	}
	if res.Const[get("e")] {
		t.Error("e (division) must not be constant")
	}
}

// Pure builtins (paper: "such as max or cos") propagate constancy.
func TestPureBuiltinDerivation(t *testing.T) {
	src := `
int use(int v) { return v; }
int f(int c, int d) {
    int r;
    dynamicRegion (c) {
        int m = max(c, 100);
        int a = abs(c);
        r = use(m + a + d);
    }
    return r;
}`
	f, res := analyzeRegion(t, src, "f")
	for _, name := range []string{"m", "a"} {
		found := false
		for _, b := range f.Blocks {
			if b.Region == nil {
				continue
			}
			for _, in := range b.Instrs {
				if in.Dst != 0 && f.ValueInfo(in.Dst).Name == name {
					found = true
					if !res.Const[in.Dst] {
						t.Errorf("%s (pure builtin of const) should be constant", name)
					}
				}
			}
		}
		if !found {
			t.Fatalf("no value %s", name)
		}
	}
}

// Forced demotion must stick.
func TestForcedNonConst(t *testing.T) {
	src := `
int use(int v) { return v; }
int f(int c, int d) {
    int r;
    dynamicRegion (c) {
        int a = c + 1;
        r = use(a + d);
    }
    return r;
}`
	file, _ := parser.Parse(src)
	mod, _ := lower.Lower(file)
	f := mod.FuncIndex["f"]
	ir.BuildSSA(f)
	r := f.Regions[0]
	res, err := Analyze(f, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	var aVal ir.Value
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Dst != 0 && f.ValueInfo(in.Dst).Name == "a" {
				aVal = in.Dst
			}
		}
	}
	if !res.Const[aVal] {
		t.Fatal("a should start constant")
	}
	res2, err := Analyze(f, r, map[ir.Value]bool{aVal: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Const[aVal] {
		t.Error("forced demotion ignored")
	}
}
