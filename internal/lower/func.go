package lower

import (
	"math"

	"dyncc/internal/ast"
	"dyncc/internal/ir"
	"dyncc/internal/token"
	"dyncc/internal/types"
)

func floatBits(f float64) int64 { return int64(math.Float64bits(f)) }

// local is a function-scope variable binding.
type local struct {
	name    string
	typ     *types.Type
	val     ir.Value // virtual register, when !onStack
	onStack bool
	slot    int // stack word offset, when onStack
}

type funcLowerer struct {
	*lowerer
	f   *ir.Func
	cur *ir.Block // nil after a terminator until a new block starts

	scopes    []map[string]*local
	addrTaken map[string]bool

	region    *ir.Region
	loopStack []*ir.Loop

	breakTargets    []*ir.Block
	continueTargets []*ir.Block
	labelBlocks     map[string]*ir.Block

	regionSeq int
	loopSeq   int
}

func (lw *lowerer) lowerFunc(fd *ast.FuncDecl) {
	ftyp := lw.funcs[fd.Name]
	f := ir.NewFunc(fd.Name, ftyp)
	fl := &funcLowerer{
		lowerer:     lw,
		f:           f,
		addrTaken:   map[string]bool{},
		labelBlocks: map[string]*ir.Block{},
	}
	fl.scanAddrTaken(fd.Body)

	entry := f.NewBlock()
	fl.cur = entry
	fl.pushScope()
	for i, p := range fd.Params {
		pt := ftyp.Params[i]
		v := f.NewValue(p.Name, pt)
		f.Params = append(f.Params, v)
		lc := &local{name: p.Name, typ: pt, val: v}
		if fl.addrTaken[p.Name] {
			lc.onStack = true
			lc.slot = fl.allocSlots(1)
			addr := fl.emitV(&ir.Instr{Op: ir.OpStackAddr, Slot: lc.slot, Typ: types.PointerTo(pt)})
			fl.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{addr, v}, Typ: pt})
		}
		fl.define(lc)
	}
	fl.block(fd.Body)
	// Implicit return at the end of a void function (or fall-off).
	if fl.cur != nil {
		if ftyp.Ret.Kind == types.Void {
			fl.emit(&ir.Instr{Op: ir.OpRet})
		} else {
			z := fl.emitV(&ir.Instr{Op: ir.OpConst, Const: 0, Typ: ftyp.Ret})
			fl.emit(&ir.Instr{Op: ir.OpRet, Args: []ir.Value{z}})
		}
		fl.cur = nil
	}
	fl.popScope()
	fl.checkRegionEdges()
	f.ComputePreds()
	f.RemoveUnreachable()
	lw.mod.AddFunc(f)
}

// ------------------------------------------------------------ helpers

func (fl *funcLowerer) pushScope() {
	fl.scopes = append(fl.scopes, map[string]*local{})
}

func (fl *funcLowerer) popScope() {
	fl.scopes = fl.scopes[:len(fl.scopes)-1]
}

func (fl *funcLowerer) define(lc *local) {
	fl.scopes[len(fl.scopes)-1][lc.name] = lc
}

func (fl *funcLowerer) lookup(name string) *local {
	for i := len(fl.scopes) - 1; i >= 0; i-- {
		if lc, ok := fl.scopes[i][name]; ok {
			return lc
		}
	}
	return nil
}

func (fl *funcLowerer) allocSlots(n int) int {
	s := fl.f.StackSize
	fl.f.StackSize += n
	return s
}

// newBlock creates a block carrying the current region/loop marks.
func (fl *funcLowerer) newBlock() *ir.Block {
	b := fl.f.NewBlock()
	b.Region = fl.region
	b.Loops = append([]*ir.Loop(nil), fl.loopStack...)
	return b
}

// startBlock makes b the current insertion block, linking from the previous
// block with a jump when control falls through.
func (fl *funcLowerer) startBlock(b *ir.Block) {
	if fl.cur != nil {
		fl.emit(&ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{b}})
	}
	fl.cur = b
}

// emit appends an instruction to the current block. After a terminator the
// current block becomes nil; emitting with no current block creates an
// unreachable block that RemoveUnreachable will discard.
func (fl *funcLowerer) emit(in *ir.Instr) *ir.Instr {
	if fl.cur == nil {
		fl.cur = fl.newBlock()
	}
	fl.cur.Append(in)
	if in.Op.IsTerminator() {
		fl.cur = nil
	}
	return in
}

// emitV emits an instruction producing a fresh value and returns the value.
func (fl *funcLowerer) emitV(in *ir.Instr) ir.Value {
	in.Dst = fl.f.NewValue("", in.Typ)
	fl.emit(in)
	return in.Dst
}

// constInt emits an integer constant.
func (fl *funcLowerer) constInt(v int64, t *types.Type) ir.Value {
	return fl.emitV(&ir.Instr{Op: ir.OpConst, Const: v, Typ: t})
}

// ------------------------------------------------------------ addr-taken scan

func (fl *funcLowerer) scanAddrTaken(n ast.Node) {
	switch x := n.(type) {
	case nil:
		return
	case *ast.Block:
		for _, s := range x.Stmts {
			fl.scanAddrTaken(s)
		}
	case *ast.DeclStmt:
		for _, d := range x.Decls {
			if d.Init != nil {
				fl.scanAddrTaken(d.Init)
			}
		}
	case *ast.ExprStmt:
		fl.scanAddrTaken(x.X)
	case *ast.If:
		fl.scanAddrTaken(x.Cond)
		fl.scanAddrTaken(x.Then)
		fl.scanAddrTaken(x.Else)
	case *ast.While:
		fl.scanAddrTaken(x.Cond)
		fl.scanAddrTaken(x.Body)
	case *ast.DoWhile:
		fl.scanAddrTaken(x.Body)
		fl.scanAddrTaken(x.Cond)
	case *ast.For:
		fl.scanAddrTaken(x.Init)
		fl.scanAddrTaken(x.Cond)
		fl.scanAddrTaken(x.Post)
		fl.scanAddrTaken(x.Body)
	case *ast.Switch:
		fl.scanAddrTaken(x.Tag)
		fl.scanAddrTaken(x.Body)
	case *ast.LabeledStmt:
		fl.scanAddrTaken(x.Stmt)
	case *ast.Return:
		fl.scanAddrTaken(x.X)
	case *ast.DynamicRegion:
		fl.scanAddrTaken(x.Body)
	case *ast.Unary:
		if x.Op == token.AMP {
			if id, ok := x.X.(*ast.Ident); ok {
				fl.addrTaken[id.Name] = true
				return
			}
		}
		fl.scanAddrTaken(x.X)
	case *ast.PostIncDec:
		fl.scanAddrTaken(x.X)
	case *ast.Binary:
		fl.scanAddrTaken(x.L)
		fl.scanAddrTaken(x.R)
	case *ast.Assign:
		fl.scanAddrTaken(x.L)
		fl.scanAddrTaken(x.R)
	case *ast.Cond:
		fl.scanAddrTaken(x.C)
		fl.scanAddrTaken(x.T)
		fl.scanAddrTaken(x.F)
	case *ast.Call:
		for _, a := range x.Args {
			fl.scanAddrTaken(a)
		}
	case *ast.Index:
		fl.scanAddrTaken(x.X)
		fl.scanAddrTaken(x.I)
	case *ast.Field:
		fl.scanAddrTaken(x.X)
	case *ast.Cast:
		fl.scanAddrTaken(x.X)
	}
}

// ------------------------------------------------------------ statements

func (fl *funcLowerer) block(b *ast.Block) {
	fl.pushScope()
	for _, s := range b.Stmts {
		fl.stmt(s)
	}
	fl.popScope()
}

func (fl *funcLowerer) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.Block:
		fl.block(x)
	case *ast.EmptyStmt:
	case *ast.DeclStmt:
		for _, d := range x.Decls {
			fl.localDecl(d)
		}
	case *ast.ExprStmt:
		fl.expr(x.X)
	case *ast.If:
		fl.ifStmt(x)
	case *ast.While:
		fl.whileStmt(x)
	case *ast.DoWhile:
		fl.doWhileStmt(x)
	case *ast.For:
		fl.forStmt(x)
	case *ast.Switch:
		fl.switchStmt(x)
	case *ast.Case:
		fl.errorf(x.P, "case label outside switch")
	case *ast.Break:
		if len(fl.breakTargets) == 0 {
			fl.errorf(x.P, "break outside loop or switch")
			return
		}
		fl.emit(&ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{fl.breakTargets[len(fl.breakTargets)-1]}})
	case *ast.Continue:
		if len(fl.continueTargets) == 0 {
			fl.errorf(x.P, "continue outside loop")
			return
		}
		fl.emit(&ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{fl.continueTargets[len(fl.continueTargets)-1]}})
	case *ast.Goto:
		fl.emit(&ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{fl.labelBlock(x.Label)}})
	case *ast.LabeledStmt:
		lb := fl.labelBlock(x.Label)
		fl.startBlock(lb)
		fl.stmt(x.Stmt)
	case *ast.Return:
		fl.returnStmt(x)
	case *ast.DynamicRegion:
		fl.dynamicRegion(x)
	default:
		fl.errorf(s.Pos(), "unhandled statement")
	}
}

// labelBlock returns (creating on demand) the block for a goto label.
// Label blocks inherit the region/loop context of their first mention; a
// mismatch (goto across a region boundary) is rejected later by
// checkRegionEdges.
func (fl *funcLowerer) labelBlock(name string) *ir.Block {
	if b, ok := fl.labelBlocks[name]; ok {
		return b
	}
	b := fl.newBlock()
	fl.labelBlocks[name] = b
	return b
}

func (fl *funcLowerer) localDecl(d *ast.VarDecl) {
	t := fl.resolveType(d.Type)
	lc := &local{name: d.Name, typ: t}
	switch {
	case !t.IsScalar():
		lc.onStack = true
		lc.slot = fl.allocSlots(t.Size())
	case fl.addrTaken[d.Name]:
		lc.onStack = true
		lc.slot = fl.allocSlots(1)
	default:
		lc.val = fl.f.NewValue(d.Name, t)
	}
	fl.define(lc)
	if d.Init != nil {
		v, vt := fl.expr(d.Init)
		v = fl.convert(d.P, v, vt, scalarOf(t))
		fl.storeLocal(lc, v)
	} else if !lc.onStack {
		// Define register locals to zero so SSA renaming always finds a
		// dominating definition.
		z := &ir.Instr{Op: ir.OpConst, Const: 0, Typ: t, Dst: lc.val}
		fl.emit(z)
	}
}

// scalarOf maps aggregate types to int for initializer conversion purposes.
func scalarOf(t *types.Type) *types.Type {
	if t.IsScalar() {
		return t
	}
	return types.IntType
}

func (fl *funcLowerer) storeLocal(lc *local, v ir.Value) {
	if lc.onStack {
		addr := fl.emitV(&ir.Instr{Op: ir.OpStackAddr, Slot: lc.slot, Typ: types.PointerTo(lc.typ)})
		fl.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{addr, v}, Typ: lc.typ})
		return
	}
	fl.emit(&ir.Instr{Op: ir.OpCopy, Dst: lc.val, Args: []ir.Value{v}, Typ: lc.typ})
}

func (fl *funcLowerer) ifStmt(x *ast.If) {
	thenB := fl.newBlock()
	exitB := fl.newBlock()
	elseB := exitB
	if x.Else != nil {
		elseB = fl.newBlock()
	}
	fl.cond(x.Cond, thenB, elseB)
	fl.cur = thenB
	fl.stmt(x.Then)
	fl.startBlockOrNil(exitB)
	if x.Else != nil {
		fl.cur = elseB
		fl.stmt(x.Else)
		fl.startBlockOrNil(exitB)
	}
	fl.cur = exitB
}

// startBlockOrNil jumps to b if control can fall through, else does nothing.
func (fl *funcLowerer) startBlockOrNil(b *ir.Block) {
	if fl.cur != nil {
		fl.emit(&ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{b}})
	}
}

func (fl *funcLowerer) whileStmt(x *ast.While) {
	head := fl.newBlock()
	body := fl.newBlock()
	exit := fl.newBlock()
	fl.startBlock(head)
	fl.cond(x.Cond, body, exit)
	fl.cur = body
	fl.breakTargets = append(fl.breakTargets, exit)
	fl.continueTargets = append(fl.continueTargets, head)
	fl.stmt(x.Body)
	fl.breakTargets = fl.breakTargets[:len(fl.breakTargets)-1]
	fl.continueTargets = fl.continueTargets[:len(fl.continueTargets)-1]
	fl.startBlockOrNil(head)
	fl.cur = exit
}

func (fl *funcLowerer) doWhileStmt(x *ast.DoWhile) {
	body := fl.newBlock()
	condB := fl.newBlock()
	exit := fl.newBlock()
	fl.startBlock(body)
	fl.breakTargets = append(fl.breakTargets, exit)
	fl.continueTargets = append(fl.continueTargets, condB)
	fl.stmt(x.Body)
	fl.breakTargets = fl.breakTargets[:len(fl.breakTargets)-1]
	fl.continueTargets = fl.continueTargets[:len(fl.continueTargets)-1]
	fl.startBlockOrNil(condB)
	fl.cur = condB
	fl.cond(x.Cond, body, exit)
	fl.cur = exit
}

func (fl *funcLowerer) forStmt(x *ast.For) {
	fl.pushScope()
	if x.Init != nil {
		fl.stmt(x.Init)
	}

	var loop *ir.Loop
	if x.Unrolled {
		if fl.region == nil {
			fl.errorf(x.P, "unrolled for outside a dynamicRegion")
		} else {
			loop = &ir.Loop{ID: fl.loopSeq, Region: fl.region}
			fl.loopSeq++
			if len(fl.loopStack) > 0 {
				loop.Parent = fl.loopStack[len(fl.loopStack)-1]
			}
			fl.region.Loops = append(fl.region.Loops, loop)
			fl.loopStack = append(fl.loopStack, loop)
		}
	}

	head := fl.newBlock()
	body := fl.newBlock()
	latch := fl.newBlock()
	// The exit block lives *outside* the unrolled loop (it is where
	// EXIT_LOOP transfers), so it must not carry the loop mark.
	var exit *ir.Block
	if loop != nil {
		fl.loopStack = fl.loopStack[:len(fl.loopStack)-1]
		exit = fl.newBlock()
		fl.loopStack = append(fl.loopStack, loop)
	} else {
		exit = fl.newBlock()
	}
	fl.startBlock(head)
	if x.Cond != nil {
		fl.cond(x.Cond, body, exit)
	} else {
		fl.emit(&ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{body}})
	}

	fl.cur = body
	fl.breakTargets = append(fl.breakTargets, exit)
	fl.continueTargets = append(fl.continueTargets, latch)
	fl.stmt(x.Body)
	fl.breakTargets = fl.breakTargets[:len(fl.breakTargets)-1]
	fl.continueTargets = fl.continueTargets[:len(fl.continueTargets)-1]
	fl.startBlockOrNil(latch)
	fl.cur = latch
	if x.Post != nil {
		fl.expr(x.Post)
	}
	fl.emit(&ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{head}})

	if loop != nil {
		loop.Head = head
		loop.Latch = latch
		fl.loopStack = fl.loopStack[:len(fl.loopStack)-1]
	}
	fl.cur = exit
	fl.popScope()
}

func (fl *funcLowerer) returnStmt(x *ast.Return) {
	ret := fl.f.Typ.Ret
	if x.X == nil {
		if ret.Kind != types.Void {
			fl.errorf(x.P, "missing return value")
		}
		fl.emit(&ir.Instr{Op: ir.OpRet})
		return
	}
	v, vt := fl.expr(x.X)
	v = fl.convert(x.P, v, vt, ret)
	fl.emit(&ir.Instr{Op: ir.OpRet, Args: []ir.Value{v}})
}

func (fl *funcLowerer) switchStmt(x *ast.Switch) {
	tag, tt := fl.expr(x.Tag)
	if !tt.IsInteger() {
		fl.errorf(x.P, "switch tag must be integer, got %s", tt)
	}
	exit := fl.newBlock()

	// First pass: find case labels at the top level of the switch body.
	type caseInfo struct {
		val       int64
		isDefault bool
		block     *ir.Block
	}
	var cases []caseInfo
	caseBlock := map[ast.Stmt]*ir.Block{}
	for _, s := range x.Body.Stmts {
		if c, ok := s.(*ast.Case); ok {
			ci := caseInfo{isDefault: c.IsDefault, block: fl.newBlock()}
			if !c.IsDefault {
				v, ok := constEval(c.Value)
				if !ok {
					fl.errorf(c.P, "case value must be a constant expression")
				}
				ci.val = v
			}
			cases = append(cases, ci)
			caseBlock[s] = ci.block
		}
	}

	// Dispatch.
	sw := &ir.Instr{Op: ir.OpSwitch, Args: []ir.Value{tag}}
	defaultB := exit
	for _, ci := range cases {
		if ci.isDefault {
			defaultB = ci.block
			continue
		}
		sw.Cases = append(sw.Cases, ci.val)
		sw.Targets = append(sw.Targets, ci.block)
	}
	sw.Targets = append(sw.Targets, defaultB)
	fl.emit(sw)

	// Second pass: lower the body with fall-through between cases.
	fl.cur = nil
	fl.breakTargets = append(fl.breakTargets, exit)
	fl.pushScope()
	for _, s := range x.Body.Stmts {
		if b, ok := caseBlock[s]; ok {
			fl.startBlock(b)
			continue
		}
		fl.stmt(s)
	}
	fl.popScope()
	fl.breakTargets = fl.breakTargets[:len(fl.breakTargets)-1]
	fl.startBlockOrNil(exit)
	fl.cur = exit
}

// constEval evaluates simple constant expressions for case labels.
func constEval(e ast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Val, true
	case *ast.Unary:
		if v, ok := constEval(x.X); ok {
			switch x.Op {
			case token.MINUS:
				return -v, true
			case token.TILDE:
				return ^v, true
			}
		}
	case *ast.Binary:
		l, ok1 := constEval(x.L)
		r, ok2 := constEval(x.R)
		if ok1 && ok2 {
			switch x.Op {
			case token.PLUS:
				return l + r, true
			case token.MINUS:
				return l - r, true
			case token.STAR:
				return l * r, true
			case token.SHL:
				return l << uint(r&63), true
			case token.PIPE:
				return l | r, true
			}
		}
	}
	return 0, false
}

func (fl *funcLowerer) dynamicRegion(x *ast.DynamicRegion) {
	if fl.region != nil {
		fl.errorf(x.P, "nested dynamicRegion is not supported")
		fl.block(x.Body)
		return
	}
	r := &ir.Region{ID: fl.regionSeq, Fn: fl.f}
	fl.regionSeq++
	fl.f.Regions = append(fl.f.Regions, r)

	resolve := func(names []string) []ir.Value {
		var vs []ir.Value
		for _, n := range names {
			lc := fl.lookup(n)
			if lc == nil {
				fl.errorf(x.P, "dynamicRegion: undefined variable %s", n)
				continue
			}
			if lc.onStack {
				fl.errorf(x.P, "dynamicRegion: annotated constant %s must not be address-taken or an aggregate", n)
				continue
			}
			vs = append(vs, lc.val)
		}
		return vs
	}
	r.Auto = x.Auto
	r.KeyNames = x.Keys
	r.ConstNames = x.Consts
	r.KeyVars = resolve(x.Keys)
	// Keys are run-time constants too (paper section 2).
	r.ConstVars = append(resolve(x.Keys), resolve(x.Consts)...)

	entry := fl.newBlock()
	entry.Region = r // boundary block belongs to the region
	r.Entry = entry
	fl.startBlock(entry)

	fl.region = r
	bodyEntry := fl.newBlock()
	fl.startBlock(bodyEntry)
	fl.block(x.Body)
	fl.region = nil

	exit := fl.newBlock()
	r.Exit = exit
	fl.startBlockOrNil(exit)
	fl.cur = exit
}

// checkRegionEdges rejects control-flow edges that enter a dynamic region
// other than through its entry block (e.g. a goto from outside).
func (fl *funcLowerer) checkRegionEdges() {
	for _, b := range fl.f.Blocks {
		for _, s := range b.Succs() {
			if s.Region != nil && b.Region != s.Region && s != s.Region.Entry {
				fl.errorf(token.Pos{}, "%s: control enters dynamic region %d other than at its entry",
					fl.f.Name, s.Region.ID)
			}
		}
	}
}
