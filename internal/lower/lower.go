// Package lower translates MiniC ASTs into the three-address IR, performing
// type checking on the way. Scalar locals become virtual registers (later
// SSA values); aggregates and address-taken locals get stack slots.
package lower

import (
	"fmt"

	"dyncc/internal/ast"
	"dyncc/internal/ir"
	"dyncc/internal/token"
	"dyncc/internal/types"
)

// Lower type-checks and lowers a parsed file to an IR module.
func Lower(file *ast.File) (*ir.Module, error) {
	lw := &lowerer{
		mod:     ir.NewModule(),
		structs: map[string]*types.Type{},
		funcs:   map[string]*types.Type{},
	}
	for _, sd := range file.Structs {
		lw.declareStruct(sd)
	}
	for _, g := range file.Globals {
		lw.declareGlobal(g)
	}
	for _, fd := range file.Funcs {
		lw.declareFunc(fd)
	}
	for _, fd := range file.Funcs {
		if fd.Body != nil {
			lw.lowerFunc(fd)
		}
	}
	if len(lw.errs) > 0 {
		return nil, lw.errs[0]
	}
	return lw.mod, nil
}

type lowerer struct {
	mod     *ir.Module
	structs map[string]*types.Type
	funcs   map[string]*types.Type
	errs    []error
}

func (lw *lowerer) errorf(p token.Pos, format string, args ...any) {
	lw.errs = append(lw.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

// resolveType converts a syntactic TypeExpr to a semantic type.
func (lw *lowerer) resolveType(te *ast.TypeExpr) *types.Type {
	var t *types.Type
	switch te.Base {
	case token.KwInt, token.KwChar:
		t = types.IntType
	case token.KwUnsigned:
		t = types.UnsignedType
	case token.KwFloat, token.KwDouble:
		t = types.FloatType
	case token.KwVoid:
		t = types.VoidType
	case token.KwStruct:
		st, ok := lw.structs[te.StructName]
		if !ok {
			lw.errorf(te.P, "undefined struct %s", te.StructName)
			return types.IntType
		}
		t = st
	default:
		lw.errorf(te.P, "bad type")
		return types.IntType
	}
	for i := 0; i < te.Ptr; i++ {
		t = types.PointerTo(t)
	}
	// Array dims apply outermost-first: int a[2][3] is array(2, array(3, int)).
	for i := len(te.ArrayLens) - 1; i >= 0; i-- {
		n := te.ArrayLens[i]
		if n < 0 {
			lw.errorf(te.P, "unsized arrays are not supported")
			n = 0
		}
		t = types.ArrayOf(t, n)
	}
	return t
}

func (lw *lowerer) declareStruct(sd *ast.StructDecl) {
	var fields []types.Field
	// Pre-register the name so self-referential pointers work.
	placeholder := &types.Type{Kind: types.Struct, Name: sd.Name}
	lw.structs[sd.Name] = placeholder
	for _, f := range sd.Fields {
		ft := lw.resolveType(f.Type)
		if ft.Kind == types.Struct && ft.Name == sd.Name {
			lw.errorf(f.P, "struct %s contains itself", sd.Name)
			continue
		}
		fields = append(fields, types.Field{Name: f.Name, Type: ft})
	}
	st := types.NewStruct(sd.Name, fields)
	*placeholder = *st
	lw.structs[sd.Name] = placeholder
}

func (lw *lowerer) declareGlobal(g *ast.VarDecl) {
	t := lw.resolveType(g.Type)
	gv := lw.mod.AddGlobal(g.Name, t)
	if g.Init != nil {
		switch init := g.Init.(type) {
		case *ast.IntLit:
			gv.Init = []int64{init.Val}
		case *ast.FloatLit:
			gv.Init = []int64{floatBits(init.Val)}
		default:
			lw.errorf(g.P, "global initializer must be a literal")
		}
	}
}

func (lw *lowerer) declareFunc(fd *ast.FuncDecl) {
	ret := lw.resolveType(fd.Ret)
	var params []*types.Type
	for _, p := range fd.Params {
		pt := lw.resolveType(p.Type)
		if !pt.IsScalar() {
			lw.errorf(p.P, "parameter %s must have scalar type, got %s", p.Name, pt)
		}
		params = append(params, pt)
	}
	if _, dup := lw.funcs[fd.Name]; dup {
		// Prototype followed by definition is fine; keep latest.
	}
	lw.funcs[fd.Name] = types.FuncType(ret, params)
}
