package lower

import (
	"dyncc/internal/ast"
	"dyncc/internal/ir"
	"dyncc/internal/token"
	"dyncc/internal/types"
)

// lval describes an assignable location: either a register-allocated local
// or a memory word at addr+off.
type lval struct {
	lc      *local // register variable when non-nil
	addr    ir.Value
	off     int64
	typ     *types.Type
	dynamic bool // access annotated `dynamic` (result is never a run-time constant)
}

// expr lowers e as an rvalue, returning its value and type. Array-typed
// expressions decay to pointers.
func (fl *funcLowerer) expr(e ast.Expr) (ir.Value, *types.Type) {
	switch x := e.(type) {
	case *ast.IntLit:
		return fl.constInt(x.Val, types.IntType), types.IntType
	case *ast.FloatLit:
		return fl.emitV(&ir.Instr{Op: ir.OpFConst, F: x.Val, Typ: types.FloatType}), types.FloatType
	case *ast.StringLit:
		return fl.stringLit(x), types.PointerTo(types.IntType)
	case *ast.Ident, *ast.Index, *ast.Field:
		lv := fl.lvalue(e)
		return fl.loadLV(e.Pos(), lv)
	case *ast.Unary:
		return fl.unary(x)
	case *ast.PostIncDec:
		return fl.postIncDec(x)
	case *ast.Binary:
		if x.Op == token.COMMA {
			fl.expr(x.L)
			return fl.expr(x.R)
		}
		if x.Op == token.ANDAND || x.Op == token.OROR {
			return fl.shortCircuit(x)
		}
		return fl.binary(x)
	case *ast.Assign:
		return fl.assign(x)
	case *ast.Cond:
		return fl.ternary(x)
	case *ast.Call:
		return fl.call(x)
	case *ast.Cast:
		t := fl.resolveType(x.Type)
		v, vt := fl.expr(x.X)
		return fl.convert(x.P, v, vt, t), t
	case *ast.SizeofType:
		t := fl.resolveType(x.Type)
		return fl.constInt(int64(t.Size()), types.IntType), types.IntType
	}
	fl.errorf(e.Pos(), "unhandled expression")
	return fl.constInt(0, types.IntType), types.IntType
}

// loadLV reads an lvalue.
func (fl *funcLowerer) loadLV(p token.Pos, lv lval) (ir.Value, *types.Type) {
	if lv.typ.Kind == types.Array {
		// Array decay: the value is the address.
		pt := types.PointerTo(lv.typ.Elem)
		return fl.lvAddr(lv), pt
	}
	if lv.lc != nil {
		return lv.lc.val, lv.typ
	}
	if lv.typ.Kind == types.Struct {
		fl.errorf(p, "struct value used as scalar")
		return fl.constInt(0, types.IntType), types.IntType
	}
	ld := &ir.Instr{Op: ir.OpLoad, Args: []ir.Value{lv.addr}, Const: lv.off,
		Typ: lv.typ, Dynamic: lv.dynamic}
	return fl.emitV(ld), lv.typ
}

// lvAddr materializes the address of a memory lvalue.
func (fl *funcLowerer) lvAddr(lv lval) ir.Value {
	if lv.off == 0 {
		return lv.addr
	}
	off := fl.constInt(lv.off, types.IntType)
	return fl.emitV(&ir.Instr{Op: ir.OpAdd, Args: []ir.Value{lv.addr, off},
		Typ: types.PointerTo(lv.typ)})
}

// storeLV writes v to an lvalue.
func (fl *funcLowerer) storeLV(lv lval, v ir.Value) {
	if lv.lc != nil {
		fl.storeLocal(lv.lc, v)
		return
	}
	fl.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{lv.addr, v}, Const: lv.off, Typ: lv.typ})
}

// lvalue lowers e as an assignable location.
func (fl *funcLowerer) lvalue(e ast.Expr) lval {
	switch x := e.(type) {
	case *ast.Ident:
		if lc := fl.lookup(x.Name); lc != nil {
			if lc.onStack {
				addr := fl.emitV(&ir.Instr{Op: ir.OpStackAddr, Slot: lc.slot,
					Typ: types.PointerTo(lc.typ)})
				return lval{addr: addr, typ: lc.typ}
			}
			return lval{lc: lc, typ: lc.typ}
		}
		if g, ok := fl.mod.GlobalIndex[x.Name]; ok {
			addr := fl.emitV(&ir.Instr{Op: ir.OpGlobalAddr, Sym: x.Name,
				Typ: types.PointerTo(g.Typ)})
			return lval{addr: addr, typ: g.Typ}
		}
		fl.errorf(x.P, "undefined variable %s", x.Name)
		return lval{lc: &local{typ: types.IntType, val: fl.constInt(0, types.IntType)}, typ: types.IntType}
	case *ast.Unary:
		if x.Op == token.STAR {
			v, vt := fl.expr(x.X)
			if vt.Kind != types.Pointer {
				fl.errorf(x.P, "cannot dereference non-pointer %s", vt)
				return lval{addr: v, typ: types.IntType}
			}
			return lval{addr: v, typ: vt.Elem, dynamic: x.Dynamic}
		}
	case *ast.Index:
		v, vt := fl.expr(x.X)
		if vt.Kind != types.Pointer {
			fl.errorf(x.P, "cannot index non-pointer %s", vt)
			return lval{addr: v, typ: types.IntType}
		}
		elem := vt.Elem
		iv, it := fl.expr(x.I)
		if !it.IsInteger() {
			fl.errorf(x.P, "array index must be integer")
		}
		size := int64(elem.Size())
		scaled := iv
		if size != 1 {
			sz := fl.constInt(size, types.IntType)
			scaled = fl.emitV(&ir.Instr{Op: ir.OpMul, Args: []ir.Value{iv, sz}, Typ: types.IntType})
		}
		addr := fl.emitV(&ir.Instr{Op: ir.OpAdd, Args: []ir.Value{v, scaled}, Typ: vt})
		return lval{addr: addr, typ: elem, dynamic: x.Dynamic}
	case *ast.Field:
		var base lval
		if x.Arrow {
			v, vt := fl.expr(x.X)
			if vt.Kind != types.Pointer || vt.Elem.Kind != types.Struct {
				fl.errorf(x.P, "-> on non-struct-pointer %s", vt)
				return lval{addr: v, typ: types.IntType}
			}
			base = lval{addr: v, typ: vt.Elem}
		} else {
			base = fl.lvalue(x.X)
			if base.typ.Kind != types.Struct {
				fl.errorf(x.P, ". on non-struct %s", base.typ)
				return base
			}
			if base.lc != nil {
				fl.errorf(x.P, "struct in register (internal)")
				return base
			}
		}
		f, ok := base.typ.FieldByName(x.Name)
		if !ok {
			fl.errorf(x.P, "struct %s has no field %s", base.typ.Name, x.Name)
			return lval{addr: base.addr, off: base.off, typ: types.IntType}
		}
		return lval{addr: base.addr, off: base.off + int64(f.Offset), typ: f.Type,
			dynamic: x.Dynamic || base.dynamic}
	}
	fl.errorf(e.Pos(), "expression is not assignable")
	return lval{lc: &local{typ: types.IntType, val: fl.constInt(0, types.IntType)}, typ: types.IntType}
}

func (fl *funcLowerer) unary(x *ast.Unary) (ir.Value, *types.Type) {
	switch x.Op {
	case token.AMP:
		lv := fl.lvalue(x.X)
		if lv.lc != nil {
			fl.errorf(x.P, "cannot take address of register variable %s", lv.lc.name)
			return fl.constInt(0, types.IntType), types.PointerTo(lv.typ)
		}
		return fl.lvAddr(lv), types.PointerTo(lv.typ)
	case token.STAR:
		lv := fl.lvalue(x)
		return fl.loadLV(x.P, lv)
	case token.MINUS:
		v, vt := fl.expr(x.X)
		if vt.IsFloat() {
			return fl.emitV(&ir.Instr{Op: ir.OpFNeg, Args: []ir.Value{v}, Typ: vt}), vt
		}
		return fl.emitV(&ir.Instr{Op: ir.OpNeg, Args: []ir.Value{v}, Typ: vt}), vt
	case token.TILDE:
		v, vt := fl.expr(x.X)
		if !vt.IsInteger() {
			fl.errorf(x.P, "~ requires integer")
		}
		return fl.emitV(&ir.Instr{Op: ir.OpNot, Args: []ir.Value{v}, Typ: vt}), vt
	case token.BANG:
		v, vt := fl.expr(x.X)
		if vt.IsFloat() {
			z := fl.emitV(&ir.Instr{Op: ir.OpFConst, F: 0, Typ: vt})
			return fl.emitV(&ir.Instr{Op: ir.OpFEq, Args: []ir.Value{v, z}, Typ: types.IntType}), types.IntType
		}
		z := fl.constInt(0, vt)
		return fl.emitV(&ir.Instr{Op: ir.OpEq, Args: []ir.Value{v, z}, Typ: types.IntType}), types.IntType
	}
	fl.errorf(x.P, "unhandled unary operator %s", x.Op)
	return fl.constInt(0, types.IntType), types.IntType
}

func (fl *funcLowerer) postIncDec(x *ast.PostIncDec) (ir.Value, *types.Type) {
	lv := fl.lvalue(x.X)
	old, t := fl.loadLV(x.P, lv)
	step := int64(1)
	if t.Kind == types.Pointer {
		step = int64(t.Elem.Size())
	}
	d := fl.constInt(step, types.IntType)
	op := ir.OpAdd
	if x.Op == token.DEC {
		op = ir.OpSub
	}
	if t.IsFloat() {
		fd := fl.emitV(&ir.Instr{Op: ir.OpFConst, F: 1, Typ: t})
		fop := ir.OpFAdd
		if x.Op == token.DEC {
			fop = ir.OpFSub
		}
		nv := fl.emitV(&ir.Instr{Op: fop, Args: []ir.Value{old, fd}, Typ: t})
		fl.storeLV(lv, nv)
		return old, t
	}
	nv := fl.emitV(&ir.Instr{Op: op, Args: []ir.Value{old, d}, Typ: t})
	fl.storeLV(lv, nv)
	return old, t
}

// binOpFor selects the IR op for a binary operator on operands of type t.
func (fl *funcLowerer) binOpFor(p token.Pos, op token.Kind, t *types.Type) ir.Op {
	fp := t.IsFloat()
	uns := t.Kind == types.Unsigned || t.Kind == types.Pointer
	switch op {
	case token.PLUS:
		if fp {
			return ir.OpFAdd
		}
		return ir.OpAdd
	case token.MINUS:
		if fp {
			return ir.OpFSub
		}
		return ir.OpSub
	case token.STAR:
		if fp {
			return ir.OpFMul
		}
		return ir.OpMul
	case token.SLASH:
		if fp {
			return ir.OpFDiv
		}
		if uns {
			return ir.OpUDiv
		}
		return ir.OpDiv
	case token.PERCENT:
		if fp {
			fl.errorf(p, "%% requires integer operands")
			return ir.OpUMod
		}
		if uns {
			return ir.OpUMod
		}
		return ir.OpMod
	case token.AMP:
		return ir.OpAnd
	case token.PIPE:
		return ir.OpOr
	case token.CARET:
		return ir.OpXor
	case token.SHL:
		return ir.OpShl
	case token.SHR:
		if uns {
			return ir.OpLShr
		}
		return ir.OpAShr
	case token.EQ:
		if fp {
			return ir.OpFEq
		}
		return ir.OpEq
	case token.NE:
		if fp {
			return ir.OpFNe
		}
		return ir.OpNe
	case token.LT:
		if fp {
			return ir.OpFLt
		}
		if uns {
			return ir.OpULt
		}
		return ir.OpLt
	case token.LE:
		if fp {
			return ir.OpFLe
		}
		if uns {
			return ir.OpULe
		}
		return ir.OpLe
	case token.GT, token.GE:
		// Lowered by swapping operands at the call site.
		panic("lower: GT/GE must be canonicalized")
	}
	fl.errorf(p, "unhandled binary operator %s", op)
	return ir.OpAdd
}

// unifyTypes returns the common type of two operand types without emitting
// any conversion code.
func unifyTypes(lt, rt *types.Type) *types.Type {
	switch {
	case lt.IsFloat() || rt.IsFloat():
		return types.FloatType
	case lt.Kind == types.Pointer:
		return lt
	case rt.Kind == types.Pointer:
		return rt
	case lt.Kind == types.Unsigned || rt.Kind == types.Unsigned:
		return types.UnsignedType
	default:
		return types.IntType
	}
}

// usualConversions applies C-style usual arithmetic conversions.
func (fl *funcLowerer) usualConversions(p token.Pos, l ir.Value, lt *types.Type, r ir.Value, rt *types.Type) (ir.Value, ir.Value, *types.Type) {
	switch {
	case lt.IsFloat() || rt.IsFloat():
		return fl.convert(p, l, lt, types.FloatType), fl.convert(p, r, rt, types.FloatType), types.FloatType
	case lt.Kind == types.Pointer:
		return l, r, lt
	case rt.Kind == types.Pointer:
		return l, r, rt
	case lt.Kind == types.Unsigned || rt.Kind == types.Unsigned:
		return l, r, types.UnsignedType
	default:
		return l, r, types.IntType
	}
}

func (fl *funcLowerer) binary(x *ast.Binary) (ir.Value, *types.Type) {
	op := x.Op
	L, R := x.L, x.R
	// Canonicalize > and >= by swapping.
	if op == token.GT || op == token.GE {
		L, R = R, L
		if op == token.GT {
			op = token.LT
		} else {
			op = token.LE
		}
	}
	l, lt := fl.expr(L)
	r, rt := fl.expr(R)

	// Pointer arithmetic: scale the integer operand by the element size.
	if (op == token.PLUS || op == token.MINUS) && (lt.Kind == types.Pointer) != (rt.Kind == types.Pointer) {
		if rt.Kind == types.Pointer {
			l, r = r, l
			lt, rt = rt, lt
			if op == token.MINUS {
				fl.errorf(x.P, "cannot subtract pointer from integer")
			}
		}
		size := int64(lt.Elem.Size())
		if size != 1 {
			sz := fl.constInt(size, types.IntType)
			r = fl.emitV(&ir.Instr{Op: ir.OpMul, Args: []ir.Value{r, sz}, Typ: types.IntType})
		}
		iop := ir.OpAdd
		if op == token.MINUS {
			iop = ir.OpSub
		}
		return fl.emitV(&ir.Instr{Op: iop, Args: []ir.Value{l, r}, Typ: lt}), lt
	}
	// Pointer difference.
	if op == token.MINUS && lt.Kind == types.Pointer && rt.Kind == types.Pointer {
		d := fl.emitV(&ir.Instr{Op: ir.OpSub, Args: []ir.Value{l, r}, Typ: types.IntType})
		size := int64(lt.Elem.Size())
		if size != 1 {
			sz := fl.constInt(size, types.IntType)
			d = fl.emitV(&ir.Instr{Op: ir.OpDiv, Args: []ir.Value{d, sz}, Typ: types.IntType})
		}
		return d, types.IntType
	}

	l, r, ot := fl.usualConversions(x.P, l, lt, r, rt)
	iop := fl.binOpFor(x.P, op, ot)
	resT := ot
	switch op {
	case token.EQ, token.NE, token.LT, token.LE:
		resT = types.IntType
	}
	return fl.emitV(&ir.Instr{Op: iop, Args: []ir.Value{l, r}, Typ: resT}), resT
}

func (fl *funcLowerer) shortCircuit(x *ast.Binary) (ir.Value, *types.Type) {
	res := fl.f.NewValue("", types.IntType)
	tB := fl.newBlock()
	fB := fl.newBlock()
	merge := fl.newBlock()
	fl.cond(x, tB, fB)
	fl.cur = tB
	fl.emit(&ir.Instr{Op: ir.OpConst, Const: 1, Dst: res, Typ: types.IntType})
	fl.emit(&ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{merge}})
	fl.cur = fB
	fl.emit(&ir.Instr{Op: ir.OpConst, Const: 0, Dst: res, Typ: types.IntType})
	fl.emit(&ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{merge}})
	fl.cur = merge
	return res, types.IntType
}

// cond lowers a boolean expression as control flow to t or f.
func (fl *funcLowerer) cond(e ast.Expr, t, f *ir.Block) {
	switch x := e.(type) {
	case *ast.Binary:
		switch x.Op {
		case token.ANDAND:
			mid := fl.newBlock()
			fl.cond(x.L, mid, f)
			fl.cur = mid
			fl.cond(x.R, t, f)
			return
		case token.OROR:
			mid := fl.newBlock()
			fl.cond(x.L, t, mid)
			fl.cur = mid
			fl.cond(x.R, t, f)
			return
		}
	case *ast.Unary:
		if x.Op == token.BANG {
			fl.cond(x.X, f, t)
			return
		}
	}
	v, vt := fl.expr(e)
	if vt.IsFloat() {
		z := fl.emitV(&ir.Instr{Op: ir.OpFConst, F: 0, Typ: vt})
		v = fl.emitV(&ir.Instr{Op: ir.OpFNe, Args: []ir.Value{v, z}, Typ: types.IntType})
	}
	fl.emit(&ir.Instr{Op: ir.OpBr, Args: []ir.Value{v}, Targets: []*ir.Block{t, f}})
}

func (fl *funcLowerer) ternary(x *ast.Cond) (ir.Value, *types.Type) {
	tB := fl.newBlock()
	fB := fl.newBlock()
	merge := fl.newBlock()
	fl.cond(x.C, tB, fB)

	fl.cur = tB
	tv, tt := fl.expr(x.T)
	tEnd := fl.cur

	fl.cur = fB
	fv, ft := fl.expr(x.F)

	ot := unifyTypes(tt, ft)
	res := fl.f.NewValue("", ot)

	fv = fl.convert(x.P, fv, ft, ot)
	fl.emit(&ir.Instr{Op: ir.OpCopy, Dst: res, Args: []ir.Value{fv}, Typ: ot})
	fl.emit(&ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{merge}})

	fl.cur = tEnd
	tv = fl.convert(x.P, tv, tt, ot)
	fl.emit(&ir.Instr{Op: ir.OpCopy, Dst: res, Args: []ir.Value{tv}, Typ: ot})
	fl.emit(&ir.Instr{Op: ir.OpJump, Targets: []*ir.Block{merge}})

	fl.cur = merge
	return res, ot
}

func (fl *funcLowerer) assign(x *ast.Assign) (ir.Value, *types.Type) {
	lv := fl.lvalue(x.L)
	if x.Op == token.ASSIGN {
		v, vt := fl.expr(x.R)
		v = fl.convert(x.P, v, vt, lv.typ)
		fl.storeLV(lv, v)
		return v, lv.typ
	}
	// Compound assignment: load, op, store. The lvalue is evaluated once.
	old, t := fl.loadLV(x.P, lv)
	r, rt := fl.expr(x.R)
	op := token.BinOpFor(x.Op)
	// Pointer += int.
	if t.Kind == types.Pointer && (op == token.PLUS || op == token.MINUS) {
		size := int64(t.Elem.Size())
		if size != 1 {
			sz := fl.constInt(size, types.IntType)
			r = fl.emitV(&ir.Instr{Op: ir.OpMul, Args: []ir.Value{r, sz}, Typ: types.IntType})
		}
		iop := ir.OpAdd
		if op == token.MINUS {
			iop = ir.OpSub
		}
		nv := fl.emitV(&ir.Instr{Op: iop, Args: []ir.Value{old, r}, Typ: t})
		fl.storeLV(lv, nv)
		return nv, t
	}
	l2, r2, ot := fl.usualConversions(x.P, old, t, r, rt)
	iop := fl.binOpFor(x.P, op, ot)
	nv := fl.emitV(&ir.Instr{Op: iop, Args: []ir.Value{l2, r2}, Typ: ot})
	nv = fl.convert(x.P, nv, ot, lv.typ)
	fl.storeLV(lv, nv)
	return nv, lv.typ
}

func (fl *funcLowerer) call(x *ast.Call) (ir.Value, *types.Type) {
	var params []*types.Type
	var ret *types.Type
	if b, ok := ir.Builtins[x.Fun]; ok {
		params, ret = b.Params, b.Ret
	} else if ft, ok := fl.funcs[x.Fun]; ok {
		params, ret = ft.Params, ft.Ret
	} else {
		fl.errorf(x.P, "undefined function %s", x.Fun)
		return fl.constInt(0, types.IntType), types.IntType
	}
	if len(x.Args) != len(params) {
		fl.errorf(x.P, "%s expects %d arguments, got %d", x.Fun, len(params), len(x.Args))
	}
	var args []ir.Value
	for i, a := range x.Args {
		v, vt := fl.expr(a)
		if i < len(params) {
			v = fl.convert(a.Pos(), v, vt, params[i])
		}
		args = append(args, v)
	}
	in := &ir.Instr{Op: ir.OpCall, Sym: x.Fun, Args: args, Typ: ret, Pos: x.P}
	if ret.Kind == types.Void {
		fl.emit(in)
		return 0, ret
	}
	return fl.emitV(in), ret
}

// convert coerces v from type `from` to type `to`, inserting conversion
// instructions where representation changes.
func (fl *funcLowerer) convert(p token.Pos, v ir.Value, from, to *types.Type) ir.Value {
	if from == nil || to == nil || types.Same(from, to) {
		return v
	}
	switch {
	case from.IsInteger() && to.IsInteger():
		return v // same representation
	case from.Kind == types.Pointer && to.Kind == types.Pointer:
		return v
	case from.Kind == types.Pointer && to.IsInteger(),
		from.IsInteger() && to.Kind == types.Pointer:
		return v
	case from.IsInteger() && to.IsFloat():
		return fl.emitV(&ir.Instr{Op: ir.OpIntToFloat, Args: []ir.Value{v}, Typ: to})
	case from.IsFloat() && to.IsInteger():
		return fl.emitV(&ir.Instr{Op: ir.OpFloatToInt, Args: []ir.Value{v}, Typ: to})
	case from.IsFloat() && to.IsFloat():
		return v
	}
	fl.errorf(p, "cannot convert %s to %s", from, to)
	return v
}

// stringLit places the literal in the globals segment as NUL-terminated
// words (one character per word) and returns its address.
func (fl *funcLowerer) stringLit(x *ast.StringLit) ir.Value {
	name := fl.internString(x.Val)
	return fl.emitV(&ir.Instr{Op: ir.OpGlobalAddr, Sym: name,
		Typ: types.PointerTo(types.IntType)})
}

func (fl *funcLowerer) internString(s string) string {
	name := ".str." + s
	if _, ok := fl.mod.GlobalIndex[name]; ok {
		return name
	}
	g := fl.mod.AddGlobal(name, types.ArrayOf(types.IntType, len(s)+1))
	for _, c := range []byte(s) {
		g.Init = append(g.Init, int64(c))
	}
	g.Init = append(g.Init, 0)
	return name
}
