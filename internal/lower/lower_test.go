package lower

import (
	"testing"

	"dyncc/internal/ir"
	"dyncc/internal/parser"
)

func lowerSrc(t *testing.T, src string) *ir.Module {
	t.Helper()
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := Lower(file)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	for _, f := range mod.Funcs {
		ir.BuildSSA(f)
		if err := ir.Verify(f); err != nil {
			t.Fatalf("verify %s: %v", f.Name, err)
		}
	}
	return mod
}

func eval(t *testing.T, mod *ir.Module, fn string, args ...int64) int64 {
	t.Helper()
	env := ir.NewInterpEnv(mod, 0)
	v, err := env.CallFunc(fn, args...)
	if err != nil {
		t.Fatalf("interp %s: %v", fn, err)
	}
	return v
}

func TestExpressionSemantics(t *testing.T) {
	mod := lowerSrc(t, `
int f(int a, int b) {
    int r = 0;
    r += a > b ? a : b;            /* ternary */
    r += (a && b) + (a || b);      /* short circuit */
    r += !a + ~b;                  /* unary */
    r += a % b;                    /* modulus */
    r <<= 1;
    return r;
}`)
	gold := func(a, b int64) int64 {
		r := int64(0)
		if a > b {
			r += a
		} else {
			r += b
		}
		and, or := int64(0), int64(0)
		if a != 0 && b != 0 {
			and = 1
		}
		if a != 0 || b != 0 {
			or = 1
		}
		r += and + or
		if a == 0 {
			r++
		}
		r += ^b
		r += a % b
		return r << 1
	}
	for _, c := range [][2]int64{{5, 3}, {0, 7}, {-4, 9}, {12, -5}} {
		if got, want := eval(t, mod, "f", c[0], c[1]), gold(c[0], c[1]); got != want {
			t.Errorf("f(%d,%d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

func TestUnsignedSemantics(t *testing.T) {
	mod := lowerSrc(t, `
unsigned f(unsigned a, unsigned b) {
    return a / b + a % b + (a < b) + (a >> 3);
}`)
	a, b := int64(-1), int64(7) // -1 is the max unsigned value
	want := int64(uint64(a)/uint64(b)) + int64(uint64(a)%uint64(b)) + 0 +
		int64(uint64(a)>>3)
	if got := eval(t, mod, "f", a, b); got != want {
		t.Errorf("unsigned ops: got %d want %d", got, want)
	}
}

func TestPointerArithmetic(t *testing.T) {
	mod := lowerSrc(t, `
struct P { int a; int b; };
int f(int n) {
    struct P *arr = alloc(n * 2);
    int i;
    for (i = 0; i < n; i++) {
        struct P *p = arr + i;
        p->a = i;
        p->b = i * 10;
    }
    struct P *last = &arr[n-1];
    int span = last - arr;
    return arr[n-1].a + last->b + span;
}`)
	if got := eval(t, mod, "f", 5); got != 4+40+4 {
		t.Errorf("ptr arith: %d", got)
	}
}

func TestGlobalsAndInit(t *testing.T) {
	mod := lowerSrc(t, `
int counter = 100;
int table[4];
int bump(int d) {
    counter += d;
    table[1] = counter;
    return counter + table[1];
}`)
	env := ir.NewInterpEnv(mod, 0)
	v1, _ := env.CallFunc("bump", 5)
	if v1 != 210 {
		t.Errorf("first bump: %d", v1)
	}
	v2, _ := env.CallFunc("bump", 5)
	if v2 != 220 {
		t.Errorf("second bump: %d", v2)
	}
}

func TestAddressTakenLocal(t *testing.T) {
	mod := lowerSrc(t, `
void setIt(int *p, int v) { *p = v; }
int f() {
    int x = 1;
    setIt(&x, 42);
    return x;
}`)
	if got := eval(t, mod, "f"); got != 42 {
		t.Errorf("&local: %d", got)
	}
}

func TestNestedStructAccess(t *testing.T) {
	mod := lowerSrc(t, `
struct Inner { int v; };
struct Outer { int pad; struct Inner in; struct Inner *ptr; };
int f() {
    struct Outer o;
    struct Inner heap;
    o.pad = 1;
    o.in.v = 20;
    o.ptr = &heap;
    o.ptr->v = 300;
    return o.pad + o.in.v + o.ptr->v;
}`)
	if got := eval(t, mod, "f"); got != 321 {
		t.Errorf("nested structs: %d", got)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		`int f() { return g; }`,                           // undefined variable
		`int f() { return g(); }`,                         // undefined function
		`int f(int x) { unrolled for (;;) {} return x; }`, // unrolled outside region
		`int f(struct M *p) { return 0; }`,                // unknown struct
		`int f(int x) { int *p = &x; dynamicRegion (p) { dynamicRegion (p) { } } return 0; }`, // nested region
		`int f() { break; }`,               // break outside loop
		`int f(int x) { return x.field; }`, // field of scalar
	}
	for _, src := range cases {
		file, err := parser.Parse(src)
		if err != nil {
			continue // parse error also acceptable
		}
		if _, err := Lower(file); err == nil {
			t.Errorf("%q: expected lowering error", src)
		}
	}
}

func TestAnnotatedConstMustBeRegisterable(t *testing.T) {
	file, err := parser.Parse(`
int f(int c) {
    int arr[4];
    dynamicRegion (arr) { arr[0] = c; }
    return arr[0];
}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lower(file); err == nil {
		t.Error("expected error: aggregate annotated as run-time constant")
	}
}

func TestRegionMetadata(t *testing.T) {
	mod := lowerSrc(t, `
int f(int c, int k, int x) {
    int r;
    dynamicRegion key(k) (c) {
        r = c + k + x;
    }
    return r;
}`)
	f := mod.FuncIndex["f"]
	if len(f.Regions) != 1 {
		t.Fatalf("regions: %d", len(f.Regions))
	}
	r := f.Regions[0]
	if len(r.Keys) != 1 || len(r.Consts) != 2 {
		t.Errorf("keys %d consts %d (keys are also constants)", len(r.Keys), len(r.Consts))
	}
	if r.Entry == nil || r.Exit == nil {
		t.Error("region entry/exit blocks missing")
	}
}

func TestUnrolledLoopMetadata(t *testing.T) {
	mod := lowerSrc(t, `
int f(int *a, int n) {
    int r = 0;
    dynamicRegion (a, n) {
        int i, j;
        unrolled for (i = 0; i < n; i++) {
            unrolled for (j = 0; j < i; j++) {
                r = r + a dynamic[j];
            }
        }
    }
    return r;
}`)
	f := mod.FuncIndex["f"]
	r := f.Regions[0]
	if len(r.Loops) != 2 {
		t.Fatalf("loops: %d", len(r.Loops))
	}
	outer, inner := r.Loops[0], r.Loops[1]
	if inner.Parent != outer {
		t.Error("inner loop's parent should be the outer loop")
	}
	for _, l := range r.Loops {
		if l.Head == nil || l.Latch == nil {
			t.Error("loop head/latch missing")
		}
		if !l.Head.InLoop(l) {
			t.Error("head not marked in loop")
		}
	}
}
