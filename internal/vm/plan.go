package vm

// The execution plan precomputes, once per segment, everything the seed
// interpreter re-derived on every step: per-pc cycle attribution
// (stitched-region / static-region / set-up), region-entry invocation
// markers, and static instruction costs. On top of the per-pc tables it
// lays out basic blocks with summed costs so the interpreter can charge a
// whole straight-line run with one update per counter at block entry,
// falling back to exact per-instruction accounting when tracing, when the
// cycle budget is nearly exhausted, or when control enters a block
// mid-way (e.g. a stitched segment XFERing into its parent).
//
// The invariant throughout: for any execution, the machine's Cycles,
// Insts and per-region counters are bit-identical to what the seed
// per-instruction loop would have produced.

// planBlock is one straight-line run: [start, end) with uniform
// attribution, entered only at start (or handled exactly otherwise).
type planBlock struct {
	start  int32
	end    int32  // exclusive
	cost   uint64 // summed static cost, attributed to region when >= 0
	xtra   uint64 // summed machine-only cycles (wide-LI penalties)
	insts  uint64 // summed guest instruction count
	region int32  // uniform attribution region, or -1
	entry  int32  // region invoked when the block is entered at start, or -1
	setup  bool   // attribute cost to SetupCycles instead of ExecCycles
}

// execPlan is the per-segment derived plan. It is machine-independent
// (indices, never counter pointers: a machine's region slice may grow) and
// immutable once built, so all machines running the segment share it.
type execPlan struct {
	blocks  []planBlock
	blockAt []int32 // pc -> index of the enclosing block

	// Exact-mode per-pc tables (trace mode, budget-near mode, mid-block
	// entry) reproducing the seed's per-instruction accounting.
	costAt   []uint16 // StaticCost of each instruction
	regionAt []int32
	setupAt  []bool
	entryAt  []int32
	instsAt  []uint8

	// Prefix sums (len+1 entries) for unwinding a block's pre-charge when
	// an instruction traps mid-block: costTo[i] = sum of costAt[0..i).
	costTo  []uint64
	xtraTo  []uint64
	instsTo []uint64
}

// buildPlan derives the execution plan from an immutable segment.
func buildPlan(seg *Segment) *execPlan {
	n := len(seg.Code)
	p := &execPlan{
		blockAt:  make([]int32, n),
		costAt:   make([]uint16, n),
		regionAt: make([]int32, n),
		setupAt:  make([]bool, n),
		entryAt:  make([]int32, n),
		instsAt:  make([]uint8, n),
		costTo:   make([]uint64, n+1),
		xtraTo:   make([]uint64, n+1),
		instsTo:  make([]uint64, n+1),
	}

	// Per-pc attribution, mirroring the seed's per-step re-derivation.
	for pc := range seg.Code {
		r, setup := int32(-1), false
		if seg.Stitched && seg.Region >= 0 {
			r = int32(seg.Region)
		} else if seg.RegionOf != nil && pc < len(seg.RegionOf) && seg.RegionOf[pc] >= 0 {
			r = int32(seg.RegionOf[pc])
			setup = seg.SetupOf != nil && pc < len(seg.SetupOf) && seg.SetupOf[pc]
		}
		p.regionAt[pc] = r
		p.setupAt[pc] = setup
		p.entryAt[pc] = -1
		in := &seg.Code[pc]
		p.costAt[pc] = uint16(StaticCost(in))
		p.instsAt[pc] = uint8(InstCount(in))
	}
	if seg.RegionEntry != nil {
		for pc, r := range seg.RegionEntry {
			if pc < n && r >= 0 {
				p.entryAt[pc] = r
			}
		}
	}

	// Prefix sums.
	for pc := 0; pc < n; pc++ {
		xtra := uint64(0)
		if in := &seg.Code[pc]; in.Op == LI && !FitsImm(in.Imm) {
			xtra = 1 // wide-constant penalty: machine cycles only
		}
		p.costTo[pc+1] = p.costTo[pc] + uint64(p.costAt[pc])
		p.xtraTo[pc+1] = p.xtraTo[pc] + xtra
		p.instsTo[pc+1] = p.instsTo[pc] + uint64(p.instsAt[pc])
	}

	// Block leaders: entry, branch targets, jump-table entries,
	// instructions after a control transfer, attribution changes and
	// region-entry markers.
	leader := make([]bool, n+1)
	if n > 0 {
		leader[0] = true
	}
	mark := func(pc int) {
		if pc >= 0 && pc <= n {
			leader[pc] = true
		}
	}
	for pc, in := range seg.Code {
		switch in.Op {
		case BEQZ, BNEZ, BEQI, CMPBR, CMPBRI:
			mark(in.Target)
			mark(pc + 1)
		case BR:
			mark(in.Target)
			mark(pc + 1)
		case JTBL, CALL, RET, XFER, HALT, DYNENTER, DYNSTITCH, GUARD:
			// GUARD's taken target is a parent-segment pc (like XFER's),
			// never a leader in this segment.
			mark(pc + 1)
		}
	}
	for _, tbl := range seg.JumpTables {
		for _, t := range tbl {
			mark(t)
		}
	}
	for pc := 1; pc < n; pc++ {
		if p.regionAt[pc] != p.regionAt[pc-1] || p.setupAt[pc] != p.setupAt[pc-1] {
			leader[pc] = true
		}
		if p.entryAt[pc] >= 0 {
			leader[pc] = true
		}
	}

	// Lay out blocks and sum their costs.
	for pc := 0; pc < n; {
		end := pc + 1
		for end < n && !leader[end] {
			end++
		}
		b := planBlock{
			start:  int32(pc),
			end:    int32(end),
			cost:   p.costTo[end] - p.costTo[pc],
			xtra:   p.xtraTo[end] - p.xtraTo[pc],
			insts:  p.instsTo[end] - p.instsTo[pc],
			region: p.regionAt[pc],
			setup:  p.setupAt[pc],
			entry:  p.entryAt[pc],
		}
		bi := int32(len(p.blocks))
		p.blocks = append(p.blocks, b)
		for i := pc; i < end; i++ {
			p.blockAt[i] = bi
		}
		pc = end
	}
	return p
}
