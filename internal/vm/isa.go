// Package vm implements the execution substrate: a 64-register RISC virtual
// machine with word-addressed memory and a per-opcode cycle cost model
// calibrated to the relative costs of the paper's target (a DEC Alpha
// 21064: slow integer multiply/divide, multi-cycle loads). Machine code for
// this VM plays the role of Alpha machine code: the static compiler emits
// templates of these instructions with holes, and the stitcher patches them
// into executable code segments at run time.
package vm

import "fmt"

// Reg is a machine register number.
type Reg uint8

// Register conventions.
const (
	RZero Reg = 0 // always zero
	RSP   Reg = 1 // stack pointer (word address; grows down)
	RRV   Reg = 2 // return value (survives RET)
	RA0   Reg = 3 // first argument register; RA0..RA5
	RA5   Reg = 8

	// RAllocFirst..RAllocLast are allocatable by the register allocator.
	RAllocFirst Reg = 9
	RAllocLast  Reg = 47

	RLCB      Reg = 48 // large-constant base (reserved for the stitcher)
	RScratch  Reg = 49 // stitcher scratch register
	RScratch2 Reg = 63 // second stitcher scratch (strength-reduction chains)

	// RTblBase is the generic-tier table base: an unspecialized (fallback)
	// segment receives the run-time constants table address in RScratch at
	// entry — exactly where DYNSTITCH leaves it — and immediately parks it
	// in RTblBase for the rest of the region execution. It aliases RLCB,
	// which is reserved for the stitcher and never live at run time (LDC
	// indexes the segment's constant table directly), so generic code can
	// never collide with template or stitched code.
	RTblBase = RLCB

	// RPromo0..RPromoLast are reserved for stitcher register actions
	// (run-time promotion of array elements to registers, paper section 5).
	RPromo0    Reg = 50
	RPromoLast Reg = 62

	NumRegs = 64
	NumArgs = 6
)

// Op is a VM opcode.
type Op uint8

// VM opcodes.
const (
	NOP Op = iota

	LI  // Rd = Imm
	MOV // Rd = Rs

	// Integer register-register ALU: Rd = Rs op Rt.
	ADD
	SUB
	MUL
	DIV  // signed; traps on zero divisor
	UDIV // unsigned
	MOD
	UMOD
	AND
	OR
	XOR
	SHL
	SHR  // arithmetic
	SHRU // logical
	SEQ
	SNE
	SLT
	SLE
	SLTU
	SLEU
	NEG // Rd = -Rs
	NOT // Rd = ^Rs

	// Integer register-immediate ALU: Rd = Rs op Imm.
	ADDI
	SUBI
	MULI
	DIVI
	UDIVI
	MODI
	UMODI
	ANDI
	ORI
	XORI
	SHLI
	SHRI
	SHRUI
	SEQI
	SNEI
	SLTI
	SLEI
	SLTUI
	SLEUI

	// Floating point (register words hold IEEE-754 bits).
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FEQ
	FNE
	FLT
	FLE
	ITOF
	FTOI

	// Memory.
	LD    // Rd = Mem[Rs + Imm]
	ST    // Mem[Rs + Imm] = Rt
	LDC   // Rd = segment's linearized constant table [Imm] (stitcher-emitted)
	ALLOC // Rd = heap-allocate Rs words (zeroed)

	// Control.
	BEQZ // if Rs == 0 goto Target
	BNEZ // if Rs != 0 goto Target
	BEQI // if Rs == Imm goto Target
	BR   // goto Target
	JTBL // indirect jump: pc = segment jump table[Imm][Rs]
	CALL // call function Imm (host builtins are negative indices)
	RET
	XFER // transfer to Target in the segment's parent (stitched-code exit)
	HALT

	// Dynamic-region runtime hooks.
	DYNENTER  // Imm = region index; dispatcher may transfer to stitched code
	DYNSTITCH // Imm = region index; stitch now, then transfer to stitched code

	// Fused superinstructions, produced only by the host-side fusion
	// pipeline (fuse.go). Each behaves exactly like the adjacent pair of
	// ordinary instructions it replaced and is charged the pair's modeled
	// cost, so guest-observable cycle and instruction counts are unchanged;
	// the win is one interpreter dispatch instead of two.
	CMPBR  // if (Rs cmp Rt) == (Rd != 0) goto Target; compare op in Sub
	CMPBRI // if (Rs cmp Imm) == (Rd != 0) goto Target; register-form compare op in Sub
	LDOP   // Rd = Rt subop Mem[Rs+Imm]; ALU op in Sub
	LDOPR  // Rd = Mem[Rs+Imm] subop Rt; ALU op in Sub
	MADDI  // Rd = Rt + Rs*Imm (fused MULI+ADD address arithmetic)

	// GUARD is a speculation check, synthesized only by the runtime when it
	// wraps stitched code for an automatically promoted region: if Rs != Imm
	// the speculated constant no longer matches the live value, so control
	// deoptimizes to Target in the segment's *parent* (the region's set-up
	// entry), after notifying the OnDeopt hook. Like XFER, its Target is a
	// parent-segment pc. The static compiler never emits it.
	GUARD

	numOps
)

var opNames = [numOps]string{
	NOP: "nop", LI: "li", MOV: "mov",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", UDIV: "udiv",
	MOD: "mod", UMOD: "umod", AND: "and", OR: "or", XOR: "xor",
	SHL: "shl", SHR: "shr", SHRU: "shru",
	SEQ: "seq", SNE: "sne", SLT: "slt", SLE: "sle", SLTU: "sltu", SLEU: "sleu",
	NEG: "neg", NOT: "not",
	ADDI: "addi", SUBI: "subi", MULI: "muli", DIVI: "divi", UDIVI: "udivi",
	MODI: "modi", UMODI: "umodi", ANDI: "andi", ORI: "ori", XORI: "xori",
	SHLI: "shli", SHRI: "shri", SHRUI: "shrui",
	SEQI: "seqi", SNEI: "snei", SLTI: "slti", SLEI: "slei", SLTUI: "sltui", SLEUI: "sleui",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FNEG: "fneg",
	FEQ: "feq", FNE: "fne", FLT: "flt", FLE: "fle",
	ITOF: "itof", FTOI: "ftoi",
	LD: "ld", ST: "st", LDC: "ldc", ALLOC: "alloc",
	BEQZ: "beqz", BNEZ: "bnez", BEQI: "beqi", BR: "br", JTBL: "jtbl",
	CALL: "call", RET: "ret", XFER: "xfer", HALT: "halt",
	DYNENTER: "dynenter", DYNSTITCH: "dynstitch",
	CMPBR: "cmpbr", CMPBRI: "cmpbri", LDOP: "ldop", LDOPR: "ldopr", MADDI: "maddi",
	GUARD: "guard",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", int(o))
}

// HasImmOperand reports whether the op's Imm field is a value immediate
// that a template hole may occupy (as opposed to an offset-only or id use).
func (o Op) HasImmOperand() bool {
	switch o {
	case LI, ADDI, SUBI, MULI, DIVI, UDIVI, MODI, UMODI,
		ANDI, ORI, XORI, SHLI, SHRI, SHRUI,
		SEQI, SNEI, SLTI, SLEI, SLTUI, SLEUI, BEQI:
		return true
	}
	return false
}

// RegToImmForm maps a register-register ALU op to its immediate form, or
// NOP if none exists.
func RegToImmForm(o Op) Op {
	switch o {
	case ADD:
		return ADDI
	case SUB:
		return SUBI
	case MUL:
		return MULI
	case DIV:
		return DIVI
	case UDIV:
		return UDIVI
	case MOD:
		return MODI
	case UMOD:
		return UMODI
	case AND:
		return ANDI
	case OR:
		return ORI
	case XOR:
		return XORI
	case SHL:
		return SHLI
	case SHR:
		return SHRI
	case SHRU:
		return SHRUI
	case SEQ:
		return SEQI
	case SNE:
		return SNEI
	case SLT:
		return SLTI
	case SLE:
		return SLEI
	case SLTU:
		return SLTUI
	case SLEU:
		return SLEUI
	}
	return NOP
}

// ImmToRegForm maps an immediate ALU op back to its register form.
func ImmToRegForm(o Op) Op {
	switch o {
	case ADDI:
		return ADD
	case SUBI:
		return SUB
	case MULI:
		return MUL
	case DIVI:
		return DIV
	case UDIVI:
		return UDIV
	case MODI:
		return MOD
	case UMODI:
		return UMOD
	case ANDI:
		return AND
	case ORI:
		return OR
	case XORI:
		return XOR
	case SHLI:
		return SHL
	case SHRI:
		return SHR
	case SHRUI:
		return SHRU
	case SEQI:
		return SEQ
	case SNEI:
		return SNE
	case SLTI:
		return SLT
	case SLEI:
		return SLE
	case SLTUI:
		return SLTU
	case SLEUI:
		return SLEU
	}
	return NOP
}

// Inst is one machine instruction.
//
// Sub, XCost and XInsts exist for the host-side fusion pipeline (fuse.go)
// and are zero everywhere else. Sub selects the folded second operation of
// a fused superinstruction. XCost/XInsts carry the modeled cycles and
// instruction count of instructions the pipeline eliminated (dead moves,
// threaded branches), absorbed into an instruction that executes exactly
// when the eliminated ones would have — keeping guest counters identical
// while the host executes fewer dispatches.
type Inst struct {
	Op     Op
	Rd     Reg
	Rs     Reg
	Rt     Reg
	Sub    Op    // fused sub-operation (CMPBR/CMPBRI/LDOP/LDOPR)
	XCost  uint8 // absorbed extra modeled cycles
	XInsts uint8 // absorbed extra modeled instruction count
	Imm    int64 // immediate value, memory offset, function or region index
	Target int   // branch target: instruction index within the segment
}

// String disassembles the instruction.
func (i Inst) String() string {
	r := func(x Reg) string { return fmt.Sprintf("r%d", x) }
	switch i.Op {
	case NOP, RET, HALT:
		return i.Op.String()
	case LI:
		return fmt.Sprintf("li %s, %d", r(i.Rd), i.Imm)
	case MOV, NEG, NOT, FNEG, ITOF, FTOI:
		return fmt.Sprintf("%s %s, %s", i.Op, r(i.Rd), r(i.Rs))
	case LD:
		return fmt.Sprintf("ld %s, [%s+%d]", r(i.Rd), r(i.Rs), i.Imm)
	case ST:
		return fmt.Sprintf("st [%s+%d], %s", r(i.Rs), i.Imm, r(i.Rt))
	case LDC:
		return fmt.Sprintf("ldc %s, [%d]", r(i.Rd), i.Imm)
	case ALLOC:
		return fmt.Sprintf("alloc %s, %s", r(i.Rd), r(i.Rs))
	case BEQZ, BNEZ:
		return fmt.Sprintf("%s %s, @%d", i.Op, r(i.Rs), i.Target)
	case BEQI:
		return fmt.Sprintf("beqi %s, %d, @%d", r(i.Rs), i.Imm, i.Target)
	case BR:
		return fmt.Sprintf("br @%d", i.Target)
	case JTBL:
		return fmt.Sprintf("jtbl %s, table%d", r(i.Rs), i.Imm)
	case XFER:
		return fmt.Sprintf("xfer @%d", i.Target)
	case GUARD:
		return fmt.Sprintf("guard %s, %d, @%d", r(i.Rs), i.Imm, i.Target)
	case CALL:
		return fmt.Sprintf("call f%d", i.Imm)
	case DYNENTER, DYNSTITCH:
		return fmt.Sprintf("%s region%d", i.Op, i.Imm)
	case CMPBR, CMPBRI:
		sense := "!"
		if i.Rd != 0 {
			sense = ""
		}
		if i.Op == CMPBRI {
			return fmt.Sprintf("cmpbri %s%s %s, %d, @%d", sense, i.Sub, r(i.Rs), i.Imm, i.Target)
		}
		return fmt.Sprintf("cmpbr %s%s %s, %s, @%d", sense, i.Sub, r(i.Rs), r(i.Rt), i.Target)
	case LDOP:
		return fmt.Sprintf("ldop.%s %s, %s, [%s+%d]", i.Sub, r(i.Rd), r(i.Rt), r(i.Rs), i.Imm)
	case LDOPR:
		return fmt.Sprintf("ldopr.%s %s, [%s+%d], %s", i.Sub, r(i.Rd), r(i.Rs), i.Imm, r(i.Rt))
	case MADDI:
		return fmt.Sprintf("maddi %s, %s*%d, %s", r(i.Rd), r(i.Rs), i.Imm, r(i.Rt))
	}
	if i.Op.HasImmOperand() {
		return fmt.Sprintf("%s %s, %s, %d", i.Op, r(i.Rd), r(i.Rs), i.Imm)
	}
	return fmt.Sprintf("%s %s, %s, %s", i.Op, r(i.Rd), r(i.Rs), r(i.Rt))
}

// ImmBits is the modeled width of machine immediate fields. Integer hole
// values outside this range cannot be patched directly; the stitcher
// rewrites the instruction to load from the linearized large-constant table
// (paper section 4).
const ImmBits = 16

// FitsImm reports whether v fits the modeled immediate field.
func FitsImm(v int64) bool {
	const lim = int64(1) << (ImmBits - 1)
	return v >= -lim && v < lim
}
