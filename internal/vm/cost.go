package vm

// Cycle cost model, mirroring the relative costs of the DEC Alpha 21064 the
// paper evaluated on: multi-cycle loads, slow integer multiply and very
// slow (software) integer divide. Absolute values are not calibrated — the
// paper's experiments depend only on relative costs (a load costs more than
// an ALU op; a multiply costs much more than a few shifts and adds).
const (
	CostALU    = 1  // moves, add/sub/logical/shift/compare
	CostMul    = 16 // integer multiply (the 21064's MULQ is ~23 cycles)
	CostDiv    = 35 // integer divide / modulus
	CostFAdd   = 4  // FP add/sub/mul and conversions
	CostFDiv   = 30 // FP divide
	CostLoad   = 3
	CostStore  = 2
	CostBranch = 1 // +CostTaken when taken
	CostJTBL   = 4 // jump-table dispatch (table load + indirect jump)
	CostTaken  = 1
	CostCall   = 4
	CostRet    = 4
	CostAlloc  = 10
	CostHook   = 2 // DYNENTER/DYNSTITCH dispatch check
)

// Cost returns the base cycle cost of executing op (branch-taken and
// oversized-immediate penalties are added by the interpreter).
func Cost(op Op) uint64 {
	switch op {
	case NOP:
		return 0
	case MUL, MULI:
		return CostMul
	case DIV, UDIV, MOD, UMOD, DIVI, UDIVI, MODI, UMODI:
		return CostDiv
	case FADD, FSUB, FMUL, FNEG, FEQ, FNE, FLT, FLE, ITOF, FTOI:
		return CostFAdd
	case FDIV:
		return CostFDiv
	case LD, LDC:
		return CostLoad
	case ST:
		return CostStore
	case BEQZ, BNEZ, BEQI, BR, XFER:
		return CostBranch
	case JTBL:
		return CostJTBL
	case CALL:
		return CostCall
	case RET:
		return CostRet
	case ALLOC:
		return CostAlloc
	case DYNENTER, DYNSTITCH:
		return CostHook
	default:
		return CostALU
	}
}
