package vm

// Cycle cost model, mirroring the relative costs of the DEC Alpha 21064 the
// paper evaluated on: multi-cycle loads, slow integer multiply and very
// slow (software) integer divide. Absolute values are not calibrated — the
// paper's experiments depend only on relative costs (a load costs more than
// an ALU op; a multiply costs much more than a few shifts and adds).
const (
	CostALU    = 1  // moves, add/sub/logical/shift/compare
	CostMul    = 16 // integer multiply (the 21064's MULQ is ~23 cycles)
	CostDiv    = 35 // integer divide / modulus
	CostFAdd   = 4  // FP add/sub/mul and conversions
	CostFDiv   = 30 // FP divide
	CostLoad   = 3
	CostStore  = 2
	CostBranch = 1 // +CostTaken when taken
	CostJTBL   = 4 // jump-table dispatch (table load + indirect jump)
	CostTaken  = 1
	CostCall   = 4
	CostRet    = 4
	CostAlloc  = 10
	CostHook   = 2 // DYNENTER/DYNSTITCH dispatch check
)

// Cost returns the base cycle cost of executing op (branch-taken and
// oversized-immediate penalties are added by the interpreter).
func Cost(op Op) uint64 {
	switch op {
	case NOP:
		return 0
	case MUL, MULI:
		return CostMul
	case DIV, UDIV, MOD, UMOD, DIVI, UDIVI, MODI, UMODI:
		return CostDiv
	case FADD, FSUB, FMUL, FNEG, FEQ, FNE, FLT, FLE, ITOF, FTOI:
		return CostFAdd
	case FDIV:
		return CostFDiv
	case LD, LDC:
		return CostLoad
	case ST:
		return CostStore
	case BEQZ, BNEZ, BEQI, BR, XFER, GUARD:
		return CostBranch
	case JTBL:
		return CostJTBL
	case CALL:
		return CostCall
	case RET:
		return CostRet
	case ALLOC:
		return CostAlloc
	case DYNENTER, DYNSTITCH:
		return CostHook
	case CMPBR, CMPBRI:
		return CostBranch // + Cost(Sub) for the folded compare; see StaticCost
	case LDOP, LDOPR:
		return CostLoad // + Cost(Sub) for the folded ALU op; see StaticCost
	case MADDI:
		return CostMul + CostALU // the MULI+ADD pair it replaces
	default:
		return CostALU
	}
}

// StaticCost returns the statically determinable modeled cycle cost of in:
// the base opcode cost, the folded sub-operation of a fused
// superinstruction, and cycles absorbed from host-eliminated instructions
// (XCost). Branch-taken and oversized-LI penalties remain dynamic.
func StaticCost(in *Inst) uint64 {
	c := Cost(in.Op) + uint64(in.XCost)
	switch in.Op {
	case CMPBR, CMPBRI, LDOP, LDOPR:
		c += Cost(in.Sub)
	}
	return c
}

// InstCount returns how many guest instructions in represents: fused
// superinstructions count as the pair they replaced, and XInsts carries
// host-eliminated instructions absorbed into this one.
func InstCount(in *Inst) uint64 {
	n := uint64(1) + uint64(in.XInsts)
	switch in.Op {
	case CMPBR, CMPBRI, LDOP, LDOPR, MADDI:
		n++
	}
	return n
}
