package vm

// Stitch-time superinstruction fusion.
//
// Fuse rewrites a finished code sequence — stitched output or a statically
// compiled function body — into a shorter one that executes fewer
// interpreter dispatches for the same guest-visible behaviour:
//
//   - copy propagation rewires readers of MOV copies to the source so the
//     copies die;
//   - dead pure register writes are removed, with their modeled cost and
//     instruction count absorbed into an adjacent instruction's XCost /
//     XInsts fields;
//   - adjacent pairs collapse into superinstructions: compare+branch
//     (CMPBR/CMPBRI), load+ALU (LDOP/LDOPR), multiply+add (MADDI), and
//     immediate-add chains;
//   - unconditional branch chains are threaded.
//
// The rewrite is modeled-cost neutral: every eliminated or folded
// instruction's static cycle cost and instruction count is carried by the
// survivor (StaticCost/InstCount), branch-taken and wide-LI penalties are
// preserved, and attribution never moves across a region or set-up
// boundary. Running the fused code therefore leaves Machine.Cycles,
// Machine.Insts and all per-region counters bit-identical to the unfused
// code. The one documented divergence is on error paths: when a fused
// load+op traps on its load, the pair's combined cost has already been
// charged where the seed would have charged the load alone.
type FuseOptions struct {
	// Per-pc attribution of the input code (nil: uniform, e.g. stitched
	// segments). Fusion never moves cost across an attribution change.
	RegionOf []int16
	SetupOf  []bool

	// Leaders are pcs that external references point at (labels, jump-table
	// entries, region exit arcs). They survive as instruction boundaries:
	// nothing is fused across them and PCMap tracks where they land. All
	// indirect-branch targets must be listed here.
	Leaders []int

	// EntryPCs are pcs carrying a region-invocation marker. Jump threading
	// never skips over one (the invocation count would be lost).
	EntryPCs []int
}

// FuseStats reports what the pipeline did.
type FuseStats struct {
	MovsEliminated     int // MOV copies removed by copy propagation
	DeadWritesAbsorbed int // other dead pure writes removed
	CmpBranchFused     int // compare+branch pairs -> CMPBR/CMPBRI
	LoadOpFused        int // load+ALU pairs -> LDOP/LDOPR
	MulAddFused        int // MULI+ADD pairs -> MADDI
	AddChainsFused     int // ADDI+ADDI chains collapsed
	BranchesThreaded   int // BR-to-BR jumps retargeted
	InstsBefore        int
	InstsAfter         int
}

// FuseResult is the rewritten code plus the bookkeeping the caller needs
// to relocate labels and attribution tables.
type FuseResult struct {
	Code []Inst

	// PCMap maps every input pc (plus one-past-the-end) to the output pc of
	// its instruction — or, when the instruction was eliminated, of the next
	// surviving instruction. Monotone, so label and table remapping is a
	// direct index.
	PCMap []int

	// Remapped attribution for the output code (nil if the input's was nil).
	RegionOf []int16
	SetupOf  []bool

	Stats FuseStats
}

const allRegs = ^uint64(0)

// fuser carries the pipeline state over one Fuse call.
type fuser struct {
	code     []Inst
	regionOf []int16
	setupOf  []bool
	leader   []bool // external leaders + control-flow leaders, current code
	extern   []bool // externally-referenced pcs only, current code
	entry    []bool // region-entry pcs, current code
	pcMap    []int  // original pc -> current pc
	stats    FuseStats
}

// Fuse runs the superinstruction pipeline over code and returns the
// rewritten sequence. The input slice is not modified.
func Fuse(code []Inst, opts FuseOptions) FuseResult {
	f := &fuser{
		code:  append([]Inst(nil), code...),
		pcMap: make([]int, len(code)+1),
	}
	for i := range f.pcMap {
		f.pcMap[i] = i
	}
	if opts.RegionOf != nil {
		f.regionOf = append([]int16(nil), opts.RegionOf...)
		for len(f.regionOf) < len(code) {
			f.regionOf = append(f.regionOf, -1)
		}
	}
	if opts.SetupOf != nil {
		f.setupOf = append([]bool(nil), opts.SetupOf...)
		for len(f.setupOf) < len(code) {
			f.setupOf = append(f.setupOf, false)
		}
	}
	f.extern = make([]bool, len(code)+1)
	for _, pc := range opts.Leaders {
		if pc >= 0 && pc <= len(code) {
			f.extern[pc] = true
		}
	}
	f.entry = make([]bool, len(code)+1)
	for _, pc := range opts.EntryPCs {
		if pc >= 0 && pc <= len(code) {
			f.entry[pc] = true
		}
	}
	f.stats.InstsBefore = len(code)

	f.computeLeaders()
	f.copyProp()
	kill := f.deadWrites()
	f.compact(kill)

	f.computeLeaders()
	kill = f.fusePairs()
	f.compact(kill)

	f.computeLeaders()
	f.threadJumps()

	f.stats.InstsAfter = len(f.code)
	return FuseResult{
		Code:     f.code,
		PCMap:    f.pcMap,
		RegionOf: f.regionOf,
		SetupOf:  f.setupOf,
		Stats:    f.stats,
	}
}

// sameAttr reports whether pcs a and b share cycle attribution, i.e.
// modeled cost may move between them.
func (f *fuser) sameAttr(a, b int) bool {
	ra, rb := int16(-1), int16(-1)
	if f.regionOf != nil {
		ra, rb = f.regionOf[a], f.regionOf[b]
	}
	if ra != rb {
		return false
	}
	sa, sb := false, false
	if f.setupOf != nil {
		sa, sb = f.setupOf[a], f.setupOf[b]
	}
	return sa == sb
}

// isControl reports whether in ends a straight-line run.
func isControl(op Op) bool {
	switch op {
	case BEQZ, BNEZ, BEQI, BR, CMPBR, CMPBRI, JTBL, CALL, RET, XFER, HALT,
		DYNENTER, DYNSTITCH, GUARD:
		return true
	}
	return false
}

// isBarrier reports whether op may read or write arbitrary registers or
// leave the segment (call, hook dispatch, indirect or inter-segment jump).
func isBarrier(op Op) bool {
	switch op {
	case JTBL, CALL, RET, XFER, HALT, DYNENTER, DYNSTITCH, GUARD:
		return true
	}
	return false
}

// computeLeaders rebuilds the leader set for the current code: external
// references, branch targets, fall-throughs after control transfers,
// attribution changes and entry markers.
func (f *fuser) computeLeaders() {
	n := len(f.code)
	f.leader = make([]bool, n+1)
	mark := func(pc int) {
		if pc >= 0 && pc <= n {
			f.leader[pc] = true
		}
	}
	if n > 0 {
		mark(0)
	}
	for pc := range f.extern {
		if f.extern[pc] || f.entry[pc] {
			mark(pc)
		}
	}
	for pc, in := range f.code {
		switch in.Op {
		case BEQZ, BNEZ, BEQI, BR, CMPBR, CMPBRI:
			mark(in.Target)
			mark(pc + 1)
		case JTBL, CALL, RET, XFER, HALT, DYNENTER, DYNSTITCH:
			mark(pc + 1)
		}
	}
	for pc := 1; pc < n; pc++ {
		if !f.sameAttr(pc-1, pc) {
			f.leader[pc] = true
		}
	}
}

// readSet returns the bitmask of registers in reads explicitly.
func readSet(in *Inst) uint64 {
	bit := func(r Reg) uint64 { return uint64(1) << (r & 63) }
	switch in.Op {
	case LI, LDC, BR, RET, XFER, NOP, HALT:
		return 0
	case JTBL:
		return bit(in.Rs)
	case ST:
		return bit(in.Rs) | bit(in.Rt)
	case BEQZ, BNEZ, BEQI, CMPBRI:
		return bit(in.Rs)
	case MOV, NEG, NOT, FNEG, ITOF, FTOI, LD, ALLOC:
		return bit(in.Rs)
	case CMPBR, LDOP, LDOPR, MADDI:
		return bit(in.Rs) | bit(in.Rt)
	case CALL, DYNENTER, DYNSTITCH:
		return allRegs
	}
	if in.Op.HasImmOperand() {
		return bit(in.Rs)
	}
	return bit(in.Rs) | bit(in.Rt)
}

// writesRd reports whether in writes its Rd field.
func writesRd(in *Inst) bool {
	switch in.Op {
	case ST, BEQZ, BNEZ, BEQI, BR, RET, XFER, NOP, HALT, JTBL,
		CMPBR, CMPBRI, CALL, DYNENTER, DYNSTITCH:
		return false
	}
	return true
}

// pureWrite reports whether in's only effect is writing Rd (no traps, no
// memory access, no dynamic cycle penalties beyond its static cost).
// Oversized-LI constants are excluded: their +1 materialization penalty is
// charged dynamically and would be lost with the instruction.
func pureWrite(in *Inst) bool {
	switch in.Op {
	case LI:
		return FitsImm(in.Imm)
	case MOV, NEG, NOT, FNEG, ITOF, FTOI,
		ADD, SUB, MUL, AND, OR, XOR, SHL, SHR, SHRU,
		SEQ, SNE, SLT, SLE, SLTU, SLEU,
		ADDI, SUBI, MULI, ANDI, ORI, XORI, SHLI, SHRI, SHRUI,
		SEQI, SNEI, SLTI, SLEI, SLTUI, SLEUI,
		FADD, FSUB, FMUL, MADDI:
		return true
	}
	return false
}

// copyProp rewires readers of MOV copies to read the source register
// directly, within basic blocks. The MOVs themselves are left in place for
// the dead-write pass to absorb (implicit readers — hook dispatch, calls —
// keep them live where they matter).
func (f *fuser) copyProp() {
	var src [NumRegs]Reg // src[d] = s when Regs[d] == Regs[s] holds; d when not
	reset := func() {
		for i := range src {
			src[i] = Reg(i)
		}
	}
	invalidate := func(d Reg) {
		src[d] = d
		for i := range src {
			if src[i] == d {
				src[i] = Reg(i)
			}
		}
	}
	reset()
	for pc := range f.code {
		if f.leader[pc] {
			reset()
		}
		in := &f.code[pc]
		if isBarrier(in.Op) {
			reset()
			continue
		}
		// Rewrite explicit reads to the tracked source.
		switch in.Op {
		case LI, LDC, BR, NOP:
			// no register reads
		case ST:
			in.Rs, in.Rt = src[in.Rs], src[in.Rt]
		case BEQZ, BNEZ, BEQI:
			in.Rs = src[in.Rs]
		case MOV, NEG, NOT, FNEG, ITOF, FTOI, LD, ALLOC:
			in.Rs = src[in.Rs]
		default:
			if in.Op.HasImmOperand() {
				in.Rs = src[in.Rs]
			} else {
				in.Rs, in.Rt = src[in.Rs], src[in.Rt]
			}
		}
		if writesRd(in) && in.Rd != RZero {
			if in.Op == MOV && in.Rs != in.Rd {
				invalidate(in.Rd)
				src[in.Rd] = in.Rs
			} else {
				invalidate(in.Rd)
			}
		}
	}
}

// liveness computes, for every pc, the set of registers live after the
// instruction executes (block-level backward fixpoint, conservative at
// barriers and segment exits).
func (f *fuser) liveness() []uint64 {
	n := len(f.code)
	liveOut := make([]uint64, n)
	if n == 0 {
		return liveOut
	}
	// Block starts, in order.
	var starts []int
	for pc := 0; pc <= n; pc++ {
		if pc < n && f.leader[pc] {
			starts = append(starts, pc)
		}
	}
	liveIn := make(map[int]uint64, len(starts)) // block start -> live-in
	inAt := func(pc int) uint64 {
		if pc < 0 || pc >= n {
			return allRegs
		}
		if f.leader[pc] {
			return liveIn[pc]
		}
		return allRegs // not a block start: only reachable by fallthrough
	}
	// Transfer over a single instruction.
	step := func(in *Inst, after uint64) uint64 {
		if in.Op == RET {
			// CALL snapshots the whole register file and RET restores
			// it: only the return value survives into the caller.
			return uint64(1) << RRV
		}
		if isBarrier(in.Op) {
			return allRegs
		}
		live := after
		if writesRd(in) && in.Rd != RZero {
			live &^= uint64(1) << (in.Rd & 63)
		}
		return live | readSet(in)
	}
	for changed := true; changed; {
		changed = false
		for bi := len(starts) - 1; bi >= 0; bi-- {
			start := starts[bi]
			end := start + 1
			for end < n && !f.leader[end] {
				end++
			}
			// Live-out of the block's last instruction.
			last := &f.code[end-1]
			var out uint64
			switch last.Op {
			case BR:
				out = inAt(last.Target)
			case BEQZ, BNEZ, BEQI, CMPBR, CMPBRI:
				out = inAt(last.Target) | inAt(end)
			case RET:
				out = 0 // step yields {RRV}; nothing else outlives the frame restore
			case HALT, XFER, JTBL, CALL, DYNENTER, DYNSTITCH:
				out = allRegs
			default:
				out = inAt(end)
			}
			live := out
			for pc := end - 1; pc >= start; pc-- {
				liveOut[pc] = live
				live = step(&f.code[pc], live)
			}
			if liveIn[start] != live {
				liveIn[start] = live
				changed = true
			}
		}
	}
	return liveOut
}

// absorb folds StaticCost(victim)/InstCount(victim) into host's XCost /
// XInsts, returning false when the 8-bit absorbers would overflow.
func absorb(host, victim *Inst) bool {
	c, n := StaticCost(victim), InstCount(victim)
	if uint64(host.XCost)+c > 255 || uint64(host.XInsts)+n > 255 {
		return false
	}
	host.XCost += uint8(c)
	host.XInsts += uint8(n)
	return true
}

// deadWrites marks pure register writes whose destination is dead for
// removal, absorbing each one's modeled cost into an adjacent instruction
// that executes exactly when it would have. NOPs are absorbed the same way
// (zero cost, one instruction of count).
func (f *fuser) deadWrites() []bool {
	n := len(f.code)
	kill := make([]bool, n)
	liveOut := f.liveness()
	for pc := 0; pc < n; pc++ {
		in := &f.code[pc]
		dead := in.Op == NOP && !isControl(in.Op)
		if !dead {
			if !pureWrite(in) {
				continue
			}
			if in.Rd != RZero && liveOut[pc]&(uint64(1)<<(in.Rd&63)) != 0 {
				continue
			}
			dead = true
		}
		// Find the absorber: forward into pc+1 when no other path enters
		// there, else backward into pc-1 when no other path enters at pc.
		var host *Inst
		if pc+1 < n && !f.leader[pc+1] && !kill[pc+1] && f.sameAttr(pc, pc+1) {
			host = &f.code[pc+1]
		} else if pc > 0 && !f.leader[pc] && !kill[pc-1] && f.sameAttr(pc-1, pc) {
			host = &f.code[pc-1]
		}
		if host == nil || !absorb(host, in) {
			continue
		}
		kill[pc] = true
		if in.Op == MOV {
			f.stats.MovsEliminated++
		} else if in.Op != NOP {
			f.stats.DeadWritesAbsorbed++
		}
	}
	return kill
}

// compact removes killed slots, remapping branch targets, attribution
// tables, the external reference sets and the cumulative PCMap. XFER
// targets point into the parent segment and are never touched.
func (f *fuser) compact(kill []bool) {
	n := len(f.code)
	newpc := make([]int, n+1)
	j := 0
	for pc := 0; pc < n; pc++ {
		newpc[pc] = j
		if !kill[pc] {
			j++
		}
	}
	newpc[n] = j
	if j == n {
		return // nothing killed
	}
	code := make([]Inst, 0, j)
	var regionOf []int16
	var setupOf []bool
	extern := make([]bool, j+1)
	entry := make([]bool, j+1)
	for pc := 0; pc < n; pc++ {
		if f.extern[pc] {
			extern[newpc[pc]] = true
		}
		if f.entry[pc] {
			entry[newpc[pc]] = true
		}
		if kill[pc] {
			continue
		}
		in := f.code[pc]
		switch in.Op {
		case BEQZ, BNEZ, BEQI, BR, CMPBR, CMPBRI:
			if in.Target >= 0 && in.Target <= n {
				in.Target = newpc[in.Target]
			}
		}
		code = append(code, in)
		if f.regionOf != nil {
			regionOf = append(regionOf, f.regionOf[pc])
		}
		if f.setupOf != nil {
			setupOf = append(setupOf, f.setupOf[pc])
		}
	}
	if f.extern[n] {
		extern[j] = true
	}
	if f.entry[n] {
		entry[j] = true
	}
	for i := range f.pcMap {
		f.pcMap[i] = newpc[f.pcMap[i]]
	}
	f.code = code
	f.regionOf = regionOf
	f.setupOf = setupOf
	f.extern = extern
	f.entry = entry
}

// cmpSub returns the reg-form compare sub-op for a fusable compare, the
// immediate flag, and ok.
func cmpSub(op Op) (sub Op, imm bool, ok bool) {
	switch op {
	case SEQ, SNE, SLT, SLE, SLTU, SLEU, FEQ, FNE, FLT, FLE:
		return op, false, true
	case SEQI, SNEI, SLTI, SLEI, SLTUI, SLEUI:
		return ImmToRegForm(op), true, true
	}
	return 0, false, false
}

// ldSub reports whether op is a reg-form ALU op foldable into LDOP/LDOPR
// (trap-free: divide and modulus are excluded to keep trap pcs exact).
func ldSub(op Op) bool {
	switch op {
	case ADD, SUB, MUL, AND, OR, XOR, SHL, SHR, SHRU,
		SEQ, SNE, SLT, SLE, SLTU, SLEU, FADD, FSUB, FMUL:
		return true
	}
	return false
}

// fusePairs collapses adjacent instruction pairs into superinstructions.
// A pair fuses only when the second slot has no other predecessors, both
// halves share attribution, and the intermediate register dies with the
// pair.
func (f *fuser) fusePairs() []bool {
	n := len(f.code)
	kill := make([]bool, n)
	liveOut := f.liveness()
	for pc := 0; pc+1 < n; pc++ {
		if kill[pc] || f.leader[pc+1] || !f.sameAttr(pc, pc+1) {
			continue
		}
		a, b := &f.code[pc], &f.code[pc+1]
		deadAfter := func(t Reg) bool {
			if writesRd(b) && b.Rd == t {
				return true
			}
			return liveOut[pc+1]&(uint64(1)<<(t&63)) == 0
		}
		var fused Inst
		var counter *int
		switch {
		// compare + branch-on-zero -> CMPBR / CMPBRI
		case (b.Op == BEQZ || b.Op == BNEZ) && writesRd(a) && a.Rd != RZero &&
			b.Rs == a.Rd && liveOut[pc+1]&(uint64(1)<<(a.Rd&63)) == 0:
			sub, imm, ok := cmpSub(a.Op)
			if !ok {
				continue
			}
			sense := Reg(0)
			if b.Op == BNEZ {
				sense = 1
			}
			fused = Inst{Op: CMPBR, Rd: sense, Rs: a.Rs, Rt: a.Rt, Sub: sub, Target: b.Target}
			if imm {
				fused.Op = CMPBRI
				fused.Rt = 0
				fused.Imm = a.Imm
			}
			counter = &f.stats.CmpBranchFused

		// load + ALU over the loaded value -> LDOP / LDOPR
		case a.Op == LD && a.Rd != RZero && ldSub(b.Op) &&
			(b.Rs == a.Rd) != (b.Rt == a.Rd) && deadAfter(a.Rd):
			t := a.Rd
			fused = Inst{Op: LDOP, Rd: b.Rd, Rs: a.Rs, Sub: b.Op, Imm: a.Imm}
			if b.Rs == t {
				fused.Op = LDOPR // Mem[addr] op Regs[Rt]
				fused.Rt = b.Rt
			} else {
				fused.Rt = b.Rs // Regs[Rt] op Mem[addr]
			}
			counter = &f.stats.LoadOpFused

		// multiply-by-constant + add -> MADDI
		case a.Op == MULI && a.Rd != RZero && b.Op == ADD &&
			(b.Rs == a.Rd) != (b.Rt == a.Rd) && deadAfter(a.Rd):
			other := b.Rs
			if b.Rs == a.Rd {
				other = b.Rt
			}
			fused = Inst{Op: MADDI, Rd: b.Rd, Rs: a.Rs, Rt: other, Imm: a.Imm}
			counter = &f.stats.MulAddFused

		// immediate-add chain -> single ADDI (cost of both absorbed)
		case a.Op == ADDI && a.Rd != RZero && b.Op == ADDI && b.Rs == a.Rd &&
			deadAfter(a.Rd) && FitsImm(a.Imm+b.Imm):
			fused = Inst{Op: ADDI, Rd: b.Rd, Rs: a.Rs, Imm: a.Imm + b.Imm, XCost: 1, XInsts: 1}
			counter = &f.stats.AddChainsFused

		default:
			continue
		}
		// Carry both halves' absorbed cost and count.
		xc := uint64(fused.XCost) + uint64(a.XCost) + uint64(b.XCost)
		xn := uint64(fused.XInsts) + uint64(a.XInsts) + uint64(b.XInsts)
		if xc > 255 || xn > 255 {
			continue
		}
		fused.XCost = uint8(xc)
		fused.XInsts = uint8(xn)
		f.code[pc] = fused
		kill[pc+1] = true
		*counter++
		pc++ // the killed slot cannot start another pair
	}
	return kill
}

// threadJumps retargets BR instructions that land on another BR, absorbing
// the skipped branch's static cost and taken penalty. Only unconditional
// chains thread (the absorbed cost is charged on every execution), and
// never through a region-entry marker or a parked self-branch.
func (f *fuser) threadJumps() {
	for pass := 0; pass < 4; pass++ {
		changed := false
		for pc := range f.code {
			in := &f.code[pc]
			if in.Op != BR || in.Target == pc {
				continue
			}
			t := in.Target
			if t < 0 || t >= len(f.code) || f.entry[t] {
				continue
			}
			inner := &f.code[t]
			if inner.Op != BR || inner.Target == t {
				continue
			}
			if !f.sameAttr(pc, t) {
				continue
			}
			// Absorb: inner BR's static cost plus its taken penalty.
			xc := uint64(in.XCost) + uint64(CostBranch+CostTaken) + uint64(inner.XCost)
			xn := uint64(in.XInsts) + 1 + uint64(inner.XInsts)
			if xc > 255 || xn > 255 {
				continue
			}
			in.XCost = uint8(xc)
			in.XInsts = uint8(xn)
			in.Target = inner.Target
			f.stats.BranchesThreaded++
			changed = true
		}
		if !changed {
			break
		}
	}
}
