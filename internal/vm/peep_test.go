package vm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeadWriteNopsBasics(t *testing.T) {
	code := []Inst{
		{Op: LI, Rd: 12, Imm: 5}, // dead: r12 redefined before read
		{Op: LI, Rd: 12, Imm: 7}, // live
		{Op: MOV, Rd: RRV, Rs: 12},
		{Op: RET},
	}
	n := DeadWriteNops(code)
	if n != 1 || code[0].Op != NOP {
		t.Errorf("removed %d, code[0]=%v", n, code[0])
	}
	if code[1].Op != LI || code[1].Imm != 7 {
		t.Error("live write removed")
	}
}

func TestDeadWriteNopsRespectsBranches(t *testing.T) {
	// r12's redefinition is after a branch target: another path might read
	// it, so the first write must stay.
	code := []Inst{
		{Op: LI, Rd: 12, Imm: 5},
		{Op: BEQZ, Rs: 13, Target: 3},
		{Op: LI, Rd: 12, Imm: 7},
		{Op: MOV, Rd: RRV, Rs: 12}, // branch target: reads r12
		{Op: RET},
	}
	if n := DeadWriteNops(code); n != 0 {
		t.Errorf("removed %d across a branch target", n)
	}
}

func TestDeadWriteNopsKeepsSideEffects(t *testing.T) {
	code := []Inst{
		{Op: LD, Rd: 12, Rs: 0, Imm: 5}, // load: may fault, never removed
		{Op: LI, Rd: 12, Imm: 7},
		{Op: MOV, Rd: RRV, Rs: 12},
		{Op: RET},
	}
	if n := DeadWriteNops(code); n != 0 {
		t.Errorf("removed a load (%d)", n)
	}
	code = []Inst{
		{Op: ST, Rs: 0, Imm: 5, Rt: 12}, // store: never removed
		{Op: RET},
	}
	if n := DeadWriteNops(code); n != 0 {
		t.Error("removed a store")
	}
}

func TestDeadWriteNopsStopsAtCalls(t *testing.T) {
	code := []Inst{
		{Op: LI, Rd: 12, Imm: 5},
		{Op: CALL, Imm: 0}, // conservatively reads everything
		{Op: LI, Rd: 12, Imm: 7},
		{Op: MOV, Rd: RRV, Rs: 12},
		{Op: RET},
	}
	if n := DeadWriteNops(code); n != 0 {
		t.Errorf("removed %d across a call", n)
	}
}

// Property: on random straight-line ALU code, DeadWriteNops preserves the
// final value of every register that is still read afterwards — checked by
// executing original and cleaned code on the same machine state.
func TestDeadWriteNopsSemanticsProperty(t *testing.T) {
	ops := []Op{LI, MOV, ADD, SUB, MUL, AND, OR, XOR, ADDI, SUBI, ANDI}
	gen := func(r *rand.Rand, n int) []Inst {
		code := make([]Inst, 0, n+2)
		reg := func() Reg { return Reg(12 + r.Intn(6)) }
		for i := 0; i < n; i++ {
			op := ops[r.Intn(len(ops))]
			in := Inst{Op: op, Rd: reg(), Rs: reg(), Rt: reg(),
				Imm: int64(r.Intn(100) - 50)}
			code = append(code, in)
		}
		// Fold every register into the result so "read afterwards" is
		// well-defined for r12..r17.
		code = append(code,
			Inst{Op: ADD, Rd: RRV, Rs: 12, Rt: 13},
			Inst{Op: ADD, Rd: RRV, Rs: RRV, Rt: 14},
			Inst{Op: ADD, Rd: RRV, Rs: RRV, Rt: 15},
			Inst{Op: ADD, Rd: RRV, Rs: RRV, Rt: 16},
			Inst{Op: ADD, Rd: RRV, Rs: RRV, Rt: 17},
			Inst{Op: RET})
		return code
	}
	exec := func(code []Inst) int64 {
		prog := &Program{
			Segs:      []*Segment{{Name: "t", Code: code, Region: -1}},
			FuncIndex: map[string]int{"t": 0},
		}
		m := NewMachine(prog, 1<<12)
		for i := Reg(12); i <= 17; i++ {
			m.Regs[i] = int64(i) * 11
		}
		v, err := m.Call("t")
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		orig := gen(r, 3+r.Intn(20))
		want := exec(orig)
		cleaned := make([]Inst, len(orig))
		copy(cleaned, orig)
		DeadWriteNops(cleaned)
		return exec(cleaned) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFitsImm(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 32767, -32768} {
		if !FitsImm(v) {
			t.Errorf("%d should fit", v)
		}
	}
	for _, v := range []int64{32768, -32769, 1 << 40, -(1 << 40)} {
		if FitsImm(v) {
			t.Errorf("%d should not fit", v)
		}
	}
}

func TestImmFormRoundTrip(t *testing.T) {
	for op := ADD; op <= SLEU; op++ {
		imm := RegToImmForm(op)
		if imm == NOP {
			continue
		}
		if back := ImmToRegForm(imm); back != op {
			t.Errorf("%s -> %s -> %s", op, imm, back)
		}
	}
}
