package vm

import (
	"fmt"
	"sync/atomic"
	"unsafe"
)

// Segment is an executable sequence of instructions: either a compiled
// function or a run-time stitched code segment belonging to a function.
//
// A Segment's Code and metadata must not be mutated once a Machine has run
// it (or Prepare has been called): the interpreter caches a derived
// execution plan on the segment.
type Segment struct {
	Name      string
	Code      []Inst
	Consts    []int64  // linearized large-constant table (stitched segments)
	Parent    *Segment // owning function, for stitched segments
	Region    int      // region index this segment belongs to, or -1
	Stitched  bool
	FrameSize int // words of stack frame (function segments)
	NumParams int

	// JumpTables holds indirect-branch targets for JTBL instructions.
	JumpTables [][]int

	// Static-build instrumentation: per-pc region attribution.
	RegionOf []int16 // region index at each pc, or -1
	SetupOf  []bool  // pc belongs to set-up code (overhead, not execution)

	// RegionEntry counts region invocations in statically compiled code:
	// RegionEntry[pc] >= 0 names the region whose invocation count is
	// incremented each time pc executes. Nil when the segment has none.
	RegionEntry []int32

	// plan caches the derived execution plan (attribution + block costs),
	// built once per segment and shared by all machines running it.
	plan atomic.Pointer[execPlan]
}

// Prepare eagerly builds the segment's execution plan. Install paths
// (codegen, stitcher) call it so the derivation cost is paid at compile or
// stitch time rather than on a machine's first execution; segments built
// by hand get the plan lazily on first run.
func (s *Segment) Prepare() { s.execPlan() }

func (s *Segment) execPlan() *execPlan {
	if p := s.plan.Load(); p != nil {
		return p
	}
	// Benign race: concurrent first runs may build duplicate plans; the
	// plan is a pure function of the (immutable) segment, so any winner
	// is correct.
	p := buildPlan(s)
	s.plan.Store(p)
	return p
}

// MemFootprint returns the approximate resident size of the segment's code
// and tables in bytes. The runtime's stitch cache uses it to enforce
// CacheOptions.MaxCodeBytes; it deliberately excludes the lazily built
// execution plan (plan size is proportional to code size, so the bound
// still scales correctly).
func (s *Segment) MemFootprint() int {
	n := len(s.Code) * int(unsafe.Sizeof(Inst{}))
	n += len(s.Consts) * 8
	for _, t := range s.JumpTables {
		n += len(t) * 8
	}
	n += len(s.RegionOf)*2 + len(s.SetupOf) + len(s.RegionEntry)*4
	return n
}

// Disasm renders the segment as assembly.
func (s *Segment) Disasm() string {
	out := ""
	for i, in := range s.Code {
		out += fmt.Sprintf("%4d: %s\n", i, in)
	}
	return out
}

// Program is a complete executable image.
type Program struct {
	Segs        []*Segment // function segments; index = function id
	FuncIndex   map[string]int
	GlobalInit  []int64 // initial globals image (GlobalWords long)
	GlobalWords int
	NumRegions  int
}

// FuncID returns the function index for name, or -1.
func (p *Program) FuncID(name string) int {
	if i, ok := p.FuncIndex[name]; ok {
		return i
	}
	return -1
}

// Builtin host functions callable via CALL with negative indices
// (id i is encoded as Imm = -(i+1)).
var BuiltinNames = []string{
	"print_int", "print_float", "print_str", "alloc",
	"abs", "min", "max", "cos", "sin", "sqrt",
}

// BuiltinIndex maps builtin names to their ids.
var BuiltinIndex = func() map[string]int {
	m := map[string]int{}
	for i, n := range BuiltinNames {
		m[n] = i
	}
	return m
}()
