package vm

import (
	"fmt"
	"io"
	"math"
)

// RegionCounters accumulates per-region measurements: everything the
// paper's Table 2 needs.
type RegionCounters struct {
	Invocations   uint64
	ExecCycles    uint64 // cycles in region code (stitched or static)
	SetupCycles   uint64 // cycles in set-up code (dynamic-compile overhead)
	StitchCycles  uint64 // modeled stitcher cost (added by the runtime)
	StitchedInsts uint64 // instructions emitted by the stitcher
	Compiles      uint64 // distinct stitched versions produced
}

// Overhead returns the total dynamic-compilation overhead in cycles.
func (rc *RegionCounters) Overhead() uint64 { return rc.SetupCycles + rc.StitchCycles }

// Machine executes a Program.
//
// Concurrency contract: a Machine is single-goroutine — its registers,
// memory, frames and counters must only be touched by the goroutine
// driving Call/Run. Many machines may execute the same Program
// concurrently, each on its own goroutine; the runtime hooks below are
// then invoked concurrently from different machines, so hook
// implementations must be safe for cross-machine concurrency (per-machine
// state they close over needs no locking, shared state does).
type Machine struct {
	Prog *Program
	Mem  []int64
	Regs [NumRegs]int64

	Cycles  uint64
	Insts   uint64
	regions []RegionCounters

	// MaxCycles aborts runaway executions.
	MaxCycles uint64

	Output io.Writer

	// Trace, when non-nil, receives one line per executed instruction
	// (segment, pc, disassembly, input register values).
	Trace io.Writer

	// Runtime hooks for dynamic regions (wired by the rtr package).
	// A non-nil segment is entered at pc 0 (stitched segments always
	// begin at their entry). Returning a nil segment from OnDynEnter
	// means "not compiled yet": control falls through into the inline
	// set-up code, which ends in DYNSTITCH. OnDynStitch must return a
	// segment (the freshly stitched code) or an error.
	OnDynEnter  func(m *Machine, region int) (*Segment, error)
	OnDynStitch func(m *Machine, region int) (*Segment, error)

	// OnReset is called by Reset: the runtime invalidates this machine's
	// stitched-code cache (the memory holding its tables is being wiped).
	OnReset func(m *Machine)

	hp     int64 // heap pointer (bump allocator)
	frames []frame
}

type frame struct {
	regs [NumRegs]int64
	seg  *Segment
	pc   int
}

// NewMachine creates a machine with the given memory size in words
// (0 picks a 4M-word default).
func NewMachine(p *Program, memWords int) *Machine {
	if memWords <= 0 {
		memWords = 1 << 22
	}
	m := &Machine{
		Prog:      p,
		Mem:       make([]int64, memWords),
		MaxCycles: 200e9,
		regions:   make([]RegionCounters, p.NumRegions),
	}
	m.Reset()
	return m
}

// Reset restores the initial memory image and clears registers. Region
// counters are preserved; use ResetCounters to clear them.
func (m *Machine) Reset() {
	if m.OnReset != nil {
		m.OnReset(m)
	}
	for i := range m.Mem {
		m.Mem[i] = 0
	}
	copy(m.Mem, m.Prog.GlobalInit)
	m.hp = int64(m.Prog.GlobalWords)
	m.Regs = [NumRegs]int64{}
	m.Regs[RSP] = int64(len(m.Mem))
	m.frames = m.frames[:0]
}

// ResetCounters zeroes cycle counts and region statistics.
func (m *Machine) ResetCounters() {
	m.Cycles, m.Insts = 0, 0
	for i := range m.regions {
		m.regions[i] = RegionCounters{}
	}
}

// Region returns the counters for region index r.
func (m *Machine) Region(r int) *RegionCounters {
	for r >= len(m.regions) {
		m.regions = append(m.regions, RegionCounters{})
	}
	return &m.regions[r]
}

// Alloc reserves n zeroed words on the heap and returns their address.
// It is exported so harness code can build input data structures directly.
func (m *Machine) Alloc(n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("vm: alloc of negative size %d", n)
	}
	a := m.hp
	m.hp += n
	if m.hp > m.Regs[RSP] {
		return 0, fmt.Errorf("vm: heap (%d) collided with stack (%d)", m.hp, m.Regs[RSP])
	}
	return a, nil
}

type vmError struct {
	seg *Segment
	pc  int
	msg string
}

func (e *vmError) Error() string {
	return fmt.Sprintf("vm: %s at %s+%d", e.msg, e.seg.Name, e.pc)
}

// Call runs function name with the given arguments and returns RRV.
func (m *Machine) Call(name string, args ...int64) (int64, error) {
	id := m.Prog.FuncID(name)
	if id < 0 {
		return 0, fmt.Errorf("vm: no function %q", name)
	}
	if len(args) > NumArgs {
		return 0, fmt.Errorf("vm: too many arguments (%d > %d)", len(args), NumArgs)
	}
	for i, a := range args {
		m.Regs[RA0+Reg(i)] = a
	}
	// A top-level call behaves like a register window too: the stack
	// pointer (and everything else except the result) is restored, so
	// repeated calls do not leak stack space.
	saved := m.Regs
	v, err := m.run(m.Prog.Segs[id])
	rv := m.Regs[RRV]
	m.Regs = saved
	m.Regs[RRV] = rv
	return v, err
}

// CallF is Call for a float argument list and float result.
func (m *Machine) CallF(name string, args ...float64) (float64, error) {
	ia := make([]int64, len(args))
	for i, a := range args {
		ia[i] = int64(math.Float64bits(a))
	}
	r, err := m.Call(name, ia...)
	return math.Float64frombits(uint64(r)), err
}

func (m *Machine) run(seg *Segment) (int64, error) {
	pc := 0
	baseFrames := len(m.frames)
	fail := func(format string, args ...any) (int64, error) {
		return 0, &vmError{seg: seg, pc: pc, msg: fmt.Sprintf(format, args...)}
	}

	for {
		if pc < 0 || pc >= len(seg.Code) {
			return fail("pc out of range (%d/%d)", pc, len(seg.Code))
		}
		in := &seg.Code[pc]
		c := Cost(in.Op)

		// Attribute cycles.
		m.Insts++
		if seg.Stitched && seg.Region >= 0 {
			m.Region(seg.Region).ExecCycles += c
		} else if seg.RegionOf != nil && seg.RegionOf[pc] >= 0 {
			rc := m.Region(int(seg.RegionOf[pc]))
			if seg.SetupOf != nil && seg.SetupOf[pc] {
				rc.SetupCycles += c
			} else {
				rc.ExecCycles += c
			}
		}
		if seg.RegionEntryAt != nil {
			if r, ok := seg.RegionEntryAt[pc]; ok {
				m.Region(r).Invocations++
			}
		}
		m.Cycles += c
		if m.Cycles > m.MaxCycles {
			return fail("cycle budget exhausted (%d)", m.MaxCycles)
		}

		taken := func() {
			m.Cycles += CostTaken
			if seg.Stitched && seg.Region >= 0 {
				m.Region(seg.Region).ExecCycles += CostTaken
			} else if seg.RegionOf != nil && seg.RegionOf[pc] >= 0 {
				rc := m.Region(int(seg.RegionOf[pc]))
				if seg.SetupOf != nil && seg.SetupOf[pc] {
					rc.SetupCycles += CostTaken
				} else {
					rc.ExecCycles += CostTaken
				}
			}
		}

		if m.Trace != nil {
			fmt.Fprintf(m.Trace, "%-20s %4d: %-28s rd=%d rs=%d rt=%d\n",
				seg.Name, pc, in.String(), m.Regs[in.Rd], m.Regs[in.Rs], m.Regs[in.Rt])
		}

		rs, rt := m.Regs[in.Rs], m.Regs[in.Rt]
		setRd := func(v int64) {
			if in.Rd != RZero {
				m.Regs[in.Rd] = v
			}
		}

		switch in.Op {
		case NOP:
		case LI:
			setRd(in.Imm)
			if !FitsImm(in.Imm) {
				m.Cycles++ // wide-constant materialization penalty
			}
		case MOV:
			setRd(rs)
		case ADD:
			setRd(rs + rt)
		case SUB:
			setRd(rs - rt)
		case MUL:
			setRd(rs * rt)
		case DIV:
			if rt == 0 {
				return fail("integer divide by zero")
			}
			setRd(rs / rt)
		case UDIV:
			if rt == 0 {
				return fail("integer divide by zero")
			}
			setRd(int64(uint64(rs) / uint64(rt)))
		case MOD:
			if rt == 0 {
				return fail("integer modulus by zero")
			}
			setRd(rs % rt)
		case UMOD:
			if rt == 0 {
				return fail("integer modulus by zero")
			}
			setRd(int64(uint64(rs) % uint64(rt)))
		case AND:
			setRd(rs & rt)
		case OR:
			setRd(rs | rt)
		case XOR:
			setRd(rs ^ rt)
		case SHL:
			setRd(rs << uint64(rt&63))
		case SHR:
			setRd(rs >> uint64(rt&63))
		case SHRU:
			setRd(int64(uint64(rs) >> uint64(rt&63)))
		case SEQ:
			setRd(b2i(rs == rt))
		case SNE:
			setRd(b2i(rs != rt))
		case SLT:
			setRd(b2i(rs < rt))
		case SLE:
			setRd(b2i(rs <= rt))
		case SLTU:
			setRd(b2i(uint64(rs) < uint64(rt)))
		case SLEU:
			setRd(b2i(uint64(rs) <= uint64(rt)))
		case NEG:
			setRd(-rs)
		case NOT:
			setRd(^rs)

		case ADDI:
			setRd(rs + in.Imm)
		case SUBI:
			setRd(rs - in.Imm)
		case MULI:
			setRd(rs * in.Imm)
		case DIVI:
			if in.Imm == 0 {
				return fail("integer divide by zero")
			}
			setRd(rs / in.Imm)
		case UDIVI:
			if in.Imm == 0 {
				return fail("integer divide by zero")
			}
			setRd(int64(uint64(rs) / uint64(in.Imm)))
		case MODI:
			if in.Imm == 0 {
				return fail("integer modulus by zero")
			}
			setRd(rs % in.Imm)
		case UMODI:
			if in.Imm == 0 {
				return fail("integer modulus by zero")
			}
			setRd(int64(uint64(rs) % uint64(in.Imm)))
		case ANDI:
			setRd(rs & in.Imm)
		case ORI:
			setRd(rs | in.Imm)
		case XORI:
			setRd(rs ^ in.Imm)
		case SHLI:
			setRd(rs << uint64(in.Imm&63))
		case SHRI:
			setRd(rs >> uint64(in.Imm&63))
		case SHRUI:
			setRd(int64(uint64(rs) >> uint64(in.Imm&63)))
		case SEQI:
			setRd(b2i(rs == in.Imm))
		case SNEI:
			setRd(b2i(rs != in.Imm))
		case SLTI:
			setRd(b2i(rs < in.Imm))
		case SLEI:
			setRd(b2i(rs <= in.Imm))
		case SLTUI:
			setRd(b2i(uint64(rs) < uint64(in.Imm)))
		case SLEUI:
			setRd(b2i(uint64(rs) <= uint64(in.Imm)))

		case FADD:
			setRd(fop(rs, rt, func(a, b float64) float64 { return a + b }))
		case FSUB:
			setRd(fop(rs, rt, func(a, b float64) float64 { return a - b }))
		case FMUL:
			setRd(fop(rs, rt, func(a, b float64) float64 { return a * b }))
		case FDIV:
			setRd(fop(rs, rt, func(a, b float64) float64 { return a / b }))
		case FNEG:
			setRd(int64(math.Float64bits(-f64(rs))))
		case FEQ:
			setRd(b2i(f64(rs) == f64(rt)))
		case FNE:
			setRd(b2i(f64(rs) != f64(rt)))
		case FLT:
			setRd(b2i(f64(rs) < f64(rt)))
		case FLE:
			setRd(b2i(f64(rs) <= f64(rt)))
		case ITOF:
			setRd(int64(math.Float64bits(float64(rs))))
		case FTOI:
			setRd(int64(f64(rs)))

		case LD:
			a := rs + in.Imm
			if a < 0 || a >= int64(len(m.Mem)) {
				return fail("load out of bounds: %d", a)
			}
			setRd(m.Mem[a])
		case ST:
			a := rs + in.Imm
			if a < 0 || a >= int64(len(m.Mem)) {
				return fail("store out of bounds: %d", a)
			}
			m.Mem[a] = rt
		case LDC:
			if in.Imm < 0 || in.Imm >= int64(len(seg.Consts)) {
				return fail("ldc out of bounds: %d/%d", in.Imm, len(seg.Consts))
			}
			setRd(seg.Consts[in.Imm])
		case ALLOC:
			a, err := m.Alloc(rs)
			if err != nil {
				return fail("%v", err)
			}
			setRd(a)

		case BEQZ:
			if rs == 0 {
				taken()
				pc = in.Target
				continue
			}
		case BNEZ:
			if rs != 0 {
				taken()
				pc = in.Target
				continue
			}
		case BEQI:
			if rs == in.Imm {
				taken()
				pc = in.Target
				continue
			}
		case BR:
			taken()
			pc = in.Target
			continue
		case JTBL:
			ti := int(in.Imm)
			if ti < 0 || ti >= len(seg.JumpTables) {
				return fail("jump table %d out of range", ti)
			}
			tbl := seg.JumpTables[ti]
			if rs < 0 || rs >= int64(len(tbl)) {
				return fail("jump table index %d out of range (%d)", rs, len(tbl))
			}
			pc = tbl[rs]
			continue
		case XFER:
			if seg.Parent == nil {
				return fail("xfer from segment without parent")
			}
			taken()
			seg = seg.Parent
			pc = in.Target
			fail = func(format string, args ...any) (int64, error) {
				return 0, &vmError{seg: seg, pc: pc, msg: fmt.Sprintf(format, args...)}
			}
			continue

		case CALL:
			if in.Imm < 0 {
				if err := m.builtin(int(-in.Imm - 1)); err != nil {
					return fail("%v", err)
				}
				break
			}
			if int(in.Imm) >= len(m.Prog.Segs) {
				return fail("call to unknown function %d", in.Imm)
			}
			m.frames = append(m.frames, frame{regs: m.Regs, seg: seg, pc: pc + 1})
			seg = m.Prog.Segs[in.Imm]
			pc = 0
			continue
		case RET:
			if len(m.frames) == baseFrames {
				return m.Regs[RRV], nil
			}
			fr := m.frames[len(m.frames)-1]
			m.frames = m.frames[:len(m.frames)-1]
			rv := m.Regs[RRV]
			m.Regs = fr.regs
			m.Regs[RRV] = rv
			seg, pc = fr.seg, fr.pc
			continue
		case HALT:
			return m.Regs[RRV], nil

		case DYNENTER:
			m.Region(int(in.Imm)).Invocations++
			if m.OnDynEnter == nil {
				return fail("dynenter without runtime")
			}
			ns, err := m.OnDynEnter(m, int(in.Imm))
			if err != nil {
				return fail("%v", err)
			}
			if ns != nil {
				seg, pc = ns, 0
				continue
			}
			// Not yet compiled: fall through into inline set-up code.
		case DYNSTITCH:
			if m.OnDynStitch == nil {
				return fail("dynstitch without runtime")
			}
			ns, err := m.OnDynStitch(m, int(in.Imm))
			if err != nil {
				return fail("%v", err)
			}
			seg, pc = ns, 0
			continue

		default:
			return fail("illegal opcode %d", in.Op)
		}
		pc++
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func f64(v int64) float64 { return math.Float64frombits(uint64(v)) }

func fop(a, b int64, f func(float64, float64) float64) int64 {
	return int64(math.Float64bits(f(f64(a), f64(b))))
}

// builtin executes host intrinsic id (arguments in RA0..; result in RRV).
func (m *Machine) builtin(id int) error {
	a0 := m.Regs[RA0]
	a1 := m.Regs[RA0+1]
	switch BuiltinNames[id] {
	case "print_int":
		if m.Output != nil {
			fmt.Fprintf(m.Output, "%d\n", a0)
		}
	case "print_float":
		if m.Output != nil {
			fmt.Fprintf(m.Output, "%g\n", f64(a0))
		}
	case "print_str":
		if m.Output != nil {
			var bs []byte
			for a := a0; a >= 0 && a < int64(len(m.Mem)) && m.Mem[a] != 0; a++ {
				bs = append(bs, byte(m.Mem[a]))
			}
			fmt.Fprintf(m.Output, "%s\n", bs)
		}
	case "alloc":
		a, err := m.Alloc(a0)
		if err != nil {
			return err
		}
		m.Regs[RRV] = a
		m.Cycles += CostAlloc
	case "abs":
		if a0 < 0 {
			a0 = -a0
		}
		m.Regs[RRV] = a0
	case "min":
		if a1 < a0 {
			a0 = a1
		}
		m.Regs[RRV] = a0
	case "max":
		if a1 > a0 {
			a0 = a1
		}
		m.Regs[RRV] = a0
	case "cos":
		m.Regs[RRV] = int64(math.Float64bits(math.Cos(f64(a0))))
		m.Cycles += 20
	case "sin":
		m.Regs[RRV] = int64(math.Float64bits(math.Sin(f64(a0))))
		m.Cycles += 20
	case "sqrt":
		m.Regs[RRV] = int64(math.Float64bits(math.Sqrt(f64(a0))))
		m.Cycles += 20
	default:
		return fmt.Errorf("unknown builtin %d", id)
	}
	return nil
}
