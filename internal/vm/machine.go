package vm

import (
	"fmt"
	"io"
	"math"
)

// RegionCounters accumulates per-region measurements: everything the
// paper's Table 2 needs.
type RegionCounters struct {
	Invocations   uint64
	ExecCycles    uint64 // cycles in region code (stitched or static)
	SetupCycles   uint64 // cycles in set-up code (dynamic-compile overhead)
	StitchCycles  uint64 // modeled stitcher cost (added by the runtime)
	StitchedInsts uint64 // instructions emitted by the stitcher
	Compiles      uint64 // distinct stitched versions produced
}

// Overhead returns the total dynamic-compilation overhead in cycles.
func (rc *RegionCounters) Overhead() uint64 { return rc.SetupCycles + rc.StitchCycles }

// Machine executes a Program.
//
// Concurrency contract: a Machine is single-goroutine — its registers,
// memory, frames and counters must only be touched by the goroutine
// driving Call/Run. Many machines may execute the same Program
// concurrently, each on its own goroutine; the runtime hooks below are
// then invoked concurrently from different machines, so hook
// implementations must be safe for cross-machine concurrency (per-machine
// state they close over needs no locking, shared state does).
type Machine struct {
	Prog *Program
	Mem  []int64
	Regs [NumRegs]int64

	Cycles  uint64
	Insts   uint64
	regions []RegionCounters

	// MaxCycles aborts runaway executions.
	MaxCycles uint64

	Output io.Writer

	// Trace, when non-nil, receives one line per executed instruction
	// (segment, pc, disassembly, input register values).
	Trace io.Writer

	// Runtime hooks for dynamic regions (wired by the rtr package).
	// A non-nil segment is entered at pc 0 (stitched segments always
	// begin at their entry). Returning a nil segment from OnDynEnter
	// means "not compiled yet": control falls through into the inline
	// set-up code, which ends in DYNSTITCH. OnDynStitch must return a
	// segment (the freshly stitched code) or an error.
	OnDynEnter  func(m *Machine, region int) (*Segment, error)
	OnDynStitch func(m *Machine, region int) (*Segment, error)

	// OnDeopt is invoked when a GUARD fails in stitched code of an
	// automatically promoted region, just before control transfers back to
	// the region's set-up entry in the parent segment. The runtime uses it
	// to demote the region and orphan its stale stitches.
	OnDeopt func(m *Machine, region int)

	// OnReset is called by Reset: the runtime invalidates this machine's
	// stitched-code cache (the memory holding its tables is being wiped).
	OnReset func(m *Machine)

	hp     int64 // heap pointer (bump allocator)
	frames []frame
}

type frame struct {
	regs [NumRegs]int64
	seg  *Segment
	pc   int
}

// NewMachine creates a machine with the given memory size in words
// (0 picks a 4M-word default).
func NewMachine(p *Program, memWords int) *Machine {
	if memWords <= 0 {
		memWords = 1 << 22
	}
	m := &Machine{
		Prog:      p,
		Mem:       make([]int64, memWords),
		MaxCycles: 200e9,
		regions:   make([]RegionCounters, p.NumRegions),
	}
	m.Reset()
	return m
}

// Reset restores the initial memory image and clears registers. Region
// counters are preserved; use ResetCounters to clear them.
func (m *Machine) Reset() {
	if m.OnReset != nil {
		m.OnReset(m)
	}
	for i := range m.Mem {
		m.Mem[i] = 0
	}
	copy(m.Mem, m.Prog.GlobalInit)
	m.hp = int64(m.Prog.GlobalWords)
	m.Regs = [NumRegs]int64{}
	m.Regs[RSP] = int64(len(m.Mem))
	m.frames = m.frames[:0]
}

// ResetCounters zeroes cycle counts and region statistics.
func (m *Machine) ResetCounters() {
	m.Cycles, m.Insts = 0, 0
	for i := range m.regions {
		m.regions[i] = RegionCounters{}
	}
}

// Region returns the counters for region index r.
func (m *Machine) Region(r int) *RegionCounters {
	for r >= len(m.regions) {
		m.regions = append(m.regions, RegionCounters{})
	}
	return &m.regions[r]
}

// Alloc reserves n zeroed words on the heap and returns their address.
// It is exported so harness code can build input data structures directly.
func (m *Machine) Alloc(n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("vm: alloc of negative size %d", n)
	}
	a := m.hp
	m.hp += n
	if m.hp > m.Regs[RSP] {
		return 0, fmt.Errorf("vm: heap (%d) collided with stack (%d)", m.hp, m.Regs[RSP])
	}
	return a, nil
}

type vmError struct {
	seg *Segment
	pc  int
	msg string
}

func (e *vmError) Error() string {
	return fmt.Sprintf("vm: %s at %s+%d", e.msg, e.seg.Name, e.pc)
}

// Call runs function name with the given arguments and returns RRV.
func (m *Machine) Call(name string, args ...int64) (int64, error) {
	id := m.Prog.FuncID(name)
	if id < 0 {
		return 0, fmt.Errorf("vm: no function %q", name)
	}
	if len(args) > NumArgs {
		return 0, fmt.Errorf("vm: too many arguments (%d > %d)", len(args), NumArgs)
	}
	for i, a := range args {
		m.Regs[RA0+Reg(i)] = a
	}
	// A top-level call behaves like a register window too: the stack
	// pointer (and everything else except the result) is restored, so
	// repeated calls do not leak stack space.
	saved := m.Regs
	v, err := m.run(m.Prog.Segs[id])
	rv := m.Regs[RRV]
	m.Regs = saved
	m.Regs[RRV] = rv
	return v, err
}

// CallF is Call for a float argument list and float result.
func (m *Machine) CallF(name string, args ...float64) (float64, error) {
	ia := make([]int64, len(args))
	for i, a := range args {
		ia[i] = int64(math.Float64bits(a))
	}
	r, err := m.Call(name, ia...)
	return math.Float64frombits(uint64(r)), err
}

// vmErrorf builds a vm error without closing over loop state.
func vmErrorf(seg *Segment, pc int, format string, args ...any) error {
	return &vmError{seg: seg, pc: pc, msg: fmt.Sprintf(format, args...)}
}

// trapUnwind reverses the batched block pre-charge for the unexecuted tail
// (pc+1 .. blkEnd) when an instruction traps mid-block, restoring the
// exact counters the seed per-instruction loop would have left. A no-op in
// exact mode (blkEnd == 0) and for block-terminal traps.
func (m *Machine) trapUnwind(pl *execPlan, pc, blkEnd int, region int32, setup bool) {
	if blkEnd <= pc+1 {
		return
	}
	over := pl.costTo[blkEnd] - pl.costTo[pc+1]
	xover := pl.xtraTo[blkEnd] - pl.xtraTo[pc+1]
	m.Cycles -= over + xover
	m.Insts -= pl.instsTo[blkEnd] - pl.instsTo[pc+1]
	if region >= 0 {
		rc := m.Region(int(region))
		if setup {
			rc.SetupCycles -= over
		} else {
			rc.ExecCycles -= over
		}
	}
}

// trap unwinds any batched over-charge and returns the execution error.
func (m *Machine) trap(pl *execPlan, seg *Segment, pc, blkEnd int, region int32,
	setup bool, format string, args ...any) (int64, error) {
	m.trapUnwind(pl, pc, blkEnd, region, setup)
	return 0, vmErrorf(seg, pc, format, args...)
}

// takenCharge adds the branch-taken penalty with the current attribution
// (rc is the cached counter pointer for the attributed region, nil when
// the instruction is unattributed).
func (m *Machine) takenCharge(rc *RegionCounters, setup bool) {
	m.Cycles += CostTaken
	if rc != nil {
		if setup {
			rc.SetupCycles += CostTaken
		} else {
			rc.ExecCycles += CostTaken
		}
	}
}

// cmpEval evaluates the folded compare of a fused CMPBR/CMPBRI.
func cmpEval(op Op, a, b int64) bool {
	switch op {
	case SEQ:
		return a == b
	case SNE:
		return a != b
	case SLT:
		return a < b
	case SLE:
		return a <= b
	case SLTU:
		return uint64(a) < uint64(b)
	case SLEU:
		return uint64(a) <= uint64(b)
	case FEQ:
		return f64(a) == f64(b)
	case FNE:
		return f64(a) != f64(b)
	case FLT:
		return f64(a) < f64(b)
	case FLE:
		return f64(a) <= f64(b)
	}
	return false
}

// aluEval evaluates the folded (trap-free) ALU op of a fused LDOP/LDOPR.
func aluEval(op Op, a, b int64) int64 {
	switch op {
	case ADD:
		return a + b
	case SUB:
		return a - b
	case MUL:
		return a * b
	case AND:
		return a & b
	case OR:
		return a | b
	case XOR:
		return a ^ b
	case SHL:
		return a << uint64(b&63)
	case SHR:
		return a >> uint64(b&63)
	case SHRU:
		return int64(uint64(a) >> uint64(b&63))
	case SEQ:
		return b2i(a == b)
	case SNE:
		return b2i(a != b)
	case SLT:
		return b2i(a < b)
	case SLE:
		return b2i(a <= b)
	case SLTU:
		return b2i(uint64(a) < uint64(b))
	case SLEU:
		return b2i(uint64(a) <= uint64(b))
	case FADD:
		return int64(math.Float64bits(f64(a) + f64(b)))
	case FSUB:
		return int64(math.Float64bits(f64(a) - f64(b)))
	case FMUL:
		return int64(math.Float64bits(f64(a) * f64(b)))
	}
	return 0
}

// run is the interpreter hot path. Where the seed re-derived attribution
// and created closures on every instruction, this loop consults the
// segment's precomputed execution plan: at each basic-block entry the
// whole block's cycles, instruction count, attribution and region-entry
// marker are charged with one update per counter, and the block body then
// executes with no per-instruction accounting at all. Exact
// per-instruction accounting (identical to the seed's) handles tracing,
// near-exhausted cycle budgets, and mid-block entry; mid-block traps
// unwind the pre-charged tail. Guest-visible counters are bit-identical
// to the seed loop in all cases.
func (m *Machine) run(seg *Segment) (int64, error) {
	pc := 0
	baseFrames := len(m.frames)
	pl := seg.execPlan()
	code := seg.Code
	if n := m.Prog.NumRegions; n > 0 {
		// Pre-grow the counters slice so per-region pointers are stable
		// for the whole run and can be cached across blocks.
		m.Region(n - 1)
	}

	var (
		blkEnd   int                  // exclusive end of the batched block; 0 = none active
		atRegion int32           = -2 // attribution of the current instruction (-2: nothing cached yet)
		atRC     *RegionCounters      // cached counters for atRegion; nil when unattributed
		atSetup  bool
	)

	for {
		if pc < 0 || pc >= len(code) {
			return 0, vmErrorf(seg, pc, "pc out of range (%d/%d)", pc, len(code))
		}
		exact := false
		if pc >= blkEnd {
			b := &pl.blocks[pl.blockAt[pc]]
			if m.Trace == nil && pc == int(b.start) && m.Cycles+b.cost+b.xtra <= m.MaxCycles {
				// Charge the whole straight-line block up front.
				m.Insts += b.insts
				m.Cycles += b.cost + b.xtra
				if b.entry >= 0 {
					m.Region(int(b.entry)).Invocations++
				}
				if b.region != atRegion {
					atRegion = b.region
					atRC = nil
					if atRegion >= 0 {
						atRC = m.Region(int(atRegion))
					}
				}
				atSetup = b.setup
				if atRC != nil {
					if atSetup {
						atRC.SetupCycles += b.cost
					} else {
						atRC.ExecCycles += b.cost
					}
				}
				blkEnd = int(b.end)
			} else {
				exact = true
				blkEnd = 0
			}
		}
		in := &code[pc]
		if exact {
			// Seed-identical per-instruction accounting.
			c := uint64(pl.costAt[pc])
			m.Insts += uint64(pl.instsAt[pc])
			if r := pl.regionAt[pc]; r != atRegion {
				atRegion = r
				atRC = nil
				if r >= 0 {
					atRC = m.Region(int(r))
				}
			}
			atSetup = pl.setupAt[pc]
			if atRC != nil {
				if atSetup {
					atRC.SetupCycles += c
				} else {
					atRC.ExecCycles += c
				}
			}
			if e := pl.entryAt[pc]; e >= 0 {
				m.Region(int(e)).Invocations++
			}
			m.Cycles += c
			if m.Cycles > m.MaxCycles {
				return 0, vmErrorf(seg, pc, "cycle budget exhausted (%d)", m.MaxCycles)
			}
			if m.Trace != nil {
				fmt.Fprintf(m.Trace, "%-20s %4d: %-28s rd=%d rs=%d rt=%d\n",
					seg.Name, pc, in.String(), m.Regs[in.Rd&63], m.Regs[in.Rs&63], m.Regs[in.Rt&63])
			}
		}

		rs, rt := m.Regs[in.Rs&63], m.Regs[in.Rt&63]

		switch in.Op {
		case NOP:
		case LI:
			m.Regs[in.Rd&63] = in.Imm
			if exact && !FitsImm(in.Imm) {
				m.Cycles++ // wide-constant penalty (pre-charged when batched)
			}
		case MOV:
			m.Regs[in.Rd&63] = rs
		case ADD:
			m.Regs[in.Rd&63] = rs + rt
		case SUB:
			m.Regs[in.Rd&63] = rs - rt
		case MUL:
			m.Regs[in.Rd&63] = rs * rt
		case DIV:
			if rt == 0 {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "integer divide by zero")
			}
			m.Regs[in.Rd&63] = rs / rt
		case UDIV:
			if rt == 0 {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "integer divide by zero")
			}
			m.Regs[in.Rd&63] = int64(uint64(rs) / uint64(rt))
		case MOD:
			if rt == 0 {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "integer modulus by zero")
			}
			m.Regs[in.Rd&63] = rs % rt
		case UMOD:
			if rt == 0 {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "integer modulus by zero")
			}
			m.Regs[in.Rd&63] = int64(uint64(rs) % uint64(rt))
		case AND:
			m.Regs[in.Rd&63] = rs & rt
		case OR:
			m.Regs[in.Rd&63] = rs | rt
		case XOR:
			m.Regs[in.Rd&63] = rs ^ rt
		case SHL:
			m.Regs[in.Rd&63] = rs << uint64(rt&63)
		case SHR:
			m.Regs[in.Rd&63] = rs >> uint64(rt&63)
		case SHRU:
			m.Regs[in.Rd&63] = int64(uint64(rs) >> uint64(rt&63))
		case SEQ:
			m.Regs[in.Rd&63] = b2i(rs == rt)
		case SNE:
			m.Regs[in.Rd&63] = b2i(rs != rt)
		case SLT:
			m.Regs[in.Rd&63] = b2i(rs < rt)
		case SLE:
			m.Regs[in.Rd&63] = b2i(rs <= rt)
		case SLTU:
			m.Regs[in.Rd&63] = b2i(uint64(rs) < uint64(rt))
		case SLEU:
			m.Regs[in.Rd&63] = b2i(uint64(rs) <= uint64(rt))
		case NEG:
			m.Regs[in.Rd&63] = -rs
		case NOT:
			m.Regs[in.Rd&63] = ^rs

		case ADDI:
			m.Regs[in.Rd&63] = rs + in.Imm
		case SUBI:
			m.Regs[in.Rd&63] = rs - in.Imm
		case MULI:
			m.Regs[in.Rd&63] = rs * in.Imm
		case DIVI:
			if in.Imm == 0 {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "integer divide by zero")
			}
			m.Regs[in.Rd&63] = rs / in.Imm
		case UDIVI:
			if in.Imm == 0 {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "integer divide by zero")
			}
			m.Regs[in.Rd&63] = int64(uint64(rs) / uint64(in.Imm))
		case MODI:
			if in.Imm == 0 {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "integer modulus by zero")
			}
			m.Regs[in.Rd&63] = rs % in.Imm
		case UMODI:
			if in.Imm == 0 {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "integer modulus by zero")
			}
			m.Regs[in.Rd&63] = int64(uint64(rs) % uint64(in.Imm))
		case ANDI:
			m.Regs[in.Rd&63] = rs & in.Imm
		case ORI:
			m.Regs[in.Rd&63] = rs | in.Imm
		case XORI:
			m.Regs[in.Rd&63] = rs ^ in.Imm
		case SHLI:
			m.Regs[in.Rd&63] = rs << uint64(in.Imm&63)
		case SHRI:
			m.Regs[in.Rd&63] = rs >> uint64(in.Imm&63)
		case SHRUI:
			m.Regs[in.Rd&63] = int64(uint64(rs) >> uint64(in.Imm&63))
		case SEQI:
			m.Regs[in.Rd&63] = b2i(rs == in.Imm)
		case SNEI:
			m.Regs[in.Rd&63] = b2i(rs != in.Imm)
		case SLTI:
			m.Regs[in.Rd&63] = b2i(rs < in.Imm)
		case SLEI:
			m.Regs[in.Rd&63] = b2i(rs <= in.Imm)
		case SLTUI:
			m.Regs[in.Rd&63] = b2i(uint64(rs) < uint64(in.Imm))
		case SLEUI:
			m.Regs[in.Rd&63] = b2i(uint64(rs) <= uint64(in.Imm))

		case FADD:
			m.Regs[in.Rd&63] = int64(math.Float64bits(f64(rs) + f64(rt)))
		case FSUB:
			m.Regs[in.Rd&63] = int64(math.Float64bits(f64(rs) - f64(rt)))
		case FMUL:
			m.Regs[in.Rd&63] = int64(math.Float64bits(f64(rs) * f64(rt)))
		case FDIV:
			m.Regs[in.Rd&63] = int64(math.Float64bits(f64(rs) / f64(rt)))
		case FNEG:
			m.Regs[in.Rd&63] = int64(math.Float64bits(-f64(rs)))
		case FEQ:
			m.Regs[in.Rd&63] = b2i(f64(rs) == f64(rt))
		case FNE:
			m.Regs[in.Rd&63] = b2i(f64(rs) != f64(rt))
		case FLT:
			m.Regs[in.Rd&63] = b2i(f64(rs) < f64(rt))
		case FLE:
			m.Regs[in.Rd&63] = b2i(f64(rs) <= f64(rt))
		case ITOF:
			m.Regs[in.Rd&63] = int64(math.Float64bits(float64(rs)))
		case FTOI:
			m.Regs[in.Rd&63] = int64(f64(rs))

		case LD:
			a := rs + in.Imm
			if a < 0 || a >= int64(len(m.Mem)) {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "load out of bounds: %d", a)
			}
			m.Regs[in.Rd&63] = m.Mem[a]
		case ST:
			a := rs + in.Imm
			if a < 0 || a >= int64(len(m.Mem)) {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "store out of bounds: %d", a)
			}
			m.Mem[a] = rt
		case LDC:
			if in.Imm < 0 || in.Imm >= int64(len(seg.Consts)) {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "ldc out of bounds: %d/%d", in.Imm, len(seg.Consts))
			}
			m.Regs[in.Rd&63] = seg.Consts[in.Imm]
		case ALLOC:
			a, err := m.Alloc(rs)
			if err != nil {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "%v", err)
			}
			m.Regs[in.Rd&63] = a

		case BEQZ:
			if rs == 0 {
				m.takenCharge(atRC, atSetup)
				pc = in.Target
				blkEnd = 0
				continue
			}
		case BNEZ:
			if rs != 0 {
				m.takenCharge(atRC, atSetup)
				pc = in.Target
				blkEnd = 0
				continue
			}
		case BEQI:
			if rs == in.Imm {
				m.takenCharge(atRC, atSetup)
				pc = in.Target
				blkEnd = 0
				continue
			}
		case CMPBR:
			if cmpEval(in.Sub, rs, rt) == (in.Rd != 0) {
				m.takenCharge(atRC, atSetup)
				pc = in.Target
				blkEnd = 0
				continue
			}
		case CMPBRI:
			if cmpEval(in.Sub, rs, in.Imm) == (in.Rd != 0) {
				m.takenCharge(atRC, atSetup)
				pc = in.Target
				blkEnd = 0
				continue
			}
		case BR:
			m.takenCharge(atRC, atSetup)
			pc = in.Target
			blkEnd = 0
			continue
		case JTBL:
			ti := int(in.Imm)
			if ti < 0 || ti >= len(seg.JumpTables) {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "jump table %d out of range", ti)
			}
			tbl := seg.JumpTables[ti]
			if rs < 0 || rs >= int64(len(tbl)) {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "jump table index %d out of range (%d)", rs, len(tbl))
			}
			pc = tbl[rs]
			blkEnd = 0
			continue
		case XFER:
			if seg.Parent == nil {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "xfer from segment without parent")
			}
			m.takenCharge(atRC, atSetup)
			seg = seg.Parent
			pl = seg.execPlan()
			code = seg.Code
			pc = in.Target
			blkEnd = 0
			continue
		case GUARD:
			if rs != in.Imm {
				if seg.Parent == nil {
					return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "guard failure in segment without parent")
				}
				if m.OnDeopt != nil {
					m.OnDeopt(m, seg.Region)
				}
				m.takenCharge(atRC, atSetup)
				seg = seg.Parent
				pl = seg.execPlan()
				code = seg.Code
				pc = in.Target
				blkEnd = 0
				continue
			}

		case LDOP, LDOPR:
			a := rs + in.Imm
			if a < 0 || a >= int64(len(m.Mem)) {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "load out of bounds: %d", a)
			}
			v := m.Mem[a]
			if in.Op == LDOP {
				m.Regs[in.Rd&63] = aluEval(in.Sub, rt, v)
			} else {
				m.Regs[in.Rd&63] = aluEval(in.Sub, v, rt)
			}
		case MADDI:
			m.Regs[in.Rd&63] = rt + rs*in.Imm

		case CALL:
			if in.Imm < 0 {
				if err := m.builtin(int(-in.Imm - 1)); err != nil {
					return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "%v", err)
				}
				break
			}
			if int(in.Imm) >= len(m.Prog.Segs) {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "call to unknown function %d", in.Imm)
			}
			if n := len(m.frames); n < cap(m.frames) {
				// Write the frame in place: appending a composite
				// literal would copy the 64-register file twice.
				m.frames = m.frames[:n+1]
				f := &m.frames[n]
				f.regs = m.Regs
				f.seg, f.pc = seg, pc+1
			} else {
				m.frames = append(m.frames, frame{regs: m.Regs, seg: seg, pc: pc + 1})
			}
			seg = m.Prog.Segs[in.Imm]
			pl = seg.execPlan()
			code = seg.Code
			pc = 0
			blkEnd = 0
			continue
		case RET:
			if len(m.frames) == baseFrames {
				return m.Regs[RRV], nil
			}
			fr := &m.frames[len(m.frames)-1]
			m.frames = m.frames[:len(m.frames)-1]
			rv := m.Regs[RRV]
			m.Regs = fr.regs
			m.Regs[RRV] = rv
			seg, pc = fr.seg, fr.pc
			pl = seg.execPlan()
			code = seg.Code
			blkEnd = 0
			continue
		case HALT:
			return m.Regs[RRV], nil

		case DYNENTER:
			m.Region(int(in.Imm)).Invocations++
			if m.OnDynEnter == nil {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "dynenter without runtime")
			}
			ns, err := m.OnDynEnter(m, int(in.Imm))
			if err != nil {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "%v", err)
			}
			if ns != nil {
				seg, pc = ns, 0
				pl = seg.execPlan()
				code = seg.Code
				blkEnd = 0
				continue
			}
			// Not yet compiled: fall through into inline set-up code.
		case DYNSTITCH:
			if m.OnDynStitch == nil {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "dynstitch without runtime")
			}
			ns, err := m.OnDynStitch(m, int(in.Imm))
			if err != nil {
				return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "%v", err)
			}
			seg, pc = ns, 0
			pl = seg.execPlan()
			code = seg.Code
			blkEnd = 0
			continue

		default:
			return m.trap(pl, seg, pc, blkEnd, atRegion, atSetup, "illegal opcode %d", in.Op)
		}
		m.Regs[RZero] = 0
		pc++
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func f64(v int64) float64 { return math.Float64frombits(uint64(v)) }

func fop(a, b int64, f func(float64, float64) float64) int64 {
	return int64(math.Float64bits(f(f64(a), f64(b))))
}

// builtin executes host intrinsic id (arguments in RA0..; result in RRV).
func (m *Machine) builtin(id int) error {
	a0 := m.Regs[RA0]
	a1 := m.Regs[RA0+1]
	switch BuiltinNames[id] {
	case "print_int":
		if m.Output != nil {
			fmt.Fprintf(m.Output, "%d\n", a0)
		}
	case "print_float":
		if m.Output != nil {
			fmt.Fprintf(m.Output, "%g\n", f64(a0))
		}
	case "print_str":
		if m.Output != nil {
			var bs []byte
			for a := a0; a >= 0 && a < int64(len(m.Mem)) && m.Mem[a] != 0; a++ {
				bs = append(bs, byte(m.Mem[a]))
			}
			fmt.Fprintf(m.Output, "%s\n", bs)
		}
	case "alloc":
		a, err := m.Alloc(a0)
		if err != nil {
			return err
		}
		m.Regs[RRV] = a
		m.Cycles += CostAlloc
	case "abs":
		if a0 < 0 {
			a0 = -a0
		}
		m.Regs[RRV] = a0
	case "min":
		if a1 < a0 {
			a0 = a1
		}
		m.Regs[RRV] = a0
	case "max":
		if a1 > a0 {
			a0 = a1
		}
		m.Regs[RRV] = a0
	case "cos":
		m.Regs[RRV] = int64(math.Float64bits(math.Cos(f64(a0))))
		m.Cycles += 20
	case "sin":
		m.Regs[RRV] = int64(math.Float64bits(math.Sin(f64(a0))))
		m.Cycles += 20
	case "sqrt":
		m.Regs[RRV] = int64(math.Float64bits(math.Sqrt(f64(a0))))
		m.Cycles += 20
	default:
		return fmt.Errorf("unknown builtin %d", id)
	}
	return nil
}
