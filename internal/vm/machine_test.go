package vm

import (
	"math"
	"testing"
	"testing/quick"
)

// runSnippet executes code in a single-function program and returns RRV.
func runSnippet(t *testing.T, code []Inst, setup func(m *Machine)) (int64, *Machine) {
	t.Helper()
	prog := &Program{
		Segs:      []*Segment{{Name: "main", Code: code, Region: -1}},
		FuncIndex: map[string]int{"main": 0},
	}
	m := NewMachine(prog, 1<<16)
	if setup != nil {
		setup(m)
	}
	v, err := m.Call("main")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, m
}

func TestALUOpsAgainstGo(t *testing.T) {
	type binCase struct {
		op   Op
		gold func(a, b int64) int64
	}
	cases := []binCase{
		{ADD, func(a, b int64) int64 { return a + b }},
		{SUB, func(a, b int64) int64 { return a - b }},
		{MUL, func(a, b int64) int64 { return a * b }},
		{AND, func(a, b int64) int64 { return a & b }},
		{OR, func(a, b int64) int64 { return a | b }},
		{XOR, func(a, b int64) int64 { return a ^ b }},
		{SHL, func(a, b int64) int64 { return a << uint64(b&63) }},
		{SHR, func(a, b int64) int64 { return a >> uint64(b&63) }},
		{SHRU, func(a, b int64) int64 { return int64(uint64(a) >> uint64(b&63)) }},
		{SEQ, func(a, b int64) int64 { return b2i(a == b) }},
		{SNE, func(a, b int64) int64 { return b2i(a != b) }},
		{SLT, func(a, b int64) int64 { return b2i(a < b) }},
		{SLE, func(a, b int64) int64 { return b2i(a <= b) }},
		{SLTU, func(a, b int64) int64 { return b2i(uint64(a) < uint64(b)) }},
		{SLEU, func(a, b int64) int64 { return b2i(uint64(a) <= uint64(b)) }},
	}
	for _, tc := range cases {
		tc := tc
		f := func(a, b int64) bool {
			code := []Inst{
				{Op: tc.op, Rd: RRV, Rs: 12, Rt: 13},
				{Op: RET},
			}
			got, _ := runSnippet(t, code, func(m *Machine) {
				m.Regs[12], m.Regs[13] = a, b
			})
			return got == tc.gold(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", tc.op, err)
		}
	}
}

func TestDivModSemantics(t *testing.T) {
	f := func(a, b int64) bool {
		if b == 0 {
			return true
		}
		code := []Inst{
			{Op: DIV, Rd: 14, Rs: 12, Rt: 13},
			{Op: MOD, Rd: 15, Rs: 12, Rt: 13},
			{Op: UDIV, Rd: 16, Rs: 12, Rt: 13},
			{Op: UMOD, Rd: 17, Rs: 12, Rt: 13},
			{Op: ST, Rs: RZero, Imm: 10, Rt: 14},
			{Op: ST, Rs: RZero, Imm: 11, Rt: 15},
			{Op: ST, Rs: RZero, Imm: 12, Rt: 16},
			{Op: ST, Rs: RZero, Imm: 13, Rt: 17},
			{Op: RET},
		}
		_, m := runSnippet(t, code, func(m *Machine) {
			m.Regs[12], m.Regs[13] = a, b
		})
		return m.Mem[10] == a/b && m.Mem[11] == a%b &&
			m.Mem[12] == int64(uint64(a)/uint64(b)) &&
			m.Mem[13] == int64(uint64(a)%uint64(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDivByZeroTraps(t *testing.T) {
	prog := &Program{
		Segs: []*Segment{{Name: "main", Code: []Inst{
			{Op: DIV, Rd: RRV, Rs: 12, Rt: 13},
			{Op: RET},
		}, Region: -1}},
		FuncIndex: map[string]int{"main": 0},
	}
	m := NewMachine(prog, 1<<12)
	if _, err := m.Call("main"); err == nil {
		t.Error("expected divide-by-zero trap")
	}
}

func TestFloatOps(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		code := []Inst{
			{Op: FADD, Rd: 14, Rs: 12, Rt: 13},
			{Op: FMUL, Rd: 15, Rs: 12, Rt: 13},
			{Op: FLT, Rd: 16, Rs: 12, Rt: 13},
			{Op: FTOI, Rd: 17, Rs: 12},
			{Op: ST, Rs: RZero, Imm: 10, Rt: 14},
			{Op: ST, Rs: RZero, Imm: 11, Rt: 15},
			{Op: ST, Rs: RZero, Imm: 12, Rt: 16},
			{Op: ST, Rs: RZero, Imm: 13, Rt: 17},
			{Op: RET},
		}
		_, m := runSnippet(t, code, func(m *Machine) {
			m.Regs[12] = int64(math.Float64bits(a))
			m.Regs[13] = int64(math.Float64bits(b))
		})
		okAdd := math.Float64frombits(uint64(m.Mem[10])) == a+b
		okMul := math.Float64frombits(uint64(m.Mem[11])) == a*b
		okLt := m.Mem[12] == b2i(a < b)
		okCvt := math.Abs(a) >= 1e18 || m.Mem[13] == int64(a)
		return okAdd && okMul && okLt && okCvt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLoadStoreAndBounds(t *testing.T) {
	code := []Inst{
		{Op: LI, Rd: 12, Imm: 100},
		{Op: LI, Rd: 13, Imm: 777},
		{Op: ST, Rs: 12, Imm: 5, Rt: 13},
		{Op: LD, Rd: RRV, Rs: 12, Imm: 5},
		{Op: RET},
	}
	v, m := runSnippet(t, code, nil)
	if v != 777 || m.Mem[105] != 777 {
		t.Errorf("load/store: got %d", v)
	}
	// Out of bounds load traps.
	prog := &Program{
		Segs: []*Segment{{Name: "main", Code: []Inst{
			{Op: LI, Rd: 12, Imm: 1 << 40},
			{Op: LD, Rd: RRV, Rs: 12},
			{Op: RET},
		}, Region: -1}},
		FuncIndex: map[string]int{"main": 0},
	}
	if _, err := NewMachine(prog, 1<<12).Call("main"); err == nil {
		t.Error("expected OOB trap")
	}
}

func TestCallRestoresRegisters(t *testing.T) {
	// Callee clobbers r20 and SP; caller must see them restored, with RRV
	// carrying the return value (register-window semantics).
	callee := &Segment{Name: "callee", Region: -1, Code: []Inst{
		{Op: LI, Rd: 20, Imm: 999},
		{Op: SUBI, Rd: RSP, Rs: RSP, Imm: 64},
		{Op: LI, Rd: RRV, Imm: 5},
		{Op: RET},
	}}
	main := &Segment{Name: "main", Region: -1, Code: []Inst{
		{Op: LI, Rd: 20, Imm: 111},
		{Op: CALL, Imm: 1},
		{Op: ADD, Rd: RRV, Rs: RRV, Rt: 20}, // 5 + 111
		{Op: RET},
	}}
	prog := &Program{Segs: []*Segment{main, callee}, FuncIndex: map[string]int{"main": 0, "callee": 1}}
	m := NewMachine(prog, 1<<12)
	spBefore := m.Regs[RSP]
	v, err := m.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if v != 116 {
		t.Errorf("got %d, want 116", v)
	}
	_ = spBefore
}

func TestRecursion(t *testing.T) {
	// fact(n): if n == 0 return 1; return n * fact(n-1). Arg in RA0.
	fact := &Segment{Name: "fact", Region: -1, Code: []Inst{
		{Op: BNEZ, Rs: RA0, Target: 3},
		{Op: LI, Rd: RRV, Imm: 1},
		{Op: RET},
		{Op: MOV, Rd: 20, Rs: RA0},
		{Op: SUBI, Rd: RA0, Rs: RA0, Imm: 1},
		{Op: CALL, Imm: 0},
		{Op: MUL, Rd: RRV, Rs: 20, Rt: RRV},
		{Op: RET},
	}}
	prog := &Program{Segs: []*Segment{fact}, FuncIndex: map[string]int{"fact": 0}}
	m := NewMachine(prog, 1<<12)
	v, err := m.Call("fact", 10)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3628800 {
		t.Errorf("fact(10) = %d", v)
	}
}

func TestJumpTable(t *testing.T) {
	seg := &Segment{Name: "main", Region: -1,
		Code: []Inst{
			{Op: JTBL, Rs: RA0, Imm: 0},
			{Op: LI, Rd: RRV, Imm: 10}, // entry 0
			{Op: RET},
			{Op: LI, Rd: RRV, Imm: 20}, // entry 1
			{Op: RET},
		},
		JumpTables: [][]int{{1, 3}},
	}
	prog := &Program{Segs: []*Segment{seg}, FuncIndex: map[string]int{"main": 0}}
	m := NewMachine(prog, 1<<12)
	for arg, want := range map[int64]int64{0: 10, 1: 20} {
		v, err := m.Call("main", arg)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Errorf("jtbl(%d) = %d, want %d", arg, v, want)
		}
	}
	if _, err := m.Call("main", 7); err == nil {
		t.Error("expected out-of-range jump table trap")
	}
}

func TestXFERTransfersToParent(t *testing.T) {
	parent := &Segment{Name: "main", Region: -1, Code: []Inst{
		{Op: LI, Rd: RRV, Imm: -1},
		{Op: DYNENTER, Imm: 0},
		{Op: LI, Rd: RRV, Imm: 42}, // reached via XFER from the stitched seg
		{Op: RET},
	}}
	prog := &Program{Segs: []*Segment{parent}, FuncIndex: map[string]int{"main": 0}, NumRegions: 1}
	stitched := &Segment{Name: "s", Parent: parent, Region: 0, Stitched: true, Code: []Inst{
		{Op: XFER, Target: 2},
	}}
	m := NewMachine(prog, 1<<12)
	m.OnDynEnter = func(m *Machine, region int) (*Segment, error) {
		return stitched, nil
	}
	v, err := m.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("got %d", v)
	}
	if m.Region(0).Invocations != 1 {
		t.Errorf("invocations: %d", m.Region(0).Invocations)
	}
}

func TestCycleAccounting(t *testing.T) {
	code := []Inst{
		{Op: LI, Rd: 12, Imm: 1},        // 1
		{Op: MUL, Rd: 13, Rs: 12},       // CostMul
		{Op: LD, Rd: 14, Rs: 0, Imm: 1}, // CostLoad
		{Op: RET},                       // CostRet
	}
	_, m := runSnippet(t, code, nil)
	want := uint64(1 + CostMul + CostLoad + CostRet)
	if m.Cycles != want {
		t.Errorf("cycles = %d, want %d", m.Cycles, want)
	}
}

func TestHeapStackCollision(t *testing.T) {
	prog := &Program{
		Segs: []*Segment{{Name: "main", Code: []Inst{
			{Op: LI, Rd: 12, Imm: 1 << 20},
			{Op: ALLOC, Rd: 13, Rs: 12},
			{Op: RET},
		}, Region: -1}},
		FuncIndex: map[string]int{"main": 0},
	}
	m := NewMachine(prog, 1<<10) // tiny memory
	if _, err := m.Call("main"); err == nil {
		t.Error("expected heap/stack collision")
	}
}

func TestBuiltins(t *testing.T) {
	call := func(name string, args ...int64) int64 {
		id := int64(-(BuiltinIndex[name] + 1))
		var code []Inst
		for i := range args {
			code = append(code, Inst{Op: LI, Rd: RA0 + Reg(i), Imm: args[i]})
		}
		code = append(code, Inst{Op: CALL, Imm: id}, Inst{Op: RET})
		v, _ := runSnippet(t, code, nil)
		return v
	}
	if got := call("abs", -5); got != 5 {
		t.Errorf("abs(-5) = %d", got)
	}
	if got := call("min", 3, 9); got != 3 {
		t.Errorf("min = %d", got)
	}
	if got := call("max", 3, 9); got != 9 {
		t.Errorf("max = %d", got)
	}
}
