package vm

// DeadWriteNops replaces pure register writes that are provably dead with
// NOPs: the destination is redefined before any read, with no intervening
// control-flow boundary (branch target, branch, call, or segment exit).
// Callers strip the NOPs afterwards. This mops up the constant
// materializations left behind once literal operands are folded into
// immediate instruction forms.
func DeadWriteNops(code []Inst) int {
	return DeadWriteNopsBuf(code, make([]bool, len(code)+1))
}

// DeadWriteNopsBuf is DeadWriteNops with a caller-provided branch-target
// mark buffer (len >= len(code)+1), for hot callers that pool scratch and
// must not allocate per call.
func DeadWriteNopsBuf(code []Inst, target []bool) int {
	target = target[:len(code)+1]
	for i := range target {
		target[i] = false
	}
	for _, in := range code {
		switch in.Op {
		case BEQZ, BNEZ, BEQI, BR, CMPBR, CMPBRI:
			if in.Target >= 0 && in.Target < len(target) {
				target[in.Target] = true
			}
		}
	}
	reads := func(in Inst, r Reg) bool {
		if r == RZero {
			return false
		}
		switch in.Op {
		case LI, LDC, BR, RET, XFER, NOP, HALT, JTBL:
			return in.Op == JTBL && in.Rs == r
		case ST:
			return in.Rs == r || in.Rt == r
		case BEQZ, BNEZ, BEQI, CMPBRI:
			return in.Rs == r
		case MOV, NEG, NOT, FNEG, ITOF, FTOI, LD, ALLOC:
			return in.Rs == r
		case CMPBR, LDOP, LDOPR, MADDI:
			return in.Rs == r || in.Rt == r
		case CALL, DYNENTER, DYNSTITCH:
			return true // conservatively reads everything
		}
		if in.Op.HasImmOperand() {
			return in.Rs == r
		}
		return in.Rs == r || in.Rt == r
	}
	pureWrite := func(in Inst) bool {
		switch in.Op {
		case LI, MOV, NEG, NOT, FNEG, ITOF, FTOI,
			ADD, SUB, MUL, AND, OR, XOR, SHL, SHR, SHRU,
			SEQ, SNE, SLT, SLE, SLTU, SLEU,
			ADDI, SUBI, MULI, ANDI, ORI, XORI, SHLI, SHRI, SHRUI,
			SEQI, SNEI, SLTI, SLEI, SLTUI, SLEUI,
			FADD, FSUB, FMUL:
			return true
		}
		return false
	}
	writes := func(in Inst, r Reg) bool {
		switch in.Op {
		case ST, BEQZ, BNEZ, BEQI, BR, RET, XFER, NOP, HALT, JTBL,
			CMPBR, CMPBRI: // Rd is the branch sense, not a destination
			return false
		}
		return in.Rd == r
	}
	n := 0
	for i, in := range code {
		if !pureWrite(in) || in.Rd == RZero || in.Rd == RSP || in.Rd == RRV {
			continue
		}
		rd := in.Rd
		dead := false
		for j := i + 1; j < len(code); j++ {
			if target[j] {
				break // another path may read rd
			}
			cj := code[j]
			if reads(cj, rd) {
				break
			}
			if writes(cj, rd) {
				dead = true
				break
			}
			switch cj.Op {
			case BR, BEQZ, BNEZ, BEQI, CMPBR, CMPBRI, JTBL, RET, XFER, CALL, DYNENTER, DYNSTITCH:
				j = len(code) // control leaves the span; be conservative
			}
		}
		if dead {
			code[i] = Inst{Op: NOP}
			n++
		}
	}
	return n
}
