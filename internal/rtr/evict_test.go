package rtr

import (
	"errors"
	"fmt"
	"testing"

	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

func testRuntime(cache CacheOptions, regions int) *Runtime {
	rs := make([]*tmpl.Region, regions)
	for i := range rs {
		rs[i] = &tmpl.Region{Name: fmt.Sprintf("r%d", i)}
	}
	return New(nil, rs, Options{Cache: cache})
}

// addCompleted plants a published (resident) entry, as stitchShared would
// after a successful stitch.
func addCompleted(rt *Runtime, region int, key string, seg *vm.Segment) *entry {
	sh := rt.shardFor(region, key)
	ck := cacheKey{region: region, key: key}
	e := &entry{key: ck, gen: rt.gens[region].Load(),
		done: make(chan struct{}), seg: seg, slot: -1}
	close(e.done)
	sh.mu.Lock()
	sh.entries[ck] = e
	sh.publishLocked(rt, e)
	sh.mu.Unlock()
	return e
}

// TestLookupAccountingInvariant pins the satellite fix: every lookup
// increments exactly one of hits, waits, failedHits or misses, so
// lookups == hits + waits + failedHits + misses at all times. The seed
// counted an in-flight or failed entry as a miss AND the follow-up stitch
// as a wait, double-counting the same dispatch.
func TestLookupAccountingInvariant(t *testing.T) {
	rt := testRuntime(CacheOptions{Shards: 1}, 1)
	seg := &vm.Segment{}

	// 1: true miss.
	if got := rt.lookupShared(0, "a"); got != nil {
		t.Fatal("lookup on empty cache returned a segment")
	}
	// 2: completed hit.
	addCompleted(rt, 0, "a", seg)
	if got := rt.lookupShared(0, "a"); got != seg {
		t.Fatal("completed entry not served")
	}
	// 3: in-flight entry counts as a wait, not a miss.
	shB := rt.shardFor(0, "b")
	shB.mu.Lock()
	shB.entries[cacheKey{0, "b"}] = &entry{key: cacheKey{0, "b"},
		done: make(chan struct{}), slot: -1}
	shB.mu.Unlock()
	if got := rt.lookupShared(0, "b"); got != nil {
		t.Fatal("in-flight entry must not be served")
	}
	// 4: completed-but-failed entry is a failedHit, not a miss.
	shC := rt.shardFor(0, "c")
	ec := &entry{key: cacheKey{0, "c"}, done: make(chan struct{}),
		err: errors.New("boom"), slot: -1}
	close(ec.done)
	shC.mu.Lock()
	shC.entries[cacheKey{0, "c"}] = ec
	shC.mu.Unlock()
	if got := rt.lookupShared(0, "c"); got != nil {
		t.Fatal("failed entry must not be served")
	}

	cs := rt.CacheStats()
	if cs.Lookups != 4 || cs.SharedHits != 1 || cs.Waits != 1 ||
		cs.FailedHits != 1 || cs.Misses != 1 {
		t.Errorf("counters: %+v, want 4 lookups = 1 hit + 1 wait + 1 failedHit + 1 miss", cs)
	}
	if cs.Lookups != cs.SharedHits+cs.Waits+cs.FailedHits+cs.Misses {
		t.Errorf("invariant violated: %+v", cs)
	}
}

// TestClockSecondChance checks the L1 CLOCK policy: an entry referenced
// since the hand last passed survives one sweep; unreferenced entries are
// evicted in hand order, and all resident accounting moves with them.
func TestClockSecondChance(t *testing.T) {
	rt := testRuntime(CacheOptions{Shards: 1, MaxEntries: 8}, 1)
	segA, segB, segC := &vm.Segment{}, &vm.Segment{}, &vm.Segment{}
	addCompleted(rt, 0, "a", segA)
	eb := addCompleted(rt, 0, "b", segB)
	addCompleted(rt, 0, "c", segC)
	if got := rt.resident.Load(); got != 3 {
		t.Fatalf("resident = %d, want 3", got)
	}

	// Touch b: its reference bit must buy it a second chance.
	if rt.lookupShared(0, "b") != segB {
		t.Fatal("lookup b")
	}
	if !eb.ref {
		t.Fatal("hit did not set the reference bit")
	}

	sh := &rt.shards[0]
	sh.mu.Lock()
	ok1 := sh.evictOneLocked(rt, -1)
	ok2 := sh.evictOneLocked(rt, -1)
	sh.mu.Unlock()
	if !ok1 || !ok2 {
		t.Fatal("evictions failed with non-empty ring")
	}
	if rt.lookupShared(0, "b") != segB {
		t.Error("referenced entry was evicted before unreferenced ones")
	}
	if rt.lookupShared(0, "a") != nil || rt.lookupShared(0, "c") != nil {
		t.Error("unreferenced entries should have been evicted")
	}
	cs := rt.CacheStats()
	if cs.Evictions != 2 || cs.EntriesResident != 1 {
		t.Errorf("stats after eviction: %+v", cs)
	}
}

// TestRegionFilteredEviction checks that per-region reclamation only takes
// entries of the requested region.
func TestRegionFilteredEviction(t *testing.T) {
	rt := testRuntime(CacheOptions{Shards: 1}, 2)
	addCompleted(rt, 0, "a", &vm.Segment{})
	addCompleted(rt, 1, "b", &vm.Segment{})
	sh := &rt.shards[0]
	sh.mu.Lock()
	ok := sh.evictOneLocked(rt, 1)
	sh.mu.Unlock()
	if !ok {
		t.Fatal("no eviction")
	}
	if rt.lookupShared(0, "a") == nil {
		t.Error("eviction filtered on region 1 took a region-0 entry")
	}
	if rt.regionResident[1].Load() != 0 || rt.regionResident[0].Load() != 1 {
		t.Errorf("per-region residents: r0=%d r1=%d",
			rt.regionResident[0].Load(), rt.regionResident[1].Load())
	}
}

// TestEvictLog checks the bounded restitch-detection log: recent evictions
// are remembered, removal forgets, and the ring wraps without growing.
func TestEvictLog(t *testing.T) {
	var l evictLog
	for i := 0; i < evictLogSize+50; i++ {
		l.add(cacheKey{region: 0, key: fmt.Sprintf("k%d", i)})
	}
	if len(l.keys) != evictLogSize {
		t.Fatalf("log grew to %d, cap %d", len(l.keys), evictLogSize)
	}
	if l.remove(cacheKey{0, "k0"}) {
		t.Error("oldest key should have been overwritten")
	}
	last := cacheKey{0, fmt.Sprintf("k%d", evictLogSize+49)}
	if !l.remove(last) {
		t.Error("recent key missing from log")
	}
	if l.remove(last) {
		t.Error("removed key still present")
	}
}

// TestL2SecondChanceCap checks the per-machine cache cap: the count never
// exceeds MachineMaxEntries, eviction is second-chance (a referenced slot
// outlives unreferenced older ones), and flushes keep the count honest.
func TestL2SecondChanceCap(t *testing.T) {
	rt := testRuntime(CacheOptions{MachineMaxEntries: 3}, 1)
	ms := newMachineState(rt)
	seg := &vm.Segment{}
	for i := 0; i < 10; i++ {
		ms.put(rt, 0, fmt.Sprintf("k%d", i), seg)
		if ms.count > 3 {
			t.Fatalf("L2 count %d exceeds cap 3 after insert %d", ms.count, i)
		}
		// Keep k-first hot: reference it whenever resident.
		if s, ok := ms.cache[0]["k0"]; ok {
			s.ref = true
		}
	}
	if _, ok := ms.cache[0]["k0"]; !ok {
		t.Error("referenced slot was evicted before unreferenced ones")
	}
	if got := len(ms.cache[0]); got != ms.count {
		t.Errorf("count %d disagrees with map size %d", ms.count, got)
	}
	if rt.l2Evictions.Load() == 0 {
		t.Error("no L2 evictions counted")
	}

	ms.flushRegion(0, 1)
	if ms.count != 0 || ms.cache[0] != nil {
		t.Errorf("flush left count=%d", ms.count)
	}
	// Stale FIFO refs from before the flush must not confuse later
	// eviction or break the cap.
	for i := 0; i < 6; i++ {
		ms.put(rt, 0, fmt.Sprintf("n%d", i), seg)
	}
	if ms.count > 3 {
		t.Errorf("count %d exceeds cap after flush+refill", ms.count)
	}
}

// TestL2FifoCompaction: repeated invalidation cycles must not grow the
// FIFO unboundedly even though every flush strands its queue entries.
func TestL2FifoCompaction(t *testing.T) {
	rt := testRuntime(CacheOptions{MachineMaxEntries: 4}, 1)
	ms := newMachineState(rt)
	seg := &vm.Segment{}
	for gen := uint64(1); gen <= 200; gen++ {
		for i := 0; i < 4; i++ {
			ms.put(rt, 0, fmt.Sprintf("g%dk%d", gen, i), seg)
		}
		ms.flushRegion(0, gen)
	}
	if len(ms.fifo) > 2*ms.count+64 {
		t.Errorf("fifo grew to %d refs for %d live slots", len(ms.fifo), ms.count)
	}
}

// TestKeepStitchedCap pins the satellite fix for diagnostic retention:
// set-based dedup (the seed scanned the slice per stitch) and a hard cap.
func TestKeepStitchedCap(t *testing.T) {
	rt := testRuntime(CacheOptions{KeepStitched: true, KeepStitchedCap: 3}, 1)
	segs := make([]*vm.Segment, 5)
	for i := range segs {
		segs[i] = &vm.Segment{}
		rt.keepStitched(0, segs[i])
		rt.keepStitched(0, segs[i]) // dedup: recording twice is a no-op
	}
	if got := len(rt.Stitched[0]); got != 3 {
		t.Errorf("retained %d segments, want cap 3", got)
	}
	for i, s := range rt.Stitched[0] {
		if s != segs[i] {
			t.Errorf("retention order broken at %d", i)
		}
	}
}

// TestInvalidateDropsResidents: Invalidate must empty the region's shared
// cache and bump its generation so machines flush their private copies.
func TestInvalidateDropsResidents(t *testing.T) {
	rt := testRuntime(CacheOptions{Shards: 4}, 2)
	for i := 0; i < 10; i++ {
		addCompleted(rt, 0, fmt.Sprintf("k%d", i), &vm.Segment{})
	}
	addCompleted(rt, 1, "other", &vm.Segment{})
	g := rt.Generation(0)
	rt.Invalidate(0)
	if rt.Generation(0) != g+1 {
		t.Error("generation not bumped")
	}
	if got := rt.regionResident[0].Load(); got != 0 {
		t.Errorf("region 0 still has %d resident entries", got)
	}
	if rt.lookupShared(1, "other") == nil {
		t.Error("invalidating region 0 dropped a region-1 entry")
	}
	if cs := rt.CacheStats(); cs.Invalidations != 1 || cs.Evictions != 0 {
		t.Errorf("invalidation must not count as eviction: %+v", cs)
	}
}

// TestInvalidateKeyTargets: InvalidateKey drops exactly one shared entry;
// the rest of the region stays resident for cheap re-adoption.
func TestInvalidateKeyTargets(t *testing.T) {
	rt := testRuntime(CacheOptions{Shards: 4}, 1)
	addCompleted(rt, 0, encodeKey([]int64{3}), &vm.Segment{})
	addCompleted(rt, 0, encodeKey([]int64{7}), &vm.Segment{})
	rt.InvalidateKey(0, 3)
	if rt.lookupShared(0, encodeKey([]int64{3})) != nil {
		t.Error("invalidated key still served")
	}
	if rt.lookupShared(0, encodeKey([]int64{7})) == nil {
		t.Error("untouched key was dropped")
	}
}
