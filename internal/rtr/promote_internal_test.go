package rtr

import (
	"testing"

	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// TestWrapGuardsPrefixAndTargets: guard wrapping prepends one GUARD per
// key with the stitched key values and the region's deopt pc, shifts
// internal branch targets by the guard count, and leaves parent-segment
// targets (XFER) alone — on a fresh segment, never mutating the input.
func TestWrapGuardsPrefixAndTargets(t *testing.T) {
	r := &tmpl.Region{Name: "r", Auto: true,
		KeyRegs: []vm.Reg{5, 6}, DeoptPC: 42}
	parent := &vm.Segment{Name: "p", Code: []vm.Inst{{Op: vm.HALT}}}
	seg := &vm.Segment{
		Name: "s",
		Code: []vm.Inst{
			{Op: vm.BR, Target: 2},
			{Op: vm.XFER, Target: 7},
			{Op: vm.BEQZ, Rs: 1, Target: 0},
		},
		Parent:   parent,
		Region:   0,
		Stitched: true,
	}
	key := encodeKey([]int64{11, -3})
	ns, err := wrapGuards(r, seg, key)
	if err != nil {
		t.Fatal(err)
	}
	if ns == seg {
		t.Fatal("wrapGuards must return a fresh segment")
	}
	if len(seg.Code) != 3 || seg.Code[0].Target != 2 {
		t.Fatal("input segment was mutated")
	}
	want := []vm.Inst{
		{Op: vm.GUARD, Rs: 5, Imm: 11, Target: 42},
		{Op: vm.GUARD, Rs: 6, Imm: -3, Target: 42},
		{Op: vm.BR, Target: 4},          // internal: shifted by 2
		{Op: vm.XFER, Target: 7},        // parent pc: unshifted
		{Op: vm.BEQZ, Rs: 1, Target: 2}, // internal: shifted by 2
	}
	if len(ns.Code) != len(want) {
		t.Fatalf("code length %d, want %d", len(ns.Code), len(want))
	}
	for i, in := range want {
		if ns.Code[i] != in {
			t.Fatalf("inst %d: got %v, want %v", i, ns.Code[i], in)
		}
	}
	if ns.Parent != parent || !ns.Stitched || ns.Region != 0 || ns.Name != "s" {
		t.Fatal("segment metadata not carried over")
	}
}

// TestWrapGuardsNoKeys: regions without key registers pass through
// unchanged (nothing to guard).
func TestWrapGuardsNoKeys(t *testing.T) {
	r := &tmpl.Region{Name: "r", Auto: true}
	seg := &vm.Segment{Name: "s", Code: []vm.Inst{{Op: vm.HALT}}}
	ns, err := wrapGuards(r, seg, "")
	if err != nil {
		t.Fatal(err)
	}
	if ns != seg {
		t.Fatal("keyless region should pass through unwrapped")
	}
}

// TestWrapGuardsRejectsJumpTables: stitched segments never carry jump
// tables; a segment that somehow does must be refused, not emitted with
// stale table targets.
func TestWrapGuardsRejectsJumpTables(t *testing.T) {
	r := &tmpl.Region{Name: "r", Auto: true, KeyRegs: []vm.Reg{5}, DeoptPC: 1}
	seg := &vm.Segment{Name: "s",
		Code:       []vm.Inst{{Op: vm.HALT}},
		JumpTables: [][]int{{0}},
	}
	if _, err := wrapGuards(r, seg, encodeKey([]int64{1})); err == nil {
		t.Fatal("expected an error for a segment with jump tables")
	}
}

// TestAutoOptionsDefaults: zero-value options resolve to the documented
// defaults, and explicit values pass through.
func TestAutoOptionsDefaults(t *testing.T) {
	var o AutoOptions
	if o.promoteThreshold() != DefaultPromoteThreshold {
		t.Errorf("promoteThreshold: %d", o.promoteThreshold())
	}
	if o.backoffFactor() != DefaultBackoffFactor {
		t.Errorf("backoffFactor: %d", o.backoffFactor())
	}
	if o.maxThreshold() != DefaultMaxThreshold {
		t.Errorf("maxThreshold: %d", o.maxThreshold())
	}
	o = AutoOptions{PromoteThreshold: 5, BackoffFactor: 7, MaxThreshold: 99}
	if o.promoteThreshold() != 5 || o.backoffFactor() != 7 || o.maxThreshold() != 99 {
		t.Errorf("explicit options not honored: %+v", o)
	}
	// A backoff factor below 2 would never grow the threshold (livelock);
	// it falls back to the default.
	o = AutoOptions{BackoffFactor: 1}
	if o.backoffFactor() != DefaultBackoffFactor {
		t.Errorf("backoffFactor(1): %d", o.backoffFactor())
	}
}
