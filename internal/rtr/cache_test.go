package rtr

import (
	"encoding/binary"
	"sync"
	"testing"

	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// TestAppendKeyRoundTrip checks that binary key encoding distinguishes
// values the seed's "%d," encoding distinguished, including negatives and
// values whose decimal renderings collide when concatenated.
func TestAppendKeyRoundTrip(t *testing.T) {
	r := &tmpl.Region{KeyRegs: []vm.Reg{1, 2}}
	m := &vm.Machine{}
	seen := map[string][2]int64{}
	cases := [][2]int64{
		{0, 0}, {1, -1}, {-1, 1}, {12, 3}, {1, 23},
		{1 << 40, -(1 << 40)}, {127, 128}, {-64, -65},
	}
	var buf []byte
	for _, c := range cases {
		m.Regs[1], m.Regs[2] = c[0], c[1]
		buf = appendKey(buf[:0], m, r)
		k := string(buf)
		if prev, ok := seen[k]; ok {
			t.Fatalf("key collision: %v and %v encode to %q", prev, c, k)
		}
		seen[k] = c

		// The encoding must decode back to the inputs.
		rest := buf
		for i := 0; i < 2; i++ {
			v, n := binary.Varint(rest)
			if n <= 0 {
				t.Fatalf("bad varint for %v", c)
			}
			if v != c[i] {
				t.Fatalf("decode %v[%d] = %d", c, i, v)
			}
			rest = rest[n:]
		}
	}
}

// TestShardSpread sanity-checks that FNV over encoded keys spreads
// specializations across shards rather than piling onto one lock.
func TestShardSpread(t *testing.T) {
	rt := &Runtime{shards: make([]shard, numShards(0))}
	used := map[*shard]bool{}
	var buf []byte
	m := &vm.Machine{}
	r := &tmpl.Region{KeyRegs: []vm.Reg{1}}
	for i := int64(0); i < 1024; i++ {
		m.Regs[1] = i
		buf = appendKey(buf[:0], m, r)
		used[rt.shardFor(0, string(buf))] = true
	}
	if len(used) < len(rt.shards)/2 {
		t.Errorf("1024 keys landed on only %d/%d shards", len(used), len(rt.shards))
	}
}

func TestNumShards(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{0, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {17, 32}, {32, 32}, {33, 64},
	} {
		if got := numShards(c.in); got != c.want {
			t.Errorf("numShards(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// The level-2 per-machine cache is a plain goroutine-confined map. The
// benchmarks below justify that choice over sync.Map for the read-mostly
// dispatch path: a plain map lookup with a []byte-keyed index expression
// compiles to a no-alloc mapaccess, while sync.Map forces an interface
// conversion (allocating) per lookup and adds atomic overhead — and buys
// nothing, because the VM contract already confines a machine to one
// goroutine.
func BenchmarkL2MapStrategies(b *testing.B) {
	m := &vm.Machine{}
	r := &tmpl.Region{KeyRegs: []vm.Reg{1, 2}}
	seg := &vm.Segment{}

	fill := func(put func(string, *vm.Segment)) {
		var buf []byte
		for i := int64(0); i < 64; i++ {
			m.Regs[1], m.Regs[2] = i, i*3
			buf = appendKey(buf[:0], m, r)
			put(string(buf), seg)
		}
	}

	b.Run("plain-map", func(b *testing.B) {
		cache := map[string]*vm.Segment{}
		fill(func(k string, s *vm.Segment) { cache[k] = s })
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := int64(i & 63)
			m.Regs[1], m.Regs[2] = k, k*3
			buf = appendKey(buf[:0], m, r)
			if cache[string(buf)] == nil {
				b.Fatal("miss")
			}
		}
	})

	b.Run("sync-map", func(b *testing.B) {
		var cache sync.Map
		fill(func(k string, s *vm.Segment) { cache.Store(k, s) })
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := int64(i & 63)
			m.Regs[1], m.Regs[2] = k, k*3
			buf = appendKey(buf[:0], m, r)
			if v, ok := cache.Load(string(buf)); !ok || v == nil {
				b.Fatal("miss")
			}
		}
	})
}
