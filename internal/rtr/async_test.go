package rtr_test

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
)

// checkLookupInvariant asserts the accounting invariant that every shared
// lookup is classified exactly once. FallbackRuns is deliberately absent:
// it counts executions on the generic tier, not lookups.
func checkLookupInvariant(t *testing.T, cs rtr.CacheStats) {
	t.Helper()
	if cs.Lookups != cs.SharedHits+cs.Waits+cs.FailedHits+cs.Misses {
		t.Errorf("lookup invariant violated: %d lookups != %d hits + %d waits + %d failed + %d misses",
			cs.Lookups, cs.SharedHits, cs.Waits, cs.FailedHits, cs.Misses)
	}
}

// With AsyncStitch on, cold keys must run on the generic fallback tier
// (correct results, no inline stitch) while background workers stitch; once
// the pool quiesces, every distinct key has been stitched exactly once and
// the machines have adopted the specialized code without ever compiling.
func TestAsyncStitchCorrectness(t *testing.T) {
	keys := []int64{2, 3, 5, 7, 11, 13}
	xs := []int64{1, -4, 9, 1000}
	for _, merged := range []bool{false, true} {
		name := "two-pass"
		if merged {
			name = "merged"
		}
		t.Run(name, func(t *testing.T) {
			c, err := core.Compile(keyedSrc, core.Config{
				Dynamic: true, Optimize: true, MergedStitch: merged,
				Cache: rtr.CacheOptions{AsyncStitch: true}})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Runtime.Close()
			if c.Runtime.KeySetup[0] == nil {
				t.Fatal("no KeySetup installed for the shareable keyed region")
			}
			m := c.NewMachine(0)
			for round := 0; round < 4; round++ {
				for _, s := range keys {
					for _, x := range xs {
						got, err := m.Call("scale", s, x)
						if err != nil {
							t.Fatal(err)
						}
						if got != s*x {
							t.Fatalf("scale(%d,%d) = %d, want %d", s, x, got, s*x)
						}
					}
				}
			}
			c.Runtime.WaitIdle()
			// Re-drive everything warm: the published specializations must
			// now serve every call.
			for _, s := range keys {
				for _, x := range xs {
					if got, err := m.Call("scale", s, x); err != nil || got != s*x {
						t.Fatalf("warm scale(%d,%d) = %d, %v", s, x, got, err)
					}
				}
			}
			if got := m.Region(0).Compiles; got != 0 {
				t.Errorf("machine compiles: %d, want 0 (stitching is the workers' job)", got)
			}
			cs := c.Runtime.CacheStats()
			if cs.FallbackRuns == 0 {
				t.Error("no executions on the generic fallback tier")
			}
			if cs.AsyncStitches != uint64(len(keys)) {
				t.Errorf("async stitches: %d, want %d (one per distinct key)",
					cs.AsyncStitches, len(keys))
			}
			if cs.Stitches != uint64(len(keys)) {
				t.Errorf("stitches: %d, want %d", cs.Stitches, len(keys))
			}
			if cs.QueueRejects != 0 {
				t.Errorf("queue rejects: %d, want 0 (queue far larger than key set)", cs.QueueRejects)
			}
			checkLookupInvariant(t, cs)
			if c.Runtime.Stats(0).InstsStitched == 0 {
				t.Error("worker stitch stats not aggregated")
			}
			if cs.PromoteQuantile(0.99) == 0 {
				t.Error("promote-latency histogram empty despite async stitches")
			}
		})
	}
}

// The very next call after a background stitch publishes must take the warm
// path: the shared lookup adopts the segment into the machine's level-2
// map, after which DYNENTER dispatch is a zero-allocation hit.
func TestAsyncPromotionNextCall(t *testing.T) {
	c, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{AsyncStitch: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Runtime.Close()
	m := c.NewMachine(0)
	if got, err := m.Call("scale", 7, 3); err != nil || got != 21 {
		t.Fatalf("cold call: %d, %v", got, err)
	}
	c.Runtime.WaitIdle()
	if c.Runtime.Peek(0, 7) == nil {
		t.Fatal("background stitch did not publish")
	}
	if got, err := m.Call("scale", 7, 5); err != nil || got != 35 {
		t.Fatalf("post-publish call: %d, %v", got, err)
	}
	cs := c.Runtime.CacheStats()
	if cs.FallbackRuns != 1 {
		t.Errorf("fallback runs: %d, want 1 (only the scheduling call)", cs.FallbackRuns)
	}
	if cs.SharedHits != 1 {
		t.Errorf("shared hits: %d, want 1 (the adopting lookup)", cs.SharedHits)
	}
	// The adopted segment is in the level-2 map now: warm dispatch must not
	// allocate, exactly like the inline path (TestDynEnterZeroAlloc).
	keyReg := c.Output.Regions[0].KeyRegs[0]
	allocs := testing.AllocsPerRun(1000, func() {
		m.Regs[keyReg] = 7
		seg, err := m.OnDynEnter(m, 0)
		if err != nil || seg == nil {
			t.Fatalf("warm dispatch missed: seg=%v err=%v", seg, err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm DYNENTER dispatch allocates %.1f/op, want 0", allocs)
	}
}

// Property: for any key, the segment published by a background worker is
// byte-identical to the one the inline (synchronous) path stitches — the
// worker re-derives the table from the key bytes, and a Shareable region's
// stitched output is a pure function of those bytes.
func TestAsyncStitchByteIdentical(t *testing.T) {
	keys := []int64{2, 3, 5, 7, 11, 13, 127, -9}
	async, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{AsyncStitch: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer async.Runtime.Close()
	inline, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	ma, mi := async.NewMachine(0), inline.NewMachine(0)
	for _, s := range keys {
		if _, err := ma.Call("scale", s, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := mi.Call("scale", s, 1); err != nil {
			t.Fatal(err)
		}
	}
	async.Runtime.WaitIdle()
	for _, s := range keys {
		a, b := async.Runtime.Peek(0, s), inline.Runtime.Peek(0, s)
		if a == nil || b == nil {
			t.Fatalf("key %d: missing published segment (async=%v inline=%v)", s, a != nil, b != nil)
		}
		if !reflect.DeepEqual(a.Code, b.Code) {
			t.Errorf("key %d: async code differs from inline stitch", s)
		}
		if !reflect.DeepEqual(a.Consts, b.Consts) {
			t.Errorf("key %d: async constant table differs", s)
		}
		if !reflect.DeepEqual(a.JumpTables, b.JumpTables) {
			t.Errorf("key %d: async jump tables differ", s)
		}
	}
}

// blockKeySetup wraps a region's key set-up function so the background
// worker blocks until released — a deterministic handle on the in-flight
// window for the backpressure and invalidation tests below.
func blockKeySetup(c *core.Compiled, region int) (release func()) {
	orig := c.Runtime.KeySetup[region]
	gate := make(chan struct{})
	c.Runtime.KeySetup[region] = func(keyVals []int64) ([]int64, int64, error) {
		<-gate
		return orig(keyVals)
	}
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }
}

// A full queue must reject new cold keys (backpressure) rather than block
// the caller: the claim is withdrawn, the call completes on the fallback
// tier, and a later miss reschedules the key.
func TestAsyncQueueBackpressure(t *testing.T) {
	c, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{AsyncStitch: true, StitchWorkers: 1, StitchQueue: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Runtime.Close()
	release := blockKeySetup(c, 0)
	defer release()

	m := c.NewMachine(0)
	keys := []int64{2, 3, 5}
	// With the single worker blocked inside the first key's set-up and a
	// queue of one, at most two of these three cold keys can be accepted
	// (one running, one queued); at least one must be rejected. Every call
	// still completes correctly on the fallback tier.
	for _, s := range keys {
		if got, err := m.Call("scale", s, 10); err != nil || got != s*10 {
			t.Fatalf("scale(%d,10) = %d, %v", s, got, err)
		}
	}
	cs := c.Runtime.CacheStats()
	if cs.QueueRejects == 0 {
		t.Error("expected at least one queue reject with a blocked worker and queue of 1")
	}
	if cs.FallbackRuns != uint64(len(keys)) {
		t.Errorf("fallback runs: %d, want %d (every cold call)", cs.FallbackRuns, len(keys))
	}

	release()
	c.Runtime.WaitIdle()
	// Rejected keys were withdrawn, not wedged: another pass reschedules
	// them and eventually every key publishes.
	for pass := 0; pass < 100; pass++ {
		done := true
		for _, s := range keys {
			if got, err := m.Call("scale", s, 10); err != nil || got != s*10 {
				t.Fatalf("scale(%d,10) = %d, %v", s, got, err)
			}
			if c.Runtime.Peek(0, s) == nil {
				done = false
			}
		}
		c.Runtime.WaitIdle()
		if done {
			break
		}
	}
	for _, s := range keys {
		if c.Runtime.Peek(0, s) == nil {
			t.Errorf("key %d never published after rejection", s)
		}
	}
	checkLookupInvariant(t, c.Runtime.CacheStats())
}

// A stitch in flight when its key is invalidated must be discarded, never
// published: the worker's result belongs to a dead generation.
func TestAsyncInFlightInvalidationDiscards(t *testing.T) {
	c, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{AsyncStitch: true, StitchWorkers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Runtime.Close()
	release := blockKeySetup(c, 0)
	defer release()

	m := c.NewMachine(0)
	if got, err := m.Call("scale", 7, 3); err != nil || got != 21 {
		t.Fatalf("cold call: %d, %v", got, err)
	}
	// The worker is blocked inside key 7's set-up. Invalidate the key now:
	// the in-flight entry is unmapped, so the publish must be declined.
	c.Runtime.InvalidateKey(0, 7)
	release()
	c.Runtime.WaitIdle()
	if c.Runtime.Peek(0, 7) != nil {
		t.Fatal("invalidated in-flight stitch was published")
	}
	cs := c.Runtime.CacheStats()
	if cs.AsyncDiscards != 1 {
		t.Errorf("async discards: %d, want 1", cs.AsyncDiscards)
	}
	// The key is re-schedulable: the next call falls back again and the
	// fresh-generation stitch publishes normally.
	if got, err := m.Call("scale", 7, 5); err != nil || got != 35 {
		t.Fatalf("post-invalidate call: %d, %v", got, err)
	}
	c.Runtime.WaitIdle()
	if c.Runtime.Peek(0, 7) == nil {
		t.Error("re-stitch after invalidation never published")
	}
	checkLookupInvariant(t, c.Runtime.CacheStats())
}

// Close must stop the pool without wedging callers: queued stitches are
// failed and withdrawn, and machines keep executing (on the fallback tier)
// with correct results.
func TestAsyncCloseKeepsMachinesRunning(t *testing.T) {
	c, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{AsyncStitch: true, StitchWorkers: 1, StitchQueue: 4}})
	if err != nil {
		t.Fatal(err)
	}
	release := blockKeySetup(c, 0)
	m := c.NewMachine(0)
	for _, s := range []int64{2, 3, 5} {
		if got, err := m.Call("scale", s, 4); err != nil || got != s*4 {
			t.Fatalf("scale(%d,4) = %d, %v", s, got, err)
		}
	}
	c.Runtime.Close()
	release()
	c.Runtime.WaitIdle() // must terminate: queue drained by Close, worker exits
	c.Runtime.Close()    // idempotent
	// Machines attached to a closed runtime still compute correct results.
	for round := 0; round < 3; round++ {
		for _, s := range []int64{2, 3, 5, 7} {
			if got, err := m.Call("scale", s, 9); err != nil || got != s*9 {
				t.Fatalf("post-close scale(%d,9) = %d, %v", s, got, err)
			}
		}
	}
	checkLookupInvariant(t, c.Runtime.CacheStats())
}

// AsyncStitch must not disturb regions that cannot take the async path:
// a non-shareable region (set-up reads machine memory) has no KeySetup and
// stitches inline exactly as before.
func TestAsyncUnshareableStitchesInline(t *testing.T) {
	c, err := core.Compile(pointerSrc, core.Config{Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{AsyncStitch: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Runtime.Close()
	if c.Runtime.KeySetup[0] != nil {
		t.Fatal("KeySetup installed for an unshareable region")
	}
	m := c.NewMachine(0)
	a, _ := m.Alloc(1)
	m.Mem[a] = 21
	if v, err := m.Call("first", a); err != nil || v != 42 {
		t.Fatalf("first: %d, %v", v, err)
	}
	if m.Region(0).Compiles != 1 {
		t.Errorf("compiles: %d, want 1 (inline stitch)", m.Region(0).Compiles)
	}
	if cs := c.Runtime.CacheStats(); cs.AsyncStitches != 0 || cs.FallbackRuns != 0 {
		t.Errorf("async counters moved for an ineligible region: %+v", cs)
	}
}

// The -race stress test: concurrent machines driving cold bursts while keys
// are invalidated and the CLOCK evicts under a tight cap, all with
// background stitching on. Every result must be correct, the lookup
// invariant must hold, and the resident count must respect the cap once the
// pool quiesces.
func TestAsyncConcurrentStress(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 12
		capEntries = 8
	)
	keys := make([]int64, 24)
	for i := range keys {
		keys[i] = int64(2 + 3*i)
	}
	xs := []int64{1, -4, 9, 1000}

	c, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{
			AsyncStitch: true,
			MaxEntries:  capEntries,
			ChurnStats:  true,
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Runtime.Close()

	machines := make([]*machineDriver, goroutines)
	for i := range machines {
		machines[i] = &machineDriver{m: c.NewMachine(0)}
	}
	var stop atomic.Bool
	var invalidator sync.WaitGroup
	invalidator.Add(1)
	go func() {
		// Concurrent invalidation pressure on a rotating key.
		defer invalidator.Done()
		for i := 0; !stop.Load(); i++ {
			c.Runtime.InvalidateKey(0, keys[i%len(keys)])
		}
	}()
	var wg sync.WaitGroup
	for _, d := range machines {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.drive(rounds, keys, xs)
		}()
	}
	wg.Wait()
	stop.Store(true)
	invalidator.Wait()
	c.Runtime.WaitIdle()

	for i, d := range machines {
		if d.err != nil {
			t.Fatalf("machine %d: %v", i, d.err)
		}
	}
	cs := c.Runtime.CacheStats()
	checkLookupInvariant(t, cs)
	if cs.AsyncStitches == 0 {
		t.Error("no background stitches under async stress")
	}
	if cs.FallbackRuns == 0 {
		t.Error("no fallback-tier executions under async stress")
	}
	if cs.EntriesResident > capEntries {
		t.Errorf("resident entries %d exceed cap %d after quiesce", cs.EntriesResident, capEntries)
	}
	if cs.PeakEntries > capEntries {
		t.Errorf("peak entries %d exceed cap %d", cs.PeakEntries, capEntries)
	}
	churn := c.Runtime.Churn()
	if len(churn) == 0 {
		t.Fatal("churn histogram missing")
	}
	var churnStitches uint64
	for _, row := range churn {
		churnStitches += row.Stitches
	}
	if churnStitches != cs.Stitches {
		t.Errorf("churn stitches %d != cache stitches %d", churnStitches, cs.Stitches)
	}
}
