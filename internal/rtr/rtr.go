// Package rtr is the run-time half of the system: it wires the VM's
// dynamic-region hooks, manages the per-region cache of stitched code
// (keyed by the values of the region's key variables, paper section 2),
// invokes the stitcher, and accounts its modeled cost.
package rtr

import (
	"fmt"

	"dyncc/internal/stitcher"
	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// Runtime manages stitched code for one program. A Runtime may be attached
// to any number of machines; each machine gets its own code cache (its
// table lives in its own memory).
type Runtime struct {
	Prog    *vm.Program
	Regions []*tmpl.Region
	Opts    stitcher.Options

	// Stats accumulates stitcher statistics per region index across all
	// attached machines.
	Stats []stitcher.Stats

	// Stitched records every stitched segment per region (diagnostics).
	Stitched map[int][]*vm.Segment

	// SetupFn, when present for a region, evaluates the region's set-up
	// host-side (the paper's section 7 merged set-up+stitch mode): it
	// builds the run-time constants table directly in the machine's memory
	// and returns its base address plus the modeled cycle cost. With a
	// SetupFn installed, stitching happens immediately at DYNENTER and the
	// inline VM set-up code is never executed.
	SetupFn map[int]func(m *vm.Machine) (int64, uint64, error)

	// machines tracks per-machine state (each machine has its own code
	// cache, since its tables live in its own memory).
	machines map[*vm.Machine]*machineState
}

// New creates a runtime for prog with the given region metadata.
func New(prog *vm.Program, regions []*tmpl.Region, opts stitcher.Options) *Runtime {
	return &Runtime{
		Prog:     prog,
		Regions:  regions,
		Opts:     opts,
		Stats:    make([]stitcher.Stats, len(regions)),
		Stitched: map[int][]*vm.Segment{},
		SetupFn:  map[int]func(m *vm.Machine) (int64, uint64, error){},
		machines: map[*vm.Machine]*machineState{},
	}
}

type machineState struct {
	cache   map[int]map[string]*vm.Segment // region -> key -> code
	pending map[int]string                 // region -> key awaiting stitch
}

// Attach wires the runtime into machine m.
func (rt *Runtime) Attach(m *vm.Machine) {
	ms := &machineState{
		cache:   map[int]map[string]*vm.Segment{},
		pending: map[int]string{},
	}
	m.OnDynEnter = func(m *vm.Machine, region int) (*vm.Segment, int, error) {
		r := rt.Regions[region]
		key := keyOf(m, r)
		if seg := ms.cache[region][key]; seg != nil {
			return seg, 0, nil
		}
		if setup := rt.SetupFn[region]; setup != nil {
			// Merged set-up + stitch: build the table host-side and stitch
			// immediately; the inline VM set-up code never runs.
			tbl, cost, err := setup(m)
			if err != nil {
				return nil, 0, fmt.Errorf("merged set-up %s: %w", r.Name, err)
			}
			rc := m.Region(region)
			rc.SetupCycles += cost
			m.Cycles += cost
			return rt.stitchNow(m, region, key, tbl)
		}
		ms.pending[region] = key
		return nil, 0, nil // run inline set-up, then DYNSTITCH
	}
	m.OnDynStitch = func(m *vm.Machine, region int) (*vm.Segment, int, error) {
		key := ms.pending[region]
		delete(ms.pending, region)
		return rt.stitchNow(m, region, key, m.Regs[vm.RScratch])
	}
	m.OnReset = func(m *vm.Machine) {
		// The machine's memory (and so its constants tables and input data
		// structures) is being wiped: cached specializations are stale.
		ms.cache = map[int]map[string]*vm.Segment{}
		ms.pending = map[int]string{}
	}
	rt.machines[m] = ms
}

// stitchNow stitches region for machine m against the table at tbl and
// caches the result under key.
func (rt *Runtime) stitchNow(m *vm.Machine, region int, key string, tbl int64) (*vm.Segment, int, error) {
	ms := rt.machines[m]
	r := rt.Regions[region]
	parent := m.Prog.Segs[r.FuncID]
	seg, stats, err := stitcher.Stitch(r, m.Mem, tbl, parent, rt.Opts)
	if err != nil {
		return nil, 0, fmt.Errorf("stitch region %s: %w", r.Name, err)
	}
	if ms.cache[region] == nil {
		ms.cache[region] = map[string]*vm.Segment{}
	}
	ms.cache[region][key] = seg
	rt.Stitched[region] = append(rt.Stitched[region], seg)

	// Account the modeled stitcher cost.
	rc := m.Region(region)
	rc.StitchCycles += stats.CyclesModeled
	rc.StitchedInsts += uint64(stats.InstsStitched)
	rc.Compiles++
	m.Cycles += stats.CyclesModeled

	s := &rt.Stats[region]
	s.InstsStitched += stats.InstsStitched
	s.HolesPatched += stats.HolesPatched
	s.BranchesResolved += stats.BranchesResolved
	s.LoopIterations += stats.LoopIterations
	s.StrengthReductions += stats.StrengthReductions
	s.LargeConsts += stats.LargeConsts
	s.LoadsPromoted += stats.LoadsPromoted
	s.StoresPromoted += stats.StoresPromoted
	s.CyclesModeled += stats.CyclesModeled
	return seg, 0, nil
}

// keyOf builds the cache key from the key-variable values staged in the
// shuttle registers at DYNENTER.
func keyOf(m *vm.Machine, r *tmpl.Region) string {
	if len(r.KeyRegs) == 0 {
		return ""
	}
	k := ""
	for _, reg := range r.KeyRegs {
		k += fmt.Sprintf("%d,", m.Regs[reg])
	}
	return k
}
