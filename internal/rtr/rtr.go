// Package rtr is the run-time half of the system: it wires the VM's
// dynamic-region hooks, manages the cache of stitched code (keyed by the
// values of the region's key variables, paper section 2), invokes the
// stitcher, and accounts its modeled cost.
//
// # Concurrency model
//
// A Runtime may be attached to any number of machines, each driven by its
// own goroutine. The code cache has two levels:
//
//   - Level 2, per machine: a plain map per region from encoded key bytes
//     to stitched segment. A machine is single-goroutine by the VM's
//     contract, so this level takes no locks and — because keys are
//     varint-encoded into a reusable scratch buffer — the steady-state
//     DYNENTER lookup performs zero allocations. (A plain goroutine-
//     confined map beats both sync.Map and an atomically swapped snapshot
//     here: there is no cross-goroutine access to synchronize at all; see
//     BenchmarkL2MapStrategies.) Bounded by CacheOptions.MachineMaxEntries
//     with second-chance FIFO eviction.
//
//   - Level 1, per runtime: a sharded map shared by all attached machines,
//     holding segments for regions the static compiler proved Shareable
//     (the stitched output is a pure function of the key bytes — see
//     tmpl.Region.Shareable for the aliasing rule). Each shard guards its
//     entries and its slice of stitcher statistics with its own mutex; a
//     singleflight latch per entry ensures K goroutines hitting a cold
//     (region, key) pay for exactly one stitch and K−1 channel waits.
//     Bounded by CacheOptions.MaxEntries/MaxCodeBytes with a per-shard
//     CLOCK policy (see evict.go).
//
// Non-shareable regions (set-up reads machine memory) bypass level 1
// entirely and behave exactly as in the single-machine system: each
// machine stitches its own copy against its own tables.
//
// # Generations and invalidation
//
// Every region carries a monotonic generation number. Invalidate and
// InvalidateKey bump it; each machine snapshots the generation per region
// and compares its snapshot against the live value with one atomic load on
// the DYNENTER fast path (no locks, no allocations). A mismatch flushes
// that machine's level-2 map for the region, so a dropped specialization
// is re-fetched from level 1 (cheap, for keys that were not invalidated)
// or re-stitched (for the key that was) instead of being served stale.
// Capacity evictions do NOT bump generations: a shareable region's
// stitched code is a pure function of its key, so a level-2 copy of an
// evicted level-1 entry is still correct — coherence is only needed for
// semantic invalidation.
package rtr

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dyncc/internal/stitcher"
	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// Options configure a Runtime.
type Options struct {
	Stitcher stitcher.Options
	Cache    CacheOptions
	// Auto tunes speculative promotion of Auto regions (see promote.go);
	// inert for programs without them.
	Auto AutoOptions
}

// Runtime manages stitched code for one program across any number of
// attached machines.
type Runtime struct {
	Prog    *vm.Program
	Regions []*tmpl.Region
	Opts    Options

	// Stitched records stitched segments per region, for diagnostics
	// (disassembly dumps, golden tests). Populated only when
	// Opts.Cache.KeepStitched is set — unbounded retention is a leak for
	// long-running servers — and capped at KeepStitchedCap segments.
	// Guarded by stitchedMu.
	Stitched     map[int][]*vm.Segment
	stitchedMu   sync.Mutex
	stitchedSeen map[*vm.Segment]struct{} // set-dedup for Stitched
	stitchedN    int                      // total retained across regions

	// SetupFn, when present for a region, evaluates the region's set-up
	// host-side (the paper's section 7 merged set-up+stitch mode): it
	// builds the run-time constants table directly in the machine's memory
	// and returns its base address plus the modeled cycle cost. With a
	// SetupFn installed, stitching happens immediately at DYNENTER and the
	// inline VM set-up code is never executed. SetupFn must be fully
	// populated before the first Attach; it is read without locks after.
	SetupFn map[int]func(m *vm.Machine) (int64, uint64, error)

	// KeySetup, when present for a region, rebuilds the region's run-time
	// constants table from the key values alone, in a private arena (no
	// machine involved): it returns the arena and the table base within it.
	// The compiler installs one for every region it proved Shareable —
	// exactly the proof that set-up depends on nothing but the keys — and
	// the async stitching pipeline uses it to stitch on background workers
	// (see async.go). Like SetupFn it must be fully populated before the
	// first Attach and is read without locks after.
	KeySetup map[int]func(keyVals []int64) (mem []int64, tbl int64, err error)

	// shards is the level-1 shared cache (see package comment).
	shards []shard

	// gens holds the per-region generation numbers (see package comment).
	// Read on the DYNENTER fast path with a single atomic load.
	gens []atomic.Uint64

	// Resident accounting for the level-1 caps (see evict.go).
	resident       atomic.Int64
	residentBytes  atomic.Int64
	peakEntries    atomic.Int64
	regionResident []atomic.Int64
	regionBytes    []atomic.Int64

	// privateStitches counts stitches of non-shareable regions (shareable
	// stitches are counted by their shard's monotonic counter).
	privateStitches atomic.Uint64
	invalidations   atomic.Uint64
	l2Evictions     atomic.Uint64
	// stencilStitches counts stitches — inline, singleflighted, or
	// background — that ran on the stitcher's copy-and-patch fast path
	// (region had a precompiled stencil). Stitches minus StencilStitches
	// is the interpretive-fallback count.
	stencilStitches atomic.Uint64

	// Asynchronous stitching state (see async.go). jobs and quit are nil
	// unless CacheOptions.AsyncStitch is set; everything here is inert
	// otherwise.
	jobs       chan stitchJob
	quit       chan struct{}
	workerOnce sync.Once
	closeOnce  sync.Once
	// closeMu serializes job enqueues against Close: schedule holds the
	// read side across its quit-check and channel send, Close holds the
	// write side while closing quit. Without it a send could land after
	// Close drained the queue, leaking the claim and the inflight count
	// (WaitIdle would spin forever).
	closeMu   sync.RWMutex
	inflight  atomic.Int64 // queued + running background stitches
	genericMu sync.Mutex
	generics  []genericSlot

	asyncStitches atomic.Uint64
	fallbackRuns  atomic.Uint64
	queueRejects  atomic.Uint64
	asyncDiscards atomic.Uint64
	promoteHist   [PromoteBuckets]atomic.Uint64

	// Speculative promotion state for Auto regions (see promote.go).
	// auto is nil unless the program has at least one Auto region;
	// everything here is inert otherwise.
	auto       []autoState
	promotions atomic.Uint64
	deopts     atomic.Uint64

	// Persistent (level-0) store state (see store.go). storeOps and
	// storeQuit are nil unless CacheOptions.Store is set; everything here
	// is inert otherwise.
	storeOps       chan storeOp
	storeQuit      chan struct{}
	storeOnce      sync.Once
	storeCloseOnce sync.Once
	// storeCloseMu serializes publish enqueues against closeStore, exactly
	// as closeMu does for the async stitch queue.
	storeCloseMu  sync.RWMutex
	storeInflight atomic.Int64 // queued + running store operations
	storeFpMu     sync.Mutex
	storeFp       [][]byte // per-region template fingerprints, lazily derived

	storeHits     atomic.Uint64
	storeMisses   atomic.Uint64
	storePutCount atomic.Uint64
	storeErrors   atomic.Uint64
}

// New creates a runtime for prog with the given region metadata.
func New(prog *vm.Program, regions []*tmpl.Region, opts Options) *Runtime {
	rt := &Runtime{
		Prog:           prog,
		Regions:        regions,
		Opts:           opts,
		Stitched:       map[int][]*vm.Segment{},
		stitchedSeen:   map[*vm.Segment]struct{}{},
		SetupFn:        map[int]func(m *vm.Machine) (int64, uint64, error){},
		KeySetup:       map[int]func(keyVals []int64) (mem []int64, tbl int64, err error){},
		shards:         make([]shard, numShards(opts.Cache.Shards)),
		gens:           make([]atomic.Uint64, len(regions)),
		regionResident: make([]atomic.Int64, len(regions)),
		regionBytes:    make([]atomic.Int64, len(regions)),
	}
	for i := range rt.shards {
		rt.shards[i].entries = map[cacheKey]*entry{}
	}
	if opts.Cache.AsyncStitch {
		q := opts.Cache.StitchQueue
		if q <= 0 {
			q = DefaultStitchQueue
		}
		rt.jobs = make(chan stitchJob, q)
		rt.quit = make(chan struct{})
		rt.generics = make([]genericSlot, len(regions))
	}
	if opts.Cache.Store != nil {
		q := opts.Cache.StoreQueue
		if q <= 0 {
			q = DefaultStoreQueue
		}
		rt.storeOps = make(chan storeOp, q)
		rt.storeQuit = make(chan struct{})
		rt.storeFp = make([][]byte, len(regions))
	}
	if hasAuto(regions) {
		rt.initAuto()
	}
	return rt
}

// Invalidate flushes every cached specialization of region, across the
// shared cache and (via the generation check on their next DYNENTER) every
// attached machine's private cache. Use it when data a non-shareable
// region specialized on has changed, or to force re-stitching after an
// external table update. In-flight stitches complete and are delivered to
// their waiters — they began before the invalidation — but are not
// retained.
func (rt *Runtime) Invalidate(region int) {
	if region < 0 || region >= len(rt.gens) {
		return
	}
	rt.gens[region].Add(1)
	rt.invalidations.Add(1)
	// Persisted digests of the old generation become unreachable (the
	// generation participates in the digest), but generation counters are
	// process-local: delete the digests of the entries this sweep can see
	// so a future process restarting at the old generation cannot
	// resurrect them (best-effort; see store.go).
	var stale []storeOp
	for i := range rt.shards {
		sh := &rt.shards[i]
		sh.mu.Lock()
		for ck, e := range sh.entries {
			if ck.region != region {
				continue
			}
			select {
			case <-e.done:
				if rt.storeEnabled() && e.err == nil {
					stale = append(stale, storeOp{region: region, gen: e.gen, key: ck.key})
				}
				sh.dropLocked(rt, e)
			default:
				// In-flight: unmap it so the publish path sees it was
				// flushed and declines to retain (entries[ck] != e).
				delete(sh.entries, ck)
			}
		}
		sh.mu.Unlock()
	}
	for _, op := range stale {
		rt.enqueueStore(op)
	}
}

// InvalidateKey flushes one specialization of region, identified by its
// key-register values (the values the region's key variables had when it
// was stitched). The region's generation is bumped, so machines drop their
// private copies of *all* the region's specializations on next entry — but
// every key except this one is still resident in the shared cache and is
// re-adopted without a stitch; only the invalidated key pays a re-stitch.
func (rt *Runtime) InvalidateKey(region int, keyVals ...int64) {
	if region < 0 || region >= len(rt.gens) {
		return
	}
	ck := cacheKey{region: region, key: encodeKey(keyVals)}
	// Bump before unmapping so a racing publish observes the new
	// generation and declines to retain.
	gen := rt.gens[region].Add(1)
	rt.invalidations.Add(1)
	if rt.storeEnabled() {
		// Orphaning by generation only protects this process; the persisted
		// blob must go too, or a restarted process (generation counter back
		// at an old value) could serve the invalidated specialization.
		rt.storeDeleteGen(region, gen-1, ck.key)
	}
	for i := range rt.shards {
		sh := &rt.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			if k.region != region {
				continue
			}
			if k == ck {
				select {
				case <-e.done:
					sh.dropLocked(rt, e)
				default:
					delete(sh.entries, k)
				}
				continue
			}
			// Sibling keys were not invalidated: refresh their
			// generation snapshot so lookups keep serving them and an
			// in-flight stitch still publishes. (A lookup racing ahead
			// of this sweep may drop one as stale; that only costs a
			// re-stitch, never a wrong result.)
			e.gen = gen
		}
		sh.mu.Unlock()
	}
}

// Generation returns region's current generation number (diagnostics).
func (rt *Runtime) Generation(region int) uint64 {
	if region < 0 || region >= len(rt.gens) {
		return 0
	}
	return rt.gens[region].Load()
}

// l2slot is one level-2 cache slot; ref is the second-chance bit, set on
// every warm hit and consumed by the eviction scan.
type l2slot struct {
	seg *vm.Segment
	ref bool
}

// l2ref names a level-2 slot in the machine's FIFO eviction queue.
type l2ref struct {
	region int
	key    string
}

// machineState is the level-2 cache plus scratch state of one attached
// machine. It is touched only by the machine's own goroutine.
type machineState struct {
	cache    []map[string]*l2slot // region -> key bytes -> slot
	pending  []string             // region -> key awaiting DYNSTITCH
	fallback []bool               // region -> DYNSTITCH takes the generic tier
	mono     []*vm.Segment        // region -> monomorphic segment (promoted Auto regions)
	keyBuf   []byte               // reusable key-encoding buffer
	gen      []uint64             // per-region generation snapshot
	fifo     []l2ref              // insertion order for second-chance eviction
	count    int                  // live slots across regions
	max      int                  // CacheOptions.MachineMaxEntries (0 = unbounded)
}

func newMachineState(rt *Runtime) *machineState {
	n := len(rt.Regions)
	ms := &machineState{
		cache:    make([]map[string]*l2slot, n),
		pending:  make([]string, n),
		fallback: make([]bool, n),
		mono:     make([]*vm.Segment, n),
		keyBuf:   make([]byte, 0, 64),
		gen:      make([]uint64, n),
		max:      rt.Opts.Cache.MachineMaxEntries,
	}
	for i := range ms.gen {
		ms.gen[i] = rt.gens[i].Load()
	}
	return ms
}

func (ms *machineState) put(rt *Runtime, region int, key string, seg *vm.Segment) {
	if ms.cache[region] == nil {
		ms.cache[region] = map[string]*l2slot{}
	}
	if _, ok := ms.cache[region][key]; !ok {
		if ms.max > 0 {
			for ms.count >= ms.max && ms.evictOne(rt) {
			}
		}
		ms.count++
		ms.fifo = append(ms.fifo, l2ref{region: region, key: key})
	}
	ms.cache[region][key] = &l2slot{seg: seg}
}

// evictOne drops one level-2 slot with second-chance FIFO: the oldest slot
// is evicted unless it has been referenced since it was queued, in which
// case its bit is cleared and it goes to the back. Queue entries whose
// slot is gone (region flush, Reset) are skipped and discarded.
func (ms *machineState) evictOne(rt *Runtime) bool {
	limit := 2*len(ms.fifo) + 1
	for scanned := 0; scanned < limit && len(ms.fifo) > 0; scanned++ {
		ref := ms.fifo[0]
		ms.fifo = ms.fifo[1:]
		slot, ok := ms.cache[ref.region][ref.key]
		if !ok {
			continue // stale: flushed or already evicted
		}
		if slot.ref {
			slot.ref = false
			ms.fifo = append(ms.fifo, ref)
			continue
		}
		delete(ms.cache[ref.region], ref.key)
		ms.count--
		rt.l2Evictions.Add(1)
		return true
	}
	return false
}

// flushRegion drops the machine's cached specializations of one region
// (generation mismatch). Queue entries go stale and are skipped by
// evictOne; compact() bounds their accumulation.
func (ms *machineState) flushRegion(region int, gen uint64) {
	ms.count -= len(ms.cache[region])
	ms.cache[region] = nil
	ms.pending[region] = ""
	ms.fallback[region] = false
	ms.mono[region] = nil
	ms.gen[region] = gen
	ms.compact()
}

// compact rebuilds the FIFO without stale references once they could
// outnumber live slots; without it, repeated invalidation cycles would
// grow the queue unboundedly even though the cache itself is bounded.
func (ms *machineState) compact() {
	if len(ms.fifo) <= 2*ms.count+64 {
		return
	}
	live := ms.fifo[:0]
	for _, ref := range ms.fifo {
		if _, ok := ms.cache[ref.region][ref.key]; ok {
			live = append(live, ref)
		}
	}
	ms.fifo = live
}

// Attach wires the runtime into machine m. Each attached machine may be
// driven by its own goroutine; Attach itself must not race with that
// machine's execution.
func (rt *Runtime) Attach(m *vm.Machine) {
	ms := newMachineState(rt)
	m.OnDynEnter = func(m *vm.Machine, region int) (*vm.Segment, error) {
		// Hot path: one atomic generation load, then encode the key into
		// the reusable buffer and look it up in the per-machine cache.
		// Zero locks, zero allocations (TestDynEnterZeroAlloc).
		r := rt.Regions[region]
		if g := rt.gens[region].Load(); g != ms.gen[region] {
			ms.flushRegion(region, g) // invalidated since we last looked
		}
		if r.Auto && rt.auto != nil {
			return rt.autoEnter(m, ms, region, r)
		}
		key := appendKey(ms.keyBuf[:0], m, r)
		ms.keyBuf = key
		if slot, ok := ms.cache[region][string(key)]; ok {
			slot.ref = true
			return slot.seg, nil
		}
		return rt.enterCold(m, ms, region, key)
	}
	m.OnDynStitch = func(m *vm.Machine, region int) (*vm.Segment, error) {
		key := ms.pending[region]
		ms.pending[region] = ""
		if ms.fallback[region] {
			// The stitch is happening (or queued) on a background worker:
			// run this call on the generic tier. The table base the inline
			// set-up left in RScratch is exactly what the generic segment's
			// preamble expects.
			ms.fallback[region] = false
			rt.fallbackRuns.Add(1)
			return rt.generic(region), nil
		}
		if r := rt.Regions[region]; r.Auto && rt.auto != nil && !rt.isPromoted(region) {
			// Profiling state of an Auto region: run on the generic tier so
			// an unstable region never pays specialization costs. Regions
			// the generic renderer cannot express stitch inline as always.
			if gseg := rt.generic(region); gseg != nil {
				rt.fallbackRuns.Add(1)
				return gseg, nil
			}
		}
		return rt.stitchNow(m, ms, region, key, m.Regs[vm.RScratch])
	}
	m.OnReset = func(m *vm.Machine) {
		// The machine's memory (and so its constants tables and input data
		// structures) is being wiped: this machine's cached specializations
		// are stale. Shared (level-1) segments survive — a Shareable
		// region's stitched code depends only on its key bytes, never on
		// the memory being wiped.
		for i := range ms.cache {
			ms.cache[i] = nil
			ms.pending[i] = ""
			ms.fallback[i] = false
			ms.mono[i] = nil
			ms.gen[i] = rt.gens[i].Load()
		}
		ms.fifo = nil
		ms.count = 0
	}
	if rt.auto != nil {
		m.OnDeopt = func(m *vm.Machine, region int) {
			// A GUARD failed in this machine's stitched copy: demote the
			// region runtime-wide (bumping its generation so stale stitches
			// are orphaned everywhere), then flush this machine's copies
			// immediately — its next DYNENTER must not resurrect the
			// segment the guard just rejected.
			rt.onDeopt(region)
			ms.flushRegion(region, rt.gens[region].Load())
		}
	}
}

// enterCold handles a DYNENTER whose key missed the per-machine cache:
// consult the shared cache, then fall back to set-up + stitch.
func (rt *Runtime) enterCold(m *vm.Machine, ms *machineState, region int,
	key []byte) (*vm.Segment, error) {

	r := rt.Regions[region]
	ks := string(key)
	if rt.shared(r) {
		if seg := rt.lookupShared(region, ks); seg != nil {
			// Another machine already stitched this exact specialization.
			// Adopt it: no set-up runs, no stitch cost is charged — the
			// paper's overhead was paid once, program-wide.
			ms.put(rt, region, ks, seg)
			return seg, nil
		}
		if gseg := rt.asyncFallback(region, ks); gseg != nil {
			// Async stitching: the stitch is queued (or in flight) on a
			// background worker; this call runs on the generic tier and
			// the next call after publish adopts the stitched segment via
			// the shared-cache lookup above. The generic segment is never
			// installed in the level-2 map — it must not shadow promotion.
			if setup := rt.SetupFn[region]; setup != nil {
				tbl, cost, err := setup(m)
				if err != nil {
					return nil, fmt.Errorf("merged set-up %s: %w", r.Name, err)
				}
				rc := m.Region(region)
				rc.SetupCycles += cost
				m.Cycles += cost
				m.Regs[vm.RScratch] = tbl
				rt.fallbackRuns.Add(1)
				return gseg, nil
			}
			ms.pending[region] = ks
			ms.fallback[region] = true
			return nil, nil // run inline set-up; DYNSTITCH takes the generic tier
		}
	}
	if setup := rt.SetupFn[region]; setup != nil {
		// Merged set-up + stitch: build the table host-side and stitch
		// immediately; the inline VM set-up code never runs.
		tbl, cost, err := setup(m)
		if err != nil {
			return nil, fmt.Errorf("merged set-up %s: %w", r.Name, err)
		}
		rc := m.Region(region)
		rc.SetupCycles += cost
		m.Cycles += cost
		return rt.stitchNow(m, ms, region, ks, tbl)
	}
	ms.pending[region] = ks
	return nil, nil // run inline set-up, then DYNSTITCH
}

// shared reports whether region r participates in the cross-machine cache.
func (rt *Runtime) shared(r *tmpl.Region) bool {
	return r.Shareable && !rt.Opts.Cache.NoShare
}

// stitchNow produces the stitched segment for (region, key) against the
// table at tbl, caches it, and accounts the modeled stitcher cost to m.
// For shared regions the stitch is singleflighted across machines: only
// the winning goroutine pays (and is charged) the stitch; waiters adopt
// the result for free, exactly like a shared-cache hit.
func (rt *Runtime) stitchNow(m *vm.Machine, ms *machineState, region int,
	key string, tbl int64) (*vm.Segment, error) {

	r := rt.Regions[region]
	var (
		seg   *vm.Segment
		stats *stitcher.Stats
		err   error
	)
	if rt.shared(r) {
		seg, stats, err = rt.stitchShared(m, region, key, tbl)
	} else {
		seg, stats, err = stitcher.Stitch(r, m.Mem, tbl, m.Prog.Segs[r.FuncID], rt.Opts.Stitcher)
		if err == nil {
			seg, err = guardStitch(r, seg, key)
		}
		if err == nil {
			rt.privateStitches.Add(1)
			rt.countStencil(stats)
			rt.recordStats(region, key, stats)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("stitch region %s: %w", r.Name, err)
	}
	ms.put(rt, region, key, seg)
	rt.keepStitched(region, seg)

	if stats != nil {
		// This goroutine ran the stitcher: account the modeled cost.
		rc := m.Region(region)
		rc.StitchCycles += stats.CyclesModeled
		rc.StitchedInsts += uint64(stats.InstsStitched)
		rc.Compiles++
		m.Cycles += stats.CyclesModeled
	}
	return seg, nil
}

// countStencil tallies which emission path a successful stitch ran on;
// called at every stitch site (inline private, singleflight winner,
// background worker) so CacheStats.StencilStitches covers all tiers.
func (rt *Runtime) countStencil(stats *stitcher.Stats) {
	if stats != nil && stats.StencilPath {
		rt.stencilStitches.Add(1)
	}
}

// keepStitched retains seg for diagnostics. Dedup is a set membership test
// (the seed scanned the region's whole slice per stitch — O(n) and
// unbounded), and total retention is capped at KeepStitchedCap: once full,
// later segments are not retained.
func (rt *Runtime) keepStitched(region int, seg *vm.Segment) {
	if !rt.Opts.Cache.KeepStitched {
		return
	}
	rt.stitchedMu.Lock()
	defer rt.stitchedMu.Unlock()
	if _, ok := rt.stitchedSeen[seg]; ok {
		return // adopted from the shared cache; already recorded
	}
	max := rt.Opts.Cache.KeepStitchedCap
	if max <= 0 {
		max = DefaultKeepStitchedCap
	}
	if rt.stitchedN >= max {
		return
	}
	rt.stitchedSeen[seg] = struct{}{}
	rt.stitchedN++
	rt.Stitched[region] = append(rt.Stitched[region], seg)
}
