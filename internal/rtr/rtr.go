// Package rtr is the run-time half of the system: it wires the VM's
// dynamic-region hooks, manages the cache of stitched code (keyed by the
// values of the region's key variables, paper section 2), invokes the
// stitcher, and accounts its modeled cost.
//
// # Concurrency model
//
// A Runtime may be attached to any number of machines, each driven by its
// own goroutine. The code cache has two levels:
//
//   - Level 2, per machine: a plain map per region from encoded key bytes
//     to stitched segment. A machine is single-goroutine by the VM's
//     contract, so this level takes no locks and — because keys are
//     varint-encoded into a reusable scratch buffer — the steady-state
//     DYNENTER lookup performs zero allocations. (A plain goroutine-
//     confined map beats both sync.Map and an atomically swapped snapshot
//     here: there is no cross-goroutine access to synchronize at all; see
//     BenchmarkL2MapStrategies.)
//
//   - Level 1, per runtime: a sharded map shared by all attached machines,
//     holding segments for regions the static compiler proved Shareable
//     (the stitched output is a pure function of the key bytes — see
//     tmpl.Region.Shareable for the aliasing rule). Each shard guards its
//     entries and its slice of stitcher statistics with its own mutex; a
//     singleflight latch per entry ensures K goroutines hitting a cold
//     (region, key) pay for exactly one stitch and K−1 channel waits.
//
// Non-shareable regions (set-up reads machine memory) bypass level 1
// entirely and behave exactly as in the single-machine system: each
// machine stitches its own copy against its own tables.
package rtr

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dyncc/internal/stitcher"
	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// Options configure a Runtime.
type Options struct {
	Stitcher stitcher.Options
	Cache    CacheOptions
}

// Runtime manages stitched code for one program across any number of
// attached machines.
type Runtime struct {
	Prog    *vm.Program
	Regions []*tmpl.Region
	Opts    Options

	// Stitched records every stitched segment per region, for diagnostics
	// (disassembly dumps, golden tests). Populated only when
	// Opts.Cache.KeepStitched is set — unbounded retention is a leak for
	// long-running servers. Guarded by stitchedMu.
	Stitched   map[int][]*vm.Segment
	stitchedMu sync.Mutex

	// SetupFn, when present for a region, evaluates the region's set-up
	// host-side (the paper's section 7 merged set-up+stitch mode): it
	// builds the run-time constants table directly in the machine's memory
	// and returns its base address plus the modeled cycle cost. With a
	// SetupFn installed, stitching happens immediately at DYNENTER and the
	// inline VM set-up code is never executed. SetupFn must be fully
	// populated before the first Attach; it is read without locks after.
	SetupFn map[int]func(m *vm.Machine) (int64, uint64, error)

	// shards is the level-1 shared cache (see package comment).
	shards []shard

	// privateStitches counts stitches of non-shareable regions (shareable
	// stitches are counted by their shard entries).
	privateStitches atomic.Uint64
}

// New creates a runtime for prog with the given region metadata.
func New(prog *vm.Program, regions []*tmpl.Region, opts Options) *Runtime {
	rt := &Runtime{
		Prog:     prog,
		Regions:  regions,
		Opts:     opts,
		Stitched: map[int][]*vm.Segment{},
		SetupFn:  map[int]func(m *vm.Machine) (int64, uint64, error){},
		shards:   make([]shard, numShards(opts.Cache.Shards)),
	}
	for i := range rt.shards {
		rt.shards[i].entries = map[cacheKey]*entry{}
	}
	return rt
}

// machineState is the level-2 cache plus scratch state of one attached
// machine. It is touched only by the machine's own goroutine.
type machineState struct {
	cache   []map[string]*vm.Segment // region -> key bytes -> code
	pending []string                 // region -> key awaiting DYNSTITCH
	keyBuf  []byte                   // reusable key-encoding buffer
}

func newMachineState(n int) *machineState {
	ms := &machineState{
		cache:   make([]map[string]*vm.Segment, n),
		pending: make([]string, n),
		keyBuf:  make([]byte, 0, 64),
	}
	return ms
}

func (ms *machineState) put(region int, key string, seg *vm.Segment) {
	if ms.cache[region] == nil {
		ms.cache[region] = map[string]*vm.Segment{}
	}
	ms.cache[region][key] = seg
}

// Attach wires the runtime into machine m. Each attached machine may be
// driven by its own goroutine; Attach itself must not race with that
// machine's execution.
func (rt *Runtime) Attach(m *vm.Machine) {
	ms := newMachineState(len(rt.Regions))
	m.OnDynEnter = func(m *vm.Machine, region int) (*vm.Segment, error) {
		// Hot path: encode the key into the reusable buffer and look it up
		// in the per-machine cache. Zero locks, zero allocations.
		r := rt.Regions[region]
		key := appendKey(ms.keyBuf[:0], m, r)
		ms.keyBuf = key
		if seg, ok := ms.cache[region][string(key)]; ok {
			return seg, nil
		}
		return rt.enterCold(m, ms, region, key)
	}
	m.OnDynStitch = func(m *vm.Machine, region int) (*vm.Segment, error) {
		key := ms.pending[region]
		ms.pending[region] = ""
		return rt.stitchNow(m, ms, region, key, m.Regs[vm.RScratch])
	}
	m.OnReset = func(m *vm.Machine) {
		// The machine's memory (and so its constants tables and input data
		// structures) is being wiped: this machine's cached specializations
		// are stale. Shared (level-1) segments survive — a Shareable
		// region's stitched code depends only on its key bytes, never on
		// the memory being wiped.
		for i := range ms.cache {
			ms.cache[i] = nil
			ms.pending[i] = ""
		}
	}
}

// enterCold handles a DYNENTER whose key missed the per-machine cache:
// consult the shared cache, then fall back to set-up + stitch.
func (rt *Runtime) enterCold(m *vm.Machine, ms *machineState, region int,
	key []byte) (*vm.Segment, error) {

	r := rt.Regions[region]
	ks := string(key)
	if rt.shared(r) {
		if seg := rt.lookupShared(region, ks); seg != nil {
			// Another machine already stitched this exact specialization.
			// Adopt it: no set-up runs, no stitch cost is charged — the
			// paper's overhead was paid once, program-wide.
			ms.put(region, ks, seg)
			return seg, nil
		}
	}
	if setup := rt.SetupFn[region]; setup != nil {
		// Merged set-up + stitch: build the table host-side and stitch
		// immediately; the inline VM set-up code never runs.
		tbl, cost, err := setup(m)
		if err != nil {
			return nil, fmt.Errorf("merged set-up %s: %w", r.Name, err)
		}
		rc := m.Region(region)
		rc.SetupCycles += cost
		m.Cycles += cost
		return rt.stitchNow(m, ms, region, ks, tbl)
	}
	ms.pending[region] = ks
	return nil, nil // run inline set-up, then DYNSTITCH
}

// shared reports whether region r participates in the cross-machine cache.
func (rt *Runtime) shared(r *tmpl.Region) bool {
	return r.Shareable && !rt.Opts.Cache.NoShare
}

// stitchNow produces the stitched segment for (region, key) against the
// table at tbl, caches it, and accounts the modeled stitcher cost to m.
// For shared regions the stitch is singleflighted across machines: only
// the winning goroutine pays (and is charged) the stitch; waiters adopt
// the result for free, exactly like a shared-cache hit.
func (rt *Runtime) stitchNow(m *vm.Machine, ms *machineState, region int,
	key string, tbl int64) (*vm.Segment, error) {

	r := rt.Regions[region]
	var (
		seg   *vm.Segment
		stats *stitcher.Stats
		err   error
	)
	if rt.shared(r) {
		seg, stats, err = rt.stitchShared(m, region, key, tbl)
	} else {
		seg, stats, err = stitcher.Stitch(r, m.Mem, tbl, m.Prog.Segs[r.FuncID], rt.Opts.Stitcher)
		if err == nil {
			rt.privateStitches.Add(1)
			rt.recordStats(region, key, stats)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("stitch region %s: %w", r.Name, err)
	}
	ms.put(region, key, seg)
	rt.keepStitched(region, seg)

	if stats != nil {
		// This goroutine ran the stitcher: account the modeled cost.
		rc := m.Region(region)
		rc.StitchCycles += stats.CyclesModeled
		rc.StitchedInsts += uint64(stats.InstsStitched)
		rc.Compiles++
		m.Cycles += stats.CyclesModeled
	}
	return seg, nil
}

func (rt *Runtime) keepStitched(region int, seg *vm.Segment) {
	if !rt.Opts.Cache.KeepStitched {
		return
	}
	rt.stitchedMu.Lock()
	for _, s := range rt.Stitched[region] {
		if s == seg {
			rt.stitchedMu.Unlock()
			return // adopted from the shared cache; already recorded
		}
	}
	rt.Stitched[region] = append(rt.Stitched[region], seg)
	rt.stitchedMu.Unlock()
}
