// Eviction machinery for the shared (level-1) stitch cache: a per-shard
// CLOCK (second-chance) policy enforcing the global and per-region entry
// and code-byte caps, plus a bounded log of recent evictions so re-stitches
// of previously evicted keys are observable (CacheStats.Restitches).
//
// Resident accounting lives in runtime-global atomics (resident,
// residentBytes and their per-region slices) so a publishing shard can
// check the caps without touching any other shard's lock. Room is made
// *before* a new entry is published: while over a cap, the publishing
// shard evicts from its own ring; if its ring is empty (the only way a
// publish cannot restore the bound locally) it steals an eviction from a
// sibling shard via TryLock, which cannot deadlock. In-flight singleflight
// entries never join a ring, so they are pinned by construction.
package rtr

// evictLogSize bounds the per-shard memory of restitch detection: a stitch
// counts as a re-stitch when its key is among the shard's most recent
// evictLogSize capacity evictions. The log is deliberately bounded — exact
// forever-detection would need a tombstone per evicted key, re-creating
// the unbounded growth the cache caps exist to prevent — so Restitches is
// a lower bound under extreme churn.
const evictLogSize = 256

// evictLog is a fixed-capacity ring of recently evicted keys with an index
// for O(1) membership tests.
type evictLog struct {
	keys []cacheKey
	idx  map[cacheKey]int
	next int
}

func (l *evictLog) add(k cacheKey) {
	if l.idx == nil {
		l.idx = make(map[cacheKey]int, evictLogSize)
	}
	if _, ok := l.idx[k]; ok {
		return
	}
	if len(l.keys) < evictLogSize {
		l.idx[k] = len(l.keys)
		l.keys = append(l.keys, k)
		return
	}
	delete(l.idx, l.keys[l.next])
	l.keys[l.next] = k
	l.idx[k] = l.next
	l.next = (l.next + 1) % evictLogSize
}

// remove reports whether k was logged, forgetting it (a re-stitched key is
// resident again; it re-enters the log if evicted again). The freed slot is
// reclaimed by swapping the last key in — an earlier version left a
// permanent dead hole counting against evictLogSize, so a shard cycling
// restitches shrank the log's effective window (and undercounted
// Restitches) a little more with every removal.
func (l *evictLog) remove(k cacheKey) bool {
	i, ok := l.idx[k]
	if !ok {
		return false
	}
	delete(l.idx, k)
	last := len(l.keys) - 1
	if i != last {
		l.keys[i] = l.keys[last]
		l.idx[l.keys[i]] = i
	}
	l.keys = l.keys[:last]
	// next only indexes the ring when it is full (len == evictLogSize), and
	// removal just shrank it, so any next in [0, evictLogSize) stays valid
	// by the time the ring refills; no adjustment needed.
	return true
}

// publishLocked makes a completed entry resident: it joins the shard's
// CLOCK ring and the global and per-region resident counters.
func (sh *shard) publishLocked(rt *Runtime, e *entry) {
	e.slot = len(sh.ring)
	sh.ring = append(sh.ring, e)
	rt.resident.Add(1)
	rt.residentBytes.Add(e.bytes)
	// r >= 0: region -1 is a documented segment sentinel; an entry carrying
	// it must not panic the accounting (it simply isn't tracked per region).
	if r := e.key.region; r >= 0 && r < len(rt.regionResident) {
		rt.regionResident[r].Add(1)
		rt.regionBytes[r].Add(e.bytes)
	}
	rt.notePeak()
}

// dropLocked removes a resident entry without counting an eviction
// (invalidation and stale-generation cleanup).
func (sh *shard) dropLocked(rt *Runtime, e *entry) {
	if sh.entries[e.key] == e {
		delete(sh.entries, e.key)
	}
	if e.slot < 0 {
		return
	}
	last := len(sh.ring) - 1
	sh.ring[e.slot] = sh.ring[last]
	sh.ring[e.slot].slot = e.slot
	sh.ring = sh.ring[:last]
	if sh.hand > last {
		sh.hand = 0
	}
	e.slot = -1
	rt.resident.Add(-1)
	rt.residentBytes.Add(-e.bytes)
	if r := e.key.region; r >= 0 && r < len(rt.regionResident) {
		rt.regionResident[r].Add(-1)
		rt.regionBytes[r].Add(-e.bytes)
	}
}

// evictOneLocked runs the CLOCK hand over the shard's ring and evicts one
// resident entry, honouring reference bits (an entry hit since the hand
// last passed gets a second chance). region restricts candidates to one
// region (-1 = any). Reports whether anything was evicted; false only if
// the ring holds no candidate at all.
func (sh *shard) evictOneLocked(rt *Runtime, region int) bool {
	n := len(sh.ring)
	if n == 0 {
		return false
	}
	// Two sweeps suffice: the first clears every candidate's reference
	// bit, so the second must find a victim (if any candidate exists).
	for scanned := 0; scanned < 2*n; scanned++ {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		e := sh.ring[sh.hand]
		if region >= 0 && e.key.region != region {
			sh.hand++
			continue
		}
		if e.ref {
			e.ref = false
			sh.hand++
			continue
		}
		sh.dropLocked(rt, e)
		sh.evictions++
		sh.evicted.add(e.key)
		if rt.Opts.Cache.ChurnStats {
			sh.churnLocked(e.key.region).Evictions++
		}
		return true
	}
	return false
}

// overEntries / overBytes report whether publishing one more entry of
// `add` bytes would leave the shared cache above a global cap.
func (rt *Runtime) overEntries() bool {
	max := rt.Opts.Cache.MaxEntries
	return max > 0 && rt.resident.Load() >= int64(max)
}

func (rt *Runtime) overBytes(add int64) bool {
	max := rt.Opts.Cache.MaxCodeBytes
	return max > 0 && rt.residentBytes.Load()+add > max
}

func (rt *Runtime) regionOverEntries(region int) bool {
	max := rt.Opts.Cache.MaxEntriesPerRegion
	return max > 0 && region >= 0 && region < len(rt.regionResident) &&
		rt.regionResident[region].Load() >= int64(max)
}

func (rt *Runtime) regionOverBytes(region int, add int64) bool {
	max := rt.Opts.Cache.MaxCodeBytesPerRegion
	return max > 0 && region >= 0 && region < len(rt.regionBytes) &&
		rt.regionBytes[region].Load()+add > max
}

// makeRoomLocked evicts until the caps admit one more entry of `bytes`
// code bytes for region. It runs with sh.mu held (the publishing shard) and
// prefers local evictions; when the local ring cannot help it steals one
// eviction at a time from sibling shards via TryLock (never blocking, so
// never deadlocking). Per-region caps are enforced locally here and
// cross-shard by reclaim after publish.
func (rt *Runtime) makeRoomLocked(sh *shard, region int, bytes int64) {
	for rt.overEntries() || rt.overBytes(bytes) {
		if sh.evictOneLocked(rt, -1) {
			continue
		}
		if !rt.stealEviction(sh, -1) {
			return // every other shard busy or empty; reclaim will catch up
		}
	}
	for rt.regionOverEntries(region) || rt.regionOverBytes(region, bytes) {
		if sh.evictOneLocked(rt, region) {
			continue
		}
		if !rt.stealEviction(sh, region) {
			return
		}
	}
}

// stealEviction evicts one entry from some shard other than sh, using
// TryLock so a publisher holding its own shard lock can never deadlock
// against another publisher doing the same.
func (rt *Runtime) stealEviction(sh *shard, region int) bool {
	for i := range rt.shards {
		o := &rt.shards[i]
		if o == sh || !o.mu.TryLock() {
			continue
		}
		ok := o.evictOneLocked(rt, region)
		o.mu.Unlock()
		if ok {
			return true
		}
	}
	return false
}

// reclaim restores the caps after a publish, sweeping shards with full
// locks (the caller holds none). It bounds the transient overshoot left
// when makeRoomLocked could not evict — the publishing shard's ring was
// empty and every sibling was mid-publish — to the duration of those
// publishes.
func (rt *Runtime) reclaim(region int) {
	c := &rt.Opts.Cache
	if c.MaxEntries == 0 && c.MaxCodeBytes == 0 &&
		c.MaxEntriesPerRegion == 0 && c.MaxCodeBytesPerRegion == 0 {
		return
	}
	for pass := 0; pass < 2*len(rt.shards); pass++ {
		overGlobal := rt.overBytes(0) ||
			(c.MaxEntries > 0 && rt.resident.Load() > int64(c.MaxEntries))
		overRegion := rt.regionOverBytes(region, 0) ||
			(c.MaxEntriesPerRegion > 0 && region >= 0 && region < len(rt.regionResident) &&
				rt.regionResident[region].Load() > int64(c.MaxEntriesPerRegion))
		if !overGlobal && !overRegion {
			return
		}
		target := -1
		if overRegion && !overGlobal {
			target = region
		}
		sh := &rt.shards[pass%len(rt.shards)]
		sh.mu.Lock()
		sh.evictOneLocked(rt, target)
		sh.mu.Unlock()
	}
}

// notePeak records a new resident-entry high-water mark.
func (rt *Runtime) notePeak() {
	n := rt.resident.Load()
	for {
		p := rt.peakEntries.Load()
		if n <= p || rt.peakEntries.CompareAndSwap(p, n) {
			return
		}
	}
}
