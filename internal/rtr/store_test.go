package rtr

import (
	"fmt"
	"testing"

	"dyncc/internal/segio"
	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// storeTestRuntime builds a runtime with a MemStore-backed level-0 tier
// and enough program scaffolding (one parent segment per region) for the
// digest fingerprint and parent relinking to work.
func storeTestRuntime(store segio.Store, regions int) *Runtime {
	parent := &vm.Segment{Name: "f", Code: []vm.Inst{{Op: vm.RET}}}
	prog := &vm.Program{Segs: []*vm.Segment{parent}}
	rs := make([]*tmpl.Region, regions)
	for i := range rs {
		rs[i] = &tmpl.Region{Name: fmt.Sprintf("r%d", i), FuncID: 0,
			KeyRegs: []vm.Reg{1}, Shareable: true}
	}
	return New(prog, rs, Options{Cache: CacheOptions{Store: store}})
}

// storedSeg is a minimal but non-trivial segment to persist.
func storedSeg() *vm.Segment {
	return &vm.Segment{
		Name: "r0.stitched", Region: 0, Stitched: true,
		Code:   []vm.Inst{{Op: vm.LI, Rd: 2, Imm: 42}, {Op: vm.RET, Rs: 2}},
		Consts: []int64{7},
	}
}

// plant persists seg in rt's store under (region, gen, key), the way the
// background publisher would.
func plant(t *testing.T, rt *Runtime, region int, gen uint64, key string, seg *vm.Segment) segio.Digest {
	t.Helper()
	d := rt.storeDigest(region, gen, key)
	if err := rt.Opts.Cache.Store.Put(d, segio.Encode(seg)); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestStoreLoadHitMissError(t *testing.T) {
	store := segio.NewMemStore()
	rt := storeTestRuntime(store, 1)
	defer rt.Close()

	// Miss on an empty store.
	if seg := rt.storeLoad(0, 0, "k"); seg != nil {
		t.Fatal("load from empty store returned a segment")
	}
	// Hit after planting; the parent must be relinked to this runtime's
	// program and the bytes identical to what was persisted.
	want := storedSeg()
	plant(t, rt, 0, 0, "k", want)
	got := rt.storeLoad(0, 0, "k")
	if got == nil {
		t.Fatal("planted segment not served")
	}
	if got.Parent != rt.Prog.Segs[0] {
		t.Error("loaded segment's parent not relinked")
	}
	if string(segio.Encode(got)) != string(segio.Encode(want)) {
		t.Error("loaded segment is not byte-identical to the persisted one")
	}
	// Corrupt blob: an error, and the entry is deleted so it cannot keep
	// failing.
	d := rt.storeDigest(0, 0, "bad")
	if err := store.Put(d, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if seg := rt.storeLoad(0, 0, "bad"); seg != nil {
		t.Fatal("corrupt blob decoded")
	}
	rt.WaitIdle()
	if data, _ := store.Get(d); data != nil {
		t.Error("corrupt store entry was not deleted")
	}

	cs := rt.CacheStats()
	if cs.StoreHits != 1 || cs.StoreMisses != 1 || cs.StoreErrors != 1 {
		t.Errorf("store counters: hits=%d misses=%d errors=%d, want 1/1/1",
			cs.StoreHits, cs.StoreMisses, cs.StoreErrors)
	}
	if cs.StoreHits+cs.StoreMisses+cs.StoreErrors != 3 {
		t.Errorf("3 consults must classify exactly once each: %+v", cs)
	}
}

func TestStorePutRoundTrip(t *testing.T) {
	store := segio.NewMemStore()
	rt := storeTestRuntime(store, 1)
	defer rt.Close()

	seg := storedSeg()
	rt.storePut(0, 0, "k", seg)
	rt.WaitIdle()
	if store.Len() != 1 {
		t.Fatalf("store holds %d entries, want 1", store.Len())
	}
	got := rt.storeLoad(0, 0, "k")
	if got == nil || string(segio.Encode(got)) != string(segio.Encode(seg)) {
		t.Fatal("published segment does not round-trip byte-identically")
	}
	if cs := rt.CacheStats(); cs.StorePuts != 1 {
		t.Errorf("StorePuts = %d, want 1", cs.StorePuts)
	}
}

// TestStoreGenerationOrphans pins the invalidation contract: the digest
// includes the generation, so a bump makes every persisted digest of the
// old generation unreachable — never served, never resurrected.
func TestStoreGenerationOrphans(t *testing.T) {
	store := segio.NewMemStore()
	rt := storeTestRuntime(store, 1)
	defer rt.Close()

	plant(t, rt, 0, 0, "k", storedSeg())
	rt.gens[0].Add(1)
	if seg := rt.storeLoad(0, rt.gens[0].Load(), "k"); seg != nil {
		t.Fatal("old-generation blob served after a generation bump")
	}
	if cs := rt.CacheStats(); cs.StoreMisses != 1 {
		t.Errorf("StoreMisses = %d, want 1", cs.StoreMisses)
	}
}

// TestInvalidateKeyDeletesPersisted: generation orphaning is process-local
// (counters restart at zero), so InvalidateKey must also delete the
// persisted digest of the invalidated specialization.
func TestInvalidateKeyDeletesPersisted(t *testing.T) {
	store := segio.NewMemStore()
	rt := storeTestRuntime(store, 1)
	defer rt.Close()

	key := encodeKey([]int64{3})
	d := plant(t, rt, 0, 0, key, storedSeg())
	addCompleted(rt, 0, key, storedSeg())

	rt.InvalidateKey(0, 3)
	rt.WaitIdle()
	if data, _ := store.Get(d); data != nil {
		t.Fatal("invalidated key's persisted blob survived")
	}
}

// TestInvalidateDeletesResidentDigests: a region-wide Invalidate deletes
// the persisted digests of every resident entry it sweeps.
func TestInvalidateDeletesResidentDigests(t *testing.T) {
	store := segio.NewMemStore()
	rt := storeTestRuntime(store, 2)
	defer rt.Close()

	var dropped []segio.Digest
	for i := 0; i < 4; i++ {
		key := encodeKey([]int64{int64(i)})
		dropped = append(dropped, plant(t, rt, 0, 0, key, storedSeg()))
		addCompleted(rt, 0, key, storedSeg())
	}
	keep := plant(t, rt, 1, 0, "other", storedSeg())
	addCompleted(rt, 1, "other", storedSeg())

	rt.Invalidate(0)
	rt.WaitIdle()
	for i, d := range dropped {
		if data, _ := store.Get(d); data != nil {
			t.Errorf("region-0 blob %d survived Invalidate", i)
		}
	}
	if data, _ := store.Get(keep); data == nil {
		t.Error("Invalidate(0) deleted a region-1 blob")
	}
}

// TestAdoptStoredPublish: adoptStored publishes under the singleflight
// entry with generation fencing, and the adopted segment is then served by
// ordinary lookups.
func TestAdoptStoredPublish(t *testing.T) {
	rt := storeTestRuntime(segio.NewMemStore(), 1)
	defer rt.Close()

	seg := storedSeg()
	ck := cacheKey{region: 0, key: "k"}
	sh := rt.shardFor(0, "k")
	e := &entry{key: ck, gen: rt.gens[0].Load(), done: make(chan struct{}), slot: -1}
	sh.mu.Lock()
	sh.entries[ck] = e
	sh.mu.Unlock()

	if !rt.adoptStored(0, e, seg) {
		t.Fatal("adoption declined with a live generation")
	}
	if rt.lookupShared(0, "k") != seg {
		t.Fatal("adopted segment not served by lookup")
	}
	if got := rt.regionResident[0].Load(); got != 1 {
		t.Errorf("regionResident = %d, want 1", got)
	}
	// No stitch happened: the Stitches counter must not move.
	if cs := rt.CacheStats(); cs.Stitches != 0 {
		t.Errorf("adoption counted as a stitch: %+v", cs)
	}

	// Invalidated mid-load: the segment is still returned to this
	// attempt's waiters but never retained.
	ck2 := cacheKey{region: 0, key: "k2"}
	e2 := &entry{key: ck2, gen: rt.gens[0].Load(), done: make(chan struct{}), slot: -1}
	sh2 := rt.shardFor(0, "k2")
	sh2.mu.Lock()
	sh2.entries[ck2] = e2
	sh2.mu.Unlock()
	rt.gens[0].Add(1)
	if rt.adoptStored(0, e2, storedSeg()) {
		t.Fatal("stale-generation adoption was retained")
	}
	if rt.lookupShared(0, "k2") != nil {
		t.Fatal("stale-generation segment served")
	}
}

// TestStoreQueueFullDrops: a full publish queue drops the operation and
// counts a StoreError instead of blocking the stitch path.
func TestStoreQueueFullDrops(t *testing.T) {
	rt := storeTestRuntime(segio.NewMemStore(), 1)
	defer rt.Close()
	// Burn the once so the publisher goroutine never starts draining, then
	// overfill the queue.
	rt.storeOnce.Do(func() {})
	qcap := cap(rt.storeOps)
	for i := 0; i <= qcap; i++ {
		rt.storePut(0, 0, fmt.Sprintf("k%d", i), storedSeg())
	}
	if cs := rt.CacheStats(); cs.StoreErrors != 1 {
		t.Errorf("StoreErrors = %d, want 1 dropped op", cs.StoreErrors)
	}
}

// TestStoreCloseDrains: Close executes the still-queued puts (a clean
// shutdown persists everything accepted) and leaves no in-flight count.
func TestStoreCloseDrains(t *testing.T) {
	store := segio.NewMemStore()
	rt := storeTestRuntime(store, 1)
	rt.storeOnce.Do(func() {}) // publisher never runs; Close must drain
	for i := 0; i < 5; i++ {
		rt.storePut(0, 0, fmt.Sprintf("k%d", i), storedSeg())
	}
	rt.Close()
	if store.Len() != 5 {
		t.Fatalf("store holds %d entries after Close, want 5", store.Len())
	}
	if n := rt.storeInflight.Load(); n != 0 {
		t.Errorf("storeInflight = %d after Close", n)
	}
	// Post-close operations are silently ignored, never enqueued.
	rt.storePut(0, 0, "late", storedSeg())
	if store.Len() != 5 {
		t.Error("post-Close put landed")
	}
	rt.Close() // idempotent
}

// TestFingerprintSensitivity: the digest must change with anything the
// stitched output could depend on — and nothing else.
func TestFingerprintSensitivity(t *testing.T) {
	store := segio.NewMemStore()
	a := storeTestRuntime(store, 1)
	defer a.Close()
	b := storeTestRuntime(store, 1)
	defer b.Close()
	if a.storeDigest(0, 0, "k") != b.storeDigest(0, 0, "k") {
		t.Fatal("identical runtimes derive different digests (no sharing possible)")
	}
	if a.storeDigest(0, 0, "k") == a.storeDigest(0, 0, "j") {
		t.Error("digest ignores the key")
	}
	if a.storeDigest(0, 0, "k") == a.storeDigest(0, 1, "k") {
		t.Error("digest ignores the generation")
	}
	c := storeTestRuntime(store, 1)
	defer c.Close()
	c.Opts.Stitcher.NoFuse = true
	if a.storeDigest(0, 0, "k") == c.storeDigest(0, 0, "k") {
		t.Error("digest ignores the stitcher options")
	}
	d := storeTestRuntime(store, 1)
	defer d.Close()
	d.Regions[0].TableSize = 99
	if a.storeDigest(0, 0, "k") == d.storeDigest(0, 0, "k") {
		t.Error("digest ignores the region templates")
	}
}

// TestEvictLogWindowAtCapacity is the regression test for the satellite
// fix: interleaved evict/restitch churn must keep the log's effective
// window at evictLogSize. The buggy remove left permanent dead holes
// (region -1 slots) that counted against the capacity, so every
// remove shrank the live window for the rest of the shard's life.
func TestEvictLogWindowAtCapacity(t *testing.T) {
	var l evictLog
	key := func(i int) cacheKey { return cacheKey{region: 0, key: fmt.Sprintf("k%d", i)} }

	for i := 0; i < evictLogSize; i++ {
		l.add(key(i))
	}
	// Restitch half the window (every other key)...
	for i := 0; i < evictLogSize; i += 2 {
		if !l.remove(key(i)) {
			t.Fatalf("key %d missing from full log", i)
		}
	}
	// ...then evict that many fresh keys again.
	for i := 0; i < evictLogSize/2; i++ {
		l.add(cacheKey{region: 0, key: fmt.Sprintf("fresh%d", i)})
	}

	if len(l.keys) != evictLogSize || len(l.idx) != evictLogSize {
		t.Fatalf("window = %d keys / %d indexed, want %d (dead holes?)",
			len(l.keys), len(l.idx), evictLogSize)
	}
	// Every surviving original and every fresh key must still be detected
	// as a restitch — nothing live was displaced by a hole.
	for i := 1; i < evictLogSize; i += 2 {
		if _, ok := l.idx[key(i)]; !ok {
			t.Fatalf("surviving key %d fell out of the window", i)
		}
	}
	for i := 0; i < evictLogSize/2; i++ {
		if _, ok := l.idx[cacheKey{region: 0, key: fmt.Sprintf("fresh%d", i)}]; !ok {
			t.Fatalf("fresh key %d fell out of the window", i)
		}
	}

	// Sustained churn: cycles of add/remove never degrade the window.
	for round := 0; round < 10; round++ {
		for i := 0; i < 32; i++ {
			k := cacheKey{region: 1, key: fmt.Sprintf("r%dc%d", round, i)}
			l.add(k)
			if i%2 == 0 {
				l.remove(k)
			}
		}
	}
	if len(l.keys) != len(l.idx) {
		t.Fatalf("keys (%d) and index (%d) diverged", len(l.keys), len(l.idx))
	}
	if len(l.keys) > evictLogSize {
		t.Fatalf("log overgrew to %d", len(l.keys))
	}
	for _, k := range l.keys {
		if k.region == -1 {
			t.Fatal("dead hole present in the log")
		}
		if _, ok := l.idx[k]; !ok {
			t.Fatal("ring key missing from index")
		}
	}
}

// TestNegativeRegionAccounting is the regression test for the satellite
// guard fix: an entry whose key carries the region -1 sentinel must not
// panic the per-region resident accounting on any of the four sites.
func TestNegativeRegionAccounting(t *testing.T) {
	rt := testRuntime(CacheOptions{Shards: 1, MaxEntriesPerRegion: 1,
		MaxCodeBytesPerRegion: 1 << 20}, 1)
	sh := &rt.shards[0]
	ck := cacheKey{region: -1, key: "x"}
	e := &entry{key: ck, done: make(chan struct{}), seg: &vm.Segment{},
		bytes: 64, slot: -1}
	close(e.done)

	sh.mu.Lock()
	sh.entries[ck] = e
	sh.publishLocked(rt, e) // site 1: publish
	sh.mu.Unlock()
	if rt.resident.Load() != 1 {
		t.Fatalf("resident = %d, want 1", rt.resident.Load())
	}

	// Sites 3 and 4: the per-region cap predicates.
	if rt.regionOverEntries(-1) {
		t.Error("regionOverEntries(-1) reported over-cap")
	}
	if rt.regionOverBytes(-1, 128) {
		t.Error("regionOverBytes(-1) reported over-cap")
	}
	sh.mu.Lock()
	rt.makeRoomLocked(sh, -1, 64) // exercises both predicates with sh held
	sh.mu.Unlock()
	rt.reclaim(-1)

	sh.mu.Lock()
	sh.dropLocked(rt, e) // site 2: drop
	sh.mu.Unlock()
	if rt.resident.Load() != 0 || rt.residentBytes.Load() != 0 {
		t.Errorf("accounting leaked: resident=%d bytes=%d",
			rt.resident.Load(), rt.residentBytes.Load())
	}
}
