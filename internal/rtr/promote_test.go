package rtr_test

import (
	"sync"
	"testing"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
)

// autoSrc is an automatic-promotion candidate: no annotations, scalar int
// params (both become speculation keys), no calls, no address-of.
const autoSrc = `
int f(int k, int x) {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 3; i++) {
        acc = acc + k * x + i;
    }
    return acc;
}`

func autoExpect(k, x int64) int64 {
	var acc int64
	for i := int64(0); i < 3; i++ {
		acc += k*x + i
	}
	return acc
}

func compileAuto(t *testing.T, opts rtr.AutoOptions, cache rtr.CacheOptions) *core.Compiled {
	t.Helper()
	c, err := core.Compile(autoSrc, core.Config{
		Dynamic: true, Optimize: true, AutoRegion: true,
		Auto: opts, Cache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Output.Regions) != 1 || !c.Output.Regions[0].Auto {
		t.Fatalf("expected one Auto region, got %d", len(c.Output.Regions))
	}
	return c
}

// TestAutoPromoteAndDeopt is the single-machine state-machine walk:
// profiling on the generic tier, promotion once hot and stable, a stitch,
// then a guard-failure demotion when the key changes — every call correct.
func TestAutoPromoteAndDeopt(t *testing.T) {
	c := compileAuto(t, rtr.AutoOptions{PromoteThreshold: 4, StabilityWindow: 2},
		rtr.CacheOptions{})
	m := c.NewMachine(0)
	for i := 0; i < 10; i++ {
		if got, err := m.Call("f", 3, 7); err != nil || got != autoExpect(3, 7) {
			t.Fatalf("call %d: %d, %v", i, got, err)
		}
	}
	cs := c.Runtime.CacheStats()
	if cs.Promotions != 1 || cs.Deopts != 0 {
		t.Fatalf("stable: %d promotions %d deopts, want 1/0", cs.Promotions, cs.Deopts)
	}
	if cs.FallbackRuns == 0 {
		t.Fatal("profiling calls should run on the generic tier")
	}
	if cs.Stitches == 0 {
		t.Fatal("promotion should have stitched")
	}
	if got, err := m.Call("f", 5, 7); err != nil || got != autoExpect(5, 7) {
		t.Fatalf("flip: %d, %v", got, err)
	}
	cs = c.Runtime.CacheStats()
	if cs.Deopts != 1 {
		t.Fatalf("flip: %d deopts, want 1", cs.Deopts)
	}
	// Demotion re-earns stability with a backed-off threshold; calls keep
	// being correct on the generic tier meanwhile.
	for i := 0; i < 40; i++ {
		if got, err := m.Call("f", 5, 7); err != nil || got != autoExpect(5, 7) {
			t.Fatalf("re-stable %d: %d, %v", i, got, err)
		}
	}
	cs = c.Runtime.CacheStats()
	if cs.Promotions != 2 {
		t.Fatalf("re-promotion: %d promotions, want 2", cs.Promotions)
	}
}

// TestAutoConcurrentPromotionInvalidation races everything the promotion
// machinery touches: several machines executing (promoting, hitting guards
// on key flips, deopting) while another goroutine hammers Invalidate and
// InvalidateKey on the same region. Every call must stay correct, and the
// shared-cache lookup invariant — Lookups == SharedHits + Waits +
// FailedHits + Misses — must hold with the new counters in play. Run
// under -race (make check does).
func TestAutoConcurrentPromotionInvalidation(t *testing.T) {
	c := compileAuto(t,
		rtr.AutoOptions{PromoteThreshold: 2, StabilityWindow: 2, BackoffFactor: 2, MaxThreshold: 4},
		rtr.CacheOptions{})
	const (
		machines = 6
		rounds   = 300
	)
	var wg sync.WaitGroup
	errc := make(chan error, machines)
	for g := 0; g < machines; g++ {
		m := c.NewMachine(0)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Phases of stable keys with per-goroutine flip points, so
				// promotions and guard failures interleave across machines.
				k := int64(3 + (i/(20+id))%3)
				got, err := m.Call("f", k, 7)
				if err != nil {
					errc <- err
					return
				}
				if got != autoExpect(k, 7) {
					errc <- &mismatchError{id: id, i: i, got: got, want: autoExpect(k, 7)}
					return
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if i%2 == 0 {
				c.Runtime.Invalidate(0)
			} else {
				c.Runtime.InvalidateKey(0, int64(3+i%3), 7)
			}
		}
	}()
	wg.Wait()
	<-done
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	cs := c.Runtime.CacheStats()
	if cs.Lookups != cs.SharedHits+cs.Waits+cs.FailedHits+cs.Misses {
		t.Fatalf("lookup invariant violated: %+v", cs)
	}
	// Deopts orphan stale stitches via the invalidation path, so
	// invalidations must be at least the explicit 200 plus the deopts.
	if cs.Invalidations < 200+cs.Deopts {
		t.Fatalf("invalidations %d < 200 explicit + %d deopts", cs.Invalidations, cs.Deopts)
	}
	t.Logf("%d promotions, %d deopts, %d stitches, %d lookups",
		cs.Promotions, cs.Deopts, cs.Stitches, cs.Lookups)
}

type mismatchError struct {
	id, i     int
	got, want int64
}

func (e *mismatchError) Error() string {
	return "machine result mismatch"
}

// TestAutoUnpromotedNeverStitches: with an unreachable threshold the
// region stays in the profiling state forever — every call runs on the
// generic tier and the stitcher is never invoked.
func TestAutoUnpromotedNeverStitches(t *testing.T) {
	c := compileAuto(t, rtr.AutoOptions{PromoteThreshold: 1 << 40}, rtr.CacheOptions{})
	m := c.NewMachine(0)
	for i := 0; i < 30; i++ {
		if got, err := m.Call("f", 3, 7); err != nil || got != autoExpect(3, 7) {
			t.Fatalf("call %d: %d, %v", i, got, err)
		}
	}
	cs := c.Runtime.CacheStats()
	if cs.Promotions != 0 || cs.Stitches != 0 {
		t.Fatalf("unreachable threshold: %d promotions %d stitches, want 0/0", cs.Promotions, cs.Stitches)
	}
	if cs.FallbackRuns == 0 {
		t.Fatal("profiling calls should run on the generic tier")
	}
}
