package rtr_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
)

// TestEvictionBoundedUnderRace is the satellite eviction-correctness test:
// N machines hammer a keyed region whose key cardinality (64) exceeds
// MaxEntries (8), in both stitch modes. Results must stay correct
// throughout, the resident-entry count must never exceed the cap (Shards:1
// makes the bound strict), and the lookup-accounting invariant must hold
// under full concurrency.
func TestEvictionBoundedUnderRace(t *testing.T) {
	const (
		machines = 4
		rounds   = 6
		keyCard  = 64
		cap      = 8
	)
	for _, async := range []bool{false, true} {
		name := "inline"
		if async {
			name = "async"
		}
		t.Run(name, func(t *testing.T) {
			c := compileKeyed(t, rtr.CacheOptions{
				Shards:            1,
				MaxEntries:        cap,
				MachineMaxEntries: cap,
				AsyncStitch:       async,
			})
			defer c.Runtime.Close()
			var wg sync.WaitGroup
			errs := make([]error, machines)
			for i := 0; i < machines; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					m := c.NewMachine(0)
					for r := 0; r < rounds; r++ {
						// Each machine walks the key space at its own stride so
						// the interleavings differ across goroutines.
						for n := 0; n < keyCard; n++ {
							s := int64((n*(i+1))%keyCard) + 1
							x := int64(r*keyCard + n + 1)
							got, err := m.Call("scale", s, x)
							if err != nil {
								errs[i] = err
								return
							}
							if got != s*x {
								errs[i] = fmt.Errorf("scale(%d,%d) = %d, want %d", s, x, got, s*x)
								return
							}
						}
					}
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("machine %d: %v", i, err)
				}
			}
			c.Runtime.WaitIdle()

			cs := c.Runtime.CacheStats()
			if cs.PeakEntries > cap {
				t.Errorf("peak resident entries %d exceeds cap %d", cs.PeakEntries, cap)
			}
			if cs.EntriesResident > cap {
				t.Errorf("resident entries %d exceeds cap %d", cs.EntriesResident, cap)
			}
			if cs.Evictions == 0 {
				t.Error("no evictions despite key cardinality 8x the cap")
			}
			if cs.Stitches <= keyCard {
				t.Errorf("stitches %d: churn should force re-stitches beyond the %d keys",
					cs.Stitches, keyCard)
			}
			if cs.Lookups != cs.SharedHits+cs.Waits+cs.FailedHits+cs.Misses {
				t.Errorf("lookup accounting invariant violated: %+v", cs)
			}
			if async && cs.AsyncStitches != cs.Stitches {
				t.Errorf("async stitches %d != stitches %d: something compiled inline",
					cs.AsyncStitches, cs.Stitches)
			}
		})
	}
}

// TestRestitchByteIdentical: after an eviction, re-stitching the same key
// must produce byte-identical code — stitched shareable code is a pure
// function of its key, which is exactly why capacity eviction is safe.
func TestRestitchByteIdentical(t *testing.T) {
	c := compileKeyed(t, rtr.CacheOptions{
		Shards:            1,
		MaxEntries:        1,
		MachineMaxEntries: 1,
		KeepStitched:      true,
	})
	m := c.NewMachine(0)
	// Key 3 is stitched, evicted by key 5 (cap 1), then re-stitched.
	for _, call := range []struct{ s, x int64 }{{3, 10}, {5, 10}, {3, 11}} {
		got, err := m.Call("scale", call.s, call.x)
		if err != nil {
			t.Fatal(err)
		}
		if got != call.s*call.x {
			t.Fatalf("scale(%d,%d) = %d", call.s, call.x, got)
		}
	}
	segs := c.Runtime.Stitched[0]
	if len(segs) != 3 {
		t.Fatalf("retained %d segments, want 3 (stitch, evicting stitch, re-stitch)", len(segs))
	}
	first, again := segs[0], segs[2]
	if !reflect.DeepEqual(first.Code, again.Code) {
		t.Error("re-stitched code differs from the evicted segment")
	}
	if !reflect.DeepEqual(first.Consts, again.Consts) {
		t.Error("re-stitched constant pool differs from the evicted segment")
	}
	if !reflect.DeepEqual(first.JumpTables, again.JumpTables) {
		t.Error("re-stitched jump tables differ from the evicted segment")
	}
	cs := c.Runtime.CacheStats()
	if cs.Evictions < 2 {
		t.Errorf("evictions: %d, want >= 2", cs.Evictions)
	}
	if cs.Restitches == 0 {
		t.Error("re-stitch of a recently evicted key was not detected")
	}
}

// TestUnboundedDefaultUnchanged: with zero-value CacheOptions nothing is
// ever evicted — the pre-bounded behavior callers may rely on.
func TestUnboundedDefaultUnchanged(t *testing.T) {
	c := compileKeyed(t, rtr.CacheOptions{})
	m := c.NewMachine(0)
	const keys = 40
	for s := int64(1); s <= keys; s++ {
		if got, err := m.Call("scale", s, 2); err != nil || got != 2*s {
			t.Fatalf("scale(%d,2) = %d, %v", s, got, err)
		}
	}
	cs := c.Runtime.CacheStats()
	if cs.Evictions != 0 || cs.L2Evictions != 0 {
		t.Errorf("unbounded cache evicted: %+v", cs)
	}
	if cs.EntriesResident != keys || cs.PeakEntries != keys {
		t.Errorf("resident %d / peak %d, want %d", cs.EntriesResident, cs.PeakEntries, keys)
	}
	if cs.BytesResident == 0 {
		t.Error("BytesResident not accounted")
	}
}

// TestMaxCodeBytesBounds: the byte cap limits resident code size the same
// way MaxEntries limits the entry count.
func TestMaxCodeBytesBounds(t *testing.T) {
	probe := compileKeyed(t, rtr.CacheOptions{})
	pm := probe.NewMachine(0)
	if _, err := pm.Call("scale", 1, 1); err != nil {
		t.Fatal(err)
	}
	per := int64(probe.Runtime.CacheStats().BytesResident)
	if per == 0 {
		t.Fatal("probe segment reports zero footprint")
	}

	budget := 3 * per
	c := compileKeyed(t, rtr.CacheOptions{Shards: 1, MaxCodeBytes: budget})
	m := c.NewMachine(0)
	for s := int64(1); s <= 12; s++ {
		if got, err := m.Call("scale", s, 5); err != nil || got != 5*s {
			t.Fatalf("scale(%d,5) = %d, %v", s, got, err)
		}
	}
	cs := c.Runtime.CacheStats()
	if int64(cs.BytesResident) > budget {
		t.Errorf("resident bytes %d exceed cap %d", cs.BytesResident, budget)
	}
	if cs.Evictions == 0 {
		t.Error("byte cap forced no evictions")
	}
}

// TestInvalidateForcesRestitch exercises the semantic-invalidation API on
// a data-dependent (non-shareable) region: after the underlying data
// changes, Invalidate must flush the stale specialization so the next
// entry re-stitches against the new data.
func TestInvalidateForcesRestitch(t *testing.T) {
	c, err := core.Compile(pointerSrc, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine(0)
	addr, _ := m.Alloc(1)
	m.Mem[addr] = 21
	if v, _ := m.Call("first", addr); v != 42 {
		t.Fatalf("first run: %d", v)
	}
	// The data changes, but the cached specialization still has 21 folded
	// in: without invalidation the stale answer persists.
	m.Mem[addr] = 50
	if v, _ := m.Call("first", addr); v != 42 {
		t.Fatalf("expected the stale specialization before Invalidate, got %d", v)
	}
	c.Runtime.Invalidate(0)
	v, err := m.Call("first", addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 100 {
		t.Errorf("after Invalidate: %d, want 100 (re-specialized on new data)", v)
	}
	if got := m.Region(0).Compiles; got != 2 {
		t.Errorf("compiles: %d, want 2", got)
	}
	if cs := c.Runtime.CacheStats(); cs.Invalidations != 1 {
		t.Errorf("invalidations: %d, want 1", cs.Invalidations)
	}
}

// TestInvalidateKeyRestitchesOnlyThatKey: after InvalidateKey, untouched
// keys re-adopt their still-resident shared entries without a compile;
// only the invalidated key pays a re-stitch.
func TestInvalidateKeyRestitchesOnlyThatKey(t *testing.T) {
	c := compileKeyed(t, rtr.CacheOptions{})
	m := c.NewMachine(0)
	for _, s := range []int64{3, 7} {
		if got, err := m.Call("scale", s, 4); err != nil || got != 4*s {
			t.Fatalf("scale(%d,4) = %d, %v", s, got, err)
		}
	}
	if got := m.Region(0).Compiles; got != 2 {
		t.Fatalf("compiles before invalidation: %d", got)
	}
	c.Runtime.InvalidateKey(0, 3)

	// Key 7 was not invalidated: its shared entry is still resident, so
	// the machine re-adopts it with no compile charged.
	if got, err := m.Call("scale", 7, 6); err != nil || got != 42 {
		t.Fatalf("scale(7,6) = %d, %v", got, err)
	}
	if got := m.Region(0).Compiles; got != 2 {
		t.Errorf("compiles after untouched-key call: %d, want 2 (re-adopted)", got)
	}
	// Key 3 was invalidated: it must re-stitch.
	if got, err := m.Call("scale", 3, 6); err != nil || got != 18 {
		t.Fatalf("scale(3,6) = %d, %v", got, err)
	}
	if got := m.Region(0).Compiles; got != 3 {
		t.Errorf("compiles after invalidated-key call: %d, want 3 (re-stitched)", got)
	}
}
