package rtr_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
	"dyncc/internal/stitcher"
	"dyncc/internal/vm"
)

const keyedSrc = `
int scale(int s, int x) {
    int r;
    dynamicRegion key(s) () {
        r = x * s;
    }
    return r;
}`

// pointerSrc specializes on data reached through a pointer: its set-up
// loads from machine memory, so its stitched code must never be shared
// across machines.
const pointerSrc = `
int first(int *a) {
    dynamicRegion (a) {
        return a[0] * 2;
    }
    return -1;
}`

func compileKeyed(t *testing.T, cache rtr.CacheOptions) *core.Compiled {
	t.Helper()
	c, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestKeyedCodeCache(t *testing.T) {
	c := compileKeyed(t, rtr.CacheOptions{KeepStitched: true})
	m := c.NewMachine(0)
	// Three scalars, several invocations each, interleaved.
	for round := 0; round < 4; round++ {
		for _, s := range []int64{3, 7, 10} {
			for _, x := range []int64{1, -5, 100} {
				got, err := m.Call("scale", s, x)
				if err != nil {
					t.Fatal(err)
				}
				if got != s*x {
					t.Fatalf("scale(%d,%d) = %d", s, x, got)
				}
			}
		}
	}
	rc := m.Region(0)
	if rc.Compiles != 3 {
		t.Errorf("expected 3 compiled versions (one per key), got %d", rc.Compiles)
	}
	if rc.Invocations != 4*3*3 {
		t.Errorf("invocations: %d", rc.Invocations)
	}
	if len(c.Runtime.Stitched[0]) != 3 {
		t.Errorf("stitched segments: %d", len(c.Runtime.Stitched[0]))
	}
}

func TestUnkeyedRegionCompilesOnce(t *testing.T) {
	src := `
int f(int c, int x) {
    int r;
    dynamicRegion (c) {
        r = x + c;
    }
    return r;
}`
	c, err := core.Compile(src, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine(0)
	for i := int64(0); i < 50; i++ {
		if got, err := m.Call("f", 9, i); err != nil || got != 9+i {
			t.Fatalf("f(9,%d) = %d, %v", i, got, err)
		}
	}
	if m.Region(0).Compiles != 1 {
		t.Errorf("compiles: %d", m.Region(0).Compiles)
	}
}

// A keyed region whose set-up is a pure function of the key is Shareable:
// the second machine adopts the first machine's stitched code instead of
// re-stitching, paying zero dynamic-compilation overhead.
func TestSharedAcrossMachines(t *testing.T) {
	c := compileKeyed(t, rtr.CacheOptions{})
	if !c.Output.Regions[0].Shareable {
		t.Fatal("keyed pure region should be marked Shareable")
	}
	m1 := c.NewMachine(0)
	m2 := c.NewMachine(0)
	if v, err := m1.Call("scale", 5, 10); err != nil || v != 50 {
		t.Fatalf("m1: %d, %v", v, err)
	}
	if v, err := m2.Call("scale", 5, 10); err != nil || v != 50 {
		t.Fatalf("m2: %d, %v", v, err)
	}
	if got := m1.Region(0).Compiles; got != 1 {
		t.Errorf("m1 compiles: %d, want 1", got)
	}
	if got := m2.Region(0).Compiles; got != 0 {
		t.Errorf("m2 compiles: %d, want 0 (adopted from shared cache)", got)
	}
	if got := m2.Region(0).Overhead(); got != 0 {
		t.Errorf("m2 overhead: %d cycles, want 0 (shared hit)", got)
	}
	cs := c.Runtime.CacheStats()
	if cs.Stitches != 1 || cs.SharedHits != 1 {
		t.Errorf("cache stats: %+v, want 1 stitch / 1 shared hit", cs)
	}
	if c.Runtime.Stats(0).InstsStitched == 0 {
		t.Error("runtime stats not aggregated")
	}
}

// NoShare restores the seed behaviour: every machine stitches privately.
func TestNoShareDisablesSharing(t *testing.T) {
	c := compileKeyed(t, rtr.CacheOptions{NoShare: true})
	m1 := c.NewMachine(0)
	m2 := c.NewMachine(0)
	if _, err := m1.Call("scale", 5, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Call("scale", 5, 10); err != nil {
		t.Fatal(err)
	}
	if m1.Region(0).Compiles != 1 || m2.Region(0).Compiles != 1 {
		t.Error("with NoShare each machine must stitch its own version")
	}
}

// Regions whose set-up reads machine memory are not Shareable: their
// tables alias per-machine data, so each machine stitches its own copy
// and two machines with different data get different specializations.
func TestUnshareableStaysPerMachine(t *testing.T) {
	c, err := core.Compile(pointerSrc, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Output.Regions[0].Shareable {
		t.Fatal("pointer-loading region must not be Shareable")
	}
	m1 := c.NewMachine(0)
	m2 := c.NewMachine(0)
	a1, _ := m1.Alloc(1)
	m1.Mem[a1] = 21
	a2, _ := m2.Alloc(1)
	m2.Mem[a2] = 100
	if v, err := m1.Call("first", a1); err != nil || v != 42 {
		t.Fatalf("m1: %d, %v", v, err)
	}
	if v, err := m2.Call("first", a2); err != nil || v != 200 {
		t.Fatalf("m2: %d, %v (stale shared specialization?)", v, err)
	}
	if m1.Region(0).Compiles != 1 || m2.Region(0).Compiles != 1 {
		t.Error("each machine must stitch its own version")
	}
}

// Stitched-segment retention is a diagnostic and must be off by default:
// a long-running server would otherwise hold every segment ever stitched.
func TestKeepStitchedGate(t *testing.T) {
	off := compileKeyed(t, rtr.CacheOptions{})
	m := off.NewMachine(0)
	if _, err := m.Call("scale", 3, 4); err != nil {
		t.Fatal(err)
	}
	if n := len(off.Runtime.Stitched[0]); n != 0 {
		t.Errorf("Stitched retained %d segments with KeepStitched off", n)
	}

	on := compileKeyed(t, rtr.CacheOptions{KeepStitched: true})
	m = on.NewMachine(0)
	if _, err := m.Call("scale", 3, 4); err != nil {
		t.Fatal(err)
	}
	if n := len(on.Runtime.Stitched[0]); n != 1 {
		t.Errorf("Stitched retained %d segments with KeepStitched on, want 1", n)
	}
}

func TestStrengthReductionAblation(t *testing.T) {
	on, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true,
		Stitcher: stitcher.Options{NoStrengthReduction: true}})
	if err != nil {
		t.Fatal(err)
	}
	mOn, mOff := on.NewMachine(0), off.NewMachine(0)
	for i := int64(0); i < 100; i++ {
		a, _ := mOn.Call("scale", 7, i)
		b, _ := mOff.Call("scale", 7, i)
		if a != b || a != 7*i {
			t.Fatalf("mismatch at %d: %d vs %d", i, a, b)
		}
	}
	if on.Runtime.Stats(0).StrengthReductions == 0 {
		t.Error("expected reductions with the option on")
	}
	if off.Runtime.Stats(0).StrengthReductions != 0 {
		t.Error("expected no reductions with the option off")
	}
	// Multiply by 7 without reduction costs more cycles per invocation.
	if mOff.Region(0).ExecCycles <= mOn.Region(0).ExecCycles {
		t.Errorf("ablation should cost cycles: on=%d off=%d",
			mOn.Region(0).ExecCycles, mOff.Region(0).ExecCycles)
	}
}

// Reset wipes machine memory, so cached specializations must be dropped
// and the region recompiled against the new data.
func TestResetInvalidatesCache(t *testing.T) {
	c, err := core.Compile(pointerSrc, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine(0)
	addr, _ := m.Alloc(1)
	m.Mem[addr] = 21
	if v, _ := m.Call("first", addr); v != 42 {
		t.Fatalf("first run: %d", v)
	}
	m.Reset()
	addr2, _ := m.Alloc(1)
	m.Mem[addr2] = 100
	v, err := m.Call("first", addr2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 200 {
		t.Errorf("after reset: %d, want 200 (stale specialization?)", v)
	}
	if m.Region(0).Compiles != 2 {
		t.Errorf("compiles: %d, want 2", m.Region(0).Compiles)
	}
}

// The tentpole concurrency test: many machines on many goroutines racing
// over the same cold keys. The singleflight guard must collapse the races
// to exactly one stitch per distinct key, every machine must compute the
// same results as a single-threaded run, and the whole thing must pass
// under -race.
func TestConcurrentSharedCache(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 16
	)
	keys := []int64{2, 3, 5, 7, 11, 13}
	xs := []int64{1, -4, 9, 1000}

	for _, merged := range []bool{false, true} {
		name := "two-pass"
		if merged {
			name = "merged"
		}
		t.Run(name, func(t *testing.T) {
			c, err := core.Compile(keyedSrc, core.Config{
				Dynamic: true, Optimize: true, MergedStitch: merged})
			if err != nil {
				t.Fatal(err)
			}
			machines := make([]*machineDriver, goroutines)
			for i := range machines {
				machines[i] = &machineDriver{m: c.NewMachine(0)}
			}
			var wg sync.WaitGroup
			for _, d := range machines {
				wg.Add(1)
				go func() {
					defer wg.Done()
					d.drive(rounds, keys, xs)
				}()
			}
			wg.Wait()

			var totalCompiles uint64
			for i, d := range machines {
				if d.err != nil {
					t.Fatalf("machine %d: %v", i, d.err)
				}
				totalCompiles += d.m.Region(0).Compiles
			}
			if want := uint64(len(keys)); totalCompiles != want {
				t.Errorf("total compiles across machines: %d, want %d (duplicate stitches)",
					totalCompiles, want)
			}
			cs := c.Runtime.CacheStats()
			if cs.Stitches != uint64(len(keys)) {
				t.Errorf("cache stitches: %d, want %d", cs.Stitches, len(keys))
			}
			if rt := c.Runtime.Stats(0); rt.InstsStitched == 0 {
				t.Error("runtime stats not aggregated")
			}
		})
	}
}

type machineDriver struct {
	m   *vm.Machine
	err error
}

func (d *machineDriver) drive(rounds int, keys, xs []int64) {
	for r := 0; r < rounds; r++ {
		for _, s := range keys {
			for _, x := range xs {
				got, err := d.m.Call("scale", s, x)
				if err != nil {
					d.err = err
					return
				}
				if got != s*x {
					d.err = fmt.Errorf("scale(%d,%d) = %d, want %d", s, x, got, s*x)
					return
				}
			}
		}
	}
}

// The steady-state DYNENTER dispatch (key encode + per-machine cache hit)
// must not allocate: it runs once per region invocation, millions of times
// a second on a busy server.
func TestDynEnterZeroAlloc(t *testing.T) {
	c := compileKeyed(t, rtr.CacheOptions{})
	m := c.NewMachine(0)
	for _, s := range []int64{3, 7, 10} {
		if _, err := m.Call("scale", s, 1); err != nil {
			t.Fatal(err)
		}
	}
	keyRegs := c.Output.Regions[0].KeyRegs
	i := 0
	vals := []int64{3, 7, 10}
	allocs := testing.AllocsPerRun(1000, func() {
		m.Regs[keyRegs[0]] = vals[i%len(vals)]
		i++
		seg, err := m.OnDynEnter(m, 0)
		if err != nil || seg == nil {
			t.Fatalf("warm dispatch missed: seg=%v err=%v", seg, err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm DYNENTER dispatch allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkDynEnterWarm measures the steady-state dispatch hot path alone.
func BenchmarkDynEnterWarm(b *testing.B) {
	c, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		b.Fatal(err)
	}
	m := c.NewMachine(0)
	if _, err := m.Call("scale", 7, 1); err != nil {
		b.Fatal(err)
	}
	keyReg := c.Output.Regions[0].KeyRegs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Regs[keyReg] = 7
		if seg, err := m.OnDynEnter(m, 0); err != nil || seg == nil {
			b.Fatal("warm dispatch missed")
		}
	}
}

// BenchmarkParallelStitchCache drives G machines over G goroutines on a
// fixed keyed workload. Acceptance: the warm path is allocation-free (see
// BenchmarkDynEnterWarm / TestDynEnterZeroAlloc), total stitches equal the
// distinct-key count at every G (no duplicate stitches), and ns/op drops
// as G grows (throughput scaling; compare goroutines=1 vs =8).
func BenchmarkParallelStitchCache(b *testing.B) {
	keys := []int64{2, 3, 5, 7, 11, 13, 17, 19}
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			if g > runtime.GOMAXPROCS(0) {
				b.Skipf("GOMAXPROCS too small for %d goroutines", g)
			}
			c, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true})
			if err != nil {
				b.Fatal(err)
			}
			ms := make([]*machineDriver, g)
			for i := range ms {
				ms[i] = &machineDriver{m: c.NewMachine(0)}
			}
			// Warm every key once so the stitch count is fixed at
			// len(keys) regardless of b.N, and the timed section
			// measures cache behavior rather than first-touch stitching.
			for _, s := range keys {
				if _, err := ms[0].m.Call("scale", s, 1); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/g + 1
			for i := 0; i < g; i++ {
				wg.Add(1)
				go func(d *machineDriver) {
					defer wg.Done()
					for n := 0; n < per; n++ {
						s := keys[n%len(keys)]
						if _, err := d.m.Call("scale", s, int64(n)); err != nil {
							d.err = err
							return
						}
					}
				}(ms[i])
			}
			wg.Wait()
			b.StopTimer()
			for _, d := range ms {
				if d.err != nil {
					b.Fatal(d.err)
				}
			}
			if cs := c.Runtime.CacheStats(); cs.Stitches != uint64(len(keys)) {
				b.Fatalf("stitches: %d, want %d", cs.Stitches, len(keys))
			}
		})
	}
}
