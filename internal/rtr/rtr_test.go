package rtr_test

import (
	"testing"

	"dyncc/internal/core"
	"dyncc/internal/stitcher"
)

const keyedSrc = `
int scale(int s, int x) {
    int r;
    dynamicRegion key(s) () {
        r = x * s;
    }
    return r;
}`

func TestKeyedCodeCache(t *testing.T) {
	c, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine(0)
	// Three scalars, several invocations each, interleaved.
	for round := 0; round < 4; round++ {
		for _, s := range []int64{3, 7, 10} {
			for _, x := range []int64{1, -5, 100} {
				got, err := m.Call("scale", s, x)
				if err != nil {
					t.Fatal(err)
				}
				if got != s*x {
					t.Fatalf("scale(%d,%d) = %d", s, x, got)
				}
			}
		}
	}
	rc := m.Region(0)
	if rc.Compiles != 3 {
		t.Errorf("expected 3 compiled versions (one per key), got %d", rc.Compiles)
	}
	if rc.Invocations != 4*3*3 {
		t.Errorf("invocations: %d", rc.Invocations)
	}
	if len(c.Runtime.Stitched[0]) != 3 {
		t.Errorf("stitched segments: %d", len(c.Runtime.Stitched[0]))
	}
}

func TestUnkeyedRegionCompilesOnce(t *testing.T) {
	src := `
int f(int c, int x) {
    int r;
    dynamicRegion (c) {
        r = x + c;
    }
    return r;
}`
	c, err := core.Compile(src, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine(0)
	for i := int64(0); i < 50; i++ {
		if got, err := m.Call("f", 9, i); err != nil || got != 9+i {
			t.Fatalf("f(9,%d) = %d, %v", i, got, err)
		}
	}
	if m.Region(0).Compiles != 1 {
		t.Errorf("compiles: %d", m.Region(0).Compiles)
	}
}

// Separate machines have separate caches (their tables live in their own
// memory), while the runtime aggregates stats across machines.
func TestPerMachineCaches(t *testing.T) {
	c, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	m1 := c.NewMachine(0)
	m2 := c.NewMachine(0)
	if _, err := m1.Call("scale", 5, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Call("scale", 5, 10); err != nil {
		t.Fatal(err)
	}
	if m1.Region(0).Compiles != 1 || m2.Region(0).Compiles != 1 {
		t.Error("each machine must stitch its own version")
	}
	if c.Runtime.Stats[0].InstsStitched == 0 {
		t.Error("runtime stats not aggregated")
	}
}

func TestStrengthReductionAblation(t *testing.T) {
	on, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true,
		Stitcher: stitcher.Options{NoStrengthReduction: true}})
	if err != nil {
		t.Fatal(err)
	}
	mOn, mOff := on.NewMachine(0), off.NewMachine(0)
	for i := int64(0); i < 100; i++ {
		a, _ := mOn.Call("scale", 7, i)
		b, _ := mOff.Call("scale", 7, i)
		if a != b || a != 7*i {
			t.Fatalf("mismatch at %d: %d vs %d", i, a, b)
		}
	}
	if on.Runtime.Stats[0].StrengthReductions == 0 {
		t.Error("expected reductions with the option on")
	}
	if off.Runtime.Stats[0].StrengthReductions != 0 {
		t.Error("expected no reductions with the option off")
	}
	// Multiply by 7 without reduction costs more cycles per invocation.
	if mOff.Region(0).ExecCycles <= mOn.Region(0).ExecCycles {
		t.Errorf("ablation should cost cycles: on=%d off=%d",
			mOn.Region(0).ExecCycles, mOff.Region(0).ExecCycles)
	}
}

// Reset wipes machine memory, so cached specializations must be dropped
// and the region recompiled against the new data.
func TestResetInvalidatesCache(t *testing.T) {
	src := `
int first(int *a) {
    dynamicRegion (a) {
        return a[0] * 2;
    }
    return -1;
}`
	c, err := core.Compile(src, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine(0)
	addr, _ := m.Alloc(1)
	m.Mem[addr] = 21
	if v, _ := m.Call("first", addr); v != 42 {
		t.Fatalf("first run: %d", v)
	}
	m.Reset()
	addr2, _ := m.Alloc(1)
	m.Mem[addr2] = 100
	v, err := m.Call("first", addr2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 200 {
		t.Errorf("after reset: %d, want 200 (stale specialization?)", v)
	}
	if m.Region(0).Compiles != 2 {
		t.Errorf("compiles: %d, want 2", m.Region(0).Compiles)
	}
}
