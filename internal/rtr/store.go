// Persistent (level-0) cache tier: a content-addressed segio.Store
// consulted behind the sharded level-1 cache, so a restarted server — or a
// different process sharing the store — adopts previously stitched
// segments instead of re-stitching its whole hot set.
//
// # Digest derivation
//
// A stitched shareable segment is a pure function of (region templates,
// stitcher options, parent segment, key tuple). The digest that names it
// in the store is SHA-256 over
//
//	fingerprint(region) || generation || key bytes
//
// where fingerprint(region) is itself SHA-256 over the segio encoding
// version, the stitcher options, the region's key registers, the full
// template dump, and the segio encoding of the region's parent segment —
// everything the stitcher's output depends on besides the key. Two
// processes compiled from the same source derive the same fingerprint and
// so share entries; any divergence (different optimization flags, a
// recompiled program, a segio format bump) changes the fingerprint and
// simply misses — the store can never serve bytes stitched under different
// assumptions.
//
// # Generations
//
// The per-region generation participates in the digest, so Invalidate /
// InvalidateKey orphan every persisted digest of the old generation: the
// new generation derives new digests and the old blobs become unreachable
// garbage (never resurrected within the process). Because generation
// counters are process-local and restart at zero, InvalidateKey
// additionally enqueues a best-effort Delete of the invalidated digest —
// otherwise a pre-invalidation blob persisted at generation g could be
// served by a *future* process whose counter is back at g. Invalidate
// likewise deletes the digests of the resident entries it sweeps. Both are
// best-effort (a full publish queue drops them); callers that need
// stronger cross-restart coherence should fold a data version into the
// region key itself.
//
// # Hot-path discipline
//
// The store is consulted only at stitch sites — after a singleflight claim
// (inline winner) or at the head of a background job — never on the
// DYNENTER lookup path, so the warm path is untouched and concurrent
// missers of one key pay one store read. Publishes back to the store
// (and deletes) run on a single background publisher goroutine fed by a
// bounded queue: the stitch path enqueues and moves on, never blocking on
// I/O. A full queue drops the operation (counted in StoreErrors). Close
// drains the queue executing the pending writes, so a clean shutdown
// persists everything that was accepted.
package rtr

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"dyncc/internal/segio"
	"dyncc/internal/vm"
)

// DefaultStoreQueue bounds the pending store-publish queue when
// CacheOptions.StoreQueue is zero.
const DefaultStoreQueue = 256

// storeOp is one queued store operation: a segment publish (put) or a
// digest delete. Digests are derived by the publisher goroutine, off the
// stitch path.
type storeOp struct {
	put    bool
	region int
	gen    uint64
	key    string
	seg    *vm.Segment // put only; immutable once published
}

// storeEnabled reports whether the level-0 tier is configured.
func (rt *Runtime) storeEnabled() bool { return rt.storeOps != nil }

// fingerprint returns the region's template fingerprint, computing it on
// first use (guarded by storeFpMu; the result is immutable after).
func (rt *Runtime) fingerprint(region int) []byte {
	rt.storeFpMu.Lock()
	defer rt.storeFpMu.Unlock()
	if fp := rt.storeFp[region]; fp != nil {
		return fp
	}
	r := rt.Regions[region]
	h := sha256.New()
	fmt.Fprintf(h, "segio v%d\n", segio.Version)
	fmt.Fprintf(h, "stitcher %+v\n", rt.Opts.Stitcher)
	fmt.Fprintf(h, "keyregs %v\n", r.KeyRegs)
	io.WriteString(h, r.Dump())
	h.Write(segio.Encode(rt.Prog.Segs[r.FuncID]))
	fp := h.Sum(nil)
	rt.storeFp[region] = fp
	return fp
}

// storeDigest names one (region, generation, key) specialization in the
// store.
func (rt *Runtime) storeDigest(region int, gen uint64, key string) segio.Digest {
	h := sha256.New()
	h.Write(rt.fingerprint(region))
	var g [8]byte
	binary.BigEndian.PutUint64(g[:], gen)
	h.Write(g[:])
	io.WriteString(h, key)
	var d segio.Digest
	h.Sum(d[:0])
	return d
}

// storeLoad consults the store for (region, gen, key) and returns the
// decoded, parent-relinked segment, or nil on miss or any error. Exactly
// one of StoreHits / StoreMisses / StoreErrors is incremented per call. A
// blob that fails to decode (corruption, format drift the digest somehow
// missed) is deleted so it cannot keep failing.
func (rt *Runtime) storeLoad(region int, gen uint64, key string) *vm.Segment {
	d := rt.storeDigest(region, gen, key)
	data, err := rt.Opts.Cache.Store.Get(d)
	if err != nil {
		rt.storeErrors.Add(1)
		return nil
	}
	if data == nil {
		rt.storeMisses.Add(1)
		return nil
	}
	seg, err := segio.Decode(data)
	if err != nil {
		rt.storeErrors.Add(1)
		rt.enqueueStore(storeOp{region: region, gen: gen, key: key})
		return nil
	}
	seg.Parent = rt.Prog.Segs[rt.Regions[region].FuncID]
	rt.storeHits.Add(1)
	return seg
}

// storePut schedules an asynchronous publish of seg to the store.
func (rt *Runtime) storePut(region int, gen uint64, key string, seg *vm.Segment) {
	rt.enqueueStore(storeOp{put: true, region: region, gen: gen, key: key, seg: seg})
}

// storeDeleteGen schedules a best-effort delete of the digest (region,
// gen, key) derives.
func (rt *Runtime) storeDeleteGen(region int, gen uint64, key string) {
	rt.enqueueStore(storeOp{region: region, gen: gen, key: key})
}

// enqueueStore hands op to the publisher goroutine. The quit-check and
// send are atomic with respect to closeStore (same handshake as
// schedule/Close in async.go), so an op either lands before the drain or
// is dropped here — never leaked into a dead queue. A full queue drops the
// op and counts a StoreError.
func (rt *Runtime) enqueueStore(op storeOp) {
	if !rt.storeEnabled() {
		return
	}
	rt.storeCloseMu.RLock()
	select {
	case <-rt.storeQuit:
		rt.storeCloseMu.RUnlock()
		return
	default:
	}
	rt.storeOnce.Do(func() { go rt.storePublisher() })
	rt.storeInflight.Add(1)
	select {
	case rt.storeOps <- op:
		rt.storeCloseMu.RUnlock()
	default:
		rt.storeCloseMu.RUnlock()
		rt.storeInflight.Add(-1)
		rt.storeErrors.Add(1)
	}
}

// storePublisher is the single background goroutine performing store I/O.
func (rt *Runtime) storePublisher() {
	for {
		select {
		case <-rt.storeQuit:
			return
		case op := <-rt.storeOps:
			rt.runStoreOp(op)
		}
	}
}

// runStoreOp executes one queued operation (publisher goroutine, or the
// closeStore drain).
func (rt *Runtime) runStoreOp(op storeOp) {
	defer rt.storeInflight.Add(-1)
	d := rt.storeDigest(op.region, op.gen, op.key)
	if !op.put {
		if err := rt.Opts.Cache.Store.Delete(d); err != nil {
			rt.storeErrors.Add(1)
		}
		return
	}
	if err := rt.Opts.Cache.Store.Put(d, segio.Encode(op.seg)); err != nil {
		rt.storeErrors.Add(1)
		return
	}
	rt.storePutCount.Add(1)
}

// adoptStored publishes a store-loaded segment into the shared cache under
// the caller's singleflight entry, with the same generation fencing as a
// real stitch. It mirrors the publish tail of stitchShared/runJob minus
// everything stitch-specific: no Stitches/StencilStitches counting, no
// stitcher statistics, no machine cost — adoption is free, like a
// shared-cache hit. Reports whether the entry was retained (false: the
// region was invalidated while loading; the segment is still valid for the
// waiters of this attempt, which began before the invalidation).
func (rt *Runtime) adoptStored(region int, e *entry, seg *vm.Segment) bool {
	e.seg = seg
	close(e.done)
	sh := rt.shardFor(region, e.key.key)
	sh.mu.Lock()
	e.bytes = int64(seg.MemFootprint())
	// The key is resident again; forget any logged eviction without
	// counting a restitch — nothing was stitched.
	sh.evicted.remove(e.key)
	if e.gen != rt.gens[region].Load() || sh.entries[e.key] != e {
		if sh.entries[e.key] == e {
			delete(sh.entries, e.key)
		}
		sh.mu.Unlock()
		return false
	}
	rt.makeRoomLocked(sh, region, e.bytes)
	sh.publishLocked(rt, e)
	sh.mu.Unlock()
	rt.reclaim(region)
	rt.keepStitched(region, seg)
	return true
}

// closeStore stops the publisher and drains the queue, *executing* the
// pending operations (a queued put represents a stitch the process paid
// for; dropping it on shutdown would forfeit the warm restart this tier
// exists for). It then waits out any operation the publisher had already
// dequeued, so when Close returns every accepted put is in the store.
func (rt *Runtime) closeStore() {
	if !rt.storeEnabled() {
		return
	}
	rt.storeCloseOnce.Do(func() {
		rt.storeCloseMu.Lock()
		close(rt.storeQuit)
		rt.storeCloseMu.Unlock()
		for {
			select {
			case op := <-rt.storeOps:
				rt.runStoreOp(op)
			default:
				for rt.storeInflight.Load() > 0 {
					time.Sleep(20 * time.Microsecond)
				}
				return
			}
		}
	})
}
