// Observability for the two-level stitch cache: monotonic lifecycle
// counters folded across shards (CacheStats), the optional per-region
// churn histogram (Churn), and resident-footprint gauges. Everything here
// is a cold read path — the counters themselves are maintained under the
// per-shard locks the stitch path already takes, so observation adds no
// cost to dispatch.
package rtr

// CacheStats summarizes shared-cache behaviour across all shards. All
// counters are monotonic over the runtime's lifetime except the Resident
// gauges. The lookup counters obey
//
//	Lookups == SharedHits + Waits + FailedHits + Misses
//
// at every instant: each lookup is classified exactly once under its
// shard's lock (the seed counted an in-flight or failed entry as a miss
// *and* later as a wait, so misses overcounted and no invariant held).
type CacheStats struct {
	// Lookup classification (level-1 lookups by machines that missed
	// their private cache).
	Lookups    uint64 // total shared-cache lookups
	SharedHits uint64 // served by another machine's completed stitch
	Waits      uint64 // found an in-flight stitch to coalesce onto
	FailedHits uint64 // found a completed-but-failed entry (will retry)
	Misses     uint64 // found nothing (true misses)

	// Stitch outcomes. Stitches is a monotonic counter incremented at
	// stitch time (singleflight winners plus private stitches of
	// non-shareable regions); the seed derived it by scanning resident
	// entries, so failed stitches were never counted and every eviction
	// would have silently decremented it.
	Stitches       uint64
	FailedStitches uint64
	// StencilStitches counts successful stitches that ran on the
	// copy-and-patch fast path (inline, singleflighted and background
	// alike). Stitches - StencilStitches ran the interpretive fallback —
	// nonzero when `-disable-pass stencil` is set or a region declined
	// precompilation.
	StencilStitches uint64

	// Churn and lifecycle.
	Evictions     uint64 // capacity evictions from the shared cache
	Restitches    uint64 // stitches of keys recently evicted (lower bound; see evictLog)
	Invalidations uint64 // Invalidate/InvalidateKey calls
	L2Evictions   uint64 // per-machine (level-2) cache evictions, fleet-wide

	// Resident footprint of the shared cache (gauges, not counters).
	EntriesResident uint64 // completed segments currently cached
	BytesResident   uint64 // their code footprint (vm.Segment.MemFootprint)
	PeakEntries     uint64 // high-water mark of EntriesResident

	// Tiered execution (CacheOptions.AsyncStitch; all zero without it).
	// FallbackRuns is additive observability — it counts region executions
	// on the generic tier, not lookups, so the lookup invariant above is
	// untouched: a fallback run's lookup was already classified as a Miss
	// (it scheduled the stitch) or a Wait (it coalesced onto one).
	AsyncStitches uint64 // stitches completed by background workers
	FallbackRuns  uint64 // region executions on the generic fallback tier
	QueueRejects  uint64 // cold keys not enqueued because the queue was full
	AsyncDiscards uint64 // background stitches discarded by invalidation

	// PromoteLatency histograms the schedule-to-publish latency of
	// background stitches: bucket i counts publishes in [2^(i-1), 2^i) ns.
	PromoteLatency [PromoteBuckets]uint64

	// Speculative promotion of Auto regions (all zero without them; see
	// promote.go). Like FallbackRuns these are additive observability —
	// promotion happens at DYNENTER before any level-1 lookup and
	// deoptimization at a GUARD, so the lookup invariant above is
	// untouched. A deopt increments Invalidations too (demotion orphans
	// stale stitches through the regular invalidation path).
	Promotions uint64 // profiling→promoted transitions of Auto regions
	Deopts     uint64 // guard-failure demotions back to profiling

	// Persistent (level-0) store tier (CacheOptions.Store; all zero
	// without it). These extend — they do not alter — the lookup invariant
	// above: store consults happen at stitch sites, after the level-1
	// lookup was already classified, and each consult increments exactly
	// one of StoreHits / StoreMisses / StoreErrors. A StoreHit is a stitch
	// avoided, so Stitches does not count it.
	StoreHits   uint64 // stitch sites served by a persisted segment
	StoreMisses uint64 // store consults that found nothing
	StorePuts   uint64 // segments successfully published to the store
	StoreErrors uint64 // store I/O or decode failures, plus dropped queue ops
}

// PromoteQuantile returns an upper bound on the q-quantile (0 < q <= 1) of
// the publish latency, from the power-of-two histogram. Zero if nothing
// was published.
func (cs *CacheStats) PromoteQuantile(q float64) uint64 {
	var total uint64
	for _, n := range cs.PromoteLatency {
		total += n
	}
	if total == 0 {
		return 0
	}
	want := uint64(q * float64(total))
	if want < 1 {
		want = 1
	}
	var seen uint64
	for i, n := range cs.PromoteLatency {
		seen += n
		if seen >= want {
			return uint64(1) << uint(i) // bucket upper bound in ns
		}
	}
	return uint64(1) << (PromoteBuckets - 1)
}

// RegionChurn is one row of the optional per-region churn histogram
// (CacheOptions.ChurnStats): how many stitches, capacity evictions and
// post-eviction re-stitches a region has seen. A region whose Evictions
// and Restitches both climb is thrashing — its working set of
// specializations exceeds the configured caps.
type RegionChurn struct {
	Region     int    `json:"region"`
	Stitches   uint64 `json:"stitches"`
	Evictions  uint64 `json:"evictions"`
	Restitches uint64 `json:"restitches"`
}

// CacheStats folds the shared-cache counters across shards.
func (rt *Runtime) CacheStats() CacheStats {
	var cs CacheStats
	for i := range rt.shards {
		sh := &rt.shards[i]
		sh.mu.Lock()
		cs.Lookups += sh.lookups
		cs.SharedHits += sh.hits
		cs.Waits += sh.waits
		cs.FailedHits += sh.failedHits
		cs.Misses += sh.misses
		cs.Stitches += sh.stitches
		cs.FailedStitches += sh.failedStitches
		cs.Evictions += sh.evictions
		cs.Restitches += sh.restitches
		sh.mu.Unlock()
	}
	cs.Stitches += rt.privateStitches.Load()
	cs.StencilStitches = rt.stencilStitches.Load()
	cs.Invalidations = rt.invalidations.Load()
	cs.L2Evictions = rt.l2Evictions.Load()
	cs.EntriesResident = uint64(rt.resident.Load())
	cs.BytesResident = uint64(rt.residentBytes.Load())
	cs.PeakEntries = uint64(rt.peakEntries.Load())
	cs.AsyncStitches = rt.asyncStitches.Load()
	cs.FallbackRuns = rt.fallbackRuns.Load()
	cs.QueueRejects = rt.queueRejects.Load()
	cs.AsyncDiscards = rt.asyncDiscards.Load()
	cs.StoreHits = rt.storeHits.Load()
	cs.StoreMisses = rt.storeMisses.Load()
	cs.StorePuts = rt.storePutCount.Load()
	cs.StoreErrors = rt.storeErrors.Load()
	cs.Promotions = rt.promotions.Load()
	cs.Deopts = rt.deopts.Load()
	for i := range rt.promoteHist {
		cs.PromoteLatency[i] = rt.promoteHist[i].Load()
	}
	return cs
}

// Churn folds the per-region churn histogram across shards. It returns nil
// unless CacheOptions.ChurnStats was set; rows are indexed by region.
func (rt *Runtime) Churn() []RegionChurn {
	if !rt.Opts.Cache.ChurnStats {
		return nil
	}
	out := make([]RegionChurn, len(rt.Regions))
	for i := range out {
		out[i].Region = i
	}
	for i := range rt.shards {
		sh := &rt.shards[i]
		sh.mu.Lock()
		for r := range sh.churn {
			if r >= len(out) {
				break
			}
			out[r].Stitches += sh.churn[r].Stitches
			out[r].Evictions += sh.churn[r].Evictions
			out[r].Restitches += sh.churn[r].Restitches
		}
		sh.mu.Unlock()
	}
	return out
}
