// Speculative promotion and guarded deoptimization for Auto regions — the
// runtime half of profile-guided automatic region selection.
//
// An Auto region (synthesized by the compiler's `autoregion` pass from an
// unannotated function) starts in the *profiling* state: every DYNENTER
// records the live key tuple and runs the call through inline set-up plus
// the generic interpreter tier — no stitching, so an unstable or cold
// region never pays specialization costs. When the region has been entered
// PromoteThreshold times since the last demotion AND the stability tracker
// (internal/analysis.Stability) reports the recent key tuples identical,
// the region is *promoted*: DYNENTER takes the ordinary keyed lookup path
// (level-2 → level-1 → stitch), plus a per-machine monomorphic fast path
// that reuses the last stitched segment without even encoding the key.
//
// Every stitched segment of an Auto region is wrapped in GUARD
// instructions — one per key, comparing the live key register against the
// value the segment was stitched for. On the keyed lookup path the guards
// always pass (the lookup key was built from the same registers); they
// exist for the monomorphic path, where a changed key is caught by the
// guard and control *deoptimizes*: the OnDeopt hook demotes the region
// back to profiling (with the promotion threshold multiplied by
// BackoffFactor — hysteresis, so a phase-flipping operand cannot livelock
// promote/deopt cycles), bumps the region generation so every stale stitch
// is orphaned through the existing invalidation path, and the VM transfers
// to the region's set-up entry in the parent segment (tmpl.Region.DeoptPC).
// Set-up re-runs with the live values and DYNSTITCH routes the call to the
// generic tier — observable behaviour is exactly as if the region had
// never been promoted.
package rtr

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dyncc/internal/analysis"
	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// Promotion policy defaults (AutoOptions zero values).
const (
	// DefaultPromoteThreshold is how many invocations an Auto region must
	// see (since its last demotion) before it may promote.
	DefaultPromoteThreshold = 8
	// DefaultBackoffFactor multiplies the promotion threshold on every
	// deoptimization, so a region whose "stable" operand keeps changing
	// promotes geometrically less often.
	DefaultBackoffFactor = 4
	// DefaultMaxThreshold caps backoff growth.
	DefaultMaxThreshold = 1 << 20
)

// AutoOptions tune speculative promotion of Auto regions. The zero value
// selects the defaults above; the options are inert for programs without
// Auto regions.
type AutoOptions struct {
	// PromoteThreshold is the invocation count before promotion
	// (0 = DefaultPromoteThreshold). Set it above any workload's call
	// count to obtain a never-promoting baseline.
	PromoteThreshold uint64
	// StabilityWindow is how many consecutive identical key tuples the
	// profiler must observe (0 = analysis.DefaultStabilityWindow).
	StabilityWindow int
	// BackoffFactor multiplies the threshold after each deoptimization
	// (0 = DefaultBackoffFactor).
	BackoffFactor uint64
	// MaxThreshold caps backoff growth (0 = DefaultMaxThreshold).
	MaxThreshold uint64
}

func (o AutoOptions) promoteThreshold() uint64 {
	if o.PromoteThreshold == 0 {
		return DefaultPromoteThreshold
	}
	return o.PromoteThreshold
}

func (o AutoOptions) backoffFactor() uint64 {
	if o.BackoffFactor < 2 {
		return DefaultBackoffFactor
	}
	return o.BackoffFactor
}

func (o AutoOptions) maxThreshold() uint64 {
	if o.MaxThreshold == 0 {
		return DefaultMaxThreshold
	}
	return o.MaxThreshold
}

// autoState is the promotion state machine of one Auto region. The
// promoted flag is read locklessly on the DYNENTER fast path; everything
// else is touched under mu (the profiling path is the generic-tier slow
// path already, so a mutex there costs nothing measurable).
type autoState struct {
	mu        sync.Mutex
	promoted  atomic.Bool
	hot       uint64 // invocations since last demotion
	threshold uint64 // current promotion threshold (grows on deopt)
	stab      *analysis.Stability
}

// hasAuto reports whether any region in the set is an Auto region.
func hasAuto(regions []*tmpl.Region) bool {
	for _, r := range regions {
		if r != nil && r.Auto {
			return true
		}
	}
	return false
}

// initAuto allocates the promotion state (called from New when the program
// has Auto regions). The generic tier must be constructible, so the
// generics slots are allocated here too when async stitching did not
// already do so.
func (rt *Runtime) initAuto() {
	rt.auto = make([]autoState, len(rt.Regions))
	for i := range rt.auto {
		rt.auto[i].threshold = rt.Opts.Auto.promoteThreshold()
		rt.auto[i].stab = analysis.NewStability(rt.Opts.Auto.StabilityWindow)
	}
	if rt.generics == nil {
		rt.generics = make([]genericSlot, len(rt.Regions))
	}
}

// isPromoted is the lock-free fast-path read of the promotion flag.
func (rt *Runtime) isPromoted(region int) bool {
	return rt.auto[region].promoted.Load()
}

// autoEnter handles DYNENTER of an Auto region (the generation check
// already ran). Profiling state: observe the key tuple, maybe promote, and
// fall through to inline set-up (DYNSTITCH will route to the generic
// tier). Promoted state: monomorphic fast path, then the ordinary keyed
// path.
func (rt *Runtime) autoEnter(m *vm.Machine, ms *machineState, region int,
	r *tmpl.Region) (*vm.Segment, error) {

	if !rt.isPromoted(region) {
		key := appendKey(ms.keyBuf[:0], m, r)
		ms.keyBuf = key
		ks := string(key)
		rt.observe(region, ks, r)
		if slot, ok := ms.cache[region][ks]; ok {
			// Rare: a segment stitched while profiling (generic tier
			// unavailable for this region). Reuse it instead of
			// re-stitching; its guards pass — this is the keyed lookup.
			slot.ref = true
			return slot.seg, nil
		}
		ms.pending[region] = ks
		return nil, nil // inline set-up, then DYNSTITCH (generic tier)
	}
	if seg := ms.mono[region]; seg != nil {
		// Monomorphic fast path: reuse the last segment without encoding
		// the key. Its GUARDs verify the speculation and deoptimize on
		// mismatch.
		return seg, nil
	}
	key := appendKey(ms.keyBuf[:0], m, r)
	ms.keyBuf = key
	if slot, ok := ms.cache[region][string(key)]; ok {
		slot.ref = true
		ms.mono[region] = slot.seg
		return slot.seg, nil
	}
	seg, err := rt.enterCold(m, ms, region, key)
	if seg != nil && err == nil && seg.Stitched && len(seg.Code) > 0 &&
		seg.Code[0].Op == vm.GUARD {
		// Cache only guarded stitched segments in the mono slot — never
		// the generic fallback segment (it has no guards; serving it
		// monomorphically would be correct but would shadow promotion).
		ms.mono[region] = seg
	}
	return seg, err
}

// observe records one profiling-state key observation and promotes the
// region when it is hot, stable, and eligible (keyed and shareable — the
// same proof that makes its stitched code a pure function of the key).
func (rt *Runtime) observe(region int, key string, r *tmpl.Region) {
	st := &rt.auto[region]
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.promoted.Load() {
		return // promoted by a racing machine between our check and here
	}
	st.hot++
	st.stab.Observe(key)
	if st.hot >= st.threshold && st.stab.Stable() &&
		len(r.KeyRegs) > 0 && rt.shared(r) {
		st.promoted.Store(true)
		rt.promotions.Add(1)
	}
}

// onDeopt demotes a region after a guard failure: back to profiling with
// an exponentially backed-off threshold, generation bumped so every stale
// stitch (shared and per-machine) is orphaned. Idempotent across machines:
// only the demoting call counts a deoptimization, so concurrent guard
// failures on other machines holding the same stale segment fold into one.
func (rt *Runtime) onDeopt(region int) {
	st := &rt.auto[region]
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.promoted.Load() {
		return
	}
	st.promoted.Store(false)
	st.hot = 0
	st.stab.Reset()
	st.threshold *= rt.Opts.Auto.backoffFactor()
	if max := rt.Opts.Auto.maxThreshold(); st.threshold > max {
		st.threshold = max
	}
	rt.deopts.Add(1)
	// Orphan stale stitches through the existing invalidation path (the
	// generation bump also flushes every machine's level-2 copies and mono
	// slots on their next DYNENTER).
	rt.Invalidate(region)
}

// wrapGuards returns a copy of a freshly stitched Auto-region segment with
// one GUARD prepended per key: GUARD compares the live key register
// against the value the segment was stitched for and deoptimizes to the
// region's set-up entry (r.DeoptPC, a parent-segment pc) on mismatch.
// Internal branch targets shift by the guard count; XFER targets (parent
// pcs) do not. The wrap happens at every stitch site before the segment is
// cached, published or persisted, so all emission paths — inline,
// singleflight winner, background worker — and the persistent store all
// carry byte-identical guarded code.
func wrapGuards(r *tmpl.Region, seg *vm.Segment, key string) (*vm.Segment, error) {
	g := len(r.KeyRegs)
	if g == 0 {
		return seg, nil
	}
	keyVals, err := decodeKey(key, g)
	if err != nil {
		return nil, fmt.Errorf("guard wrap %s: %w", r.Name, err)
	}
	if len(seg.JumpTables) != 0 {
		// Stitched segments never carry jump tables (run-time switches are
		// lowered to two-way branches before templating); refuse rather
		// than emit a segment whose table targets went stale.
		return nil, fmt.Errorf("guard wrap %s: unexpected jump tables", r.Name)
	}
	code := make([]vm.Inst, 0, g+len(seg.Code))
	for i := 0; i < g; i++ {
		code = append(code, vm.Inst{
			Op:     vm.GUARD,
			Rs:     r.KeyRegs[i],
			Imm:    keyVals[i],
			Target: r.DeoptPC,
		})
	}
	for _, in := range seg.Code {
		switch in.Op {
		case vm.BEQZ, vm.BNEZ, vm.BEQI, vm.BR, vm.CMPBR, vm.CMPBRI:
			in.Target += g
		}
		// XFER and GUARD targets point into the parent segment; unshifted.
		code = append(code, in)
	}
	ns := &vm.Segment{
		Name:     seg.Name,
		Code:     code,
		Consts:   seg.Consts,
		Parent:   seg.Parent,
		Region:   seg.Region,
		Stitched: seg.Stitched,
	}
	ns.Prepare()
	return ns, nil
}

// guardStitch wraps seg when region r is Auto; identity otherwise. Called
// immediately after every successful stitcher.Stitch of a region segment.
func guardStitch(r *tmpl.Region, seg *vm.Segment, key string) (*vm.Segment, error) {
	if !r.Auto {
		return seg, nil
	}
	return wrapGuards(r, seg, key)
}
