package rtr_test

import (
	"sync"
	"testing"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
)

// Close must be idempotent and safe from any number of goroutines, and
// WaitIdle must terminate whether it runs before, during or after Close
// (double-Close used to be unspecified).
func TestCloseIdempotentConcurrent(t *testing.T) {
	c, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{AsyncStitch: true}})
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine(0)
	for k := int64(1); k <= 8; k++ {
		if got, err := m.Call("scale", k, 3); err != nil || got != k*3 {
			t.Fatalf("scale(%d,3) = %d, %v", k, got, err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Runtime.Close()
			c.Runtime.WaitIdle()
			c.Runtime.Close()
		}()
	}
	wg.Wait()
	c.Runtime.Close()    // and again, sequentially
	c.Runtime.WaitIdle() // after Close: must return immediately

	// The runtime stays usable after Close: cold keys can no longer take
	// the async path, but calls still complete correctly (fallback tier or
	// inline stitch, depending on the schedule/Close race outcome).
	for k := int64(100); k < 110; k++ {
		if got, err := m.Call("scale", k, 7); err != nil || got != k*7 {
			t.Fatalf("post-close scale(%d,7) = %d, %v", k, got, err)
		}
	}
}

// Close racing machines that are actively scheduling background stitches:
// the schedule/Close handshake must never leak an in-flight claim (which
// would hang WaitIdle forever) and every call must keep returning correct
// results on whichever tier it lands on.
func TestCloseRacesScheduling(t *testing.T) {
	for round := 0; round < 10; round++ {
		c, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true,
			Cache: rtr.CacheOptions{AsyncStitch: true, StitchQueue: 4}})
		if err != nil {
			t.Fatal(err)
		}
		const machines = 4
		ms := c.NewMachines(machines)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < machines; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				base := int64(round*10000 + i*1000)
				for k := base + 1; k < base+200; k++ {
					got, err := ms[i].Call("scale", k, 2)
					if err != nil {
						t.Errorf("scale(%d,2): %v", k, err)
						return
					}
					if got != k*2 {
						t.Errorf("scale(%d,2) = %d, want %d", k, got, k*2)
						return
					}
				}
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			c.Runtime.Close()
		}()
		close(start)
		wg.Wait()
		// The leak this guards against: a job enqueued after Close's drain
		// leaves inflight > 0 and WaitIdle spins forever.
		c.Runtime.WaitIdle()
	}
}

// WaitIdle concurrent with Close on a runtime with queued work: both must
// return (Close fails the queued jobs, releasing the in-flight count that
// WaitIdle watches).
func TestWaitIdleDuringClose(t *testing.T) {
	c, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{AsyncStitch: true, StitchWorkers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	m := c.NewMachine(0)
	for k := int64(1); k <= 64; k++ {
		if _, err := m.Call("scale", k, 5); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); c.Runtime.WaitIdle() }()
	go func() { defer wg.Done(); c.Runtime.Close() }()
	wg.Wait()
}

// Close and WaitIdle on a runtime without AsyncStitch are documented no-ops.
func TestCloseWithoutAsync(t *testing.T) {
	c, err := core.Compile(keyedSrc, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Runtime.Close()
	c.Runtime.WaitIdle()
	c.Runtime.Close()
	m := c.NewMachine(0)
	if got, err := m.Call("scale", 6, 7); err != nil || got != 42 {
		t.Fatalf("scale(6,7) = %d, %v", got, err)
	}
}
