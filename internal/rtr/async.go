// Asynchronous background stitching (CacheOptions.AsyncStitch): the
// tiered-execution pipeline that takes stitching off the caller's critical
// path.
//
// With async stitching on, a shared-cache miss of an eligible region does
// not stitch inline. Instead the missing machine:
//
//  1. claims the (region, key) singleflight entry (coalescing with the
//     existing latch: concurrent missers of the same key schedule exactly
//     one stitch) and enqueues a job on a bounded queue served by a small
//     worker pool — with backpressure: a full queue withdraws the claim,
//     counts a QueueReject, and leaves the key for a later miss to retry;
//  2. runs this call on the generic fallback tier (set-up code plus the
//     region's unspecialized stitcher.Generic segment), so the call
//     completes at roughly statically-compiled speed while the stitch
//     happens elsewhere.
//
// A worker re-derives the region's run-time constants table from the key
// bytes alone (Runtime.KeySetup, installed by the compiler for regions it
// proved Shareable — set-up provably depends only on the key values, so
// the worker needs no machine), stitches against a private arena, and
// publishes under the shard lock with exactly the same generation fencing
// as the inline path: an entry invalidated (or explicitly flushed) while
// in flight is discarded, never published (CacheStats.AsyncDiscards).
// Eviction interacts as always — in-flight entries are pinned because only
// published entries join the CLOCK ring, and publishing makes room first.
//
// Promotion: the published entry is found by the very next lookupShared of
// that key, and the adopting machine installs it in its level-2 map, so
// the call after publish takes the warm zero-alloc DYNENTER path
// (TestAsyncPromotionNextCall). PromoteLatency histograms the
// schedule-to-publish time.
//
// Eligibility is per region: AsyncStitch on, a KeySetup function present,
// and the generic segment buildable (regions with more unrolled loops than
// the reserved record registers, or holes the generic renderer cannot
// defer, fall back to inline stitching — never to a wrong result).
package rtr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"time"

	"dyncc/internal/stitcher"
	"dyncc/internal/vm"
)

// DefaultStitchWorkers sizes the background stitcher pool when
// CacheOptions.StitchWorkers is zero. Two workers keep cold-burst queues
// draining even while one stitch is long (a deeply unrolled region)
// without competing with the machines for more than a sliver of CPU.
const DefaultStitchWorkers = 2

// DefaultStitchQueue bounds the pending-stitch queue when
// CacheOptions.StitchQueue is zero.
const DefaultStitchQueue = 64

// PromoteBuckets is the size of the PromoteLatency histogram: bucket i
// counts publishes whose schedule-to-publish latency was in
// [2^(i-1), 2^i) nanoseconds (bucket 0: < 1ns).
const PromoteBuckets = 40

var (
	errAsyncQueueFull = errors.New("rtr: async stitch queue full")
	errRuntimeClosed  = errors.New("rtr: runtime closed")
)

// stitchJob is one queued background stitch. The entry was already claimed
// (mapped in its shard) by the scheduling machine.
type stitchJob struct {
	region int
	key    string
	e      *entry
	enq    time.Time
}

// genericSlot lazily caches a region's generic-tier segment (guarded by
// Runtime.genericMu). seg stays nil when the region cannot be rendered
// generically; the region then stitches inline.
type genericSlot struct {
	built bool
	seg   *vm.Segment
}

// asyncFallback decides whether a cold (region, key) takes the async path.
// If so it ensures a background stitch is scheduled (or already in flight)
// and returns the generic segment the caller should execute; nil means
// "stitch inline as always".
func (rt *Runtime) asyncFallback(region int, ks string) *vm.Segment {
	if rt.jobs == nil || rt.KeySetup[region] == nil {
		return nil
	}
	gseg := rt.generic(region)
	if gseg == nil {
		return nil
	}
	rt.schedule(region, ks)
	return gseg
}

// generic returns the region's generic-tier segment, building it on first
// use (nil if the region cannot be rendered generically).
func (rt *Runtime) generic(region int) *vm.Segment {
	gs := &rt.generics[region]
	rt.genericMu.Lock()
	defer rt.genericMu.Unlock()
	if !gs.built {
		gs.built = true
		r := rt.Regions[region]
		seg, err := stitcher.Generic(r, rt.Prog.Segs[r.FuncID], rt.Opts.Stitcher)
		if err == nil {
			gs.seg = seg
		}
	}
	return gs.seg
}

// schedule claims the singleflight entry for (region, key) and enqueues a
// background stitch. If the key is already resident, in flight or queued,
// it coalesces (no-op). If the queue is full, the claim is withdrawn
// (backpressure): callers stay on the fallback tier and a later miss
// retries.
func (rt *Runtime) schedule(region int, ks string) {
	sh := rt.shardFor(region, ks)
	ck := cacheKey{region: region, key: ks}
	sh.mu.Lock()
	if _, ok := sh.entries[ck]; ok {
		sh.mu.Unlock()
		return
	}
	e := &entry{key: ck, gen: rt.gens[region].Load(),
		done: make(chan struct{}), slot: -1}
	sh.entries[ck] = e
	sh.mu.Unlock()

	withdraw := func(reason error) {
		e.err = reason
		sh.mu.Lock()
		if sh.entries[ck] == e {
			delete(sh.entries, ck)
		}
		sh.mu.Unlock()
		close(e.done)
	}
	// The quit-check and the send happen under closeMu's read side so they
	// are atomic with respect to Close: either the job is enqueued before
	// Close closes quit (and Close's drain fails it), or the closed quit is
	// observed here and the claim is withdrawn. Without this a send racing
	// Close could land after the drain, leaking the claim and the inflight
	// count forever (WaitIdle would never return).
	rt.closeMu.RLock()
	select {
	case <-rt.quit:
		// Closed: the queue is no longer drained, so enqueueing would leak
		// the claim forever. Withdraw it; callers keep running on the
		// fallback tier.
		rt.closeMu.RUnlock()
		withdraw(errRuntimeClosed)
		return
	default:
	}
	rt.startWorkers()
	rt.inflight.Add(1)
	select {
	case rt.jobs <- stitchJob{region: region, key: ks, e: e, enq: time.Now()}:
		rt.closeMu.RUnlock()
	default:
		rt.closeMu.RUnlock()
		rt.inflight.Add(-1)
		rt.queueRejects.Add(1)
		withdraw(errAsyncQueueFull)
	}
}

// startWorkers spawns the worker pool on first use (so a runtime that
// never schedules a stitch never owns a goroutine).
func (rt *Runtime) startWorkers() {
	rt.workerOnce.Do(func() {
		n := rt.Opts.Cache.StitchWorkers
		if n <= 0 {
			n = DefaultStitchWorkers
		}
		for i := 0; i < n; i++ {
			go rt.worker()
		}
	})
}

func (rt *Runtime) worker() {
	for {
		select {
		case <-rt.quit:
			return
		case job := <-rt.jobs:
			rt.runJob(job)
		}
	}
}

// runJob performs one background stitch: re-derive the table from the key
// bytes, stitch, and publish with generation fencing.
func (rt *Runtime) runJob(job stitchJob) {
	defer rt.inflight.Add(-1)
	r := rt.Regions[job.region]
	e := job.e

	if rt.storeEnabled() {
		// Level-0 consult, mirroring the inline winner (see stitchShared):
		// a persisted specialization is adopted without re-deriving the
		// table or stitching. Counted as neither an async stitch nor a
		// discard — nothing was stitched. The digest uses a fresh
		// generation load, not e.gen: e is shared with InvalidateKey's
		// sibling sweep, which refreshes e.gen under the shard lock.
		if seg := rt.storeLoad(job.region, rt.gens[job.region].Load(), job.key); seg != nil {
			if rt.adoptStored(job.region, e, seg) {
				rt.notePromote(time.Since(job.enq))
			}
			return
		}
	}

	var (
		seg   *vm.Segment
		stats *stitcher.Stats
		err   error
	)
	keyVals, err := decodeKey(job.key, len(r.KeyRegs))
	if err == nil {
		var (
			mem []int64
			tbl int64
		)
		mem, tbl, err = rt.KeySetup[job.region](keyVals)
		if err == nil {
			seg, stats, err = stitcher.Stitch(r, mem, tbl, rt.Prog.Segs[r.FuncID], rt.Opts.Stitcher)
		}
		if err == nil {
			// Auto regions: guard-wrap before publish/persist (promote.go).
			seg, err = guardStitch(r, seg, job.key)
		}
	}
	e.seg, e.err = seg, err
	close(e.done)

	sh := rt.shardFor(job.region, job.key)
	ck := e.key
	sh.mu.Lock()
	if err != nil {
		sh.failedStitches++
		if sh.entries[ck] == e {
			delete(sh.entries, ck)
		}
		sh.mu.Unlock()
		return
	}
	rt.asyncStitches.Add(1)
	sh.stitches++
	rt.countStencil(stats)
	sh.addStatsLocked(job.region, stats)
	e.bytes = int64(seg.MemFootprint())
	restitch := sh.evicted.remove(ck)
	if restitch {
		sh.restitches++
	}
	if rt.Opts.Cache.ChurnStats {
		c := sh.churnLocked(job.region)
		c.Stitches++
		if restitch {
			c.Restitches++
		}
	}
	if e.gen != rt.gens[job.region].Load() || sh.entries[ck] != e {
		// Invalidated (or explicitly flushed) while in flight: discard.
		// Unlike the inline path there are no waiters to serve — fallback
		// callers never block on the latch.
		if sh.entries[ck] == e {
			delete(sh.entries, ck)
		}
		sh.mu.Unlock()
		rt.asyncDiscards.Add(1)
		return
	}
	rt.makeRoomLocked(sh, job.region, e.bytes)
	sh.publishLocked(rt, e)
	putGen := e.gen // snapshot under the lock; sibling sweeps may refresh it
	sh.mu.Unlock()
	rt.storePut(job.region, putGen, job.key, seg)
	rt.notePromote(time.Since(job.enq))
	rt.reclaim(job.region)
	rt.keepStitched(job.region, seg)
}

// decodeKey reverses appendKey/encodeKey: n varint-encoded key-register
// values.
func decodeKey(key string, n int) ([]int64, error) {
	vals := make([]int64, 0, n)
	buf := []byte(key)
	for len(buf) > 0 {
		v, sz := binary.Varint(buf)
		if sz <= 0 {
			return nil, fmt.Errorf("rtr: malformed key encoding")
		}
		vals = append(vals, v)
		buf = buf[sz:]
	}
	if len(vals) != n {
		return nil, fmt.Errorf("rtr: key has %d values, region wants %d", len(vals), n)
	}
	return vals, nil
}

// notePromote records one publish latency in the power-of-two histogram.
func (rt *Runtime) notePromote(d time.Duration) {
	n := d.Nanoseconds()
	if n < 0 {
		n = 0
	}
	b := bits.Len64(uint64(n))
	if b >= PromoteBuckets {
		b = PromoteBuckets - 1
	}
	rt.promoteHist[b].Add(1)
}

// WaitIdle blocks until no background stitch or store operation is queued
// or running. Jobs scheduled after WaitIdle starts are waited on too;
// quiesce the machines first if you need a stable point. It is a
// diagnostics/test aid, not a synchronization primitive. Safe to call
// concurrently from any number of goroutines and before, during or after
// Close: Close fails queued jobs (decrementing the in-flight count) and
// drains the store queue, so a WaitIdle racing it still terminates.
func (rt *Runtime) WaitIdle() {
	for (rt.jobs != nil && rt.inflight.Load() > 0) ||
		(rt.storeOps != nil && rt.storeInflight.Load() > 0) {
		time.Sleep(20 * time.Microsecond)
	}
}

// Close stops the background workers and fails every still-queued stitch
// (their entries are withdrawn so the keys can stitch again if the runtime
// keeps being used inline), then shuts down the persistent-store publisher,
// draining its queue by *executing* the pending writes — a clean Close
// persists every stitch the store accepted (see closeStore). Close is
// idempotent and a no-op for runtimes without AsyncStitch or a Store; it
// is safe to call concurrently from any number of goroutines, concurrently
// with WaitIdle, and while attached machines are still scheduling (late
// schedulers observe the closed runtime and stay on the fallback tier).
// Jobs already being stitched by a worker finish and publish normally.
func (rt *Runtime) Close() {
	rt.closeAsync()
	rt.closeStore()
}

func (rt *Runtime) closeAsync() {
	if rt.quit == nil {
		return
	}
	rt.closeOnce.Do(func() {
		// Exclude in-flight enqueues (see schedule): after this unlock,
		// every job that won the race is in the queue and every loser has
		// withdrawn its claim, so the drain below is complete.
		rt.closeMu.Lock()
		close(rt.quit)
		rt.closeMu.Unlock()
		for {
			select {
			case job := <-rt.jobs:
				job.e.err = errRuntimeClosed
				sh := rt.shardFor(job.region, job.key)
				sh.mu.Lock()
				if sh.entries[job.e.key] == job.e {
					delete(sh.entries, job.e.key)
				}
				sh.mu.Unlock()
				close(job.e.done)
				rt.inflight.Add(-1)
			default:
				return
			}
		}
	})
}

// Peek returns the published shared-cache segment for (region, key-values)
// without touching the lookup counters or reference bits — a diagnostics
// accessor (is this specialization resident?) used by the byte-identity
// tests.
func (rt *Runtime) Peek(region int, keyVals ...int64) *vm.Segment {
	ks := encodeKey(keyVals)
	sh := rt.shardFor(region, ks)
	ck := cacheKey{region: region, key: ks}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[ck]
	if !ok {
		return nil
	}
	select {
	case <-e.done:
		if e.err != nil {
			return nil
		}
		return e.seg
	default:
		return nil
	}
}
