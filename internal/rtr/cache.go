package rtr

import (
	"encoding/binary"
	"sync"

	"dyncc/internal/segio"
	"dyncc/internal/stitcher"
	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// DefaultShards is the shard count of the shared (level-1) stitch cache
// when CacheOptions.Shards is zero. 32 shards keep lock contention
// negligible for any realistic machine count while costing a few hundred
// bytes per runtime; the count is rounded up to a power of two so shard
// selection is a mask, not a modulo.
const DefaultShards = 32

// DefaultKeepStitchedCap bounds diagnostic segment retention when
// CacheOptions.KeepStitched is on and no explicit cap is given. Retention
// is a debugging aid; a few hundred segments cover every dump and golden
// test while keeping a long KeepStitched run from leaking.
const DefaultKeepStitchedCap = 512

// CacheOptions tune the runtime's two-level stitch cache. The zero value
// preserves the historical behaviour exactly: unbounded retention at both
// levels, cross-machine sharing on, no churn histogram.
type CacheOptions struct {
	// KeepStitched retains stitched segments in Runtime.Stitched for
	// diagnostics (golden tests, disassembly dumps). Off by default: a
	// long-running server would otherwise hold every segment it ever
	// stitched, even ones its machines have dropped.
	KeepStitched bool
	// KeepStitchedCap bounds KeepStitched retention (total segments across
	// regions; 0 = DefaultKeepStitchedCap). Once full, later segments are
	// simply not retained — diagnostics capture the beginning of a run.
	KeepStitchedCap int
	// Shards overrides the shared-cache shard count (0 = DefaultShards;
	// values are rounded up to a power of two).
	Shards int
	// NoShare disables the cross-machine shared cache: every machine
	// stitches its own segments, as if all regions were unshareable.
	// Stitch deduplication across goroutines is disabled with it.
	NoShare bool

	// MaxEntries bounds the number of resident segments in the shared
	// (level-1) cache across all regions and shards (0 = unbounded).
	// In-flight singleflight entries are pinned and do not count against
	// the cap; eviction uses a per-shard CLOCK (second-chance) policy.
	MaxEntries int
	// MaxCodeBytes bounds the resident stitched-code footprint of the
	// shared cache in bytes (0 = unbounded), using vm.Segment.MemFootprint
	// as the per-segment size. A single segment larger than the cap is
	// still cached (the cache must publish it to waiters) and evicted as
	// soon as anything else arrives.
	MaxCodeBytes int64
	// MaxEntriesPerRegion bounds the resident shared-cache segments of any
	// single region (0 = unbounded). Enforcement is best-effort across
	// shards: a region briefly overshoots while a concurrent publish in
	// another shard completes.
	MaxEntriesPerRegion int
	// MaxCodeBytesPerRegion bounds the resident code bytes of any single
	// region (0 = unbounded), with the same best-effort cross-shard
	// enforcement as MaxEntriesPerRegion.
	MaxCodeBytesPerRegion int64
	// MachineMaxEntries bounds each machine's private (level-2) cache
	// (total segments across regions, 0 = unbounded). Eviction is
	// second-chance FIFO: a slot referenced since it was last considered
	// gets one more pass before it is dropped.
	MachineMaxEntries int

	// ChurnStats enables the optional per-region churn histogram
	// (Runtime.Churn): stitches, evictions and re-stitches per region.
	// The counters are touched only on the cold stitch/evict paths, but
	// they are off by default to keep the zero value allocation-free.
	ChurnStats bool

	// AsyncStitch routes shared-cache misses of key-driven shareable
	// regions to a bounded background worker pool instead of stitching
	// inline: the missing call (and every call until the stitch publishes)
	// executes the region on the generic fallback tier — set-up plus an
	// unspecialized rendering of the templates (stitcher.Generic) — so no
	// caller ever blocks on compilation. Requires a key set-up function
	// (Runtime.KeySetup, installed by the compiler front end for regions it
	// proved shareable); regions without one stitch inline as before.
	// See async.go for the pipeline and DESIGN.md "Tiered execution".
	AsyncStitch bool
	// StitchWorkers sizes the background stitcher pool
	// (0 = DefaultStitchWorkers). Workers are started lazily on the first
	// scheduled stitch and stopped by Runtime.Close.
	StitchWorkers int
	// StitchQueue bounds the pending-stitch queue
	// (0 = DefaultStitchQueue). When the queue is full, new cold keys are
	// not enqueued (backpressure, counted in CacheStats.QueueRejects);
	// their callers stay on the fallback tier and a later miss retries.
	StitchQueue int

	// Store, when non-nil, adds a persistent content-addressed level-0
	// tier behind the shared cache: on a keyed-shareable miss the stitch
	// site consults the store by digest before stitching, and successful
	// stitches are published back asynchronously, so a restarted server
	// (or another process sharing the store) skips re-stitching its hot
	// set. The hot path never blocks on store I/O. See store.go for the
	// digest derivation and invalidation interplay, and segio.OpenDir for
	// the on-disk implementation.
	Store segio.Store
	// StoreQueue bounds the pending store-publish queue
	// (0 = DefaultStoreQueue). A full queue drops the operation, counted
	// in CacheStats.StoreErrors.
	StoreQueue int
}

// cacheKey identifies one specialization in the shared cache.
type cacheKey struct {
	region int
	key    string // binary-encoded key-register values
}

// entry is one shared-cache slot with a singleflight latch: the goroutine
// that creates the entry stitches; later arrivals block on done and read
// seg/err. Entries whose stitch failed are removed so a later attempt can
// retry (the error is still delivered to every waiter of that attempt).
//
// Lifecycle: an entry is *in-flight* from creation until done is closed
// (pinned — the eviction clock never sees it, because only published
// entries join the shard ring), then *resident* once published into the
// ring, until evicted or invalidated. gen snapshots the region generation
// at claim time; lookups reject entries whose generation is stale, so a
// segment stitched against data invalidated mid-flight is served to its
// waiters (they began before the invalidation) but never retained.
type entry struct {
	key  cacheKey
	gen  uint64 // region generation at claim time
	done chan struct{}
	seg  *vm.Segment
	err  error

	// Guarded by the owning shard's mutex.
	bytes int64 // seg.MemFootprint(), cached at publish
	ref   bool  // CLOCK reference bit, set on every shared hit
	slot  int   // index in the shard's ring; -1 when not resident
}

// shard is one lock domain of the shared cache. Stitcher statistics and
// cache counters are accumulated per shard and folded on read so the
// stitch path never takes a runtime-global lock.
type shard struct {
	mu      sync.Mutex
	entries map[cacheKey]*entry
	ring    []*entry         // resident entries, in CLOCK order
	hand    int              // CLOCK hand into ring
	stats   []stitcher.Stats // per region index
	churn   []RegionChurn    // per region index; only with ChurnStats
	evicted evictLog         // recent capacity evictions, for restitch detection

	// Monotonic counters (never decremented; see CacheStats for the
	// lookup invariant).
	lookups        uint64
	hits           uint64 // lookups served by a completed entry
	waits          uint64 // lookups that found an in-flight stitch to coalesce onto
	misses         uint64 // lookups that found nothing
	failedHits     uint64 // lookups that found a completed-but-failed entry
	stitches       uint64 // successful stitches won in this shard
	failedStitches uint64 // stitches that returned an error
	evictions      uint64 // capacity evictions (invalidations are counted separately)
	restitches     uint64 // stitches of a key recently evicted for capacity
}

func numShards(opt int) int {
	n := opt
	if n <= 0 {
		n = DefaultShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// appendKey encodes the key-register values staged at DYNENTER into buf
// (varint-encoded, reusing buf's capacity). This replaces the seed's
// fmt.Sprintf key building, which allocated on every DYNENTER.
func appendKey(buf []byte, m *vm.Machine, r *tmpl.Region) []byte {
	for _, reg := range r.KeyRegs {
		buf = binary.AppendVarint(buf, m.Regs[reg])
	}
	return buf
}

// encodeKey renders explicit key values the way DYNENTER would stage them,
// for the InvalidateKey API.
func encodeKey(vals []int64) string {
	buf := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		buf = binary.AppendVarint(buf, v)
	}
	return string(buf)
}

// shardFor picks the shard for (region, key) by FNV-1a over the region
// index and the encoded key bytes.
func (rt *Runtime) shardFor(region int, key string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(region)) * prime64
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime64
	}
	return &rt.shards[h&uint64(len(rt.shards)-1)]
}

// lookupShared returns the completed segment for (region, key), or nil.
// In-flight entries are not waited on here: DYNENTER falls through into
// set-up instead, and the wait happens at stitch time where the in-flight
// window is pure host code (see stitchShared).
//
// Accounting invariant: every lookup increments exactly one of hits,
// waits, failedHits or misses, so at all times
//
//	lookups == hits + waits + failedHits + misses
//
// (see TestLookupAccountingInvariant). A lookup that finds an in-flight
// entry is a wait — the caller will coalesce onto that stitch — not a
// miss; the seed double-counted it as both.
func (rt *Runtime) lookupShared(region int, key string) *vm.Segment {
	sh := rt.shardFor(region, key)
	ck := cacheKey{region: region, key: key}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.lookups++
	e, ok := sh.entries[ck]
	if !ok {
		sh.misses++
		return nil
	}
	select {
	case <-e.done:
		if e.err != nil {
			// Completed but failed (narrow window before the stitcher's
			// own cleanup removes it): not a true miss — the key was
			// present — but unusable, so the caller re-stitches.
			sh.failedHits++
			return nil
		}
		if e.gen != rt.gens[region].Load() {
			// Invalidated after publish; drop it now rather than serving
			// a segment from a dead generation.
			sh.dropLocked(rt, e)
			sh.misses++
			return nil
		}
		sh.hits++
		e.ref = true
		return e.seg
	default:
		sh.waits++
		return nil
	}
}

// stitchShared produces the segment for (region, key) with singleflight:
// exactly one goroutine runs the stitcher against its own machine's table;
// everyone else blocks until it publishes. The window between claim and
// publish contains only host-side stitching (no VM execution), so waiters
// cannot be abandoned. Returns the segment, the stitch statistics if this
// call was the winner (nil for waiters — the winner's machine already
// accounted the modeled cost), and any stitch error.
func (rt *Runtime) stitchShared(m *vm.Machine, region int, key string,
	tbl int64) (*vm.Segment, *stitcher.Stats, error) {

	r := rt.Regions[region]
	sh := rt.shardFor(region, key)
	ck := cacheKey{region: region, key: key}

	sh.mu.Lock()
	if e, ok := sh.entries[ck]; ok {
		sh.mu.Unlock()
		<-e.done
		// A failed stitch is deterministic for a shareable region (the
		// output depends only on the key), so propagate the winner's error
		// rather than re-running a stitch that would fail identically.
		return e.seg, nil, e.err
	}
	claimGen := rt.gens[region].Load()
	e := &entry{key: ck, gen: claimGen,
		done: make(chan struct{}), slot: -1}
	sh.entries[ck] = e
	sh.mu.Unlock()
	// From here e is shared state: InvalidateKey's sibling sweep may
	// refresh e.gen under the shard lock, so unlocked reads use the local
	// claimGen snapshot instead.

	if rt.storeEnabled() {
		// Level-0: a previous process (or an earlier generation of this
		// one) may have persisted this exact specialization. The read is
		// synchronous but happens only here, after winning the
		// singleflight claim — concurrent missers coalesce onto it, and
		// the warm lookup path never sees the store. Adoption is free:
		// no stitch is counted and no stitch cost charged (stats == nil),
		// exactly like adopting another machine's stitch.
		if seg := rt.storeLoad(region, claimGen, key); seg != nil {
			rt.adoptStored(region, e, seg)
			return seg, nil, nil
		}
	}

	seg, stats, err := stitcher.Stitch(r, m.Mem, tbl, m.Prog.Segs[r.FuncID], rt.Opts.Stitcher)
	if err == nil {
		// Auto regions: wrap in deoptimization guards before the segment is
		// published or persisted, so every consumer — waiters, adopting
		// machines, the store — sees guarded code (see promote.go).
		seg, err = guardStitch(r, seg, key)
	}
	e.seg, e.err = seg, err
	close(e.done)

	sh.mu.Lock()
	if err != nil {
		sh.failedStitches++
		if sh.entries[ck] == e {
			delete(sh.entries, ck)
		}
		sh.mu.Unlock()
		return seg, stats, err
	}
	sh.stitches++
	rt.countStencil(stats)
	sh.addStatsLocked(region, stats)
	e.bytes = int64(seg.MemFootprint())
	restitch := sh.evicted.remove(ck)
	if restitch {
		sh.restitches++
	}
	if rt.Opts.Cache.ChurnStats {
		c := sh.churnLocked(region)
		c.Stitches++
		if restitch {
			c.Restitches++
		}
	}
	if e.gen != rt.gens[region].Load() || sh.entries[ck] != e {
		// The region was invalidated (or this key explicitly flushed)
		// while we were stitching: serve the waiters — they began before
		// the invalidation — but do not retain the segment.
		if sh.entries[ck] == e {
			delete(sh.entries, ck)
		}
		sh.mu.Unlock()
		return seg, stats, nil
	}
	rt.makeRoomLocked(sh, region, e.bytes)
	sh.publishLocked(rt, e)
	putGen := e.gen // snapshot under the lock; sibling sweeps may refresh it
	sh.mu.Unlock()

	// Publish back to the persistent tier asynchronously (post-fence: a
	// segment the invalidation branch above declined to retain is never
	// persisted either).
	rt.storePut(region, putGen, key, seg)

	rt.reclaim(region)
	return seg, stats, nil
}

// recordStats folds one private (unshared) stitch into the shard-local
// statistics for its (region, key).
func (rt *Runtime) recordStats(region int, key string, stats *stitcher.Stats) {
	sh := rt.shardFor(region, key)
	sh.mu.Lock()
	sh.addStatsLocked(region, stats)
	if rt.Opts.Cache.ChurnStats {
		sh.churnLocked(region).Stitches++
	}
	sh.mu.Unlock()
}

func (sh *shard) addStatsLocked(region int, st *stitcher.Stats) {
	for region >= len(sh.stats) {
		sh.stats = append(sh.stats, stitcher.Stats{})
	}
	s := &sh.stats[region]
	s.InstsStitched += st.InstsStitched
	s.HolesPatched += st.HolesPatched
	s.BranchesResolved += st.BranchesResolved
	s.LoopIterations += st.LoopIterations
	s.StrengthReductions += st.StrengthReductions
	s.LargeConsts += st.LargeConsts
	s.LoadsPromoted += st.LoadsPromoted
	s.StoresPromoted += st.StoresPromoted
	s.CyclesModeled += st.CyclesModeled
}

// churnLocked returns the shard's churn slot for region, growing the
// histogram on demand.
func (sh *shard) churnLocked(region int) *RegionChurn {
	for region >= len(sh.churn) {
		sh.churn = append(sh.churn, RegionChurn{Region: len(sh.churn)})
	}
	return &sh.churn[region]
}

// Stats folds the per-shard stitcher statistics for region r across every
// stitch performed by any attached machine. (Per-shard accumulation keeps
// the stitch path off any runtime-global lock; folding happens only here,
// on the cold read path.)
func (rt *Runtime) Stats(r int) stitcher.Stats {
	var out stitcher.Stats
	for i := range rt.shards {
		sh := &rt.shards[i]
		sh.mu.Lock()
		if r < len(sh.stats) {
			s := &sh.stats[r]
			out.InstsStitched += s.InstsStitched
			out.HolesPatched += s.HolesPatched
			out.BranchesResolved += s.BranchesResolved
			out.LoopIterations += s.LoopIterations
			out.StrengthReductions += s.StrengthReductions
			out.LargeConsts += s.LargeConsts
			out.LoadsPromoted += s.LoadsPromoted
			out.StoresPromoted += s.StoresPromoted
			out.CyclesModeled += s.CyclesModeled
		}
		sh.mu.Unlock()
	}
	return out
}
