package rtr

import (
	"encoding/binary"
	"sync"

	"dyncc/internal/stitcher"
	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// DefaultShards is the shard count of the shared (level-1) stitch cache
// when CacheOptions.Shards is zero. 32 shards keep lock contention
// negligible for any realistic machine count while costing a few hundred
// bytes per runtime; the count is rounded up to a power of two so shard
// selection is a mask, not a modulo.
const DefaultShards = 32

// CacheOptions tune the runtime's two-level stitch cache.
type CacheOptions struct {
	// KeepStitched retains every stitched segment in Runtime.Stitched for
	// diagnostics (golden tests, disassembly dumps). Off by default: a
	// long-running server would otherwise hold every segment it ever
	// stitched, even ones its machines have dropped.
	KeepStitched bool
	// Shards overrides the shared-cache shard count (0 = DefaultShards;
	// values are rounded up to a power of two).
	Shards int
	// NoShare disables the cross-machine shared cache: every machine
	// stitches its own segments, as if all regions were unshareable.
	// Stitch deduplication across goroutines is disabled with it.
	NoShare bool
}

// cacheKey identifies one specialization in the shared cache.
type cacheKey struct {
	region int
	key    string // binary-encoded key-register values
}

// entry is one shared-cache slot with a singleflight latch: the goroutine
// that creates the entry stitches; later arrivals block on done and read
// seg/err. Entries whose stitch failed are removed so a later attempt can
// retry (the error is still delivered to every waiter of that attempt).
type entry struct {
	done chan struct{}
	seg  *vm.Segment
	err  error
}

// shard is one lock domain of the shared cache. Stitcher statistics are
// accumulated per shard and folded on read so the stitch path never takes
// a runtime-global lock.
type shard struct {
	mu      sync.Mutex
	entries map[cacheKey]*entry
	stats   []stitcher.Stats // per region index
	hits    uint64           // cold lookups served by a completed entry
	waits   uint64           // stitches coalesced onto an in-flight entry
	misses  uint64           // lookups that found nothing
}

// CacheStats summarizes shared-cache behaviour across all shards.
type CacheStats struct {
	Stitches   uint64 // stitcher runs (singleflight winners + private stitches)
	SharedHits uint64 // lookups served by another machine's stitch
	Waits      uint64 // stitches coalesced onto an in-flight stitch
	Misses     uint64 // shared-cache lookups that found nothing
}

func numShards(opt int) int {
	n := opt
	if n <= 0 {
		n = DefaultShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// appendKey encodes the key-register values staged at DYNENTER into buf
// (varint-encoded, reusing buf's capacity). This replaces the seed's
// fmt.Sprintf key building, which allocated on every DYNENTER.
func appendKey(buf []byte, m *vm.Machine, r *tmpl.Region) []byte {
	for _, reg := range r.KeyRegs {
		buf = binary.AppendVarint(buf, m.Regs[reg])
	}
	return buf
}

// shardFor picks the shard for (region, key) by FNV-1a over the region
// index and the encoded key bytes.
func (rt *Runtime) shardFor(region int, key string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(region)) * prime64
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime64
	}
	return &rt.shards[h&uint64(len(rt.shards)-1)]
}

// lookupShared returns the completed segment for (region, key), or nil.
// In-flight entries are not waited on here: DYNENTER falls through into
// set-up instead, and the wait happens at stitch time where the in-flight
// window is pure host code (see stitchShared).
func (rt *Runtime) lookupShared(region int, key string) *vm.Segment {
	sh := rt.shardFor(region, key)
	ck := cacheKey{region: region, key: key}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[ck]; ok {
		select {
		case <-e.done:
			if e.err == nil {
				sh.hits++
				return e.seg
			}
		default:
		}
	}
	sh.misses++
	return nil
}

// stitchShared produces the segment for (region, key) with singleflight:
// exactly one goroutine runs the stitcher against its own machine's table;
// everyone else blocks until it publishes. The window between claim and
// publish contains only host-side stitching (no VM execution), so waiters
// cannot be abandoned. Returns the segment, the stitch statistics if this
// call was the winner (nil for waiters — the winner's machine already
// accounted the modeled cost), and any stitch error.
func (rt *Runtime) stitchShared(m *vm.Machine, region int, key string,
	tbl int64) (*vm.Segment, *stitcher.Stats, error) {

	r := rt.Regions[region]
	sh := rt.shardFor(region, key)
	ck := cacheKey{region: region, key: key}

	sh.mu.Lock()
	if e, ok := sh.entries[ck]; ok {
		sh.waits++
		sh.mu.Unlock()
		<-e.done
		// A failed stitch is deterministic for a shareable region (the
		// output depends only on the key), so propagate the winner's error
		// rather than re-running a stitch that would fail identically.
		return e.seg, nil, e.err
	}
	e := &entry{done: make(chan struct{})}
	sh.entries[ck] = e
	sh.mu.Unlock()

	seg, stats, err := stitcher.Stitch(r, m.Mem, tbl, m.Prog.Segs[r.FuncID], rt.Opts.Stitcher)
	e.seg, e.err = seg, err
	close(e.done)

	sh.mu.Lock()
	if err != nil {
		delete(sh.entries, ck)
	} else {
		sh.addStatsLocked(region, stats)
	}
	sh.mu.Unlock()
	return seg, stats, err
}

// recordStats folds one private (unshared) stitch into the shard-local
// statistics for its (region, key).
func (rt *Runtime) recordStats(region int, key string, stats *stitcher.Stats) {
	sh := rt.shardFor(region, key)
	sh.mu.Lock()
	sh.addStatsLocked(region, stats)
	sh.mu.Unlock()
}

func (sh *shard) addStatsLocked(region int, st *stitcher.Stats) {
	for region >= len(sh.stats) {
		sh.stats = append(sh.stats, stitcher.Stats{})
	}
	s := &sh.stats[region]
	s.InstsStitched += st.InstsStitched
	s.HolesPatched += st.HolesPatched
	s.BranchesResolved += st.BranchesResolved
	s.LoopIterations += st.LoopIterations
	s.StrengthReductions += st.StrengthReductions
	s.LargeConsts += st.LargeConsts
	s.LoadsPromoted += st.LoadsPromoted
	s.StoresPromoted += st.StoresPromoted
	s.CyclesModeled += st.CyclesModeled
}

// Stats folds the per-shard stitcher statistics for region r across every
// stitch performed by any attached machine. (Per-shard accumulation keeps
// the stitch path off any runtime-global lock; folding happens only here,
// on the cold read path.)
func (rt *Runtime) Stats(r int) stitcher.Stats {
	var out stitcher.Stats
	for i := range rt.shards {
		sh := &rt.shards[i]
		sh.mu.Lock()
		if r < len(sh.stats) {
			s := &sh.stats[r]
			out.InstsStitched += s.InstsStitched
			out.HolesPatched += s.HolesPatched
			out.BranchesResolved += s.BranchesResolved
			out.LoopIterations += s.LoopIterations
			out.StrengthReductions += s.StrengthReductions
			out.LargeConsts += s.LargeConsts
			out.LoadsPromoted += s.LoadsPromoted
			out.StoresPromoted += s.StoresPromoted
			out.CyclesModeled += s.CyclesModeled
		}
		sh.mu.Unlock()
	}
	return out
}

// CacheStats folds the shared-cache counters across shards.
func (rt *Runtime) CacheStats() CacheStats {
	var cs CacheStats
	for i := range rt.shards {
		sh := &rt.shards[i]
		sh.mu.Lock()
		cs.SharedHits += sh.hits
		cs.Waits += sh.waits
		cs.Misses += sh.misses
		for _, e := range sh.entries {
			select {
			case <-e.done:
				if e.err == nil {
					cs.Stitches++
				}
			default:
			}
		}
		sh.mu.Unlock()
	}
	cs.Stitches += rt.privateStitches.Load()
	return cs
}
