// Stencil is the copy-and-patch lowering of a region's templates,
// precompiled at static-compile time by the `stencil` pipeline pass
// (internal/stencil). Where the plain stitcher re-interprets the
// directive structure on every stitch — rebuilding per-block hole maps
// per unrolled iteration, re-deriving loop chains, formatting string memo
// keys — a stencil flattens all of that into arrays the stitcher's fast
// path can consume with a memcpy and a patch loop:
//
//   - Body is the block's template code verbatim; Patches is a flat,
//     Pc-sorted table of (offset, kind, slot) holes, so instantiation
//     copies the runs between holes with copy() and dispatches each hole
//     on its precomputed PatchKind;
//   - Term is the terminator with one EdgePlan per successor: the loop
//     record transitions (which loops to enter, in which order, and which
//     record links to advance) are resolved per edge at build time instead
//     of being re-derived from the loop chains per emission;
//   - Chain is the block's enclosing-loop id set in ascending order, the
//     integer-coded memoization key layout (block id followed by the
//     active record of each chain loop) that replaces the stitcher's old
//     fmt-built string keys.
//
// The stitcher's interpretive path remains the semantic reference (and
// the `-disable-pass stencil` ablation baseline); a stencil stitch must
// produce byte-identical segments.
package tmpl

import "dyncc/internal/vm"

// PatchKind classifies how a stencil hole is filled. The kinds mirror the
// stitcher's patch dispatch so the fast path switches on a byte instead of
// re-classifying the instruction per emission.
type PatchKind uint8

// Patch kinds.
const (
	// PatchLDC: the hole instruction is an LDC; the value always goes
	// through the linearized large-constant table.
	PatchLDC PatchKind = iota
	// PatchLI: an LI materialization; patched in place when the value fits
	// the immediate field, else rewritten to an LDC.
	PatchLI
	// PatchALU: an immediate ALU operation; strength-reduced against the
	// actual value when profitable, patched in place when it fits, else
	// routed through the large-constant table and the register form.
	PatchALU
)

// Patch is one hole in a stencil block body: patch the instruction at
// Body[Pc] with the value of table slot (Loop, Slot).
type Patch struct {
	Pc   int32     // offset into the owning block's Body
	Kind PatchKind // emission strategy (see PatchKind)
	Loop int32     // integer-coded slot scope: -1 region table, else loop id
	Slot int32     // word offset within that scope
	Inst vm.Inst   // the template instruction being patched (prefetched)
	// RegOp is the precomputed register-register form of Inst.Op, used by
	// PatchALU when the value overflows the immediate field.
	RegOp vm.Op
}

// EnterStep loads the first iteration record of a loop being entered:
// record = table[(HdrLoop, HdrSlot)]. Steps are ordered outermost-first so
// a nested loop's header slot (which lives in its parent's record) resolves
// against the record loaded by the preceding step.
type EnterStep struct {
	Loop    int32 // loop whose record becomes active
	HdrLoop int32 // header slot scope: -1 region table, else enclosing loop id
	HdrSlot int32
}

// AdvanceStep follows a back edge: the loop's active record advances along
// its next-record link (the RESTART_LOOP directive).
type AdvanceStep struct {
	Loop     int32
	NextSlot int32 // offset of the next-record link within each record
}

// EdgePlan is one precompiled successor edge: either a region exit (an
// XFER stub into the parent segment) or a template block together with the
// loop record transitions the edge performs.
type EdgePlan struct {
	Block   int32 // target stencil block, or -1 for a region exit
	ExitPC  int32 // pc in the function segment when Block < 0
	Enter   []EnterStep
	Advance []AdvanceStep
}

// StencilTerm is a precompiled block terminator.
type StencilTerm struct {
	Kind      TermKind
	CondReg   vm.Reg // TermBr on a run-time (non-constant) predicate
	HasConst  bool   // TermBr/TermSwitch resolved at stitch time
	ConstLoop int32  // integer-coded slot of the resolving constant
	ConstSlot int32
	Cases     []int64    // TermSwitch case values
	Edges     []EdgePlan // same layout as Term.Succs
}

// StencilBlock is one precompiled template block.
type StencilBlock struct {
	Body    []vm.Inst // template code verbatim (hole slots still unpatched)
	Patches []Patch   // sorted by Pc, at most one per Pc
	Term    StencilTerm
	// Chain lists the block's enclosing unrolled-loop ids in ascending
	// order: the memo key for one emission of the block is the block id
	// followed by the active record address of each chain loop.
	Chain []int32
}

// Stencil is the precompiled copy-and-patch form of a region's templates.
type Stencil struct {
	Blocks []StencilBlock
	Entry  int32
	// NumLoopSlots is 1 + the region's maximum loop id: the length of the
	// dense record-context windows the stitcher allocates per transition.
	NumLoopSlots int
}
