package tmpl

import (
	"strings"
	"testing"

	"dyncc/internal/vm"
)

func TestSlotRefString(t *testing.T) {
	if got := (SlotRef{LoopID: -1, Slot: 3}).String(); got != "3" {
		t.Errorf("region slot: %q", got)
	}
	if got := (SlotRef{LoopID: 4, Slot: 1}).String(); got != "4:1" {
		t.Errorf("loop slot: %q (want the paper's 4:1 notation)", got)
	}
}

func sampleRegion() *Region {
	return &Region{
		Index: 0, Name: "f:r0", TableSize: 5,
		Blocks: []*Block{
			{
				Code:   []vm.Inst{{Op: vm.UDIVI, Rd: 12, Rs: 13}},
				Holes:  []Hole{{Pc: 0, Slot: SlotRef{LoopID: -1, Slot: 2}}},
				Term:   Term{Kind: TermJump, Succs: []Edge{{Block: 1}}},
				LoopID: -1,
			},
			{ // loop head
				Term: Term{Kind: TermBr, ConstSlot: &SlotRef{LoopID: 0, Slot: 0},
					Succs: []Edge{{Block: 2}, {Block: 3}}},
				LoopID: 0,
			},
			{ // latch
				Code:   []vm.Inst{{Op: vm.ADDI, Rd: 12, Rs: 12, Imm: 1}},
				Term:   Term{Kind: TermJump, Succs: []Edge{{Block: 1}}},
				LoopID: 0,
			},
			{
				Term:   Term{Kind: TermRet},
				LoopID: -1,
			},
		},
		Loops: []*Loop{{
			ID: 0, ParentID: -1,
			HeaderSlot: SlotRef{LoopID: -1, Slot: 4},
			NextSlot:   2, RecordSize: 3,
			HeadBlock: 1, LatchBlock: 2,
		}},
		Entry: 0,
	}
}

func TestDirectivesVocabulary(t *testing.T) {
	r := sampleRegion()
	ds := strings.Join(r.Directives(), "\n")
	for _, kw := range []string{"START(", "END", "HOLE(", "CONST_BRANCH(",
		"ENTER_LOOP(", "RESTART_LOOP(", "LABEL(", "RETURN("} {
		if !strings.Contains(ds, kw) {
			t.Errorf("directives missing %s:\n%s", kw, ds)
		}
	}
	// The hole must render with its table index.
	if !strings.Contains(ds, "HOLE(b0+0, 2)") {
		t.Errorf("hole rendering:\n%s", ds)
	}
	// The constant branch must carry the paper's loop:slot notation.
	if !strings.Contains(ds, "CONST_BRANCH(b1, 0:0)") {
		t.Errorf("const branch rendering:\n%s", ds)
	}
}

func TestTemplateInsts(t *testing.T) {
	r := sampleRegion()
	// 2 body instructions + 4 terminators.
	if got := r.TemplateInsts(); got != 6 {
		t.Errorf("TemplateInsts: %d", got)
	}
}

func TestDumpIsStable(t *testing.T) {
	r := sampleRegion()
	a, b := r.Dump(), r.Dump()
	if a != b {
		t.Error("Dump is not deterministic")
	}
	if !strings.Contains(a, "table 5 words") {
		t.Errorf("dump header: %s", a[:60])
	}
}
