// Package tmpl defines the artifacts the static compiler hands to the
// dynamic compiler (the stitcher): pre-compiled machine-code templates with
// holes, the stitcher directives describing them (paper Table 1), and the
// layout of the run-time constants table.
package tmpl

import (
	"fmt"
	"strings"

	"dyncc/internal/vm"
)

// SlotRef names a run-time constants table slot. LoopID -1 is the region
// table; otherwise the current iteration record of that unrolled loop.
type SlotRef struct {
	LoopID int
	Slot   int
}

// String renders the slot in the paper's "4:1"-style notation.
func (s SlotRef) String() string {
	if s.LoopID < 0 {
		return fmt.Sprintf("%d", s.Slot)
	}
	return fmt.Sprintf("%d:%d", s.LoopID, s.Slot)
}

// Hole marks an instruction operand to be patched with a run-time constant.
type Hole struct {
	Pc    int // index into the owning block's Code
	Slot  SlotRef
	Float bool // value is floating point (always placed in the large-constant table)
}

// TermKind classifies template-block terminators.
type TermKind int

// Terminator kinds.
const (
	TermJump   TermKind = iota
	TermBr              // two-way branch
	TermSwitch          // n-way constant switch (non-constant switches are
	// lowered to branch chains before code generation)
	TermRet
)

// Edge is a template-block successor: another template block, or an exit
// from the region into the enclosing function's code.
type Edge struct {
	Block  int // template block index, or -1 for a region exit
	ExitPC int // pc in the function segment when Block == -1
}

// Term describes a template block's terminator.
type Term struct {
	Kind      TermKind
	CondReg   vm.Reg   // TermBr with run-time (non-constant) predicate
	ConstSlot *SlotRef // TermBr/TermSwitch on a run-time constant (CONST_BRANCH)
	Cases     []int64  // TermSwitch case values
	Succs     []Edge   // Br: [then, else]; Switch: cases + default; Jump: [next]
}

// Block is one machine-code template basic block.
type Block struct {
	IRID   int // originating IR block id (diagnostics)
	Code   []vm.Inst
	Holes  []Hole
	Term   Term
	LoopID int // innermost unrolled loop containing the block, or -1
}

// Loop describes an unrolled loop's table linkage.
type Loop struct {
	ID         int
	ParentID   int     // enclosing unrolled loop, or -1
	HeaderSlot SlotRef // slot (in parent scope) holding the first record
	NextSlot   int     // slot of the next-record link within each record
	RecordSize int
	HeadBlock  int // template block index of the loop head
	LatchBlock int // template block index holding the back edge
}

// Stats records the optimizations the splitter planned for this region
// (Table 3 columns resolved at stitch time are counted by the stitcher).
type Stats struct {
	ConstOpsFolded  int
	LoadsEliminated int
	ConstBranches   int
	LoopsUnrolled   int
	Holes           int
}

// Region is everything the stitcher needs for one dynamic region.
type Region struct {
	Index     int // global region index (DYNENTER immediate)
	Name      string
	FuncID    int
	TableSize int
	KeyRegs   []vm.Reg // registers holding key values at DYNENTER
	Entry     int      // template block index entered from the region head
	Blocks    []*Block
	Loops     []*Loop
	Stats     Stats

	// Shareable marks regions whose stitched code is a pure function of
	// the key-register values: the static compiler proved that the set-up
	// code computes the run-time constants table from the key values alone
	// (no loads from machine memory, no calls beyond the builder's table
	// allocations, no frame addresses). Two machines presenting the same
	// key bytes would stitch bit-identical segments, so the runtime may
	// hand one machine's stitched segment to another (the cross-machine
	// shared cache). Regions that read machine memory during set-up are
	// never shared: their tables alias per-machine data.
	Shareable bool

	// Stencil is the region's precompiled copy-and-patch form, attached by
	// the `stencil` pipeline pass (see stencil.go). Nil when the pass is
	// disabled or precompilation declined the region; the stitcher then
	// falls back to interpreting the template structure directly.
	Stencil *Stencil

	// Auto marks regions synthesized by the autoregion pass. The runtime
	// profiles such regions before stitching them, wraps their stitched
	// code in GUARD instructions, and deoptimizes to DeoptPC — the pc of
	// the region's set-up entry in the containing function segment — when
	// a speculated key changes.
	Auto    bool
	DeoptPC int
}

// TemplateInsts returns the total template instruction count.
func (r *Region) TemplateInsts() int {
	n := 0
	for _, b := range r.Blocks {
		n += len(b.Code) + 1 // +1 for the terminator
	}
	return n
}

// Directives renders the region's stitcher directives in the paper's
// Table 1 vocabulary (START, HOLE, CONST_BRANCH, ENTER_LOOP, EXIT_LOOP,
// RESTART_LOOP, BRANCH, LABEL, END). The listing is equivalent to the
// structured metadata the stitcher actually interprets.
func (r *Region) Directives() []string {
	var ds []string
	add := func(format string, args ...any) { ds = append(ds, fmt.Sprintf(format, args...)) }
	add("START(b%d)", r.Entry)
	headOf := map[int]*Loop{}
	latchOf := map[int]*Loop{}
	for _, l := range r.Loops {
		headOf[l.HeadBlock] = l
		latchOf[l.LatchBlock] = l
	}
	for bi, b := range r.Blocks {
		add("LABEL(b%d)", bi)
		if l, ok := headOf[bi]; ok {
			add("ENTER_LOOP(b%d, header=%s, next=%d)", bi, l.HeaderSlot, l.NextSlot)
		}
		for _, h := range b.Holes {
			add("HOLE(b%d+%d, %s)", bi, h.Pc, h.Slot)
		}
		switch b.Term.Kind {
		case TermJump:
			if l, ok := latchOf[bi]; ok {
				add("RESTART_LOOP(b%d, loop=%d)", bi, l.ID)
			} else {
				add("BRANCH(b%d -> %s)", bi, edgeStr(b.Term.Succs[0]))
			}
		case TermBr:
			if b.Term.ConstSlot != nil {
				add("CONST_BRANCH(b%d, %s)", bi, *b.Term.ConstSlot)
			} else {
				add("BRANCH(b%d -> %s | %s)", bi, edgeStr(b.Term.Succs[0]), edgeStr(b.Term.Succs[1]))
			}
		case TermSwitch:
			add("CONST_BRANCH(b%d, %s, %d-way)", bi, *b.Term.ConstSlot, len(b.Term.Succs))
		case TermRet:
			add("RETURN(b%d)", bi)
		}
		for _, e := range b.Term.Succs {
			if e.Block < 0 {
				add("EXIT_LOOP/EXIT(b%d -> pc %d)", bi, e.ExitPC)
			}
		}
	}
	add("END")
	return ds
}

func edgeStr(e Edge) string {
	if e.Block < 0 {
		return fmt.Sprintf("exit@%d", e.ExitPC)
	}
	return fmt.Sprintf("b%d", e.Block)
}

// Dump renders blocks, holes and directives for debugging and golden tests.
func (r *Region) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "region %s (table %d words)\n", r.Name, r.TableSize)
	for bi, b := range r.Blocks {
		fmt.Fprintf(&sb, "tb%d (ir b%d, loop %d):\n", bi, b.IRID, b.LoopID)
		for pc, in := range b.Code {
			hole := ""
			for _, h := range b.Holes {
				if h.Pc == pc {
					hole = fmt.Sprintf("   ; hole %s", h.Slot)
				}
			}
			fmt.Fprintf(&sb, "  %3d: %s%s\n", pc, in, hole)
		}
		fmt.Fprintf(&sb, "  term: %v\n", b.Term)
	}
	for _, d := range r.Directives() {
		fmt.Fprintf(&sb, "  %s\n", d)
	}
	return sb.String()
}
