// Content-addressed persistence for encoded segments: the pluggable Store
// interface the runtime's level-0 cache tier is built on, a directory-
// backed implementation for warm restarts on one host, and an in-memory
// implementation for tests.
//
// A store is a dumb byte oracle: it maps digests to opaque blobs and
// knows nothing about segments, generations or invalidation. All cache
// semantics (what a digest covers, when an entry is orphaned) live in the
// digest derivation on the runtime side, so alternative stores — an
// mmap'd arena, a networked blob service shared by a fleet — only have to
// implement these three methods.
package segio

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Digest is a content address: SHA-256 over whatever identity the caller
// chose to hash (the runtime hashes template fingerprint, region
// generation, key tuple and encoding version — see rtr/store.go).
type Digest [sha256.Size]byte

// String renders the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Store is a content-addressed blob store keyed by Digest. Implementations
// must be safe for concurrent use by multiple goroutines.
//
// Get returns (nil, nil) when the digest is absent — absence is an
// expected outcome, not an error. Put must be atomic with respect to
// concurrent Gets of the same digest: a reader sees either nothing or the
// complete blob, never a torn prefix. Because entries are content-
// addressed, double-Puts of the same digest are idempotent and racing
// writers may both "win" harmlessly. Delete of an absent digest is a
// no-op.
type Store interface {
	Get(d Digest) ([]byte, error)
	Put(d Digest, data []byte) error
	Delete(d Digest) error
}

// DirStore is an on-disk Store: one file per digest under a root
// directory, fanned out by the first hex byte (root/ab/cdef...01.seg) so
// no single directory grows unboundedly. Writes go to a temp file in the
// root and are renamed into place, so concurrent readers — including
// other processes sharing the directory — never observe a partial entry
// (rename is atomic on POSIX filesystems).
type DirStore struct {
	root string
}

// OpenDir opens (creating if needed) a directory-backed store rooted at
// path.
func OpenDir(path string) (*DirStore, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("segio: open store: %w", err)
	}
	return &DirStore{root: path}, nil
}

// Root returns the store's root directory.
func (s *DirStore) Root() string { return s.root }

func (s *DirStore) path(d Digest) string {
	h := d.String()
	return filepath.Join(s.root, h[:2], h[2:]+".seg")
}

// Get reads the blob for d, or (nil, nil) if absent.
func (s *DirStore) Get(d Digest) ([]byte, error) {
	data, err := os.ReadFile(s.path(d))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("segio: store get %s: %w", d, err)
	}
	return data, nil
}

// Put atomically writes the blob for d (temp file + rename).
func (s *DirStore) Put(d Digest, data []byte) error {
	dst := s.path(d)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("segio: store put %s: %w", d, err)
	}
	tmp, err := os.CreateTemp(s.root, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("segio: store put %s: %w", d, err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("segio: store put %s: %w", d, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("segio: store put %s: %w", d, err)
	}
	if err := os.Rename(name, dst); err != nil {
		os.Remove(name)
		return fmt.Errorf("segio: store put %s: %w", d, err)
	}
	return nil
}

// Delete removes the blob for d; absent digests are a no-op.
func (s *DirStore) Delete(d Digest) error {
	err := os.Remove(s.path(d))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("segio: store delete %s: %w", d, err)
	}
	return nil
}

// Len reports how many entries the store holds (diagnostics and tests;
// counted by walking the fan-out directories).
func (s *DirStore) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.root, func(path string, de os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !de.IsDir() && filepath.Ext(path) == ".seg" {
			n++
		}
		return nil
	})
	return n, err
}

// MemStore is an in-memory Store for tests and benchmarks: a mutex-guarded
// map with copy-on-put/copy-on-get semantics so callers can't alias the
// stored blobs.
type MemStore struct {
	mu sync.Mutex
	m  map[Digest][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: map[Digest][]byte{}} }

// Get returns a copy of the blob for d, or (nil, nil) if absent.
func (s *MemStore) Get(d Digest) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[d]
	if !ok {
		return nil, nil
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Put stores a copy of data under d.
func (s *MemStore) Put(d Digest, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[d] = cp
	return nil
}

// Delete removes d.
func (s *MemStore) Delete(d Digest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, d)
	return nil
}

// Len reports how many entries the store holds.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
