package segio_test

import (
	"bytes"
	"testing"

	"dyncc/internal/core"
	"dyncc/internal/segio"
	"dyncc/internal/vm"
)

// fuzzSeedSource is a small keyed-shareable program whose stitched segment
// seeds the corpus with a real emission (jump-table-free but with consts,
// fused ops and region attribution as the stitcher actually produces them).
const fuzzSeedSource = `
int poly(int a, int b, int x) {
    int r;
    dynamicRegion key(a, b) () {
        r = a * x + b;
    }
    return r;
}`

// FuzzDecode drives Decode with arbitrary bytes. Three properties:
//
//  1. Decode never panics, whatever the input.
//  2. If Decode succeeds, re-encoding the result is a fixpoint:
//     Decode(Encode(seg)) succeeds and Encode of that is byte-identical.
//     (For inputs Encode itself produced this means full round-trip
//     identity; a fuzzer-crafted non-canonical input may re-encode
//     differently once, but the canonical form must then be stable.)
//  3. Corrupt inputs fail with ErrCorrupt/ErrVersion-wrapped errors, never
//     a silent zero segment — checked implicitly: any successful decode
//     must satisfy (2).
func FuzzDecode(f *testing.F) {
	for _, seg := range corpusSegments(f) {
		enc := segio.Encode(seg)
		f.Add(enc)
		// Truncations, bit flips and a version bump seed the interesting
		// failure shapes so the fuzzer starts near the cliffs.
		f.Add(enc[:len(enc)/2])
		flipped := append([]byte{}, enc...)
		flipped[len(flipped)/2] ^= 0x10
		f.Add(flipped)
		bumped := append([]byte{}, enc...)
		bumped[4] = segio.Version + 1
		f.Add(bumped)
	}
	f.Add([]byte{})
	f.Add([]byte("dseg"))

	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := segio.Decode(data)
		if err != nil {
			return
		}
		enc := segio.Encode(seg)
		seg2, err := segio.Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !bytes.Equal(segio.Encode(seg2), enc) {
			t.Fatal("canonical encoding is not a re-encode fixpoint")
		}
	})
}

func corpusSegments(f *testing.F) []*vm.Segment {
	f.Helper()
	segs := []*vm.Segment{fullSegment(), minSegment()}
	cfg := core.Config{Dynamic: true, Optimize: true}
	cfg.Cache.KeepStitched = true
	p, err := core.Compile(fuzzSeedSource, cfg)
	if err != nil {
		f.Fatalf("corpus compile: %v", err)
	}
	defer p.Runtime.Close()
	m := p.NewMachine(0)
	if _, err := m.Call("poly", 3, 5, 7); err != nil {
		f.Fatalf("corpus run: %v", err)
	}
	for _, kept := range p.Runtime.Stitched {
		segs = append(segs, kept...)
	}
	return segs
}
