// Package segio serializes stitched vm.Segments into a stable, versioned
// binary form so they can live outside the process that stitched them —
// the substrate of the persistent (level-0) code cache tier.
//
// A shareable region's stitched segment is a pure function of (template
// bytes, key bytes): the same templates and the same key tuple always
// stitch bit-identical code. That makes segments content-addressable — a
// digest over (template fingerprint, generation, key tuple, encoding
// version) names the segment forever, and any process holding the same
// program can adopt the bytes instead of re-stitching (see
// internal/rtr/store.go for the runtime wiring and DESIGN.md "Persistent
// cache tier").
//
// # Encoding
//
// The format is deliberately boring: a 4-byte magic, a uvarint format
// version, a varint-packed payload covering every semantically meaningful
// Segment field (code, constant pool, jump tables, region attribution
// maps), and a trailing FNV-1a checksum of the payload so torn or
// bit-rotted store files are detected before they decode into garbage.
// The lazily derived execution plan is NOT encoded — it is a pure
// function of the segment and is rebuilt on load (Decode calls Prepare).
// The Parent pointer is likewise excluded: it names a function segment of
// the loading process's program and is re-linked by the runtime.
//
// Version discipline: any change to the Inst layout, the opcode
// numbering, or this encoding MUST bump Version. The digest derivation
// includes Version, so old store entries are orphaned (never misread) by
// an upgrade.
package segio

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dyncc/internal/vm"
)

// Version is the encoding format version. Bump on any change to the wire
// layout, vm.Inst's fields, or opcode numbering.
//
// v2: the GUARD opcode was appended to the instruction set (speculative
// promotion, rtr/promote.go). Existing opcode numbers are unchanged, but a
// v1 store could hold pre-guard stitches of what is now an Auto region, so
// v1 entries are orphaned wholesale per the discipline above.
const Version = 2

// magic identifies a segio-encoded segment file.
var magic = [4]byte{'d', 's', 'e', 'g'}

// ErrCorrupt is wrapped by every Decode failure caused by malformed input
// (bad magic, checksum mismatch, truncation, out-of-range counts).
var ErrCorrupt = errors.New("segio: corrupt segment encoding")

// ErrVersion is wrapped by Decode when the input is a well-formed segio
// file of an unsupported format version.
var ErrVersion = errors.New("segio: unsupported encoding version")

// fnv1a is the checksum over the payload bytes (FNV-1a 64).
func fnv1a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h = (h ^ uint64(c)) * prime64
	}
	return h
}

// Encode renders seg in the versioned wire format. The output is
// deterministic: two calls on equal segments yield equal bytes, and
// Encode(Decode(b)) == b for any b Encode produced — the byte-identity
// property the persistent cache tier rests on.
func Encode(seg *vm.Segment) []byte {
	var b []byte
	b = append(b, magic[:]...)
	b = binary.AppendUvarint(b, Version)
	payloadStart := len(b)

	b = appendString(b, seg.Name)
	b = binary.AppendVarint(b, int64(seg.Region))
	b = appendBool(b, seg.Stitched)
	b = binary.AppendVarint(b, int64(seg.FrameSize))
	b = binary.AppendVarint(b, int64(seg.NumParams))

	b = binary.AppendUvarint(b, uint64(len(seg.Code)))
	for _, in := range seg.Code {
		b = append(b, byte(in.Op), byte(in.Rd), byte(in.Rs), byte(in.Rt),
			byte(in.Sub), in.XCost, in.XInsts)
		b = binary.AppendVarint(b, in.Imm)
		b = binary.AppendVarint(b, int64(in.Target))
	}
	b = appendInt64s(b, seg.Consts)
	b = binary.AppendUvarint(b, uint64(len(seg.JumpTables)))
	for _, t := range seg.JumpTables {
		b = binary.AppendUvarint(b, uint64(len(t)))
		for _, v := range t {
			b = binary.AppendVarint(b, int64(v))
		}
	}
	b = binary.AppendUvarint(b, uint64(len(seg.RegionOf)))
	for _, v := range seg.RegionOf {
		b = binary.AppendVarint(b, int64(v))
	}
	b = binary.AppendUvarint(b, uint64(len(seg.SetupOf)))
	for _, v := range seg.SetupOf {
		b = appendBool(b, v)
	}
	b = binary.AppendUvarint(b, uint64(len(seg.RegionEntry)))
	for _, v := range seg.RegionEntry {
		b = binary.AppendVarint(b, int64(v))
	}

	var sum [8]byte
	binary.BigEndian.PutUint64(sum[:], fnv1a(b[payloadStart:]))
	return append(b, sum[:]...)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendInt64s(b []byte, vs []int64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.AppendVarint(b, v)
	}
	return b
}

// decoder is a bounds-checked reader over the payload. Every read error
// sets err once; subsequent reads are no-ops, so parse code stays linear.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b) {
		d.fail("truncated: want %d bytes, have %d", n, len(d.b))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *decoder) bool() bool {
	b := d.bytes(1)
	if d.err != nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	}
	d.fail("bad bool byte %d", b[0])
	return false
}

// count reads a list length and sanity-checks it against the remaining
// payload (each element consumes at least min bytes), so a fuzzed length
// can never drive a giant allocation.
func (d *decoder) count(min int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64(len(d.b)/min)+1 {
		d.fail("count %d exceeds remaining payload (%d bytes)", n, len(d.b))
		return 0
	}
	return int(n)
}

// Decode parses a segio-encoded segment. It never panics on malformed
// input: truncated, bit-flipped or wrong-version bytes yield an error
// wrapping ErrCorrupt or ErrVersion. The returned segment's execution
// plan is rebuilt (Prepare); Parent is nil and must be re-linked by the
// caller before the segment can XFER back into its function.
func Decode(data []byte) (*vm.Segment, error) {
	if len(data) < len(magic)+1+8 {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrCorrupt, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	rest := data[4:]
	ver, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("%w: truncated version", ErrCorrupt)
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: got v%d, support v%d", ErrVersion, ver, Version)
	}
	payload := rest[n : len(rest)-8]
	want := binary.BigEndian.Uint64(rest[len(rest)-8:])
	if got := fnv1a(payload); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (%#x != %#x)", ErrCorrupt, got, want)
	}

	d := &decoder{b: payload}
	seg := &vm.Segment{}
	seg.Name = string(d.bytes(d.count(1)))
	seg.Region = int(d.varint())
	seg.Stitched = d.bool()
	seg.FrameSize = int(d.varint())
	seg.NumParams = int(d.varint())

	if n := d.count(9); n > 0 {
		seg.Code = make([]vm.Inst, n)
		for i := range seg.Code {
			hdr := d.bytes(7)
			if d.err != nil {
				break
			}
			in := &seg.Code[i]
			in.Op = vm.Op(hdr[0])
			in.Rd, in.Rs, in.Rt = vm.Reg(hdr[1]), vm.Reg(hdr[2]), vm.Reg(hdr[3])
			in.Sub = vm.Op(hdr[4])
			in.XCost, in.XInsts = hdr[5], hdr[6]
			in.Imm = d.varint()
			in.Target = int(d.varint())
		}
	}
	if n := d.count(1); n > 0 {
		seg.Consts = make([]int64, n)
		for i := range seg.Consts {
			seg.Consts[i] = d.varint()
		}
	}
	if n := d.count(1); n > 0 {
		seg.JumpTables = make([][]int, n)
		for i := range seg.JumpTables {
			m := d.count(1)
			if d.err != nil {
				break
			}
			t := make([]int, m)
			for j := range t {
				t[j] = int(d.varint())
			}
			seg.JumpTables[i] = t
		}
	}
	if n := d.count(1); n > 0 {
		seg.RegionOf = make([]int16, n)
		for i := range seg.RegionOf {
			seg.RegionOf[i] = int16(d.varint())
		}
	}
	if n := d.count(1); n > 0 {
		seg.SetupOf = make([]bool, n)
		for i := range seg.SetupOf {
			seg.SetupOf[i] = d.bool()
		}
	}
	if n := d.count(1); n > 0 {
		seg.RegionEntry = make([]int32, n)
		for i := range seg.RegionEntry {
			seg.RegionEntry[i] = int32(d.varint())
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.b))
	}
	seg.Prepare()
	return seg, nil
}
