package segio_test

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"

	"dyncc/internal/segio"
)

func digestOf(s string) segio.Digest { return sha256.Sum256([]byte(s)) }

// storeContract runs the behavior every Store implementation must share.
func storeContract(t *testing.T, s segio.Store) {
	t.Helper()
	d := digestOf("alpha")
	if got, err := s.Get(d); err != nil || got != nil {
		t.Fatalf("Get on empty store: (%v, %v), want (nil, nil)", got, err)
	}
	blob := []byte("stitched bytes")
	if err := s.Put(d, blob); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get(d)
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("Get after Put: (%q, %v)", got, err)
	}
	// Content-addressed double-Put is idempotent.
	if err := s.Put(d, blob); err != nil {
		t.Fatalf("double Put: %v", err)
	}
	other := digestOf("beta")
	if got, err := s.Get(other); err != nil || got != nil {
		t.Fatalf("Get of absent sibling digest: (%v, %v)", got, err)
	}
	if err := s.Delete(d); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if got, err := s.Get(d); err != nil || got != nil {
		t.Fatalf("Get after Delete: (%v, %v)", got, err)
	}
	if err := s.Delete(d); err != nil {
		t.Fatalf("Delete of absent digest must be a no-op, got %v", err)
	}
}

func TestMemStore(t *testing.T) {
	s := segio.NewMemStore()
	storeContract(t, s)
	// Returned and stored blobs must not alias caller memory.
	d := digestOf("gamma")
	blob := []byte{1, 2, 3}
	if err := s.Put(d, blob); err != nil {
		t.Fatal(err)
	}
	blob[0] = 99
	got, _ := s.Get(d)
	if got[0] != 1 {
		t.Fatal("Put aliased the caller's slice")
	}
	got[1] = 99
	again, _ := s.Get(d)
	if again[1] != 2 {
		t.Fatal("Get aliased the stored slice")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestDirStore(t *testing.T) {
	s, err := segio.OpenDir(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, s)

	d1, d2 := digestOf("one"), digestOf("two")
	if err := s.Put(d1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(d2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Len(); err != nil || n != 2 {
		t.Fatalf("Len = (%d, %v), want 2", n, err)
	}
	// No stray temp files survive a completed Put.
	ents, err := os.ReadDir(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			t.Fatalf("unexpected non-directory %q in store root", e.Name())
		}
	}

	// Reopening the same directory sees the persisted entries — the whole
	// point of the tier.
	re, err := segio.OpenDir(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Get(d1)
	if err != nil || !bytes.Equal(got, []byte("a")) {
		t.Fatalf("reopened Get: (%q, %v)", got, err)
	}
}

func TestDirStoreSegmentRoundTrip(t *testing.T) {
	s, err := segio.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seg := fullSegment()
	enc := segio.Encode(seg)
	d := sha256.Sum256(enc)
	if err := s.Put(d, enc); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := segio.Decode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(segio.Encode(dec), enc) {
		t.Fatal("segment round-tripped through DirStore is not byte-identical")
	}
}
