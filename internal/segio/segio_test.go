// Tests live in segio_test so the fuzz harness can build its corpus with
// internal/core (which depends on rtr, which depends on segio).
package segio_test

import (
	"bytes"
	"errors"
	"testing"

	"dyncc/internal/segio"
	"dyncc/internal/vm"
)

// fullSegment exercises every encoded field, including the optional
// region-attribution maps only merged-function segments carry.
func fullSegment() *vm.Segment {
	return &vm.Segment{
		Name:      "r0.stitched",
		Region:    3,
		Stitched:  true,
		FrameSize: 12,
		NumParams: 4,
		Code: []vm.Inst{
			{Op: vm.LI, Rd: 1, Imm: -77},
			{Op: vm.ADD, Rd: 2, Rs: 1, Rt: 3},
			{Op: vm.LDC, Rd: 4, Imm: 1},
			{Op: vm.CMPBR, Rd: 1, Rs: 2, Rt: 3, Sub: vm.SLT, Target: 5},
			{Op: vm.ADDI, Rd: 2, Rs: 2, Imm: 1 << 40, XCost: 3, XInsts: 2},
			{Op: vm.RET, Rs: 2},
		},
		Consts:      []int64{0, -1, 1 << 62, -(1 << 62)},
		JumpTables:  [][]int{{0, 3, 5}, {}, {2}},
		RegionOf:    []int16{-1, -1, 0, 0, 1, -1},
		SetupOf:     []bool{false, true, false, false, true, false},
		RegionEntry: []int32{2, 4},
	}
}

// minSegment is the degenerate case: everything empty or zero.
func minSegment() *vm.Segment {
	return &vm.Segment{Name: "", Region: -1}
}

func TestRoundTrip(t *testing.T) {
	for _, seg := range []*vm.Segment{fullSegment(), minSegment()} {
		enc := segio.Encode(seg)
		dec, err := segio.Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%q): %v", seg.Name, err)
		}
		if dec.Parent != nil {
			t.Fatalf("decoded %q carries a Parent", seg.Name)
		}
		if dec.Name != seg.Name || dec.Region != seg.Region ||
			dec.Stitched != seg.Stitched || dec.FrameSize != seg.FrameSize ||
			dec.NumParams != seg.NumParams {
			t.Fatalf("decoded %q scalar fields differ: %+v", seg.Name, dec)
		}
		// The strong property the store tier rests on: re-encoding the
		// decoded segment reproduces the input byte for byte.
		if !bytes.Equal(segio.Encode(dec), enc) {
			t.Fatalf("Encode(Decode(enc)) != enc for %q", seg.Name)
		}
	}
}

func TestRoundTripFields(t *testing.T) {
	seg := fullSegment()
	dec, err := segio.Decode(segio.Encode(seg))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Code) != len(seg.Code) {
		t.Fatalf("code length %d != %d", len(dec.Code), len(seg.Code))
	}
	for i := range seg.Code {
		if dec.Code[i] != seg.Code[i] {
			t.Fatalf("code[%d]: %+v != %+v", i, dec.Code[i], seg.Code[i])
		}
	}
	for i, v := range seg.Consts {
		if dec.Consts[i] != v {
			t.Fatalf("consts[%d]: %d != %d", i, dec.Consts[i], v)
		}
	}
	if len(dec.JumpTables) != len(seg.JumpTables) {
		t.Fatalf("jump tables %d != %d", len(dec.JumpTables), len(seg.JumpTables))
	}
	for i, tab := range seg.JumpTables {
		if len(dec.JumpTables[i]) != len(tab) {
			t.Fatalf("jump table %d length differs", i)
		}
		for j, v := range tab {
			if dec.JumpTables[i][j] != v {
				t.Fatalf("jump table %d[%d]: %d != %d", i, j, dec.JumpTables[i][j], v)
			}
		}
	}
	for i, v := range seg.RegionOf {
		if dec.RegionOf[i] != v {
			t.Fatalf("regionOf[%d]: %d != %d", i, dec.RegionOf[i], v)
		}
	}
	for i, v := range seg.SetupOf {
		if dec.SetupOf[i] != v {
			t.Fatalf("setupOf[%d]: %v != %v", i, dec.SetupOf[i], v)
		}
	}
	for i, v := range seg.RegionEntry {
		if dec.RegionEntry[i] != v {
			t.Fatalf("regionEntry[%d]: %d != %d", i, dec.RegionEntry[i], v)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, b := segio.Encode(fullSegment()), segio.Encode(fullSegment())
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of equal segments differ")
	}
}

func TestDecodeWrongVersion(t *testing.T) {
	enc := segio.Encode(minSegment())
	// Byte 4 is the (single-byte) version uvarint; the checksum covers only
	// the payload after it, so bumping the version keeps the file otherwise
	// well formed.
	enc[4] = segio.Version + 1
	_, err := segio.Decode(enc)
	if !errors.Is(err, segio.ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc := segio.Encode(fullSegment())
	for i := 0; i < len(enc); i++ {
		if _, err := segio.Decode(enc[:i]); err == nil {
			t.Fatalf("Decode accepted %d-byte truncation of %d-byte input", i, len(enc))
		}
	}
}

func TestDecodeBitFlips(t *testing.T) {
	enc := segio.Encode(fullSegment())
	buf := make([]byte, len(enc))
	for i := range enc {
		for bit := 0; bit < 8; bit++ {
			copy(buf, enc)
			buf[i] ^= 1 << bit
			if _, err := segio.Decode(buf); err == nil {
				t.Fatalf("Decode accepted flip of byte %d bit %d", i, bit)
			}
		}
	}
}

func TestDecodeTrailingPayload(t *testing.T) {
	seg := minSegment()
	enc := segio.Encode(seg)
	// Rebuild with one stray payload byte and a matching checksum: the
	// decoder must reject bytes no field accounts for, not skip them.
	payload := append([]byte{}, enc[5:len(enc)-8]...)
	payload = append(payload, 0)
	tampered := append([]byte{}, enc[:5]...)
	tampered = append(tampered, payload...)
	var sum [8]byte
	h := uint64(14695981039346656037)
	for _, c := range payload {
		h = (h ^ uint64(c)) * 1099511628211
	}
	for i := 0; i < 8; i++ {
		sum[i] = byte(h >> (56 - 8*i))
	}
	tampered = append(tampered, sum[:]...)
	if _, err := segio.Decode(tampered); !errors.Is(err, segio.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt on trailing payload, got %v", err)
	}
}

func TestDecodeGiantCount(t *testing.T) {
	// A count field claiming more elements than the payload could hold must
	// be rejected before any allocation sized from it.
	seg := minSegment()
	enc := segio.Encode(seg)
	payload := append([]byte{}, enc[5:len(enc)-8]...)
	// Name length 0 is the first payload byte; replace it with a huge
	// uvarint (2^40) and fix the checksum.
	huge := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x20}
	payload = append(huge, payload[1:]...)
	tampered := append([]byte{}, enc[:5]...)
	tampered = append(tampered, payload...)
	h := uint64(14695981039346656037)
	for _, c := range payload {
		h = (h ^ uint64(c)) * 1099511628211
	}
	var sum [8]byte
	for i := 0; i < 8; i++ {
		sum[i] = byte(h >> (56 - 8*i))
	}
	tampered = append(tampered, sum[:]...)
	if _, err := segio.Decode(tampered); !errors.Is(err, segio.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt on giant count, got %v", err)
	}
}

func TestDecodePrepares(t *testing.T) {
	dec, err := segio.Decode(segio.Encode(fullSegment()))
	if err != nil {
		t.Fatal(err)
	}
	// Prepare ran inside Decode; a second call must be a no-op and the
	// derived plan usable (MemFootprint walks the prepared shape).
	dec.Prepare()
	if dec.MemFootprint() <= 0 {
		t.Fatal("decoded segment reports no memory footprint")
	}
}
