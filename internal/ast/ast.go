// Package ast defines the abstract syntax tree for MiniC, including the
// paper's dynamic-compilation annotations (dynamicRegion, key, unrolled,
// dynamic dereference).
package ast

import (
	"dyncc/internal/token"
)

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------- types

// TypeExpr is a syntactic type: a base type plus pointer and array derivations.
type TypeExpr struct {
	P          token.Pos
	Base       token.Kind // KwInt, KwUnsigned, KwFloat, KwDouble, KwChar, KwVoid, KwStruct
	StructName string     // when Base == KwStruct
	Ptr        int        // number of '*'
	ArrayLens  []int      // outermost first; -1 for unsized []
}

// Pos returns the source position of the type expression.
func (t *TypeExpr) Pos() token.Pos { return t.P }

// ---------------------------------------------------------------- decls

// File is a parsed translation unit.
type File struct {
	Structs []*StructDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// StructDecl declares a struct type.
type StructDecl struct {
	P      token.Pos
	Name   string
	Fields []*Param
}

// Pos returns the declaration position.
func (d *StructDecl) Pos() token.Pos { return d.P }

// Param is a function parameter or struct field.
type Param struct {
	P    token.Pos
	Name string
	Type *TypeExpr
}

// Pos returns the parameter position.
func (p *Param) Pos() token.Pos { return p.P }

// VarDecl declares a variable (global or local).
type VarDecl struct {
	P    token.Pos
	Name string
	Type *TypeExpr
	Init Expr // may be nil
}

// Pos returns the declaration position.
func (d *VarDecl) Pos() token.Pos { return d.P }

// FuncDecl declares a function.
type FuncDecl struct {
	P      token.Pos
	Name   string
	Params []*Param
	Ret    *TypeExpr
	Body   *Block // nil for extern declarations
}

// Pos returns the declaration position.
func (d *FuncDecl) Pos() token.Pos { return d.P }

// ---------------------------------------------------------------- stmts

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// Block is a brace-enclosed statement list.
type Block struct {
	P     token.Pos
	Stmts []Stmt
}

// DeclStmt is a local variable declaration statement.
type DeclStmt struct {
	P     token.Pos
	Decls []*VarDecl
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	P token.Pos
	X Expr
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ P token.Pos }

// If is an if/else statement.
type If struct {
	P    token.Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a while loop.
type While struct {
	P    token.Pos
	Cond Expr
	Body Stmt
}

// DoWhile is a do/while loop.
type DoWhile struct {
	P    token.Pos
	Body Stmt
	Cond Expr
}

// For is a for loop; Unrolled marks the paper's `unrolled for` annotation.
type For struct {
	P        token.Pos
	Init     Stmt // DeclStmt or ExprStmt or nil
	Cond     Expr // may be nil
	Post     Expr // may be nil
	Body     Stmt
	Unrolled bool
}

// Switch is a C switch statement (cases may fall through).
type Switch struct {
	P    token.Pos
	Tag  Expr
	Body *Block // contains Case/Default labels interleaved with stmts
}

// Case labels a switch arm; Default when IsDefault is set.
type Case struct {
	P         token.Pos
	Value     Expr // constant expression; nil for default
	IsDefault bool
}

// Break exits the innermost loop or switch.
type Break struct{ P token.Pos }

// Continue continues the innermost loop.
type Continue struct{ P token.Pos }

// Goto jumps to a label.
type Goto struct {
	P     token.Pos
	Label string
}

// LabeledStmt attaches a label to a statement.
type LabeledStmt struct {
	P     token.Pos
	Label string
	Stmt  Stmt
}

// Return returns from the enclosing function.
type Return struct {
	P token.Pos
	X Expr // may be nil
}

// DynamicRegion is the paper's dynamicRegion annotation: the body is
// compiled dynamically, with Consts invariant at run time and Keys
// selecting among cached compiled versions.
type DynamicRegion struct {
	P      token.Pos
	Keys   []string // key(...) variables; also run-time constants
	Consts []string // run-time constant variables at region entry
	Body   *Block

	// Auto marks regions synthesized by the autoregion pass (speculative
	// promotion of unannotated code) rather than written by the programmer.
	// The runtime profiles them before stitching and wraps their stitched
	// code in guards that deoptimize when a speculated key changes.
	Auto bool
}

// Pos implementations.
func (s *Block) Pos() token.Pos         { return s.P }
func (s *DeclStmt) Pos() token.Pos      { return s.P }
func (s *ExprStmt) Pos() token.Pos      { return s.P }
func (s *EmptyStmt) Pos() token.Pos     { return s.P }
func (s *If) Pos() token.Pos            { return s.P }
func (s *While) Pos() token.Pos         { return s.P }
func (s *DoWhile) Pos() token.Pos       { return s.P }
func (s *For) Pos() token.Pos           { return s.P }
func (s *Switch) Pos() token.Pos        { return s.P }
func (s *Case) Pos() token.Pos          { return s.P }
func (s *Break) Pos() token.Pos         { return s.P }
func (s *Continue) Pos() token.Pos      { return s.P }
func (s *Goto) Pos() token.Pos          { return s.P }
func (s *LabeledStmt) Pos() token.Pos   { return s.P }
func (s *Return) Pos() token.Pos        { return s.P }
func (s *DynamicRegion) Pos() token.Pos { return s.P }

func (*Block) stmt()         {}
func (*DeclStmt) stmt()      {}
func (*ExprStmt) stmt()      {}
func (*EmptyStmt) stmt()     {}
func (*If) stmt()            {}
func (*While) stmt()         {}
func (*DoWhile) stmt()       {}
func (*For) stmt()           {}
func (*Switch) stmt()        {}
func (*Case) stmt()          {}
func (*Break) stmt()         {}
func (*Continue) stmt()      {}
func (*Goto) stmt()          {}
func (*LabeledStmt) stmt()   {}
func (*Return) stmt()        {}
func (*DynamicRegion) stmt() {}

// ---------------------------------------------------------------- exprs

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	expr()
}

// Ident is a variable or function reference.
type Ident struct {
	P    token.Pos
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	P   token.Pos
	Val int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	P   token.Pos
	Val float64
}

// StringLit is a string literal (used only as an argument to builtins).
type StringLit struct {
	P   token.Pos
	Val string
}

// Unary is a prefix unary expression: - ~ ! & * ++ --.
// For Op == token.STAR, Dynamic marks `dynamic*` (result is never a
// run-time constant even if the pointer is).
type Unary struct {
	P       token.Pos
	Op      token.Kind
	X       Expr
	Dynamic bool // only for STAR
}

// PostIncDec is x++ or x--.
type PostIncDec struct {
	P  token.Pos
	Op token.Kind // INC or DEC
	X  Expr
}

// Binary is a binary expression.
type Binary struct {
	P    token.Pos
	Op   token.Kind
	L, R Expr
}

// Assign is an assignment, possibly compound (Op is ASSIGN, ADDA, ...).
type Assign struct {
	P    token.Pos
	Op   token.Kind
	L, R Expr
}

// Cond is the ternary conditional.
type Cond struct {
	P       token.Pos
	C, T, F Expr
}

// Call is a function call.
type Call struct {
	P    token.Pos
	Fun  string
	Args []Expr
}

// Index is a[i]; Dynamic marks `a dynamic[i]`.
type Index struct {
	P       token.Pos
	X, I    Expr
	Dynamic bool
}

// Field is x.f or p->f; Dynamic marks `p dynamic->f`.
type Field struct {
	P       token.Pos
	X       Expr
	Name    string
	Arrow   bool
	Dynamic bool
}

// Cast is (type)x.
type Cast struct {
	P    token.Pos
	Type *TypeExpr
	X    Expr
}

// SizeofType is sizeof(type); value in words.
type SizeofType struct {
	P    token.Pos
	Type *TypeExpr
}

// Pos implementations.
func (e *Ident) Pos() token.Pos      { return e.P }
func (e *IntLit) Pos() token.Pos     { return e.P }
func (e *FloatLit) Pos() token.Pos   { return e.P }
func (e *StringLit) Pos() token.Pos  { return e.P }
func (e *Unary) Pos() token.Pos      { return e.P }
func (e *PostIncDec) Pos() token.Pos { return e.P }
func (e *Binary) Pos() token.Pos     { return e.P }
func (e *Assign) Pos() token.Pos     { return e.P }
func (e *Cond) Pos() token.Pos       { return e.P }
func (e *Call) Pos() token.Pos       { return e.P }
func (e *Index) Pos() token.Pos      { return e.P }
func (e *Field) Pos() token.Pos      { return e.P }
func (e *Cast) Pos() token.Pos       { return e.P }
func (e *SizeofType) Pos() token.Pos { return e.P }

func (*Ident) expr()      {}
func (*IntLit) expr()     {}
func (*FloatLit) expr()   {}
func (*StringLit) expr()  {}
func (*Unary) expr()      {}
func (*PostIncDec) expr() {}
func (*Binary) expr()     {}
func (*Assign) expr()     {}
func (*Cond) expr()       {}
func (*Call) expr()       {}
func (*Index) expr()      {}
func (*Field) expr()      {}
func (*Cast) expr()       {}
func (*SizeofType) expr() {}
