package core_test

import (
	"strings"
	"testing"

	"dyncc/internal/core"
)

func TestCompileErrorsPropagate(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"parse", `int f( {`, "expected"},
		{"lower", `int f() { return nope; }`, "undefined"},
		{"unroll", `
int f(int *a, int m) {
    int r = 0;
    dynamicRegion (a) {
        int i;
        unrolled for (i = 0; i < m; i++) { r += a[i]; }
    }
    return r;
}`, "unrolled"},
	}
	for _, tc := range cases {
		_, err := core.Compile(tc.src, core.DefaultConfig())
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestMultipleRegionsOneProgram(t *testing.T) {
	src := `
int fa(int c, int x) {
    int r;
    dynamicRegion (c) { r = x * c; }
    return r;
}
int fb(int d, int x) {
    int r;
    dynamicRegion (d) { r = x + d * 2; }
    return r;
}`
	c, err := core.Compile(src, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Output.Regions) != 2 {
		t.Fatalf("regions: %d", len(c.Output.Regions))
	}
	m := c.NewMachine(0)
	if v, _ := m.Call("fa", 3, 10); v != 30 {
		t.Errorf("fa: %d", v)
	}
	if v, _ := m.Call("fb", 4, 10); v != 18 {
		t.Errorf("fb: %d", v)
	}
	if m.Region(0).Compiles != 1 || m.Region(1).Compiles != 1 {
		t.Error("both regions should have compiled once")
	}
}

func TestConfigMatrixAgrees(t *testing.T) {
	src := `
int f(int c, int x) {
    int r = 0;
    dynamicRegion (c) {
        int i;
        for (i = 0; i < c; i++) { r = r + x - i; }
    }
    return r;
}`
	want := int64(0)
	{
		c, x := int64(5), int64(9)
		for i := int64(0); i < c; i++ {
			want += x - i
		}
	}
	for _, cfg := range []core.Config{
		{Dynamic: false, Optimize: false},
		{Dynamic: false, Optimize: true},
		{Dynamic: true, Optimize: false},
		{Dynamic: true, Optimize: true},
	} {
		c, err := core.Compile(src, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		m := c.NewMachine(0)
		got, err := m.Call("f", 5, 9)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if got != want {
			t.Errorf("%+v: got %d want %d", cfg, got, want)
		}
	}
}

func TestOptStatsRecorded(t *testing.T) {
	c, err := core.Compile(`int f() { return 2 * 3 + 4; }`, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.PassStat("const-fold").Changes == 0 {
		t.Error("constant folding not recorded")
	}
	for _, st := range c.Stats {
		if st.Duration <= 0 {
			t.Errorf("pass %s: zero duration", st.Pass)
		}
		if st.Runs == 0 {
			t.Errorf("pass %s: zero runs", st.Pass)
		}
	}
	if c.PassStat("verify").Runs == 0 {
		t.Error("no interposed verification recorded")
	}
}

func TestDisablePasses(t *testing.T) {
	src := `int f() { return 2 * 3 + 4; }`
	cfg := core.DefaultConfig()
	cfg.DisablePasses = []string{"const-fold", "simplify"}
	c, err := core.Compile(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.PassStat("const-fold"); got.Runs != 0 {
		t.Errorf("disabled pass ran %d times", got.Runs)
	}
	m := c.NewMachine(0)
	if v, _ := m.Call("f"); v != 10 {
		t.Errorf("f() = %d with const-fold disabled", v)
	}

	cfg.DisablePasses = []string{"no-such-pass"}
	if _, err := core.Compile(src, cfg); err == nil {
		t.Error("unknown pass name accepted")
	}
	cfg.DisablePasses = []string{"codegen"}
	if _, err := core.Compile(src, cfg); err == nil {
		t.Error("structural pass disable accepted")
	}
}
