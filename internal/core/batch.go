// Batch compilation: the static compiler parallelized across programs.
//
// The paper's economics amortize one program's compile cost over many
// executions; a multi-tenant server amortizes *compile throughput* over
// thousands of tenant programs, so the batch axis — not the single
// pipeline — is the scaling lever. CompileBatch runs the ordinary pass
// pipeline (an independent pipeline.Manager per program, so no pass state
// is shared) on a bounded pool of worker goroutines. The front end shares
// only the immutable interned tables (token keyword/name tables, the types
// universe, ir.Builtins, codegen's op map); the batch -race tests prove
// there is no hidden mutable global left in the pipeline.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"dyncc/internal/pipeline"
)

// BatchStats aggregates one CompileBatch run.
type BatchStats struct {
	// Programs and Failed count sources that compiled and that errored.
	Programs int
	Failed   int
	// Workers is the pool size the batch actually used.
	Workers int
	// Elapsed is the batch wall clock; ProgramsPerSec is Programs+Failed
	// over Elapsed (throughput including failed pipelines, which still
	// cost front-end time).
	Elapsed        time.Duration
	ProgramsPerSec float64
	// PassTotals merges every program's per-pass pipeline stats by pass
	// name — durations, run counts and change counts summed across
	// programs and workers — in first-execution order, so a batch compile
	// profiles exactly like a single compile, scaled.
	PassTotals []pipeline.PassStat
}

// BatchResult is a deterministic batch compilation result: slot i holds
// source i's program (or, in CollectErrors mode, its error).
type BatchResult struct {
	// Programs is index-aligned with the input sources; a slot is nil
	// exactly when that source failed to compile.
	Programs []*Compiled
	// Errs is index-aligned with the input sources and only populated in
	// Config.CollectErrors mode (nil otherwise); a slot is nil exactly
	// when that source compiled.
	Errs  []error
	Stats BatchStats
}

// batchWorkers resolves the worker-pool size for cfg: CompileWorkers,
// defaulting to GOMAXPROCS, never more than there are sources.
func batchWorkers(cfg Config, n int) int {
	w := cfg.CompileWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// CompileBatch compiles every source with the same configuration on a
// bounded pool of Config.CompileWorkers goroutines (default GOMAXPROCS).
// Output is deterministic regardless of scheduling: result slot i always
// corresponds to source i, and each program is byte-identical to what a
// serial Compile of its source produces (the pipeline shares only
// immutable interned front-end tables across workers).
//
// Error semantics are first-error-wins by default: the error of the
// lowest-indexed failing source is returned (with its index), and no
// partial result — deterministic even when a later source fails first in
// wall-clock time. With Config.CollectErrors the batch instead always
// returns a full BatchResult whose Errs slice reports every failure
// per slot.
func CompileBatch(srcs []string, cfg Config) (*BatchResult, error) {
	n := len(srcs)
	res := &BatchResult{
		Programs: make([]*Compiled, n),
		Errs:     make([]error, n),
	}
	workers := batchWorkers(cfg, n)
	start := time.Now()

	if n > 0 {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					res.Programs[i], res.Errs[i] = Compile(srcs[i], cfg)
				}
			}()
		}
		for i := range srcs {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	res.Stats = BatchStats{Workers: workers, Elapsed: time.Since(start)}
	for _, p := range res.Programs {
		if p == nil {
			res.Stats.Failed++
			continue
		}
		res.Stats.Programs++
		res.Stats.PassTotals = mergePassStats(res.Stats.PassTotals, p.Stats)
	}
	if s := res.Stats.Elapsed.Seconds(); s > 0 {
		res.Stats.ProgramsPerSec = float64(n) / s
	}

	if !cfg.CollectErrors {
		for i, err := range res.Errs {
			if err != nil {
				return nil, fmt.Errorf("batch source %d: %w", i, err)
			}
		}
		res.Errs = nil
	}
	return res, nil
}

// mergePassStats folds src's per-pass rows into dst by pass name,
// preserving dst's first-execution order and appending unseen passes in
// src order (every program registers the same pipeline, so in practice
// the order is the single-compile pass order).
func mergePassStats(dst, src []pipeline.PassStat) []pipeline.PassStat {
	for _, st := range src {
		found := false
		for i := range dst {
			if dst[i].Pass == st.Pass {
				dst[i].Duration += st.Duration
				dst[i].Runs += st.Runs
				dst[i].Changes += st.Changes
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, st)
		}
	}
	return dst
}
