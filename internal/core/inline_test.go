package core_test

import (
	"testing"

	"dyncc/internal/core"
	"dyncc/internal/ir"
)

// residualCalls counts OpCall instructions of sym left in fn after the
// whole pipeline ran.
func residualCalls(t *testing.T, p *core.Compiled, fn, sym string) int {
	t.Helper()
	f := p.Module.FuncIndex[fn]
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && in.Sym == sym {
				n++
			}
		}
	}
	return n
}

// inlineRegionSrc has a small helper called inside a keyed dynamic region:
// the policy must inline it unconditionally (budget permitting).
const inlineRegionSrc = `
int scale(int w, int v) {
    return w * v + (w >> 1);
}
int f(int *a, int n, int k) {
    int s;
    int i;
    s = 0;
    dynamicRegion key(k) (a, n) {
        unrolled for (i = 0; i < n; i++) {
            s = s + scale(k, a[i]);
        }
    }
    return s;
}`

// TestInlineInRegionAlways: a budget-fitting callee inside a dynamic
// region is always grafted, the pass reports the change, and the region
// still compiles, stitches and runs correctly.
func TestInlineInRegionAlways(t *testing.T) {
	p, err := core.Compile(inlineRegionSrc, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if got := p.PassStat("inline").Changes; got < 1 {
		t.Fatalf("inline pass reported %d grafts, want >= 1", got)
	}
	if n := residualCalls(t, p, "f", "scale"); n != 0 {
		t.Fatalf("%d residual calls of scale in region", n)
	}
	m := p.NewMachine(0)
	va, err := m.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		m.Mem[va+i] = i + 1
	}
	got, err := m.Call("f", va, 4, 6)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var want int64
	for i := int64(1); i <= 4; i++ {
		want += 6*i + 3
	}
	if got != want {
		t.Fatalf("inlined region: got %d, want %d", got, want)
	}
}

// TestInlineAblated: -disable-pass inline (and a negative budget) must
// leave the call boundary intact.
func TestInlineAblated(t *testing.T) {
	for _, cfg := range []core.Config{
		{Dynamic: true, Optimize: true, DisablePasses: []string{"inline"}},
		{Dynamic: true, Optimize: true, InlineBudget: -1},
	} {
		p, err := core.Compile(inlineRegionSrc, cfg)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		if got := p.PassStat("inline").Changes; got != 0 {
			t.Fatalf("ablated build grafted %d times", got)
		}
		if n := residualCalls(t, p, "f", "scale"); n == 0 {
			t.Fatalf("ablated build lost the call")
		}
		// The residual call must still execute correctly inside the region.
		m := p.NewMachine(0)
		va, err := m.Alloc(2)
		if err != nil {
			t.Fatal(err)
		}
		m.Mem[va], m.Mem[va+1] = 10, 20
		got, err := m.Call("f", va, 2, 4)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if want := int64(4*10 + 2 + 4*20 + 2); got != want {
			t.Fatalf("residual-call region: got %d, want %d", got, want)
		}
	}
}

// TestInlineBudget: a callee over the instruction budget stays a call.
func TestInlineBudget(t *testing.T) {
	p, err := core.Compile(inlineRegionSrc, core.Config{
		Dynamic: true, Optimize: true, InlineBudget: 2,
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if n := residualCalls(t, p, "f", "scale"); n == 0 {
		t.Fatal("over-budget callee was inlined")
	}
}

// TestInlineDemandDriven: outside a region, only call sites with a
// provably constant argument are grafted.
func TestInlineDemandDriven(t *testing.T) {
	const src = `
int mix(int a, int b) {
    return (a ^ b) * 3;
}
int f(int x, int y) {
    int u;
    int v;
    u = mix(x, 7);
    v = mix(x, y);
    return u - v;
}`
	p, err := core.Compile(src, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if got := p.PassStat("inline").Changes; got != 1 {
		t.Fatalf("demand policy grafted %d call sites, want exactly 1 (the literal-arg one)", got)
	}
	if n := residualCalls(t, p, "f", "mix"); n != 1 {
		t.Fatalf("%d residual calls of mix, want 1", n)
	}
	m := p.NewMachine(0)
	got, err := m.Call("f", 12, 5)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := int64((12^7)*3 - (12^5)*3); got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}

// TestInlineRecursionAndChains: recursive callees are never grafted;
// helper chains (h2 -> h1 -> h0) collapse transitively inside regions.
func TestInlineRecursionAndChains(t *testing.T) {
	const src = `
int fib(int n) {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}
int h0(int a, int b) {
    return a + b * 2;
}
int h1(int a, int b) {
    return h0(a, b) ^ b;
}
int f(int k, int x) {
    int s;
    s = 0;
    dynamicRegion key(k) () {
        s = h1(k, k + 1) + fib(3) + x;
    }
    return s;
}`
	p, err := core.Compile(src, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if n := residualCalls(t, p, "f", "fib"); n != 1 {
		t.Fatalf("recursive fib: %d residual calls, want 1", n)
	}
	if n := residualCalls(t, p, "f", "h1") + residualCalls(t, p, "f", "h0"); n != 0 {
		t.Fatalf("helper chain left %d residual calls", n)
	}
	m := p.NewMachine(0)
	got, err := m.Call("f", 5, 100)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := int64(((5 + 6*2) ^ 6) + 2 + 100); got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}

// TestInlineSetupSlice: a call whose result feeds a region's annotated
// constant (the set-up slice) is grafted even with no constant argument.
func TestInlineSetupSlice(t *testing.T) {
	const src = `
int derive(int a, int b) {
    return a * 8 + b;
}
int f(int *p, int x, int y) {
    int d;
    int s;
    d = derive(x, y);
    s = 0;
    dynamicRegion (p, d) {
        s = p[0] * d;
    }
    return s;
}`
	p, err := core.Compile(src, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if n := residualCalls(t, p, "f", "derive"); n != 0 {
		t.Fatalf("set-up slice call not grafted (%d residual)", n)
	}
	m := p.NewMachine(0)
	va, err := m.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	m.Mem[va] = 3
	got, err := m.Call("f", va, 2, 5)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := int64(3 * (2*8 + 5)); got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}
