// Package core is the end-to-end compiler driver: it parses MiniC, lowers
// to IR, builds SSA, optimizes, runs the paper's region analyses and
// splitter, generates VM code and templates, and wires the run-time
// stitcher. It is the paper's whole system glued together.
package core

import (
	"fmt"
	"math"
	"os"

	"dyncc/internal/codegen"
	"dyncc/internal/ir"
	"dyncc/internal/opt"
	"dyncc/internal/pipeline"
	"dyncc/internal/regalloc"
	"dyncc/internal/rtr"
	"dyncc/internal/split"
	"dyncc/internal/stitcher"
	"dyncc/internal/vm"
)

// Config selects compilation behaviour.
type Config struct {
	// Dynamic enables dynamic compilation of annotated regions. When
	// false, regions are compiled statically (annotations only drive
	// instrumentation), which is the paper's baseline.
	Dynamic bool
	// Optimize runs the static optimizer (on by default via DefaultConfig).
	Optimize bool
	// Stitcher options (strength-reduction ablation, register actions).
	Stitcher stitcher.Options
	// Cache tunes the runtime's two-level stitch cache (shard count,
	// cross-machine sharing, diagnostic segment retention).
	Cache rtr.CacheOptions
	// MergedStitch enables the paper's section 7 one-pass mode: set-up is
	// evaluated host-side during stitching instead of running as inline VM
	// code, eliminating the intermediate directive/set-up interpretation
	// cost ("merging these components into a single pass should
	// drastically reduce our dynamic compilation costs").
	MergedStitch bool
	// AutoRegion enables profile-guided automatic region promotion: the
	// `autoregion` pass rewrites eligible *unannotated* functions into
	// keyed dynamic regions marked Auto, and the runtime profiles each one,
	// stitching only once its key operands prove hot and stable — with
	// GUARD instructions in the stitched code that deoptimize back to the
	// generic tier when a speculated operand changes. See
	// DESIGN.md "Speculative promotion". Requires Dynamic.
	AutoRegion bool
	// Auto tunes the runtime's promotion policy (thresholds, stability
	// window, deopt backoff); the zero value selects rtr's defaults.
	Auto rtr.AutoOptions
	// InlineBudget caps the callee size (IR instructions) the demand-driven
	// inlining pass will graft into a caller: 0 selects the default
	// (DefaultInlineBudget), negative disables inlining entirely (like
	// `-disable-pass inline`). The pass only runs when Optimize is set.
	InlineBudget int
	// DisablePasses names pipeline passes to skip, for ablation and
	// debugging (e.g. "dce", "cse", "inline", or the whole "optimize"
	// group). Structural passes (parse, lower, ssa, split, codegen) cannot
	// be disabled, and unknown names are a compile error.
	DisablePasses []string
	// DumpIR, when non-nil, receives a textual IR snapshot of every
	// function after each module-mutating pass (optimizer sub-passes dump
	// only on fixpoint rounds where they changed something).
	DumpIR func(pass, fn, text string)
	// VerifyAll forces ir.Verify after every pass, not only the
	// module-mutating ones. Also enabled process-wide by setting the
	// DYNCC_VERIFY_ALL environment variable (`make check-passes` runs the
	// whole suite that way).
	VerifyAll bool
	// CompileWorkers sizes CompileBatch's goroutine pool (0 = GOMAXPROCS).
	// Ignored by Compile.
	CompileWorkers int
	// CollectErrors switches CompileBatch from first-error-wins (the
	// lowest-indexed failure aborts the batch) to per-source error
	// collection in BatchResult.Errs. Ignored by Compile.
	CollectErrors bool
}

// DefaultConfig compiles dynamically with full optimization.
func DefaultConfig() Config {
	return Config{Dynamic: true, Optimize: true}
}

// Compiled is a fully compiled program.
type Compiled struct {
	Config  Config
	Module  *ir.Module
	Output  *codegen.Output
	Splits  map[*ir.Region]*split.Result
	Runtime *rtr.Runtime
	// Stats are the pipeline's per-pass wall-clock timings and change
	// counts, in execution order (optimizer sub-passes have their own
	// rows; "verify" accumulates the interposed verification runs).
	Stats []pipeline.PassStat

	regions []pipeline.RegionInfo
}

// inlineEnabled reports whether the inline pass will actually graft under
// cfg — the autoregion candidate oracle keys off this so its promotion
// decisions predict exactly what the later pass will do.
func inlineEnabled(cfg Config) bool {
	if !cfg.Optimize || effectiveInlineBudget(cfg.InlineBudget) < 0 {
		return false
	}
	for _, p := range cfg.DisablePasses {
		if p == "inline" || p == "optimize" {
			return false
		}
	}
	return true
}

// verifyAllEnv reports whether ir.Verify is forced between all passes
// process-wide; `make check-passes` runs the whole test suite with it
// set. Read per compile, not at package init: `go test` only records
// environment reads made during the test run, so an init-time read would
// let cached test results mask a check-passes run.
func verifyAllEnv() bool { return os.Getenv("DYNCC_VERIFY_ALL") != "" }

// newPipeline registers the static compiler's passes for cfg. The
// optimizer's sub-passes form a fixpoint group — iterated in order until a
// round changes nothing, each independently disableable.
func newPipeline(cfg Config) *pipeline.Manager {
	mgr := pipeline.New()
	mgr.Register(passParse{})
	// Automatic region promotion rewrites the AST before lowering; optional
	// so `-disable-pass autoregion` ablates speculation while keeping the
	// rest of a Config.AutoRegion build identical.
	inlBudget := -1
	if inlineEnabled(cfg) {
		inlBudget = effectiveInlineBudget(cfg.InlineBudget)
	}
	mgr.RegisterOptional(passAutoRegion{
		enabled:      cfg.AutoRegion && cfg.Dynamic,
		inlineBudget: inlBudget,
	})
	mgr.Register(passLower{})
	mgr.Register(passSSA{})
	// Demand-driven inlining sits between SSA construction and the
	// optimizer, so the fixpoint group folds, propagates and dedups the
	// grafted bodies exactly like hand-merged code. Optional: `-disable-pass
	// inline` is the specialization-through-calls ablation. Inert without
	// the optimizer — the unoptimized build (the differential reference)
	// must keep every call boundary intact.
	mgr.RegisterOptional(passInline{
		enabled: inlBudget >= 0,
		budget:  inlBudget,
	})
	if cfg.Optimize {
		mgr.RegisterFixpoint("optimize", opt.MaxRounds, optPasses()...)
	}
	mgr.Register(passSplit{})
	// Static-code fusion rides the optimizer switch; the stitcher's NoFuse
	// ablation turns it off everywhere at once so fused-vs-unfused
	// differential runs compare whole configurations.
	mgr.Register(passCodegen{noFuse: cfg.Stitcher.NoFuse || !cfg.Optimize})
	// Stencil precompilation serves the dynamic compiler, not the static
	// code; it is optional so `-disable-pass stencil` can ablate the
	// stitcher back to its interpretive path.
	mgr.RegisterOptional(passStencil{})
	return mgr
}

// Compile compiles MiniC source text by running the pass pipeline:
// parse → lower → ssa → optimize (fixpoint of const-fold, simplify,
// branch-fold, copy-prop, cse, dce) → split → codegen, with ir.Verify
// interposed after every module-mutating pass.
func Compile(src string, cfg Config) (*Compiled, error) {
	mgr := newPipeline(cfg)
	if err := mgr.Disable(cfg.DisablePasses); err != nil {
		return nil, err
	}
	ctx := &pipeline.Context{
		Src:       src,
		Dynamic:   cfg.Dynamic,
		VerifyAll: cfg.VerifyAll || verifyAllEnv(),
		DumpIR:    cfg.DumpIR,
	}
	if err := mgr.Run(ctx); err != nil {
		return nil, err
	}
	mod, out := ctx.Module, ctx.Output

	c := &Compiled{
		Config:  cfg,
		Module:  mod,
		Output:  out,
		Splits:  ctx.Splits,
		Stats:   mgr.Stats(),
		regions: ctx.Regions,
	}
	c.Runtime = rtr.New(out.Prog, out.Regions, rtr.Options{
		Stitcher: cfg.Stitcher,
		Cache:    cfg.Cache,
		Auto:     cfg.Auto,
	})
	if cfg.Dynamic && cfg.MergedStitch {
		for _, ri := range ctx.Regions {
			if ri.Split != nil {
				c.Runtime.SetupFn[ri.Index] =
					makeSetupFn(mod, ri.Fn, ri.Split, out.FuncAlloc[ri.Fn.Name])
			}
		}
	}
	if cfg.Dynamic && (cfg.Cache.AsyncStitch || cfg.AutoRegion) {
		// Background stitching needs to rebuild a region's table from the
		// key bytes alone, with no machine. That is exactly the Shareable
		// proof (codegen/share.go): set-up consumes nothing but key values
		// and machine-independent constants. Install a key-driven set-up
		// evaluator for every keyed shareable region; regions without one
		// keep stitching inline. AutoRegion builds install them too so the
		// promotion machinery's generic tier and any future background
		// stitches of promoted regions have the same key-only path.
		for _, ri := range ctx.Regions {
			if ri.Split != nil && ri.Index < len(out.Regions) &&
				out.Regions[ri.Index].Shareable && len(ri.Region.Keys) > 0 {
				if fn := makeKeySetupFn(mod, ri.Fn, ri.Region, ri.Split); fn != nil {
					c.Runtime.KeySetup[ri.Index] = fn
				}
			}
		}
	}
	return c, nil
}

// PassStat returns the stat row for the named pass (zero if the pass did
// not run).
func (c *Compiled) PassStat(name string) pipeline.PassStat {
	for _, st := range c.Stats {
		if st.Pass == name {
			return st
		}
	}
	return pipeline.PassStat{}
}

// mergedSetupCostPerStep is the modeled cycle cost of one set-up operation
// evaluated host-side in merged mode (cheaper than the two-pass scheme's
// VM set-up + table indirection, which is the point of section 7).
const mergedSetupCostPerStep = 2

// makeSetupFn builds the host-side set-up evaluator for one region: it
// reads the set-up subgraph's inputs out of the live machine (registers or
// spill slots), interprets the subgraph directly against machine memory,
// and returns the run-time constants table base.
func makeSetupFn(mod *ir.Module, f *ir.Func, sr *split.Result,
	alloc *regalloc.Allocation) func(m *vm.Machine) (int64, uint64, error) {

	// Values read by set-up code but defined outside it.
	defined := map[ir.Value]bool{}
	for _, b := range f.Blocks {
		if !b.Setup || b.Region != sr.Region {
			continue
		}
		for _, in := range b.Instrs {
			if in.Dst != 0 {
				defined[in.Dst] = true
			}
		}
	}
	var inputs []ir.Value
	seen := map[ir.Value]bool{}
	for _, b := range f.Blocks {
		if !b.Setup || b.Region != sr.Region {
			continue
		}
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if !defined[a] && !seen[a] {
					seen[a] = true
					inputs = append(inputs, a)
				}
			}
		}
	}

	return func(m *vm.Machine) (int64, uint64, error) {
		env := &ir.InterpEnv{
			Mod:          mod,
			Mem:          m.Mem,
			Limit:        1 << 20,
			AllocFn:      m.Alloc,
			FrameBase:    m.Regs[vm.RSP],
			UseFrameBase: true,
		}
		init := map[ir.Value]int64{}
		for _, v := range inputs {
			loc := alloc.Loc[v]
			switch {
			case loc.Spilled:
				a := m.Regs[vm.RSP] + int64(loc.Slot)
				if a < 0 || a >= int64(len(m.Mem)) {
					return 0, 0, fmt.Errorf("merged set-up: spill slot out of bounds")
				}
				init[v] = m.Mem[a]
			case loc.Reg != 0:
				init[v] = m.Regs[loc.Reg]
			default:
				init[v] = 0
			}
		}
		tbl, err := env.RunSetup(f, sr.SetupEntry, init)
		return tbl, uint64(env.Steps) * mergedSetupCostPerStep, err
	}
}

// Arena sizing for key-driven set-up evaluation: the worker interprets
// set-up against a private memory image (globals area reserved, tables
// bump-allocated above it) and retries with a doubled arena if the
// region's table outgrows it.
const (
	minKeySetupArena = 1 << 13
	maxKeySetupArena = 1 << 24
)

// makeKeySetupFn builds the key-driven set-up evaluator the async stitch
// workers use: given only the region's key values, interpret the set-up
// subgraph in a private arena and return (arena, table base). It returns
// nil when any set-up input is neither a key nor a compile-time-resolvable
// constant — which the Shareable proof rules out, so nil is purely
// defensive (the region then stitches inline, never incorrectly).
func makeKeySetupFn(mod *ir.Module, f *ir.Func, r *ir.Region,
	sr *split.Result) func(keyVals []int64) ([]int64, int64, error) {

	// Values read by set-up code but defined outside it (the same
	// computation as makeSetupFn).
	defined := map[ir.Value]bool{}
	for _, b := range f.Blocks {
		if !b.Setup || b.Region != sr.Region {
			continue
		}
		for _, in := range b.Instrs {
			if in.Dst != 0 {
				defined[in.Dst] = true
			}
		}
	}
	var inputs []ir.Value
	seen := map[ir.Value]bool{}
	for _, b := range f.Blocks {
		if !b.Setup || b.Region != sr.Region {
			continue
		}
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if !defined[a] && !seen[a] {
					seen[a] = true
					inputs = append(inputs, a)
				}
			}
		}
	}

	// Bind every input at build time: keys positionally, constants by
	// evaluating their defining instruction.
	keyIdx := map[ir.Value]int{}
	for i, k := range r.Keys {
		keyIdx[k] = i
	}
	def := map[ir.Value]*ir.Instr{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Dst != 0 {
				def[in.Dst] = in
			}
		}
	}
	constBind := map[ir.Value]int64{}
	for _, v := range inputs {
		if _, ok := keyIdx[v]; ok {
			continue
		}
		in := def[v]
		if in == nil {
			return nil // a parameter that is not a key: not key-derivable
		}
		switch in.Op {
		case ir.OpConst:
			constBind[v] = in.Const
		case ir.OpFConst:
			constBind[v] = int64(math.Float64bits(in.F))
		case ir.OpGlobalAddr:
			g := mod.GlobalIndex[in.Sym]
			if g == nil {
				return nil
			}
			constBind[v] = int64(g.Addr)
		default:
			return nil
		}
	}

	base := int64(mod.GlobalWords)
	return func(keyVals []int64) ([]int64, int64, error) {
		if len(keyVals) != len(r.Keys) {
			return nil, 0, fmt.Errorf("key set-up: %d key values, want %d",
				len(keyVals), len(r.Keys))
		}
		size := int64(minKeySetupArena)
		for size < base+64 {
			size *= 2
		}
		for ; ; size *= 2 {
			mem := make([]int64, size)
			hp := base
			grew := false
			env := &ir.InterpEnv{
				Mod:          mod,
				Mem:          mem,
				Limit:        1 << 20,
				UseFrameBase: true, // set-up has no frame addresses (share proof)
				AllocFn: func(n int64) (int64, error) {
					if n < 0 {
						return 0, fmt.Errorf("key set-up: negative allocation")
					}
					a := hp
					hp += n
					if hp > int64(len(mem)) {
						grew = true
						return 0, fmt.Errorf("key set-up: arena exhausted")
					}
					return a, nil
				},
			}
			init := map[ir.Value]int64{}
			for i, k := range r.Keys {
				init[k] = keyVals[i]
			}
			for v, c := range constBind {
				init[v] = c
			}
			tbl, err := env.RunSetup(f, sr.SetupEntry, init)
			if err != nil {
				if grew && size < maxKeySetupArena {
					continue
				}
				return nil, 0, err
			}
			return mem, tbl, nil
		}
	}
}

// NewMachine creates a VM with the runtime attached. memWords <= 0 picks
// the default size.
func (c *Compiled) NewMachine(memWords int) *vm.Machine {
	m := vm.NewMachine(c.Output.Prog, memWords)
	c.Runtime.Attach(m)
	return m
}

// NewMachines creates n machines sharing this program's runtime (and so its
// cross-machine stitch cache). Each machine may then be driven by its own
// goroutine.
func (c *Compiled) NewMachines(n int) []*vm.Machine {
	ms := make([]*vm.Machine, n)
	for i := range ms {
		ms[i] = c.NewMachine(0)
	}
	return ms
}

// Regions returns all IR regions in module order (matching global
// indices), from the walk the split pass computed once.
func (c *Compiled) Regions() []*ir.Region {
	rs := make([]*ir.Region, len(c.regions))
	for i, ri := range c.regions {
		rs[i] = ri.Region
	}
	return rs
}

// RegionInfos exposes the pipeline's single region walk: every region
// with its function, global index and split result.
func (c *Compiled) RegionInfos() []pipeline.RegionInfo { return c.regions }
