package core_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dyncc/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestPerPassIRDumpGolden locks down the pipeline's observability contract
// on one representative program (dot product: dynamic region, derived
// run-time constants, an unrolled loop): the sequence of per-pass IR
// snapshots — lower → ssa → each optimizer sub-pass that changed
// something → post-split — must stay byte-identical. A diff here means a
// pass changed behaviour, ran in a different order, or stopped/started
// mutating the IR.
func TestPerPassIRDumpGolden(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "dotproduct.mc"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	cfg := core.DefaultConfig()
	cfg.DumpIR = func(pass, fn, text string) {
		// One function keeps the golden readable; "dot" holds the region.
		if fn != "dot" {
			return
		}
		fmt.Fprintf(&b, "=== ir after %s: %s\n%s\n", pass, fn, text)
	}
	if _, err := core.Compile(string(src), cfg); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	// The dump must cover the whole mutating pipeline in order.
	wantOrder := []string{"after lower", "after ssa", "after split"}
	pos := 0
	for _, w := range wantOrder {
		i := strings.Index(got[pos:], w)
		if i < 0 {
			t.Fatalf("dump missing or out of order: %q", w)
		}
		pos += i
	}

	golden := filepath.Join("testdata", "dotproduct_passes.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("per-pass IR dump differs from %s (run with -update to regenerate)\n--- got ---\n%s",
			golden, got)
	}
}

// TestInlinePassIRDumpGolden locks the call-boundary transform's dump on a
// calls-heavy fixture: the inline pass must appear between ssa and the
// splitter, and the grafted snapshots must stay byte-identical.
func TestInlinePassIRDumpGolden(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "inlinecalls.mc"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	cfg := core.DefaultConfig()
	cfg.DumpIR = func(pass, fn, text string) {
		// "apply" holds the region plus both call sites of the helper.
		if fn != "apply" {
			return
		}
		fmt.Fprintf(&b, "=== ir after %s: %s\n%s\n", pass, fn, text)
	}
	if _, err := core.Compile(string(src), cfg); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	wantOrder := []string{"after lower", "after ssa", "after inline", "after split"}
	pos := 0
	for _, w := range wantOrder {
		i := strings.Index(got[pos:], w)
		if i < 0 {
			t.Fatalf("dump missing or out of order: %q", w)
		}
		pos += i
	}

	golden := filepath.Join("testdata", "inlinecalls_passes.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("per-pass IR dump differs from %s (run with -update to regenerate)\n--- got ---\n%s",
			golden, got)
	}
}
