package core

import (
	"dyncc/internal/codegen"
	"dyncc/internal/ir"
	"dyncc/internal/lower"
	"dyncc/internal/opt"
	"dyncc/internal/parser"
	"dyncc/internal/pipeline"
	"dyncc/internal/split"
	"dyncc/internal/stencil"
)

// The static compiler's passes. Each is a thin pipeline.Pass adapter over
// the corresponding package entry point; core.Compile registers them in
// order and the pass manager handles timing, verification interposition
// and IR dumping (see internal/pipeline).

type passParse struct{}

func (passParse) Name() string { return "parse" }

func (passParse) Run(ctx *pipeline.Context) error {
	file, err := parser.Parse(ctx.Src)
	if err != nil {
		return err
	}
	ctx.File = file
	return nil
}

type passLower struct{}

func (passLower) Name() string    { return "lower" }
func (passLower) MutatesIR() bool { return true }

func (passLower) Run(ctx *pipeline.Context) error {
	mod, err := lower.Lower(ctx.File)
	if err != nil {
		return err
	}
	ctx.Module = mod
	return nil
}

type passSSA struct{}

func (passSSA) Name() string    { return "ssa" }
func (passSSA) MutatesIR() bool { return true }

func (passSSA) Run(ctx *pipeline.Context) error {
	for _, f := range ctx.Module.Funcs {
		ir.BuildSSA(f)
	}
	return nil
}

// passOptSub adapts one optimizer sub-pass (const-fold, simplify,
// branch-fold, copy-prop, cse, dce) to the pipeline; the sub-passes are
// registered as a fixpoint group so together they iterate exactly like
// the old monolithic opt.Optimize, while each can be disabled, timed and
// dumped on its own.
type passOptSub struct{ sp opt.SubPass }

func (p passOptSub) Name() string    { return p.sp.Name }
func (p passOptSub) MutatesIR() bool { return true }

func (p passOptSub) Run(ctx *pipeline.Context) error {
	n := 0
	for _, f := range ctx.Module.Funcs {
		n += p.sp.Run(f)
	}
	ctx.NoteChanges(n)
	return nil
}

// optPasses returns the optimizer sub-passes wrapped for the pipeline.
func optPasses() []pipeline.Pass {
	subs := opt.SubPasses()
	ps := make([]pipeline.Pass, len(subs))
	for i, sp := range subs {
		ps[i] = passOptSub{sp}
	}
	return ps
}

// passSplit walks every function's regions exactly once, assigning the
// global region index and (when compiling dynamically) running the
// region splitter. All later consumers — codegen, merged-stitch and
// async-stitch wiring, Compiled.Regions — index the resulting walk
// instead of re-deriving it.
type passSplit struct{}

func (passSplit) Name() string    { return "split" }
func (passSplit) MutatesIR() bool { return true }

func (passSplit) Run(ctx *pipeline.Context) error {
	ctx.Splits = map[*ir.Region]*split.Result{}
	idx := 0
	for _, f := range ctx.Module.Funcs {
		for _, r := range f.Regions {
			ri := pipeline.RegionInfo{Fn: f, Region: r, Index: idx}
			if ctx.Dynamic {
				sr, err := split.Split(f, r)
				if err != nil {
					return err
				}
				ctx.Splits[r] = sr
				ri.Split = sr
			}
			ctx.Regions = append(ctx.Regions, ri)
			idx++
		}
	}
	return nil
}

type passCodegen struct{ noFuse bool }

func (passCodegen) Name() string { return "codegen" }

func (p passCodegen) Run(ctx *pipeline.Context) error {
	out, err := codegen.Compile(ctx.Module, ctx.Splits, codegen.Options{
		NoFuse: p.noFuse,
	})
	if err != nil {
		return err
	}
	ctx.Output = out
	return nil
}

// passStencil precompiles each region's templates into their copy-and-patch
// form (internal/stencil), consumed by the stitcher's fast path. Optional:
// disabling it (-disable-pass stencil) is the interpretive-stitcher
// ablation baseline — stitched segments are byte-identical either way, only
// stitch-time cost changes. It rewrites codegen output, not the IR, so no
// verification is interposed.
type passStencil struct{}

func (passStencil) Name() string { return "stencil" }

func (passStencil) Run(ctx *pipeline.Context) error {
	if ctx.Output == nil {
		return nil
	}
	ctx.NoteChanges(stencil.Precompile(ctx.Output.Regions))
	return nil
}
