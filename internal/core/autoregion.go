package core

import (
	"dyncc/internal/ast"
	"dyncc/internal/pipeline"
	"dyncc/internal/token"
)

// passAutoRegion is the speculative-promotion front end: it rewrites
// candidate *unannotated* functions so their whole body becomes a keyed
// dynamic region marked Auto, with the function's stable-looking scalar
// int parameters as keys. The runtime then profiles each Auto region and
// only starts stitching once the observed key tuple is hot and stable;
// stitched code is wrapped in GUARD instructions that deoptimize back to
// the generic tier when a speculated key changes. The rewrite itself is
// therefore behavior-neutral by construction — it only opens the door for
// the runtime to speculate.
//
// The pass is optional (`-disable-pass autoregion`) and inert unless
// Config.AutoRegion is set, mirroring how `stencil` rides RegisterOptional.
type passAutoRegion struct{ enabled bool }

func (passAutoRegion) Name() string { return "autoregion" }

func (p passAutoRegion) Run(ctx *pipeline.Context) error {
	if !p.enabled || !ctx.Dynamic || ctx.File == nil {
		return nil
	}
	n := 0
	for _, fd := range ctx.File.Funcs {
		keys := autoRegionKeys(fd)
		if keys == nil {
			continue
		}
		fd.Body = &ast.Block{P: fd.Body.P, Stmts: []ast.Stmt{
			&ast.DynamicRegion{P: fd.Body.P, Keys: keys, Body: fd.Body, Auto: true},
		}}
		n++
	}
	ctx.NoteChanges(n)
	return nil
}

// maxAutoKeys caps the speculated key tuple; DYNENTER stages keys through
// at most three shuttle registers (codegen/emit.go).
const maxAutoKeys = 3

// autoRegionKeys decides whether fd is a promotion candidate and, if so,
// returns the parameter names to speculate on (nil otherwise). The filter
// is deliberately conservative — rejecting a function only costs a missed
// speculation, while accepting a bad one costs correctness:
//
//   - the body must not already contain a dynamicRegion (no nesting), any
//     call (set-up shareability and region semantics stop at calls), any
//     goto or label (region edge checks), or any address-of (an
//     address-taken parameter lives on the stack, where region key
//     resolution cannot see it);
//   - keys are scalar `int` parameters that the body reads but never
//     writes and never shadows. Pointer and array parameters are never
//     keys or constants: automatic promotion must not assume memory
//     contents are stable — only the programmer's annotation may claim
//     that — so loads through them stay non-constant, which is safe.
func autoRegionKeys(fd *ast.FuncDecl) []string {
	if fd.Body == nil || len(fd.Params) == 0 {
		return nil
	}
	w := &autoWalker{
		assigned: map[string]bool{},
		used:     map[string]bool{},
		declared: map[string]bool{},
	}
	w.block(fd.Body)
	if w.reject {
		return nil
	}
	var keys []string
	for _, p := range fd.Params {
		if len(keys) == maxAutoKeys {
			break
		}
		t := p.Type
		if t == nil || t.Base != token.KwInt || t.Ptr != 0 || len(t.ArrayLens) != 0 {
			continue
		}
		if w.used[p.Name] && !w.assigned[p.Name] && !w.declared[p.Name] {
			keys = append(keys, p.Name)
		}
	}
	if len(keys) == 0 {
		return nil
	}
	return keys
}

// autoWalker scans a function body for disqualifying constructs and
// records which names are read, written and locally re-declared.
type autoWalker struct {
	reject   bool
	assigned map[string]bool
	used     map[string]bool
	declared map[string]bool
}

func (w *autoWalker) stmt(s ast.Stmt) {
	if w.reject || s == nil {
		return
	}
	switch x := s.(type) {
	case *ast.Block:
		w.block(x)
	case *ast.DeclStmt:
		for _, d := range x.Decls {
			w.declared[d.Name] = true
			w.expr(d.Init)
		}
	case *ast.ExprStmt:
		w.expr(x.X)
	case *ast.EmptyStmt, *ast.Break, *ast.Continue, *ast.Case:
	case *ast.If:
		w.expr(x.Cond)
		w.stmt(x.Then)
		w.stmt(x.Else)
	case *ast.While:
		w.expr(x.Cond)
		w.stmt(x.Body)
	case *ast.DoWhile:
		w.stmt(x.Body)
		w.expr(x.Cond)
	case *ast.For:
		w.stmt(x.Init)
		w.expr(x.Cond)
		w.expr(x.Post)
		w.stmt(x.Body)
	case *ast.Switch:
		w.expr(x.Tag)
		w.block(x.Body)
	case *ast.Return:
		w.expr(x.X)
	case *ast.Goto, *ast.LabeledStmt, *ast.DynamicRegion:
		w.reject = true
	default:
		w.reject = true
	}
}

func (w *autoWalker) block(b *ast.Block) {
	for _, s := range b.Stmts {
		w.stmt(s)
	}
}

func (w *autoWalker) expr(e ast.Expr) {
	if w.reject || e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.Ident:
		w.used[x.Name] = true
	case *ast.IntLit, *ast.FloatLit, *ast.StringLit, *ast.SizeofType:
	case *ast.Unary:
		if x.Op == token.AMP {
			w.reject = true
			return
		}
		if x.Op == token.INC || x.Op == token.DEC {
			w.markAssigned(x.X)
		}
		w.expr(x.X)
	case *ast.PostIncDec:
		w.markAssigned(x.X)
		w.expr(x.X)
	case *ast.Binary:
		w.expr(x.L)
		w.expr(x.R)
	case *ast.Assign:
		w.markAssigned(x.L)
		w.expr(x.L)
		w.expr(x.R)
	case *ast.Cond:
		w.expr(x.C)
		w.expr(x.T)
		w.expr(x.F)
	case *ast.Call:
		w.reject = true
	case *ast.Index:
		w.expr(x.X)
		w.expr(x.I)
	case *ast.Field:
		w.expr(x.X)
	case *ast.Cast:
		w.expr(x.X)
	default:
		w.reject = true
	}
}

// markAssigned records the root identifier of an assignment target; stores
// through pointers or into arrays do not disqualify the base name (only
// direct writes to a scalar do).
func (w *autoWalker) markAssigned(l ast.Expr) {
	if id, ok := l.(*ast.Ident); ok {
		w.assigned[id.Name] = true
	}
}
