package core

import (
	"dyncc/internal/analysis"
	"dyncc/internal/ast"
	"dyncc/internal/ir"
	"dyncc/internal/lower"
	"dyncc/internal/pipeline"
	"dyncc/internal/token"
)

// passAutoRegion is the speculative-promotion front end: it rewrites
// candidate *unannotated* functions so their whole body becomes a keyed
// dynamic region marked Auto, with the function's stable-looking scalar
// int parameters as keys. The runtime then profiles each Auto region and
// only starts stitching once the observed key tuple is hot and stable;
// stitched code is wrapped in GUARD instructions that deoptimize back to
// the generic tier when a speculated key changes. The rewrite itself is
// therefore behavior-neutral by construction — it only opens the door for
// the runtime to speculate.
//
// Calls no longer disqualify a candidate wholesale: only *residual* calls
// do — calls the demand-driven inline pass will not fold away. Since this
// pass runs on the AST (before lowering) and the inline pass on SSA IR
// (after), the prediction comes from an oracle that lowers a scratch copy
// of the file and summarizes it (inlineableCallees); every body call of an
// accepted candidate lands inside the synthesized region, where the inline
// policy is "always", so callee eligibility alone decides. A helper that a
// candidate calls is itself left unpromoted — its body is about to be
// grafted into its callers' regions, where specialization happens.
//
// The pass is optional (`-disable-pass autoregion`) and inert unless
// Config.AutoRegion is set, mirroring how `stencil` rides RegisterOptional.
type passAutoRegion struct {
	enabled bool
	// inlineBudget is the effective budget of the inline pass for this
	// build; negative means inlining is off (then any call disqualifies,
	// the pre-inlining behaviour).
	inlineBudget int
}

func (passAutoRegion) Name() string { return "autoregion" }

func (p passAutoRegion) Run(ctx *pipeline.Context) error {
	if !p.enabled || !ctx.Dynamic || ctx.File == nil {
		return nil
	}
	eligible := p.inlineableCallees(ctx.File)
	type cand struct {
		fd   *ast.FuncDecl
		keys []string
	}
	var cands []cand
	called := map[string]bool{}
	for _, fd := range ctx.File.Funcs {
		keys, calls := autoRegionKeys(fd, eligible)
		if keys == nil {
			continue
		}
		cands = append(cands, cand{fd, keys})
		for _, c := range calls {
			called[c] = true
		}
	}
	n := 0
	for _, c := range cands {
		// A candidate that another candidate calls is a helper destined to
		// be inlined into its callers' regions; promoting it too would give
		// it a region of its own and block that graft (no nesting).
		if called[c.fd.Name] {
			continue
		}
		c.fd.Body = &ast.Block{P: c.fd.Body.P, Stmts: []ast.Stmt{
			&ast.DynamicRegion{P: c.fd.Body.P, Keys: c.keys, Body: c.fd.Body, Auto: true},
		}}
		n++
	}
	ctx.NoteChanges(n)
	return nil
}

// inlineableCallees predicts which functions the inline pass will be able
// to graft, before lowering has run: lower a scratch module from the same
// AST, build SSA, summarize. Returns nil (nothing eligible) when inlining
// is off for this build or the file doesn't lower — the pass then falls
// back to the conservative any-call-disqualifies rule, and the real
// lowering reports the error with full context.
func (p passAutoRegion) inlineableCallees(file *ast.File) map[string]bool {
	if p.inlineBudget < 0 {
		return nil
	}
	mod, err := lower.Lower(file)
	if err != nil {
		return nil
	}
	for _, f := range mod.Funcs {
		ir.BuildSSA(f)
	}
	el := map[string]bool{}
	for name, s := range analysis.Summaries(mod) {
		if inlinable(s, p.inlineBudget) {
			el[name] = true
		}
	}
	return el
}

// maxAutoKeys caps the speculated key tuple; DYNENTER stages keys through
// at most three shuttle registers (codegen/emit.go).
const maxAutoKeys = 3

// autoRegionKeys decides whether fd is a promotion candidate and, if so,
// returns the parameter names to speculate on plus the callee names its
// body mentions (nil keys otherwise). The filter is deliberately
// conservative — rejecting a function only costs a missed speculation,
// while accepting a bad one costs correctness:
//
//   - the body must not already contain a dynamicRegion (no nesting), any
//     goto or label (region edge checks), any address-of (an address-taken
//     parameter lives on the stack, where region key resolution cannot see
//     it), or any *residual* call — a call the inline pass will not fold
//     (callee not in eligible: a builtin, too big, recursive, or itself
//     region-bearing). Eligible calls are fine: they are grafted before
//     the splitter ever sees the region, and even a mispredicted residual
//     call still executes correctly inside a region (frames record their
//     segment), it just blocks specialization of its result;
//   - keys are scalar `int` parameters that the body reads but never
//     writes and never shadows. Pointer and array parameters are never
//     keys or constants: automatic promotion must not assume memory
//     contents are stable — only the programmer's annotation may claim
//     that — so loads through them stay non-constant, which is safe.
func autoRegionKeys(fd *ast.FuncDecl, eligible map[string]bool) (keys, calls []string) {
	if fd.Body == nil || len(fd.Params) == 0 {
		return nil, nil
	}
	w := &autoWalker{
		assigned: map[string]bool{},
		used:     map[string]bool{},
		declared: map[string]bool{},
	}
	w.block(fd.Body)
	if w.reject {
		return nil, nil
	}
	for _, c := range w.calls {
		if !eligible[c] || c == fd.Name {
			return nil, nil // residual (un-inlinable) call disqualifies
		}
	}
	for _, pr := range fd.Params {
		if len(keys) == maxAutoKeys {
			break
		}
		t := pr.Type
		if t == nil || t.Base != token.KwInt || t.Ptr != 0 || len(t.ArrayLens) != 0 {
			continue
		}
		if w.used[pr.Name] && !w.assigned[pr.Name] && !w.declared[pr.Name] {
			keys = append(keys, pr.Name)
		}
	}
	if len(keys) == 0 {
		return nil, nil
	}
	return keys, w.calls
}

// autoWalker scans a function body for disqualifying constructs and
// records which names are read, written, locally re-declared and called.
type autoWalker struct {
	reject   bool
	assigned map[string]bool
	used     map[string]bool
	declared map[string]bool
	calls    []string
}

func (w *autoWalker) stmt(s ast.Stmt) {
	if w.reject || s == nil {
		return
	}
	switch x := s.(type) {
	case *ast.Block:
		w.block(x)
	case *ast.DeclStmt:
		for _, d := range x.Decls {
			w.declared[d.Name] = true
			w.expr(d.Init)
		}
	case *ast.ExprStmt:
		w.expr(x.X)
	case *ast.EmptyStmt, *ast.Break, *ast.Continue, *ast.Case:
	case *ast.If:
		w.expr(x.Cond)
		w.stmt(x.Then)
		w.stmt(x.Else)
	case *ast.While:
		w.expr(x.Cond)
		w.stmt(x.Body)
	case *ast.DoWhile:
		w.stmt(x.Body)
		w.expr(x.Cond)
	case *ast.For:
		w.stmt(x.Init)
		w.expr(x.Cond)
		w.expr(x.Post)
		w.stmt(x.Body)
	case *ast.Switch:
		w.expr(x.Tag)
		w.block(x.Body)
	case *ast.Return:
		w.expr(x.X)
	case *ast.Goto, *ast.LabeledStmt, *ast.DynamicRegion:
		w.reject = true
	default:
		w.reject = true
	}
}

func (w *autoWalker) block(b *ast.Block) {
	for _, s := range b.Stmts {
		w.stmt(s)
	}
}

func (w *autoWalker) expr(e ast.Expr) {
	if w.reject || e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.Ident:
		w.used[x.Name] = true
	case *ast.IntLit, *ast.FloatLit, *ast.StringLit, *ast.SizeofType:
	case *ast.Unary:
		if x.Op == token.AMP {
			w.reject = true
			return
		}
		if x.Op == token.INC || x.Op == token.DEC {
			w.markAssigned(x.X)
		}
		w.expr(x.X)
	case *ast.PostIncDec:
		w.markAssigned(x.X)
		w.expr(x.X)
	case *ast.Binary:
		w.expr(x.L)
		w.expr(x.R)
	case *ast.Assign:
		w.markAssigned(x.L)
		w.expr(x.L)
		w.expr(x.R)
	case *ast.Cond:
		w.expr(x.C)
		w.expr(x.T)
		w.expr(x.F)
	case *ast.Call:
		w.calls = append(w.calls, x.Fun)
		for _, a := range x.Args {
			w.expr(a)
		}
	case *ast.Index:
		w.expr(x.X)
		w.expr(x.I)
	case *ast.Field:
		w.expr(x.X)
	case *ast.Cast:
		w.expr(x.X)
	default:
		w.reject = true
	}
}

// markAssigned records the root identifier of an assignment target; stores
// through pointers or into arrays do not disqualify the base name (only
// direct writes to a scalar do).
func (w *autoWalker) markAssigned(l ast.Expr) {
	if id, ok := l.(*ast.Ident); ok {
		w.assigned[id.Name] = true
	}
}
