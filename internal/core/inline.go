package core

import (
	"fmt"

	"dyncc/internal/analysis"
	"dyncc/internal/ir"
	"dyncc/internal/pipeline"
)

// passInline is the demand-driven inlining pass, registered between SSA
// construction and the optimize fixpoint group. It grafts small callees
// into callers (ir.InlineCall) when a budget-driven policy fires:
//
//   - always, when the call sits inside a dynamic region or the region's
//     set-up slice (the def chains feeding its annotated keys/constants)
//     and the callee fits the budget — so run-time-constant propagation,
//     set-up/template splitting and stitch-time folding see through the
//     call boundary (the paper's section 3.1 analysis, extended across the
//     one program boundary it could not cross);
//   - demand-driven elsewhere: only when the caller's run-time-constants
//     analysis proves at least one argument constant. Outside a region
//     that analysis degenerates to its literal special case (a
//     compile-time literal is a run-time constant without annotation,
//     analysis.go), so the test is "some argument is a literal constant".
//
// Eligibility comes from the analysis.FuncSummary table: the callee must
// fit Config.InlineBudget instructions and have no recursion, no
// address-taken locals, no dynamic region, and a reachable `ret`.
// After grafting, the run-time-constants analysis is re-run over every
// region of the mutated caller, so a graft that breaks convergence is a
// compile-time error here, not a latent splitter failure.
type passInline struct {
	enabled bool
	budget  int
}

func (passInline) Name() string    { return "inline" }
func (passInline) MutatesIR() bool { return true }

// DefaultInlineBudget is the callee size cap (IR instructions, terminators
// and φs included) used when Config.InlineBudget is zero.
const DefaultInlineBudget = 32

// effectiveInlineBudget lowers the config knob: 0 selects the default,
// negative disables the pass entirely.
func effectiveInlineBudget(b int) int {
	switch {
	case b < 0:
		return -1
	case b == 0:
		return DefaultInlineBudget
	}
	return b
}

// maxInlinesPerFunc caps grafts into one caller, bounding code growth on
// deep helper chains (residual calls past the cap stay calls — a
// performance miss, never a correctness issue).
const maxInlinesPerFunc = 64

func (p passInline) Run(ctx *pipeline.Context) error {
	if !p.enabled || p.budget < 0 || ctx.Module == nil {
		return nil
	}
	// Callee summaries are computed once against the pre-pass module:
	// deterministic, and grafted bodies are re-scanned per caller below so
	// transitive helper chains still collapse.
	sums := analysis.Summaries(ctx.Module)
	n := 0
	for _, f := range ctx.Module.Funcs {
		nn, err := inlineFunc(ctx.Module, f, sums, p.budget)
		n += nn
		if err != nil {
			return err
		}
	}
	ctx.NoteChanges(n)
	return nil
}

// inlinable is the summary-level eligibility test shared by the pass and
// the autoregion candidate oracle.
func inlinable(s *analysis.FuncSummary, budget int) bool {
	return s != nil && !s.Recursive && !s.HasAddressOfLocal && !s.HasRegion &&
		s.Returns && s.Size <= budget
}

// inlineFunc drives the worklist for one caller: find the first call the
// policy accepts, graft it, rescan (grafted bodies may expose further
// calls), until a fixpoint or the growth cap. Returns grafts performed.
func inlineFunc(mod *ir.Module, f *ir.Func, sums map[string]*analysis.FuncSummary,
	budget int) (int, error) {

	n := 0
	for n < maxInlinesPerFunc {
		call := nextInlinableCall(mod, f, sums, budget)
		if call == nil {
			break
		}
		callee := mod.FuncIndex[call.Sym]
		if err := ir.InlineCall(f, call, callee); err != nil {
			return n, fmt.Errorf("inline %s into %s: %w", call.Sym, f.Name, err)
		}
		n++
	}
	if n > 0 {
		// Re-run the run-time-constants analysis over every region the
		// grafts may have extended: newly merged bodies must still admit a
		// converging solution before the splitter consumes it.
		for _, r := range f.Regions {
			if _, err := analysis.Analyze(f, r, nil); err != nil {
				return n, fmt.Errorf("inline: post-graft analysis of %s: %w", f.Name, err)
			}
		}
	}
	return n, nil
}

// nextInlinableCall returns the first call site in block/instruction order
// whose callee is eligible and for which the placement policy fires, or
// nil.
func nextInlinableCall(mod *ir.Module, f *ir.Func,
	sums map[string]*analysis.FuncSummary, budget int) *ir.Instr {

	setup := setupSliceValues(f)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpCall {
				continue
			}
			callee := mod.FuncIndex[in.Sym]
			if callee == nil || callee == f {
				continue // builtin, unknown, or direct self-call
			}
			if !inlinable(sums[in.Sym], budget) {
				continue
			}
			if len(in.Args) != len(callee.Params) {
				continue
			}
			switch {
			case b.Region != nil:
				return in // inside a dynamic region: always
			case in.Dst != 0 && setup[in.Dst]:
				return in // feeds a region's annotated keys/consts: always
			case hasConstArg(f, in):
				return in // demand: an argument is a run-time constant
			}
		}
	}
	return nil
}

// setupSliceValues collects the values on the def chains feeding each
// region's annotated keys and constants — the region's set-up slice, the
// code whose results the set-up code reads out of registers at region
// entry. The walk stops at region-interior defs and parameters.
func setupSliceValues(f *ir.Func) map[ir.Value]bool {
	out := map[ir.Value]bool{}
	var walk func(v ir.Value, depth int)
	walk = func(v ir.Value, depth int) {
		if v == 0 || depth > 256 || out[v] {
			return
		}
		out[v] = true
		def := f.DefOf(v)
		if def == nil || (def.Blk != nil && def.Blk.Region != nil) {
			return
		}
		for _, a := range def.Args {
			walk(a, depth+1)
		}
	}
	for _, r := range f.Regions {
		for _, v := range r.Consts {
			walk(v, 0)
		}
		for _, v := range r.Keys {
			walk(v, 0)
		}
	}
	return out
}

// hasConstArg reports whether some argument of the call is a run-time
// constant at the call site. Outside dynamic regions the run-time-constant
// lattice bottoms out at its literal special case (paper section 3.1
// footnote), which is what a caller-side demand test can prove.
func hasConstArg(f *ir.Func, call *ir.Instr) bool {
	for _, a := range call.Args {
		if def := f.DefOf(a); def != nil &&
			(def.Op == ir.OpConst || def.Op == ir.OpFConst) {
			return true
		}
	}
	return false
}
