package core

import (
	"os"
	"strings"
	"sync"
	"testing"
)

// batchTestSources returns a mixed corpus: the checked-in example kernels
// plus small keyed/unkeyed region programs, so batch compilation covers
// static functions, dynamic regions, unrolled loops and keyed sharing.
func batchTestSources(t *testing.T) []string {
	t.Helper()
	srcs := []string{
		`
int scale(int s, int x) {
    int r;
    dynamicRegion key(s) () {
        r = x * s;
    }
    return r;
}`,
		`
int poly(int a, int b, int x) {
    int r;
    dynamicRegion key(a, b) () {
        r = a * x + b;
    }
    return r;
}`,
		`
int sum(int *v, int n, int x) {
    int i;
    int acc = 0;
    dynamicRegion (v, n) {
        unrolled for (i = 0; i < n; i++) {
            acc = acc + v[i] * x;
        }
    }
    return acc;
}`,
	}
	for _, f := range []string{"../../testdata/dotproduct.mc", "../../testdata/fib.mc", "../../testdata/power.mc"} {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, string(data))
	}
	return srcs
}

// fingerprint renders everything the compiler produced for one program in
// a stable textual form: the optimized IR of every function, the
// disassembly of every static code segment, and every region's template
// dump. Two compilations are byte-identical iff their fingerprints match.
func fingerprint(c *Compiled) string {
	var b strings.Builder
	for _, f := range c.Module.Funcs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	for _, seg := range c.Output.Prog.Segs {
		b.WriteString(seg.Disasm())
		b.WriteByte('\n')
	}
	for _, r := range c.Output.Regions {
		b.WriteString(r.Dump())
		b.WriteByte('\n')
	}
	return b.String()
}

func passNames(c *Compiled) []string {
	names := make([]string, len(c.Stats))
	for i, st := range c.Stats {
		names[i] = st.Pass
	}
	return names
}

// CompileBatch must produce, for every source and any worker count, output
// byte-identical to a serial Compile — same IR, same machine code, same
// templates, same pass list — with results in input order.
func TestCompileBatchDeterministic(t *testing.T) {
	srcs := batchTestSources(t)
	cfg := Config{Dynamic: true, Optimize: true}

	want := make([]string, len(srcs))
	wantPasses := make([][]string, len(srcs))
	for i, src := range srcs {
		c, err := Compile(src, cfg)
		if err != nil {
			t.Fatalf("serial compile %d: %v", i, err)
		}
		want[i] = fingerprint(c)
		wantPasses[i] = passNames(c)
	}

	for _, workers := range []int{1, 2, 8} {
		bcfg := cfg
		bcfg.CompileWorkers = workers
		br, err := CompileBatch(srcs, bcfg)
		if err != nil {
			t.Fatalf("batch (workers=%d): %v", workers, err)
		}
		if br.Stats.Workers != min(workers, len(srcs)) {
			t.Errorf("workers: got %d, want %d", br.Stats.Workers, min(workers, len(srcs)))
		}
		if br.Stats.Programs != len(srcs) || br.Stats.Failed != 0 {
			t.Errorf("stats: %d programs %d failed, want %d/0",
				br.Stats.Programs, br.Stats.Failed, len(srcs))
		}
		if br.Stats.ProgramsPerSec <= 0 {
			t.Error("ProgramsPerSec not populated")
		}
		for i, c := range br.Programs {
			if c == nil {
				t.Fatalf("workers=%d: program %d missing", workers, i)
			}
			if got := fingerprint(c); got != want[i] {
				t.Errorf("workers=%d: program %d output differs from serial Compile", workers, i)
			}
			got := passNames(c)
			if strings.Join(got, ",") != strings.Join(wantPasses[i], ",") {
				t.Errorf("workers=%d: program %d pass list %v, want %v",
					workers, i, got, wantPasses[i])
			}
		}
	}
}

// First-error-wins must report the lowest-indexed failing source, not
// whichever failed first in wall-clock time.
func TestCompileBatchFirstErrorWins(t *testing.T) {
	srcs := []string{
		`int ok(int x) { return x + 1; }`,
		`int broken( { return; }`,       // index 1: parse error
		`int alsoBroken(int x) { re }`,  // index 2: parse error
		`int fine(int x) { return x; }`, // fine
	}
	cfg := Config{Dynamic: true, Optimize: true, CompileWorkers: 4}
	br, err := CompileBatch(srcs, cfg)
	if err == nil {
		t.Fatal("batch with broken sources returned no error")
	}
	if br != nil {
		t.Error("first-error-wins must not return a partial result")
	}
	if !strings.Contains(err.Error(), "batch source 1:") {
		t.Errorf("error should name the lowest failing index (1): %v", err)
	}
}

// CollectErrors mode reports every failure per slot and still compiles the
// healthy sources.
func TestCompileBatchCollectErrors(t *testing.T) {
	srcs := []string{
		`int ok(int x) { return x + 1; }`,
		`int broken( { return; }`,
		`int fine(int x) { return x * 2; }`,
	}
	cfg := Config{Dynamic: true, Optimize: true, CollectErrors: true, CompileWorkers: 2}
	br, err := CompileBatch(srcs, cfg)
	if err != nil {
		t.Fatalf("CollectErrors batch errored: %v", err)
	}
	if br.Stats.Programs != 2 || br.Stats.Failed != 1 {
		t.Errorf("stats: %d programs %d failed, want 2/1", br.Stats.Programs, br.Stats.Failed)
	}
	if br.Programs[0] == nil || br.Programs[2] == nil {
		t.Error("healthy sources must compile")
	}
	if br.Programs[1] != nil || br.Errs[1] == nil {
		t.Error("slot 1 must hold an error and no program")
	}
	if br.Errs[0] != nil || br.Errs[2] != nil {
		t.Error("healthy slots must have nil errors")
	}
}

// The merged pass profile of a batch must equal the sum of its programs'
// individual profiles.
func TestCompileBatchPassTotals(t *testing.T) {
	srcs := batchTestSources(t)
	cfg := Config{Dynamic: true, Optimize: true, CompileWorkers: 3}
	br, err := CompileBatch(srcs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := map[string]int{}
	for _, c := range br.Programs {
		for _, st := range c.Stats {
			wantRuns[st.Pass] += st.Runs
		}
	}
	if len(br.Stats.PassTotals) != len(wantRuns) {
		t.Errorf("merged rows: %d, want %d", len(br.Stats.PassTotals), len(wantRuns))
	}
	for _, st := range br.Stats.PassTotals {
		if st.Runs != wantRuns[st.Pass] {
			t.Errorf("pass %s: merged runs %d, want %d", st.Pass, st.Runs, wantRuns[st.Pass])
		}
		if st.Duration <= 0 {
			t.Errorf("pass %s: merged duration not positive", st.Pass)
		}
	}
}

// The shared-front-end stress: many goroutines compiling the same sources
// through Compile and CompileBatch simultaneously must produce
// byte-identical artifacts and identical pass lists. Run under -race (make
// check) this is the proof that the interned token/keyword tables, the
// types universe and the rest of the pipeline share no hidden mutable
// state.
func TestCompileRaceBatchVsSerial(t *testing.T) {
	srcs := batchTestSources(t)
	cfg := Config{Dynamic: true, Optimize: true}

	want := make([]string, len(srcs))
	wantPasses := make([]string, len(srcs))
	for i, src := range srcs {
		c, err := Compile(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fingerprint(c)
		wantPasses[i] = strings.Join(passNames(c), ",")
	}

	const goroutines = 8
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				if g%2 == 0 {
					i := (g/2 + round) % len(srcs)
					c, err := Compile(srcs[i], cfg)
					if err != nil {
						t.Errorf("concurrent Compile: %v", err)
						return
					}
					if fingerprint(c) != want[i] {
						t.Errorf("concurrent Compile of source %d diverged", i)
						return
					}
				} else {
					bcfg := cfg
					bcfg.CompileWorkers = 4
					br, err := CompileBatch(srcs, bcfg)
					if err != nil {
						t.Errorf("concurrent CompileBatch: %v", err)
						return
					}
					for i, c := range br.Programs {
						if fingerprint(c) != want[i] {
							t.Errorf("concurrent CompileBatch source %d diverged", i)
							return
						}
						if got := strings.Join(passNames(c), ","); got != wantPasses[i] {
							t.Errorf("concurrent CompileBatch source %d pass list %q, want %q",
								i, got, wantPasses[i])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// An empty batch is a valid no-op.
func TestCompileBatchEmpty(t *testing.T) {
	br, err := CompileBatch(nil, Config{Dynamic: true, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Programs) != 0 || br.Stats.Programs != 0 {
		t.Error("empty batch must produce nothing")
	}
}
