package stitcher

import (
	"sort"

	"dyncc/internal/vm"
)

// registerActions implements the paper's section 5 extension: after
// stitching, array/stack words addressed entirely by run-time-constant
// offsets are promoted to reserved registers, eliminating their loads,
// stores and address arithmetic (a variation of Wall's link-time register
// actions). The pass is conservative: it first folds constant address
// arithmetic into load/store offsets, then promotes frame slots only when
// every remaining memory access in the stitched code is frame-relative, so
// no alias can observe the promoted slots. Promoted slots are flushed back
// to memory before every region exit and return.
func (st *stitch) registerActions() {
	st.foldAddresses()

	code := st.out
	// All memory operations must be SP-relative for promotion to be sound.
	type slotUse struct{ count int }
	slots := map[int64]*slotUse{}
	for _, in := range code {
		switch in.Op {
		case vm.LD:
			if in.Rs != vm.RSP {
				return
			}
			u := slots[in.Imm]
			if u == nil {
				u = &slotUse{}
				slots[in.Imm] = u
			}
			u.count++
		case vm.ST:
			if in.Rs != vm.RSP {
				return
			}
			u := slots[in.Imm]
			if u == nil {
				u = &slotUse{}
				slots[in.Imm] = u
			}
			u.count++
		case vm.CALL, vm.DYNENTER, vm.DYNSTITCH:
			// A call could re-enter arbitrary code; keep it simple.
			return
		}
	}
	if len(slots) == 0 {
		return
	}
	// Pick the most-used slots, up to the reserved register budget.
	type cand struct {
		slot  int64
		count int
	}
	var cands []cand
	for s, u := range slots {
		cands = append(cands, cand{s, u.count})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].count != cands[j].count {
			return cands[i].count > cands[j].count
		}
		return cands[i].slot < cands[j].slot
	})
	budget := int(vm.RPromoLast - vm.RPromo0 + 1)
	if len(cands) > budget {
		cands = cands[:budget]
	}
	promo := map[int64]vm.Reg{}
	for i, c := range cands {
		promo[c.slot] = vm.RPromo0 + vm.Reg(i)
	}

	// Rewrite: preload at entry, replace accesses, flush at exits.
	var out []vm.Inst
	remap := make([]int, len(code)+1)
	var preload []vm.Inst
	for _, c := range cands {
		preload = append(preload, vm.Inst{Op: vm.LD, Rd: promo[c.slot], Rs: vm.RSP, Imm: c.slot})
	}
	flush := func() {
		for _, c := range cands {
			out = append(out, vm.Inst{Op: vm.ST, Rs: vm.RSP, Imm: c.slot, Rt: promo[c.slot]})
		}
	}
	out = append(out, preload...)
	for i, in := range code {
		remap[i] = len(out)
		switch in.Op {
		case vm.LD:
			if r, ok := promo[in.Imm]; ok {
				out = append(out, vm.Inst{Op: vm.MOV, Rd: in.Rd, Rs: r})
				st.stats.LoadsPromoted++
				continue
			}
		case vm.ST:
			if r, ok := promo[in.Imm]; ok {
				out = append(out, vm.Inst{Op: vm.MOV, Rd: r, Rs: in.Rt})
				st.stats.StoresPromoted++
				continue
			}
		case vm.XFER, vm.RET:
			flush()
		}
		out = append(out, in)
	}
	remap[len(code)] = len(out)
	for i := range out {
		switch out[i].Op {
		case vm.BEQZ, vm.BNEZ, vm.BEQI, vm.BR:
			out[i].Target = remap[out[i].Target]
		}
	}
	st.out = out
}

// foldAddresses folds `ADDI x, y, c` into a following frame/array access
// `LD rd,[x+k]` / `ST [x+k],rt` as `[y + c+k]`, when x is consumed only by
// that access within the same straight-line span. This recovers the
// [base + run-time-constant] shape that register promotion needs.
func (st *stitch) foldAddresses() {
	for i := 0; i < 4; i++ {
		if st.foldAddressesOnce() == 0 {
			break
		}
	}
}

func (st *stitch) foldAddressesOnce() int {
	folded := 0
	code := st.out
	// Branch targets break straight-line spans.
	target := make([]bool, len(code)+1)
	for _, in := range code {
		switch in.Op {
		case vm.BEQZ, vm.BNEZ, vm.BEQI, vm.BR:
			if in.Target >= 0 && in.Target < len(target) {
				target[in.Target] = true
			}
		}
	}
	reads := func(in vm.Inst, r vm.Reg) bool {
		if r == vm.RZero {
			return false
		}
		switch in.Op {
		case vm.LI, vm.LDC, vm.BR, vm.RET, vm.XFER, vm.NOP, vm.HALT:
			return false
		case vm.ST:
			return in.Rs == r || in.Rt == r
		case vm.BEQZ, vm.BNEZ, vm.BEQI:
			return in.Rs == r
		case vm.MOV, vm.NEG, vm.NOT, vm.FNEG, vm.ITOF, vm.FTOI, vm.LD, vm.ALLOC:
			return in.Rs == r
		case vm.CALL, vm.DYNENTER, vm.DYNSTITCH:
			return true // conservatively reads everything
		}
		if in.Op.HasImmOperand() {
			return in.Rs == r
		}
		return in.Rs == r || in.Rt == r
	}
	writes := func(in vm.Inst, r vm.Reg) bool {
		switch in.Op {
		case vm.ST, vm.BEQZ, vm.BNEZ, vm.BEQI, vm.BR, vm.RET, vm.XFER, vm.NOP, vm.HALT:
			return false
		}
		return in.Rd == r
	}

	for i := 0; i < len(code); i++ {
		in := code[i]
		var x, y vm.Reg
		var c int64
		switch {
		case in.Op == vm.ADDI && in.Rd != vm.RSP && in.Rd != in.Rs:
			x, y, c = in.Rd, in.Rs, in.Imm
		case in.Op == vm.MOV && in.Rd != vm.RSP && in.Rd != in.Rs:
			x, y, c = in.Rd, in.Rs, 0
		default:
			continue
		}
		// Scan forward: every use of x must be a foldable base (load/store
		// address or a further ADDI), x must be provably dead at span end
		// (redefined, or flow leaves), and y must stay unchanged meanwhile.
		var consumers []int
		foldable := true
		deadAfter := false
		for j := i + 1; j < len(code) && foldable && !deadAfter; j++ {
			if target[j] {
				foldable = false
				break
			}
			cj := code[j]
			if reads(cj, x) {
				if (cj.Op == vm.LD && cj.Rs == x && cj.Rd != y) ||
					(cj.Op == vm.ST && cj.Rs == x && cj.Rt != x) ||
					(cj.Op == vm.ADDI && cj.Rs == x && cj.Rd != y && cj.Rd != x) ||
					(cj.Op == vm.MOV && cj.Rs == x && cj.Rd != y && cj.Rd != x) {
					consumers = append(consumers, j)
				} else {
					foldable = false
					break
				}
			}
			if writes(cj, x) {
				deadAfter = true
				break
			}
			if writes(cj, y) {
				foldable = false
				break
			}
			switch cj.Op {
			case vm.RET, vm.XFER:
				deadAfter = true
			case vm.BR, vm.BEQZ, vm.BNEZ, vm.BEQI, vm.JTBL:
				// A branch may carry x live to its target.
				foldable = false
			}
		}
		if !foldable || len(consumers) == 0 || !deadAfter {
			continue
		}
		for _, j := range consumers {
			switch code[j].Op {
			case vm.MOV:
				// mov z, x  becomes  addi z, y, c  (or mov when c == 0).
				if c == 0 {
					code[j] = vm.Inst{Op: vm.MOV, Rd: code[j].Rd, Rs: y}
				} else {
					code[j] = vm.Inst{Op: vm.ADDI, Rd: code[j].Rd, Rs: y, Imm: c}
				}
			default:
				code[j].Rs = y
				code[j].Imm += c
			}
		}
		code[i] = vm.Inst{Op: vm.NOP}
		folded++
	}
	// Strip the NOPs.
	st.stripNops()
	return folded
}

// stripNops compacts the emission in place (no allocation on warm
// scratch), remapping intra-segment branch targets.
func (st *stitch) stripNops() {
	code := st.out
	newpc := growInts(st.pcBuf, len(code)+1)
	st.pcBuf = newpc
	n := 0
	for i, in := range code {
		newpc[i] = n
		if in.Op != vm.NOP {
			n++
		}
	}
	newpc[len(code)] = n
	w := 0
	for _, in := range code {
		if in.Op == vm.NOP {
			continue
		}
		switch in.Op {
		case vm.BEQZ, vm.BNEZ, vm.BEQI, vm.BR:
			in.Target = newpc[in.Target]
		}
		code[w] = in
		w++
	}
	st.out = code[:w]
}
