package stitcher

import (
	"testing"

	"dyncc/internal/stencil"
	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// benchRegion hand-builds a region shaped like the stitcher's typical
// workload: a preheader with a region-table hole, then an unrolled loop of
// `iters` linked records, each contributing a patched body copy. Record
// layout: slot 0 = per-iteration hole value, slot 1 = continue flag,
// slot 2 = next-record link; the terminal record's flag is 0.
func benchRegion(iters int) (*tmpl.Region, []int64, int64) {
	const (
		tbl     = 8
		recBase = 16
		recSize = 3
	)
	mem := make([]int64, recBase+recSize*(iters+1))
	mem[tbl+0] = 7       // preheader hole value
	mem[tbl+1] = recBase // loop header record
	for i := 0; i <= iters; i++ {
		r := recBase + recSize*i
		mem[r+0] = int64(3*i + 1)
		if i < iters {
			mem[r+1] = 1
		}
		mem[r+2] = int64(r + recSize)
	}
	region := &tmpl.Region{
		Index: 0,
		Name:  "bench:r0",
		Blocks: []*tmpl.Block{
			{ // preheader
				Code:   []vm.Inst{{Op: vm.ADDI, Rd: 21, Rs: 20}},
				Holes:  []tmpl.Hole{{Pc: 0, Slot: tmpl.SlotRef{LoopID: -1, Slot: 0}}},
				Term:   tmpl.Term{Kind: tmpl.TermJump, Succs: []tmpl.Edge{{Block: 1}}},
				LoopID: -1,
			},
			{ // loop head: continue flag decides body vs region exit
				Code: []vm.Inst{{Op: vm.ADDI, Rd: 22, Rs: 22, Imm: 1}},
				Term: tmpl.Term{Kind: tmpl.TermBr,
					ConstSlot: &tmpl.SlotRef{LoopID: 0, Slot: 1},
					Succs:     []tmpl.Edge{{Block: 2}, {Block: -1, ExitPC: 9}}},
				LoopID: 0,
			},
			{ // body + latch: one hole patched per unrolled iteration
				Code: []vm.Inst{
					{Op: vm.ADDI, Rd: 21, Rs: 21},
					{Op: vm.XORI, Rd: 22, Rs: 21, Imm: 5},
				},
				Holes:  []tmpl.Hole{{Pc: 0, Slot: tmpl.SlotRef{LoopID: 0, Slot: 0}}},
				Term:   tmpl.Term{Kind: tmpl.TermJump, Succs: []tmpl.Edge{{Block: 1}}},
				LoopID: 0,
			},
		},
		Loops: []*tmpl.Loop{{
			ID: 0, ParentID: -1,
			HeaderSlot: tmpl.SlotRef{LoopID: -1, Slot: 1},
			NextSlot:   2, RecordSize: recSize,
			HeadBlock: 1, LatchBlock: 2,
		}},
		Entry: 0,
	}
	return region, mem, tbl
}

// withStencil attaches the precompiled copy-and-patch form, as the
// `stencil` pipeline pass would.
func withStencil(tb testing.TB, region *tmpl.Region) {
	s, err := stencil.Build(region)
	if err != nil {
		tb.Fatal(err)
	}
	region.Stencil = s
}

// TestBenchRegionIdentity pins the benchmark's two subjects to byte
// identity: the hand-built loop region must stitch to the same segment on
// both paths (testgen covers compiler-produced regions; this covers the
// synthetic one the benchmarks time).
func TestBenchRegionIdentity(t *testing.T) {
	parent := &vm.Segment{Name: "f", Code: make([]vm.Inst, 20), Region: -1}

	interp, mem, tbl := benchRegion(32)
	iseg, istats, err := Stitch(interp, mem, tbl, parent, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sten, _, _ := benchRegion(32)
	withStencil(t, sten)
	sseg, sstats, err := Stitch(sten, mem, tbl, parent, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if istats.StencilPath || !sstats.StencilPath {
		t.Fatalf("path mix-up: interp=%v stencil=%v", istats.StencilPath, sstats.StencilPath)
	}
	if sstats.LoopIterations != 32 || sstats.HolesPatched != 33 {
		t.Errorf("stencil stitch did %d iterations, %d holes; want 32, 33",
			sstats.LoopIterations, sstats.HolesPatched)
	}
	if len(iseg.Code) != len(sseg.Code) {
		t.Fatalf("code length diverges: %d vs %d", len(iseg.Code), len(sseg.Code))
	}
	for i := range iseg.Code {
		if iseg.Code[i] != sseg.Code[i] {
			t.Fatalf("code[%d] diverges: %+v vs %+v", i, iseg.Code[i], sseg.Code[i])
		}
	}
	if len(iseg.Consts) != len(sseg.Consts) {
		t.Fatalf("const pool diverges: %v vs %v", iseg.Consts, sseg.Consts)
	}
}

// TestStitchStencilWarmZeroAllocs is the fast path's allocation budget:
// emission on warm scratch (everything up to segment materialization) must
// not allocate at all. A private scratch stands in for the pool so GC
// clearing sync.Pool cannot flake the count.
func TestStitchStencilWarmZeroAllocs(t *testing.T) {
	region, mem, tbl := benchRegion(32)
	withStencil(t, region)
	sc := new(scratch)
	st := &sc.st
	emit := func() {
		st.begin(region, mem, tbl, Options{})
		if err := st.emit(); err != nil {
			t.Fatal(err)
		}
	}
	emit() // grow every buffer to its steady state
	if n := testing.AllocsPerRun(50, emit); n != 0 {
		t.Errorf("warm stencil emission allocates %.1f objects per stitch, want 0", n)
	}
}

func benchStitch(b *testing.B, precompiled bool) {
	region, mem, tbl := benchRegion(32)
	if precompiled {
		withStencil(b, region)
	}
	parent := &vm.Segment{Name: "f", Code: make([]vm.Inst, 20), Region: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Stitch(region, mem, tbl, parent, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDryStitch(b *testing.B, precompiled bool) {
	region, mem, tbl := benchRegion(32)
	if precompiled {
		withStencil(b, region)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DryStitch(region, mem, tbl, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStitch times a full interpretive stitch of the 32-iteration
// loop region (emission + segment materialization).
func BenchmarkStitch(b *testing.B) { benchStitch(b, false) }

// BenchmarkStitchStencil times the same stitch on the copy-and-patch fast
// path.
func BenchmarkStitchStencil(b *testing.B) { benchStitch(b, true) }

// BenchmarkDryStitch isolates interpretive emission (no segment built).
func BenchmarkDryStitch(b *testing.B) { benchDryStitch(b, false) }

// BenchmarkDryStitchStencil isolates fast-path emission; warm, this is the
// allocation-free loop the zero-allocs test pins.
func BenchmarkDryStitchStencil(b *testing.B) { benchDryStitch(b, true) }
