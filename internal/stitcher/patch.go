package stitcher

import (
	"math/bits"

	"dyncc/internal/vm"
)

// patch emits instruction in with hole value v filled. Integer values that
// fit the immediate field are patched directly; oversized values are routed
// through the linearized large-constant table (paper section 4); multiplies
// and unsigned divides/mods by suitable constants are strength-reduced.
func (st *stitch) patch(in vm.Inst, v int64) {
	switch in.Op {
	case vm.LDC:
		in.Imm = st.largeConst(v)
		st.add(in)
	case vm.LI:
		if vm.FitsImm(v) {
			in.Imm = v
			st.add(in)
		} else {
			st.add(vm.Inst{Op: vm.LDC, Rd: in.Rd, Imm: st.largeConst(v)})
		}
	default:
		if !st.opts.NoStrengthReduction && st.strengthReduce(in, v) {
			return
		}
		if vm.FitsImm(v) {
			in.Imm = v
			st.add(in)
			return
		}
		// Too large for the immediate field: load it from the linearized
		// table into the stitcher's scratch register and use the
		// register-register form.
		st.add(vm.Inst{Op: vm.LDC, Rd: vm.RScratch, Imm: st.largeConst(v)})
		st.add(vm.Inst{Op: vm.ImmToRegForm(in.Op), Rd: in.Rd, Rs: in.Rs, Rt: vm.RScratch})
	}
}

// csdTerm is one ±2^shift term of a canonical-signed-digit decomposition.
type csdTerm struct {
	shift int64
	neg   bool
}

// csdMaxTerms bounds the decomposition; beyond it a multiply is cheaper
// anyway.
const csdMaxTerms = 16

// csdTerms returns the canonical-signed-digit decomposition of v — a
// minimal-ish set of ±2^k terms summing to v — and whether the
// decomposition is complete within the term budget. The terms come back in
// a fixed-size value (no heap allocation: this runs once per patched
// multiply on the stitcher's hot path).
func csdTerms(v int64) (terms [csdMaxTerms]csdTerm, n int, complete bool) {
	u := v
	k := int64(0)
	for u != 0 && n < csdMaxTerms {
		if u&1 != 0 {
			// Choose digit +1 or -1 so the remaining value stays even
			// with a long run of zeros (u mod 4 == 1 → +1, == 3 → -1).
			if u&3 == 3 {
				terms[n] = csdTerm{k, true}
				u++
			} else {
				terms[n] = csdTerm{k, false}
				u--
			}
			n++
		}
		u >>= 1
		k++
	}
	return terms, n, u == 0
}

// emitCSD rewrites rd = rs * v as a chain of shifts and adds/subs when that
// is cheaper than the modeled multiply. Uses the stitcher scratch
// registers; rs is never clobbered before its last read.
func (st *stitch) emitCSD(rd, rs vm.Reg, v int64) bool {
	terms, n, complete := csdTerms(v)
	if n == 0 || !complete {
		return false
	}
	cost := uint64(2*n - 1)
	if n == 1 && !terms[0].neg {
		cost = 1
	}
	if cost+1 >= vm.CostMul { // +1 for a possible final move
		return false
	}
	// Accumulate into a target that cannot alias rs.
	acc := rd
	if rd == rs {
		acc = vm.RScratch2
	}
	// Highest term first.
	last := n - 1
	st.add(vm.Inst{Op: vm.SHLI, Rd: acc, Rs: rs, Imm: terms[last].shift})
	if terms[last].neg {
		st.add(vm.Inst{Op: vm.NEG, Rd: acc, Rs: acc})
	}
	for i := last - 1; i >= 0; i-- {
		t := terms[i]
		op := vm.ADD
		if t.neg {
			op = vm.SUB
		}
		if t.shift == 0 {
			st.add(vm.Inst{Op: op, Rd: acc, Rs: acc, Rt: rs})
			continue
		}
		st.add(vm.Inst{Op: vm.SHLI, Rd: vm.RScratch, Rs: rs, Imm: t.shift})
		st.add(vm.Inst{Op: op, Rd: acc, Rs: acc, Rt: vm.RScratch})
	}
	if acc != rd {
		st.add(vm.Inst{Op: vm.MOV, Rd: rd, Rs: acc})
	}
	return true
}

func isPow2(v int64) bool { return v > 0 && v&(v-1) == 0 }

func log2(v int64) int64 { return int64(bits.TrailingZeros64(uint64(v))) }

// strengthReduce rewrites an immediate ALU instruction using the actual
// constant value: multiplies become shifts/adds/subs; unsigned divisions
// and moduli by powers of two become shifts and bitwise ands.
func (st *stitch) strengthReduce(in vm.Inst, v int64) bool {
	done := func() bool {
		st.stats.StrengthReductions++
		return true
	}
	switch in.Op {
	case vm.MULI:
		switch {
		case v == 0:
			st.add(vm.Inst{Op: vm.LI, Rd: in.Rd, Imm: 0})
			return done()
		case v == 1:
			st.add(vm.Inst{Op: vm.MOV, Rd: in.Rd, Rs: in.Rs})
			return done()
		case v == -1:
			st.add(vm.Inst{Op: vm.NEG, Rd: in.Rd, Rs: in.Rs})
			return done()
		case isPow2(v):
			st.add(vm.Inst{Op: vm.SHLI, Rd: in.Rd, Rs: in.Rs, Imm: log2(v)})
			return done()
		default:
			if st.emitCSD(in.Rd, in.Rs, v) {
				return done()
			}
		}
	case vm.UDIVI:
		if isPow2(v) {
			st.add(vm.Inst{Op: vm.SHRUI, Rd: in.Rd, Rs: in.Rs, Imm: log2(v)})
			return done()
		}
	case vm.UMODI:
		if isPow2(v) && vm.FitsImm(v-1) {
			st.add(vm.Inst{Op: vm.ANDI, Rd: in.Rd, Rs: in.Rs, Imm: v - 1})
			return done()
		}
	case vm.ADDI, vm.SUBI, vm.ORI, vm.XORI:
		if v == 0 {
			st.add(vm.Inst{Op: vm.MOV, Rd: in.Rd, Rs: in.Rs})
			return done()
		}
	}
	return false
}

// peephole removes branches to the next instruction and folds conditional
// jumps over unconditional branches, remapping all intra-segment targets.
// XFER targets point into the parent segment and are left alone. The
// compaction runs in place over pooled scratch — no allocation on warm
// buffers.
func (st *stitch) peephole() {
	code := st.out
	for i := 0; i+1 < len(code); i++ {
		c := code[i]
		n := code[i+1]
		if (c.Op == vm.BNEZ || c.Op == vm.BEQZ) && n.Op == vm.BR && c.Target == i+2 {
			inv := vm.BEQZ
			if c.Op == vm.BEQZ {
				inv = vm.BNEZ
			}
			code[i] = vm.Inst{Op: inv, Rs: c.Rs, Target: n.Target}
			code[i+1] = vm.Inst{Op: vm.NOP}
		}
	}
	keep := growBools(st.keepBuf, len(code))
	st.keepBuf = keep
	for i, in := range code {
		keep[i] = in.Op != vm.NOP && !(in.Op == vm.BR && in.Target == i+1)
	}
	// Keep deleting newly-trivial branches until stable (a BR chain can
	// collapse in multiple steps). Conservative single extra pass.
	newpc := growInts(st.pcBuf, len(code)+1)
	st.pcBuf = newpc
	n := 0
	for i := range code {
		newpc[i] = n
		if keep[i] {
			n++
		}
	}
	newpc[len(code)] = n
	w := 0
	for i, in := range code {
		if !keep[i] {
			continue
		}
		switch in.Op {
		case vm.BEQZ, vm.BNEZ, vm.BEQI, vm.BR:
			in.Target = newpc[in.Target]
		}
		code[w] = in
		w++
	}
	st.out = code[:w]
}
