// Package stitcher implements the paper's dynamic compiler (section 4).
// Given the machine-code templates, directives and the run-time constants
// table computed by set-up code, the stitcher copies templates into an
// executable code segment, patching holes with constant values, resolving
// constant branches (dead-code elimination), completely unrolling annotated
// loops by walking the per-iteration linked table records, maintaining a
// linearized table for large and non-integer constants, and applying
// peephole strength reduction that exploits the actual constant values.
package stitcher

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// Options control optional stitcher behaviour.
type Options struct {
	// NoStrengthReduction disables the value-based peephole rewrites
	// (ablation switch; the paper's Table 3 "strength reduction" column).
	NoStrengthReduction bool
	// NoFuse disables post-stitch superinstruction fusion (ablation
	// switch; fusion is host-side only and modeled-cost neutral).
	NoFuse bool
	// RegisterActions enables the Wall-style register-action extension
	// (paper section 5): promotion of stack/array slots addressed by
	// run-time-constant offsets into reserved registers.
	RegisterActions bool
}

// Stats reports what one stitch did.
type Stats struct {
	InstsStitched      int
	HolesPatched       int
	BranchesResolved   int // constant branches eliminated (dead code elim)
	LoopIterations     int // unrolled copies emitted
	StrengthReductions int
	LargeConsts        int
	LoadsPromoted      int // register actions: loads replaced by registers
	StoresPromoted     int
	CyclesModeled      uint64
	Fusion             vm.FuseStats // post-stitch superinstruction fusion
}

// Modeled cycle costs of stitcher work, charged per action. The stitcher
// itself is host code; these constants stand in for the directive
// interpreter the paper measures (whose cost dominates its Table 2
// overhead column).
const (
	costPerInst   = 6  // copy one template instruction
	costPerHole   = 10 // patch one hole (table lookup + encode)
	costPerBlock  = 12 // directive bookkeeping per block visited
	costPerBranch = 8  // resolve a constant branch
	costPerIter   = 14 // advance to the next loop record
	costPerLConst = 6  // install a large constant
)

// scratch holds the per-stitch working structures. Stitching is bursty —
// a server warming K specializations runs the stitcher K times back to
// back — so the maps and emit buffers are pooled rather than reallocated
// per call. The final code/consts are copied into exact-size slices for
// the segment, so pooled buffers never escape.
type scratch struct {
	out     []vm.Inst
	consts  []int64
	emitted map[string]int
	cindex  map[int64]int
	loops   map[int]*tmpl.Loop
}

var scratchPool = sync.Pool{
	New: func() any {
		return &scratch{
			emitted: make(map[string]int, 64),
			cindex:  make(map[int64]int, 16),
			loops:   make(map[int]*tmpl.Loop, 8),
		}
	},
}

// Stitch instantiates region's templates against the run-time constants
// table at tableBase in mem, producing an executable segment whose exits
// XFER back into parent. Stitch is safe to call concurrently (the runtime
// singleflights concurrent stitches of the same specialization, but
// distinct specializations may stitch in parallel).
func Stitch(region *tmpl.Region, mem []int64, tableBase int64,
	parent *vm.Segment, opts Options) (*vm.Segment, *Stats, error) {

	sc := scratchPool.Get().(*scratch)
	clear(sc.emitted)
	clear(sc.cindex)
	clear(sc.loops)
	st := &stitch{
		r:       region,
		mem:     mem,
		tbl:     tableBase,
		opts:    opts,
		out:     sc.out[:0],
		consts:  sc.consts[:0],
		emitted: sc.emitted,
		cindex:  sc.cindex,
		loops:   sc.loops,
		stats:   &Stats{},
	}
	defer func() {
		// Keep whatever (possibly grown) buffers the stitch ended with.
		sc.out, sc.consts = st.out, st.consts
		scratchPool.Put(sc)
	}()

	// Precompute loop lookup tables.
	for _, l := range region.Loops {
		st.loops[l.ID] = l
	}

	entryPC, err := st.emitBlock(region.Entry, map[int]int64{})
	if err != nil {
		return nil, nil, err
	}
	if entryPC != 0 {
		return nil, nil, fmt.Errorf("stitch: entry not at pc 0")
	}
	st.peephole()
	for i := 0; i < 4; i++ {
		if vm.DeadWriteNops(st.out) == 0 {
			break
		}
		st.stripNops()
	}

	if opts.RegisterActions {
		st.registerActions()
	}

	st.stats.InstsStitched = len(st.out)
	st.stats.CyclesModeled += uint64(costPerInst * len(st.out))

	code := make([]vm.Inst, len(st.out))
	copy(code, st.out)
	if !opts.NoFuse {
		// Superinstruction fusion on the finished stitch. Runs after the
		// stats above so Table 2/3 report the pre-fusion stitch work;
		// modeled guest cycles are unchanged by construction. Stitched
		// code has uniform attribution, no entry markers and no jump
		// tables; its XFERs target the parent and are left alone.
		fr := vm.Fuse(code, vm.FuseOptions{})
		code = fr.Code
		st.stats.Fusion = fr.Stats
	}
	var consts []int64
	if len(st.consts) > 0 {
		consts = make([]int64, len(st.consts))
		copy(consts, st.consts)
	}
	seg := &vm.Segment{
		Name:     region.Name + ".stitched",
		Code:     code,
		Consts:   consts,
		Parent:   parent,
		Region:   region.Index,
		Stitched: true,
	}
	seg.Prepare() // pay plan derivation at stitch time, not first run
	return seg, st.stats, nil
}

type stitch struct {
	r    *tmpl.Region
	mem  []int64
	tbl  int64
	opts Options

	out     []vm.Inst
	consts  []int64
	cindex  map[int64]int
	emitted map[string]int
	loops   map[int]*tmpl.Loop
	stats   *Stats
}

func (st *stitch) add(in vm.Inst) int {
	st.out = append(st.out, in)
	return len(st.out) - 1
}

// chain returns the enclosing-loop ids of block bi, innermost first.
func (st *stitch) chain(bi int) []int {
	var ids []int
	id := st.r.Blocks[bi].LoopID
	for id >= 0 {
		ids = append(ids, id)
		id = st.loops[id].ParentID
	}
	return ids
}

func inChain(chain []int, id int) bool {
	for _, c := range chain {
		if c == id {
			return true
		}
	}
	return false
}

// ctxKey identifies one emission of a block: the block plus the active
// iteration records of its enclosing unrolled loops.
func (st *stitch) ctxKey(bi int, ctx map[int]int64) string {
	ids := st.chain(bi)
	sort.Ints(ids)
	var sb strings.Builder
	fmt.Fprintf(&sb, "b%d", bi)
	for _, id := range ids {
		fmt.Fprintf(&sb, "|%d:%d", id, ctx[id])
	}
	return sb.String()
}

// slotAddr resolves a table slot reference against the active records.
func (st *stitch) slotAddr(ref tmpl.SlotRef, ctx map[int]int64) (int64, error) {
	base := st.tbl
	if ref.LoopID >= 0 {
		rec, ok := ctx[ref.LoopID]
		if !ok {
			return 0, fmt.Errorf("stitch: no active record for loop %d", ref.LoopID)
		}
		base = rec
	}
	a := base + int64(ref.Slot)
	if a < 0 || a >= int64(len(st.mem)) {
		return 0, fmt.Errorf("stitch: table slot out of bounds (%d)", a)
	}
	return a, nil
}

func (st *stitch) readSlot(ref tmpl.SlotRef, ctx map[int]int64) (int64, error) {
	a, err := st.slotAddr(ref, ctx)
	if err != nil {
		return 0, err
	}
	return st.mem[a], nil
}

// largeConst interns v in the linearized large-constant table.
func (st *stitch) largeConst(v int64) int64 {
	if i, ok := st.cindex[v]; ok {
		return int64(i)
	}
	i := len(st.consts)
	st.consts = append(st.consts, v)
	st.cindex[v] = i
	st.stats.LargeConsts++
	st.stats.CyclesModeled += costPerLConst
	return int64(i)
}

// transition computes the record context for following the edge from -> to,
// reading header slots when entering loops and advancing along the record
// chain on back edges.
func (st *stitch) transition(from, to int, ctx map[int]int64) (map[int]int64, error) {
	fromChain := st.chain(from)
	toChain := st.chain(to)
	nctx := map[int]int64{}
	for id, rec := range ctx {
		if inChain(toChain, id) {
			nctx[id] = rec
		}
	}
	// Entering loops: outermost-first so parent records resolve.
	var entering []int
	for _, id := range toChain {
		if !inChain(fromChain, id) {
			entering = append(entering, id)
		}
	}
	for i := len(entering) - 1; i >= 0; i-- {
		l := st.loops[entering[i]]
		if l.HeadBlock != to {
			return nil, fmt.Errorf("stitch: loop %d entered at non-head block %d", l.ID, to)
		}
		rec, err := st.readSlot(l.HeaderSlot, nctx)
		if err != nil {
			return nil, err
		}
		nctx[l.ID] = rec
	}
	// Back edge: advance to the next record (RESTART_LOOP).
	for _, id := range toChain {
		l := st.loops[id]
		if l.HeadBlock == to && inChain(fromChain, id) {
			rec := nctx[id]
			a := rec + int64(l.NextSlot)
			if a < 0 || a >= int64(len(st.mem)) {
				return nil, fmt.Errorf("stitch: record link out of bounds (%d)", a)
			}
			nctx[id] = st.mem[a]
			st.stats.LoopIterations++
			st.stats.CyclesModeled += costPerIter
		}
	}
	return nctx, nil
}

// emitEdge emits (or reuses) the code for following edge e out of block
// `from` and returns the target pc.
func (st *stitch) emitEdge(from int, e tmpl.Edge, ctx map[int]int64) (int, error) {
	if e.Block < 0 {
		// Region exit: a transfer stub back into the enclosing function.
		pc := st.add(vm.Inst{Op: vm.XFER, Target: e.ExitPC})
		return pc, nil
	}
	nctx, err := st.transition(from, e.Block, ctx)
	if err != nil {
		return 0, err
	}
	return st.emitBlock(e.Block, nctx)
}

// emitBlock instantiates block bi under record context ctx (memoized).
func (st *stitch) emitBlock(bi int, ctx map[int]int64) (int, error) {
	key := st.ctxKey(bi, ctx)
	if pc, ok := st.emitted[key]; ok {
		return pc, nil
	}
	start := len(st.out)
	st.emitted[key] = start
	st.stats.CyclesModeled += costPerBlock

	b := st.r.Blocks[bi]
	holeAt := map[int]tmpl.Hole{}
	for _, h := range b.Holes {
		holeAt[h.Pc] = h
	}
	for pc, in := range b.Code {
		if h, ok := holeAt[pc]; ok {
			v, err := st.readSlot(h.Slot, ctx)
			if err != nil {
				return 0, err
			}
			st.patch(in, v)
			st.stats.HolesPatched++
			st.stats.CyclesModeled += costPerHole
		} else {
			st.add(in)
		}
	}

	t := b.Term
	switch t.Kind {
	case tmpl.TermRet:
		st.add(vm.Inst{Op: vm.RET})

	case tmpl.TermJump:
		brPC := st.add(vm.Inst{Op: vm.BR})
		tpc, err := st.emitEdge(bi, t.Succs[0], ctx)
		if err != nil {
			return 0, err
		}
		st.out[brPC].Target = tpc

	case tmpl.TermBr:
		if t.ConstSlot != nil {
			// CONST_BRANCH: resolve now; the untaken path is dead code.
			v, err := st.readSlot(*t.ConstSlot, ctx)
			if err != nil {
				return 0, err
			}
			e := t.Succs[1]
			if v != 0 {
				e = t.Succs[0]
			}
			st.stats.BranchesResolved++
			st.stats.CyclesModeled += costPerBranch
			brPC := st.add(vm.Inst{Op: vm.BR})
			tpc, err := st.emitEdge(bi, e, ctx)
			if err != nil {
				return 0, err
			}
			st.out[brPC].Target = tpc
			break
		}
		bnezPC := st.add(vm.Inst{Op: vm.BNEZ, Rs: t.CondReg})
		brPC := st.add(vm.Inst{Op: vm.BR})
		fpc, err := st.emitEdge(bi, t.Succs[1], ctx)
		if err != nil {
			return 0, err
		}
		tpc, err := st.emitEdge(bi, t.Succs[0], ctx)
		if err != nil {
			return 0, err
		}
		st.out[bnezPC].Target = tpc
		st.out[brPC].Target = fpc

	case tmpl.TermSwitch:
		v, err := st.readSlot(*t.ConstSlot, ctx)
		if err != nil {
			return 0, err
		}
		e := t.Succs[len(t.Cases)] // default
		for i, c := range t.Cases {
			if c == v {
				e = t.Succs[i]
				break
			}
		}
		st.stats.BranchesResolved++
		st.stats.CyclesModeled += costPerBranch
		brPC := st.add(vm.Inst{Op: vm.BR})
		tpc, err := st.emitEdge(bi, e, ctx)
		if err != nil {
			return 0, err
		}
		st.out[brPC].Target = tpc

	default:
		return 0, fmt.Errorf("stitch: unknown terminator kind %d", t.Kind)
	}
	return start, nil
}
