// Package stitcher implements the paper's dynamic compiler (section 4).
// Given the machine-code templates, directives and the run-time constants
// table computed by set-up code, the stitcher copies templates into an
// executable code segment, patching holes with constant values, resolving
// constant branches (dead-code elimination), completely unrolling annotated
// loops by walking the per-iteration linked table records, maintaining a
// linearized table for large and non-integer constants, and applying
// peephole strength reduction that exploits the actual constant values.
//
// The stitcher has two emission paths producing byte-identical segments:
//
//   - The stencil fast path (fast.go) consumes the copy-and-patch stencils
//     the `stencil` pipeline pass precompiled into each region: block
//     bodies are bulk-copied between patch points and every hole, loop
//     transition and terminator follows a precomputed descriptor. Warm, it
//     performs no allocation until the finished segment is materialized.
//   - The interpretive path (this file) walks the raw template structure,
//     re-deriving loop chains and hole positions per emission. It is the
//     semantic reference, the `-disable-pass stencil` ablation baseline,
//     and the fallback for regions without stencils (hand-built test
//     regions, or builds with the pass disabled).
//
// Both paths share the record-context representation (dense per-loop
// windows bump-allocated from an arena), the integer-keyed emission memo
// table, the value-dependent patch logic, and the post-emission cleanup
// passes, which is what makes byte-for-byte equality hold by construction.
package stitcher

import (
	"fmt"
	"sync"

	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// Options control optional stitcher behaviour.
type Options struct {
	// NoStrengthReduction disables the value-based peephole rewrites
	// (ablation switch; the paper's Table 3 "strength reduction" column).
	NoStrengthReduction bool
	// NoFuse disables post-stitch superinstruction fusion (ablation
	// switch; fusion is host-side only and modeled-cost neutral).
	NoFuse bool
	// RegisterActions enables the Wall-style register-action extension
	// (paper section 5): promotion of stack/array slots addressed by
	// run-time-constant offsets into reserved registers.
	RegisterActions bool
}

// Stats reports what one stitch did.
type Stats struct {
	InstsStitched      int
	HolesPatched       int
	BranchesResolved   int // constant branches eliminated (dead code elim)
	LoopIterations     int // unrolled copies emitted
	StrengthReductions int
	LargeConsts        int
	LoadsPromoted      int // register actions: loads replaced by registers
	StoresPromoted     int
	CyclesModeled      uint64
	Fusion             vm.FuseStats // post-stitch superinstruction fusion
	// StencilPath records whether this stitch ran on the precompiled
	// copy-and-patch fast path (false: interpretive fallback). The two
	// paths produce byte-identical segments and identical counters above.
	StencilPath bool
}

// Modeled cycle costs of stitcher work, charged per action. The stitcher
// itself is host code; these constants stand in for the directive
// interpreter the paper measures (whose cost dominates its Table 2
// overhead column).
const (
	costPerInst   = 6  // copy one template instruction
	costPerHole   = 10 // patch one hole (table lookup + encode)
	costPerBlock  = 12 // directive bookkeeping per block visited
	costPerBranch = 8  // resolve a constant branch
	costPerIter   = 14 // advance to the next loop record
	costPerLConst = 6  // install a large constant
)

// Retention caps for pooled scratch state. Stitching is bursty, so buffers
// are pooled across calls — but one pathological stitch (a deeply unrolled
// region) must not pin its high-water marks forever. Anything grown past
// these thresholds is dropped when the scratch returns to the pool.
const (
	maxPooledCode      = 1 << 14 // out buffer, instructions
	maxPooledConsts    = 1 << 10 // large-constant table entries
	maxPooledMemoEnts  = 1 << 12 // memoized block emissions
	maxPooledKeyWords  = 1 << 14 // memo key arena, words
	maxPooledCtxChunks = 8       // record-context arena chunks
)

// scratch holds the per-stitch working state. The stitch struct itself is
// pooled (not just its buffers) so a warm stitch performs no allocation
// before segment materialization.
type scratch struct{ st stitch }

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// Stitch instantiates region's templates against the run-time constants
// table at tableBase in mem, producing an executable segment whose exits
// XFER back into parent. When the region carries a precompiled stencil the
// copy-and-patch fast path is used; otherwise the interpretive path.
// Stitch is safe to call concurrently (the runtime singleflights
// concurrent stitches of the same specialization, but distinct
// specializations may stitch in parallel).
func Stitch(region *tmpl.Region, mem []int64, tableBase int64,
	parent *vm.Segment, opts Options) (*vm.Segment, *Stats, error) {

	sc := scratchPool.Get().(*scratch)
	st := &sc.st
	st.begin(region, mem, tableBase, opts)
	if err := st.emit(); err != nil {
		st.release(sc)
		return nil, nil, err
	}
	seg := st.materialize(parent)
	stats := st.statsVal
	st.release(sc)
	return seg, &stats, nil
}

// DryStitch runs the full emission pipeline — block walk, hole patching,
// branch resolution, loop unrolling, peephole cleanup — without
// materializing a segment. It exists for benchmarks and the allocation
// accounting in bench.StitchPerf: on warm scratch the stencil path's dry
// stitch is allocation-free, so DryStitch isolates emission cost from the
// unavoidable segment/fusion allocations of a real stitch.
func DryStitch(region *tmpl.Region, mem []int64, tableBase int64,
	opts Options) (Stats, error) {

	sc := scratchPool.Get().(*scratch)
	st := &sc.st
	st.begin(region, mem, tableBase, opts)
	err := st.emit()
	if err == nil {
		st.statsVal.InstsStitched = len(st.out)
		st.statsVal.CyclesModeled += uint64(costPerInst * len(st.out))
	}
	stats := st.statsVal
	st.release(sc)
	return stats, err
}

type stitch struct {
	r    *tmpl.Region
	sten *tmpl.Stencil // region's precompiled stencils, nil on the interpretive path
	mem  []int64
	tbl  int64
	opts Options

	out    []vm.Inst
	consts []int64
	cindex map[int64]int

	// Emission memo table: open addressing over integer keys held in a
	// flat arena. A key is the block index followed by the active record
	// address of each enclosing unrolled loop in ascending-id order; it
	// identifies one emission of a block exactly as the old string ctxKey
	// did, without the per-emission fmt/sort/map cost.
	memoSlots   []int32 // hash slot -> memoEntries index, or -1
	memoEntries []memoEntry
	memoKeys    []int64
	keyBuf      []int64

	// Record contexts: dense per-loop windows (index = loop id, value =
	// active record address, -1 = no active record) bump-allocated from a
	// chunked arena so windows never move as the arena grows.
	ctx    ctxArena
	nSlots int // window length: 1 + the region's max loop id

	// Interpretive-path state.
	loopByID []*tmpl.Loop
	fromBuf  []int // chain scratch
	toBuf    []int
	sortBuf  []int
	enterBuf []int

	// Cleanup-pass scratch (peephole, NOP stripping, dead-write marking).
	pcBuf   []int
	keepBuf []bool

	statsVal Stats
	stats    *Stats
}

type memoEntry struct {
	off, n int32 // key: memoKeys[off : off+n]
	pc     int32
}

// begin resets pooled state and binds the stitch to one region/table.
func (st *stitch) begin(region *tmpl.Region, mem []int64, tableBase int64, opts Options) {
	st.r = region
	st.sten = region.Stencil
	st.mem = mem
	st.tbl = tableBase
	st.opts = opts
	st.out = st.out[:0]
	st.consts = st.consts[:0]
	if st.cindex == nil {
		st.cindex = make(map[int64]int, 16)
	} else {
		clear(st.cindex)
	}
	st.memoEntries = st.memoEntries[:0]
	st.memoKeys = st.memoKeys[:0]
	for i := range st.memoSlots {
		st.memoSlots[i] = -1
	}
	st.ctx.reset()
	st.statsVal = Stats{}
	st.stats = &st.statsVal

	if st.sten != nil {
		st.stats.StencilPath = true
		st.nSlots = st.sten.NumLoopSlots
		return
	}
	maxID := -1
	for _, l := range region.Loops {
		if l.ID > maxID {
			maxID = l.ID
		}
	}
	st.nSlots = maxID + 1
	st.loopByID = st.loopByID[:0]
	for i := 0; i <= maxID; i++ {
		st.loopByID = append(st.loopByID, nil)
	}
	for _, l := range region.Loops {
		st.loopByID[l.ID] = l
	}
}

// release trims oversized buffers, drops every reference to caller-owned
// data (the pool must never pin a machine's memory or a region), and
// returns the scratch to the pool.
func (st *stitch) release(sc *scratch) {
	if cap(st.out) > maxPooledCode {
		st.out = nil
	}
	if cap(st.consts) > maxPooledConsts {
		st.consts = nil
	}
	if len(st.cindex) > maxPooledConsts {
		st.cindex = nil
	}
	if cap(st.memoEntries) > maxPooledMemoEnts {
		st.memoEntries, st.memoSlots = nil, nil
	}
	if cap(st.memoKeys) > maxPooledKeyWords {
		st.memoKeys = nil
	}
	st.ctx.trim(maxPooledCtxChunks)
	st.r, st.sten, st.mem, st.stats = nil, nil, nil, nil
	for i := range st.loopByID {
		st.loopByID[i] = nil
	}
	scratchPool.Put(sc)
}

// emit runs block emission from the region entry plus the shared cleanup
// passes, leaving the finished code in st.out.
func (st *stitch) emit() error {
	var entryPC int
	var err error
	if st.sten != nil {
		entryPC, err = st.emitBlockS(int(st.sten.Entry), st.rootCtx())
	} else {
		entryPC, err = st.emitBlock(st.r.Entry, st.rootCtx())
	}
	if err != nil {
		return err
	}
	if entryPC != 0 {
		return fmt.Errorf("stitch: entry not at pc 0")
	}
	st.peephole()
	for i := 0; i < 4; i++ {
		st.keepBuf = growBools(st.keepBuf, len(st.out)+1)
		if vm.DeadWriteNopsBuf(st.out, st.keepBuf) == 0 {
			break
		}
		st.stripNops()
	}
	if st.opts.RegisterActions {
		st.registerActions()
	}
	return nil
}

// materialize copies the finished emission into an exact-size executable
// segment (the only allocations of a warm stencil-path stitch).
func (st *stitch) materialize(parent *vm.Segment) *vm.Segment {
	st.stats.InstsStitched = len(st.out)
	st.stats.CyclesModeled += uint64(costPerInst * len(st.out))

	code := make([]vm.Inst, len(st.out))
	copy(code, st.out)
	if !st.opts.NoFuse {
		// Superinstruction fusion on the finished stitch. Runs after the
		// stats above so Table 2/3 report the pre-fusion stitch work;
		// modeled guest cycles are unchanged by construction. Stitched
		// code has uniform attribution, no entry markers and no jump
		// tables; its XFERs target the parent and are left alone.
		fr := vm.Fuse(code, vm.FuseOptions{})
		code = fr.Code
		st.stats.Fusion = fr.Stats
	}
	var consts []int64
	if len(st.consts) > 0 {
		consts = make([]int64, len(st.consts))
		copy(consts, st.consts)
	}
	seg := &vm.Segment{
		Name:     st.r.Name + ".stitched",
		Code:     code,
		Consts:   consts,
		Parent:   parent,
		Region:   st.r.Index,
		Stitched: true,
	}
	seg.Prepare() // pay plan derivation at stitch time, not first run
	return seg
}

func (st *stitch) add(in vm.Inst) int {
	st.out = append(st.out, in)
	return len(st.out) - 1
}

// ---- record contexts ----

// ctxArena bump-allocates record-context windows in fixed chunks, so
// outstanding windows never move when the arena grows and the chunks are
// reused across stitches.
type ctxArena struct {
	chunks [][]int64
	ci     int // chunk cursor
	off    int // offset within chunks[ci]
}

const ctxChunkWords = 2048

func (a *ctxArena) reset() { a.ci, a.off = 0, 0 }

func (a *ctxArena) trim(maxChunks int) {
	if len(a.chunks) > maxChunks {
		a.chunks = a.chunks[:maxChunks]
	}
}

func (a *ctxArena) alloc(n int) []int64 {
	if n == 0 {
		return nil
	}
	for {
		if a.ci < len(a.chunks) {
			ch := a.chunks[a.ci]
			if a.off+n <= len(ch) {
				w := ch[a.off : a.off+n : a.off+n]
				a.off += n
				return w
			}
			a.ci++
			a.off = 0
			continue
		}
		size := ctxChunkWords
		if n > size {
			size = n
		}
		a.chunks = append(a.chunks, make([]int64, size))
	}
}

// rootCtx returns the entry context: no loop has an active record.
func (st *stitch) rootCtx() []int64 {
	w := st.ctx.alloc(st.nSlots)
	for i := range w {
		w[i] = -1
	}
	return w
}

// ---- emission memo table ----

func memoHash(key []int64) uint64 {
	h := uint64(14695981039346656037) // FNV-1a
	for _, k := range key {
		h ^= uint64(k)
		h *= 1099511628211
	}
	return h
}

func (st *stitch) memoGet(key []int64) (int, bool) {
	n := len(st.memoSlots)
	if n == 0 {
		return 0, false
	}
	mask := uint64(n - 1)
	for i := memoHash(key) & mask; ; i = (i + 1) & mask {
		ei := st.memoSlots[i]
		if ei < 0 {
			return 0, false
		}
		e := &st.memoEntries[ei]
		if int(e.n) == len(key) && keysEqual(st.memoKeys[e.off:e.off+e.n], key) {
			return int(e.pc), true
		}
	}
}

func (st *stitch) memoPut(key []int64, pc int) {
	if len(st.memoSlots) == 0 || (len(st.memoEntries)+1)*4 > len(st.memoSlots)*3 {
		st.memoGrow()
	}
	off := len(st.memoKeys)
	st.memoKeys = append(st.memoKeys, key...)
	st.memoEntries = append(st.memoEntries, memoEntry{off: int32(off), n: int32(len(key)), pc: int32(pc)})
	st.memoInsert(int32(len(st.memoEntries)-1), key)
}

func (st *stitch) memoInsert(ei int32, key []int64) {
	mask := uint64(len(st.memoSlots) - 1)
	i := memoHash(key) & mask
	for st.memoSlots[i] >= 0 {
		i = (i + 1) & mask
	}
	st.memoSlots[i] = ei
}

func (st *stitch) memoGrow() {
	n := len(st.memoSlots) * 2
	if n < 64 {
		n = 64
	}
	if cap(st.memoSlots) >= n {
		st.memoSlots = st.memoSlots[:n]
	} else {
		st.memoSlots = make([]int32, n)
	}
	for i := range st.memoSlots {
		st.memoSlots[i] = -1
	}
	for ei := range st.memoEntries {
		e := &st.memoEntries[ei]
		st.memoInsert(int32(ei), st.memoKeys[e.off:e.off+e.n])
	}
}

func keysEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- shared slot resolution ----

// readRef resolves an integer-coded slot reference (loopID -1 = region
// table, else the loop's active record) and reads its value.
func (st *stitch) readRef(loopID, slot int, ctx []int64) (int64, error) {
	base := st.tbl
	if loopID >= 0 {
		if loopID >= len(ctx) || ctx[loopID] < 0 {
			return 0, fmt.Errorf("stitch: no active record for loop %d", loopID)
		}
		base = ctx[loopID]
	}
	a := base + int64(slot)
	if a < 0 || a >= int64(len(st.mem)) {
		return 0, fmt.Errorf("stitch: table slot out of bounds (%d)", a)
	}
	return st.mem[a], nil
}

func (st *stitch) readSlot(ref tmpl.SlotRef, ctx []int64) (int64, error) {
	return st.readRef(ref.LoopID, ref.Slot, ctx)
}

// largeConst interns v in the linearized large-constant table.
func (st *stitch) largeConst(v int64) int64 {
	if i, ok := st.cindex[v]; ok {
		return int64(i)
	}
	i := len(st.consts)
	st.consts = append(st.consts, v)
	st.cindex[v] = i
	st.stats.LargeConsts++
	st.stats.CyclesModeled += costPerLConst
	return int64(i)
}

// ---- interpretive path ----

// chainInto writes the enclosing-loop ids of block bi into *buf,
// innermost first, and returns the filled slice.
func (st *stitch) chainInto(buf *[]int, bi int) []int {
	ids := (*buf)[:0]
	id := st.r.Blocks[bi].LoopID
	for id >= 0 {
		ids = append(ids, id)
		id = st.loopByID[id].ParentID
	}
	*buf = ids
	return ids
}

func inChain(chain []int, id int) bool {
	for _, c := range chain {
		if c == id {
			return true
		}
	}
	return false
}

// memoKeyI builds the integer memo key for one interpretive emission of
// block bi: the block index, then the active record of each enclosing loop
// in ascending-id order (a tiny insertion sort — chains are a handful of
// ids — replacing the old sort.Ints + strings.Builder key).
func (st *stitch) memoKeyI(bi int, ctx []int64) []int64 {
	ids := st.sortBuf[:0]
	id := st.r.Blocks[bi].LoopID
	for id >= 0 {
		cur := id
		pos := len(ids)
		ids = append(ids, 0)
		for pos > 0 && ids[pos-1] > cur {
			ids[pos] = ids[pos-1]
			pos--
		}
		ids[pos] = cur
		id = st.loopByID[cur].ParentID
	}
	st.sortBuf = ids
	k := append(st.keyBuf[:0], int64(bi))
	for _, lid := range ids {
		k = append(k, ctx[lid])
	}
	st.keyBuf = k
	return k
}

// transition computes the record context for following the edge from -> to,
// reading header slots when entering loops and advancing along the record
// chain on back edges. The new window carries only the target's chain
// loops; everything else is masked to "no active record".
func (st *stitch) transition(from, to int, ctx []int64) ([]int64, error) {
	fromChain := st.chainInto(&st.fromBuf, from)
	toChain := st.chainInto(&st.toBuf, to)
	nctx := st.ctx.alloc(st.nSlots)
	for i := range nctx {
		nctx[i] = -1
	}
	for _, id := range toChain {
		nctx[id] = ctx[id]
	}
	// Entering loops: outermost-first so parent records resolve.
	entering := st.enterBuf[:0]
	for _, id := range toChain {
		if !inChain(fromChain, id) {
			entering = append(entering, id)
		}
	}
	st.enterBuf = entering
	for i := len(entering) - 1; i >= 0; i-- {
		l := st.loopByID[entering[i]]
		if l.HeadBlock != to {
			return nil, fmt.Errorf("stitch: loop %d entered at non-head block %d", l.ID, to)
		}
		rec, err := st.readSlot(l.HeaderSlot, nctx)
		if err != nil {
			return nil, err
		}
		nctx[l.ID] = rec
	}
	// Back edge: advance to the next record (RESTART_LOOP).
	for _, id := range toChain {
		l := st.loopByID[id]
		if l.HeadBlock == to && inChain(fromChain, id) {
			rec := nctx[id]
			if rec < 0 {
				return nil, fmt.Errorf("stitch: no active record for loop %d", id)
			}
			a := rec + int64(l.NextSlot)
			if a < 0 || a >= int64(len(st.mem)) {
				return nil, fmt.Errorf("stitch: record link out of bounds (%d)", a)
			}
			nctx[id] = st.mem[a]
			st.stats.LoopIterations++
			st.stats.CyclesModeled += costPerIter
		}
	}
	return nctx, nil
}

// emitEdge emits (or reuses) the code for following edge e out of block
// `from` and returns the target pc.
func (st *stitch) emitEdge(from int, e tmpl.Edge, ctx []int64) (int, error) {
	if e.Block < 0 {
		// Region exit: a transfer stub back into the enclosing function.
		pc := st.add(vm.Inst{Op: vm.XFER, Target: e.ExitPC})
		return pc, nil
	}
	nctx, err := st.transition(from, e.Block, ctx)
	if err != nil {
		return 0, err
	}
	return st.emitBlock(e.Block, nctx)
}

// emitBlock instantiates block bi under record context ctx (memoized; the
// memo entry is installed before emission so record-chain cycles
// terminate).
func (st *stitch) emitBlock(bi int, ctx []int64) (int, error) {
	key := st.memoKeyI(bi, ctx)
	if pc, ok := st.memoGet(key); ok {
		return pc, nil
	}
	start := len(st.out)
	st.memoPut(key, start)
	st.stats.CyclesModeled += costPerBlock

	b := st.r.Blocks[bi]
	holes := b.Holes
	sorted := true
	for i := 1; i < len(holes); i++ {
		if holes[i].Pc < holes[i-1].Pc {
			sorted = false
			break
		}
	}
	hi := 0
	for pc, in := range b.Code {
		var h *tmpl.Hole
		if sorted {
			for hi < len(holes) && holes[hi].Pc < pc {
				hi++
			}
			for j := hi; j < len(holes) && holes[j].Pc == pc; j++ {
				h = &holes[j] // duplicates: last wins
			}
		} else {
			for j := range holes {
				if holes[j].Pc == pc {
					h = &holes[j]
				}
			}
		}
		if h != nil {
			v, err := st.readSlot(h.Slot, ctx)
			if err != nil {
				return 0, err
			}
			st.patch(in, v)
			st.stats.HolesPatched++
			st.stats.CyclesModeled += costPerHole
		} else {
			st.add(in)
		}
	}

	t := b.Term
	switch t.Kind {
	case tmpl.TermRet:
		st.add(vm.Inst{Op: vm.RET})

	case tmpl.TermJump:
		brPC := st.add(vm.Inst{Op: vm.BR})
		tpc, err := st.emitEdge(bi, t.Succs[0], ctx)
		if err != nil {
			return 0, err
		}
		st.out[brPC].Target = tpc

	case tmpl.TermBr:
		if t.ConstSlot != nil {
			// CONST_BRANCH: resolve now; the untaken path is dead code.
			v, err := st.readSlot(*t.ConstSlot, ctx)
			if err != nil {
				return 0, err
			}
			e := t.Succs[1]
			if v != 0 {
				e = t.Succs[0]
			}
			st.stats.BranchesResolved++
			st.stats.CyclesModeled += costPerBranch
			brPC := st.add(vm.Inst{Op: vm.BR})
			tpc, err := st.emitEdge(bi, e, ctx)
			if err != nil {
				return 0, err
			}
			st.out[brPC].Target = tpc
			break
		}
		bnezPC := st.add(vm.Inst{Op: vm.BNEZ, Rs: t.CondReg})
		brPC := st.add(vm.Inst{Op: vm.BR})
		fpc, err := st.emitEdge(bi, t.Succs[1], ctx)
		if err != nil {
			return 0, err
		}
		tpc, err := st.emitEdge(bi, t.Succs[0], ctx)
		if err != nil {
			return 0, err
		}
		st.out[bnezPC].Target = tpc
		st.out[brPC].Target = fpc

	case tmpl.TermSwitch:
		v, err := st.readSlot(*t.ConstSlot, ctx)
		if err != nil {
			return 0, err
		}
		e := t.Succs[len(t.Cases)] // default
		for i, c := range t.Cases {
			if c == v {
				e = t.Succs[i]
				break
			}
		}
		st.stats.BranchesResolved++
		st.stats.CyclesModeled += costPerBranch
		brPC := st.add(vm.Inst{Op: vm.BR})
		tpc, err := st.emitEdge(bi, e, ctx)
		if err != nil {
			return 0, err
		}
		st.out[brPC].Target = tpc

	default:
		return 0, fmt.Errorf("stitch: unknown terminator kind %d", t.Kind)
	}
	return start, nil
}

// ---- scratch growth helpers ----

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}
