package stitcher

// The copy-and-patch fast path: emission from the precompiled stencils the
// `stencil` pipeline pass attached to the region (tmpl.Stencil). One block
// emission is a bulk copy of the body runs between patch points plus a
// patch loop over the precomputed hole table; loop-record transitions and
// terminators follow per-edge descriptors instead of re-deriving loop
// chains from the template structure. The value-dependent emission logic
// (strength reduction, large-constant interning, immediate fitting) is the
// same code the interpretive path runs, so the two paths produce
// byte-identical segments.

import (
	"fmt"

	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// emitBlockS instantiates stencil block bi under record context ctx
// (memoized; the entry is installed before emission so record-chain cycles
// terminate).
func (st *stitch) emitBlockS(bi int, ctx []int64) (int, error) {
	tb := &st.sten.Blocks[bi]
	key := st.memoKeyS(bi, tb.Chain, ctx)
	if pc, ok := st.memoGet(key); ok {
		return pc, nil
	}
	start := len(st.out)
	st.memoPut(key, start)
	st.stats.CyclesModeled += costPerBlock

	body := tb.Body
	prev := 0
	for i := range tb.Patches {
		p := &tb.Patches[i]
		st.out = append(st.out, body[prev:p.Pc]...)
		v, err := st.readRef(int(p.Loop), int(p.Slot), ctx)
		if err != nil {
			return 0, err
		}
		st.patchStencil(p, v)
		st.stats.HolesPatched++
		st.stats.CyclesModeled += costPerHole
		prev = int(p.Pc) + 1
	}
	st.out = append(st.out, body[prev:]...)

	if err := st.emitTermS(tb, ctx); err != nil {
		return 0, err
	}
	return start, nil
}

// memoKeyS builds the memo key for a stencil block emission. The stencil
// carries the ascending-id loop chain, so the key is a straight gather.
func (st *stitch) memoKeyS(bi int, chain []int32, ctx []int64) []int64 {
	k := append(st.keyBuf[:0], int64(bi))
	for _, id := range chain {
		k = append(k, ctx[id])
	}
	st.keyBuf = k
	return k
}

// patchStencil fills one precompiled hole; it mirrors patch() exactly but
// dispatches on the precomputed kind instead of re-classifying the opcode.
func (st *stitch) patchStencil(p *tmpl.Patch, v int64) {
	switch p.Kind {
	case tmpl.PatchLDC:
		in := p.Inst
		in.Imm = st.largeConst(v)
		st.add(in)
	case tmpl.PatchLI:
		if vm.FitsImm(v) {
			in := p.Inst
			in.Imm = v
			st.add(in)
		} else {
			st.add(vm.Inst{Op: vm.LDC, Rd: p.Inst.Rd, Imm: st.largeConst(v)})
		}
	default: // PatchALU
		if !st.opts.NoStrengthReduction && st.strengthReduce(p.Inst, v) {
			return
		}
		if vm.FitsImm(v) {
			in := p.Inst
			in.Imm = v
			st.add(in)
			return
		}
		st.add(vm.Inst{Op: vm.LDC, Rd: vm.RScratch, Imm: st.largeConst(v)})
		st.add(vm.Inst{Op: p.RegOp, Rd: p.Inst.Rd, Rs: p.Inst.Rs, Rt: vm.RScratch})
	}
}

// emitEdgeS follows one precompiled edge and returns the target pc. When
// the edge performs no loop transition the context window is shared with
// the source block (windows are immutable once built).
func (st *stitch) emitEdgeS(e *tmpl.EdgePlan, ctx []int64) (int, error) {
	if e.Block < 0 {
		return st.add(vm.Inst{Op: vm.XFER, Target: int(e.ExitPC)}), nil
	}
	nctx := ctx
	if len(e.Enter) > 0 || len(e.Advance) > 0 {
		tb := &st.sten.Blocks[e.Block]
		nctx = st.ctx.alloc(st.nSlots)
		for i := range nctx {
			nctx[i] = -1
		}
		for _, id := range tb.Chain {
			nctx[id] = ctx[id]
		}
		for i := range e.Enter {
			en := &e.Enter[i]
			rec, err := st.readRef(int(en.HdrLoop), int(en.HdrSlot), nctx)
			if err != nil {
				return 0, err
			}
			nctx[en.Loop] = rec
		}
		for i := range e.Advance {
			ad := &e.Advance[i]
			rec := nctx[ad.Loop]
			if rec < 0 {
				return 0, fmt.Errorf("stitch: no active record for loop %d", ad.Loop)
			}
			a := rec + int64(ad.NextSlot)
			if a < 0 || a >= int64(len(st.mem)) {
				return 0, fmt.Errorf("stitch: record link out of bounds (%d)", a)
			}
			nctx[ad.Loop] = st.mem[a]
			st.stats.LoopIterations++
			st.stats.CyclesModeled += costPerIter
		}
	}
	return st.emitBlockS(int(e.Block), nctx)
}

// emitTermS resolves a precompiled terminator; the emission order (false
// edge before true edge on two-way branches) matches the interpretive path
// instruction for instruction.
func (st *stitch) emitTermS(tb *tmpl.StencilBlock, ctx []int64) error {
	t := &tb.Term
	switch t.Kind {
	case tmpl.TermRet:
		st.add(vm.Inst{Op: vm.RET})

	case tmpl.TermJump:
		brPC := st.add(vm.Inst{Op: vm.BR})
		tpc, err := st.emitEdgeS(&t.Edges[0], ctx)
		if err != nil {
			return err
		}
		st.out[brPC].Target = tpc

	case tmpl.TermBr:
		if t.HasConst {
			v, err := st.readRef(int(t.ConstLoop), int(t.ConstSlot), ctx)
			if err != nil {
				return err
			}
			e := &t.Edges[1]
			if v != 0 {
				e = &t.Edges[0]
			}
			st.stats.BranchesResolved++
			st.stats.CyclesModeled += costPerBranch
			brPC := st.add(vm.Inst{Op: vm.BR})
			tpc, err := st.emitEdgeS(e, ctx)
			if err != nil {
				return err
			}
			st.out[brPC].Target = tpc
			return nil
		}
		bnezPC := st.add(vm.Inst{Op: vm.BNEZ, Rs: t.CondReg})
		brPC := st.add(vm.Inst{Op: vm.BR})
		fpc, err := st.emitEdgeS(&t.Edges[1], ctx)
		if err != nil {
			return err
		}
		tpc, err := st.emitEdgeS(&t.Edges[0], ctx)
		if err != nil {
			return err
		}
		st.out[bnezPC].Target = tpc
		st.out[brPC].Target = fpc

	case tmpl.TermSwitch:
		v, err := st.readRef(int(t.ConstLoop), int(t.ConstSlot), ctx)
		if err != nil {
			return err
		}
		e := &t.Edges[len(t.Cases)] // default
		for i, c := range t.Cases {
			if c == v {
				e = &t.Edges[i]
				break
			}
		}
		st.stats.BranchesResolved++
		st.stats.CyclesModeled += costPerBranch
		brPC := st.add(vm.Inst{Op: vm.BR})
		tpc, err := st.emitEdgeS(e, ctx)
		if err != nil {
			return err
		}
		st.out[brPC].Target = tpc

	default:
		return fmt.Errorf("stitch: unknown terminator kind %d", t.Kind)
	}
	return nil
}
