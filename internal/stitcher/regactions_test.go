package stitcher

import (
	"testing"

	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// execStitched runs a stitched segment standalone (replacing trailing XFERs
// with RET) and returns RRV.
func execStitched(t *testing.T, seg *vm.Segment, setup func(m *vm.Machine)) int64 {
	t.Helper()
	code := append([]vm.Inst(nil), seg.Code...)
	for i := range code {
		if code[i].Op == vm.XFER {
			code[i] = vm.Inst{Op: vm.RET}
		}
	}
	prog := &vm.Program{
		Segs:      []*vm.Segment{{Name: "t", Code: code, Consts: seg.Consts, Region: -1}},
		FuncIndex: map[string]int{"t": 0},
	}
	m := vm.NewMachine(prog, 1<<14)
	if setup != nil {
		setup(m)
	}
	v, err := m.Call("t")
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	return v
}

func TestFoldAddressesChains(t *testing.T) {
	st := &stitch{stats: &Stats{}, cindex: map[int64]int{}}
	st.out = []vm.Inst{
		{Op: vm.ADDI, Rd: 20, Rs: vm.RSP, Imm: 4}, // base = sp+4
		{Op: vm.ADDI, Rd: 21, Rs: 20, Imm: 3},     // addr = base+3
		{Op: vm.LD, Rd: 22, Rs: 21, Imm: 0},       // v = [addr]
		{Op: vm.MOV, Rd: vm.RRV, Rs: 22},
		{Op: vm.RET},
	}
	st.foldAddresses()
	// The whole chain must collapse to LD r22, [sp+7].
	found := false
	for _, in := range st.out {
		if in.Op == vm.LD && in.Rs == vm.RSP && in.Imm == 7 {
			found = true
		}
		if in.Op == vm.ADDI && in.Rd != vm.RSP {
			t.Errorf("leftover address arithmetic: %s", in)
		}
	}
	if !found {
		t.Errorf("chain not folded:\n%v", st.out)
	}
}

func TestFoldAddressesRespectsAliasing(t *testing.T) {
	// The base register y is redefined between the ADDI and its consumer:
	// no folding allowed.
	st := &stitch{stats: &Stats{}, cindex: map[int64]int{}}
	st.out = []vm.Inst{
		{Op: vm.ADDI, Rd: 21, Rs: 20, Imm: 3},
		{Op: vm.LI, Rd: 20, Imm: 999}, // clobber y
		{Op: vm.LD, Rd: 22, Rs: 21, Imm: 0},
		{Op: vm.LI, Rd: 21, Imm: 0}, // kill x so deadness holds
		{Op: vm.RET},
	}
	before := len(st.out)
	st.foldAddresses()
	if len(st.out) != before {
		t.Errorf("folded across a base clobber:\n%v", st.out)
	}
}

func TestRegisterActionsPromoteAndFlush(t *testing.T) {
	// Straight-line stitched code hammering two frame slots, ending in an
	// XFER. Promotion must preload, rewrite to MOVs, and flush at the exit.
	st := &stitch{stats: &Stats{}, cindex: map[int64]int{}}
	st.out = []vm.Inst{
		{Op: vm.LD, Rd: 20, Rs: vm.RSP, Imm: 2},
		{Op: vm.ADDI, Rd: 20, Rs: 20, Imm: 5},
		{Op: vm.ST, Rs: vm.RSP, Imm: 2, Rt: 20},
		{Op: vm.LD, Rd: 21, Rs: vm.RSP, Imm: 3},
		{Op: vm.ADD, Rd: 21, Rs: 21, Rt: 20},
		{Op: vm.ST, Rs: vm.RSP, Imm: 3, Rt: 21},
		{Op: vm.XFER, Target: 0},
	}
	st.registerActions()
	if st.stats.LoadsPromoted != 2 || st.stats.StoresPromoted != 2 {
		t.Fatalf("promotions: %+v", st.stats)
	}
	// Execute: sp-relative slots 2 and 3 must end with the right values.
	seg := &vm.Segment{Code: st.out}
	_ = execStitched(t, seg, func(m *vm.Machine) {
		m.Regs[vm.RSP] = 100
		m.Mem[102] = 10
		m.Mem[103] = 1
	})
	// Re-run manually to inspect memory.
	code := append([]vm.Inst(nil), st.out...)
	for i := range code {
		if code[i].Op == vm.XFER {
			code[i] = vm.Inst{Op: vm.RET}
		}
	}
	prog := &vm.Program{Segs: []*vm.Segment{{Name: "t", Code: code, Region: -1}},
		FuncIndex: map[string]int{"t": 0}}
	m := vm.NewMachine(prog, 1<<12)
	m.Regs[vm.RSP] = 100
	m.Mem[102] = 10
	m.Mem[103] = 1
	if _, err := m.Call("t"); err != nil {
		t.Fatal(err)
	}
	if m.Mem[102] != 15 {
		t.Errorf("slot 2 = %d, want 15", m.Mem[102])
	}
	if m.Mem[103] != 1+15 {
		t.Errorf("slot 3 = %d, want 16", m.Mem[103])
	}
}

func TestRegisterActionsBailsOnWildMemops(t *testing.T) {
	st := &stitch{stats: &Stats{}, cindex: map[int64]int{}}
	st.out = []vm.Inst{
		{Op: vm.LD, Rd: 20, Rs: vm.RSP, Imm: 2},
		{Op: vm.ST, Rs: 22, Imm: 0, Rt: 20}, // wild store: unknown base
		{Op: vm.RET},
	}
	st.registerActions()
	if st.stats.LoadsPromoted != 0 {
		t.Error("promotion must bail when a non-frame memop exists")
	}
}

func TestRegisterActionsBailsOnCalls(t *testing.T) {
	st := &stitch{stats: &Stats{}, cindex: map[int64]int{}}
	st.out = []vm.Inst{
		{Op: vm.LD, Rd: 20, Rs: vm.RSP, Imm: 2},
		{Op: vm.CALL, Imm: 0},
		{Op: vm.ST, Rs: vm.RSP, Imm: 2, Rt: 20},
		{Op: vm.RET},
	}
	st.registerActions()
	if st.stats.LoadsPromoted != 0 {
		t.Error("promotion must bail across calls")
	}
}

// Stitching an unrolled loop: three linked records, the loop body emitted
// once per record with per-iteration holes patched.
func TestStitchUnrolledLoop(t *testing.T) {
	parent := &vm.Segment{Name: "f", Code: make([]vm.Inst, 8), Region: -1}
	mem := make([]int64, 256)
	const tbl = 16
	// Region table: slot 0 = loop header -> first record.
	// Record layout: [cond, value, next].
	recs := []int64{32, 48, 64}
	mem[tbl+0] = recs[0]
	vals := []int64{100, 200, 300}
	for i, r := range recs {
		mem[r+0] = 1 // continue
		mem[r+1] = vals[i]
		if i+1 < len(recs) {
			mem[r+2] = recs[i+1]
		} else {
			last := int64(80)
			mem[r+2] = last
		}
	}
	mem[80+0] = 0 // final record: condition false

	region := &tmpl.Region{
		Index: 0, Name: "t:r0", TableSize: 1,
		Blocks: []*tmpl.Block{
			{ // b0: region entry, init acc (r21) = 0
				Code:   []vm.Inst{{Op: vm.LI, Rd: 21, Imm: 0}},
				Term:   tmpl.Term{Kind: tmpl.TermJump, Succs: []tmpl.Edge{{Block: 1}}},
				LoopID: -1,
			},
			{ // b1: loop head — constant branch on record slot 0
				Term: tmpl.Term{Kind: tmpl.TermBr,
					ConstSlot: &tmpl.SlotRef{LoopID: 0, Slot: 0},
					Succs:     []tmpl.Edge{{Block: 2}, {Block: 3}}},
				LoopID: 0,
			},
			{ // b2: body — acc += hole(record slot 1); back edge
				Code:   []vm.Inst{{Op: vm.ADDI, Rd: 21, Rs: 21}},
				Holes:  []tmpl.Hole{{Pc: 0, Slot: tmpl.SlotRef{LoopID: 0, Slot: 1}}},
				Term:   tmpl.Term{Kind: tmpl.TermJump, Succs: []tmpl.Edge{{Block: 1}}},
				LoopID: 0,
			},
			{ // b3: exit
				Code:   []vm.Inst{{Op: vm.MOV, Rd: vm.RRV, Rs: 21}},
				Term:   tmpl.Term{Kind: tmpl.TermRet},
				LoopID: -1,
			},
		},
		Loops: []*tmpl.Loop{{
			ID: 0, ParentID: -1,
			HeaderSlot: tmpl.SlotRef{LoopID: -1, Slot: 0},
			NextSlot:   2, RecordSize: 3,
			HeadBlock: 1, LatchBlock: 2,
		}},
		Entry: 0,
	}
	seg, stats, err := Stitch(region, mem, tbl, parent, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LoopIterations != 3 {
		t.Errorf("iterations: %d", stats.LoopIterations)
	}
	got := execStitched(t, seg, nil)
	if got != 600 {
		t.Errorf("unrolled sum = %d, want 600", got)
	}
	// Fully unrolled: no backward branches.
	for pc, in := range seg.Code {
		switch in.Op {
		case vm.BR, vm.BEQZ, vm.BNEZ:
			if in.Target <= pc {
				t.Errorf("backward branch at %d", pc)
			}
		}
	}
}

// A constant switch template (CONST_BRANCH on an n-way branch).
func TestStitchConstSwitch(t *testing.T) {
	parent := &vm.Segment{Name: "f", Code: make([]vm.Inst, 4), Region: -1}
	mem := make([]int64, 64)
	const tbl = 8
	mem[tbl+0] = 7 // switch selector

	mkLeaf := func(v int64) *tmpl.Block {
		return &tmpl.Block{
			Code:   []vm.Inst{{Op: vm.LI, Rd: vm.RRV, Imm: v}},
			Term:   tmpl.Term{Kind: tmpl.TermRet},
			LoopID: -1,
		}
	}
	region := &tmpl.Region{
		Index: 0, Name: "t:r0", TableSize: 1,
		Blocks: []*tmpl.Block{
			{
				Term: tmpl.Term{Kind: tmpl.TermSwitch,
					ConstSlot: &tmpl.SlotRef{LoopID: -1, Slot: 0},
					Cases:     []int64{3, 7, 9},
					Succs:     []tmpl.Edge{{Block: 1}, {Block: 2}, {Block: 3}, {Block: 4}},
				},
				LoopID: -1,
			},
			mkLeaf(30), mkLeaf(70), mkLeaf(90), mkLeaf(-1),
		},
		Entry: 0,
	}
	seg, _, err := Stitch(region, mem, tbl, parent, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := execStitched(t, seg, nil); got != 70 {
		t.Errorf("switch selected %d, want 70", got)
	}
	// Untaken cases are dead code.
	for _, in := range seg.Code {
		if in.Op == vm.LI && (in.Imm == 30 || in.Imm == 90 || in.Imm == -1) {
			t.Errorf("dead case stitched: %v", in)
		}
	}
}
