package stitcher

// The generic tier: an unspecialized, key-independent rendering of a
// region's templates. Where the stitcher reads the run-time constants
// table at stitch time and bakes the values into the code (patched
// immediates, resolved branches, unrolled loops), the generic tier defers
// every one of those reads to run time: holes become loads from the live
// table, constant branches become real branches on the loaded value, and
// unrolled loops stay rolled, walking the per-iteration record chain with
// a register instead of the stitcher's directive interpreter.
//
// One generic segment serves every key of its region — it is built once
// per region and never invalidated (it embeds no table values, only slot
// offsets, which are static compiler artifacts). The asynchronous
// stitching pipeline (internal/rtr) runs cold keys on this tier while the
// real stitch happens on a background worker, so no caller ever blocks on
// compilation; the price is per-iteration loads and un-reduced operations,
// i.e. roughly the paper's "statically compiled" cost plus a load per
// hole.
//
// Register convention: the table base arrives in vm.RScratch (exactly
// where the inline set-up's DYNSTITCH or a merged SetupFn leaves it) and
// is immediately parked in vm.RTblBase, which is dead in template and
// stitched code. Active loop records live in vm.RPromo0..RPromoLast —
// reserved for stitch-time register actions, which never run on the
// generic tier — so regions with more than len(RPromo0..RPromoLast)
// unrolled loops cannot be rendered generically and must stitch inline.

import (
	"fmt"

	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// maxGenericLoops is how many unrolled-loop record pointers fit in the
// reserved register range.
const maxGenericLoops = int(vm.RPromoLast-vm.RPromo0) + 1

// Generic renders region's templates as a single unspecialized segment
// whose exits XFER back into parent. It is pure (no machine memory is
// read) and safe to call concurrently.
func Generic(region *tmpl.Region, parent *vm.Segment, opts Options) (*vm.Segment, error) {
	if len(region.Loops) > maxGenericLoops {
		return nil, fmt.Errorf("generic: region %s has %d unrolled loops (max %d)",
			region.Name, len(region.Loops), maxGenericLoops)
	}
	g := &generic{
		r:       region,
		blockPC: make(map[int]int, len(region.Blocks)),
		loops:   make(map[int]*tmpl.Loop, len(region.Loops)),
		recReg:  make(map[int]vm.Reg, len(region.Loops)),
		cindex:  map[int64]int{},
	}
	for i, l := range region.Loops {
		g.loops[l.ID] = l
		g.recReg[l.ID] = vm.RPromo0 + vm.Reg(i)
	}
	if len(g.chain(region.Entry)) != 0 {
		return nil, fmt.Errorf("generic: region %s entry inside a loop", region.Name)
	}

	// Entry preamble: park the table base before anything can clobber
	// RScratch, then walk the block graph.
	g.add(vm.Inst{Op: vm.MOV, Rd: vm.RTblBase, Rs: vm.RScratch})
	g.queue = append(g.queue, region.Entry)
	g.blockPC[region.Entry] = -1 // mark queued
	for len(g.queue) > 0 {
		bi := g.queue[0]
		g.queue = g.queue[1:]
		if err := g.emitBlock(bi); err != nil {
			return nil, err
		}
	}
	for _, f := range g.fix {
		pc, ok := g.blockPC[f.block]
		if !ok || pc < 0 {
			return nil, fmt.Errorf("generic: unresolved branch to block %d", f.block)
		}
		g.out[f.pc].Target = pc
	}

	code := make([]vm.Inst, len(g.out))
	copy(code, g.out)
	if !opts.NoFuse {
		code = vm.Fuse(code, vm.FuseOptions{}).Code
	}
	var consts []int64
	if len(g.consts) > 0 {
		consts = make([]int64, len(g.consts))
		copy(consts, g.consts)
	}
	seg := &vm.Segment{
		Name:     region.Name + ".generic",
		Code:     code,
		Consts:   consts,
		Parent:   parent,
		Region:   region.Index,
		Stitched: true,
	}
	seg.Prepare()
	return seg, nil
}

type generic struct {
	r       *tmpl.Region
	out     []vm.Inst
	consts  []int64
	cindex  map[int64]int
	blockPC map[int]int // block -> pc (-1 while queued, unemitted)
	queue   []int
	fix     []genFixup
	loops   map[int]*tmpl.Loop
	recReg  map[int]vm.Reg
}

type genFixup struct {
	pc    int // instruction whose Target needs the block's pc
	block int
}

func (g *generic) add(in vm.Inst) int {
	g.out = append(g.out, in)
	return len(g.out) - 1
}

// chain returns the enclosing-loop ids of block bi, innermost first.
func (g *generic) chain(bi int) []int {
	var ids []int
	id := g.r.Blocks[bi].LoopID
	for id >= 0 {
		ids = append(ids, id)
		id = g.loops[id].ParentID
	}
	return ids
}

// largeConst interns v in the segment's constant table (switch cases that
// do not fit the immediate field).
func (g *generic) largeConst(v int64) int64 {
	if i, ok := g.cindex[v]; ok {
		return int64(i)
	}
	i := len(g.consts)
	g.consts = append(g.consts, v)
	g.cindex[v] = i
	return int64(i)
}

// slotOperand resolves a table slot reference to (base register, offset):
// the region table lives at RTblBase, loop records in their reserved
// registers.
func (g *generic) slotOperand(ref tmpl.SlotRef) (vm.Reg, int64, error) {
	if !vm.FitsImm(int64(ref.Slot)) {
		return 0, 0, fmt.Errorf("generic: slot offset %d exceeds the immediate field", ref.Slot)
	}
	if ref.LoopID < 0 {
		return vm.RTblBase, int64(ref.Slot), nil
	}
	reg, ok := g.recReg[ref.LoopID]
	if !ok {
		return 0, 0, fmt.Errorf("generic: no record register for loop %d", ref.LoopID)
	}
	return reg, int64(ref.Slot), nil
}

// loadSlot emits a load of the slot's current value into rd.
func (g *generic) loadSlot(rd vm.Reg, ref tmpl.SlotRef) error {
	base, off, err := g.slotOperand(ref)
	if err != nil {
		return err
	}
	g.add(vm.Inst{Op: vm.LD, Rd: rd, Rs: base, Imm: off})
	return nil
}

// emitHole lowers one hole-carrying instruction: where the stitcher patches
// the constant in, the generic tier loads it at run time.
func (g *generic) emitHole(in vm.Inst, h tmpl.Hole) error {
	switch in.Op {
	case vm.LDC, vm.LI:
		// A constant materialization: load it straight from the table.
		return g.loadSlot(in.Rd, h.Slot)
	default:
		reg := vm.ImmToRegForm(in.Op)
		if reg == vm.NOP || !in.Op.HasImmOperand() {
			return fmt.Errorf("generic: unsupported hole op %s", in.Op)
		}
		if err := g.loadSlot(vm.RScratch2, h.Slot); err != nil {
			return err
		}
		g.add(vm.Inst{Op: reg, Rd: in.Rd, Rs: in.Rs, Rt: vm.RScratch2})
		return nil
	}
}

// emitEdge emits the code that follows edge e out of block `from`: region
// exits become XFER stubs; block edges load loop-header records when
// entering unrolled loops and advance the record register on back edges
// (the run-time equivalents of the stitcher's ENTER_LOOP / RESTART_LOOP
// directives), then branch to the target block.
func (g *generic) emitEdge(from int, e tmpl.Edge) error {
	if e.Block < 0 {
		g.add(vm.Inst{Op: vm.XFER, Target: e.ExitPC})
		return nil
	}
	fromChain := g.chain(from)
	toChain := g.chain(e.Block)
	// Entering loops: outermost-first so parent records resolve first.
	var entering []int
	for _, id := range toChain {
		if !inChain(fromChain, id) {
			entering = append(entering, id)
		}
	}
	for i := len(entering) - 1; i >= 0; i-- {
		l := g.loops[entering[i]]
		if l.HeadBlock != e.Block {
			return fmt.Errorf("generic: loop %d entered at non-head block %d", l.ID, e.Block)
		}
		if err := g.loadSlot(g.recReg[l.ID], l.HeaderSlot); err != nil {
			return err
		}
	}
	// Back edge: advance along the record chain.
	for _, id := range toChain {
		l := g.loops[id]
		if l.HeadBlock == e.Block && inChain(fromChain, id) {
			if !vm.FitsImm(int64(l.NextSlot)) {
				return fmt.Errorf("generic: record link offset %d exceeds the immediate field", l.NextSlot)
			}
			rec := g.recReg[id]
			g.add(vm.Inst{Op: vm.LD, Rd: rec, Rs: rec, Imm: int64(l.NextSlot)})
		}
	}
	pc := g.add(vm.Inst{Op: vm.BR})
	g.fix = append(g.fix, genFixup{pc: pc, block: e.Block})
	if _, ok := g.blockPC[e.Block]; !ok {
		g.blockPC[e.Block] = -1
		g.queue = append(g.queue, e.Block)
	}
	return nil
}

// emitBlock renders block bi exactly once (the generic tier never
// duplicates blocks — unrolled loops stay rolled).
func (g *generic) emitBlock(bi int) error {
	g.blockPC[bi] = len(g.out)
	b := g.r.Blocks[bi]
	holeAt := map[int]tmpl.Hole{}
	for _, h := range b.Holes {
		holeAt[h.Pc] = h
	}
	for pc, in := range b.Code {
		if h, ok := holeAt[pc]; ok {
			if err := g.emitHole(in, h); err != nil {
				return err
			}
		} else {
			g.add(in)
		}
	}

	t := b.Term
	switch t.Kind {
	case tmpl.TermRet:
		g.add(vm.Inst{Op: vm.RET})

	case tmpl.TermJump:
		return g.emitEdge(bi, t.Succs[0])

	case tmpl.TermBr:
		cond := t.CondReg
		if t.ConstSlot != nil {
			// CONST_BRANCH: the stitcher resolves this at stitch time; the
			// generic tier tests the live table value.
			if err := g.loadSlot(vm.RScratch2, *t.ConstSlot); err != nil {
				return err
			}
			cond = vm.RScratch2
		}
		bnezPC := g.add(vm.Inst{Op: vm.BNEZ, Rs: cond})
		if err := g.emitEdge(bi, t.Succs[1]); err != nil {
			return err
		}
		g.out[bnezPC].Target = len(g.out)
		return g.emitEdge(bi, t.Succs[0])

	case tmpl.TermSwitch:
		if err := g.loadSlot(vm.RScratch2, *t.ConstSlot); err != nil {
			return err
		}
		// Compare chain falling through to the default edge; case stubs
		// follow, each patched into its compare's branch target.
		cmpPC := make([]int, len(t.Cases))
		for i, c := range t.Cases {
			if vm.FitsImm(c) {
				cmpPC[i] = g.add(vm.Inst{Op: vm.BEQI, Rs: vm.RScratch2, Imm: c})
				continue
			}
			g.add(vm.Inst{Op: vm.LDC, Rd: vm.RScratch, Imm: g.largeConst(c)})
			g.add(vm.Inst{Op: vm.SEQ, Rd: vm.RScratch, Rs: vm.RScratch2, Rt: vm.RScratch})
			cmpPC[i] = g.add(vm.Inst{Op: vm.BNEZ, Rs: vm.RScratch})
		}
		if err := g.emitEdge(bi, t.Succs[len(t.Cases)]); err != nil {
			return err
		}
		for i := range t.Cases {
			g.out[cmpPC[i]].Target = len(g.out)
			if err := g.emitEdge(bi, t.Succs[i]); err != nil {
				return err
			}
		}
		return nil

	default:
		return fmt.Errorf("generic: unknown terminator kind %d", t.Kind)
	}
	return nil
}
