package stitcher

import (
	"testing"
	"testing/quick"

	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// execSnippet runs a code fragment with r20 preloaded and returns r21.
func execSnippet(t *testing.T, code []vm.Inst, r20 int64, consts []int64) int64 {
	t.Helper()
	code = append(code, vm.Inst{Op: vm.MOV, Rd: vm.RRV, Rs: 21}, vm.Inst{Op: vm.RET})
	prog := &vm.Program{
		Segs:      []*vm.Segment{{Name: "t", Code: code, Consts: consts, Region: -1}},
		FuncIndex: map[string]int{"t": 0},
	}
	m := vm.NewMachine(prog, 1<<12)
	m.Regs[20] = r20
	v, err := m.Call("t")
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	return v
}

// patchOne runs the stitcher's patch logic on a single instruction.
func patchOne(in vm.Inst, v int64, opts Options) ([]vm.Inst, []int64, *Stats) {
	st := &stitch{opts: opts, cindex: map[int64]int{}, stats: &Stats{}}
	st.patch(in, v)
	return st.out, st.consts, st.stats
}

// Property: strength-reduced multiply sequences compute exactly rs * v.
func TestMulStrengthReductionProperty(t *testing.T) {
	check := func(x int64, v int32) bool {
		code, consts, _ := patchOne(vm.Inst{Op: vm.MULI, Rd: 21, Rs: 20}, int64(v), Options{})
		got := execSnippet(t, code, x, consts)
		return got == x*int64(v)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Deterministic corners.
	for _, v := range []int64{0, 1, -1, 2, 3, 5, 7, 8, 9, 15, 17, 31, 33, 97, 100,
		255, 256, 257, 1000, -8, -7, 65535, 65536, 1 << 30} {
		code, consts, _ := patchOne(vm.Inst{Op: vm.MULI, Rd: 21, Rs: 20}, v, Options{})
		for _, x := range []int64{0, 1, -1, 123456, -987654} {
			if got := execSnippet(t, code, x, consts); got != x*v {
				t.Errorf("mul by %d: %d * %d = %d, want %d", v, x, v, got, x*v)
			}
		}
	}
}

func TestUDivUModPow2Reduction(t *testing.T) {
	for _, v := range []int64{1, 2, 4, 32, 16384, 1 << 20} {
		code, consts, st := patchOne(vm.Inst{Op: vm.UDIVI, Rd: 21, Rs: 20}, v, Options{})
		if v > 1 && st.StrengthReductions == 0 {
			t.Errorf("udiv by %d not reduced", v)
		}
		for _, x := range []int64{0, 5, 123456789, -1} {
			want := int64(uint64(x) / uint64(v))
			if got := execSnippet(t, code, x, consts); got != want {
				t.Errorf("udiv %d/%d = %d, want %d", x, v, got, want)
			}
		}
		code, consts, _ = patchOne(vm.Inst{Op: vm.UMODI, Rd: 21, Rs: 20}, v, Options{})
		for _, x := range []int64{0, 5, 123456789, -1} {
			want := int64(uint64(x) % uint64(v))
			if got := execSnippet(t, code, x, consts); got != want {
				t.Errorf("umod %d%%%d = %d, want %d", x, v, got, want)
			}
		}
	}
	// Non-power-of-two must not be reduced, still correct.
	code, consts, st := patchOne(vm.Inst{Op: vm.UDIVI, Rd: 21, Rs: 20}, 7, Options{})
	if st.StrengthReductions != 0 {
		t.Error("udiv by 7 wrongly reduced")
	}
	if got := execSnippet(t, code, 100, consts); got != 14 {
		t.Errorf("100/7 = %d", got)
	}
}

func TestNoStrengthReductionOption(t *testing.T) {
	code, _, st := patchOne(vm.Inst{Op: vm.MULI, Rd: 21, Rs: 20}, 8, Options{NoStrengthReduction: true})
	if st.StrengthReductions != 0 {
		t.Error("reduction applied despite option")
	}
	if len(code) != 1 || code[0].Op != vm.MULI || code[0].Imm != 8 {
		t.Errorf("expected plain MULI, got %v", code)
	}
}

func TestLargeConstantsGoToLinearizedTable(t *testing.T) {
	big := int64(1) << 40
	// LI of an oversized value becomes an LDC.
	code, consts, _ := patchOne(vm.Inst{Op: vm.LI, Rd: 21}, big, Options{})
	if len(code) != 1 || code[0].Op != vm.LDC {
		t.Fatalf("expected LDC, got %v", code)
	}
	if consts[code[0].Imm] != big {
		t.Errorf("table entry: %v", consts)
	}
	if got := execSnippet(t, code, 0, consts); got != big {
		t.Errorf("loaded %d", got)
	}
	// An oversized ALU immediate is rewritten via the scratch register.
	code, consts, _ = patchOne(vm.Inst{Op: vm.ADDI, Rd: 21, Rs: 20}, big, Options{})
	if got := execSnippet(t, code, 5, consts); got != big+5 {
		t.Errorf("add big: %d", got)
	}
	// Interning: the same constant is stored once.
	st := &stitch{opts: Options{}, cindex: map[int64]int{}, stats: &Stats{}}
	st.patch(vm.Inst{Op: vm.LI, Rd: 21}, big)
	st.patch(vm.Inst{Op: vm.LI, Rd: 22}, big)
	if len(st.consts) != 1 {
		t.Errorf("constant not interned: %v", st.consts)
	}
}

func TestSmallImmediatesPatchInPlace(t *testing.T) {
	code, _, _ := patchOne(vm.Inst{Op: vm.ANDI, Rd: 21, Rs: 20}, 511, Options{})
	if len(code) != 1 || code[0].Op != vm.ANDI || code[0].Imm != 511 {
		t.Errorf("expected patched ANDI, got %v", code)
	}
}

func TestCSDTerms(t *testing.T) {
	check := func(v int64) bool {
		terms, n, complete := csdTerms(v)
		if !complete {
			return true // incomplete decompositions are rejected by emitCSD
		}
		var sum int64
		for _, tm := range terms[:n] {
			term := int64(1) << uint(tm.shift)
			if tm.neg {
				sum -= term
			} else {
				sum += term
			}
		}
		return sum == v
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Stitching a minimal template: one block, one hole, a constant branch.
func TestStitchMinimalRegion(t *testing.T) {
	parent := &vm.Segment{Name: "f", Code: make([]vm.Inst, 20), Region: -1}
	mem := make([]int64, 64)
	const tbl = 8
	mem[tbl+0] = 7 // hole value
	mem[tbl+1] = 1 // branch condition: true

	region := &tmpl.Region{
		Index: 0,
		Name:  "t:r0",
		Blocks: []*tmpl.Block{
			{
				Code:  []vm.Inst{{Op: vm.ADDI, Rd: 21, Rs: 20}},
				Holes: []tmpl.Hole{{Pc: 0, Slot: tmpl.SlotRef{LoopID: -1, Slot: 0}}},
				Term: tmpl.Term{Kind: tmpl.TermBr,
					ConstSlot: &tmpl.SlotRef{LoopID: -1, Slot: 1},
					Succs:     []tmpl.Edge{{Block: 1}, {Block: 2}}},
				LoopID: -1,
			},
			{ // taken path
				Code:   []vm.Inst{{Op: vm.ADDI, Rd: 21, Rs: 21, Imm: 100}},
				Term:   tmpl.Term{Kind: tmpl.TermJump, Succs: []tmpl.Edge{{Block: -1, ExitPC: 9}}},
				LoopID: -1,
			},
			{ // dead path
				Code:   []vm.Inst{{Op: vm.ADDI, Rd: 21, Rs: 21, Imm: 999}},
				Term:   tmpl.Term{Kind: tmpl.TermJump, Succs: []tmpl.Edge{{Block: -1, ExitPC: 9}}},
				LoopID: -1,
			},
		},
		Entry: 0,
	}
	seg, stats, err := Stitch(region, mem, tbl, parent, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BranchesResolved != 1 {
		t.Errorf("branches resolved: %d", stats.BranchesResolved)
	}
	// Dead path must not be present: no ADDI 999.
	for _, in := range seg.Code {
		if in.Op == vm.ADDI && in.Imm == 999 {
			t.Error("dead path was stitched")
		}
	}
	// Execute: r21 = r20 + 7 + 100, then XFER to parent pc 9.
	parent.Code[9] = vm.Inst{Op: vm.MOV, Rd: vm.RRV, Rs: 21}
	parent.Code[10] = vm.Inst{Op: vm.RET}
	seg.Parent = parent
	prog := &vm.Program{Segs: []*vm.Segment{parent}, FuncIndex: map[string]int{"f": 0}, NumRegions: 1}
	m := vm.NewMachine(prog, 1<<12)
	copy(m.Mem, mem)
	m.Regs[20] = 5
	// Enter the stitched segment directly.
	parent.Code[0] = vm.Inst{Op: vm.DYNENTER, Imm: 0}
	m.OnDynEnter = func(m *vm.Machine, region int) (*vm.Segment, error) {
		return seg, nil
	}
	got, err := m.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 5+7+100 {
		t.Errorf("stitched exec: %d", got)
	}
}
