package types

import "testing"

func TestScalarSizes(t *testing.T) {
	for _, tt := range []struct {
		typ  *Type
		size int
	}{
		{IntType, 1}, {UnsignedType, 1}, {FloatType, 1},
		{PointerTo(IntType), 1}, {VoidType, 0},
	} {
		if got := tt.typ.Size(); got != tt.size {
			t.Errorf("%s: size %d, want %d", tt.typ, got, tt.size)
		}
	}
}

func TestArrayAndStructLayout(t *testing.T) {
	arr := ArrayOf(IntType, 10)
	if arr.Size() != 10 {
		t.Errorf("array size: %d", arr.Size())
	}
	inner := NewStruct("Inner", []Field{
		{Name: "a", Type: IntType},
		{Name: "b", Type: FloatType},
	})
	outer := NewStruct("Outer", []Field{
		{Name: "x", Type: inner},
		{Name: "arr", Type: ArrayOf(IntType, 3)},
		{Name: "p", Type: PointerTo(inner)},
	})
	if inner.Size() != 2 {
		t.Errorf("inner size: %d", inner.Size())
	}
	if outer.Size() != 2+3+1 {
		t.Errorf("outer size: %d", outer.Size())
	}
	f, ok := outer.FieldByName("arr")
	if !ok || f.Offset != 2 {
		t.Errorf("arr offset: %+v", f)
	}
	f, ok = outer.FieldByName("p")
	if !ok || f.Offset != 5 {
		t.Errorf("p offset: %+v", f)
	}
	if _, ok := outer.FieldByName("nope"); ok {
		t.Error("found nonexistent field")
	}
}

func TestSame(t *testing.T) {
	if !Same(PointerTo(IntType), PointerTo(IntType)) {
		t.Error("pointer types should match structurally")
	}
	if Same(PointerTo(IntType), PointerTo(FloatType)) {
		t.Error("distinct pointee types should differ")
	}
	if !Same(ArrayOf(IntType, 4), ArrayOf(IntType, 4)) {
		t.Error("equal arrays should match")
	}
	if Same(ArrayOf(IntType, 4), ArrayOf(IntType, 5)) {
		t.Error("different lengths should differ")
	}
	s1 := NewStruct("S", []Field{{Name: "a", Type: IntType}})
	s2 := NewStruct("S", []Field{{Name: "a", Type: IntType}})
	if !Same(s1, s2) {
		t.Error("same-named structs should match")
	}
	ft1 := FuncType(IntType, []*Type{IntType})
	ft2 := FuncType(IntType, []*Type{FloatType})
	if Same(ft1, ft2) {
		t.Error("different param types should differ")
	}
}

func TestPredicates(t *testing.T) {
	if !IntType.IsInteger() || !UnsignedType.IsInteger() || FloatType.IsInteger() {
		t.Error("IsInteger")
	}
	if !FloatType.IsFloat() || IntType.IsFloat() {
		t.Error("IsFloat")
	}
	if !PointerTo(IntType).IsScalar() || ArrayOf(IntType, 2).IsScalar() {
		t.Error("IsScalar")
	}
}

func TestString(t *testing.T) {
	s := NewStruct("Cache", nil)
	for _, tt := range []struct {
		typ  *Type
		want string
	}{
		{IntType, "int"},
		{PointerTo(PointerTo(FloatType)), "float**"},
		{ArrayOf(IntType, 3), "int[3]"},
		{s, "struct Cache"},
	} {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("got %q want %q", got, tt.want)
		}
	}
}
