// Package types implements the MiniC type system with a word-oriented
// layout: every scalar (int, unsigned, char, float, pointer) occupies one
// 64-bit word of the virtual machine; struct and array sizes are word
// counts. This mirrors a 64-bit RISC target closely enough for the paper's
// optimizations (load elimination, pointer-scaled indexing, strength
// reduction) while keeping address arithmetic simple.
package types

import (
	"fmt"
	"strings"
)

// Kind enumerates the type kinds.
type Kind int

// Type kinds.
const (
	Void     Kind = iota
	Int           // signed 64-bit
	Unsigned      // unsigned 64-bit
	Float         // IEEE float64
	Pointer
	Array
	Struct
	Func
)

// Type is a MiniC semantic type. Types are interned per-checker so they may
// be compared with Same (structural) or pointer identity for structs.
type Type struct {
	Kind Kind
	Elem *Type // Pointer, Array element
	Len  int   // Array length (elements)

	Name   string  // Struct name
	Fields []Field // Struct fields, in declaration order
	index  map[string]int

	Params []*Type // Func parameter types
	Ret    *Type   // Func return type
}

// Field is a struct member with its word offset.
type Field struct {
	Name   string
	Type   *Type
	Offset int // in words
}

// The types universe: predefined scalars and their pointer types are
// package-level interned singletons, shared by every checker instance.
// Like all Type values they are immutable after construction — the
// compiler never writes to a Type it did not just build — so concurrent
// compilations (core.CompileBatch) share them without synchronization;
// the batch -race tests enforce this contract.
var (
	VoidType     = &Type{Kind: Void}
	IntType      = &Type{Kind: Int}
	UnsignedType = &Type{Kind: Unsigned}
	FloatType    = &Type{Kind: Float}

	// Interned pointer-to-scalar types, returned by PointerTo so the
	// overwhelmingly common `int *` (and friends) costs no allocation per
	// declaration. Nested pointers and pointers to aggregates are built
	// fresh per call — they are per-compile anyway (struct types are owned
	// by their checker).
	intPtr      = &Type{Kind: Pointer, Elem: IntType}
	unsignedPtr = &Type{Kind: Pointer, Elem: UnsignedType}
	floatPtr    = &Type{Kind: Pointer, Elem: FloatType}
	voidPtr     = &Type{Kind: Pointer, Elem: VoidType}
)

// PointerTo returns a pointer type to elem (interned for the predeclared
// scalars).
func PointerTo(elem *Type) *Type {
	switch elem {
	case IntType:
		return intPtr
	case UnsignedType:
		return unsignedPtr
	case FloatType:
		return floatPtr
	case VoidType:
		return voidPtr
	}
	return &Type{Kind: Pointer, Elem: elem}
}

// ArrayOf returns an array type of n elements of elem.
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: Array, Elem: elem, Len: n} }

// NewStruct builds a struct type, assigning field offsets.
func NewStruct(name string, fields []Field) *Type {
	t := &Type{Kind: Struct, Name: name, index: map[string]int{}}
	off := 0
	for _, f := range fields {
		f.Offset = off
		t.index[f.Name] = len(t.Fields)
		t.Fields = append(t.Fields, f)
		off += f.Type.Size()
	}
	return t
}

// FuncType builds a function type.
func FuncType(ret *Type, params []*Type) *Type {
	return &Type{Kind: Func, Ret: ret, Params: params}
}

// FieldByName returns the field and true if present.
func (t *Type) FieldByName(name string) (Field, bool) {
	if t.Kind != Struct {
		return Field{}, false
	}
	i, ok := t.index[name]
	if !ok {
		return Field{}, false
	}
	return t.Fields[i], true
}

// Size returns the size of the type in machine words.
func (t *Type) Size() int {
	switch t.Kind {
	case Void:
		return 0
	case Int, Unsigned, Float, Pointer:
		return 1
	case Array:
		return t.Len * t.Elem.Size()
	case Struct:
		n := 0
		for _, f := range t.Fields {
			n += f.Type.Size()
		}
		return n
	}
	return 1
}

// IsInteger reports whether t is int or unsigned.
func (t *Type) IsInteger() bool { return t.Kind == Int || t.Kind == Unsigned }

// IsScalar reports whether t fits in a register.
func (t *Type) IsScalar() bool {
	switch t.Kind {
	case Int, Unsigned, Float, Pointer:
		return true
	}
	return false
}

// IsFloat reports whether t is the floating-point type.
func (t *Type) IsFloat() bool { return t.Kind == Float }

// Same reports structural type equality.
func Same(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Pointer:
		return Same(a.Elem, b.Elem)
	case Array:
		return a.Len == b.Len && Same(a.Elem, b.Elem)
	case Struct:
		return a.Name == b.Name
	case Func:
		if !Same(a.Ret, b.Ret) || len(a.Params) != len(b.Params) {
			return false
		}
		for i := range a.Params {
			if !Same(a.Params[i], b.Params[i]) {
				return false
			}
		}
		return true
	}
	return true
}

// String renders the type in C-ish syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Void:
		return "void"
	case Int:
		return "int"
	case Unsigned:
		return "unsigned"
	case Float:
		return "float"
	case Pointer:
		return t.Elem.String() + "*"
	case Array:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case Struct:
		return "struct " + t.Name
	case Func:
		var ps []string
		for _, p := range t.Params {
			ps = append(ps, p.String())
		}
		return fmt.Sprintf("%s(%s)", t.Ret, strings.Join(ps, ", "))
	}
	return fmt.Sprintf("Kind(%d)", int(t.Kind))
}
