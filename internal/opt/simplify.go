package opt

import (
	"dyncc/internal/ir"
	"dyncc/internal/types"
)

// Simplify applies algebraic identities and compile-time strength reduction
// with literal operands: multiply by a power of two becomes a shift,
// unsigned divide/modulus by a power of two becomes a shift/mask, and
// identity operations become copies. (This is what an ordinary optimizing C
// compiler does statically; the stitcher applies the same rewrites
// dynamically with run-time constant values.)
func Simplify(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for idx := 0; idx < len(b.Instrs); idx++ {
			in := b.Instrs[idx]
			if in.Dst == 0 || len(in.Args) != 2 {
				continue
			}
			cv, ok := constValOf(f, in.Args[1])
			if !ok {
				// Try the commuted form.
				if in.Op.IsCommutative() {
					if c0, ok0 := constValOf(f, in.Args[0]); ok0 {
						in.Args[0], in.Args[1] = in.Args[1], in.Args[0]
						cv, ok = c0, true
					}
				}
				if !ok {
					continue
				}
			}
			toCopy := func(src ir.Value) {
				in.Op = ir.OpCopy
				in.Args = []ir.Value{src}
				n++
			}
			// shiftBy rewrites in to `op (Args[0], k)` with a fresh
			// constant k inserted before it.
			shiftBy := func(op ir.Op, k int64) {
				kc := f.NewValue("", types.IntType)
				ci := &ir.Instr{Op: ir.OpConst, Const: k, Dst: kc, Typ: types.IntType, Blk: b}
				f.ValueInfo(kc).Def = ci
				b.InsertBefore(idx, ci)
				idx++
				in.Op = op
				in.Args = []ir.Value{in.Args[0], kc}
				n++
			}
			switch in.Op {
			case ir.OpMul:
				switch {
				case cv == 0:
					in.Op = ir.OpConst
					in.Const = 0
					in.Args = nil
					n++
				case cv == 1:
					toCopy(in.Args[0])
				case isPow2(cv):
					shiftBy(ir.OpShl, log2(cv))
				}
			case ir.OpUDiv:
				if cv == 1 {
					toCopy(in.Args[0])
				} else if isPow2(cv) {
					shiftBy(ir.OpLShr, log2(cv))
				}
			case ir.OpUMod:
				if isPow2(cv) {
					mc := f.NewValue("", types.IntType)
					ci := &ir.Instr{Op: ir.OpConst, Const: cv - 1, Dst: mc, Typ: types.IntType, Blk: b}
					f.ValueInfo(mc).Def = ci
					b.InsertBefore(idx, ci)
					idx++
					in.Op = ir.OpAnd
					in.Args = []ir.Value{in.Args[0], mc}
					n++
				}
			case ir.OpAdd, ir.OpSub, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpAShr, ir.OpLShr:
				if cv == 0 {
					toCopy(in.Args[0])
				}
			case ir.OpAnd:
				if cv == 0 {
					in.Op = ir.OpConst
					in.Const = 0
					in.Args = nil
					n++
				} else if cv == -1 {
					toCopy(in.Args[0])
				}
			}
		}
	}
	return n
}

func isPow2(v int64) bool { return v > 0 && v&(v-1) == 0 }

func log2(v int64) int64 {
	k := int64(0)
	for v > 1 {
		v >>= 1
		k++
	}
	return k
}
