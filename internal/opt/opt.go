// Package opt implements the static optimizer: constant folding and branch
// folding, copy propagation, dominator-based value numbering (global CSE),
// and dead code elimination, all over SSA form.
//
// Per the paper's section 3.3, optimization around dynamic regions is
// restricted: values defined inside a dynamic region must not be propagated
// to or reused by code outside it (their definitions may be moved into
// set-up code by the splitter, leaving no register definition on the
// ordinary path). These passes run before region splitting.
package opt

import (
	"math"

	"dyncc/internal/ir"
)

// Stats counts what the static optimizer did (useful in tests and dumps).
type Stats struct {
	Folded         int // instructions folded to constants
	BranchesFolded int // constant branches turned into jumps
	CopiesForwards int // copy-propagated uses
	CSEHits        int // instructions removed by value numbering
	DeadRemoved    int // dead instructions removed
}

// SubPass is one named optimizer sub-pass; Run returns the number of IR
// changes it made. Sub-passes are registered individually in the compiler
// pipeline so each can be timed, dumped, and disabled for ablation.
type SubPass struct {
	Name string
	Run  func(*ir.Func) int
}

// MaxRounds bounds the optimizer fixpoint iteration.
const MaxRounds = 8

// SubPasses returns the optimizer's sub-passes in canonical order: the
// fixpoint driver (pipeline or Optimize) iterates them in this order
// until a full round changes nothing.
func SubPasses() []SubPass {
	return []SubPass{
		{"const-fold", ConstFold},
		{"simplify", Simplify},
		{"branch-fold", FoldBranches},
		{"copy-prop", CopyProp},
		{"cse", CSE},
		{"dce", DCE},
	}
}

// addTo maps a sub-pass's change count onto the Stats field it reports as.
func (s *Stats) addTo(pass string, n int) {
	switch pass {
	case "const-fold", "simplify":
		s.Folded += n
	case "branch-fold":
		s.BranchesFolded += n
	case "copy-prop":
		s.CopiesForwards += n
	case "cse":
		s.CSEHits += n
	case "dce":
		s.DeadRemoved += n
	}
}

// Optimize runs the full sub-pass pipeline to a fixpoint (bounded). The
// compiler registers the sub-passes individually (internal/pipeline);
// Optimize is the standalone driver for direct users and tests.
func Optimize(f *ir.Func) Stats {
	var total Stats
	for i := 0; i < MaxRounds; i++ {
		changed := 0
		for _, sp := range SubPasses() {
			n := sp.Run(f)
			changed += n
			total.addTo(sp.Name, n)
		}
		if changed == 0 {
			break
		}
	}
	return total
}

// sameScope reports whether a value defined in block def may be referenced
// from block use under the region-boundary restriction.
func sameScope(def, use *ir.Block) bool {
	return def.Region == nil || def.Region == use.Region
}

// ---------------------------------------------------------------- folding

// ConstFold evaluates instructions whose operands are compile-time
// constants, rewriting them to OpConst/OpFConst.
func ConstFold(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Dst == 0 || in.Op == ir.OpConst || in.Op == ir.OpFConst {
				continue
			}
			if v, ok := foldInstr(f, in); ok {
				if in.Typ != nil && in.Typ.IsFloat() {
					in.Op = ir.OpFConst
					in.F = math.Float64frombits(uint64(v))
				} else {
					in.Op = ir.OpConst
					in.Const = v
				}
				in.Args = nil
				n++
			}
		}
	}
	return n
}

// constValOf returns the compile-time constant bits of v, if any.
func constValOf(f *ir.Func, v ir.Value) (int64, bool) {
	def := f.DefOf(v)
	if def == nil {
		return 0, false
	}
	switch def.Op {
	case ir.OpConst:
		return def.Const, true
	case ir.OpFConst:
		return int64(math.Float64bits(def.F)), true
	}
	return 0, false
}

func foldInstr(f *ir.Func, in *ir.Instr) (int64, bool) {
	if !in.Op.IsPureNonTrapping() && in.Op != ir.OpDiv && in.Op != ir.OpUDiv &&
		in.Op != ir.OpMod && in.Op != ir.OpUMod {
		return 0, false
	}
	var a, b int64
	switch len(in.Args) {
	case 1:
		var ok bool
		if a, ok = constValOf(f, in.Args[0]); !ok {
			return 0, false
		}
	case 2:
		var ok1, ok2 bool
		a, ok1 = constValOf(f, in.Args[0])
		b, ok2 = constValOf(f, in.Args[1])
		if !ok1 || !ok2 {
			return 0, false
		}
		// Scope restriction: folding only reads values, so it is safe
		// across regions — the result is a fresh constant.
	default:
		return 0, false
	}
	fa, fb := math.Float64frombits(uint64(a)), math.Float64frombits(uint64(b))
	fbits := func(x float64) int64 { return int64(math.Float64bits(x)) }
	bi := func(c bool) int64 {
		if c {
			return 1
		}
		return 0
	}
	switch in.Op {
	case ir.OpCopy:
		return a, true
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpUDiv:
		if b == 0 {
			return 0, false
		}
		return int64(uint64(a) / uint64(b)), true
	case ir.OpMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpUMod:
		if b == 0 {
			return 0, false
		}
		return int64(uint64(a) % uint64(b)), true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		return a << uint64(b&63), true
	case ir.OpAShr:
		return a >> uint64(b&63), true
	case ir.OpLShr:
		return int64(uint64(a) >> uint64(b&63)), true
	case ir.OpEq:
		return bi(a == b), true
	case ir.OpNe:
		return bi(a != b), true
	case ir.OpLt:
		return bi(a < b), true
	case ir.OpLe:
		return bi(a <= b), true
	case ir.OpULt:
		return bi(uint64(a) < uint64(b)), true
	case ir.OpULe:
		return bi(uint64(a) <= uint64(b)), true
	case ir.OpNeg:
		return -a, true
	case ir.OpNot:
		return ^a, true
	case ir.OpFAdd:
		return fbits(fa + fb), true
	case ir.OpFSub:
		return fbits(fa - fb), true
	case ir.OpFMul:
		return fbits(fa * fb), true
	case ir.OpFNeg:
		return fbits(-fa), true
	case ir.OpFEq:
		return bi(fa == fb), true
	case ir.OpFNe:
		return bi(fa != fb), true
	case ir.OpFLt:
		return bi(fa < fb), true
	case ir.OpFLe:
		return bi(fa <= fb), true
	case ir.OpIntToFloat:
		return fbits(float64(a)), true
	case ir.OpFloatToInt:
		return int64(fa), true
	}
	return 0, false
}

// FoldBranches rewrites branches on compile-time constants into jumps,
// removing the dead edges (and their φ arguments).
func FoldBranches(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		term := b.Term()
		if term == nil {
			continue
		}
		switch term.Op {
		case ir.OpBr:
			c, ok := constValOf(f, term.Args[0])
			if !ok {
				continue
			}
			keep := 0
			if c == 0 {
				keep = 1
			}
			dead := term.Targets[1-keep]
			kept := term.Targets[keep]
			term.Op = ir.OpJump
			term.Args = nil
			term.Targets = []*ir.Block{kept}
			if dead != kept {
				dead.RemovePred(b)
			} else {
				// Both targets identical: drop one pred occurrence.
				dead.RemovePred(b)
			}
			n++
		case ir.OpSwitch:
			c, ok := constValOf(f, term.Args[0])
			if !ok {
				continue
			}
			keep := len(term.Cases) // default
			for i, cv := range term.Cases {
				if cv == c {
					keep = i
					break
				}
			}
			kept := term.Targets[keep]
			// Remove pred occurrences for all non-kept edges.
			for i, t := range term.Targets {
				if i != keep {
					t.RemovePred(b)
				}
			}
			term.Op = ir.OpJump
			term.Args = nil
			term.Cases = nil
			term.Targets = []*ir.Block{kept}
			n++
		}
	}
	if n > 0 {
		f.RemoveUnreachable()
	}
	return n
}

// ---------------------------------------------------------------- copyprop

// CopyProp forwards OpCopy sources to their uses and simplifies φs whose
// arguments are all identical, subject to the region-scope restriction.
func CopyProp(f *ir.Func) int {
	n := 0
	// Resolve copy chains.
	src := map[ir.Value]ir.Value{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCopy && in.Dst != 0 {
				src[in.Dst] = in.Args[0]
			}
			if in.Op == ir.OpPhi && in.Dst != 0 && len(in.Args) > 0 {
				same := true
				for _, a := range in.Args {
					if a != in.Args[0] && a != in.Dst {
						same = false
						break
					}
				}
				if same && in.Args[0] != in.Dst {
					src[in.Dst] = in.Args[0]
				}
			}
		}
	}
	resolve := func(v ir.Value) ir.Value {
		seen := 0
		for {
			s, ok := src[v]
			if !ok || seen > len(src) {
				return v
			}
			v = s
			seen++
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				r := resolve(a)
				if r == a {
					continue
				}
				def := f.DefOf(r)
				if def != nil && def.Blk != nil && !sameScope(def.Blk, b) {
					continue
				}
				in.Args[i] = r
				n++
			}
		}
	}
	return n
}

// ---------------------------------------------------------------- CSE

// CSE performs dominator-tree value numbering over pure instructions.
// Constants are skipped (ConstFold canonicalizes toward OpConst, so folding
// duplicate constants into copies would just ping-pong); copy chains are
// resolved when forming keys so copies do not hide equivalences.
func CSE(f *ir.Func) int {
	dt := ir.BuildDomTree(f)
	n := 0
	type key struct {
		op   ir.Op
		a, b ir.Value
		c    int64
		sym  string
		slot int
	}
	avail := map[key][]ir.Value{} // stack of available values per key

	type constKey struct {
		op ir.Op
		c  int64
	}
	canon := map[constKey]ir.Value{}
	// chase resolves copy chains and gives equal literal constants a single
	// representative, purely for key formation.
	chase := func(v ir.Value) ir.Value {
		for i := 0; i < 64; i++ {
			def := f.DefOf(v)
			if def == nil {
				return v
			}
			switch def.Op {
			case ir.OpCopy:
				v = def.Args[0]
				continue
			case ir.OpConst:
				ck := constKey{ir.OpConst, def.Const}
				if r, ok := canon[ck]; ok {
					return r
				}
				canon[ck] = v
				return v
			case ir.OpFConst:
				ck := constKey{ir.OpFConst, int64(math.Float64bits(def.F))}
				if r, ok := canon[ck]; ok {
					return r
				}
				canon[ck] = v
				return v
			}
			return v
		}
		return v
	}

	var walk func(b *ir.Block) int
	walk = func(b *ir.Block) int {
		var pushed []key
		removed := 0
		for _, in := range b.Instrs {
			if in.Dst == 0 || !pure(in) ||
				in.Op == ir.OpConst || in.Op == ir.OpFConst || in.Op == ir.OpCopy {
				continue
			}
			k := key{op: in.Op, c: in.Const, sym: in.Sym, slot: in.Slot}
			if len(in.Args) > 0 {
				k.a = chase(in.Args[0])
			}
			if len(in.Args) > 1 {
				k.b = chase(in.Args[1])
			}
			if in.Op.IsCommutative() && k.b != 0 && k.b < k.a {
				k.a, k.b = k.b, k.a
			}
			if vs := avail[k]; len(vs) > 0 {
				prev := vs[len(vs)-1]
				prevDef := f.DefOf(prev)
				if prevDef != nil && prevDef.Blk != nil && sameScope(prevDef.Blk, b) {
					// Rewrite to a copy of the earlier value.
					in.Op = ir.OpCopy
					in.Args = []ir.Value{prev}
					in.Const, in.Sym, in.Slot = 0, "", 0
					removed++
					continue
				}
			}
			avail[k] = append(avail[k], in.Dst)
			pushed = append(pushed, k)
		}
		for _, c := range dt.Children[b] {
			removed += walk(c)
		}
		for _, k := range pushed {
			avail[k] = avail[k][:len(avail[k])-1]
		}
		return removed
	}
	n = walk(f.Entry())
	return n
}

func pure(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpPhi, ir.OpCall:
		return false
	}
	return in.Op.IsPureNonTrapping() || in.Op == ir.OpStackAddr
}

// ---------------------------------------------------------------- DCE

// DCE removes pure instructions whose results are never used, with
// mark-and-sweep so that mutually-referencing dead φ cycles die too.
func DCE(f *ir.Func) int {
	live := map[ir.Value]bool{}
	var work []ir.Value
	mark := func(v ir.Value) {
		if v != 0 && !live[v] {
			live[v] = true
			work = append(work, v)
		}
	}
	// Roots: arguments of instructions with effects (or whose removal is
	// otherwise disallowed), plus annotated region constants and keys,
	// which must stay alive until the splitter runs.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Dst != 0 && removable(in) {
				continue
			}
			for _, a := range in.Args {
				mark(a)
			}
		}
	}
	for _, r := range regionsOf(f) {
		for _, v := range r.Consts {
			mark(v)
		}
		for _, v := range r.Keys {
			mark(v)
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		def := f.DefOf(v)
		if def == nil {
			continue
		}
		for _, a := range def.Args {
			mark(a)
		}
	}
	n := 0
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Dst != 0 && !live[in.Dst] && removable(in) {
				n++
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return n
}

func removable(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpPhi:
		return true
	case ir.OpCall:
		bi := ir.Builtins[in.Sym]
		return bi != nil && bi.Pure
	}
	return in.Op.IsPureNonTrapping() || in.Op == ir.OpStackAddr || in.Op == ir.OpLoad
}

func regionsOf(f *ir.Func) []*ir.Region { return f.Regions }
