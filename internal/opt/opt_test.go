package opt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dyncc/internal/ir"
	"dyncc/internal/lower"
	"dyncc/internal/parser"
)

func compileSSA(t *testing.T, src string) *ir.Module {
	t.Helper()
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	mod, err := lower.Lower(file)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	for _, f := range mod.Funcs {
		ir.BuildSSA(f)
	}
	return mod
}

func countOp(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestConstFoldArithmetic(t *testing.T) {
	mod := compileSSA(t, `int f() { return (2 + 3) * 4 - 6 / 2; }`)
	f := mod.FuncIndex["f"]
	Optimize(f)
	if n := countOp(f, ir.OpAdd) + countOp(f, ir.OpMul) + countOp(f, ir.OpDiv); n != 0 {
		t.Errorf("%d arithmetic ops left after folding:\n%s", n, f)
	}
	env := ir.NewInterpEnv(mod, 0)
	if got, _ := env.CallFunc("f"); got != 17 {
		t.Errorf("f() = %d, want 17", got)
	}
}

func TestBranchFolding(t *testing.T) {
	mod := compileSSA(t, `int f(int x) { if (1) return x + 1; return x + 2; }`)
	f := mod.FuncIndex["f"]
	Optimize(f)
	if n := countOp(f, ir.OpBr); n != 0 {
		t.Errorf("constant branch not folded:\n%s", f)
	}
	env := ir.NewInterpEnv(mod, 0)
	if got, _ := env.CallFunc("f", 10); got != 11 {
		t.Errorf("f(10) = %d", got)
	}
}

func TestCSEUnifiesRepeatedExpr(t *testing.T) {
	mod := compileSSA(t, `int f(int *p, int x) { return p[x*2] + p[x*2+1]; }`)
	f := mod.FuncIndex["f"]
	Optimize(f)
	// x*2 is strength-reduced to a shift and shared.
	if n := countOp(f, ir.OpMul) + countOp(f, ir.OpShl); n > 1 {
		t.Errorf("repeated x*2 not unified (%d remain):\n%s", n, f)
	}
}

func TestSimplifyStrengthReduction(t *testing.T) {
	mod := compileSSA(t, `
unsigned f(unsigned x) { return x * 8 + x / 4 + x % 16; }`)
	f := mod.FuncIndex["f"]
	Optimize(f)
	if countOp(f, ir.OpMul) != 0 || countOp(f, ir.OpUDiv) != 0 || countOp(f, ir.OpUMod) != 0 {
		t.Errorf("power-of-two ops not reduced:\n%s", f)
	}
	env := ir.NewInterpEnv(mod, 0)
	got, err := env.CallFunc("f", 100)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(100*8 + 100/4 + 100%16); got != want {
		t.Errorf("f(100) = %d, want %d", got, want)
	}
}

func TestDCERemovesCyclicDeadPhis(t *testing.T) {
	// A loop whose accumulator is never used after the loop: the φ web is
	// circularly self-referential and must still die.
	mod := compileSSA(t, `
int f(int n) {
    int dead = 0;
    int i;
    for (i = 0; i < n; i++) { dead = dead + i; }
    return n;
}`)
	f := mod.FuncIndex["f"]
	Optimize(f)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Dst != 0 && f.ValueInfo(in.Dst).Name == "dead" {
				t.Errorf("dead accumulator survived: %s", in)
			}
		}
	}
}

func TestRegionScopeRestriction(t *testing.T) {
	// A value computed inside the region must not be reused by code
	// outside it (its definition may move into set-up code).
	mod := compileSSA(t, `
int use(int v) { return v; }
int f(int c, int x) {
    int r;
    dynamicRegion (c) {
        r = use(c * x);
    }
    return r + c * x;
}`)
	f := mod.FuncIndex["f"]
	Optimize(f)
	// The multiply outside the region must still exist (no cross-region CSE).
	muls := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpMul && b.Region == nil {
				muls++
			}
		}
	}
	if muls == 0 {
		t.Errorf("outside-region multiply was CSE'd into the region:\n%s", f)
	}
}

// Differential property test: Optimize must preserve the interpreter
// semantics of randomly generated arithmetic functions.
func TestOptimizePreservesSemantics(t *testing.T) {
	gen := func(seed int64) string {
		r := rand.New(rand.NewSource(seed))
		ops := []string{"+", "-", "*", "&", "|", "^"}
		expr := "x"
		for i := 0; i < 8; i++ {
			switch r.Intn(3) {
			case 0:
				expr = "(" + expr + " " + ops[r.Intn(len(ops))] + " y)"
			case 1:
				expr = "(" + expr + " " + ops[r.Intn(len(ops))] + " " +
					itoa(r.Intn(200)-100) + ")"
			case 2:
				expr = "(-" + expr + ")"
			}
		}
		return `int f(int x, int y) {
    int a = ` + expr + `;
    int b = a * 4 + x;
    if (b > 0) { a = a - b; } else { a = a + b; }
    while (a > 1000) { a = a - 997; }
    return a ^ b;
}`
	}
	check := func(seed int64, x, y int16) bool {
		src := gen(seed)
		m1 := compileSSA(t, src)
		m2 := compileSSA(t, src)
		Optimize(m2.FuncIndex["f"])
		e1 := ir.NewInterpEnv(m1, 0)
		e2 := ir.NewInterpEnv(m2, 0)
		v1, err1 := e1.CallFunc("f", int64(x), int64(y))
		v2, err2 := e2.CallFunc("f", int64(x), int64(y))
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		return err1 != nil || v1 == v2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func itoa(v int) string {
	if v < 0 {
		return "(0 - " + itoa(-v) + ")"
	}
	digits := "0123456789"
	if v < 10 {
		return string(digits[v])
	}
	return itoa(v/10) + string(digits[v%10])
}
