package pipeline

import (
	"errors"
	"strings"
	"testing"

	"dyncc/internal/ir"
	"dyncc/internal/types"
)

// fake is a scriptable pass.
type fake struct {
	name    string
	mutates bool
	run     func(*Context) error
}

func (f fake) Name() string    { return f.name }
func (f fake) MutatesIR() bool { return f.mutates }
func (f fake) Run(ctx *Context) error {
	if f.run != nil {
		return f.run(ctx)
	}
	return nil
}

// tinyModule builds a verifiable one-function module.
func tinyModule() *ir.Module {
	mod := ir.NewModule()
	f := ir.NewFunc("t", types.FuncType(types.IntType, nil))
	b := f.NewBlock()
	v := f.NewValue("v", types.IntType)
	b.Append(&ir.Instr{Op: ir.OpConst, Const: 1, Dst: v, Typ: types.IntType})
	b.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.Value{v}})
	f.ComputePreds()
	mod.Funcs = append(mod.Funcs, f)
	mod.FuncIndex = map[string]*ir.Func{"t": f}
	return mod
}

func TestRunOrderAndStats(t *testing.T) {
	m := New()
	var order []string
	mk := func(name string) Pass {
		return fake{name: name, run: func(ctx *Context) error {
			order = append(order, name)
			return nil
		}}
	}
	m.Register(mk("a"))
	m.RegisterOptional(mk("b"))
	m.Register(mk("c"))
	if err := m.Run(&Context{}); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "a,b,c" {
		t.Errorf("order: %v", order)
	}
	for _, st := range m.Stats() {
		if st.Runs != 1 || st.Duration <= 0 {
			t.Errorf("stat %+v", st)
		}
	}
}

func TestDisableValidation(t *testing.T) {
	m := New()
	m.Register(fake{name: "structural"})
	m.RegisterOptional(fake{name: "optional"})
	if err := m.Disable([]string{"nope"}); err == nil {
		t.Error("unknown pass accepted")
	}
	if err := m.Disable([]string{"structural"}); err == nil {
		t.Error("structural pass disable accepted")
	}
	if err := m.Disable([]string{"optional"}); err != nil {
		t.Fatal(err)
	}
	ran := false
	m2 := New()
	m2.RegisterOptional(fake{name: "optional", run: func(*Context) error {
		ran = true
		return nil
	}})
	if err := m2.Disable([]string{"optional"}); err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(&Context{}); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("disabled pass ran")
	}
}

func TestFixpointIterates(t *testing.T) {
	m := New()
	left := 3 // the pass "finds work" three rounds in a row
	sub := fake{name: "shrink", mutates: true, run: func(ctx *Context) error {
		if left > 0 {
			left--
			ctx.NoteChanges(1)
		}
		return nil
	}}
	m.RegisterFixpoint("group", 10, sub)
	if err := m.Run(&Context{}); err != nil {
		t.Fatal(err)
	}
	var group, shrink PassStat
	for _, st := range m.Stats() {
		switch st.Pass {
		case "group":
			group = st
		case "shrink":
			shrink = st
		}
	}
	// Three changing rounds plus the terminating quiet one.
	if shrink.Runs != 4 {
		t.Errorf("sub-pass runs: %d", shrink.Runs)
	}
	if shrink.Changes != 3 || group.Changes != 3 {
		t.Errorf("changes: sub %d group %d", shrink.Changes, group.Changes)
	}
	if group.Runs != 1 {
		t.Errorf("group runs: %d", group.Runs)
	}
}

func TestFixpointRespectsMaxRounds(t *testing.T) {
	m := New()
	runs := 0
	m.RegisterFixpoint("group", 5, fake{name: "always", run: func(ctx *Context) error {
		runs++
		ctx.NoteChanges(1) // never converges
		return nil
	}})
	if err := m.Run(&Context{}); err != nil {
		t.Fatal(err)
	}
	if runs != 5 {
		t.Errorf("runs: %d", runs)
	}
}

func TestVerifyInterposedAfterMutatingPass(t *testing.T) {
	mod := tinyModule()
	corrupt := fake{name: "corrupt", mutates: true, run: func(ctx *Context) error {
		// Drop the terminator: ir.Verify must reject this immediately.
		b := ctx.Module.Funcs[0].Blocks[0]
		b.Instrs = b.Instrs[:1]
		return nil
	}}
	m := New()
	m.Register(corrupt)
	err := m.Run(&Context{Module: mod})
	if err == nil || !strings.Contains(err.Error(), "verify after corrupt") {
		t.Errorf("expected verify error, got %v", err)
	}
}

func TestVerifyAllCoversNonMutatingPasses(t *testing.T) {
	mod := tinyModule()
	b := mod.Funcs[0].Blocks[0]
	b.Instrs = b.Instrs[:1] // pre-corrupted: only VerifyAll can notice
	sneaky := fake{name: "sneaky", mutates: false}
	m := New()
	m.Register(sneaky)
	if err := m.Run(&Context{Module: mod}); err != nil {
		t.Fatalf("non-mutating pass verified without VerifyAll: %v", err)
	}
	m2 := New()
	m2.Register(sneaky)
	if err := m2.Run(&Context{Module: mod, VerifyAll: true}); err == nil {
		t.Error("VerifyAll missed corrupted module")
	}
}

func TestPassErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	m := New()
	m.Register(fake{name: "fails", run: func(*Context) error { return boom }})
	ran := false
	m.Register(fake{name: "after", run: func(*Context) error {
		ran = true
		return nil
	}})
	if err := m.Run(&Context{}); !errors.Is(err, boom) {
		t.Errorf("error: %v", err)
	}
	if ran {
		t.Error("pipeline continued past a failed pass")
	}
}

func TestDumpIROnlyOnChange(t *testing.T) {
	mod := tinyModule()
	var dumps []string
	ctx := &Context{Module: mod, DumpIR: func(pass, fn, text string) {
		dumps = append(dumps, pass+":"+fn)
	}}
	left := 1
	m := New()
	m.RegisterFixpoint("group", 10, fake{name: "once", mutates: true,
		run: func(c *Context) error {
			if left > 0 {
				left--
				c.NoteChanges(1)
			}
			return nil
		}})
	m.Register(fake{name: "structural", mutates: true})
	if err := m.Run(ctx); err != nil {
		t.Fatal(err)
	}
	// One dump from the changing round of "once" (not the quiet round),
	// one from the structural mutating pass regardless of changes.
	want := []string{"once:t", "structural:t"}
	if strings.Join(dumps, ",") != strings.Join(want, ",") {
		t.Errorf("dumps: %v, want %v", dumps, want)
	}
}
