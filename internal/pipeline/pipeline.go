// Package pipeline is the static compiler's pass manager. The compiler
// used to be a hard-coded phase sequence inside core.Compile; here it is
// an explicit pipeline of named passes over a shared Context, with
//
//   - ir.Verify automatically interposed after every module-mutating pass
//     (and, with Context.VerifyAll, after every pass),
//   - per-pass wall-clock timings and change counts (CompileStats),
//   - optional IR snapshots after each mutating pass (Context.DumpIR),
//   - individually disableable optimization sub-passes for ablation
//     (Manager.Disable / core.Config.DisablePasses), and
//   - fixpoint groups: a set of sub-passes iterated in order until a full
//     round changes nothing (the optimizer's structure).
//
// The region-based-optimizer literature (Way & Pollock) and copy-and-patch
// systems both show that cheap extensibility comes from small, separately
// verifiable passes; this package is that seam.
package pipeline

import (
	"fmt"
	"time"

	"dyncc/internal/ast"
	"dyncc/internal/codegen"
	"dyncc/internal/ir"
	"dyncc/internal/split"
)

// Pass is one stage of the compiler. Run reads and writes the Context;
// a non-nil error aborts the pipeline.
type Pass interface {
	Name() string
	Run(*Context) error
}

// IRMutator is implemented by passes that mutate the IR module. The
// manager interposes ir.Verify (and the DumpIR hook) after every run of a
// mutating pass; non-mutating passes are verified only under VerifyAll.
type IRMutator interface {
	MutatesIR() bool
}

// RegionInfo is one dynamic region in module order. The pipeline computes
// this walk once (global region indices used to be re-derived by several
// loops in core.Compile) and every later consumer indexes it.
type RegionInfo struct {
	Fn     *ir.Func
	Region *ir.Region
	Index  int           // global region index (module order)
	Split  *split.Result // nil when compiling statically
}

// Context carries all compilation state between passes.
type Context struct {
	// Src is the MiniC source text (input to the parse pass).
	Src string

	// Knobs, copied from core.Config.
	Dynamic   bool
	VerifyAll bool // run ir.Verify after every pass, not just mutating ones
	// DumpIR, when non-nil, receives a textual IR snapshot of every
	// function after each module-mutating pass run (fixpoint sub-passes
	// dump only on rounds where they changed something).
	DumpIR func(pass, fn, text string)

	// Artifacts, produced by successive passes.
	File    *ast.File
	Module  *ir.Module
	Splits  map[*ir.Region]*split.Result
	Regions []RegionInfo
	Output  *codegen.Output

	changes int
}

// NoteChanges records that the current pass made n IR changes; fixpoint
// groups iterate until a full round notes none, and CompileStats reports
// the totals per pass.
func (c *Context) NoteChanges(n int) { c.changes += n }

// PassStat is one row of the pipeline's timing/stat report. For a
// fixpoint group, Duration covers the whole iteration (so it overlaps its
// sub-passes' rows) and Runs counts rounds; for a sub-pass, Runs counts
// executions across rounds. The synthetic "verify" row accumulates every
// interposed ir.Verify.
type PassStat struct {
	Pass     string
	Duration time.Duration
	Runs     int
	Changes  int
}

// VerifyPass is the name of the synthetic stat row for interposed
// verification.
const VerifyPass = "verify"

type entry struct {
	pass     Pass
	required bool   // structural pass: cannot be disabled
	group    string // non-empty for fixpoint sub-passes (name of the group)
}

// Manager registers passes and runs them in order.
type Manager struct {
	entries  []entry
	byName   map[string]int // index into entries
	disabled map[string]bool
	stats    []PassStat
	statIdx  map[string]int
}

// New returns an empty pass manager.
func New() *Manager {
	return &Manager{
		byName:   map[string]int{},
		disabled: map[string]bool{},
		statIdx:  map[string]int{},
	}
}

func (m *Manager) add(p Pass, required bool, group string) {
	if _, dup := m.byName[p.Name()]; dup {
		panic(fmt.Sprintf("pipeline: duplicate pass %q", p.Name()))
	}
	m.byName[p.Name()] = len(m.entries)
	m.entries = append(m.entries, entry{pass: p, required: required, group: group})
}

// Register appends a required structural pass (parse, lower, ssa, split,
// codegen): it cannot be disabled, because later passes depend on its
// artifacts.
func (m *Manager) Register(p Pass) { m.add(p, true, "") }

// RegisterOptional appends a pass that may be disabled by name.
func (m *Manager) RegisterOptional(p Pass) { m.add(p, false, "") }

// RegisterFixpoint appends a named group of optional sub-passes iterated
// in order until a full round notes no changes (or maxRounds is reached).
// The group itself and each sub-pass can be disabled independently.
func (m *Manager) RegisterFixpoint(name string, maxRounds int, subs ...Pass) {
	fx := &fixpoint{name: name, max: maxRounds, subs: subs, m: m}
	m.add(fx, false, "")
	for _, p := range subs {
		m.add(p, false, name)
	}
}

// Passes returns the registered pass names in pipeline order (fixpoint
// sub-passes follow their group).
func (m *Manager) Passes() []string {
	names := make([]string, len(m.entries))
	for i, e := range m.entries {
		names[i] = e.pass.Name()
	}
	return names
}

// Disable turns off the named passes. Unknown names and structural passes
// are errors (a typo in an ablation flag must not silently run the full
// pipeline).
func (m *Manager) Disable(names []string) error {
	for _, n := range names {
		i, ok := m.byName[n]
		if !ok {
			return fmt.Errorf("pipeline: unknown pass %q (have %v)", n, m.Passes())
		}
		if m.entries[i].required {
			return fmt.Errorf("pipeline: pass %q is structural and cannot be disabled", n)
		}
		m.disabled[n] = true
	}
	return nil
}

// Run executes the enabled passes in order. Fixpoint sub-passes are run
// by their group, not at their own registration position.
func (m *Manager) Run(ctx *Context) error {
	for _, e := range m.entries {
		if e.group != "" || m.disabled[e.pass.Name()] {
			continue
		}
		if _, err := m.runOne(ctx, e.pass, false); err != nil {
			return err
		}
	}
	return nil
}

// runOne times and runs a single pass, interposes verification/dumping,
// and records its stats. inGroup marks fixpoint sub-pass runs, whose IR
// dumps are suppressed on rounds that changed nothing.
func (m *Manager) runOne(ctx *Context, p Pass, inGroup bool) (int, error) {
	ctx.changes = 0
	start := time.Now()
	err := p.Run(ctx)
	d := time.Since(start)
	if d <= 0 {
		d = 1 // clock granularity floor: every executed pass has a duration
	}
	changed := ctx.changes
	m.note(p.Name(), d, changed)
	if err != nil {
		// Pass errors surface unwrapped: parse/lower diagnostics are
		// user-facing and their text must not grow pipeline prefixes.
		return changed, err
	}
	mutates := false
	if mu, ok := p.(IRMutator); ok {
		mutates = mu.MutatesIR()
	}
	if (mutates || ctx.VerifyAll) && ctx.Module != nil {
		if err := m.verify(ctx, p.Name()); err != nil {
			return changed, err
		}
	}
	if mutates && ctx.Module != nil && ctx.DumpIR != nil && (!inGroup || changed > 0) {
		for _, f := range ctx.Module.Funcs {
			ctx.DumpIR(p.Name(), f.Name, f.String())
		}
	}
	return changed, nil
}

// verify checks every function and accumulates the cost under the
// synthetic "verify" stat row.
func (m *Manager) verify(ctx *Context, after string) error {
	start := time.Now()
	var err error
	for _, f := range ctx.Module.Funcs {
		if err = ir.Verify(f); err != nil {
			err = fmt.Errorf("internal: verify after %s: %w", after, err)
			break
		}
	}
	d := time.Since(start)
	if d <= 0 {
		d = 1
	}
	m.note(VerifyPass, d, 0)
	return err
}

func (m *Manager) note(pass string, d time.Duration, changes int) {
	i, ok := m.statIdx[pass]
	if !ok {
		i = len(m.stats)
		m.statIdx[pass] = i
		m.stats = append(m.stats, PassStat{Pass: pass})
	}
	m.stats[i].Duration += d
	m.stats[i].Runs++
	m.stats[i].Changes += changes
}

// Stats returns per-pass durations, run counts and change counts in
// first-execution order (disabled passes are absent).
func (m *Manager) Stats() []PassStat {
	out := make([]PassStat, len(m.stats))
	copy(out, m.stats)
	return out
}

// fixpoint iterates its enabled sub-passes in order until a full round
// notes no changes.
type fixpoint struct {
	name string
	max  int
	subs []Pass
	m    *Manager
}

func (fx *fixpoint) Name() string { return fx.name }

func (fx *fixpoint) Run(ctx *Context) error {
	total := 0
	for round := 0; round < fx.max; round++ {
		changed := 0
		for _, p := range fx.subs {
			if fx.m.disabled[p.Name()] {
				continue
			}
			n, err := fx.m.runOne(ctx, p, true)
			if err != nil {
				return err
			}
			changed += n
		}
		total += changed
		if changed == 0 {
			break
		}
	}
	// Attribute the group's total so its own stat row reports it.
	ctx.changes = total
	return nil
}
