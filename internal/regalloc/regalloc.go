// Package regalloc implements linear-scan register allocation over the
// whole function — including template blocks, so that dynamically-compiled
// code is register-allocated "in the context of its enclosing procedure"
// (paper section 3.3) and stitched code's registers line up with the
// surrounding code at run time.
package regalloc

import (
	"fmt"
	"sort"

	"dyncc/internal/ir"
	"dyncc/internal/vm"
)

// Loc is a value's assigned location.
type Loc struct {
	Reg     vm.Reg
	Spilled bool
	Slot    int // stack slot when spilled
}

// Allocation maps values to locations.
type Allocation struct {
	Loc       map[ir.Value]Loc
	FrameSize int // total stack words incl. spills
}

// Verify enables the post-allocation overlap check (cheap; kept on). A
// constant, not a variable: package-level compiler state must be immutable
// so concurrent compilations (core.CompileBatch) share nothing mutable.
const Verify = true

// Spill-shuttle registers reserved for the code generator.
const (
	TempA = vm.Reg(9)
	TempB = vm.Reg(10)
	TempC = vm.Reg(11)
)

// Pool of allocatable registers.
func pool() []vm.Reg {
	var rs []vm.Reg
	for r := vm.Reg(12); r <= vm.RAllocLast; r++ {
		rs = append(rs, r)
	}
	return rs
}

// holeSet is the set of values that are template holes (no register).
type holeSet map[ir.Value]bool

// Allocate assigns registers (or spill slots) to every value of f.
// holes lists values that are table holes and take no register.
func Allocate(f *ir.Func, holes map[ir.Value]bool) *Allocation {
	hs := holeSet(holes)
	order := blockOrder(f)
	liveIn, liveOut := liveness(f, order, hs)

	// Build conservative single-range intervals.
	type interval struct {
		v          ir.Value
		start, end int
	}
	pos := map[*ir.Block]int{}
	n := 0
	for _, b := range order {
		pos[b] = n
		n += len(b.Instrs) + 1
	}
	iv := map[ir.Value]*interval{}
	touch := func(v ir.Value, p int) {
		if v == 0 || hs[v] {
			return
		}
		i := iv[v]
		if i == nil {
			iv[v] = &interval{v: v, start: p, end: p}
			return
		}
		if p < i.start {
			i.start = p
		}
		if p > i.end {
			i.end = p
		}
	}
	// Parameters are defined by the prologue: their intervals must start at
	// position 0 or another value could claim their register first.
	for _, p := range f.Params {
		touch(p, 0)
	}
	for _, b := range order {
		bs := pos[b]
		be := bs + len(b.Instrs)
		// A value live across either block boundary is live at that
		// boundary position: without this, a value entering a block and
		// used mid-block would leave its head span uncovered and another
		// definition could steal its register.
		for v := range liveIn[b] {
			touch(v, bs)
		}
		for v := range liveOut[b] {
			touch(v, bs)
			touch(v, be)
		}
		for k, in := range b.Instrs {
			p := bs + k
			touch(in.Dst, p)
			for _, a := range in.Args {
				touch(a, p)
			}
		}
	}

	ivs := make([]*interval, 0, len(iv))
	for _, i := range iv {
		ivs = append(ivs, i)
	}
	sort.Slice(ivs, func(a, b int) bool {
		if ivs[a].start != ivs[b].start {
			return ivs[a].start < ivs[b].start
		}
		return ivs[a].v < ivs[b].v
	})

	alloc := &Allocation{Loc: map[ir.Value]Loc{}, FrameSize: f.StackSize}
	free := pool()
	type active struct {
		iv  *interval
		reg vm.Reg
	}
	var act []active

	expire := func(p int) {
		na := act[:0]
		for _, a := range act {
			if a.iv.end < p {
				free = append(free, a.reg)
			} else {
				na = append(na, a)
			}
		}
		act = na
	}
	spillSlot := func() int {
		s := alloc.FrameSize
		alloc.FrameSize++
		return s
	}

	defer func() {
		if !Verify {
			return
		}
		type assigned struct {
			iv  *interval
			reg vm.Reg
		}
		var as []assigned
		for _, i := range ivs {
			l := alloc.Loc[i.v]
			if l.Spilled || l.Reg == 0 {
				continue
			}
			as = append(as, assigned{i, l.Reg})
		}
		for x := 0; x < len(as); x++ {
			for y := x + 1; y < len(as); y++ {
				if as[x].reg != as[y].reg {
					continue
				}
				a, b := as[x].iv, as[y].iv
				if a.start <= b.end && b.start <= a.end {
					panic(fmt.Sprintf("regalloc: %s: v%d [%d,%d] and v%d [%d,%d] share r%d",
						f.Name, a.v, a.start, a.end, b.v, b.start, b.end, as[x].reg))
				}
			}
		}
	}()

	for _, i := range ivs {
		expire(i.start)
		if len(free) > 0 {
			r := free[len(free)-1]
			free = free[:len(free)-1]
			alloc.Loc[i.v] = Loc{Reg: r}
			act = append(act, active{iv: i, reg: r})
			continue
		}
		// Spill the interval ending furthest away.
		far := -1
		for k, a := range act {
			if far < 0 || a.iv.end > act[far].iv.end {
				far = k
			}
		}
		if far >= 0 && act[far].iv.end > i.end {
			r := act[far].reg
			alloc.Loc[act[far].iv.v] = Loc{Spilled: true, Slot: spillSlot()}
			alloc.Loc[i.v] = Loc{Reg: r}
			act[far] = active{iv: i, reg: r}
		} else {
			alloc.Loc[i.v] = Loc{Spilled: true, Slot: spillSlot()}
		}
	}
	return alloc
}

// blockOrder returns all blocks in a deterministic layout order.
func blockOrder(f *ir.Func) []*ir.Block {
	return f.Blocks
}

// liveness computes per-block live-out sets (backward union dataflow).
// Hole values are excluded.
func liveness(f *ir.Func, order []*ir.Block, hs holeSet) (map[*ir.Block]map[ir.Value]bool, map[*ir.Block]map[ir.Value]bool) {
	use := map[*ir.Block]map[ir.Value]bool{}
	def := map[*ir.Block]map[ir.Value]bool{}
	for _, b := range order {
		u, d := map[ir.Value]bool{}, map[ir.Value]bool{}
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a != 0 && !hs[a] && !d[a] {
					u[a] = true
				}
			}
			if in.Dst != 0 {
				d[in.Dst] = true
			}
		}
		use[b], def[b] = u, d
	}
	liveIn := map[*ir.Block]map[ir.Value]bool{}
	liveOut := map[*ir.Block]map[ir.Value]bool{}
	for _, b := range order {
		liveIn[b] = map[ir.Value]bool{}
		liveOut[b] = map[ir.Value]bool{}
	}
	for changed := true; changed; {
		changed = false
		for k := len(order) - 1; k >= 0; k-- {
			b := order[k]
			out := liveOut[b]
			for _, s := range b.Succs() {
				for v := range liveIn[s] {
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
			}
			in := liveIn[b]
			for v := range use[b] {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			for v := range out {
				if !def[b][v] && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}
	return liveIn, liveOut
}
