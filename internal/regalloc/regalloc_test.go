package regalloc

import (
	"fmt"
	"testing"

	"dyncc/internal/ir"
	"dyncc/internal/types"
)

// chainFunc builds a straight-line function with n live-at-once values:
// v_i = param + i, then a final sum consuming all of them.
func chainFunc(n int) *ir.Func {
	f := ir.NewFunc("chain", types.FuncType(types.IntType, []*types.Type{types.IntType}))
	p := f.NewValue("p", types.IntType)
	f.Params = append(f.Params, p)
	b := f.NewBlock()
	var vals []ir.Value
	for i := 0; i < n; i++ {
		c := f.NewValue("", types.IntType)
		b.Append(&ir.Instr{Op: ir.OpConst, Const: int64(i), Dst: c, Typ: types.IntType})
		v := f.NewValue("", types.IntType)
		b.Append(&ir.Instr{Op: ir.OpAdd, Args: []ir.Value{p, c}, Dst: v, Typ: types.IntType})
		vals = append(vals, v)
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		nv := f.NewValue("", types.IntType)
		b.Append(&ir.Instr{Op: ir.OpAdd, Args: []ir.Value{acc, v}, Dst: nv, Typ: types.IntType})
		acc = nv
	}
	b.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.Value{acc}})
	f.ComputePreds()
	return f
}

func TestNoSpillUnderPressureLimit(t *testing.T) {
	f := chainFunc(10)
	a := Allocate(f, nil)
	for v, loc := range a.Loc {
		if loc.Spilled {
			t.Errorf("v%d spilled with low pressure", v)
		}
	}
}

func TestSpillsUnderHighPressure(t *testing.T) {
	// More simultaneously-live values than registers forces spills; the
	// overlap verifier (always on) proves assignments stay disjoint.
	f := chainFunc(60)
	a := Allocate(f, nil)
	spills := 0
	for _, loc := range a.Loc {
		if loc.Spilled {
			spills++
		}
	}
	if spills == 0 {
		t.Error("expected spills with 60 live values")
	}
	if a.FrameSize < spills {
		t.Errorf("frame size %d < %d spills", a.FrameSize, spills)
	}
}

func TestHolesGetNoRegisters(t *testing.T) {
	f := ir.NewFunc("h", types.FuncType(types.IntType, []*types.Type{types.IntType}))
	p := f.NewValue("p", types.IntType)
	f.Params = append(f.Params, p)
	b := f.NewBlock()
	hole := f.NewValue("hole", types.IntType) // no definition: a table hole
	v := f.NewValue("", types.IntType)
	b.Append(&ir.Instr{Op: ir.OpAdd, Args: []ir.Value{p, hole}, Dst: v, Typ: types.IntType})
	b.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.Value{v}})
	f.ComputePreds()
	a := Allocate(f, map[ir.Value]bool{hole: true})
	if loc, ok := a.Loc[hole]; ok && (loc.Reg != 0 || loc.Spilled) {
		t.Errorf("hole allocated a location: %+v", loc)
	}
}

func TestParamsProtectedFromEntry(t *testing.T) {
	// A parameter whose first use comes late must still hold its register
	// from position 0 (the prologue writes it there).
	f := ir.NewFunc("late", types.FuncType(types.IntType,
		[]*types.Type{types.IntType, types.IntType}))
	p1 := f.NewValue("a", types.IntType)
	p2 := f.NewValue("b", types.IntType)
	f.Params = append(f.Params, p1, p2)
	b := f.NewBlock()
	var clutter []ir.Value
	for i := 0; i < 5; i++ {
		c := f.NewValue("", types.IntType)
		b.Append(&ir.Instr{Op: ir.OpConst, Const: int64(i), Dst: c, Typ: types.IntType})
		clutter = append(clutter, c)
	}
	s := f.NewValue("", types.IntType)
	b.Append(&ir.Instr{Op: ir.OpAdd, Args: []ir.Value{p1, p2}, Dst: s, Typ: types.IntType})
	for _, c := range clutter {
		nv := f.NewValue("", types.IntType)
		b.Append(&ir.Instr{Op: ir.OpAdd, Args: []ir.Value{s, c}, Dst: nv, Typ: types.IntType})
		s = nv
	}
	b.Append(&ir.Instr{Op: ir.OpRet, Args: []ir.Value{s}})
	f.ComputePreds()
	a := Allocate(f, nil)
	seen := map[string]ir.Value{}
	for v, loc := range a.Loc {
		if loc.Spilled {
			continue
		}
		key := fmt.Sprintf("r%d", loc.Reg)
		_ = key
		_ = v
		_ = seen
	}
	// The real assertion is the built-in overlap verifier: it panics on any
	// double assignment, so reaching here means the intervals are disjoint.
}
