// Stencil-path properties: the copy-and-patch fast path (the `stencil`
// pipeline pass plus the stitcher's precompiled emission route) must be a
// pure performance transform. Two properties pin that down:
//
//   - RunStencil: semantic differential. Stencil stitching, interpretive
//     stitching (`-disable-pass stencil`) and unoptimized-IR interpretation
//     must agree on every generated program, inline and with asynchronous
//     background stitching.
//
//   - StencilIdentity: byte identity. The two stitcher paths must produce
//     *identical* vm segments — same Code, same Consts — for the same
//     (region, key) sequence. This is the strong form: the fast path is
//     not merely equivalent, it is the same emission, so every downstream
//     property (fusion, peephole, generation fencing, golden tables) holds
//     for both paths by construction.
package testgen

import (
	"fmt"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
	"dyncc/internal/vm"
)

// RunStencil differentially executes the generated program for seed across
// the stencil/interpretive × inline/async subject matrix against the
// unoptimized-IR reference, then asserts byte identity of the stitched
// segments across the two stitcher paths.
func RunStencil(seed, cIn, xIn int64) error {
	tc, err := buildCase(seed, cIn, xIn)
	if err != nil {
		return err
	}
	subjects := []struct {
		name string
		cfg  core.Config
	}{
		{"stencil", core.Config{Dynamic: true, Optimize: true}},
		{"interp", core.Config{Dynamic: true, Optimize: true,
			DisablePasses: []string{"stencil"}}},
		{"stencil+async", core.Config{Dynamic: true, Optimize: true,
			Cache: rtr.CacheOptions{AsyncStitch: true}}},
		{"interp+async", core.Config{Dynamic: true, Optimize: true,
			DisablePasses: []string{"stencil"},
			Cache:         rtr.CacheOptions{AsyncStitch: true}}},
	}
	for _, sub := range subjects {
		if err := tc.checkSubject(sub.name, sub.cfg); err != nil {
			return err
		}
	}
	return tc.stencilIdentity()
}

// runKept compiles the case under cfg with diagnostic segment retention on,
// runs the full call sequence, and returns the compiled program so the
// caller can inspect Runtime.Stitched. Inline stitching only: stitch order
// (and therefore retention order) is then deterministic, so two subjects
// running the same call sequence retain comparable slices.
func (tc *testCase) runKept(name string, cfg core.Config) (*core.Compiled, error) {
	cfg.Cache.KeepStitched = true
	p, err := core.Compile(tc.src, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s compile: %w\n%s", name, err, tc.src)
	}
	m := p.NewMachine(0)
	va, err := m.Alloc(tc.n)
	if err != nil {
		p.Runtime.Close()
		return nil, fmt.Errorf("%s alloc: %w", name, err)
	}
	copy(m.Mem[va:va+tc.n], tc.contents)
	for _, x := range tc.xs {
		if _, err := m.Call("f", va, tc.n, tc.c, x); err != nil {
			p.Runtime.Close()
			return nil, fmt.Errorf("%s run (c=%d x=%d): %w\n%s", name, tc.c, x, err, tc.src)
		}
	}
	return p, nil
}

// stencilIdentity asserts that stencil and interpretive stitching emit
// byte-identical segments, and that the StencilStitches counter classifies
// both subjects correctly.
func (tc *testCase) stencilIdentity() error {
	sp, err := tc.runKept("identity:stencil", core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		return err
	}
	defer sp.Runtime.Close()
	ip, err := tc.runKept("identity:interp", core.Config{Dynamic: true, Optimize: true,
		DisablePasses: []string{"stencil"}})
	if err != nil {
		return err
	}
	defer ip.Runtime.Close()

	scs, ics := sp.Runtime.CacheStats(), ip.Runtime.CacheStats()
	if ics.StencilStitches != 0 {
		return fmt.Errorf("identity: %d stencil stitches with the pass disabled (seed=%d)\n%s",
			ics.StencilStitches, tc.seed, tc.src)
	}
	// Every region codegen produces must precompile (Build declining a
	// region the pass fed it would silently ablate the fast path), so with
	// the pass on every stitch takes the stencil route.
	for i, r := range sp.Runtime.Regions {
		if r.Stencil == nil {
			return fmt.Errorf("identity: region %d (%s) has no stencil (seed=%d)\n%s",
				i, r.Name, tc.seed, tc.src)
		}
	}
	if scs.StencilStitches != scs.Stitches {
		return fmt.Errorf("identity: %d of %d stitches took the stencil path (seed=%d)\n%s",
			scs.StencilStitches, scs.Stitches, tc.seed, tc.src)
	}

	for region := range sp.Runtime.Regions {
		ss, is := sp.Runtime.Stitched[region], ip.Runtime.Stitched[region]
		if len(ss) != len(is) {
			return fmt.Errorf("identity: region %d retained %d stencil vs %d interpretive segments (seed=%d)\n%s",
				region, len(ss), len(is), tc.seed, tc.src)
		}
		for k := range ss {
			if err := sameSegment(ss[k], is[k]); err != nil {
				return fmt.Errorf("identity: region %d segment %d: %w (seed=%d)\n%s",
					region, k, err, tc.seed, tc.src)
			}
		}
	}
	return nil
}

// sameSegment compares the emitted artifact fields the two stitcher paths
// must agree on byte for byte.
func sameSegment(a, b *vm.Segment) error {
	if len(a.Code) != len(b.Code) {
		return fmt.Errorf("code length %d != %d", len(a.Code), len(b.Code))
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			return fmt.Errorf("code[%d] differs: %+v != %+v", i, a.Code[i], b.Code[i])
		}
	}
	if len(a.Consts) != len(b.Consts) {
		return fmt.Errorf("const pool length %d != %d", len(a.Consts), len(b.Consts))
	}
	for i := range a.Consts {
		if a.Consts[i] != b.Consts[i] {
			return fmt.Errorf("consts[%d] differs: %d != %d", i, a.Consts[i], b.Consts[i])
		}
	}
	return nil
}
