package testgen

import (
	"math/rand"
	"testing"
)

// TestInlineFixedSeeds runs the call-boundary differential over a fixed
// block of seeds: call-bearing programs, inlined vs -disable-pass inline
// vs asynchronous stitching, all against the never-inlining reference
// interpreter. The corpus as a whole must actually trigger the pass — a
// generator regression that stops emitting inlinable call sites would
// otherwise make the sweep vacuous.
func TestInlineFixedSeeds(t *testing.T) {
	n := int64(150)
	if testing.Short() {
		n = 25
	}
	total := 0
	for seed := int64(1); seed <= n; seed++ {
		r := rand.New(rand.NewSource(seed * 7919))
		c := int64(r.Intn(1024) - 512)
		x := int64(r.Intn(4000) - 2000)
		inlines, err := RunInline(seed, c, x)
		if err != nil {
			t.Fatal(err)
		}
		total += inlines
	}
	if total == 0 {
		t.Fatalf("corpus of %d call-bearing programs triggered zero inlines", n)
	}
}

// FuzzInline feeds the same triple space from the native fuzzer; any
// divergence across the graft transform (or a compile failure on generated
// call-bearing source) is a crash.
func FuzzInline(f *testing.F) {
	f.Add(int64(1), int64(7), int64(42))
	f.Add(int64(3), int64(-200), int64(55))
	f.Add(int64(21), int64(511), int64(-1))
	f.Add(int64(77), int64(0), int64(1999))
	f.Fuzz(func(t *testing.T, seed, c, x int64) {
		if _, err := RunInline(seed, c, x); err != nil {
			t.Fatal(err)
		}
	})
}
