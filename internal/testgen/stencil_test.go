package testgen

import (
	"math/rand"
	"testing"
)

// TestStencilFixedSeeds is the copy-and-patch differential: over the same
// fixed seed corpus as TestDifferentialFixedSeeds, stencil stitching,
// interpretive stitching and unoptimized-IR interpretation must agree
// (inline and async), and the two stitcher paths must emit byte-identical
// segments. Run under -race this also exercises the pooled stitcher
// scratch and the background workers concurrently.
func TestStencilFixedSeeds(t *testing.T) {
	n := int64(150)
	if testing.Short() {
		n = 20
	}
	for seed := int64(1); seed <= n; seed++ {
		r := rand.New(rand.NewSource(seed * 7919))
		c := int64(r.Intn(1024) - 512)
		x := int64(r.Intn(4000) - 2000)
		if err := RunStencil(seed, c, x); err != nil {
			t.Fatal(err)
		}
	}
}
