package testgen

import (
	"testing"

	"dyncc/internal/core"
)

// The fixed-seed differential sweep, run through CompileBatch with eight
// workers: every generated program must come out of the batch compiler
// byte-identical to a serial compile and must still match the
// unoptimized-IR reference semantics. Short mode (the make check smoke)
// trims the seed count to stay within its time budget.
func TestBatchSweepFixedSeeds(t *testing.T) {
	seeds := int64(150)
	if testing.Short() {
		seeds = 30
	}
	if err := RunBatch(seeds, 8); err != nil {
		t.Fatal(err)
	}
}

// Every tenant flavor must be deterministic per seed, compile cleanly, and
// execute: the serving benchmark depends on Tenant never producing a
// broken program.
func TestTenantProgramsCompile(t *testing.T) {
	seeds := int64(60)
	if testing.Short() {
		seeds = 12
	}
	cfg := core.Config{Dynamic: true, Optimize: true}
	for seed := int64(0); seed < seeds; seed++ {
		src := Tenant(seed)
		if src != Tenant(seed) {
			t.Fatalf("Tenant(%d) is not deterministic", seed)
		}
		c, err := core.Compile(src, cfg)
		if err != nil {
			t.Fatalf("Tenant(%d) does not compile: %v\n%s", seed, err, src)
		}
		m := c.NewMachine(0)
		table := []int64{3, 9, 27, 81}
		va, err := m.Alloc(int64(len(table)))
		if err != nil {
			t.Fatal(err)
		}
		copy(m.Mem[va:va+int64(len(table))], table)
		for k := int64(0); k < 4; k++ {
			if _, err := m.Call(TenantEntry, va, int64(len(table)), k, 17); err != nil {
				t.Fatalf("Tenant(%d) serve(k=%d) failed: %v\n%s", seed, k, err, src)
			}
		}
		c.Runtime.Close()
	}
}

// Tenant programs must also be pure scheduling-wise: a batch compile of a
// tenant corpus matches serial compiles byte for byte.
func TestTenantBatchMatchesSerial(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 9
	}
	srcs := make([]string, n)
	for i := range srcs {
		srcs[i] = Tenant(int64(i))
	}
	cfg := core.Config{Dynamic: true, Optimize: true}
	want := make([]string, n)
	for i, src := range srcs {
		c, err := core.Compile(src, cfg)
		if err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
		want[i] = Fingerprint(c)
	}
	bcfg := cfg
	bcfg.CompileWorkers = 8
	br, err := core.CompileBatch(srcs, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range br.Programs {
		if Fingerprint(c) != want[i] {
			t.Errorf("tenant %d batch output diverges from serial", i)
		}
	}
}
