// Automatic-promotion differential testing: the same generated corpus as
// Run, but with every annotation *stripped* — region headers, `unrolled`
// markers, `dynamic[...]` load hints — so the programs are plain MiniC.
// The speculative pipeline (core.Config.AutoRegion) must then rediscover
// profitable regions on its own, promote them once their operands prove
// hot and stable, stitch guarded code, and deoptimize when an operand
// changes — all without ever diverging from the unoptimized-IR reference.
// Each input is run repeatedly so the key tuple stabilizes (promotion) and
// every input change flips it (deoptimization): one sweep exercises the
// full profile → promote → guard → deopt → re-promote cycle.
package testgen

import (
	"fmt"
	"regexp"
	"strings"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
)

var regionHeaderRe = regexp.MustCompile(`dynamicRegion[^{]*\{`)

// StripAnnotations removes every dynamic-compilation annotation from
// generated MiniC source, leaving a plain program with identical
// semantics: region headers collapse to bare blocks, `unrolled for`
// becomes `for`, and `dynamic[` load hints become plain indexing.
func StripAnnotations(src string) string {
	s := regionHeaderRe.ReplaceAllString(src, "{")
	s = strings.ReplaceAll(s, "unrolled for", "for")
	s = strings.ReplaceAll(s, " dynamic[", "[")
	return s
}

// AutoStats aggregates the promotion activity a RunAuto sweep observed, so
// corpus-level tests can assert the machinery actually engaged (at least
// one promotion and one deoptimization across the corpus) rather than
// silently running everything unspecialized.
type AutoStats struct {
	Promotions uint64
	Deopts     uint64
}

// autoRepeats is how many times each (c, x) input is re-run under the
// speculative subject: enough consecutive identical key tuples to clear
// the aggressive promotion thresholds below, so every input change lands
// on promoted guarded code and exercises deoptimization.
const autoRepeats = 5

// autoOpts are deliberately aggressive promotion thresholds for testing:
// promote after 3 calls with a 2-deep stability window, back off gently so
// regions re-promote (and re-deopt) several times within one sweep.
var autoOpts = rtr.AutoOptions{
	PromoteThreshold: 3,
	StabilityWindow:  2,
	BackoffFactor:    2,
	MaxThreshold:     8,
}

// RunAuto generates the program for seed, strips its annotations, and
// differentially executes four subjects against the unoptimized-IR
// reference:
//
//   - the annotated dynamic pipeline (anchor — the corpus still passes the
//     ordinary differential);
//   - the stripped source without AutoRegion (the rewrite target must be
//     semantics-preserving before speculation enters);
//   - the stripped source with AutoRegion and aggressive thresholds, each
//     input repeated so regions promote, guard and deoptimize;
//   - the stripped source with AutoRegion set but the `autoregion` pass
//     ablated (`-disable-pass autoregion` must fully neutralize it).
//
// Returns the promotion activity of the speculative subject for
// corpus-level assertions.
func RunAuto(seed, cIn, xIn int64) (AutoStats, error) {
	var as AutoStats
	tc, err := buildCase(seed, cIn, xIn)
	if err != nil {
		return as, err
	}
	stripped := StripAnnotations(tc.src)

	if err := tc.checkSubject("auto:annotated",
		core.Config{Dynamic: true, Optimize: true}); err != nil {
		return as, err
	}
	if err := tc.checkAuto("auto:off", stripped,
		core.Config{Dynamic: true, Optimize: true}, nil); err != nil {
		return as, err
	}
	on := core.Config{Dynamic: true, Optimize: true,
		AutoRegion: true, Auto: autoOpts}
	if err := tc.checkAuto("auto:on", stripped, on, &as); err != nil {
		return as, err
	}
	ablated := on
	ablated.DisablePasses = []string{"autoregion"}
	if err := tc.checkAuto("auto:ablated", stripped, ablated, nil); err != nil {
		return as, err
	}
	return as, nil
}

// checkAuto compiles src under cfg and runs every input autoRepeats times,
// comparing each result against the reference outputs. When as is non-nil
// the subject's promotion counters are folded into it.
func (tc *testCase) checkAuto(name, src string, cfg core.Config,
	as *AutoStats) error {

	p, err := core.Compile(src, cfg)
	if err != nil {
		return fmt.Errorf("%s compile: %w\n%s", name, err, src)
	}
	defer p.Runtime.Close()
	m := p.NewMachine(0)
	va, err := m.Alloc(tc.n)
	if err != nil {
		return fmt.Errorf("%s alloc: %w", name, err)
	}
	copy(m.Mem[va:va+tc.n], tc.contents)
	for i, x := range tc.xs {
		for rep := 0; rep < autoRepeats; rep++ {
			got, err := m.Call("f", va, tc.n, tc.c, x)
			if err != nil {
				return fmt.Errorf("%s run (c=%d x=%d rep=%d): %w\n%s",
					name, tc.c, x, rep, err, src)
			}
			if got != tc.want[i] {
				return fmt.Errorf("%s diverges (seed=%d c=%d x=%d rep=%d): got %d, reference %d\n%s",
					name, tc.seed, tc.c, x, rep, got, tc.want[i], src)
			}
		}
	}
	if as != nil {
		cs := p.Runtime.CacheStats()
		as.Promotions += cs.Promotions
		as.Deopts += cs.Deopts
	}
	return nil
}
