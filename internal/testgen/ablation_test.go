package testgen

import (
	"math/rand"
	"testing"
)

// TestAblationFixedSeeds is the pipeline's pass-ablation property: over
// the same fixed seed corpus as TestDifferentialFixedSeeds, compiling
// with each optimizer sub-pass individually disabled must still match
// unoptimized-IR interpretation. This is what makes -disable-pass safe to
// use for debugging: an ablated pipeline is slower, never wrong.
func TestAblationFixedSeeds(t *testing.T) {
	n := int64(150)
	if testing.Short() {
		n = 20
	}
	for seed := int64(1); seed <= n; seed++ {
		r := rand.New(rand.NewSource(seed * 7919))
		c := int64(r.Intn(1024) - 512)
		x := int64(r.Intn(4000) - 2000)
		if err := RunAblation(seed, c, x); err != nil {
			t.Fatal(err)
		}
	}
}
