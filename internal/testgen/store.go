// Persistent-store properties: the level-0 code cache must be invisible to
// semantics and byte-exact. RunStore pins that down with a simulated
// restart — compile, run, drain the store publisher, then compile the same
// source into a *fresh* runtime over the same store and run again. The
// second (cold) runtime must agree with the unoptimized-IR reference, its
// store-served segments must be byte-identical (under the canonical segio
// encoding) to the segments the first runtime stitched inline, and the
// extended cache-stats invariants must hold on both sides.
package testgen

import (
	"fmt"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
	"dyncc/internal/segio"
)

// storeStats pulls the counters RunStore asserts on and checks the lookup
// invariant, which store consults must never disturb.
func storeStats(name string, p *core.Compiled, tc *testCase) (rtr.CacheStats, error) {
	cs := p.Runtime.CacheStats()
	if cs.Lookups != cs.SharedHits+cs.Waits+cs.FailedHits+cs.Misses {
		return cs, fmt.Errorf("%s: lookup invariant broken: %d != %d+%d+%d+%d (seed=%d)\n%s",
			name, cs.Lookups, cs.SharedHits, cs.Waits, cs.FailedHits, cs.Misses, tc.seed, tc.src)
	}
	return cs, nil
}

// RunStore differentially executes the generated program for seed through
// a persistent-store restart cycle: a warm runtime populates an in-memory
// store, then a cold runtime over the same store must serve byte-identical
// code and agree with the reference, stitching only what the store cannot
// supply.
func RunStore(seed, cIn, xIn int64) error {
	tc, err := buildCase(seed, cIn, xIn)
	if err != nil {
		return err
	}
	store := segio.NewMemStore()
	cfg := core.Config{Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{Store: store}}

	// Warm run: stitches inline, publishes to the store. Close drains the
	// publisher so every stitch is durable before the restart.
	warm, err := tc.runKept("store:warm", cfg)
	if err != nil {
		return err
	}
	warm.Runtime.Close()
	wcs, err := storeStats("store:warm", warm, tc)
	if err != nil {
		return err
	}
	if wcs.StoreHits != 0 || wcs.StoreErrors != 0 {
		return fmt.Errorf("store:warm: %d hits / %d errors against an empty store (seed=%d)\n%s",
			wcs.StoreHits, wcs.StoreErrors, tc.seed, tc.src)
	}
	if int(wcs.StorePuts) != store.Len() {
		return fmt.Errorf("store:warm: %d puts counted, %d blobs stored (seed=%d)\n%s",
			wcs.StorePuts, store.Len(), tc.seed, tc.src)
	}

	// Cold run: a fresh runtime (simulated restart) over the populated
	// store. Every specialization the warm run persisted must be served
	// from the store instead of stitched.
	cold, err := tc.runKept("store:cold", cfg)
	if err != nil {
		return err
	}
	defer cold.Runtime.Close()
	ccs, err := storeStats("store:cold", cold, tc)
	if err != nil {
		return err
	}
	if ccs.StoreErrors != 0 {
		return fmt.Errorf("store:cold: %d store errors (seed=%d)\n%s",
			ccs.StoreErrors, tc.seed, tc.src)
	}
	if ccs.StoreHits != wcs.StorePuts {
		return fmt.Errorf("store:cold: %d store hits, warm run persisted %d (seed=%d)\n%s",
			ccs.StoreHits, wcs.StorePuts, tc.seed, tc.src)
	}
	if ccs.Stitches+ccs.StoreHits != wcs.Stitches {
		return fmt.Errorf("store:cold: %d stitches + %d store hits != warm %d stitches (seed=%d)\n%s",
			ccs.Stitches, ccs.StoreHits, wcs.Stitches, tc.seed, tc.src)
	}

	// Byte identity: the cold runtime's retained segments (store-served and
	// re-stitched alike) must encode identically to the warm runtime's.
	for region := range warm.Runtime.Regions {
		ws, cs := warm.Runtime.Stitched[region], cold.Runtime.Stitched[region]
		if len(ws) != len(cs) {
			return fmt.Errorf("store: region %d retained %d warm vs %d cold segments (seed=%d)\n%s",
				region, len(ws), len(cs), tc.seed, tc.src)
		}
		for k := range ws {
			if err := sameSegment(ws[k], cs[k]); err != nil {
				return fmt.Errorf("store: region %d segment %d: %w (seed=%d)\n%s",
					region, k, err, tc.seed, tc.src)
			}
			we, ce := segio.Encode(ws[k]), segio.Encode(cs[k])
			if string(we) != string(ce) {
				return fmt.Errorf("store: region %d segment %d: encodings differ (%d vs %d bytes, seed=%d)\n%s",
					region, k, len(we), len(ce), tc.seed, tc.src)
			}
		}
	}

	// Async cold run: the background stitch path must consult the store
	// too (runJob head), and the promoted tier must agree with the
	// reference once idle.
	async := cfg
	async.Cache.AsyncStitch = true
	if err := tc.checkSubject("store:cold+async", async); err != nil {
		return err
	}
	return nil
}
