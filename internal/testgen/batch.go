// Batch-compilation properties: core.CompileBatch must be a pure
// scheduling transform. Whatever the worker count, every program that
// comes out of a batch must be byte-identical to a serial core.Compile of
// the same source — same optimized IR, same machine code, same templates —
// and must execute exactly like the unoptimized-IR reference. RunBatch is
// the differential form used by the fixed-seed sweep and `make check`'s
// smoke run; Fingerprint is the byte-identity probe shared with the
// serving benchmark.
package testgen

import (
	"fmt"
	"math/rand"
	"strings"

	"dyncc/internal/core"
)

// Fingerprint renders everything the compiler produced for one program in
// a stable textual form: the optimized IR of every function, the
// disassembly of every static code segment, and every region's template
// dump. Two compilations are byte-identical iff their fingerprints match.
func Fingerprint(c *core.Compiled) string {
	var b strings.Builder
	for _, f := range c.Module.Funcs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	for _, seg := range c.Output.Prog.Segs {
		b.WriteString(seg.Disasm())
		b.WriteByte('\n')
	}
	for _, r := range c.Output.Regions {
		b.WriteString(r.Dump())
		b.WriteByte('\n')
	}
	return b.String()
}

// sweepCase derives the (c, x) parameters for one sweep seed, the same way
// the fixed-seed differential tests do, so every batch property runs over
// the familiar corpus.
func sweepCase(seed int64) (cIn, xIn int64) {
	r := rand.New(rand.NewSource(seed * 7919))
	return int64(r.Intn(1024) - 512), int64(r.Intn(4000) - 2000)
}

// RunBatch generates the programs for seeds 1..n, compiles them serially
// and through core.CompileBatch with the given worker count, and requires
// (1) byte-identical artifacts per program and (2) that every
// batch-compiled program matches the unoptimized-IR reference outputs.
// A non-nil error describes the first divergence.
func RunBatch(n int64, workers int) error {
	cases := make([]*testCase, 0, n)
	srcs := make([]string, 0, n)
	for seed := int64(1); seed <= n; seed++ {
		cIn, xIn := sweepCase(seed)
		tc, err := buildCase(seed, cIn, xIn)
		if err != nil {
			return err
		}
		cases = append(cases, tc)
		srcs = append(srcs, tc.src)
	}

	cfg := core.Config{Dynamic: true, Optimize: true}
	serial := make([]string, len(srcs))
	for i, src := range srcs {
		c, err := core.Compile(src, cfg)
		if err != nil {
			return fmt.Errorf("serial compile (seed=%d): %w\n%s", cases[i].seed, err, src)
		}
		serial[i] = Fingerprint(c)
	}

	bcfg := cfg
	bcfg.CompileWorkers = workers
	br, err := core.CompileBatch(srcs, bcfg)
	if err != nil {
		return fmt.Errorf("batch compile: %w", err)
	}
	for i, c := range br.Programs {
		if got := Fingerprint(c); got != serial[i] {
			return fmt.Errorf("batch output diverges from serial compile (seed=%d, workers=%d)\n%s",
				cases[i].seed, workers, srcs[i])
		}
		if err := cases[i].checkCompiled(fmt.Sprintf("batch[%d]", i), c, false); err != nil {
			return err
		}
	}
	return nil
}
