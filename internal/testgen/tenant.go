// Tenant program generation for the multi-tenant serving benchmark
// (bench.Serve). A "tenant" is one small MiniC program of the shape a
// dynamic-compilation service actually hosts per customer — a dispatch
// table, a template renderer, a pricing rule — each with one keyed dynamic
// region so the runtime specializes per (tenant, key) pair. The generator
// is seeded and deterministic: the same seed always yields the same
// source, so benchmark corpora are reproducible and serial/batch compiles
// of a corpus can be compared byte for byte.
package testgen

import (
	"fmt"
	"math/rand"
)

// TenantEntry is the exported entry point every generated tenant program
// defines:
//
//	int serve(int *t, int n, int k, int x)
//
// t/n are the tenant's data table (n >= 1 words), k is the specialization
// key (the Zipf-distributed dimension), and x is the per-request varying
// input.
const TenantEntry = "serve"

// TenantFlavors is the number of distinct tenant program shapes.
const TenantFlavors = 3

// Tenant returns the deterministic tenant program for seed. Flavors cycle
// through the three serving archetypes:
//
//   - dispatch: a constant-folded branch ladder over the key — stitching
//     resolves every guard and the specialization is straight-line code.
//     Pure key-derived set-up, so the region is shareable and async-
//     stitch eligible.
//   - pricing: a rate formula whose coefficients derive from the key —
//     stitch-time constant folding and strength reduction. Also pure
//     key-derived.
//   - templating: an unrolled render loop over the tenant's data table —
//     the paper's loop-unrolling + load-elimination machinery. Set-up
//     reads machine memory (the table), so this flavor stitches inline
//     per machine, exercising the non-shareable path.
func Tenant(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	switch seed % TenantFlavors {
	case 0:
		return tenantDispatch(r)
	case 1:
		return tenantPricing(r)
	default:
		return tenantTemplating(r)
	}
}

// tenantDispatch builds a branch ladder over (k & mask): every guard is a
// run-time constant, so the stitcher resolves the whole ladder to the one
// taken arm.
func tenantDispatch(r *rand.Rand) string {
	mask := []int{1, 3, 7}[r.Intn(3)]
	arms := mask + 1
	body := ""
	indent := "        "
	for a := 0; a < arms; a++ {
		c1 := r.Intn(900) + 1
		c2 := r.Intn(100) + 1
		arm := []string{
			fmt.Sprintf("r = x * %d + %d;", c1%13+2, c2),
			fmt.Sprintf("r = (x + %d) * %d;", c1, c2%9+2),
			fmt.Sprintf("r = (x << %d) - %d;", r.Intn(4)+1, c1),
			fmt.Sprintf("r = (x ^ %d) + (x << %d);", c1, r.Intn(3)+1),
		}[r.Intn(4)]
		if a < arms-1 {
			body += fmt.Sprintf("%sif ((k & %d) == %d) { %s } else {\n", indent, mask, a, arm)
			indent += "  "
		} else {
			body += fmt.Sprintf("%s%s\n", indent, arm)
		}
	}
	for a := 0; a < arms-1; a++ {
		indent = indent[:len(indent)-2]
		body += indent + "}\n"
	}
	return fmt.Sprintf(`
int serve(int *t, int n, int k, int x) {
    int r = 0;
    dynamicRegion key(k) () {
%s        r = r + ((k * %d) & %d);
    }
    return r;
}`, body, r.Intn(50)+3, []int{63, 127, 255}[r.Intn(3)])
}

// tenantPricing builds a rate formula whose coefficients are derived from
// the key at set-up time, plus one constant-resolved surcharge branch.
func tenantPricing(r *rand.Rand) string {
	a1 := r.Intn(37) + 3
	a2 := r.Intn(500) + 1
	capMask := []int{255, 511, 1023}[r.Intn(3)]
	surchargeBit := 1 << r.Intn(3)
	s1 := r.Intn(29) + 2
	s2 := r.Intn(200) + 1
	extra := ""
	if r.Intn(2) == 0 {
		extra = fmt.Sprintf("        r = r ^ (x * ((k & 15) + %d));\n", r.Intn(20)+1)
	}
	return fmt.Sprintf(`
int serve(int *t, int n, int k, int x) {
    int r = 0;
    dynamicRegion key(k) () {
        int base = (k * %d + %d) & %d;
        r = x * base + %d;
        if ((k & %d) == %d) {
            r = r + x * %d;
        } else {
            r = r - %d;
        }
%s    }
    return r;
}`, a1, a2, capMask, r.Intn(100), surchargeBit, surchargeBit, s1, s2, extra)
}

// tenantTemplating builds an unrolled render loop over the tenant's table:
// the region's run-time constants include the table pointer and length, so
// set-up reads machine memory and the stitched code is per-machine.
func tenantTemplating(r *rand.Rand) string {
	m1 := r.Intn(7) + 1
	m2 := r.Intn(40) + 1
	op := []string{"+", "^"}[r.Intn(2)]
	tail := ""
	if r.Intn(2) == 0 {
		tail = fmt.Sprintf("        r = r %s (x + %d);\n", []string{"+", "^", "-"}[r.Intn(3)], r.Intn(300))
	}
	return fmt.Sprintf(`
int serve(int *t, int n, int k, int x) {
    int i;
    int r = 0;
    dynamicRegion key(k) (t, n) {
        unrolled for (i = 0; i < n; i++) {
            r = r %s t[i] * ((k & %d) + %d);
        }
%s    }
    return r;
}`, op, m1, m2, tail)
}
