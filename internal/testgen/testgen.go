// Package testgen generates random MiniC programs with dynamic regions and
// differentially tests the full compilation pipeline — parser, SSA,
// optimizer, region splitter, code generator, register allocator, stitcher,
// runtime cache (inline and asynchronous), and VM — against a reference
// that shares none of those stages: direct interpretation of the
// *unoptimized* SSA IR. Any divergence is a bug in some layer of the
// pipeline; the reference is deliberately the dumbest correct executor we
// have.
//
// The generator is seeded and deterministic, so every failure is
// reproducible from its (seed, c, x) triple; FuzzDifferential feeds the
// same triple space from the native fuzzer.
package testgen

import (
	"fmt"
	"math/rand"
	"strings"

	"dyncc/internal/core"
	"dyncc/internal/ir"
	"dyncc/internal/opt"
	"dyncc/internal/rtr"
)

// ops are the binary operators the generator composes. Division and modulo
// are deliberately absent: they can trap, and trap parity between engines
// is tested elsewhere — here every generated program must run to
// completion so outputs are always comparable.
var ops = []string{"+", "-", "*", "&", "|", "^"}

var cmps = []string{"<", ">", "==", "!="}

// gen carries generator state: the source being built and the variables in
// scope at each point.
type gen struct {
	r       *rand.Rand
	b       strings.Builder
	vars    []string // expression-usable int variables in scope
	loops   int      // loop variables minted so far (v0, v1, ...)
	depth   int      // statement nesting depth
	helpers int      // helper functions emitted (h0, h1, ...); 0 unless WithCalls
}

func (g *gen) pick(list []string) string { return list[g.r.Intn(len(list))] }

// expr builds a random expression tree over the variables in scope.
func (g *gen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprint(g.r.Intn(64) - 16)
		default:
			return g.pick(g.vars)
		}
	}
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), g.pick(ops), g.expr(depth-1))
}

// cond builds a random comparison.
func (g *gen) cond() string {
	return fmt.Sprintf("%s %s %s", g.expr(1), g.pick(cmps), g.expr(1))
}

// constCond builds a comparison over region constants only (c and n), so a
// keyed region's branch resolution can fold it at stitch time.
func (g *gen) constCond() string {
	lhs := []string{"c", "n", "(c & 7)", "(n + c)", "(c * 3)"}[g.r.Intn(5)]
	return fmt.Sprintf("%s %s %d", lhs, g.pick(cmps), g.r.Intn(10))
}

func (g *gen) linef(format string, args ...any) {
	g.b.WriteString(strings.Repeat("    ", g.depth+2))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// stmt emits one random statement. idx lists loop variables usable as
// array indices (always < n, so loads never trap).
func (g *gen) stmt(idx []string, unrollOK bool) {
	choice := g.r.Intn(10)
	switch {
	case choice < 3: // plain accumulation — or, with helpers, a call site
		if g.helpers > 0 && g.r.Intn(3) == 0 {
			g.linef("acc = acc %s h%d(%s, %s);",
				g.pick(ops), g.r.Intn(g.helpers), g.expr(1), g.expr(1))
		} else {
			g.linef("acc = acc %s %s;", g.pick(ops), g.expr(2))
		}
	case choice < 4 && len(idx) > 0: // bounded array load
		i := g.pick(idx)
		if g.r.Intn(2) == 0 {
			g.linef("acc = acc + a[%s];", i)
		} else {
			g.linef("acc = acc ^ (a dynamic[%s] + %s);", i, g.expr(1))
		}
	case choice < 6 && g.depth < 2: // if / if-else
		if g.r.Intn(2) == 0 {
			g.linef("if (%s) {", g.constCond())
		} else {
			g.linef("if (%s) {", g.cond())
		}
		g.depth++
		g.stmt(idx, false)
		g.depth--
		if g.r.Intn(2) == 0 {
			g.linef("} else {")
			g.depth++
			g.stmt(idx, false)
			g.depth--
		}
		g.linef("}")
	case choice < 8 && unrollOK && g.depth < 2: // unrolled loop over the array
		v := fmt.Sprintf("v%d", g.loops)
		g.loops++
		bound := "n"
		if len(idx) > 0 && g.r.Intn(3) == 0 {
			bound = idx[len(idx)-1] // nested: bounded by the outer index
		}
		g.linef("unrolled for (%s = 0; %s < %s; %s++) {", v, v, bound, v)
		g.depth++
		// Most unrolled loops touch the array — that is what the paper's
		// loop unrolling + load promotion machinery specializes.
		switch g.r.Intn(3) {
		case 0:
			g.linef("acc = acc + a[%s] * %s;", v, g.expr(1))
		case 1:
			g.linef("acc = acc ^ (a dynamic[%s] + %s);", v, g.expr(1))
		}
		g.stmt(append(idx, v), g.r.Intn(2) == 0)
		g.depth--
		g.linef("}")
	case choice < 9 && g.depth < 2: // ordinary (rolled) loop, literal bound
		v := fmt.Sprintf("v%d", g.loops)
		g.loops++
		k := 1 + g.r.Intn(4)
		g.linef("for (%s = 0; %s < %d; %s++) {", v, v, k, v)
		g.depth++
		g.stmt(idx, false)
		g.depth--
		g.linef("}")
	default:
		g.linef("acc = (%s) %s acc;", g.expr(2), g.pick(ops))
	}
}

// GenOpts selects optional generator features. The zero value reproduces
// the historical corpus byte for byte — options must only ever *add*
// random draws on code paths the zero value never takes.
type GenOpts struct {
	// WithCalls emits 1–3 small pure helper functions (h0, h1, ...) and
	// call sites inside and around the dynamic region — the corpus for the
	// demand-driven inlining differential (RunInline). Helpers compose the
	// same trap-free operator set as the rest of the generator and may
	// chain (h2 calling h1), so transitive grafting is exercised too.
	WithCalls bool
}

// Gen returns random MiniC source for
//
//	int f(int *a, int n, int c, int x)
//
// containing one dynamic region (keyed or unkeyed, at random) over the
// run-time constants a, n and c. Array loads are always bounded by n, so
// for any heap of n elements the program runs trap-free on every engine.
func Gen(r *rand.Rand) string { return GenWith(r, GenOpts{}) }

// genHelpers emits the helper functions for GenOpts.WithCalls and returns
// their source. Helper bodies draw only from their own parameters (p, q)
// and literals, with the trap-free operator set; later helpers may call
// earlier ones.
func (g *gen) genHelpers() string {
	g.helpers = 1 + g.r.Intn(3)
	var b strings.Builder
	for i := 0; i < g.helpers; i++ {
		saved := g.vars
		g.vars = []string{"p", "q"}
		body := fmt.Sprintf("(p %s %s)", g.pick(ops), g.expr(1))
		if i > 0 && g.r.Intn(2) == 0 {
			body = fmt.Sprintf("(%s %s h%d(q, %s))",
				body, g.pick(ops), g.r.Intn(i), g.expr(1))
		}
		fmt.Fprintf(&b, "int h%d(int p, int q) {\n    return %s;\n}\n", i, body)
		g.vars = saved
	}
	return b.String()
}

// GenWith is Gen with options; see GenOpts.
func GenWith(r *rand.Rand, opts GenOpts) string {
	g := &gen{r: r, vars: []string{"acc", "x", "c", "n"}}

	helperDefs := ""
	if opts.WithCalls {
		helperDefs = g.genHelpers()
	}

	header := "dynamicRegion (a, n, c)"
	switch g.r.Intn(3) {
	case 0:
		header = "dynamicRegion key(c) (a, n)"
	case 1:
		header = "dynamicRegion key(c, n) (a)"
	}

	// Optional derived constant d, declared at region top.
	hasD := g.r.Intn(2) == 0
	if hasD {
		g.vars = append(g.vars, "d")
	}

	nstmts := 2 + g.r.Intn(4)
	for i := 0; i < nstmts; i++ {
		g.stmt(nil, true)
	}
	body := g.b.String()

	var decls strings.Builder
	for i := 0; i < g.loops; i++ {
		fmt.Fprintf(&decls, "        int v%d;\n", i)
	}
	dDecl := ""
	if hasD {
		dDecl = fmt.Sprintf("        int d = (c %s %d) %s n;\n",
			g.pick(ops), g.r.Intn(30), g.pick(ops))
	}

	ret := "    return acc;"
	inRegion := ""
	if g.r.Intn(3) == 0 {
		inRegion = "        return acc + x;\n"
		ret = "    return acc - 1;"
	}

	// Call sites around the region: a pre-region call with a literal
	// argument (a demand-driven inline site outside any region) and,
	// sometimes, one in the final return.
	prelude := ""
	if g.helpers > 0 {
		prelude = fmt.Sprintf("    acc = h%d(%d, x);\n",
			g.r.Intn(g.helpers), g.r.Intn(64)-16)
		if g.r.Intn(2) == 0 {
			ret = fmt.Sprintf("    return acc %s h%d(acc, %d);",
				g.pick(ops), g.r.Intn(g.helpers), g.r.Intn(64)-16)
		}
	}

	return fmt.Sprintf(`%s
int f(int *a, int n, int c, int x) {
    int acc = 0;
%s    %s {
%s%s%s%s    }
%s
}`, helperDefs, prelude, header, decls.String(), dDecl, body, inRegion, ret)
}

// limit clamps v into [lo, hi] by wrapping — keeps fuzz-chosen parameters
// in ranges where programs stay small and trap-free.
func limit(v, lo, hi int64) int64 {
	span := hi - lo + 1
	m := v % span
	if m < 0 {
		m += span
	}
	return lo + m
}

// testCase is one generated program plus its reference outputs.
type testCase struct {
	seed     int64
	src      string
	n, c     int64
	contents []int64
	xs       []int64
	want     []int64
}

// buildCase generates the program for seed and computes the reference
// outputs by interpreting the unoptimized SSA IR — no optimizer,
// splitter, regalloc, codegen, stitcher or VM involved.
func buildCase(seed, cIn, xIn int64) (*testCase, error) {
	return buildCaseWith(seed, cIn, xIn, GenOpts{})
}

// buildCaseWith is buildCase with generator knobs; the reference stays the
// unoptimized interpreter, which never inlines, so call-bearing programs
// are checked across the call-boundary transform too.
func buildCaseWith(seed, cIn, xIn int64, opts GenOpts) (*testCase, error) {
	r := rand.New(rand.NewSource(seed))
	src := GenWith(r, opts)

	n := int64(1 + r.Intn(6))
	c := limit(cIn, -512, 512)
	contents := make([]int64, n)
	for i := range contents {
		contents[i] = int64(r.Int31n(200)) - 100
	}
	xs := []int64{xIn, xIn + 17, -xIn, xIn ^ c, int64(r.Intn(100)) - 50}

	ref, err := core.Compile(src, core.Config{Dynamic: false, Optimize: false})
	if err != nil {
		return nil, fmt.Errorf("reference compile: %w\n%s", err, src)
	}
	env := ir.NewInterpEnv(ref.Module, 0)
	ra := env.Alloc(n)
	copy(env.Mem[ra:ra+n], contents)
	want := make([]int64, len(xs))
	for i, x := range xs {
		v, err := env.CallFunc("f", ra, n, c, x)
		if err != nil {
			return nil, fmt.Errorf("reference run (c=%d x=%d): %w\n%s", c, x, err, src)
		}
		want[i] = v
	}
	return &testCase{seed: seed, src: src, n: n, c: c,
		contents: contents, xs: xs, want: want}, nil
}

// checkSubject compiles the case's program under cfg and compares every
// run against the reference outputs. AsyncStitch subjects additionally
// quiesce the worker pool and re-run everything warm, so the fallback
// tier and the promoted stitched tier are both checked.
func (tc *testCase) checkSubject(name string, cfg core.Config) error {
	p, err := core.Compile(tc.src, cfg)
	if err != nil {
		return fmt.Errorf("%s compile: %w\n%s", name, err, tc.src)
	}
	return tc.checkCompiled(name, p, cfg.Cache.AsyncStitch)
}

// checkCompiled runs an already-compiled program against the reference
// outputs (the execution half of checkSubject; RunBatch reuses it for
// batch-compiled programs).
func (tc *testCase) checkCompiled(name string, p *core.Compiled, async bool) error {
	defer p.Runtime.Close()
	m := p.NewMachine(0)
	va, err := m.Alloc(tc.n)
	if err != nil {
		return fmt.Errorf("%s alloc: %w", name, err)
	}
	copy(m.Mem[va:va+tc.n], tc.contents)
	run := func(phase string) error {
		for i, x := range tc.xs {
			got, err := m.Call("f", va, tc.n, tc.c, x)
			if err != nil {
				return fmt.Errorf("%s %srun (c=%d x=%d): %w\n%s",
					name, phase, tc.c, x, err, tc.src)
			}
			if got != tc.want[i] {
				return fmt.Errorf("%s %sdiverges (seed=%d c=%d x=%d): got %d, reference %d\n%s",
					name, phase, tc.seed, tc.c, x, got, tc.want[i], tc.src)
			}
		}
		return nil
	}
	if err := run(""); err != nil {
		return err
	}
	if async {
		p.Runtime.WaitIdle()
		if err := run("warm "); err != nil {
			return err
		}
	}
	return nil
}

// Run generates the program for seed and differentially executes it:
// reference = unoptimized IR interpretation, subjects = the fully
// optimized dynamic pipeline, inline and with asynchronous background
// stitching. cIn and xIn parameterize the run-time constant and the
// varying input. A non-nil error describes the first divergence, with the
// generated source embedded for reproduction.
func Run(seed, cIn, xIn int64) error {
	tc, err := buildCase(seed, cIn, xIn)
	if err != nil {
		return err
	}
	subjects := []struct {
		name string
		cfg  core.Config
	}{
		{"dynamic", core.Config{Dynamic: true, Optimize: true}},
		{"dynamic+merged", core.Config{Dynamic: true, Optimize: true, MergedStitch: true}},
		{"dynamic+async", core.Config{Dynamic: true, Optimize: true,
			Cache: rtr.CacheOptions{AsyncStitch: true}}},
	}
	for _, sub := range subjects {
		if err := tc.checkSubject(sub.name, sub.cfg); err != nil {
			return err
		}
	}
	return nil
}

// AblationPasses lists the disableable passes RunAblation knocks out one
// at a time: every optimizer sub-pass, the stencil precompilation pass
// (whose ablation falls back to interpretive stitching), the autoregion
// speculation pass (whose ablation must leave a Config.AutoRegion build
// behaviourally identical to a plain dynamic build), and the demand-driven
// inline pass (whose ablation keeps every call boundary intact).
func AblationPasses() []string {
	subs := opt.SubPasses()
	names := make([]string, 0, len(subs)+3)
	for _, sp := range subs {
		names = append(names, sp.Name)
	}
	return append(names, "stencil", "autoregion", "inline")
}

// RunAblation is the pipeline's pass-ablation differential: for each
// optimizer sub-pass, compile the generated program with exactly that
// pass disabled and re-check semantic equivalence against the
// unoptimized-IR reference. Any divergence means a sub-pass is either
// unsound on its own or — more subtly — that another pass silently
// depends on its effects for correctness rather than just quality.
func RunAblation(seed, cIn, xIn int64) error {
	tc, err := buildCase(seed, cIn, xIn)
	if err != nil {
		return err
	}
	for _, pass := range AblationPasses() {
		cfg := core.Config{Dynamic: true, Optimize: true,
			DisablePasses: []string{pass}}
		if pass == "autoregion" {
			// Ablating speculation is only meaningful when it was asked
			// for: request AutoRegion and require the knocked-out pass to
			// fully neutralize it.
			cfg.AutoRegion = true
		}
		if err := tc.checkSubject("ablate:"+pass, cfg); err != nil {
			return err
		}
	}
	return nil
}
