package testgen

import (
	"math/rand"
	"testing"
)

// TestDifferentialFixedSeeds runs the differential property over a fixed
// block of seeds so every CI run covers the same program corpus
// deterministically; FuzzDifferential explores beyond it.
func TestDifferentialFixedSeeds(t *testing.T) {
	n := int64(150)
	if testing.Short() {
		n = 30
	}
	for seed := int64(1); seed <= n; seed++ {
		r := rand.New(rand.NewSource(seed * 7919))
		c := int64(r.Intn(1024) - 512)
		x := int64(r.Intn(4000) - 2000)
		if err := Run(seed, c, x); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzDifferential is the native fuzz entry: the fuzzer mutates the
// generator seed and the run-time parameters, and any engine divergence
// (or compile failure on generated source) is a crash. Seed corpus lives
// in testdata/fuzz/FuzzDifferential.
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), int64(7), int64(42))
	f.Add(int64(2), int64(-3), int64(1000))
	f.Add(int64(17), int64(511), int64(-999))
	f.Add(int64(99), int64(0), int64(0))
	f.Add(int64(1234), int64(-512), int64(7))
	f.Fuzz(func(t *testing.T, seed, c, x int64) {
		if err := Run(seed, c, x); err != nil {
			t.Fatal(err)
		}
	})
}
