package testgen

import (
	"math/rand"
	"testing"
)

// TestAutoFixedSeeds sweeps the automatic-promotion differential over a
// fixed block of seeds: annotation-stripped programs under speculative
// promotion must match the unoptimized-IR reference byte for byte, and the
// corpus as a whole must actually exercise the machinery — at least one
// promotion and one deoptimization observed across the sweep.
func TestAutoFixedSeeds(t *testing.T) {
	n := int64(150)
	if testing.Short() {
		n = 25
	}
	var total AutoStats
	for seed := int64(1); seed <= n; seed++ {
		r := rand.New(rand.NewSource(seed * 7919))
		c := int64(r.Intn(1024) - 512)
		x := int64(r.Intn(4000) - 2000)
		as, err := RunAuto(seed, c, x)
		if err != nil {
			t.Fatal(err)
		}
		total.Promotions += as.Promotions
		total.Deopts += as.Deopts
	}
	t.Logf("corpus: %d promotions, %d deopts", total.Promotions, total.Deopts)
	if total.Promotions == 0 {
		t.Fatalf("sweep never promoted a region: the speculative tier was not exercised")
	}
	if total.Deopts == 0 {
		t.Fatalf("sweep never deoptimized: guard failures were not exercised")
	}
}

// FuzzAuto explores the annotation-stripped speculative differential
// beyond the fixed block: any divergence between promoted guarded code and
// the reference is a crash.
func FuzzAuto(f *testing.F) {
	f.Add(int64(1), int64(7), int64(42))
	f.Add(int64(17), int64(511), int64(-999))
	f.Add(int64(1234), int64(-512), int64(7))
	f.Fuzz(func(t *testing.T, seed, c, x int64) {
		if _, err := RunAuto(seed, c, x); err != nil {
			t.Fatal(err)
		}
	})
}
