package testgen

import (
	"fmt"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
)

// RunInline is the call-boundary differential: generate a program with
// helper functions and call sites both inside and outside its dynamic
// region (GenOpts.WithCalls), then check the inlining build, the ablated
// build (-disable-pass inline), and both again under asynchronous
// stitching against the unoptimized-IR reference — which never inlines,
// so every comparison crosses the graft transform. Returns how many call
// sites the inline pass grafted in the base subject, so callers can assert
// the corpus actually exercises the pass rather than vacuously passing.
func RunInline(seed, cIn, xIn int64) (int, error) {
	tc, err := buildCaseWith(seed, cIn, xIn, GenOpts{WithCalls: true})
	if err != nil {
		return 0, err
	}

	// Base subject compiled by hand so the pass statistic is observable.
	base := core.Config{Dynamic: true, Optimize: true}
	p, err := core.Compile(tc.src, base)
	if err != nil {
		return 0, fmt.Errorf("inline compile: %w\n%s", err, tc.src)
	}
	inlines := p.PassStat("inline").Changes
	if err := tc.checkCompiled("inline", p, false); err != nil {
		return inlines, err
	}

	subjects := []struct {
		name string
		cfg  core.Config
	}{
		{"inline:ablated", core.Config{Dynamic: true, Optimize: true,
			DisablePasses: []string{"inline"}}},
		{"inline:async", core.Config{Dynamic: true, Optimize: true,
			Cache: rtr.CacheOptions{AsyncStitch: true}}},
		{"inline:ablated+async", core.Config{Dynamic: true, Optimize: true,
			DisablePasses: []string{"inline"},
			Cache:         rtr.CacheOptions{AsyncStitch: true}}},
	}
	for _, sub := range subjects {
		if err := tc.checkSubject(sub.name, sub.cfg); err != nil {
			return inlines, err
		}
	}
	return inlines, nil
}
