package testgen

import (
	"math/rand"
	"testing"
)

// TestStoreFixedSeeds is the persistent-store differential: over the same
// fixed seed corpus as TestDifferentialFixedSeeds, a cold runtime serving
// from a store populated by a warm runtime must agree with the
// unoptimized-IR reference and retain byte-identical segments, with the
// extended cache-stats accounting exact (see RunStore). Run under -race
// this also exercises the asynchronous store publisher concurrently.
func TestStoreFixedSeeds(t *testing.T) {
	n := int64(150)
	if testing.Short() {
		n = 20
	}
	for seed := int64(1); seed <= n; seed++ {
		r := rand.New(rand.NewSource(seed * 7919))
		c := int64(r.Intn(1024) - 512)
		x := int64(r.Intn(4000) - 2000)
		if err := RunStore(seed, c, x); err != nil {
			t.Fatal(err)
		}
	}
}
