package bench

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"dyncc/internal/vm"
)

// Host performance harness: measures what the *host* pays per guest
// instruction — the quantity the interpreter-loop work (closure-free
// dispatch, precomputed attribution plans, superinstruction fusion)
// optimizes. The guest cycle model is untouched by those changes (Table 2
// is byte-identical either way); this file measures the other axis.

// HostResult is one row of the host-performance report.
type HostResult struct {
	Name       string  `json:"name"`
	GuestInsts uint64  `json:"guest_insts"`       // guest instructions executed in the timed window
	HostNs     float64 `json:"host_ns"`           // host wall time of the timed window
	NsPerInst  float64 `json:"ns_per_guest_inst"` // headline: host ns per guest instruction
	GuestMIPS  float64 `json:"guest_mips"`        // guest instructions per host microsecond
}

// HostComparison pairs a current measurement with a recorded baseline.
type HostComparison struct {
	Name        string  `json:"name"`
	BaselineNs  float64 `json:"baseline_ns_per_guest_inst"`
	CurrentNs   float64 `json:"ns_per_guest_inst"`
	HostSpeedup float64 `json:"host_speedup"`
	MeetsTarget bool    `json:"meets_1_5x"`
}

// warmDispatchSource isolates the warm-dispatch path: a keyed region with a
// tiny body, always invoked with the same key, so nearly every guest
// instruction is DYNENTER bookkeeping plus the cached-segment transfer.
const warmDispatchSource = `
int warm(int x, int e) {
    int r;
    r = 0;
    dynamicRegion key(e) () {
        r = x * e + x;
    }
    return r;
}`

// HostKernel is one host-perf subject: a compiled program plus a step
// function that advances the workload by one use.
type HostKernel struct {
	Name  string
	Setup func(cfg Config) (*vm.Machine, func(i int) error, error)
}

// kernelFromBenchmark adapts a Table 2 benchmark to the host harness.
func kernelFromBenchmark(b *benchmark) HostKernel {
	return HostKernel{
		Name: b.name + hostSuffix(b),
		Setup: func(cfg Config) (*vm.Machine, func(i int) error, error) {
			_, dyn, err := compileBoth(b.source, cfg)
			if err != nil {
				return nil, nil, err
			}
			m := dyn.NewMachine(0)
			state, err := b.build(m)
			if err != nil {
				return nil, nil, err
			}
			return m, func(i int) error { return b.use(m, state, i) }, nil
		},
	}
}

func hostSuffix(b *benchmark) string {
	if strings.Contains(b.config, "96x96") {
		return " (small)"
	}
	if strings.Contains(b.config, "4 keys") {
		return " (4 keys)"
	}
	return ""
}

// HostKernels returns the five Table 2 kernels plus the warm-dispatch path.
func HostKernels() []HostKernel {
	ks := []HostKernel{
		kernelFromBenchmark(calcBenchmark()),
		kernelFromBenchmark(scalarBenchmark()),
		kernelFromBenchmark(sparseBenchmark(96, 5, 20, "96x96, 5/row, 5% density")),
		kernelFromBenchmark(dispatchBenchmark()),
		kernelFromBenchmark(sorterBenchmark(4, 3, "4 keys, each of a different type")),
	}
	ks = append(ks, HostKernel{
		Name: "warm dispatch",
		Setup: func(cfg Config) (*vm.Machine, func(i int) error, error) {
			_, dyn, err := compileBoth(warmDispatchSource, cfg)
			if err != nil {
				return nil, nil, err
			}
			m := dyn.NewMachine(1 << 16)
			return m, func(i int) error {
				v, err := m.Call("warm", int64(i), 7)
				if err != nil {
					return err
				}
				if want := int64(i)*7 + int64(i); v != want {
					return fmt.Errorf("warm(%d) = %d, want %d", i, v, want)
				}
				return nil
			}, nil
		},
	})
	return ks
}

// hostSamples is how many independent timed windows MeasureHost takes per
// kernel; the fastest is reported. The interpreter is deterministic, so
// the host can only ever make a window slower (scheduler preemption, cache
// pollution from neighbours) — the minimum is the noise-robust estimate.
const hostSamples = 5

// MeasureHost times one kernel: a warm-up pass stitches every
// specialization the use pattern touches, then uses are replayed in
// hostSamples independent windows of at least minDur each and the fastest
// window is reported.
func MeasureHost(k HostKernel, cfg Config, warmup int, minDur time.Duration) (*HostResult, error) {
	m, step, err := k.Setup(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", k.Name, err)
	}
	m.MaxCycles = 1 << 62
	for i := 0; i < warmup; i++ {
		if err := step(i); err != nil {
			return nil, fmt.Errorf("%s warmup %d: %w", k.Name, i, err)
		}
	}
	// Collect the previous kernel's machine (tens of MB of VM memory)
	// before timing so its garbage isn't collected inside our windows.
	runtime.GC()
	r := &HostResult{Name: k.Name}
	for s, i := 0, 0; s < hostSamples; s++ {
		insts0 := m.Insts
		start := time.Now()
		var elapsed time.Duration
		for {
			for j := 0; j < warmup; j++ {
				if err := step(i); err != nil {
					return nil, fmt.Errorf("%s use %d: %w", k.Name, i, err)
				}
				i++
			}
			if elapsed = time.Since(start); elapsed >= minDur {
				break
			}
		}
		insts := m.Insts - insts0
		if insts == 0 {
			continue
		}
		ns := float64(elapsed.Nanoseconds())
		if r.GuestInsts == 0 || ns/float64(insts) < r.NsPerInst {
			r.GuestInsts = insts
			r.HostNs = ns
			r.NsPerInst = ns / float64(insts)
			r.GuestMIPS = float64(insts) * 1e3 / ns
		}
	}
	return r, nil
}

// hostWarmup is how many uses warm each kernel before timing: enough to
// visit every key in the keyed workloads (the scalar kernel cycles through
// 100 scalars).
const hostWarmup = 100

// HostPerf measures host ns per guest instruction for the five Table 2
// kernels plus the warm-dispatch path.
func HostPerf(cfg Config, minDur time.Duration) ([]*HostResult, error) {
	if minDur <= 0 {
		minDur = 300 * time.Millisecond
	}
	var out []*HostResult
	for _, k := range HostKernels() {
		r, err := MeasureHost(k, cfg, hostWarmup, minDur)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// CompareHost joins current results against a baseline by kernel name.
func CompareHost(current, baseline []*HostResult) []*HostComparison {
	base := map[string]*HostResult{}
	for _, r := range baseline {
		base[r.Name] = r
	}
	var out []*HostComparison
	for _, r := range current {
		b, ok := base[r.Name]
		if !ok || b.NsPerInst <= 0 || r.NsPerInst <= 0 {
			continue
		}
		s := b.NsPerInst / r.NsPerInst
		out = append(out, &HostComparison{
			Name:        r.Name,
			BaselineNs:  b.NsPerInst,
			CurrentNs:   r.NsPerInst,
			HostSpeedup: s,
			MeetsTarget: s >= 1.5,
		})
	}
	return out
}

// PrintHost renders the host-performance report.
func PrintHost(w io.Writer, rows []*HostResult, cmp []*HostComparison) {
	fmt.Fprintf(w, "%-36s %14s %16s %12s\n",
		"Kernel", "guest insts", "ns/guest-inst", "guest MIPS")
	fmt.Fprintln(w, strings.Repeat("-", 82))
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %14d %16.2f %12.1f\n",
			r.Name, r.GuestInsts, r.NsPerInst, r.GuestMIPS)
	}
	if len(cmp) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-36s %16s %16s %10s\n",
			"Kernel", "baseline ns/inst", "current ns/inst", "speedup")
		fmt.Fprintln(w, strings.Repeat("-", 82))
		for _, c := range cmp {
			mark := ""
			if c.MeetsTarget {
				mark = "  (>=1.5x)"
			}
			fmt.Fprintf(w, "%-36s %16.2f %16.2f %9.2fx%s\n",
				c.Name, c.BaselineNs, c.CurrentNs, c.HostSpeedup, mark)
		}
	}
}
