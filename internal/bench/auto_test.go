package bench

import "testing"

// A scaled-down automatic-promotion comparison: all three subjects agree
// on every call (AutoRegion errors on divergence), the speculative subject
// promotes and deopts, and the reported rates are internally consistent.
func TestAutoRegionSmall(t *testing.T) {
	r, err := AutoRegion(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	if r.Calls != 4*256 || r.KeyChanges != 3 {
		t.Fatalf("workload shape: %+v", r)
	}
	if r.Promotions == 0 || r.Deopts == 0 {
		t.Fatalf("speculation did not engage: %+v", r)
	}
	if r.Deopts > uint64(r.KeyChanges) {
		t.Fatalf("more deopts (%d) than key changes (%d)", r.Deopts, r.KeyChanges)
	}
	if r.PromotionLatency < 1 || r.PromotionLatency > r.Calls {
		t.Fatalf("promotion latency out of range: %d", r.PromotionLatency)
	}
	if r.OffCyclesPerCall <= 0 || r.AutoCyclesPerCall <= 0 || r.AnnotatedCyclesPerCall <= 0 {
		t.Fatalf("cycles per call not populated: %+v", r)
	}
	// The guarded monomorphic steady state must beat the static baseline —
	// that is the point of promotion. The hand-annotated region is the
	// ceiling (it also gets loop unrolling from the `unrolled` hint).
	if r.AutoSpeedup <= 1.0 {
		t.Errorf("speculation did not pay: auto %.1f cyc/call vs static %.1f",
			r.AutoCyclesPerCall, r.OffCyclesPerCall)
	}
	if r.AnnotatedSpeedup < r.AutoSpeedup {
		t.Errorf("annotated (%.2fx) should be at least the auto speedup (%.2fx)",
			r.AnnotatedSpeedup, r.AutoSpeedup)
	}
	t.Logf("static %.1f, auto %.1f (%.2fx), annotated %.1f (%.2fx); %d promotions, %d deopts, latency %d calls",
		r.OffCyclesPerCall, r.AutoCyclesPerCall, r.AutoSpeedup,
		r.AnnotatedCyclesPerCall, r.AnnotatedSpeedup,
		r.Promotions, r.Deopts, r.PromotionLatency)
}
