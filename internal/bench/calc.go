package bench

import (
	"fmt"

	"dyncc/internal/vm"
)

// CalcSource is the reverse-polish stack-based desk calculator (Table 2
// row 1). The RPN program being interpreted is the run-time constant; the
// dynamic compiler unrolls the dispatch loop over it and eliminates the
// opcode switch, leaving straight-line arithmetic over the operand stack.
const CalcSource = `
/* RPN opcodes: 0 push-const(arg), 1 push-x, 2 push-y, 3 add, 4 sub,
   5 mul, 6 neg */
int calcEval(int *prog, int n, int x, int y) {
    int stack[64];
    dynamicRegion (prog, n) {
        int sp = 0;
        int pc;
        unrolled for (pc = 0; pc < n; pc++) {
            int op = prog[pc*2];
            int arg = prog[pc*2+1];
            switch (op) {
            case 0: stack dynamic[sp] = arg; sp++; break;
            case 1: stack dynamic[sp] = x; sp++; break;
            case 2: stack dynamic[sp] = y; sp++; break;
            case 3:
                sp--;
                stack dynamic[sp-1] = stack dynamic[sp-1] + stack dynamic[sp];
                break;
            case 4:
                sp--;
                stack dynamic[sp-1] = stack dynamic[sp-1] - stack dynamic[sp];
                break;
            case 5:
                sp--;
                stack dynamic[sp-1] = stack dynamic[sp-1] * stack dynamic[sp];
                break;
            case 6:
                stack dynamic[sp-1] = -stack dynamic[sp-1];
                break;
            }
        }
        return stack dynamic[0];
    }
    return 0;
}`

// RPN opcode values.
const (
	opPushC = iota
	opPushX
	opPushY
	opAdd
	opSub
	opMul
	opNeg
)

// CalcExpr is the paper's expression,
//
//	x*y - 3*y*y - x*x + (x+5)*y - x + x + y - 1
//
// in RPN form: pairs of (opcode, argument).
var CalcExpr = [][2]int64{
	{opPushX, 0}, {opPushY, 0}, {opMul, 0},
	{opPushC, 3}, {opPushY, 0}, {opMul, 0}, {opPushY, 0}, {opMul, 0}, {opSub, 0},
	{opPushX, 0}, {opPushX, 0}, {opMul, 0}, {opSub, 0},
	{opPushX, 0}, {opPushC, 5}, {opAdd, 0}, {opPushY, 0}, {opMul, 0}, {opAdd, 0},
	{opPushX, 0}, {opSub, 0},
	{opPushX, 0}, {opAdd, 0},
	{opPushY, 0}, {opAdd, 0},
	{opPushC, 1}, {opSub, 0},
}

// CalcGold evaluates the same expression natively.
func CalcGold(x, y int64) int64 {
	return x*y - 3*y*y - x*x + (x+5)*y - x + x + y - 1
}

type calcState struct {
	prog int64
	n    int64
}

func buildCalc(m *vm.Machine) (any, error) {
	n := int64(len(CalcExpr))
	prog, err := m.Alloc(n * 2)
	if err != nil {
		return nil, err
	}
	for i, cell := range CalcExpr {
		m.Mem[prog+int64(i*2)] = cell[0]
		m.Mem[prog+int64(i*2)+1] = cell[1]
	}
	return &calcState{prog: prog, n: n}, nil
}

func useCalc(m *vm.Machine, state any, i int) error {
	st := state.(*calcState)
	x := int64(i%97) - 48
	y := int64((i*7)%89) - 41
	got, err := m.Call("calcEval", st.prog, st.n, x, y)
	if err != nil {
		return err
	}
	if want := CalcGold(x, y); got != want {
		return fmt.Errorf("calcEval(%d,%d) = %d, want %d", x, y, got, want)
	}
	return nil
}

func calcBenchmark() *benchmark {
	return &benchmark{
		name:        "calculator",
		config:      "rpn expr, varying x,y",
		unit:        "interpretations",
		source:      CalcSource,
		uses:        2000,
		unitsPerUse: 1,
		build:       buildCalc,
		use:         useCalc,
	}
}

// Calculator measures Table 2 row 1.
func Calculator(cfg Config) (*Measurement, error) { return measure(calcBenchmark(), cfg) }
