package bench

import "testing"

// A scaled-down inlining comparison: both subjects agree on every call
// (inlineBenchRun errors on divergence), the pass actually grafts the
// helper chain, the ablation actually leaves residual calls, and the
// stripped subject auto-promotes through its calls.
func TestInlineSmall(t *testing.T) {
	r, err := Inline(2000)
	if err != nil {
		t.Fatal(err)
	}
	if r.InlinesApplied == 0 || r.ResidualCalls == 0 {
		t.Fatalf("comparison is vacuous: %+v", r)
	}
	if r.InlinedCyclesPerCall <= 0 || r.AblatedCyclesPerCall <= 0 || r.AutoCyclesPerCall <= 0 {
		t.Fatalf("cycles per call not populated: %+v", r)
	}
	if r.AutoPromotions == 0 {
		t.Fatalf("formerly call-blocked kernel never promoted: %+v", r)
	}
	// Collapsing two call frames per element into folded straight-line
	// code must pay on the guest-cycle model, and clearly (the acceptance
	// bar for the recorded benchmark is 1.3x).
	if r.CycleSpeedup < 1.3 {
		t.Errorf("inlining speedup below bar: %.2fx cycles (inlined %.1f vs ablated %.1f)",
			r.CycleSpeedup, r.InlinedCyclesPerCall, r.AblatedCyclesPerCall)
	}
	t.Logf("inlined %.0f ns/call %.1f cyc/call, ablated %.0f ns/call %.1f cyc/call: %.2fx wall %.2fx cycles; %d grafts, %d residual, auto %d promotions",
		r.InlinedNsPerCall, r.InlinedCyclesPerCall,
		r.AblatedNsPerCall, r.AblatedCyclesPerCall,
		r.Speedup, r.CycleSpeedup,
		r.InlinesApplied, r.ResidualCalls, r.AutoPromotions)
}
