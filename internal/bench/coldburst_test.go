package bench

import "testing"

// TestColdBurstAsyncImprovesTail is the acceptance property behind
// BENCH_4, scaled down: moving the stitch of a cold key to a background
// worker must shorten the caller-visible cold tail (the fallback tier is
// orders of magnitude cheaper than a 32-iteration unrolled stitch), and
// it must not tax warm dispatch. The committed BENCH_4.json records the
// full-size run, where the p99 gap is >5x; here the bar is just "strictly
// better with slack" so the test stays robust on loaded CI hosts.
func TestColdBurstAsyncImprovesTail(t *testing.T) {
	keys, warm := 200, 5000
	if testing.Short() {
		keys, warm = 80, 1000
	}
	r, err := ColdBurst(keys, warm)
	if err != nil {
		t.Fatal(err)
	}
	if r.AsyncP99 >= r.InlineP99 {
		t.Errorf("async cold p99 %v not below inline %v", r.AsyncP99, r.InlineP99)
	}
	if r.P99Ratio < 1.5 {
		t.Errorf("cold p99 ratio %.2f < 1.5: background stitching bought no tail latency",
			r.P99Ratio)
	}
	// Warm dispatch must be mode-neutral: both paths dispatch the same
	// promoted segment. 2x slack absorbs scheduler noise in short runs.
	if r.AsyncWarmNs > 2*r.InlineWarmNs {
		t.Errorf("warm dispatch regressed under async: %.0f ns vs %.0f ns inline",
			r.AsyncWarmNs, r.InlineWarmNs)
	}
	if r.FallbackRuns == 0 {
		t.Error("no fallback-tier executions during the async burst")
	}
	if r.AsyncStitches == 0 {
		t.Error("background pool published nothing")
	}
}
