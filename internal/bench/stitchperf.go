package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
	"dyncc/internal/stitcher"
	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// stitchPerfIters is the default timed stitch count per subject: enough
// for stable means on a ~10µs stitch without stretching the bench run.
const stitchPerfIters = 20000

// StitchPerfResult compares the stitcher's two emission paths — the
// precompiled copy-and-patch stencils and the interpretive template walk
// (`-disable-pass stencil`) — on the cold-burst kernel's stitch-heavy
// keyed region (a 32-iteration unrolled loop). Timing covers emission only
// (DryStitch): block walk, hole patching, branch resolution, loop
// unrolling and peephole cleanup, but not the segment materialization both
// paths share. Allocations are counted over the same warm emission loop;
// the stencil path must not allocate at all.
type StitchPerfResult struct {
	Iters         int `json:"iters"`
	Directives    int `json:"directives"`     // region directive count (Table 1 vocabulary)
	StitchedInsts int `json:"stitched_insts"` // emitted instructions per stitch

	StencilNsPerStitch    float64 `json:"stencil_ns_per_stitch"`
	InterpNsPerStitch     float64 `json:"interp_ns_per_stitch"`
	StencilNsPerDirective float64 `json:"stencil_ns_per_directive"`
	InterpNsPerDirective  float64 `json:"interp_ns_per_directive"`
	// Speedup is InterpNsPerStitch / StencilNsPerStitch.
	Speedup float64 `json:"speedup"`

	StencilAllocsPerStitch float64 `json:"stencil_allocs_per_stitch"`
	InterpAllocsPerStitch  float64 `json:"interp_allocs_per_stitch"`

	// Identical records the byte-identity cross-check: the two paths'
	// fully materialized segments had equal Code and Consts.
	Identical bool `json:"identical"`
}

// stitchSubject compiles the cold-burst kernel with or without stencil
// precompilation and derives one specialization's constants table from the
// key bytes alone (the same KeySetup route background workers use).
func stitchSubject(disableStencil bool) (*core.Compiled, *tmpl.Region, []int64, int64, error) {
	cfg := core.Config{
		Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{AsyncStitch: true}, // installs KeySetup
	}
	if disableStencil {
		cfg.DisablePasses = []string{"stencil"}
	}
	c, err := core.Compile(coldSrc, cfg)
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("stitchperf compile: %w", err)
	}
	region := c.Runtime.Regions[0]
	if disableStencil && region.Stencil != nil {
		c.Runtime.Close()
		return nil, nil, nil, 0, fmt.Errorf("stitchperf: stencil attached despite -disable-pass stencil")
	}
	if !disableStencil && region.Stencil == nil {
		c.Runtime.Close()
		return nil, nil, nil, 0, fmt.Errorf("stitchperf: region %s did not precompile", region.Name)
	}
	setup := c.Runtime.KeySetup[0]
	if setup == nil {
		c.Runtime.Close()
		return nil, nil, nil, 0, fmt.Errorf("stitchperf: region %s has no key setup", region.Name)
	}
	mem, tbl, err := setup([]int64{9})
	if err != nil {
		c.Runtime.Close()
		return nil, nil, nil, 0, fmt.Errorf("stitchperf key setup: %w", err)
	}
	return c, region, mem, tbl, nil
}

// timeStitches runs iters warm dry stitches and reports mean ns and mean
// allocations per stitch.
func timeStitches(region *tmpl.Region, mem []int64, tbl int64, iters int) (float64, float64, error) {
	for i := 0; i < 100; i++ { // warm the scratch pool
		if _, err := stitcher.DryStitch(region, mem, tbl, stitcher.Options{}); err != nil {
			return 0, 0, err
		}
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := stitcher.DryStitch(region, mem, tbl, stitcher.Options{}); err != nil {
			return 0, 0, err
		}
	}
	el := time.Since(t0)
	runtime.ReadMemStats(&m1)
	ns := float64(el.Nanoseconds()) / float64(iters)
	allocs := float64(m1.Mallocs-m0.Mallocs) / float64(iters)
	return ns, allocs, nil
}

// StitchPerf measures stitch cost on both emission paths and cross-checks
// byte identity of the materialized segments. Zero selects the default
// iteration count.
func StitchPerf(iters int) (*StitchPerfResult, error) {
	if iters < 1 {
		iters = stitchPerfIters
	}

	sc, sregion, smem, stbl, err := stitchSubject(false)
	if err != nil {
		return nil, err
	}
	defer sc.Runtime.Close()
	ic, iregion, imem, itbl, err := stitchSubject(true)
	if err != nil {
		return nil, err
	}
	defer ic.Runtime.Close()

	sseg, sstats, err := stitcher.Stitch(sregion, smem, stbl,
		sc.Runtime.Prog.Segs[sregion.FuncID], stitcher.Options{})
	if err != nil {
		return nil, fmt.Errorf("stitchperf stencil stitch: %w", err)
	}
	if !sstats.StencilPath {
		return nil, fmt.Errorf("stitchperf: stitch did not take the stencil path")
	}
	iseg, _, err := stitcher.Stitch(iregion, imem, itbl,
		ic.Runtime.Prog.Segs[iregion.FuncID], stitcher.Options{})
	if err != nil {
		return nil, fmt.Errorf("stitchperf interpretive stitch: %w", err)
	}

	sns, sallocs, err := timeStitches(sregion, smem, stbl, iters)
	if err != nil {
		return nil, fmt.Errorf("stitchperf stencil timing: %w", err)
	}
	ins, iallocs, err := timeStitches(iregion, imem, itbl, iters)
	if err != nil {
		return nil, fmt.Errorf("stitchperf interpretive timing: %w", err)
	}

	nd := len(sregion.Directives())
	r := &StitchPerfResult{
		Iters:                  iters,
		Directives:             nd,
		StitchedInsts:          sstats.InstsStitched,
		StencilNsPerStitch:     sns,
		InterpNsPerStitch:      ins,
		StencilAllocsPerStitch: sallocs,
		InterpAllocsPerStitch:  iallocs,
		Identical:              sameSeg(sseg, iseg),
	}
	if nd > 0 {
		r.StencilNsPerDirective = sns / float64(nd)
		r.InterpNsPerDirective = ins / float64(nd)
	}
	if sns > 0 {
		r.Speedup = ins / sns
	}
	if !r.Identical {
		return nil, fmt.Errorf("stitchperf: stencil and interpretive segments diverge")
	}
	return r, nil
}

// sameSeg reports whether two stitched segments have identical code and
// constant pools.
func sameSeg(a, b *vm.Segment) bool {
	if len(a.Code) != len(b.Code) || len(a.Consts) != len(b.Consts) {
		return false
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			return false
		}
	}
	for i := range a.Consts {
		if a.Consts[i] != b.Consts[i] {
			return false
		}
	}
	return true
}

// PrintStitchPerf renders the stitch-path comparison.
func PrintStitchPerf(w io.Writer, r *StitchPerfResult) {
	fmt.Fprintf(w, "stitch-heavy keyed region: %d directives, %d stitched insts, %d stitches per subject\n",
		r.Directives, r.StitchedInsts, r.Iters)
	fmt.Fprintf(w, "  %-26s %8.0f ns/stitch   %6.1f ns/directive   %5.2f allocs/stitch\n",
		"stencil (copy-and-patch)", r.StencilNsPerStitch, r.StencilNsPerDirective, r.StencilAllocsPerStitch)
	fmt.Fprintf(w, "  %-26s %8.0f ns/stitch   %6.1f ns/directive   %5.2f allocs/stitch\n",
		"interpretive fallback", r.InterpNsPerStitch, r.InterpNsPerDirective, r.InterpAllocsPerStitch)
	fmt.Fprintf(w, "  %-26s %8.2fx   byte-identical segments: %v\n", "stencil speedup", r.Speedup, r.Identical)
}
