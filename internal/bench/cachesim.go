package bench

import (
	"fmt"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
	"dyncc/internal/vm"
)

// CacheSimSource is the paper's running example (sections 2 and 4): the
// cache lookup of a cache simulator. Not a Table 2 row, but the paper's
// worked walk-through; measured here so Figure 1's effect is quantified.
const CacheSimSource = `
struct SetStructure { int tag; int data; };
struct CacheLine { struct SetStructure **sets; };
struct Cache {
    unsigned blockSize;
    unsigned numLines;
    int associativity;
    struct CacheLine **lines;
};

int cacheLookup(unsigned addr, struct Cache *cache) {
    dynamicRegion (cache) {
        unsigned blockSize = cache->blockSize;
        unsigned numLines = cache->numLines;
        unsigned tag = addr / (blockSize * numLines);
        unsigned line = (addr / blockSize) % numLines;
        struct SetStructure **setArray = cache->lines[line]->sets;
        int assoc = cache->associativity;
        int set;
        unrolled for (set = 0; set < assoc; set++) {
            if (setArray[set] dynamic-> tag == tag)
                return 1;
        }
        return 0;
    }
    return -1;
}`

type cacheSimState struct {
	cache int64
}

func buildCacheSim(m *vm.Machine) (any, error) {
	const (
		blockSize = 32
		numLines  = 512
		assoc     = 4
	)
	alloc := func(n int64) (int64, error) { return m.Alloc(n) }
	cache, err := alloc(4)
	if err != nil {
		return nil, err
	}
	lines, _ := alloc(numLines)
	m.Mem[cache+0] = blockSize
	m.Mem[cache+1] = numLines
	m.Mem[cache+2] = assoc
	m.Mem[cache+3] = lines
	for l := int64(0); l < numLines; l++ {
		lineS, _ := alloc(1)
		m.Mem[lines+l] = lineS
		sets, err := alloc(assoc)
		if err != nil {
			return nil, err
		}
		m.Mem[lineS] = sets
		for w := int64(0); w < assoc; w++ {
			set, _ := alloc(2)
			m.Mem[sets+w] = set
			m.Mem[set] = -1
		}
	}
	// Warm part of the probe stream.
	for i := int64(0); i < 64; i++ {
		addr := i * 1024
		tag := addr / (blockSize * numLines)
		line := (addr / blockSize) % numLines
		sets := m.Mem[m.Mem[lines+line]]
		m.Mem[m.Mem[sets+(i/16)]] = tag
	}
	return &cacheSimState{cache: cache}, nil
}

func useCacheSim(m *vm.Machine, state any, i int) error {
	st := state.(*cacheSimState)
	addr := int64(i%200) * 1024
	h, err := m.Call("cacheLookup", addr, st.cache)
	if err != nil {
		return err
	}
	// Gold check: warmed addresses (i < 64 with matching stream) hit.
	want := int64(0)
	if i%200 < 64 {
		want = 1
	}
	if h != want {
		return fmt.Errorf("lookup(%#x) = %d, want %d", addr, h, want)
	}
	return nil
}

func cacheSimBenchmark() *benchmark {
	return &benchmark{
		name:        "cache lookup (Figure 1)",
		config:      "512 lines, 32B blocks, 4-way",
		unit:        "lookups",
		source:      CacheSimSource,
		uses:        4000,
		unitsPerUse: 1,
		build:       buildCacheSim,
		use:         useCacheSim,
	}
}

// CacheSim measures the paper's running example (extra row, not in Table 2).
func CacheSim(cfg Config) (*Measurement, error) { return measure(cacheSimBenchmark(), cfg) }

// Figure1 prints the section 4 walk-through: the region's directives and
// the final stitched code for the 512x32x4 configuration.
func Figure1(w interface{ Write([]byte) (int, error) }) error {
	// KeepStitched retains the stitched segment for the disassembly dump
	// (retention is off by default; see rtr.CacheOptions).
	dyn, err := core.Compile(CacheSimSource, core.Config{Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{KeepStitched: true}})
	if err != nil {
		return err
	}
	m := dyn.NewMachine(0)
	st, err := buildCacheSim(m)
	if err != nil {
		return err
	}
	if err := useCacheSim(m, st, 0); err != nil {
		return err
	}
	tr := dyn.Output.Regions[0]
	fmt.Fprintf(w, "Figure 1 / section 4: cache lookup (512 lines, 32B blocks, 4-way)\n\n")
	fmt.Fprintf(w, "stitcher directives:\n")
	for _, d := range tr.Directives() {
		fmt.Fprintf(w, "  %s\n", d)
	}
	fmt.Fprintf(w, "\nfinal stitched code:\n")
	for _, seg := range dyn.Runtime.Stitched[0] {
		fmt.Fprint(w, seg.Disasm())
	}
	return nil
}
