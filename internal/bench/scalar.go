package bench

import (
	"fmt"

	"dyncc/internal/vm"
)

// ScalarSource is scalar-matrix multiply (Table 2 row 2, adapted from
// 'C [EHK96]). The region is *keyed* by the scalar: a separate compiled
// version is stitched per distinct scalar, with the multiplication
// strength-reduced against the actual value.
const ScalarSource = `
int smm(int *src, int *dst, int n, int s) {
    dynamicRegion key(s) () {
        int i;
        for (i = 0; i < n; i++) {
            dst dynamic[i] = src dynamic[i] * s;
        }
    }
    return 0;
}`

type scalarState struct {
	src, dst int64
	n        int64
}

// Matrix dimensions: paper uses 100x800 = 80000 elements.
const (
	scalarRows = 100
	scalarCols = 800
)

func buildScalar(m *vm.Machine) (any, error) {
	n := int64(scalarRows * scalarCols)
	src, err := m.Alloc(n)
	if err != nil {
		return nil, err
	}
	dst, err := m.Alloc(n)
	if err != nil {
		return nil, err
	}
	for i := int64(0); i < n; i++ {
		m.Mem[src+i] = (i*2654435761 + 12345) % 1000
	}
	return &scalarState{src: src, dst: dst, n: n}, nil
}

func useScalar(m *vm.Machine, state any, i int) error {
	st := state.(*scalarState)
	s := int64(i%100) + 1 // all scalars 1..100
	if _, err := m.Call("smm", st.src, st.dst, st.n, s); err != nil {
		return err
	}
	// Spot check.
	k := int64(i % 1000)
	if m.Mem[st.dst+k] != m.Mem[st.src+k]*s {
		return fmt.Errorf("smm(%d): dst[%d] = %d, want %d", s, k,
			m.Mem[st.dst+k], m.Mem[st.src+k]*s)
	}
	return nil
}

func scalarBenchmark() *benchmark {
	return &benchmark{
		name:        "scalar-matrix multiply",
		config:      "100x800, scalars 1..100 (keyed)",
		unit:        "multiplications",
		source:      ScalarSource,
		uses:        100, // one pass per scalar
		unitsPerUse: scalarRows * scalarCols,
		build:       buildScalar,
		use:         useScalar,
	}
}

// ScalarMatrix measures Table 2 row 2.
func ScalarMatrix(cfg Config) (*Measurement, error) {
	mes, err := measure(scalarBenchmark(), cfg)
	if err != nil {
		return nil, err
	}
	// Keyed region: the overhead reported is the total across all 100
	// compiled versions; breakeven is computed against the per-version
	// average, matching the paper's "individual multiplications" unit.
	if mes.Compiles > 0 && mes.StaticPerUnit > mes.DynPerUnit {
		perVersion := float64(mes.Overhead) / float64(mes.Compiles)
		mes.Breakeven = int(perVersion/(mes.StaticPerUnit-mes.DynPerUnit)) + 1
	}
	return mes, nil
}
