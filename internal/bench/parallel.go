package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
)

// parallelSrc is the keyed kernel the parallel harness drives: complete
// unrolling keyed by the exponent, so each distinct key costs a real stitch
// and the stitched segments are worth sharing across machines.
const parallelSrc = `
int power(int n, int x) {
    int r = 1;
    dynamicRegion key(n) () {
        int i;
        unrolled for (i = 0; i < n; i++) {
            r = r * x;
        }
    }
    return r;
}`

// parallelKeys are the distinct specializations in the workload.
var parallelKeys = []int64{2, 3, 5, 8, 13, 21, 24, 30}

// ParallelResult is one row of the parallel-machines report: M machines
// driven by M goroutines over the same runtime, all hammering the same key
// set.
type ParallelResult struct {
	Machines   int           `json:"machines"`
	Uses       int           `json:"uses"` // total across machines
	Keys       int           `json:"keys"` // distinct specializations
	Elapsed    time.Duration `json:"elapsed_ns"`
	UsesPerSec float64       `json:"uses_per_sec"`
	Stitches   uint64        `json:"stitches"`
	SharedHits uint64        `json:"shared_hits"`
	// Waits counts lookups that found another machine's stitch of the
	// same key in flight and blocked for its result.
	Waits  uint64 `json:"waits"`
	Shared bool   `json:"shared"` // cross-machine sharing enabled
}

// ParallelMachines runs the keyed power kernel on `machines` machines, one
// goroutine each, `usesPerMachine` calls per machine cycling through the key
// set. With sharing enabled (the default) the whole fleet should pay for
// exactly len(parallelKeys) stitches; with noShare each machine stitches its
// own copies, reproducing the single-machine behavior M times over.
func ParallelMachines(machines, usesPerMachine int, noShare bool) (*ParallelResult, error) {
	if machines < 1 {
		machines = 1
	}
	if usesPerMachine < 1 {
		usesPerMachine = 2000
	}
	c, err := core.Compile(parallelSrc, core.Config{
		Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{NoShare: noShare},
	})
	if err != nil {
		return nil, fmt.Errorf("parallel: %w", err)
	}
	ms := c.NewMachines(machines)
	errs := make([]error, machines)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < machines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := ms[i]
			for n := 0; n < usesPerMachine; n++ {
				k := parallelKeys[(n+i)%len(parallelKeys)]
				if _, err := m.Call("power", k, 2); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("parallel: %w", err)
		}
	}
	cs := c.Runtime.CacheStats()
	uses := machines * usesPerMachine
	return &ParallelResult{
		Machines:   machines,
		Uses:       uses,
		Keys:       len(parallelKeys),
		Elapsed:    elapsed,
		UsesPerSec: float64(uses) / elapsed.Seconds(),
		Stitches:   cs.Stitches,
		SharedHits: cs.SharedHits,
		Waits:      cs.Waits,
		Shared:     !noShare,
	}, nil
}

// ParallelSweep runs ParallelMachines for machine counts 1, 2, 4, ... up to
// max (always including max), sharing enabled.
func ParallelSweep(max, usesPerMachine int) ([]*ParallelResult, error) {
	var results []*ParallelResult
	for g := 1; g <= max; g *= 2 {
		r, err := ParallelMachines(g, usesPerMachine, false)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	if n := len(results); n == 0 || results[n-1].Machines != max {
		r, err := ParallelMachines(max, usesPerMachine, false)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// PrintParallel renders the sweep, reporting throughput scaling relative to
// the single-machine row and the fleet-wide stitch count (which stays at the
// distinct-key count when sharing works).
func PrintParallel(w io.Writer, results []*ParallelResult) {
	fmt.Fprintf(w, "%-9s %12s %14s %9s %9s %12s %7s\n",
		"Machines", "Uses", "Uses/sec", "Scaling", "Stitches", "SharedHits", "Waits")
	for _, r := range results {
		scaling := 1.0
		if base := results[0]; base.UsesPerSec > 0 {
			scaling = r.UsesPerSec / base.UsesPerSec
		}
		fmt.Fprintf(w, "%-9d %12d %14.0f %8.2fx %9d %12d %7d\n",
			r.Machines, r.Uses, r.UsesPerSec, scaling,
			r.Stitches, r.SharedHits, r.Waits)
	}
}
