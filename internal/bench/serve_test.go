package bench

import "testing"

// A scaled-down serving run, inline and async: the fleet compiles
// byte-identically through CompileBatch, every request succeeds, caches
// stay under their caps, and the latency percentiles are populated. Run
// under -race by make check this also stresses the whole stack —
// concurrent batch compilation, then concurrent serving across frontends —
// in one pass.
func TestServeSmall(t *testing.T) {
	for _, async := range []bool{false, true} {
		cfg := ServeConfig{
			Tenants:        30,
			Requests:       2400,
			Frontends:      3,
			KeySpace:       96,
			CacheCap:       12,
			CompileWorkers: 4,
			Async:          async,
		}
		if testing.Short() {
			cfg.Tenants = 18
			cfg.Requests = 1200
			cfg.KeySpace = 64
		}
		r, err := Serve(cfg)
		if err != nil {
			t.Fatalf("async=%v: %v", async, err)
		}
		if !r.VerifiedIdentity || !r.Identical {
			t.Errorf("async=%v: batch output not verified byte-identical to serial", async)
		}
		if r.BatchPerSec <= 0 || r.RequestsPerSec <= 0 {
			t.Errorf("async=%v: throughput not populated", async)
		}
		if r.P50 <= 0 || r.P99 < r.P50 || r.P999 < r.P99 || r.Max < r.P999 {
			t.Errorf("async=%v: percentiles not ordered: p50=%v p99=%v p999=%v max=%v",
				async, r.P50, r.P99, r.P999, r.Max)
		}
		if r.Stitches == 0 {
			t.Errorf("async=%v: no stitches recorded", async)
		}
		if async && r.AsyncStitches == 0 && r.FallbackRuns == 0 {
			t.Error("async serve recorded no async stitches or fallback runs")
		}
	}
}
