package bench

import (
	"fmt"
	"io"
	"time"

	"dyncc/internal/core"
	"dyncc/internal/ir"
	"dyncc/internal/testgen"
)

// Inlining benchmark: a helper-heavy keyed region — every element of the
// unrolled loop goes through a two-deep helper chain — compiled with the
// demand-driven inline pass on versus ablated (`-disable-pass inline`).
// Inlined, the chain collapses into straight-line arithmetic the optimizer
// then folds against the region's run-time constants; ablated, every
// element pays two VM call frames inside the stitched code. A third
// subject strips the annotations and relies on automatic promotion — the
// function is a promotion candidate *only because* its calls are
// inlinable, so it measures the formerly call-blocked path end to end.
const (
	inlineBenchCalls = 20000
	inlineBenchN     = 8
)

const inlineBenchSrc = `
int mad(int k, int v) {
    return k * v + (v >> 1);
}

int mix(int k, int v) {
    return (k ^ v) + mad(k, v);
}

int apply(int *a, int n, int k) {
    int i;
    int s;
    s = 0;
    dynamicRegion key(k) (a, n) {
        unrolled for (i = 0; i < n; i++) {
            s = s + mix(k, a[i]);
        }
    }
    return s;
}`

// InlineResult is the inlined-versus-ablated comparison plus the
// automatic-promotion activity of the stripped subject.
type InlineResult struct {
	Calls int `json:"calls"`
	N     int `json:"n"`

	// Wall-clock host time and modeled guest cycles per kernel call.
	InlinedNsPerCall     float64 `json:"inlined_ns_per_call"`
	AblatedNsPerCall     float64 `json:"ablated_ns_per_call"`
	InlinedCyclesPerCall float64 `json:"inlined_cycles_per_call"`
	AblatedCyclesPerCall float64 `json:"ablated_cycles_per_call"`
	// Speedups: ablated / inlined.
	Speedup      float64 `json:"speedup"`
	CycleSpeedup float64 `json:"cycle_speedup"`

	// InlinesApplied is the inline pass's change count on the annotated
	// build; ResidualCalls counts OpCall instructions left in the ablated
	// build's kernel (they all sit inside the region).
	InlinesApplied int `json:"inlines_applied"`
	ResidualCalls  int `json:"residual_calls"`

	// The stripped/auto subject: a helper-calling function that promotes
	// only because its calls are inlinable.
	AutoPromotions    uint64  `json:"auto_promotions"`
	AutoNsPerCall     float64 `json:"auto_ns_per_call"`
	AutoCyclesPerCall float64 `json:"auto_cycles_per_call"`
}

// inlineBenchRun drives one compiled subject through the workload with a
// stable key, checking every return against a shadow model, and returns
// wall ns/call and modeled guest cycles/call.
func inlineBenchRun(name string, c *core.Compiled, calls int) (nsPerCall, cycPerCall float64, err error) {
	defer c.Runtime.Close()
	m := c.NewMachine(0)
	va, err := m.Alloc(inlineBenchN)
	if err != nil {
		return 0, 0, err
	}
	const k = int64(7)
	var want int64
	for i := int64(0); i < inlineBenchN; i++ {
		v := 2*i + 1
		m.Mem[va+i] = v
		want += (k ^ v) + k*v + (v >> 1)
	}
	// One warm-up call pays set-up and stitching; the timed loop then
	// measures the steady state both subjects reach.
	if _, err := m.Call("apply", va, inlineBenchN, k); err != nil {
		return 0, 0, fmt.Errorf("inline %s warm-up: %w", name, err)
	}
	c0 := m.Cycles
	t0 := time.Now()
	for n := 0; n < calls; n++ {
		got, err := m.Call("apply", va, inlineBenchN, k)
		if err != nil {
			return 0, 0, fmt.Errorf("inline %s call %d: %w", name, n, err)
		}
		if got != want {
			return 0, 0, fmt.Errorf("inline %s diverges (call %d): got %d, want %d", name, n, got, want)
		}
	}
	wall := time.Since(t0)
	return float64(wall.Nanoseconds()) / float64(calls),
		float64(m.Cycles-c0) / float64(calls), nil
}

// residualRegionCalls counts OpCall instructions left in fn.
func residualRegionCalls(c *core.Compiled, fn string) int {
	f := c.Module.FuncIndex[fn]
	if f == nil {
		return 0
	}
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				n++
			}
		}
	}
	return n
}

// Inline runs the comparison. Zero selects the standard workload.
func Inline(calls int) (*InlineResult, error) {
	if calls < 1 {
		calls = inlineBenchCalls
	}

	inl, err := core.Compile(inlineBenchSrc, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		return nil, fmt.Errorf("inline compile: %w", err)
	}
	inlines := inl.PassStat("inline").Changes
	if inlines == 0 {
		inl.Runtime.Close()
		return nil, fmt.Errorf("inline: pass grafted nothing on a helper-heavy kernel")
	}
	inlNs, inlCyc, err := inlineBenchRun("inlined", inl, calls)
	if err != nil {
		return nil, err
	}

	abl, err := core.Compile(inlineBenchSrc, core.Config{
		Dynamic: true, Optimize: true, DisablePasses: []string{"inline"},
	})
	if err != nil {
		return nil, fmt.Errorf("inline ablated compile: %w", err)
	}
	residual := residualRegionCalls(abl, "apply")
	if residual == 0 {
		abl.Runtime.Close()
		return nil, fmt.Errorf("inline: ablated build has no residual calls — ablation is not ablating")
	}
	ablNs, ablCyc, err := inlineBenchRun("ablated", abl, calls)
	if err != nil {
		return nil, err
	}

	// Stripped subject: automatic promotion must see through the calls.
	stripped := testgen.StripAnnotations(inlineBenchSrc)
	auto, err := core.Compile(stripped, core.Config{
		Dynamic: true, Optimize: true, AutoRegion: true,
	})
	if err != nil {
		return nil, fmt.Errorf("inline auto compile: %w", err)
	}
	if f := auto.Module.FuncIndex["apply"]; f == nil || len(f.Regions) == 0 {
		auto.Runtime.Close()
		return nil, fmt.Errorf("inline: stripped helper-calling kernel did not auto-promote")
	}
	autoNs, autoCyc, err := inlineBenchRun("auto", auto, calls)
	if err != nil {
		return nil, err
	}
	promos := auto.Runtime.CacheStats().Promotions
	if promos == 0 {
		return nil, fmt.Errorf("inline: auto subject never promoted over %d calls", calls)
	}

	r := &InlineResult{
		Calls: calls,
		N:     inlineBenchN,

		InlinedNsPerCall:     inlNs,
		AblatedNsPerCall:     ablNs,
		InlinedCyclesPerCall: inlCyc,
		AblatedCyclesPerCall: ablCyc,

		InlinesApplied: inlines,
		ResidualCalls:  residual,

		AutoPromotions:    promos,
		AutoNsPerCall:     autoNs,
		AutoCyclesPerCall: autoCyc,
	}
	if inlNs > 0 {
		r.Speedup = ablNs / inlNs
	}
	if inlCyc > 0 {
		r.CycleSpeedup = ablCyc / inlCyc
	}
	return r, nil
}

// PrintInline renders the comparison.
func PrintInline(w io.Writer, r *InlineResult) {
	fmt.Fprintf(w, "helper-heavy keyed region: %d calls, %d elements, 2-deep helper chain per element\n",
		r.Calls, r.N)
	fmt.Fprintf(w, "  %-26s %8.0f ns/call  %9.1f cyc/call   (%d call sites grafted)\n",
		"inlined (default)", r.InlinedNsPerCall, r.InlinedCyclesPerCall, r.InlinesApplied)
	fmt.Fprintf(w, "  %-26s %8.0f ns/call  %9.1f cyc/call   (%d residual calls)\n",
		"ablated (-disable-pass inline)", r.AblatedNsPerCall, r.AblatedCyclesPerCall, r.ResidualCalls)
	fmt.Fprintf(w, "  %-26s %8.2fx wall, %8.2fx cycles\n", "inlining speedup", r.Speedup, r.CycleSpeedup)
	fmt.Fprintf(w, "  %-26s %8.0f ns/call  %9.1f cyc/call   (%d promotions, formerly call-blocked)\n",
		"auto-promoted (stripped)", r.AutoNsPerCall, r.AutoCyclesPerCall, r.AutoPromotions)
}
