package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
	"dyncc/internal/testgen"
	"dyncc/internal/vm"
)

// Multi-tenant serving defaults: a fleet of ~2k generated tenant programs
// (dispatch / pricing / templating flavors), batch-compiled, then served
// with Zipf-distributed traffic over tenants AND over each tenant's key
// space — the shape of a service hosting thousands of customer programs
// where a few tenants carry most of the load and, within a tenant, a few
// keys carry most of the requests. Per-region caches are capped so the
// long tail of (tenant, key) specializations cannot grow without bound.
const (
	serveTenants   = 2000
	serveRequests  = 100000
	serveFrontends = 4
	serveKeySpace  = 512
	serveCacheCap  = 32
	serveTableLen  = 6
	serveZipfS     = 1.3
	serveZipfV     = 1.0
)

// ServeConfig parameterizes the multi-tenant serving benchmark. Zero
// fields select the standard configuration.
type ServeConfig struct {
	Tenants        int  // fleet size (default 2000)
	Requests       int  // total serve requests across all frontends (default 100000)
	Frontends      int  // concurrent serving goroutines (default 4)
	KeySpace       int  // per-tenant specialization key space (default 512)
	CacheCap       int  // per-region MaxEntries and MachineMaxEntries (default 32)
	CompileWorkers int  // CompileBatch pool size (default 8)
	Async          bool // serve with background stitching + fallback tier
	SkipVerify     bool // skip the serial recompile + byte-identity check
}

func (c *ServeConfig) defaults() {
	if c.Tenants < 1 {
		c.Tenants = serveTenants
	}
	if c.Requests < 1 {
		c.Requests = serveRequests
	}
	if c.Frontends < 1 {
		c.Frontends = serveFrontends
	}
	if c.KeySpace < 2 {
		c.KeySpace = serveKeySpace
	}
	if c.CacheCap < 1 {
		c.CacheCap = serveCacheCap
	}
	if c.CompileWorkers < 1 {
		c.CompileWorkers = 8
	}
}

// ServeResult is the serving report: batch-compile throughput against the
// serial baseline, then request latency percentiles under Zipf traffic.
type ServeResult struct {
	Tenants    int  `json:"tenants"`
	Requests   int  `json:"requests"`
	Frontends  int  `json:"frontends"`
	KeySpace   int  `json:"key_space"`
	CacheCap   int  `json:"cache_cap"`
	Async      bool `json:"async"`
	GoMaxProcs int  `json:"gomaxprocs"`

	// Compile phase: the whole fleet through serial Compile, then through
	// CompileBatch. Identical is the byte-identity verdict (fingerprints of
	// every program match between the two); Speedup is batch/serial in
	// programs/sec and is bounded above by GoMaxProcs.
	CompileWorkers   int           `json:"compile_workers"`
	SerialElapsed    time.Duration `json:"serial_elapsed_ns,omitempty"`
	SerialPerSec     float64       `json:"serial_programs_per_sec,omitempty"`
	BatchElapsed     time.Duration `json:"batch_elapsed_ns"`
	BatchPerSec      float64       `json:"batch_programs_per_sec"`
	Speedup          float64       `json:"speedup,omitempty"`
	Identical        bool          `json:"identical,omitempty"`
	VerifiedIdentity bool          `json:"verified_identity"`

	// Serve phase.
	ServeElapsed   time.Duration `json:"serve_elapsed_ns"`
	RequestsPerSec float64       `json:"requests_per_sec"`
	P50            time.Duration `json:"p50_ns"`
	P99            time.Duration `json:"p99_ns"`
	P999           time.Duration `json:"p999_ns"`
	Max            time.Duration `json:"max_ns"`

	// Cache totals summed over every tenant runtime.
	Stitches      uint64 `json:"stitches"`
	Evictions     uint64 `json:"evictions"`
	SharedHits    uint64 `json:"shared_hits"`
	PeakEntries   uint64 `json:"peak_entries"`
	BytesResident uint64 `json:"bytes_resident"`
	AsyncStitches uint64 `json:"async_stitches,omitempty"`
	FallbackRuns  uint64 `json:"fallback_runs,omitempty"`
	QueueRejects  uint64 `json:"queue_rejects,omitempty"`
}

// tenantState is one tenant's compiled program plus the per-frontend
// machines serving it, created lazily on first request (Zipf traffic means
// most frontends never touch most of the tail).
type tenantState struct {
	prog     *core.Compiled
	table    []int64
	machines []*serveMachine
}

type serveMachine struct {
	once sync.Once
	m    *vm.Machine
	va   int64
	err  error
}

func (ts *tenantState) machine(frontend int) (*serveMachine, error) {
	sm := ts.machines[frontend]
	sm.once.Do(func() {
		// Tenant machines hold only the small data table plus call-stack
		// headroom; the default machine memory (32 MB, zeroed on creation)
		// would make machine set-up the dominant cost across a 2k-tenant
		// fleet.
		m := ts.prog.NewMachine(1 << 16)
		va, err := m.Alloc(int64(len(ts.table)))
		if err != nil {
			sm.err = err
			return
		}
		copy(m.Mem[va:va+int64(len(ts.table))], ts.table)
		sm.m, sm.va = m, va
	})
	return sm, sm.err
}

// Serve runs the multi-tenant serving benchmark: generate cfg.Tenants
// tenant programs, compile the fleet serially and through CompileBatch
// (verifying byte-identical output unless SkipVerify), then serve
// cfg.Requests requests from cfg.Frontends goroutines with Zipf-ranked
// tenant selection and Zipf-ranked keys within each tenant, under capped
// per-region caches (and, when cfg.Async, background stitching with the
// generic fallback tier).
func Serve(cfg ServeConfig) (*ServeResult, error) {
	cfg.defaults()
	res := &ServeResult{
		Tenants:        cfg.Tenants,
		Requests:       cfg.Requests,
		Frontends:      cfg.Frontends,
		KeySpace:       cfg.KeySpace,
		CacheCap:       cfg.CacheCap,
		Async:          cfg.Async,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		CompileWorkers: cfg.CompileWorkers,
	}

	srcs := make([]string, cfg.Tenants)
	for i := range srcs {
		srcs[i] = testgen.Tenant(int64(i))
	}
	ccfg := core.Config{
		Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{
			MaxEntries:        cfg.CacheCap,
			MachineMaxEntries: cfg.CacheCap,
			AsyncStitch:       cfg.Async,
		},
	}

	// Serial baseline + fingerprints for the byte-identity check.
	var serialFP []string
	if !cfg.SkipVerify {
		serialFP = make([]string, len(srcs))
		start := time.Now()
		for i, src := range srcs {
			c, err := core.Compile(src, ccfg)
			if err != nil {
				return nil, fmt.Errorf("serve: serial compile of tenant %d: %w", i, err)
			}
			serialFP[i] = testgen.Fingerprint(c)
			c.Runtime.Close()
		}
		res.SerialElapsed = time.Since(start)
		res.SerialPerSec = float64(len(srcs)) / res.SerialElapsed.Seconds()
	}

	bcfg := ccfg
	bcfg.CompileWorkers = cfg.CompileWorkers
	start := time.Now()
	br, err := core.CompileBatch(srcs, bcfg)
	if err != nil {
		return nil, fmt.Errorf("serve: batch compile: %w", err)
	}
	res.BatchElapsed = time.Since(start)
	res.BatchPerSec = float64(len(srcs)) / res.BatchElapsed.Seconds()
	defer func() {
		for _, c := range br.Programs {
			c.Runtime.Close()
		}
	}()
	if !cfg.SkipVerify {
		res.VerifiedIdentity = true
		res.Identical = true
		for i, c := range br.Programs {
			if testgen.Fingerprint(c) != serialFP[i] {
				res.Identical = false
				return nil, fmt.Errorf("serve: tenant %d batch output diverges from serial compile", i)
			}
		}
		res.Speedup = res.BatchPerSec / res.SerialPerSec
	}

	// Per-tenant serving state: a deterministic data table (used by the
	// templating flavor; harmless ballast for the others) and a lazy
	// machine slot per frontend.
	tenants := make([]*tenantState, len(br.Programs))
	for i, c := range br.Programs {
		r := rand.New(rand.NewSource(int64(i)*2654435761 + 97))
		table := make([]int64, serveTableLen)
		for j := range table {
			table[j] = int64(r.Intn(200) - 100)
		}
		ms := make([]*serveMachine, cfg.Frontends)
		for j := range ms {
			ms[j] = &serveMachine{}
		}
		tenants[i] = &tenantState{prog: c, table: table, machines: ms}
	}

	// Serve phase: each frontend draws (tenant, key) pairs from its own
	// seeded Zipf streams and times every call.
	perFrontend := cfg.Requests / cfg.Frontends
	lat := make([][]time.Duration, cfg.Frontends)
	errs := make([]error, cfg.Frontends)
	var wg sync.WaitGroup
	start = time.Now()
	for f := 0; f < cfg.Frontends; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(f)*7919 + 13))
			tz := rand.NewZipf(rng, serveZipfS, serveZipfV, uint64(cfg.Tenants-1))
			kz := rand.NewZipf(rng, serveZipfS, serveZipfV, uint64(cfg.KeySpace-1))
			ls := make([]time.Duration, 0, perFrontend)
			for n := 0; n < perFrontend; n++ {
				ts := tenants[tz.Uint64()]
				sm, err := ts.machine(f)
				if err != nil {
					errs[f] = err
					return
				}
				k := int64(kz.Uint64())
				x := int64(n&1023) + 1
				t0 := time.Now()
				_, err = sm.m.Call(testgen.TenantEntry, sm.va, serveTableLen, k, x)
				ls = append(ls, time.Since(t0))
				if err != nil {
					errs[f] = fmt.Errorf("serve request (frontend=%d k=%d x=%d): %w", f, k, x, err)
					return
				}
			}
			lat[f] = ls
		}(f)
	}
	wg.Wait()
	res.ServeElapsed = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	all := make([]time.Duration, 0, cfg.Requests)
	for _, ls := range lat {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.RequestsPerSec = float64(len(all)) / res.ServeElapsed.Seconds()
	res.P50 = percentile(all, 0.50)
	res.P99 = percentile(all, 0.99)
	res.P999 = percentile(all, 0.999)
	if len(all) > 0 {
		res.Max = all[len(all)-1]
	}

	// Drain background stitchers, then sum cache stats across the fleet.
	for _, c := range br.Programs {
		c.Runtime.WaitIdle()
		cs := c.Runtime.CacheStats()
		res.Stitches += cs.Stitches
		res.Evictions += cs.Evictions
		res.SharedHits += cs.SharedHits
		res.PeakEntries += cs.PeakEntries
		res.BytesResident += cs.BytesResident
		res.AsyncStitches += cs.AsyncStitches
		res.FallbackRuns += cs.FallbackRuns
		res.QueueRejects += cs.QueueRejects
	}
	return res, nil
}

// percentile reads the p-quantile from an ascending-sorted latency slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// PrintServe renders the serving report.
func PrintServe(w io.Writer, r *ServeResult) {
	fmt.Fprintf(w, "%d tenants, %d requests x %d frontends, %d keys/tenant (Zipf s=%.1f), cap %d entries/region, GOMAXPROCS=%d\n",
		r.Tenants, r.Requests, r.Frontends, r.KeySpace, serveZipfS, r.CacheCap, r.GoMaxProcs)
	fmt.Fprintf(w, "compile (batch, %d workers):\n", r.CompileWorkers)
	if r.VerifiedIdentity {
		fmt.Fprintf(w, "  %-22s %12.0f\n", "serial programs/sec", r.SerialPerSec)
	}
	fmt.Fprintf(w, "  %-22s %12.0f\n", "batch programs/sec", r.BatchPerSec)
	if r.VerifiedIdentity {
		fmt.Fprintf(w, "  %-22s %11.2fx\n", "speedup", r.Speedup)
		fmt.Fprintf(w, "  %-22s %12v\n", "byte-identical", r.Identical)
	}
	fmt.Fprintf(w, "serve (async=%v):\n", r.Async)
	fmt.Fprintf(w, "  %-22s %12.0f\n", "requests/sec", r.RequestsPerSec)
	fmt.Fprintf(w, "  %-22s %12v\n", "p50", r.P50)
	fmt.Fprintf(w, "  %-22s %12v\n", "p99", r.P99)
	fmt.Fprintf(w, "  %-22s %12v\n", "p99.9", r.P999)
	fmt.Fprintf(w, "  %-22s %12v\n", "max", r.Max)
	fmt.Fprintf(w, "  %-22s %12d\n", "stitches", r.Stitches)
	fmt.Fprintf(w, "  %-22s %12d\n", "evictions", r.Evictions)
	fmt.Fprintf(w, "  %-22s %12d\n", "shared hits", r.SharedHits)
	if r.Async {
		fmt.Fprintf(w, "  %-22s %12d  (fallback runs %d, queue rejects %d)\n",
			"async stitches", r.AsyncStitches, r.FallbackRuns, r.QueueRejects)
	}
}
