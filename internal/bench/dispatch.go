package bench

import (
	"fmt"

	"dyncc/internal/vm"
)

// DispatchSource is the event dispatcher of an extensible operating system
// (Table 2 row 5; [BSP+95, CEA+96]). The set of installed handlers and
// their guard predicates is the run-time constant; dispatch is unrolled
// over the handler list with each guard's predicate-type switch eliminated
// and its argument inlined.
const DispatchSource = `
/* guard table entries: [predType, predArg, handlerWeight] */
int runHandler(int w, int payload) {
    return payload * 3 + w;
}

int dispatch(int *table, int n, int event, int payload) {
    int result = 0;
    dynamicRegion (table, n) {
        int i;
        unrolled for (i = 0; i < n; i++) {
            int ptype = table[i*3];
            int parg = table[i*3+1];
            int w = table[i*3+2];
            int match = 0;
            switch (ptype) {
            case 0: match = event == parg; break;        /* exact */
            case 1: match = event != parg; break;        /* exclusion */
            case 2: match = (event & parg) != 0; break;  /* mask */
            case 3: match = event < parg; break;         /* range */
            }
            if (match) {
                result = result + runHandler(w, payload);
            }
        }
    }
    return result;
}`

type dispatchState struct {
	table int64
	n     int64
	// host copy for verification
	guards [][3]int64
}

// The paper's configuration: 4 predicate types, 10 event guards.
var dispatchGuards = [][3]int64{
	{0, 17, 3}, {1, 4, 5}, {2, 0x10, 7}, {3, 100, 11},
	{0, 42, 13}, {2, 0x3, 17}, {3, 9, 19}, {1, 17, 23},
	{0, 5, 29}, {2, 0x80, 31},
}

func buildDispatch(m *vm.Machine) (any, error) {
	n := int64(len(dispatchGuards))
	table, err := m.Alloc(n * 3)
	if err != nil {
		return nil, err
	}
	for i, g := range dispatchGuards {
		m.Mem[table+int64(i*3)] = g[0]
		m.Mem[table+int64(i*3)+1] = g[1]
		m.Mem[table+int64(i*3)+2] = g[2]
	}
	return &dispatchState{table: table, n: n, guards: dispatchGuards}, nil
}

func dispatchGold(st *dispatchState, event, payload int64) int64 {
	result := int64(0)
	for _, g := range st.guards {
		match := false
		switch g[0] {
		case 0:
			match = event == g[1]
		case 1:
			match = event != g[1]
		case 2:
			match = event&g[1] != 0
		case 3:
			match = event < g[1]
		}
		if match {
			result += payload*3 + g[2]
		}
	}
	return result
}

func useDispatch(m *vm.Machine, state any, i int) error {
	st := state.(*dispatchState)
	event := int64(i*31) % 257
	payload := int64(i % 1000)
	got, err := m.Call("dispatch", st.table, st.n, event, payload)
	if err != nil {
		return err
	}
	if want := dispatchGold(st, event, payload); got != want {
		return fmt.Errorf("dispatch(%d,%d) = %d, want %d", event, payload, got, want)
	}
	return nil
}

func dispatchBenchmark() *benchmark {
	return &benchmark{
		name:        "event dispatcher",
		config:      "4 predicate types, 10 guards",
		unit:        "event dispatches",
		source:      DispatchSource,
		uses:        3000,
		unitsPerUse: 1,
		build:       buildDispatch,
		use:         useDispatch,
	}
}

// Dispatcher measures Table 2 row 5.
func Dispatcher(cfg Config) (*Measurement, error) { return measure(dispatchBenchmark(), cfg) }
