package bench

import (
	"fmt"
	"io"

	"dyncc/internal/core"
)

// CompileTime measures static compile latency per pipeline pass over the
// example corpus (the Table 2 kernel sources), using the pass manager's
// built-in wall-clock timings. It answers "where does compile time go?" —
// the observability the old monolithic core.Compile could not provide —
// and gives pass-level regressions a checked-in baseline (BENCH_5.json).

// PassMicros is the mean wall-clock cost of one pass, in microseconds per
// compile.
type PassMicros struct {
	Pass   string  `json:"pass"`
	Micros float64 `json:"micros"`
}

// CompileTimeRow is the per-pass compile-time profile of one corpus
// program.
type CompileTimeRow struct {
	Name        string       `json:"name"`
	Passes      []PassMicros `json:"passes"`
	TotalMicros float64      `json:"total_micros"`
}

// CompileTimeResult is the full compile-latency report.
type CompileTimeResult struct {
	Iters      int               `json:"iters"`
	Benchmarks []*CompileTimeRow `json:"benchmarks"`
}

// compileCorpus is the example corpus: every Table 2 kernel.
func compileCorpus() []struct{ name, src string } {
	return []struct{ name, src string }{
		{"interpreter (cachesim)", CacheSimSource},
		{"calculator", CalcSource},
		{"event dispatcher", DispatchSource},
		{"record sorter", SorterSource},
		{"matrix scalar multiply", ScalarSource},
		{"sparse vector product", SparseSource},
	}
}

// CompileTime compiles each corpus program iters times (0 = default 30)
// with the default dynamic configuration and reports mean per-pass
// microseconds. The first compile of each program is discarded as warm-up
// so one-time process costs don't skew the means.
func CompileTime(iters int) (*CompileTimeResult, error) {
	if iters <= 0 {
		iters = 30
	}
	res := &CompileTimeResult{Iters: iters}
	for _, c := range compileCorpus() {
		sum := map[string]float64{}
		var order []string
		for i := 0; i < iters+1; i++ {
			compiled, err := core.Compile(c.src, core.DefaultConfig())
			if err != nil {
				return nil, fmt.Errorf("%s: %w", c.name, err)
			}
			if i == 0 {
				continue // warm-up
			}
			for _, st := range compiled.Stats {
				if _, seen := sum[st.Pass]; !seen {
					order = append(order, st.Pass)
				}
				sum[st.Pass] += float64(st.Duration.Nanoseconds()) / 1e3
			}
		}
		row := &CompileTimeRow{Name: c.name}
		for _, pass := range order {
			m := sum[pass] / float64(iters)
			row.Passes = append(row.Passes, PassMicros{Pass: pass, Micros: m})
			// The "optimize" group row overlaps its sub-passes; count
			// only top-level rows toward the total.
			switch pass {
			case "const-fold", "simplify", "branch-fold", "copy-prop", "cse", "dce", "verify":
			default:
				row.TotalMicros += m
			}
		}
		res.Benchmarks = append(res.Benchmarks, row)
	}
	return res, nil
}

// PrintCompileTime renders the report as a table.
func PrintCompileTime(w io.Writer, res *CompileTimeResult) {
	for _, row := range res.Benchmarks {
		fmt.Fprintf(w, "%-26s total %8.1f µs/compile (mean of %d)\n",
			row.Name, row.TotalMicros, res.Iters)
		for _, p := range row.Passes {
			fmt.Fprintf(w, "    %-12s %8.1f µs\n", p.Pass, p.Micros)
		}
	}
}
