package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table2 runs every benchmark and returns the rows of the paper's Table 2.
func Table2(cfg Config) ([]*Measurement, error) {
	runs := []func(Config) (*Measurement, error){
		Calculator, ScalarMatrix, SparseLarge, SparseSmall,
		Dispatcher, Sorter4, Sorter32,
		CacheSim, // extra: the paper's Figure 1 walk-through, quantified
	}
	var rows []*Measurement
	for _, r := range runs {
		m, err := r(cfg)
		if err != nil {
			return rows, err
		}
		rows = append(rows, m)
	}
	return rows, nil
}

// PrintTable2 renders the rows like the paper's Table 2.
func PrintTable2(w io.Writer, rows []*Measurement) {
	fmt.Fprintf(w, "%-30s %-34s %9s %12s %16s %22s\n",
		"Benchmark", "Run-time constant configuration", "Speedup",
		"Breakeven", "Overhead (cyc)", "Cyc/inst (stitched)")
	fmt.Fprintln(w, strings.Repeat("-", 128))
	for _, m := range rows {
		fmt.Fprintf(w, "%-30s %-34s %9.2f %8d %s %8d+%-8d %13.0f (%d)\n",
			m.Name, m.Config, m.Speedup, m.Breakeven, padUnit(m.Unit),
			m.SetupCycles, m.StitchCycles, m.CyclesPerStitched, m.StitchedInsts)
	}
}

func padUnit(u string) string {
	if len(u) > 16 {
		u = u[:16]
	}
	return fmt.Sprintf("%-16s", u)
}

// Table3Row is one row of the paper's Table 3: which optimizations were
// applied dynamically.
type Table3Row struct {
	Name                    string
	ConstantFolding         bool // derived constants computed once in set-up
	StaticBranchElimination bool // constant branches resolved by the stitcher
	LoadElimination         bool // loads through constant pointers moved to set-up
	DeadCodeElimination     bool // untaken paths of constant branches dropped
	CompleteLoopUnrolling   bool
	StrengthReduction       bool
}

// Table3 derives the optimization matrix from Table 2's measurements.
func Table3(rows []*Measurement) []Table3Row {
	var out []Table3Row
	for _, m := range rows {
		out = append(out, Table3Row{
			Name:                    m.Name + " (" + m.Config + ")",
			ConstantFolding:         m.Plan.ConstOpsFolded > 0,
			StaticBranchElimination: m.Stitch.BranchesResolved > 0,
			LoadElimination:         m.Plan.LoadsEliminated > 0,
			DeadCodeElimination:     m.Stitch.BranchesResolved > 0,
			CompleteLoopUnrolling:   m.Stitch.LoopIterations > 0,
			StrengthReduction:       m.Stitch.StrengthReductions > 0,
		})
	}
	return out
}

// PrintTable3 renders the optimization matrix.
func PrintTable3(w io.Writer, rows []Table3Row) {
	check := func(b bool) string {
		if b {
			return "  ✓  "
		}
		return "     "
	}
	fmt.Fprintf(w, "%-60s %-7s %-7s %-7s %-7s %-7s %-7s\n", "Benchmark",
		"Fold", "BrElim", "LdElim", "DCE", "Unroll", "StrRed")
	fmt.Fprintln(w, strings.Repeat("-", 104))
	for _, r := range rows {
		fmt.Fprintf(w, "%-60s %-7s %-7s %-7s %-7s %-7s %-7s\n", r.Name,
			check(r.ConstantFolding), check(r.StaticBranchElimination),
			check(r.LoadElimination), check(r.DeadCodeElimination),
			check(r.CompleteLoopUnrolling), check(r.StrengthReduction))
	}
}
