package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
)

// churnSrc is the high-cardinality keyed kernel the churn harness drives:
// a cheap specialization (one multiply folded per key) so the measurement
// stresses the cache machinery — eviction, generation checks, re-stitch —
// rather than the stitcher itself.
const churnSrc = `
int scale(int s, int x) {
    int r;
    dynamicRegion key(s) () {
        r = x * s;
    }
    return r;
}`

// Churn workload defaults: a Zipf-distributed key stream whose cardinality
// dwarfs the cache cap, the shape of a server specializing per user or per
// query over millions of users. With s=1.3 over 4096 keys the head is hot
// (the top 32 ranks carry most of the mass) and the tail forces steady
// eviction churn.
const (
	churnMachines = 4
	churnUses     = 25000 // per machine
	churnKeySpace = 4096
	churnCap      = 256 // MaxEntries and MachineMaxEntries
	churnHotKeys  = 32
	churnZipfS    = 1.3
	churnZipfV    = 1.0
	churnRandBase = 7919 // per-machine seed stride (deterministic streams)
)

// ChurnResult is the cache-churn report: a bounded cache under a
// high-cardinality Zipf key stream. Eviction quality is the hot-set hit
// rate (fraction of hot-key calls that needed no stitch anywhere); cap
// enforcement is PeakEntries <= MaxEntries.
type ChurnResult struct {
	Machines       int           `json:"machines"`
	UsesPerMachine int           `json:"uses_per_machine"`
	KeySpace       int           `json:"key_space"`
	HotKeys        int           `json:"hot_keys"`
	MaxEntries     int           `json:"max_entries"`
	Elapsed        time.Duration `json:"elapsed_ns"`
	UsesPerSec     float64       `json:"uses_per_sec"`

	Stitches        uint64  `json:"stitches"`
	Evictions       uint64  `json:"evictions"`
	Restitches      uint64  `json:"restitches"`
	SharedHits      uint64  `json:"shared_hits"`
	Waits           uint64  `json:"waits"`
	L2Evictions     uint64  `json:"l2_evictions"`
	EntriesResident uint64  `json:"entries_resident"`
	PeakEntries     uint64  `json:"peak_entries"`
	BytesResident   uint64  `json:"bytes_resident"`
	HotCalls        uint64  `json:"hot_calls"`
	HotHits         uint64  `json:"hot_hits"`
	HotHitRate      float64 `json:"hot_hit_rate"`

	// Tiered-execution counters, present only when Async is set.
	Async         bool   `json:"async,omitempty"`
	AsyncStitches uint64 `json:"async_stitches,omitempty"`
	FallbackRuns  uint64 `json:"fallback_runs,omitempty"`
	QueueRejects  uint64 `json:"queue_rejects,omitempty"`

	Churn []rtr.RegionChurn `json:"churn,omitempty"`
}

// CacheChurn drives `machines` machines, one goroutine each, over a
// Zipf-distributed key stream of `keySpace` distinct keys with the shared
// cache capped at maxEntries (and each machine's private cache capped the
// same). Zero arguments select the standard configuration. Key streams are
// seeded per machine, so runs are deterministic.
func CacheChurn(machines, usesPerMachine, keySpace, maxEntries int) (*ChurnResult, error) {
	return CacheChurnMode(machines, usesPerMachine, keySpace, maxEntries, false)
}

// CacheChurnMode is CacheChurn with a mode switch: async runs the same
// workload with background stitching on, so cold and re-stitched keys are
// served by the generic fallback tier while workers stitch. Hot-hit
// detection switches from "no compile charged" to "no set-up ran" — under
// async a machine never compiles, but a call that missed everywhere still
// executes the region's set-up code before taking the fallback tier.
func CacheChurnMode(machines, usesPerMachine, keySpace, maxEntries int, async bool) (*ChurnResult, error) {
	if machines < 1 {
		machines = churnMachines
	}
	if usesPerMachine < 1 {
		usesPerMachine = churnUses
	}
	if keySpace < 2 {
		keySpace = churnKeySpace
	}
	if maxEntries < 1 {
		maxEntries = churnCap
	}
	c, err := core.Compile(churnSrc, core.Config{
		Dynamic: true, Optimize: true,
		Cache: rtr.CacheOptions{
			MaxEntries:        maxEntries,
			MachineMaxEntries: maxEntries,
			ChurnStats:        true,
			AsyncStitch:       async,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("cachechurn: %w", err)
	}
	defer c.Runtime.Close()
	ms := c.NewMachines(machines)
	// Prime the Zipf head once before the clock starts: the measured phase
	// then reports steady-state eviction quality (does the cache keep the
	// hot set resident under tail churn?) rather than cold-start latency.
	// Under async stitching the pool is drained so the head is actually
	// published — the machines can issue cold keys orders of magnitude
	// faster than any background pool could stitch them, and cold-start
	// promotion behaviour is measured separately (ColdBurst).
	for k := int64(1); k <= int64(churnHotKeys); k++ {
		if _, err := ms[0].Call("scale", k, 1); err != nil {
			return nil, fmt.Errorf("cachechurn warmup: %w", err)
		}
	}
	c.Runtime.WaitIdle()
	errs := make([]error, machines)
	hotCalls := make([]uint64, machines)
	hotHits := make([]uint64, machines)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < machines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := ms[i]
			rng := rand.New(rand.NewSource(int64(i)*churnRandBase + 1))
			zipf := rand.NewZipf(rng, churnZipfS, churnZipfV, uint64(keySpace-1))
			for n := 0; n < usesPerMachine; n++ {
				rank := zipf.Uint64()
				k := int64(rank) + 1
				x := int64(n%1000) + 1
				rc := m.Region(0)
				beforeCompiles, beforeSetup := rc.Compiles, rc.SetupCycles
				got, err := m.Call("scale", k, x)
				if err != nil {
					errs[i] = err
					return
				}
				if got != k*x {
					errs[i] = fmt.Errorf("scale(%d,%d) = %d, want %d", k, x, got, k*x)
					return
				}
				if int(rank) < churnHotKeys {
					hotCalls[i]++
					// A hot call is a hit when this machine paid no
					// stitch: warm dispatch, shared-cache adoption and
					// singleflight waits all count (no compile charged).
					// Under async nothing ever compiles on a machine, so
					// the discriminator is set-up: a miss runs set-up
					// before taking the fallback tier, a hit runs none.
					rc = m.Region(0)
					hit := rc.Compiles == beforeCompiles
					if async {
						hit = rc.SetupCycles == beforeSetup
					}
					if hit {
						hotHits[i]++
					}
				}
			}
		}(i)
	}
	wg.Wait()
	c.Runtime.WaitIdle() // drain background stitches before reading stats
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cachechurn: %w", err)
		}
	}
	cs := c.Runtime.CacheStats()
	res := &ChurnResult{
		Machines:       machines,
		UsesPerMachine: usesPerMachine,
		KeySpace:       keySpace,
		HotKeys:        churnHotKeys,
		MaxEntries:     maxEntries,
		Elapsed:        elapsed,
		UsesPerSec:     float64(machines*usesPerMachine) / elapsed.Seconds(),

		Stitches:        cs.Stitches,
		Evictions:       cs.Evictions,
		Restitches:      cs.Restitches,
		SharedHits:      cs.SharedHits,
		Waits:           cs.Waits,
		L2Evictions:     cs.L2Evictions,
		EntriesResident: cs.EntriesResident,
		PeakEntries:     cs.PeakEntries,
		BytesResident:   cs.BytesResident,
		Churn:           c.Runtime.Churn(),

		Async:         async,
		AsyncStitches: cs.AsyncStitches,
		FallbackRuns:  cs.FallbackRuns,
		QueueRejects:  cs.QueueRejects,
	}
	for i := range hotCalls {
		res.HotCalls += hotCalls[i]
		res.HotHits += hotHits[i]
	}
	if res.HotCalls > 0 {
		res.HotHitRate = float64(res.HotHits) / float64(res.HotCalls)
	}
	return res, nil
}

// PrintChurn renders the churn report.
func PrintChurn(w io.Writer, r *ChurnResult) {
	fmt.Fprintf(w, "%d machines x %d uses, %d distinct keys (Zipf s=%.1f), cap %d entries\n",
		r.Machines, r.UsesPerMachine, r.KeySpace, churnZipfS, r.MaxEntries)
	fmt.Fprintf(w, "  %-22s %12.0f\n", "uses/sec", r.UsesPerSec)
	fmt.Fprintf(w, "  %-22s %12d\n", "stitches", r.Stitches)
	fmt.Fprintf(w, "  %-22s %12d\n", "evictions", r.Evictions)
	fmt.Fprintf(w, "  %-22s %12d\n", "re-stitches", r.Restitches)
	fmt.Fprintf(w, "  %-22s %12d\n", "shared hits", r.SharedHits)
	fmt.Fprintf(w, "  %-22s %12d\n", "L2 evictions", r.L2Evictions)
	fmt.Fprintf(w, "  %-22s %12d  (cap %d)\n", "entries resident", r.EntriesResident, r.MaxEntries)
	fmt.Fprintf(w, "  %-22s %12d  (cap %d)\n", "peak entries", r.PeakEntries, r.MaxEntries)
	fmt.Fprintf(w, "  %-22s %12d\n", "bytes resident", r.BytesResident)
	fmt.Fprintf(w, "  %-22s %11.1f%%  (top %d keys)\n",
		"hot-set hit rate", 100*r.HotHitRate, r.HotKeys)
	if r.Async {
		fmt.Fprintf(w, "  %-22s %12d  (fallback runs %d, queue rejects %d)\n",
			"async stitches", r.AsyncStitches, r.FallbackRuns, r.QueueRejects)
	}
}
