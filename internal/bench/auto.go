package bench

import (
	"fmt"
	"io"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
	"dyncc/internal/testgen"
)

// Automatic-promotion benchmark: the same kernel three ways on one phased
// workload — hand-annotated (the paper's programmer-in-the-loop model),
// annotation-stripped with speculative promotion (core.Config.AutoRegion),
// and annotation-stripped with nothing (the static baseline). The workload
// holds its key operands stable for long phases and flips them between
// phases, so the speculative subject must discover the region, promote it,
// run guarded stitched code, and deoptimize at every phase boundary.
const (
	autoBenchPhases   = 8
	autoBenchPhaseLen = 512
	autoBenchN        = 8
)

// autoBenchSrc is the annotated kernel; testgen.StripAnnotations turns it
// into the plain program the speculative and baseline subjects compile.
// Both scalar parameters are region keys, so the automatic pass speculates
// on exactly the operands the annotation names.
const autoBenchSrc = `
int kernel(int k, int n, int *a) {
    int s;
    s = 0;
    dynamicRegion key(k, n) () {
        int i;
        unrolled for (i = 0; i < n; i++) {
            s = s + a[i] * k;
        }
    }
    return s;
}`

// autoBenchOpts keeps re-promotion reachable across every phase: gentle
// backoff with a capped threshold well under the phase length, so the
// steady state of each phase is promoted guarded code.
var autoBenchOpts = rtr.AutoOptions{
	BackoffFactor: 2,
	MaxThreshold:  64,
}

// AutoRegionResult is the three-subject comparison plus the speculative
// subject's promotion activity.
type AutoRegionResult struct {
	Calls    int `json:"calls"`
	Phases   int `json:"phases"`
	PhaseLen int `json:"phase_len"`

	// Modeled guest cycles per call for each subject, whole workload
	// (including profiling, set-up, stitching and guard overhead where the
	// subject pays them).
	OffCyclesPerCall       float64 `json:"off_cycles_per_call"`
	AutoCyclesPerCall      float64 `json:"auto_cycles_per_call"`
	AnnotatedCyclesPerCall float64 `json:"annotated_cycles_per_call"`
	// Speedups versus the static baseline (off / subject).
	AutoSpeedup      float64 `json:"auto_speedup"`
	AnnotatedSpeedup float64 `json:"annotated_speedup"`

	// Promotion activity of the speculative subject.
	Promotions   uint64 `json:"promotions"`
	Deopts       uint64 `json:"deopts"`
	Stitches     uint64 `json:"stitches"`
	FallbackRuns uint64 `json:"fallback_runs"`
	// PromotionLatency is the number of calls before the first promotion
	// (the profiling tier's time-to-speculation).
	PromotionLatency int `json:"promotion_latency_calls"`
	// KeyChanges is the number of phase boundaries (key flips) in the
	// workload; DeoptRate is Deopts / KeyChanges.
	KeyChanges int     `json:"key_changes"`
	DeoptRate  float64 `json:"deopt_rate"`
}

// autoBenchKey returns the key operand for phase p: two values alternate,
// so every phase boundary is a guard failure for promoted code.
func autoBenchKey(p int) int64 {
	if p%2 == 1 {
		return 5
	}
	return 3
}

// autoBenchRun drives one compiled subject through the phased workload and
// returns modeled guest cycles per call. When latency is non-nil it is set
// to the 1-based call index of the first promotion (or the call count if
// the subject never promoted).
func autoBenchRun(name string, c *core.Compiled, phases, phaseLen int, latency *int) (float64, error) {
	defer c.Runtime.Close()
	m := c.NewMachine(0)
	va, err := m.Alloc(autoBenchN)
	if err != nil {
		return 0, err
	}
	for i := int64(0); i < autoBenchN; i++ {
		m.Mem[va+i] = 2*i + 1
	}
	calls := 0
	for p := 0; p < phases; p++ {
		k := autoBenchKey(p)
		var want int64
		for i := int64(0); i < autoBenchN; i++ {
			want += m.Mem[va+i] * k
		}
		for n := 0; n < phaseLen; n++ {
			got, err := m.Call("kernel", k, autoBenchN, va)
			if err != nil {
				return 0, fmt.Errorf("autoregion %s call (phase=%d n=%d): %w", name, p, n, err)
			}
			if got != want {
				return 0, fmt.Errorf("autoregion %s diverges (phase=%d n=%d): got %d, want %d", name, p, n, got, want)
			}
			calls++
			if latency != nil && *latency == 0 && c.Runtime.CacheStats().Promotions > 0 {
				*latency = calls
			}
		}
	}
	if latency != nil && *latency == 0 {
		*latency = calls
	}
	return float64(m.Cycles) / float64(calls), nil
}

// AutoRegion runs the three-subject comparison. Zero arguments select the
// standard workload (8 phases of 512 calls).
func AutoRegion(phases, phaseLen int) (*AutoRegionResult, error) {
	if phases < 2 {
		phases = autoBenchPhases
	}
	if phaseLen < 1 {
		phaseLen = autoBenchPhaseLen
	}
	stripped := testgen.StripAnnotations(autoBenchSrc)

	off, err := core.Compile(stripped, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		return nil, fmt.Errorf("autoregion baseline compile: %w", err)
	}
	offCPC, err := autoBenchRun("baseline", off, phases, phaseLen, nil)
	if err != nil {
		return nil, err
	}

	auto, err := core.Compile(stripped, core.Config{
		Dynamic: true, Optimize: true,
		AutoRegion: true, Auto: autoBenchOpts,
	})
	if err != nil {
		return nil, fmt.Errorf("autoregion speculative compile: %w", err)
	}
	if len(auto.Output.Regions) == 0 {
		auto.Runtime.Close()
		return nil, fmt.Errorf("autoregion: pass promoted no region")
	}
	var latency int
	autoCPC, err := autoBenchRun("speculative", auto, phases, phaseLen, &latency)
	if err != nil {
		return nil, err
	}
	cs := auto.Runtime.CacheStats()

	annot, err := core.Compile(autoBenchSrc, core.Config{Dynamic: true, Optimize: true})
	if err != nil {
		return nil, fmt.Errorf("autoregion annotated compile: %w", err)
	}
	annotCPC, err := autoBenchRun("annotated", annot, phases, phaseLen, nil)
	if err != nil {
		return nil, err
	}

	r := &AutoRegionResult{
		Calls:    phases * phaseLen,
		Phases:   phases,
		PhaseLen: phaseLen,

		OffCyclesPerCall:       offCPC,
		AutoCyclesPerCall:      autoCPC,
		AnnotatedCyclesPerCall: annotCPC,

		Promotions:       cs.Promotions,
		Deopts:           cs.Deopts,
		Stitches:         cs.Stitches,
		FallbackRuns:     cs.FallbackRuns,
		PromotionLatency: latency,
		KeyChanges:       phases - 1,
	}
	if autoCPC > 0 {
		r.AutoSpeedup = offCPC / autoCPC
	}
	if annotCPC > 0 {
		r.AnnotatedSpeedup = offCPC / annotCPC
	}
	if r.KeyChanges > 0 {
		r.DeoptRate = float64(cs.Deopts) / float64(r.KeyChanges)
	}
	if cs.Promotions == 0 {
		return nil, fmt.Errorf("autoregion: workload never promoted (%d calls)", r.Calls)
	}
	if cs.Deopts == 0 {
		return nil, fmt.Errorf("autoregion: %d phase changes but no deopts", r.KeyChanges)
	}
	return r, nil
}

// PrintAutoRegion renders the comparison.
func PrintAutoRegion(w io.Writer, r *AutoRegionResult) {
	fmt.Fprintf(w, "phased key workload: %d calls (%d phases x %d), %d key changes\n",
		r.Calls, r.Phases, r.PhaseLen, r.KeyChanges)
	fmt.Fprintf(w, "  %-28s %9.1f cyc/call\n", "static (stripped, no spec)", r.OffCyclesPerCall)
	fmt.Fprintf(w, "  %-28s %9.1f cyc/call   %5.2fx\n", "auto-promoted (speculative)", r.AutoCyclesPerCall, r.AutoSpeedup)
	fmt.Fprintf(w, "  %-28s %9.1f cyc/call   %5.2fx\n", "hand-annotated region", r.AnnotatedCyclesPerCall, r.AnnotatedSpeedup)
	fmt.Fprintf(w, "  %-28s %d promotions, %d deopts (%.2f per key change), %d stitches, %d fallback runs\n",
		"promotion activity", r.Promotions, r.Deopts, r.DeoptRate, r.Stitches, r.FallbackRuns)
	fmt.Fprintf(w, "  %-28s %d calls to first promotion\n", "promotion latency", r.PromotionLatency)
}
