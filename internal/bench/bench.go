// Package bench implements the paper's experimental assessment (section 5):
// the five benchmark kernels of Table 2, workload generators, and the
// measurement harness that regenerates Table 2 (asymptotic speedup,
// breakeven point, dynamic compilation overhead, cycles per stitched
// instruction) and Table 3 (optimizations applied dynamically).
package bench

import (
	"fmt"
	"math"

	"dyncc/internal/core"
	"dyncc/internal/rtr"
	"dyncc/internal/stitcher"
	"dyncc/internal/tmpl"
	"dyncc/internal/vm"
)

// Config selects harness options.
type Config struct {
	RegisterActions     bool
	NoStrengthReduction bool
	NoFuse              bool // disable superinstruction fusion (ablation)
	MergedStitch        bool // paper section 7: one-pass set-up + stitch
	// Uses overrides the default workload size (0 keeps the default).
	Uses int
	// Cache configures the dynamic runtime's stitch cache — notably
	// AsyncStitch, which moves stitching to background workers while
	// callers run the generic fallback tier.
	Cache rtr.CacheOptions
}

// Measurement is one row of Table 2.
type Measurement struct {
	Name   string
	Config string
	Unit   string // what a "use" is (interpretation, multiplication, ...)

	Uses          int     // uses measured
	UnitsPerUse   float64 // e.g. matrix elements per invocation
	StaticPerUnit float64 // cycles per unit, statically compiled
	DynPerUnit    float64 // cycles per unit, dynamically compiled (steady state)
	Speedup       float64 // StaticPerUnit / DynPerUnit

	SetupCycles   uint64
	StitchCycles  uint64
	Overhead      uint64 // SetupCycles + StitchCycles
	StitchedInsts uint64
	Compiles      uint64

	Breakeven         int     // units at which the dynamic version wins
	CyclesPerStitched float64 // Overhead / StitchedInsts (paper's last column)

	Plan   tmpl.Stats     // splitter plan (Table 3 static columns)
	Stitch stitcher.Stats // runtime stitcher statistics
}

// String renders the measurement as one table row.
func (m *Measurement) String() string {
	return fmt.Sprintf("%-28s %-24s speedup %.2f (%.1f/%.1f cyc)  breakeven %d %s  overhead %d+%d cyc  %0.f cyc/inst (%d stitched)",
		m.Name, m.Config, m.Speedup, m.StaticPerUnit, m.DynPerUnit,
		m.Breakeven, m.Unit, m.SetupCycles, m.StitchCycles,
		m.CyclesPerStitched, m.StitchedInsts)
}

// benchmark describes one kernel + workload.
type benchmark struct {
	name, config, unit string
	source             string
	uses               int
	unitsPerUse        float64
	// build allocates the workload in machine memory and returns a state
	// that use() consumes.
	build func(m *vm.Machine) (any, error)
	use   func(m *vm.Machine, state any, i int) error
}

// compileBoth compiles the benchmark statically and dynamically. Both
// subjects pin InlineBudget to -1: Table 2/3 reproduce the paper's
// configuration, which predates the demand-driven inlining extension (the
// dispatcher row's handler call must stay a call, as in the paper), and
// the inlining win is measured separately by bench.Inline (BENCH_10).
func compileBoth(src string, cfg Config) (stat, dyn *core.Compiled, err error) {
	stat, err = core.Compile(src, core.Config{Dynamic: false, Optimize: true,
		InlineBudget: -1,
		Stitcher:     stitcher.Options{NoFuse: cfg.NoFuse}})
	if err != nil {
		return nil, nil, fmt.Errorf("static: %w", err)
	}
	dyn, err = core.Compile(src, core.Config{Dynamic: true, Optimize: true,
		InlineBudget: -1,
		MergedStitch: cfg.MergedStitch,
		Cache:        cfg.Cache,
		Stitcher: stitcher.Options{
			RegisterActions:     cfg.RegisterActions,
			NoStrengthReduction: cfg.NoStrengthReduction,
			NoFuse:              cfg.NoFuse,
		}})
	if err != nil {
		return nil, nil, fmt.Errorf("dynamic: %w", err)
	}
	return stat, dyn, nil
}

// run executes the benchmark on one compiled program and returns the
// machine for counter inspection.
func run(c *core.Compiled, b *benchmark) (*vm.Machine, error) {
	m := c.NewMachine(0)
	state, err := b.build(m)
	if err != nil {
		return nil, err
	}
	for i := 0; i < b.uses; i++ {
		if err := b.use(m, state, i); err != nil {
			return nil, fmt.Errorf("use %d: %v", i, err)
		}
	}
	return m, nil
}

// measure produces one Table 2 row for benchmark b.
func measure(b *benchmark, cfg Config) (*Measurement, error) {
	if cfg.Uses > 0 {
		b.uses = cfg.Uses
	}
	stat, dyn, err := compileBoth(b.source, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.name, err)
	}
	sm, err := run(stat, b)
	if err != nil {
		return nil, fmt.Errorf("%s static: %w", b.name, err)
	}
	dm, err := run(dyn, b)
	if err != nil {
		return nil, fmt.Errorf("%s dynamic: %w", b.name, err)
	}
	// Quiesce background stitching (no-op without AsyncStitch) so the
	// folded stitcher statistics are complete before they are read: after
	// the pool drains, every distinct key has been stitched exactly once,
	// so Table 3's optimization matrix is mode-invariant.
	dyn.Runtime.WaitIdle()
	defer dyn.Runtime.Close()
	src := sm.Region(0)
	drc := dm.Region(0)
	units := float64(b.uses) * b.unitsPerUse

	mes := &Measurement{
		Name: b.name, Config: b.config, Unit: b.unit,
		Uses: b.uses, UnitsPerUse: b.unitsPerUse,
		StaticPerUnit: float64(src.ExecCycles) / units,
		DynPerUnit:    float64(drc.ExecCycles) / units,
		SetupCycles:   drc.SetupCycles,
		StitchCycles:  drc.StitchCycles,
		Overhead:      drc.Overhead(),
		StitchedInsts: drc.StitchedInsts,
		Compiles:      drc.Compiles,
		Stitch:        dyn.Runtime.Stats(0),
	}
	if len(dyn.Output.Regions) > 0 {
		mes.Plan = dyn.Output.Regions[0].Stats
	}
	if mes.DynPerUnit > 0 {
		mes.Speedup = mes.StaticPerUnit / mes.DynPerUnit
	}
	if mes.StitchedInsts > 0 {
		mes.CyclesPerStitched = float64(mes.Overhead) / float64(mes.StitchedInsts)
	}
	if mes.StaticPerUnit > mes.DynPerUnit {
		mes.Breakeven = int(math.Ceil(float64(mes.Overhead) /
			(mes.StaticPerUnit - mes.DynPerUnit)))
	} else {
		mes.Breakeven = -1 // never profitable
	}
	return mes, nil
}
